package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"
	"time"

	"newswire/internal/news"
)

// fingerprint digests every node's entire replicated state — every row of
// every zone table, including issue stamps, owners and the canonical
// attribute encoding — plus network totals and delivery counts. Two runs
// with equal fingerprints produced bit-identical tables.
func fingerprint(t *testing.T, c *Cluster) string {
	t.Helper()
	h := sha256.New()
	for _, n := range c.Nodes {
		ag := n.Agent()
		for _, zone := range ag.Chain() {
			rows, ok := ag.Table(zone)
			if !ok {
				t.Fatalf("node %s missing table %s", n.Addr(), zone)
			}
			for _, r := range rows {
				fmt.Fprintf(h, "%s|%s|%s|%d|%s|", n.Addr(), zone, r.Name, r.Issued.UnixNano(), r.Owner)
				h.Write(r.Attrs.AppendBinary(nil))
				h.Write([]byte{0})
			}
		}
		fmt.Fprintf(h, "delivered=%d|", n.Delivered())
	}
	sent, delivered, dropped := c.Net.Totals()
	fmt.Fprintf(h, "net=%d/%d/%d", sent, delivered, dropped)
	return hex.EncodeToString(h.Sum(nil))
}

// runScenario drives a representative workload: gossip rounds (tick
// phase), subscription aggregation, a publication fanning out through the
// multicast tree, and free-running virtual time (window phase).
func runScenario(t *testing.T, n int, seed int64, workers int) string {
	t.Helper()
	cluster, err := NewCluster(ClusterConfig{
		N:       n,
		Seed:    seed,
		Workers: workers,
		Customize: func(i int, cfg *Config) {
			cfg.RepCount = 2
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for _, node := range cluster.Nodes {
		if err := node.Subscribe("tech/linux"); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}
	cluster.RunRounds(6)
	it := &news.Item{
		Publisher: "reuters", ID: "breaking", Headline: "h",
		Body: "b", Subjects: []string{"tech/linux"}, Urgency: 1,
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
		t.Fatalf("publish: %v", err)
	}
	cluster.RunFor(20 * time.Second)
	return fingerprint(t, cluster)
}

// TestParallelMatchesSerialTables is the tentpole's determinism gate: for
// several seeds, a 512-node cluster run under the parallel executor must
// produce byte-identical zone tables (and traffic/delivery counters) to
// the serial event loop.
func TestParallelMatchesSerialTables(t *testing.T) {
	n := 512
	if testing.Short() {
		n = 128
	}
	for _, seed := range []int64{1, 7, 42} {
		serial := runScenario(t, n, seed, 0)
		parallel := runScenario(t, n, seed, 4)
		if serial != parallel {
			t.Errorf("seed %d: parallel run diverged from serial (fingerprint %s vs %s)",
				seed, parallel[:16], serial[:16])
		}
	}
}

// TestParallelDeterministicAcrossGOMAXPROCS pins the stronger property:
// the parallel executor's output does not depend on how much hardware
// parallelism the host actually provides.
func TestParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := runScenario(t, 256, 99, 4)
	runtime.GOMAXPROCS(4)
	four := runScenario(t, 256, 99, 4)
	if one != four {
		t.Errorf("GOMAXPROCS=1 vs =4 fingerprints differ: %s vs %s", one[:16], four[:16])
	}
}

// TestParallelRejectsSubLookaheadTimer documents the executor's one
// restriction: protocol timers shorter than the conservative lookahead
// window cannot be parallelized and must use the serial engine.
func TestParallelRejectsSubLookaheadTimer(t *testing.T) {
	_, err := NewCluster(ClusterConfig{
		N:       4,
		Seed:    1,
		Workers: 2,
		Customize: func(i int, cfg *Config) {
			cfg.AckTimeout = time.Millisecond // below DefaultWAN's 20ms floor
		},
	})
	if err == nil {
		t.Fatal("expected NewCluster to reject AckTimeout below the link lookahead")
	}
}
