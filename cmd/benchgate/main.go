// Command benchgate guards the perf trajectory without external tooling.
//
// Gate mode (CI): compare two BENCH_<ID>.json artifacts and fail when
// any common configuration's bytes_per_round — or the per-node peak
// heap, when both artifacts measured the same cluster size — regressed
// beyond the allowed fraction. Baseline-only configurations (rows CI
// does not regenerate, like the nightly million-node point) are skipped:
//
//	benchgate -baseline old/BENCH_E1.json -current artifacts/BENCH_E1.json
//	benchgate -baseline ... -current ... -max-regress 0.10 -max-heap-regress 0.10
//
// Chaos artifacts (BENCH_E10.json) are gated on hard bounds instead of
// deltas: every scenario's final delivery must reach -min-delivery, its
// during-fault delivery must stay above the scenario's own floor, and it
// must converge within -max-convergence-rounds (0 = the scenario's own
// max_rounds bound):
//
//	benchgate -baseline old/BENCH_E10.json -current artifacts/BENCH_E10.json
//	benchgate -baseline ... -current ... -min-delivery 1.0 -max-convergence-rounds 0
//
// Observability artifacts (BENCH_E12.json) are gated intra-artifact: the
// health+trace arm may cost at most -max-obs-overhead (default 5%) more
// gossip bytes/round and ns/round than the off arm:
//
//	benchgate -baseline old/BENCH_E12.json -current artifacts/BENCH_E12.json
//
// Compare mode (benchstat fallback for `make bench-compare`): diff two
// `go test -bench` output files metric by metric:
//
//	benchgate -compare baseline.txt current.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline   = fs.String("baseline", "", "baseline BENCH_<ID>.json")
		current    = fs.String("current", "", "current BENCH_<ID>.json")
		maxRegress = fs.Float64("max-regress", 0.10, "allowed fractional bytes_per_round regression")
		maxHeap    = fs.Float64("max-heap-regress", 0.10, "allowed fractional peak_heap_bytes_per_node regression")
		maxConv    = fs.Int("max-convergence-rounds", 0, "chaos: max rounds back to 100% delivery (0 = each scenario's own max_rounds)")
		minDeliver = fs.Float64("min-delivery", 1.0, "chaos: required final delivery fraction per scenario")
		minMsgsSec = fs.Float64("min-msgs-per-sec", 0, "live transport: sustained msgs/sec floor for the async arm (0 = off)")
		maxP99     = fs.Float64("max-p99-ms", 0, "live transport: clean-p99 latency ceiling in ms for the async arm (0 = off)")
		minSpeedup = fs.Float64("min-speedup", 0, "live transport: required async/sync sustained-throughput ratio (0 = off)")
		maxObs     = fs.Float64("max-obs-overhead", 0.05, "observability: allowed fractional bytes/round and ns/round overhead of the health+trace arm over off (E12)")
		minRecall  = fs.Float64("min-recall", 0.999, "precision: required delivery recall per arm (E8)")
		maxFPRatio = fs.Float64("max-fp-ratio", 0.5, "precision: allowed predicate/bloom false-positive-drop ratio per subscription count (E8)")
		maxBytes   = fs.Float64("max-bytes-ratio", 1.10, "precision: allowed predicate/bloom gossip bytes/round/node ratio per subscription count (E8)")
		compare    = fs.Bool("compare", false, "diff two `go test -bench` output files (positional args)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two bench output files, got %d", fs.NArg())
		}
		return compareBenchFiles(fs.Arg(0), fs.Arg(1))
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("need -baseline and -current (or -compare old.txt new.txt)")
	}
	return gate(*baseline, *current, *maxRegress, *maxHeap, *maxConv, *minDeliver,
		*minMsgsSec, *maxP99, *minSpeedup, *maxObs, *minRecall, *maxFPRatio, *maxBytes)
}

// benchArtifact is the slice of the BENCH_<ID>.json schema the gate needs.
type benchArtifact struct {
	ID   string `json:"id"`
	Wire []struct {
		Label         string  `json:"label"`
		BytesPerRound float64 `json:"bytes_per_round"`
	} `json:"bytes_on_wire"`
	// Per-node peak heap, comparable only between artifacts that
	// simulated the same cluster size.
	PeakHeapBytesPerNode float64 `json:"peak_heap_bytes_per_node"`
	HeapNodes            int     `json:"heap_nodes"`
	// Chaos rows (BENCH_E10.json) carry their own bounds: the scenario's
	// during-fault delivery floor and convergence-round budget.
	Chaos []chaosRow `json:"chaos"`
	// Live-transport arms (BENCH_E11.json) are gated on hard bounds:
	// sustained throughput floor, clean-p99 ceiling, zero corruption, and
	// optionally the async/sync speedup.
	Arms    []e11Arm    `json:"arms"`
	Verify  []e11Verify `json:"verify"`
	Speedup float64     `json:"speedup_async_over_sync"`
	// Observability arms (BENCH_E12.json) are gated on the overhead
	// ratio of the fully-enabled arm over the disabled one.
	Obs []obsArm `json:"obs"`
	// Precision rows (BENCH_E8.json) are gated intra-artifact on the
	// predicate-vs-bloom routing-precision ratios, plus a per-label
	// bytes/round/node regression bound against the baseline.
	Precision []precisionRow `json:"precision"`
}

type precisionRow struct {
	Label                string  `json:"label"`
	Mode                 string  `json:"mode"`
	Subscriptions        int     `json:"subscriptions"`
	Recall               float64 `json:"recall"`
	ExactMatches         int64   `json:"exact_matches"`
	FPDrops              int64   `json:"false_positive_drops"`
	FPRate               float64 `json:"fp_rate"`
	Forwards             int64   `json:"forwards"`
	BytesPerRoundPerNode float64 `json:"bytes_per_round_per_node"`
}

type obsArm struct {
	Label          string  `json:"label"`
	Health         bool    `json:"health"`
	Traced         bool    `json:"traced"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	HealthNodes    int64   `json:"health_nodes"`
	// NsOverheadVsOff is the drift-cancelling paired-ratio measurement
	// (see experiments.ObsArm); it, not NsPerRound quotients, is what the
	// ns budget bounds.
	NsOverheadVsOff float64 `json:"ns_overhead_vs_off"`
}

type e11Arm struct {
	Label               string  `json:"label"`
	SyncWrites          bool    `json:"sync_writes"`
	SustainedMsgsPerSec float64 `json:"sustained_msgs_per_sec"`
	CleanP99Ms          float64 `json:"clean_p99_ms"`
	TotalDrops          int64   `json:"total_drops"`
	TotalCorrupt        int64   `json:"total_corrupt"`
}

type e11Verify struct {
	Codec   string `json:"codec"`
	Frames  int64  `json:"frames"`
	Decoded int64  `json:"decoded"`
	Corrupt int64  `json:"corrupt"`
}

type chaosRow struct {
	Scenario            string  `json:"scenario"`
	DeliveryDuringFault float64 `json:"delivery_during_fault"`
	FinalDelivery       float64 `json:"final_delivery"`
	ConvergenceRounds   int     `json:"convergence_rounds"`
	SelfHealed          *bool   `json:"self_healed"`
	DeliveryFloor       float64 `json:"delivery_floor"`
	MaxRounds           int     `json:"max_rounds"`
}

func gate(baselinePath, currentPath string, maxRegress, maxHeap float64, maxConv int, minDeliver, minMsgsSec, maxP99, minSpeedup, maxObs, minRecall, maxFPRatio, maxBytesRatio float64) error {
	var base, cur benchArtifact
	if err := readJSON(baselinePath, &base); err != nil {
		return err
	}
	if err := readJSON(currentPath, &cur); err != nil {
		return err
	}
	if len(cur.Chaos) > 0 || len(base.Chaos) > 0 {
		return gateChaos(baselinePath, base, cur, maxConv, minDeliver)
	}
	if len(cur.Arms) > 0 || len(base.Arms) > 0 {
		return gateE11(baselinePath, base, cur, minMsgsSec, maxP99, minSpeedup)
	}
	if len(cur.Obs) > 0 || len(base.Obs) > 0 {
		return gateObs(baselinePath, base, cur, maxObs)
	}
	if len(cur.Precision) > 0 || len(base.Precision) > 0 {
		return gateE8(baselinePath, base, cur, minRecall, maxFPRatio, maxBytesRatio, maxRegress)
	}
	if len(base.Wire) == 0 {
		// A pre-codec artifact has no wire section: nothing to gate
		// against yet. Report and pass so the first regenerating commit
		// can land the section.
		fmt.Printf("benchgate: baseline %s has no bytes_on_wire section; gate skipped\n", baselinePath)
		return nil
	}
	curByLabel := map[string]float64{}
	for _, w := range cur.Wire {
		curByLabel[w.Label] = w.BytesPerRound
	}
	failed := false
	compared := 0
	for _, b := range base.Wire {
		got, ok := curByLabel[b.Label]
		if !ok {
			// The committed baseline may hold configurations CI does not
			// regenerate (the nightly 1M-node row, big-run points); gate
			// on the intersection and only fail when it is empty.
			fmt.Printf("benchgate: %-22s baseline %.0f B/round, not in current artifact; skipped\n",
				b.Label, b.BytesPerRound)
			continue
		}
		compared++
		delta := (got - b.BytesPerRound) / b.BytesPerRound
		status := "ok"
		if delta > maxRegress {
			status = fmt.Sprintf("REGRESSED beyond %.0f%%", maxRegress*100)
			failed = true
		}
		fmt.Printf("benchgate: %-22s %.0f -> %.0f B/round (%+.1f%%) %s\n",
			b.Label, b.BytesPerRound, got, delta*100, status)
	}
	if compared == 0 {
		return fmt.Errorf("no common bytes_on_wire labels between %s and %s", baselinePath, currentPath)
	}
	if base.PeakHeapBytesPerNode > 0 && cur.PeakHeapBytesPerNode > 0 {
		if base.HeapNodes != cur.HeapNodes {
			fmt.Printf("benchgate: peak heap/node measured at different sizes (%d vs %d nodes); skipped\n",
				base.HeapNodes, cur.HeapNodes)
		} else {
			delta := (cur.PeakHeapBytesPerNode - base.PeakHeapBytesPerNode) / base.PeakHeapBytesPerNode
			status := "ok"
			if delta > maxHeap {
				status = fmt.Sprintf("REGRESSED beyond %.0f%%", maxHeap*100)
				failed = true
			}
			fmt.Printf("benchgate: heap/node @%-9d %.0f -> %.0f B (%+.1f%%) %s\n",
				base.HeapNodes, base.PeakHeapBytesPerNode, cur.PeakHeapBytesPerNode, delta*100, status)
		}
	}
	if failed {
		return fmt.Errorf("regression gate failed (baseline %s)", baselinePath)
	}
	return nil
}

// gateChaos enforces the adversarial suite's hard bounds on the current
// artifact: per-scenario final delivery, during-fault floor, convergence
// budget, and the self-healing oracle. The baseline supplies the expected
// scenario set (a scenario that vanishes from the current artifact fails
// the gate) and convergence deltas for the report.
func gateChaos(baselinePath string, base, cur benchArtifact, maxConv int, minDeliver float64) error {
	baseBy := map[string]chaosRow{}
	for _, b := range base.Chaos {
		baseBy[b.Scenario] = b
	}
	failed := false
	for _, c := range cur.Chaos {
		bound := maxConv
		if bound <= 0 {
			bound = c.MaxRounds
		}
		var problems []string
		if c.FinalDelivery < minDeliver {
			problems = append(problems, fmt.Sprintf("final delivery %.4f < %.4f", c.FinalDelivery, minDeliver))
		}
		if c.DeliveryDuringFault < c.DeliveryFloor {
			problems = append(problems, fmt.Sprintf("during-fault delivery %.4f < floor %.4f", c.DeliveryDuringFault, c.DeliveryFloor))
		}
		if c.ConvergenceRounds > bound {
			problems = append(problems, fmt.Sprintf("convergence %d rounds > bound %d", c.ConvergenceRounds, bound))
		}
		if c.SelfHealed != nil && !*c.SelfHealed {
			problems = append(problems, "did not self-heal (table fingerprint differs from clean twin)")
		}
		convNote := fmt.Sprintf("conv %d/%d", c.ConvergenceRounds, bound)
		if b, ok := baseBy[c.Scenario]; ok {
			convNote = fmt.Sprintf("conv %d -> %d (bound %d)", b.ConvergenceRounds, c.ConvergenceRounds, bound)
		}
		status := "ok"
		if len(problems) > 0 {
			status = "FAILED: " + strings.Join(problems, "; ")
			failed = true
		}
		fmt.Printf("benchgate: %-18s final %.1f%% during %.1f%% (floor %.0f%%) %s %s\n",
			c.Scenario, c.FinalDelivery*100, c.DeliveryDuringFault*100,
			c.DeliveryFloor*100, convNote, status)
	}
	// Scenarios the baseline covered must still be covered — unless the
	// current artifact is an explicit subset run (smoke jobs pass the
	// subset's own baseline, so this only bites when the sets diverge
	// unexpectedly).
	curBy := map[string]bool{}
	for _, c := range cur.Chaos {
		curBy[c.Scenario] = true
	}
	for _, b := range base.Chaos {
		if !curBy[b.Scenario] {
			fmt.Printf("benchgate: %-18s in baseline but missing from current artifact; skipped\n", b.Scenario)
		}
	}
	if len(cur.Chaos) == 0 {
		return fmt.Errorf("current artifact has no chaos rows")
	}
	if failed {
		return fmt.Errorf("chaos gate failed (baseline %s)", baselinePath)
	}
	return nil
}

// gateObs enforces the observability-overhead budget on the current
// artifact: the fully-enabled arm (health telemetry plus tracing) may
// cost at most maxObs fractional overhead over the disabled arm, in both
// gossip bytes per round and wall-clock ns per round. The comparison is
// intra-artifact — both arms ran on the same machine in the same process,
// so the ratio is stable even though the absolute ns figures are not.
// The baseline supplies context for the report only.
func gateObs(baselinePath string, base, cur benchArtifact, maxObs float64) error {
	if len(cur.Obs) == 0 {
		return fmt.Errorf("current artifact has no observability arms")
	}
	find := func(arms []obsArm, label string) *obsArm {
		for i := range arms {
			if arms[i].Label == label {
				return &arms[i]
			}
		}
		return nil
	}
	off := find(cur.Obs, "off")
	full := find(cur.Obs, "health+trace")
	if off == nil || full == nil {
		return fmt.Errorf("current artifact is missing the off and/or health+trace arm")
	}
	var problems []string
	for _, a := range cur.Obs {
		note := ""
		if b := find(base.Obs, a.Label); b != nil && b.BytesPerRound > 0 {
			note = fmt.Sprintf(" (bytes %+.1f%% vs baseline)",
				(a.BytesPerRound-b.BytesPerRound)/b.BytesPerRound*100)
		}
		fmt.Printf("benchgate: obs %-13s %.0f B/round, %.0f ns/round, %.0f allocs/round, health nodes %d%s\n",
			a.Label, a.BytesPerRound, a.NsPerRound, a.AllocsPerRound, a.HealthNodes, note)
	}
	check := func(name string, over float64) {
		status := "ok"
		if over > maxObs {
			status = fmt.Sprintf("EXCEEDS budget %.0f%%", maxObs*100)
			problems = append(problems, fmt.Sprintf("%s overhead %+.1f%% > %.0f%%", name, over*100, maxObs*100))
		}
		fmt.Printf("benchgate: obs overhead %-10s %+.1f%% (budget %.0f%%) %s\n", name, over*100, maxObs*100, status)
	}
	if off.BytesPerRound <= 0 {
		problems = append(problems, "off arm has no bytes/round figure")
	} else {
		check("bytes/round", full.BytesPerRound/off.BytesPerRound-1)
	}
	// The ns budget bounds the paired-ratio field, not the quotient of
	// the two arms' median round times: on a shared CI machine the wall
	// clock drifts more than the 5% budget, and only the within-rep
	// ratio divides that drift out.
	check("ns/round", full.NsOverheadVsOff)
	if full.HealthNodes <= 0 {
		problems = append(problems, "health+trace arm reports no converged health rollup (health_nodes == 0)")
	}
	if len(problems) > 0 {
		return fmt.Errorf("observability gate failed: %s (baseline %s)",
			strings.Join(problems, "; "), baselinePath)
	}
	return nil
}

// gateE8 enforces the routing-precision bounds on the current artifact
// (BENCH_E8.json). Intra-artifact, per subscription count: every arm must
// hit the recall floor (equal recall is the precondition for comparing
// waste), the predicate arm's false-positive drops must stay under
// maxFPRatio of the bloom arm's, and its gossip bytes/round/node under
// maxBytesRatio of bloom's. Against the baseline, each label's
// bytes/round/node may regress at most maxRegress — the same drift bound
// the wire gate uses. The FP comparison is only meaningful when the bloom
// arm actually suffered false positives; a zero-FP bloom row passes the
// ratio vacuously.
func gateE8(baselinePath string, base, cur benchArtifact, minRecall, maxFPRatio, maxBytesRatio, maxRegress float64) error {
	if len(cur.Precision) == 0 {
		return fmt.Errorf("current artifact has no precision rows")
	}
	type pair struct{ bloom, pred *precisionRow }
	bySubs := map[int]*pair{}
	var problems []string
	for i := range cur.Precision {
		p := &cur.Precision[i]
		if p.Recall < minRecall {
			problems = append(problems, fmt.Sprintf("%s recall %.4f < floor %.4f", p.Label, p.Recall, minRecall))
		}
		pr := bySubs[p.Subscriptions]
		if pr == nil {
			pr = &pair{}
			bySubs[p.Subscriptions] = pr
		}
		switch p.Mode {
		case "bloom":
			pr.bloom = p
		case "predicate":
			pr.pred = p
		}
		fmt.Printf("benchgate: %-28s recall %.3f, fp drops %d (rate %.1f%%), forwards %d, %.0f B/round/node\n",
			p.Label, p.Recall, p.FPDrops, p.FPRate*100, p.Forwards, p.BytesPerRoundPerNode)
	}
	subs := make([]int, 0, len(bySubs))
	for s := range bySubs {
		subs = append(subs, s)
	}
	sort.Ints(subs)
	for _, s := range subs {
		pr := bySubs[s]
		if pr.bloom == nil || pr.pred == nil {
			problems = append(problems, fmt.Sprintf("%d subs: missing bloom and/or predicate arm", s))
			continue
		}
		if float64(pr.pred.FPDrops) > maxFPRatio*float64(pr.bloom.FPDrops) {
			problems = append(problems, fmt.Sprintf("%d subs: predicate fp drops %d > %.0f%% of bloom's %d",
				s, pr.pred.FPDrops, maxFPRatio*100, pr.bloom.FPDrops))
		}
		if pr.bloom.BytesPerRoundPerNode > 0 {
			ratio := pr.pred.BytesPerRoundPerNode / pr.bloom.BytesPerRoundPerNode
			status := "ok"
			if ratio > maxBytesRatio {
				status = fmt.Sprintf("EXCEEDS budget %.2fx", maxBytesRatio)
				problems = append(problems, fmt.Sprintf("%d subs: predicate bytes %.2fx bloom > %.2fx",
					s, ratio, maxBytesRatio))
			}
			fmt.Printf("benchgate: %6d subs predicate/bloom bytes %.2fx (budget %.2fx) %s\n",
				s, ratio, maxBytesRatio, status)
		}
	}
	// Per-label drift against the committed baseline, same bound as the
	// wire gate. Baseline-only labels (big-run points) are skipped.
	curByLabel := map[string]*precisionRow{}
	for i := range cur.Precision {
		curByLabel[cur.Precision[i].Label] = &cur.Precision[i]
	}
	for i := range base.Precision {
		b := &base.Precision[i]
		got, ok := curByLabel[b.Label]
		if !ok || b.BytesPerRoundPerNode <= 0 {
			continue
		}
		delta := (got.BytesPerRoundPerNode - b.BytesPerRoundPerNode) / b.BytesPerRoundPerNode
		status := "ok"
		if delta > maxRegress {
			status = fmt.Sprintf("REGRESSED beyond %.0f%%", maxRegress*100)
			problems = append(problems, fmt.Sprintf("%s bytes/round/node %+.1f%% vs baseline > %.0f%%",
				b.Label, delta*100, maxRegress*100))
		}
		fmt.Printf("benchgate: %-28s %.0f -> %.0f B/round/node (%+.1f%%) %s\n",
			b.Label, b.BytesPerRoundPerNode, got.BytesPerRoundPerNode, delta*100, status)
	}
	if len(problems) > 0 {
		return fmt.Errorf("precision gate failed: %s (baseline %s)",
			strings.Join(problems, "; "), baselinePath)
	}
	return nil
}

// gateE11 enforces the live-transport hard bounds on the current
// artifact: zero frame corruption everywhere (load arms and the
// both-codec verification phase), a sustained-throughput floor and a
// clean-p99 ceiling on the asynchronous arm, and optionally the
// async/sync speedup ratio. Throughput deltas against the baseline are
// reported but never gated — wall-clock socket numbers are too
// machine-dependent for a fractional regression bound; the floor is the
// contract.
func gateE11(baselinePath string, base, cur benchArtifact, minMsgsSec, maxP99, minSpeedup float64) error {
	if len(cur.Arms) == 0 {
		return fmt.Errorf("current artifact has no live-transport arms")
	}
	baseBy := map[string]e11Arm{}
	for _, a := range base.Arms {
		baseBy[a.Label] = a
	}
	var problems []string
	for _, a := range cur.Arms {
		delta := ""
		if b, ok := baseBy[a.Label]; ok && b.SustainedMsgsPerSec > 0 {
			delta = fmt.Sprintf(" (%+.1f%% vs baseline)",
				(a.SustainedMsgsPerSec-b.SustainedMsgsPerSec)/b.SustainedMsgsPerSec*100)
		}
		fmt.Printf("benchgate: arm %-6s sustained %.0f msgs/sec%s, clean p99 %.1fms, drops %d, corrupt %d\n",
			a.Label, a.SustainedMsgsPerSec, delta, a.CleanP99Ms, a.TotalDrops, a.TotalCorrupt)
		if a.TotalCorrupt != 0 {
			problems = append(problems, fmt.Sprintf("arm %s saw %d corrupt frames", a.Label, a.TotalCorrupt))
		}
		if a.SyncWrites {
			continue // floors apply to the default path, not the ablation
		}
		if minMsgsSec > 0 && a.SustainedMsgsPerSec < minMsgsSec {
			problems = append(problems, fmt.Sprintf("arm %s sustained %.0f msgs/sec < floor %.0f",
				a.Label, a.SustainedMsgsPerSec, minMsgsSec))
		}
		if maxP99 > 0 && a.CleanP99Ms > maxP99 {
			problems = append(problems, fmt.Sprintf("arm %s clean p99 %.1fms > ceiling %.0fms",
				a.Label, a.CleanP99Ms, maxP99))
		}
	}
	for _, v := range cur.Verify {
		fmt.Printf("benchgate: verify %-6s %d frames, %d decoded, %d corrupt\n",
			v.Codec, v.Frames, v.Decoded, v.Corrupt)
		if v.Corrupt != 0 {
			problems = append(problems, fmt.Sprintf("codec %s saw %d corrupt frames", v.Codec, v.Corrupt))
		}
		if v.Decoded != v.Frames {
			problems = append(problems, fmt.Sprintf("codec %s decoded %d of %d frames", v.Codec, v.Decoded, v.Frames))
		}
	}
	if cur.Speedup > 0 {
		fmt.Printf("benchgate: speedup async/sync %.2fx\n", cur.Speedup)
	}
	if minSpeedup > 0 && cur.Speedup < minSpeedup {
		problems = append(problems, fmt.Sprintf("async/sync speedup %.2fx < required %.2fx", cur.Speedup, minSpeedup))
	}
	if len(problems) > 0 {
		return fmt.Errorf("live-transport gate failed: %s (baseline %s)",
			strings.Join(problems, "; "), baselinePath)
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// benchMetrics maps "BenchmarkName/arm" -> unit -> value, averaged over
// repeated runs of the same benchmark.
type benchMetrics map[string]map[string]float64

func parseBenchFile(path string) (benchMetrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := benchMetrics{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -<GOMAXPROCS> suffix so runs on different hosts align.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = map[string]float64{}
			out[name] = m
		}
		counts[name]++
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, m := range out {
		for unit := range m {
			m[unit] /= float64(counts[name])
		}
	}
	return out, nil
}

func compareBenchFiles(oldPath, newPath string) error {
	oldM, err := parseBenchFile(oldPath)
	if err != nil {
		return err
	}
	newM, err := parseBenchFile(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		if _, ok := newM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	fmt.Printf("%-44s %-14s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "delta")
	for _, name := range names {
		units := make([]string, 0, len(oldM[name]))
		for unit := range oldM[name] {
			if _, ok := newM[name][unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			o, n := oldM[name][unit], newM[name][unit]
			delta := "~"
			if o != 0 {
				delta = fmt.Sprintf("%+.1f%%", (n-o)/o*100)
			}
			fmt.Printf("%-44s %-14s %14.1f %14.1f %8s\n", name, unit, o, n, delta)
		}
	}
	return nil
}
