package newswire

// Internal tests for the /trace.json handler: the ?trace=<id> filter and
// the bounded ring's eviction accounting as seen through the endpoint.
// These construct the WebUI around a bare ring (no node), which only an
// in-package test can do; the end-to-end live version is
// TestWebUILiveTraceAndMetrics in webui_test.go.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"newswire/internal/trace"
)

func traceEndpointDoc(t *testing.T, ui *WebUI, url string) (traceDoc, int) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	ui.handleTrace(rec, req)
	var doc traceDoc
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return doc, rec.Code
}

func TestTraceEndpointFilterByID(t *testing.T) {
	ring := trace.NewRing(64)
	idA := trace.DeriveTraceID("reuters/a#0")
	idB := trace.DeriveTraceID("reuters/b#0")
	base := time.Unix(1017619200, 0).UTC()
	for i := 0; i < 3; i++ {
		ring.Record(trace.Span{Kind: trace.KindForward, Key: "reuters/a#0", TraceID: idA, Hop: i, At: base.Add(time.Duration(i) * time.Millisecond)})
	}
	ring.Record(trace.Span{Kind: trace.KindDeliver, Key: "reuters/b#0", TraceID: idB, At: base.Add(time.Second)})
	ui := &WebUI{ring: ring}

	doc, code := traceEndpointDoc(t, ui, "/trace.json")
	if code != 200 || len(doc.Spans) != 4 {
		t.Fatalf("unfiltered: code %d, %d spans, want 200/4", code, len(doc.Spans))
	}

	// Decimal and 0x-hex spellings of the same ID must both work.
	for _, q := range []string{fmt.Sprintf("%d", idA), fmt.Sprintf("%#x", idA)} {
		doc, code = traceEndpointDoc(t, ui, "/trace.json?trace="+q)
		if code != 200 || len(doc.Spans) != 3 {
			t.Fatalf("trace=%s: code %d, %d spans, want 200/3", q, code, len(doc.Spans))
		}
		for _, s := range doc.Spans {
			if s.TraceID != idA {
				t.Errorf("trace=%s returned span of trace %#x", q, s.TraceID)
			}
		}
	}

	// An ID with no recorded spans filters to an empty list, not an error
	// and not the full dump.
	doc, code = traceEndpointDoc(t, ui, "/trace.json?trace=12345")
	if code != 200 || len(doc.Spans) != 0 {
		t.Fatalf("unknown id: code %d, %d spans, want 200/0", code, len(doc.Spans))
	}

	// Malformed IDs are a client error.
	if _, code = traceEndpointDoc(t, ui, "/trace.json?trace=banana"); code != 400 {
		t.Fatalf("malformed id: code %d, want 400", code)
	}
}

func TestTraceEndpointBoundedEviction(t *testing.T) {
	ring := trace.NewRing(4)
	id := trace.DeriveTraceID("reuters/evict#0")
	base := time.Unix(1017619200, 0).UTC()
	for i := 0; i < 10; i++ {
		ring.Record(trace.Span{Kind: trace.KindForward, Key: "reuters/evict#0", TraceID: id, Hop: i, At: base.Add(time.Duration(i) * time.Millisecond)})
	}
	ui := &WebUI{ring: ring}

	doc, code := traceEndpointDoc(t, ui, "/trace.json")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	if doc.Recorded != 10 {
		t.Errorf("recorded = %d, want 10 (evicted spans still counted)", doc.Recorded)
	}
	if len(doc.Spans) != 4 {
		t.Fatalf("retained %d spans, want ring capacity 4", len(doc.Spans))
	}
	for i, s := range doc.Spans {
		if want := 6 + i; s.Hop != want {
			t.Errorf("spans[%d].Hop = %d, want %d (oldest evicted first)", i, s.Hop, want)
		}
	}
}
