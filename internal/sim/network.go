package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"newswire/internal/transport"
	"newswire/internal/wire"
)

// LinkModel describes the behaviour of every link in the simulated
// network. Latency is sampled uniformly in [LatencyMin, LatencyMax];
// LossRate is the independent per-message drop probability.
type LinkModel struct {
	LatencyMin time.Duration
	LatencyMax time.Duration
	LossRate   float64
}

// DefaultWAN is a wide-area link model plausible for 2002-era consumer
// Internet paths: 20–180 ms one-way latency, 1% loss.
var DefaultWAN = LinkModel{
	LatencyMin: 20 * time.Millisecond,
	LatencyMax: 180 * time.Millisecond,
	LossRate:   0.01,
}

// EndpointStats counts one endpoint's traffic. Experiment E4 reads these
// to compare publisher egress under NewsWire against direct unicast.
type EndpointStats struct {
	MsgsSent      int64
	BytesSent     int64
	MsgsReceived  int64
	BytesReceived int64
}

// Network is the simulated network: a set of addressable endpoints joined
// by a shared link model, with crash-stop failure and partition injection.
// It is driven entirely by the owning Engine and must only be used from
// simulator callbacks (single-goroutine discipline); the mutex exists only
// so misuse is detectable rather than silently racy.
type Network struct {
	eng  *Engine
	link LinkModel

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	crashed   map[string]bool
	blocked   map[linkKey]bool
	lossOvr   map[linkKey]float64
	stats     map[string]*EndpointStats

	// Totals across all endpoints.
	totalSent       int64
	totalDelivered  int64
	totalDropped    int64
	totalBytesSent  int64
	totalBytesDeliv int64
}

type linkKey struct{ from, to string }

// NewNetwork returns a network attached to eng with the given link model.
func NewNetwork(eng *Engine, link LinkModel) *Network {
	return &Network{
		eng:       eng,
		link:      link,
		endpoints: make(map[string]*Endpoint),
		crashed:   make(map[string]bool),
		blocked:   make(map[linkKey]bool),
		lossOvr:   make(map[linkKey]float64),
		stats:     make(map[string]*EndpointStats),
	}
}

// errClosed is returned by Send on a closed endpoint.
var errClosed = errors.New("sim: endpoint closed")

// Endpoint is one node's attachment to the simulated network.
type Endpoint struct {
	net     *Network
	addr    string
	handler transport.Handler
	closed  bool

	// Parallel-executor registration (see parallel.go). owner tags this
	// endpoint's delivery events; exec carries the effect sink used to
	// buffer sends during parallel windows; shard names the commit shard
	// the endpoint's sender-side effects replay on. All are set once,
	// before the simulation runs.
	owner int
	shard int32
	exec  *execNode
}

var _ transport.Transport = (*Endpoint)(nil)

// Attach registers an endpoint for addr with the given inbound handler.
// Re-attaching an address replaces the previous endpoint (a restarted
// node).
func (n *Network) Attach(addr string, h transport.Handler) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &Endpoint{net: n, addr: addr, handler: h, owner: noOwner}
	n.endpoints[addr] = ep
	if n.stats[addr] == nil {
		n.stats[addr] = &EndpointStats{}
	}
	return ep
}

// Addr implements transport.Transport.
func (ep *Endpoint) Addr() string { return ep.addr }

// Close implements transport.Transport.
func (ep *Endpoint) Close() error {
	ep.net.mu.Lock()
	defer ep.net.mu.Unlock()
	ep.closed = true
	if ep.net.endpoints[ep.addr] == ep {
		delete(ep.net.endpoints, ep.addr)
	}
	return nil
}

// Send implements transport.Transport. The message is delivered to the
// destination's handler after a sampled link latency, unless the link
// drops it, either side is crashed, or the link is blocked by a partition.
//
// When the sending node is executing inside a parallel window (see
// parallel.go), the send is buffered as an effect and replayed through
// transmit at commit, in canonical event order; loss and latency are
// sampled only then, keeping the engine RNG stream serial-identical.
func (ep *Endpoint) Send(to string, msg *wire.Message) error {
	if en := ep.exec; en != nil {
		if sink := en.sink; sink != nil {
			if ep.closed {
				return errClosed
			}
			if err := msg.Validate(); err != nil {
				return fmt.Errorf("sim: send: %w", err)
			}
			n := ep.net
			msg.From = ep.addr
			// Precompute the pure parts of transmit here, on the worker:
			// the wire-size estimate dominates commit cost, and the fault
			// maps are frozen while a window is in flight (they are only
			// mutated by unowned events, which never share a window), so
			// reading them without the lock is race-free and yields the
			// value the serial engine would have read at commit time.
			eff := effect{
				ep:         ep,
				to:         to,
				msg:        msg,
				size:       int64(msg.EstimateSize()),
				lossRate:   n.link.LossRate,
				preDropped: n.crashed[ep.addr] || n.crashed[to] || n.blocked[linkKey{ep.addr, to}],
			}
			if ovr, ok := n.lossOvr[linkKey{ep.addr, to}]; ok {
				eff.lossRate = ovr
			}
			*sink = append(*sink, eff)
			return nil
		}
	}
	n := ep.net
	n.mu.Lock()
	if ep.closed {
		n.mu.Unlock()
		return errClosed
	}
	if err := msg.Validate(); err != nil {
		n.mu.Unlock()
		return fmt.Errorf("sim: send: %w", err)
	}
	msg.From = ep.addr
	ep.transmit(to, msg)
	return nil
}

// transmit counts, samples loss and latency, and schedules delivery of a
// validated, From-stamped message. Called with n.mu held; releases it.
// The delivery event is tagged with the destination's executor owner (if
// registered), making it eligible for parallel windows.
func (ep *Endpoint) transmit(to string, msg *wire.Message) {
	n := ep.net
	size := int64(msg.EstimateSize())

	st := n.stats[ep.addr]
	st.MsgsSent++
	st.BytesSent += size
	n.totalSent++
	n.totalBytesSent += size

	dropped := n.crashed[ep.addr] || n.crashed[to] || n.blocked[linkKey{ep.addr, to}]
	loss := n.link.LossRate
	if ovr, ok := n.lossOvr[linkKey{ep.addr, to}]; ok {
		loss = ovr
	}
	if !dropped && loss > 0 && n.eng.rng.Float64() < loss {
		dropped = true
	}
	if dropped {
		n.totalDropped++
		n.mu.Unlock()
		return
	}
	latency := n.link.LatencyMin
	if span := n.link.LatencyMax - n.link.LatencyMin; span > 0 {
		latency += time.Duration(n.eng.rng.Int63n(int64(span)))
	}
	dstOwner := noOwner
	if dst, ok := n.endpoints[to]; ok {
		dstOwner = dst.owner
	}
	n.mu.Unlock()

	n.eng.AtOwned(dstOwner, n.eng.clock.Now().Add(latency), func() {
		n.deliver(to, msg, size)
	})
}

// deliver is the body of a delivery event: receiver stats, then handler
// dispatch. Shared by the serial transmit path and the parallel
// executor's sharded commit, so both schedule byte-identical closures.
func (n *Network) deliver(to string, msg *wire.Message, size int64) {
	n.mu.Lock()
	dst, ok := n.endpoints[to]
	crashed := n.crashed[to]
	if ok && !crashed {
		rst := n.stats[to]
		rst.MsgsReceived++
		rst.BytesReceived += size
		n.totalDelivered++
		n.totalBytesDeliv += size
	} else {
		n.totalDropped++
	}
	n.mu.Unlock()
	if ok && !crashed {
		dst.handler(msg)
	}
}

// Crash marks addr as failed: all its traffic (including messages already
// in flight toward it) is dropped until Restore.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	n.crashed[addr] = true
	n.mu.Unlock()
}

// CrashAfter schedules a crash of addr once d of virtual time has
// elapsed. With d shorter than the link latency this crashes a node
// *between* transmitting a message and the ack coming back — the
// crash-during-forward fault the reliable multicast layer must survive.
func (n *Network) CrashAfter(addr string, d time.Duration) {
	n.eng.After(d, func() { n.Crash(addr) })
}

// Restore clears a crash.
func (n *Network) Restore(addr string) {
	n.mu.Lock()
	delete(n.crashed, addr)
	n.mu.Unlock()
}

// Crashed reports whether addr is currently crashed.
func (n *Network) Crashed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[addr]
}

// Block severs the directed link from -> to (half a partition).
func (n *Network) Block(from, to string) {
	n.mu.Lock()
	n.blocked[linkKey{from, to}] = true
	n.mu.Unlock()
}

// Unblock restores the directed link.
func (n *Network) Unblock(from, to string) {
	n.mu.Lock()
	delete(n.blocked, linkKey{from, to})
	n.mu.Unlock()
}

// Partition blocks every link between the two node sets, both directions.
func (n *Network) Partition(a, b []string) {
	n.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			n.blocked[linkKey{x, y}] = true
			n.blocked[linkKey{y, x}] = true
		}
	}
	n.mu.Unlock()
}

// PartitionOneWay blocks every link from a-side to b-side while leaving
// the reverse direction intact — an asymmetric partition. Under it, data
// from a still reaches b but acks from b back to a are lost, which is the
// worst case for an ack/retry protocol: every forward looks failed to the
// sender even though it arrived.
func (n *Network) PartitionOneWay(a, b []string) {
	n.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			n.blocked[linkKey{x, y}] = true
		}
	}
	n.mu.Unlock()
}

// HealOneWay removes the directed blocks from a-side to b-side.
func (n *Network) HealOneWay(a, b []string) {
	n.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			delete(n.blocked, linkKey{x, y})
		}
	}
	n.mu.Unlock()
}

// SetLossRate replaces the global LinkModel loss rate for every link at
// once — the knob behind loss-ramp chaos scenarios. Per-link overrides
// installed with SetLinkLoss keep taking precedence. Like the other
// fault mutators it must only be called between executor windows (or
// from unowned engine events): the parallel send fast path reads the
// link model without the lock while a window is in flight.
func (n *Network) SetLossRate(rate float64) {
	n.mu.Lock()
	n.link.LossRate = rate
	n.mu.Unlock()
}

// LossRate returns the current global per-message loss probability.
func (n *Network) LossRate() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.link.LossRate
}

// SetLinkLoss overrides the loss rate of the directed link from -> to,
// replacing the global LinkModel rate for that link only. Rate 0 makes
// the link lossless; use ClearLinkLoss to return to the model default.
func (n *Network) SetLinkLoss(from, to string, rate float64) {
	n.mu.Lock()
	n.lossOvr[linkKey{from, to}] = rate
	n.mu.Unlock()
}

// ClearLinkLoss removes a per-link loss override.
func (n *Network) ClearLinkLoss(from, to string) {
	n.mu.Lock()
	delete(n.lossOvr, linkKey{from, to})
	n.mu.Unlock()
}

// Heal removes every block between the two node sets.
func (n *Network) Heal(a, b []string) {
	n.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			delete(n.blocked, linkKey{x, y})
			delete(n.blocked, linkKey{y, x})
		}
	}
	n.mu.Unlock()
}

// Stats returns a copy of the per-endpoint traffic counters for addr.
func (n *Network) Stats(addr string) EndpointStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st := n.stats[addr]; st != nil {
		return *st
	}
	return EndpointStats{}
}

// Totals returns (sent, delivered, dropped) message counts across the
// whole network.
func (n *Network) Totals() (sent, delivered, dropped int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalSent, n.totalDelivered, n.totalDropped
}

// BytesTotals returns estimated wire bytes (sent, delivered) across the
// whole network. Experiments use it to compare gossip traffic volume
// between protocol variants.
func (n *Network) BytesTotals() (sent, delivered int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalBytesSent, n.totalBytesDeliv
}
