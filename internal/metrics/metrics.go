// Package metrics provides the lightweight counters, gauges and histograms
// that the experiment harness uses to report the quantities the paper talks
// about: delivery latency percentiles, per-node message loads, redundancy
// fractions, and served-request ratios.
//
// The registry is deliberately simple — no export protocols, no labels —
// because its only consumers are the benchmark tables in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored; counters are monotone).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// SyncTo raises the counter to total if it is currently below it, and
// otherwise leaves it unchanged. It mirrors an externally maintained
// cumulative total (for example astrolabe.Stats) into the registry
// without double counting, while keeping the counter monotone.
func (c *Counter) SyncTo(total int64) {
	c.mu.Lock()
	if total > c.n {
		c.n = total
	}
	c.mu.Unlock()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations and reports order statistics. It keeps
// every sample; experiment runs are bounded, so exact quantiles are cheap
// and avoid approximation arguments in EXPERIMENTS.md.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the sample mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples, or 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

// Registry is a named collection of metrics. The zero value is unusable;
// construct with NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders every metric as "name value" lines sorted by name, for
// debugging experiment runs.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%g p50=%g p99=%g",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
