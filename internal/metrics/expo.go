// Labeled series and Prometheus text exposition (version 0.0.4).
//
// The registry's exposition model is deliberately small: counters and
// gauges render as themselves, histograms render as Prometheus summaries
// (quantile-labeled series plus _sum and _count), because the registry
// keeps order statistics rather than fixed buckets. That is exactly the
// shape scrapers expect from a summary and keeps the experiment-facing
// quantile API as the single source of truth.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders the canonical registry key and exposition metadata
// for a family name plus labels. Labels are sorted by key so the same set
// always maps to the same series regardless of argument order.
func seriesKey(name string, labels []Label) (string, seriesMeta) {
	if len(labels) == 0 {
		return name, seriesMeta{family: name}
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	rendered := sb.String()
	return name + "{" + rendered + "}", seriesMeta{family: name, labels: rendered}
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// CounterWith returns the counter for name plus labels, creating it if
// needed.
func (r *Registry) CounterWith(name string, labels ...Label) *Counter {
	key, meta := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.meta[key] = meta
	}
	return c
}

// GaugeWith returns the gauge for name plus labels, creating it if needed.
func (r *Registry) GaugeWith(name string, labels ...Label) *Gauge {
	key, meta := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.meta[key] = meta
	}
	return g
}

// HistogramWith returns the histogram for name plus labels, creating it
// if needed.
func (r *Registry) HistogramWith(name string, labels ...Label) *Histogram {
	key, meta := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = &Histogram{}
		r.histograms[key] = h
		r.meta[key] = meta
	}
	return h
}

// expoSeries is one series captured for rendering, outside the registry
// lock.
type expoSeries struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// expoFamily groups the series of one metric family.
type expoFamily struct {
	name   string
	kind   string // "counter" | "gauge" | "summary"
	series []expoSeries
}

// families snapshots the registry's series pointers grouped per family,
// sorted by family then label set. Metric values are NOT read here — the
// caller reads them under each metric's own lock.
func (r *Registry) families() []expoFamily {
	byName := make(map[string]*expoFamily)
	r.mu.Lock()
	for key, c := range r.counters {
		m := r.meta[key]
		f := byName[m.family]
		if f == nil {
			f = &expoFamily{name: m.family, kind: "counter"}
			byName[m.family] = f
		}
		f.series = append(f.series, expoSeries{labels: m.labels, c: c})
	}
	for key, g := range r.gauges {
		m := r.meta[key]
		f := byName[m.family]
		if f == nil {
			f = &expoFamily{name: m.family, kind: "gauge"}
			byName[m.family] = f
		}
		f.series = append(f.series, expoSeries{labels: m.labels, g: g})
	}
	for key, h := range r.histograms {
		m := r.meta[key]
		f := byName[m.family]
		if f == nil {
			f = &expoFamily{name: m.family, kind: "summary"}
			byName[m.family] = f
		}
		f.series = append(f.series, expoSeries{labels: m.labels, h: h})
	}
	r.mu.Unlock()

	out := make([]expoFamily, 0, len(byName))
	for _, f := range byName {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// summaryQuantiles are the quantile series a histogram exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4) and reports the bytes written.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	for _, f := range r.families() {
		if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return cw.n, err
		}
		for _, s := range f.series {
			var err error
			switch {
			case s.c != nil:
				err = writeSample(cw, f.name, s.labels, "", float64(s.c.Value()))
			case s.g != nil:
				err = writeSample(cw, f.name, s.labels, "", s.g.Value())
			case s.h != nil:
				err = writeSummary(cw, f.name, s.labels, s.h)
			}
			if err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// writeSummary renders one histogram as quantile samples plus _sum/_count.
func writeSummary(w io.Writer, name, labels string, h *Histogram) error {
	for _, q := range summaryQuantiles {
		ql := fmt.Sprintf(`quantile="%g"`, q)
		if labels != "" {
			ql = labels + "," + ql
		}
		if err := writeSample(w, name, ql, "", h.Quantile(q)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name, labels, "_sum", h.Sum()); err != nil {
		return err
	}
	return writeSample(w, name, labels, "_count", float64(h.Count()))
}

// writeSample renders one exposition line.
func writeSample(w io.Writer, name, labels, suffix string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatValue(v))
	} else {
		_, err = fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatValue(v))
	}
	return err
}

// formatValue renders a sample value the way Prometheus parsers expect:
// integral values without an exponent, everything else in %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Handler returns an http.Handler serving the exposition — mount it as
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
