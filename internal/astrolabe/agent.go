package astrolabe

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"newswire/internal/bloom"
	"newswire/internal/metrics"
	"newswire/internal/sqlagg"
	"newswire/internal/transport"
	"newswire/internal/value"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// Well-known attribute names. The default aggregation program and the
// pub/sub layer agree on these.
const (
	// AttrAddr is the transport address of a leaf agent, or the primary
	// contact (least-loaded representative) of an aggregated zone.
	AttrAddr = "addr"
	// AttrLoad is the advertised load used for representative election.
	AttrLoad = "load"
	// AttrReps lists the elected multicast representatives of a zone.
	AttrReps = "reps"
	// AttrMembers counts the leaf nodes under a zone.
	AttrMembers = "nmembers"
	// AttrSubs is the OR-aggregated subscription Bloom filter (§6).
	AttrSubs = "subs"
	// AttrPubs is the roster of publishers known below a zone.
	AttrPubs = "pubs"
	// AttrVirtual marks a template row standing in for a quiescent leaf
	// member that has no running agent behind it (a simulation's virtual
	// leaves, core/virtual.go). Virtual rows are pinned from expiry —
	// nothing reissues them — and are never chosen as gossip or recovery
	// partners, since no agent would answer.
	AttrVirtual = "virt"
)

// Health attribute namespace (DESIGN.md §12). Each node folds a compact
// digest of its own runtime metrics into its leaf row under these
// reserved prefixes, and the prefix rules from HealthRules roll them up
// per zone — so any node answers cluster-wide health questions (total
// drops, merged delivery p99, worst node) from its own replicated root
// table, the paper's aggregation machinery pointed at the system itself.
// The segment after sys$health$ selects the merge operator, so one rule
// per operator covers an open-ended attribute set.
const (
	// HealthPrefix is the reserved namespace for self-monitoring
	// attributes. FingerprintTables excludes everything under it: health
	// counters (retries, drops) legitimately diverge between runs whose
	// delivery content converged — a chaos run and its clean twin — and
	// must not fail the convergence oracle.
	HealthPrefix = "sys$health$"
	// HealthSumPrefix attributes aggregate by numeric sum (counters:
	// drops, retries, failures, member counts).
	HealthSumPrefix = "sys$health$s$"
	// HealthMaxPrefix attributes aggregate by max under value.Compare
	// (high-water marks; lexical max for worst-node election strings).
	HealthMaxPrefix = "sys$health$x$"
	// HealthMinPrefix attributes aggregate by min (stalest refresh time).
	HealthMinPrefix = "sys$health$m$"
	// HealthSketchPrefix attributes hold encoded metrics.Sketch values
	// and aggregate by sketch merge (latency distributions, so quantiles
	// survive aggregation — a plain MAX of per-node p99s would not).
	HealthSketchPrefix = "sys$health$q$"
)

// HealthRules returns the prefix rules that aggregate the sys$health
// namespace up the zone hierarchy. They are installed only on clusters
// that publish health attributes: an agent without them does zero extra
// work, which is what keeps disabled-mode overhead at zero.
func HealthRules() []PrefixRule {
	return []PrefixRule{
		{Prefix: HealthSumPrefix, Op: PrefixSum},
		{Prefix: HealthMaxPrefix, Op: PrefixMax},
		{Prefix: HealthMinPrefix, Op: PrefixMin},
		{Prefix: HealthSketchPrefix, Op: PrefixSketch},
	}
}

// DefaultRepCount is how many multicast representatives the default
// aggregation program elects per zone.
const DefaultRepCount = 3

// DefaultAggregationSource is the SQL aggregation program installed when
// Config.Aggregation is nil. It computes exactly the summaries the paper
// needs: member counts, the k least-loaded representatives with a primary
// contact, the OR of subscription Bloom filters, and the publisher roster.
const DefaultAggregationSource = `SELECT
	SUM(COALESCE(nmembers, 1)) AS nmembers,
	REPS(3, load, COALESCE(reps, addr)) AS reps,
	MINV(load, addr) AS addr,
	MIN(load) AS load,
	BIT_OR(subs) AS subs,
	UNION(pubs) AS pubs`

// DefaultAggregation parses DefaultAggregationSource.
func DefaultAggregation() *sqlagg.Program {
	return sqlagg.MustParse(DefaultAggregationSource)
}

// PrefixOp is the merge operator a PrefixRule applies.
type PrefixOp int

// Prefix aggregation operators.
const (
	PrefixBitOr PrefixOp = iota + 1
	PrefixBoolOr
	PrefixSum
	// PrefixMin and PrefixMax keep the smallest/largest value under
	// value.Compare semantics: numeric across Int/Float, lexical within
	// strings, chronological within times. Incomparable values keep the
	// accumulator.
	PrefixMin
	PrefixMax
	// PrefixSketch merges encoded metrics.Sketch byte values bucket-wise,
	// so latency distributions aggregate losslessly up the hierarchy.
	PrefixSketch
	// PrefixSubgroup merges encoded bloom signature sets
	// (bloom.MergeSignatureSets): subgroup filters from both sides are
	// concatenated and greedily re-clustered down to the larger side's K,
	// so a zone row summarizes its children's predicate subscriptions as
	// up to K tight subgroup filters instead of one saturated OR (§7,
	// pubsub.ModePredicate).
	PrefixSubgroup
)

// PrefixRule aggregates every attribute whose name starts with Prefix,
// independently per attribute name. This models the paper's early
// prototype (§7), where "each available publisher is represented as an
// attribute in Astrolabe" holding a category bit mask — a dynamic
// attribute set a fixed SELECT list cannot name. Experiment E8 uses a
// per-subscription prefix rule to reproduce the "poorly scalable"
// attribute-per-subscription design the Bloom filter replaces.
type PrefixRule struct {
	Prefix string
	Op     PrefixOp
}

// msgOverhead mirrors the fixed per-message envelope cost wire's
// EstimateSize charges for row-bearing gossip kinds — magic, kind, the
// From-address and zone-ref framing bytes, and the interned-table
// allowance — excluding the From address itself, which the transport
// stamps at send time. (Assumes addresses shorter than 128 bytes, so
// their length prefix is one byte; the accounting parity test pins this.)
// Digest-only frames carry a much smaller table (zone paths only, no
// attribute names), so they get their own constant.
const (
	msgOverhead       = 4 + wire.GossipTableOverhead
	digestMsgOverhead = 4 + wire.DigestTableOverhead
)

// Config configures an Agent.
type Config struct {
	// Name is the agent's row name, unique within its leaf zone.
	Name string
	// ZonePath is the leaf zone the agent lives in, e.g. "/usa/ny".
	ZonePath string
	// Transport delivers and receives wire messages. The agent stores
	// Transport.Addr() in its row's addr attribute.
	Transport transport.Transport
	// Clock supplies time (vtime.Real{} for live use, the simulator's
	// virtual clock in experiments).
	Clock vtime.Clock
	// Rand drives gossip partner selection. Required: injecting it keeps
	// simulations deterministic.
	Rand *rand.Rand
	// GossipInterval is the expected time between Tick calls; it scales
	// the failure timeout. Default 2s.
	GossipInterval time.Duration
	// FailTimeout is how stale a leaf row may get before it is evicted
	// (failure detection, §3). Default 10×GossipInterval.
	FailTimeout time.Duration
	// AggFailTimeout is the eviction timeout for aggregated zone rows.
	// It must exceed FailTimeout: when a zone's only elected
	// representative dies, sibling zones stop receiving refreshes until
	// re-election completes (one FailTimeout later), and evicting the
	// sibling row in that window would partition the hierarchy
	// permanently. Default 4×FailTimeout.
	AggFailTimeout time.Duration
	// Fanout is how many partners to gossip with per level per Tick.
	// Default 1.
	Fanout int
	// Aggregation is the zone aggregation program. Default
	// DefaultAggregation().
	Aggregation *sqlagg.Program
	// PrefixRules aggregate dynamically named attributes (see PrefixRule).
	PrefixRules []PrefixRule
	// SignRow, when set, signs rows this agent issues (its own leaf row
	// and aggregates it computes).
	SignRow func(r *wire.RowUpdate)
	// VerifyRow, when set, authenticates rows received in gossip; rows
	// failing verification are discarded.
	VerifyRow func(r *wire.RowUpdate) error
	// DisableDeltaGossip makes the agent initiate anti-entropy by pushing
	// its full shared state (the pre-digest protocol) instead of a row
	// digest. Delta gossip is the default; the full-state path is kept as
	// a fallback and for ablation experiments. Agents handle both
	// protocols on receive regardless of this setting, so mixed clusters
	// interoperate.
	DisableDeltaGossip bool
}

// Row is a snapshot of one MIB row, copied out of the agent's internal
// state for callers. Attrs is shared with the immutable stored row and
// must be treated as read-only.
type Row struct {
	Name   string
	Attrs  value.Map
	Issued time.Time
	Owner  string
	Signer string
	Sig    []byte
}

// snapshotRow renders a stored shared row as a public Row snapshot.
func snapshotRow(r *wire.SharedRow) Row {
	return Row{
		Name:   r.Name,
		Attrs:  r.Attrs,
		Issued: r.Issued,
		Owner:  r.Owner,
		Signer: r.Signer,
		Sig:    r.Sig,
	}
}

// sameAttrs reports whether two attribute maps share the same backing
// storage — the dominant steady-state merge case, where a heartbeat
// re-issue of an unchanged row carries the very map this agent already
// stores. It is a pure fast path for Map.Equal: identical storage implies
// equal content.
func sameAttrs(a, b value.Map) bool {
	return len(a) > 0 && len(a) == len(b) &&
		reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// Stats counts agent activity, for tests and experiment tables.
type Stats struct {
	GossipsSent     int64
	GossipsReceived int64
	RepliesReceived int64
	RowsMerged      int64
	RowsRejected    int64
	RowsExpired     int64
	// GossipBytesSent estimates the wire bytes of all anti-entropy
	// traffic this agent initiated or answered, using the same size
	// model as wire.Message.EstimateSize.
	GossipBytesSent int64
	// RowsSent counts full row updates shipped in gossip messages.
	RowsSent int64
	// DigestsSent counts digest entries shipped in GossipDigest messages.
	DigestsSent int64
	// StampsSent counts re-issue stamps shipped in delta replies in place
	// of full rows (identical content on both sides, only the issue time
	// lagged, row unsigned).
	StampsSent int64
	// StampsApplied counts stored rows re-stamped to a newer issue time
	// without their attribute bytes crossing the wire — from a peer's
	// stamp, or locally when a digest proves the peer holds the very
	// bytes this agent stores.
	StampsApplied int64
	// AggEvals counts aggregation program evaluations. Dirty-zone
	// tracking exists to keep this from growing when no input changed;
	// tests assert a quiescent Tick adds zero.
	AggEvals int64
}

// table is one replicated zone table. Rows are immutable shared values
// (wire.SharedRow): merging a gossiped row installs the sender's pointer,
// so the table is copy-on-write — writers never modify a stored row, they
// replace the map entry with a freshly built one.
type table struct {
	rows map[string]*wire.SharedRow
	// dirty records that the attribute *content* of this table changed
	// (row added, removed, or attributes replaced) since the zone's
	// aggregate was last computed. Timestamp-only refreshes — the
	// steady-state heartbeat traffic — leave it clear, letting
	// recomputeAggregatesLocked re-stamp the aggregate row without
	// re-running the aggregation program.
	dirty bool
	// aggHash is the attrs hash of the aggregate row this agent last
	// computed (or confirmed) for this zone. The re-stamp fast path only
	// trusts a stored aggregate that still matches it: a row mutated
	// behind the agent's back (corruption, a buggy merge) must be
	// recomputed from inputs, never re-stamped and re-signed as-is.
	aggHash uint64
}

// Agent is one Astrolabe participant: it owns a row in its leaf zone,
// replicates the tables of its ancestor chain, gossips them epidemically,
// and recomputes aggregate rows for its chain.
type Agent struct {
	cfg   Config
	name  string
	addr  string
	leaf  string
	chain []string // root-first, ending at leaf zone

	// stampLag is how stale a hash-equal replica must be before a
	// heartbeat stamp (or local re-stamp) refreshes it. Propagating
	// freshness in stampLag jumps rather than every round keeps
	// steady-state anti-entropy traffic near zero; FailTimeout is 5×
	// this, so the margin before spurious expiry stays wide.
	stampLag time.Duration

	mu      sync.Mutex
	tables  map[string]*table
	ownRow  *wire.SharedRow
	stats   Stats
	started time.Time
}

// NewAgent validates cfg and returns an agent with its own row issued
// (but not yet gossiped — call Tick to start participating).
func NewAgent(cfg Config) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("astrolabe: agent name required")
	}
	if err := ValidateZonePath(cfg.ZonePath); err != nil {
		return nil, err
	}
	if cfg.ZonePath == RootZone {
		return nil, fmt.Errorf("astrolabe: agents must live below the root zone")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("astrolabe: transport required")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("astrolabe: clock required")
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("astrolabe: rand required")
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 2 * time.Second
	}
	if cfg.FailTimeout <= 0 {
		cfg.FailTimeout = 10 * cfg.GossipInterval
	}
	if cfg.AggFailTimeout <= 0 {
		cfg.AggFailTimeout = 4 * cfg.FailTimeout
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 1
	}
	if cfg.Aggregation == nil {
		cfg.Aggregation = DefaultAggregation()
	}

	a := &Agent{
		cfg:      cfg,
		name:     cfg.Name,
		addr:     cfg.Transport.Addr(),
		leaf:     cfg.ZonePath,
		chain:    AncestorChain(cfg.ZonePath),
		tables:   make(map[string]*table),
		stampLag: cfg.FailTimeout / 5,
	}
	for _, z := range a.chain {
		a.tables[z] = &table{rows: make(map[string]*wire.SharedRow), dirty: true}
	}
	now := cfg.Clock.Now()
	a.started = now
	a.ownRow = &wire.SharedRow{
		Name: a.name,
		Attrs: value.Map{
			AttrAddr: value.String(a.addr),
			AttrLoad: value.Float(0),
		},
		Issued: now,
		Owner:  a.addr,
	}
	a.signRowLocked(a.ownRow, a.leaf)
	a.tables[a.leaf].rows[a.name] = a.ownRow
	a.recomputeAggregatesLocked()
	return a, nil
}

// Name returns the agent's row name.
func (a *Agent) Name() string { return a.name }

// Addr returns the agent's transport address.
func (a *Agent) Addr() string { return a.addr }

// ZonePath returns the agent's leaf zone.
func (a *Agent) ZonePath() string { return a.leaf }

// Chain returns the agent's ancestor chain, root-first, ending at its
// leaf zone. The returned slice is shared; do not modify.
func (a *Agent) Chain() []string { return a.chain }

// Stats returns a copy of the agent's activity counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// SetAttr updates one attribute of the agent's own row and re-issues it.
// The agent's row map is copied on write, preserving the immutability of
// previously gossiped maps.
func (a *Agent) SetAttr(name string, v value.Value) {
	a.mu.Lock()
	defer a.mu.Unlock()
	attrs := a.ownRow.Attrs.Clone()
	if v.IsValid() {
		attrs[name] = v
	} else {
		delete(attrs, name)
	}
	a.reissueOwnRowLocked(attrs, true)
	a.recomputeAggregatesLocked()
}

// SetAttrs updates several attributes at once (one re-issue).
func (a *Agent) SetAttrs(m value.Map) {
	a.mu.Lock()
	defer a.mu.Unlock()
	attrs := a.ownRow.Attrs.Clone()
	for name, v := range m {
		if v.IsValid() {
			attrs[name] = v
		} else {
			delete(attrs, name)
		}
	}
	a.reissueOwnRowLocked(attrs, true)
	a.recomputeAggregatesLocked()
}

// Attr reads one attribute of the agent's own row.
func (a *Agent) Attr(name string) value.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ownRow.Attrs[name]
}

// reissueOwnRowLocked replaces the agent's own row with a freshly built
// shared row (the stored one is immutable and may be referenced by every
// peer that merged it). contentChanged reports whether attrs differ from
// the current row: heartbeats pass false, which both keeps the leaf table
// clean for the incremental-aggregation fast path and carries the cached
// encoding/digest over to the new row.
func (a *Agent) reissueOwnRowLocked(attrs value.Map, contentChanged bool) {
	row := &wire.SharedRow{
		Name:   a.name,
		Attrs:  attrs,
		Issued: a.cfg.Clock.Now(),
		Owner:  a.addr,
	}
	if contentChanged {
		a.tables[a.leaf].dirty = true
	} else if old := a.ownRow; old != nil {
		row.AdoptCache(old)
	}
	a.signRowLocked(row, a.leaf)
	a.ownRow = row
	a.tables[a.leaf].rows[a.name] = row
}

func (a *Agent) signRowLocked(r *wire.SharedRow, zone string) {
	if a.cfg.SignRow == nil {
		return
	}
	u := wire.RowUpdate{
		Zone:   zone,
		Name:   r.Name,
		Attrs:  r.Attrs,
		Issued: r.Issued,
		Owner:  r.Owner,
	}
	a.cfg.SignRow(&u)
	r.Signer = u.Signer
	r.Sig = u.Sig
}

// Table returns a snapshot of the rows of one replicated zone table,
// sorted by row name. Attrs maps are shared and must be treated as
// read-only. The second result reports whether the agent replicates the
// zone at all.
func (a *Agent) Table(zone string) ([]Row, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tables[zone]
	if !ok {
		return nil, false
	}
	rows := make([]Row, 0, len(t.rows))
	for _, r := range t.rows {
		rows = append(rows, snapshotRow(r))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, true
}

// Row returns one row of a replicated zone table.
func (a *Agent) Row(zone, name string) (Row, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tables[zone]
	if !ok {
		return Row{}, false
	}
	r, ok := t.rows[name]
	if !ok {
		return Row{}, false
	}
	return snapshotRow(r), true
}

// IsRepresentative reports whether this agent is currently an elected
// representative of its child zone within zone (i.e. whether it gossips
// and forwards at that level). zone must be a proper ancestor of the
// agent's leaf zone.
func (a *Agent) IsRepresentative(zone string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.isRepresentativeLocked(zone)
}

func (a *Agent) isRepresentativeLocked(zone string) bool {
	child, ok := ChildToward(zone, a.leaf)
	if !ok {
		// zone == leaf: every member participates at leaf level.
		return zone == a.leaf
	}
	t, ok := a.tables[zone]
	if !ok {
		return false
	}
	row, ok := t.rows[ZoneName(child)]
	if !ok {
		return false
	}
	reps, ok := row.Attrs[AttrReps].AsStrings()
	if !ok {
		return false
	}
	for _, r := range reps {
		if r == a.addr {
			return true
		}
	}
	return false
}

// OwnRowUpdate returns the agent's current leaf row as a RowUpdate, for
// seeding other agents' membership at bootstrap.
func (a *Agent) OwnRowUpdate() wire.RowUpdate {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ownRow.Update(a.leaf)
}

// ChainRowUpdates returns the agent's own leaf row plus the aggregate row
// it computed for each zone on its chain. Merging another agent's chain
// rows is the bootstrap introduction: same-zone peers learn the leaf row,
// distant peers learn the aggregated zone rows they share tables with (the
// zone-placement configuration the paper defers to the Astrolabe effort,
// §8).
func (a *Agent) ChainRowUpdates() []wire.RowUpdate {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := []wire.RowUpdate{a.ownRow.Update(a.leaf)}
	for i := len(a.chain) - 1; i >= 1; i-- {
		child := a.chain[i]
		parent := a.chain[i-1]
		if r, ok := a.tables[parent].rows[ZoneName(child)]; ok {
			out = append(out, r.Update(parent))
		}
	}
	return out
}

// MergeRows folds externally obtained rows (bootstrap seeds or state
// transfer) into the agent's replicas, as if they had arrived in gossip.
func (a *Agent) MergeRows(rows []wire.RowUpdate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mergeRowsLocked(rows)
	a.recomputeAggregatesLocked()
}

// Tick advances the agent one gossip round: re-issue the heartbeat on its
// own row, evict stale rows, recompute aggregates, and gossip with
// partners at every level where this agent is active.
func (a *Agent) Tick() {
	a.mu.Lock()
	now := a.cfg.Clock.Now()

	// Heartbeat: re-issue own row so peers' failure detectors stay quiet.
	a.reissueOwnRowLocked(a.ownRow.Attrs, false)

	// Failure detection: evict rows that have not been refreshed.
	a.expireLocked(now)

	// Recompute the aggregate rows along this agent's chain.
	a.recomputeAggregatesLocked()

	// Choose gossip partners under the lock, send after releasing it.
	type dest struct {
		addr  string
		level string // deepest shared zone
	}
	var dests []dest
	for i := len(a.chain) - 1; i >= 0; i-- {
		zone := a.chain[i]
		if zone == a.leaf {
			for _, addr := range a.pickLeafPartnersLocked(a.cfg.Fanout) {
				dests = append(dests, dest{addr: addr, level: zone})
			}
			continue
		}
		if !a.isRepresentativeLocked(zone) {
			continue
		}
		for _, addr := range a.pickZonePartnersLocked(zone, a.cfg.Fanout) {
			dests = append(dests, dest{addr: addr, level: zone})
		}
	}

	msgs := make([]*wire.Message, 0, len(dests))
	addrs := make([]string, 0, len(dests))
	for _, d := range dests {
		var m *wire.Message
		var payload, overhead int
		if a.cfg.DisableDeltaGossip {
			rows, size := a.sharedRowsLocked(d.level)
			m = &wire.Message{
				Kind:   wire.KindGossip,
				Gossip: &wire.Gossip{FromZone: a.leaf, Rows: rows},
			}
			a.stats.RowsSent += int64(len(rows))
			payload = wire.UvarintLen(uint64(len(rows))) + size
			overhead = msgOverhead
		} else {
			digests, size := a.digestLocked(d.level)
			m = &wire.Message{
				Kind:         wire.KindGossipDigest,
				GossipDigest: &wire.GossipDigest{FromZone: a.leaf, Digests: digests},
			}
			a.stats.DigestsSent += int64(len(digests))
			payload = wire.UvarintLen(uint64(len(digests))) + size
			overhead = digestMsgOverhead
		}
		msgs = append(msgs, m)
		addrs = append(addrs, d.addr)
		a.stats.GossipsSent++
		a.stats.GossipBytesSent += int64(overhead + len(a.addr) + payload)
	}
	tr := a.cfg.Transport
	a.mu.Unlock()

	for i, m := range msgs {
		// Best-effort: the epidemic tolerates loss.
		_ = tr.Send(addrs[i], m)
	}
}

// HandleMessage processes one inbound message. Non-gossip messages are
// ignored (the pub/sub layer routes those before they get here).
func (a *Agent) HandleMessage(msg *wire.Message) {
	switch msg.Kind {
	case wire.KindGossip:
		a.handleGossip(msg)
	case wire.KindGossipReply:
		a.handleGossipReply(msg)
	case wire.KindGossipDigest:
		a.handleGossipDigest(msg)
	case wire.KindGossipDelta:
		a.handleGossipDelta(msg)
	default:
	}
}

func (a *Agent) handleGossip(msg *wire.Message) {
	g := msg.Gossip
	a.mu.Lock()
	a.stats.GossipsReceived++
	// Merged rows take effect in routing immediately; the aggregate rows
	// they feed are recomputed once per Tick rather than per message —
	// an eventual-consistency system gains nothing from paying the SQL
	// evaluation on every gossip exchange, and at 10⁵ nodes that cost
	// dominates the simulation.
	a.mergeRowsLocked(g.Rows)

	// Reply with our rows of the tables the two agents share.
	common := CommonAncestor(a.leaf, g.FromZone)
	rows, size := a.sharedRowsLocked(common)
	reply := &wire.Message{
		Kind: wire.KindGossipReply,
		GossipReply: &wire.GossipReply{
			FromZone: a.leaf,
			Rows:     rows,
		},
	}
	a.stats.RowsSent += int64(len(rows))
	a.stats.GossipBytesSent += int64(msgOverhead + len(a.addr) +
		wire.UvarintLen(uint64(len(rows))) + size)
	tr := a.cfg.Transport
	a.mu.Unlock()

	_ = tr.Send(msg.From, reply)
}

func (a *Agent) handleGossipReply(msg *wire.Message) {
	a.mu.Lock()
	a.stats.RepliesReceived++
	a.mergeRowsLocked(msg.GossipReply.Rows)
	a.mu.Unlock()
}

// handleGossipDigest serves the request leg of a delta exchange: diff
// the initiator's digest against local state and reply with the rows the
// initiator is missing or stale on, plus refs of the rows this agent
// wants back.
func (a *Agent) handleGossipDigest(msg *wire.Message) {
	g := msg.GossipDigest
	a.mu.Lock()
	a.stats.GossipsReceived++
	rows, want, stamps, size := a.diffDigestLocked(g.FromZone, g.Digests)
	reply := &wire.Message{
		Kind: wire.KindGossipDelta,
		GossipDelta: &wire.GossipDelta{
			FromZone: a.leaf,
			Rows:     rows,
			Want:     want,
			Stamps:   stamps,
		},
	}
	a.stats.RowsSent += int64(len(rows))
	a.stats.StampsSent += int64(len(stamps))
	a.stats.GossipBytesSent += int64(msgOverhead + len(a.addr) +
		wire.UvarintLen(uint64(len(rows))) + wire.UvarintLen(uint64(len(want))) +
		size + wire.StampsSize(stamps))
	tr := a.cfg.Transport
	a.mu.Unlock()

	_ = tr.Send(msg.From, reply)
}

// handleGossipDelta merges the rows of a delta reply and, if the sender
// asked for rows back, answers with a final one-way delta (empty Want),
// which completes the exchange.
func (a *Agent) handleGossipDelta(msg *wire.Message) {
	g := msg.GossipDelta
	a.mu.Lock()
	a.stats.RepliesReceived++
	a.mergeRowsLocked(g.Rows)
	a.applyStampsLocked(g.Stamps)
	if len(g.Want) == 0 {
		a.mu.Unlock()
		return
	}
	rows, size := a.rowsForRefsLocked(g.Want)
	if len(rows) == 0 {
		a.mu.Unlock()
		return
	}
	final := &wire.Message{
		Kind: wire.KindGossipDelta,
		GossipDelta: &wire.GossipDelta{
			FromZone: a.leaf,
			Rows:     rows,
		},
	}
	a.stats.RowsSent += int64(len(rows))
	// +1: the final delta's empty Want still costs a count byte.
	a.stats.GossipBytesSent += int64(msgOverhead + len(a.addr) +
		wire.UvarintLen(uint64(len(rows))) + 1 + size)
	tr := a.cfg.Transport
	a.mu.Unlock()

	_ = tr.Send(msg.From, final)
}

// sharedRowsLocked collects every row of the tables from `deepest` up to
// the root, along with the estimated wire size of the collected rows
// (computed from the cached encodings, so nothing is re-encoded). When
// deepest is the agent's leaf zone the whole chain is sent.
func (a *Agent) sharedRowsLocked(deepest string) ([]wire.RowUpdate, int) {
	total := 0
	for _, zone := range a.chain {
		if ZoneContains(zone, deepest) {
			total += len(a.tables[zone].rows)
		}
	}
	out := make([]wire.RowUpdate, 0, total)
	size := 0
	for _, zone := range a.chain {
		// Include zone if it is an ancestor-or-equal of the deepest
		// shared zone.
		if !ZoneContains(zone, deepest) {
			continue
		}
		t := a.tables[zone]
		for _, r := range t.rows {
			out = append(out, r.Update(zone))
			size += wire.RowSize(&out[len(out)-1], r.WireAttrsSize())
		}
	}
	return out, size
}

// digestLocked summarizes every row of the tables from `deepest` up to
// the root as RowDigest entries, plus their estimated wire size. Row
// hashes come from the per-row cache, so steady-state digests cost no
// encoding work.
func (a *Agent) digestLocked(deepest string) ([]wire.RowDigest, int) {
	total := 0
	for _, zone := range a.chain {
		if ZoneContains(zone, deepest) {
			total += len(a.tables[zone].rows)
		}
	}
	out := make([]wire.RowDigest, 0, total)
	for _, zone := range a.chain {
		if !ZoneContains(zone, deepest) {
			continue
		}
		t := a.tables[zone]
		for _, r := range t.rows {
			out = append(out, wire.RowDigest{
				Zone:   zone,
				Name:   r.Name,
				Issued: r.Issued,
				Hash:   r.AttrsHash(),
			})
		}
	}
	return out, wire.DigestsSize(out)
}

// diffDigestLocked compares an initiator's digest against local state.
// It returns the rows the initiator needs (missing rows, rows we hold
// fresher with changed content, and the same-timestamp hash-mismatch
// case, where both sides exchange full rows so the encoded tie-break
// converges them), the refs of rows the initiator advertised fresher
// changed copies of, re-issue stamps for rows we hold fresher whose
// bytes the initiator already stores, and the estimated wire size of the
// rows and refs (stamps are sized separately via wire.StampsSize).
//
// The stamp paths are the steady-state optimization: once a cluster
// converges, nearly every row differs between peers only by its
// heartbeat issue time while the attribute bytes — provably identical
// when the digest hashes match — are already on both sides. Shipping a
// ~25-byte stamp (or, when the initiator is the fresher side, re-issuing
// the stored copy locally with no wire traffic at all) instead of the
// full row removes the dominant share of anti-entropy bytes. Signed rows
// are excluded: a re-stamped row carries an issue time its owner never
// signed, so they always travel whole.
func (a *Agent) diffDigestLocked(fromZone string, digests []wire.RowDigest) ([]wire.RowUpdate, []wire.RowRef, []wire.RowDigest, int) {
	common := CommonAncestor(a.leaf, fromZone)
	var rows []wire.RowUpdate
	var want []wire.RowRef
	var stamps []wire.RowDigest
	size := 0

	sendRow := func(zone string, r *wire.SharedRow) {
		rows = append(rows, r.Update(zone))
		size += wire.RowSize(&rows[len(rows)-1], r.WireAttrsSize())
	}
	wantRow := func(zone, name string) {
		want = append(want, wire.RowRef{Zone: zone, Name: name})
		size += wire.RefSize(&want[len(want)-1])
	}
	stampRow := func(zone string, r *wire.SharedRow) {
		stamps = append(stamps, wire.RowDigest{
			Zone: zone, Name: r.Name, Issued: r.Issued, Hash: r.AttrsHash(),
		})
	}

	// digested tracks which of our rows the initiator mentioned, so the
	// second pass can push the rows it has never seen.
	digested := make(map[string]map[string]bool, len(a.chain))

	for i := range digests {
		d := &digests[i]
		t, ok := a.tables[d.Zone]
		if !ok {
			continue // we do not replicate that table
		}
		seen := digested[d.Zone]
		if seen == nil {
			seen = make(map[string]bool)
			digested[d.Zone] = seen
		}
		seen[d.Name] = true
		r, ok := t.rows[d.Name]
		if !ok {
			// The initiator has a row we lack: ask for it.
			wantRow(d.Zone, d.Name)
			continue
		}
		// Leaf member rows take the full stampLag: their owners re-issue
		// every Tick, so replicas may run a couple of rounds stale with
		// no consequence beyond failure-detection slack. Aggregate rows
		// (every non-leaf table) are exempt: their stamps advance with
		// the freshest child heartbeat, so a transiently-wrong aggregate
		// always carries a fresher stamp than lagging replicas of the
		// corrected content and would keep winning exchanges for a full
		// stampLag — stretching chaos-suite self-healing past its round
		// budget. There are only a handful of aggregate rows per table,
		// so stamping them every exchange costs a few dozen bytes.
		lag := a.stampLag
		if d.Zone != a.leaf {
			lag = 0
		}
		switch {
		case r.Issued.After(d.Issued):
			if len(r.Sig) == 0 && r.AttrsHash() == d.Hash {
				// Same bytes both sides, ours fresher. Below the stamp
				// lag the initiator's copy is fresh enough to need
				// nothing at all; past it, a ~25-byte stamp refreshes
				// the replica without shipping the row. Propagating
				// freshness in stampLag-sized jumps instead of every
				// round is what keeps steady-state heartbeat traffic —
				// bytes and allocations both — near zero.
				if r.Issued.Sub(d.Issued) >= lag {
					stampRow(d.Zone, r)
				}
			} else {
				sendRow(d.Zone, r)
			}
		case d.Issued.After(r.Issued):
			if len(r.Sig) == 0 && r.AttrsHash() == d.Hash &&
				!(d.Zone == a.leaf && d.Name == a.name) {
				// The initiator is fresher but holds the very bytes we
				// store: re-issue our copy locally at its stamp. No want
				// ref, no reply bytes, no final-leg row. Below the stamp
				// lag our copy is fresh enough as-is.
				if d.Issued.Sub(r.Issued) >= lag {
					a.restampLocked(t, r, d.Issued)
				}
			} else {
				wantRow(d.Zone, d.Name)
			}
		case r.AttrsHash() != d.Hash:
			// Same issue time, different content: both sides need the
			// full rows to run the deterministic encoded tie-break.
			sendRow(d.Zone, r)
			wantRow(d.Zone, d.Name)
		}
	}

	// Push every shared-table row the initiator did not digest at all.
	for _, zone := range a.chain {
		if !ZoneContains(zone, common) {
			continue
		}
		seen := digested[zone]
		for name, r := range a.tables[zone].rows {
			if !seen[name] {
				sendRow(zone, r)
			}
		}
	}
	return rows, want, stamps, size
}

// restampLocked replaces a stored row with a copy re-issued at `at`,
// carrying the attribute map and the encoding/digest caches over. The
// caller has proven the content identical on both sides (equal attrs
// hash) and the row unsigned; re-stamping never marks a zone dirty —
// it is the wire-free equivalent of a heartbeat re-delivery.
func (a *Agent) restampLocked(t *table, r *wire.SharedRow, at time.Time) {
	row := &wire.SharedRow{
		Name:   r.Name,
		Attrs:  r.Attrs,
		Issued: at,
		Owner:  r.Owner,
	}
	row.AdoptCache(r)
	t.rows[r.Name] = row
	a.stats.StampsApplied++
}

// applyStampsLocked re-issues stored rows from a peer's stamps. Rows
// that expired, drifted (hash mismatch), went stale-side, or are signed
// are skipped — the epidemic's full-row path repairs those on a later
// exchange.
func (a *Agent) applyStampsLocked(stamps []wire.RowDigest) {
	for i := range stamps {
		s := &stamps[i]
		t, ok := a.tables[s.Zone]
		if !ok {
			continue
		}
		if s.Zone == a.leaf && s.Name == a.name {
			continue // authoritative for our own row
		}
		r, ok := t.rows[s.Name]
		if !ok || !s.Issued.After(r.Issued) {
			continue
		}
		if len(r.Sig) != 0 || r.AttrsHash() != s.Hash {
			continue
		}
		a.restampLocked(t, r, s.Issued)
	}
}

// rowsForRefsLocked resolves Want refs to full row updates for the final
// leg of a delta exchange, skipping rows that expired or were superseded
// since the digest was built.
func (a *Agent) rowsForRefsLocked(refs []wire.RowRef) ([]wire.RowUpdate, int) {
	var out []wire.RowUpdate
	size := 0
	for i := range refs {
		ref := &refs[i]
		t, ok := a.tables[ref.Zone]
		if !ok {
			continue
		}
		r, ok := t.rows[ref.Name]
		if !ok {
			continue
		}
		out = append(out, r.Update(ref.Zone))
		size += wire.RowSize(&out[len(out)-1], r.WireAttrsSize())
	}
	return out, size
}

func (a *Agent) mergeRowsLocked(rows []wire.RowUpdate) {
	for i := range rows {
		u := &rows[i]
		t, ok := a.tables[u.Zone]
		if !ok {
			continue // we do not replicate that table
		}
		if u.Zone == a.leaf && u.Name == a.name {
			continue // we are authoritative for our own row
		}
		existing, exists := t.rows[u.Name]
		if exists && existing == u.Shared() {
			continue // re-delivery of the very row we store
		}
		if exists && !u.Issued.After(existing.Issued) {
			if !u.Issued.Equal(existing.Issued) {
				continue
			}
			// Same timestamp. The overwhelmingly common case in steady
			// state is an identical re-delivery — skip it cheaply before
			// paying for the encoded tie-break. Shared-map identity makes
			// the check O(1) when sender and receiver hold the same row.
			if sameAttrs(existing.Attrs, u.Attrs) || existing.Attrs.Equal(u.Attrs) {
				continue
			}
			// Equal timestamps with different content: deterministic
			// tie-break on the encoded attributes so all replicas agree.
			// Both encodings come from (or seed) the shared rows' caches.
			uenc := u.AsShared().Encoding()
			if bytes.Compare(existing.Encoding(), uenc) >= 0 {
				continue
			}
		}
		if a.cfg.VerifyRow != nil {
			if err := a.cfg.VerifyRow(u); err != nil {
				a.stats.RowsRejected++
				continue
			}
		}
		if !exists || !(sameAttrs(existing.Attrs, u.Attrs) || existing.Attrs.Equal(u.Attrs)) {
			// Content changed (timestamp-only refreshes leave the zone
			// clean, so heartbeats do not trigger re-aggregation).
			t.dirty = true
		}
		// Install the sender's shared row by reference: an identical
		// foreign row replicated across the whole system stays one
		// allocation, and its encoding/digest caches are computed once,
		// not once per replica.
		t.rows[u.Name] = u.AsShared()
		a.stats.RowsMerged++
	}
}

func (a *Agent) expireLocked(now time.Time) {
	leafCutoff := now.Add(-a.cfg.FailTimeout)
	aggCutoff := now.Add(-a.cfg.AggFailTimeout)
	for zone, t := range a.tables {
		cutoff := aggCutoff
		if zone == a.leaf {
			cutoff = leafCutoff
		}
		for name, r := range t.rows {
			if zone == a.leaf && name == a.name {
				continue
			}
			if r.Issued.Before(cutoff) {
				if _, virt := r.Attrs[AttrVirtual]; virt {
					// Virtual leaves have no agent reissuing their row;
					// the template is live for the whole run.
					continue
				}
				delete(t.rows, name)
				t.dirty = true
				a.stats.RowsExpired++
			}
		}
	}
}

// recomputeAggregatesLocked recomputes the aggregate row of each zone on
// this agent's chain into its parent's table. The aggregate row's issue
// time is the max issue time of its inputs, which makes the computation
// deterministic across replicas: same inputs produce the same row with the
// same timestamp, so freshest-wins merging converges.
//
// Aggregation is incremental: a zone whose attribute content has not
// changed since its last aggregate (table.dirty clear) skips the program
// evaluation entirely. Steady-state heartbeats only advance issue times,
// so the clean path merely re-stamps the aggregate row this agent owns
// with the new max input time — keeping the failure detector fed without
// a single Eval. Zones iterate deepest-first, so a content change deep in
// the chain marks each ancestor dirty before the ancestor is visited.
func (a *Agent) recomputeAggregatesLocked() {
	for i := len(a.chain) - 1; i >= 1; i-- {
		child := a.chain[i]
		parent := a.chain[i-1]
		ct := a.tables[child]
		if len(ct.rows) == 0 {
			continue
		}
		name := ZoneName(child)
		pt := a.tables[parent]

		var latest time.Time
		for _, r := range ct.rows {
			if r.Issued.After(latest) {
				latest = r.Issued
			}
		}

		if !ct.dirty {
			existing, exists := pt.rows[name]
			switch {
			case exists && existing.Owner == a.addr && existing.AttrsHash() == ct.aggHash:
				// Same content, fresher inputs: re-stamp our aggregate
				// so peers' failure detectors see it refreshed. The Attrs
				// map is unchanged, so the fresh row adopts the old row's
				// caches instead of re-encoding. The hash check keeps this
				// path honest: re-stamping is only sound for content this
				// agent actually computed — a row mutated behind our back
				// must not be relaunched with a fresh stamp and signature.
				if latest.After(existing.Issued) {
					row := &wire.SharedRow{
						Name:   name,
						Attrs:  existing.Attrs,
						Issued: latest,
						Owner:  a.addr,
					}
					row.AdoptCache(existing)
					a.signRowLocked(row, parent)
					pt.rows[name] = row
				}
				continue
			case exists && existing.Owner != a.addr:
				// A peer owns the current aggregate; it refreshes via
				// gossip. Nothing to do for a clean zone.
				continue
			}
			// No aggregate row at all, or our own stored aggregate no
			// longer matches what we computed: fall through to the full
			// path.
		}

		rows := make([]*wire.SharedRow, 0, len(ct.rows))
		for _, r := range ct.rows {
			rows = append(rows, r)
		}
		// Deterministic input order (map iteration is random), compared
		// on cached encodings so no map is re-encoded per comparison.
		sort.Slice(rows, func(x, y int) bool {
			ax, _ := rows[x].Attrs[AttrAddr].AsString()
			ay, _ := rows[y].Attrs[AttrAddr].AsString()
			if ax != ay {
				return ax < ay
			}
			return rows[x].EncLess(rows[y])
		})
		inputs := make([]value.Map, len(rows))
		for x, r := range rows {
			inputs[x] = r.Attrs
		}
		a.stats.AggEvals++
		out, err := a.cfg.Aggregation.Eval(inputs)
		if err != nil {
			continue // a broken program must not kill the agent
		}
		applyPrefixRules(a.cfg.PrefixRules, inputs, out)

		// The zone stays dirty until the stored aggregate row actually
		// reflects this output: a skip below (peer's copy fresher, or a
		// same-stamp tie-break loss) must retry next Tick once input
		// heartbeats advance `latest` past the stored copy — otherwise
		// the losing content would be re-stamped forever by its owner's
		// clean path and never corrected.
		existing, exists := pt.rows[name]
		if exists && existing.Attrs.Equal(out) {
			// Whoever stamped the stored copy, it matches the current
			// content: the zone is clean, and the owner keeps it fresh.
			ct.dirty = false
			ct.aggHash = existing.AttrsHash()
			continue
		}
		if exists && existing.Issued.After(latest) {
			continue // a peer computed from fresher inputs
		}
		candidate := &wire.SharedRow{
			Name:   name,
			Attrs:  out,
			Issued: latest,
			Owner:  a.addr,
		}
		if exists && existing.Issued.Equal(latest) &&
			bytes.Compare(existing.Encoding(), candidate.Encoding()) >= 0 {
			continue // lost the deterministic tie-break at this stamp
		}
		a.signRowLocked(candidate, parent)
		ct.dirty = false
		ct.aggHash = candidate.AttrsHash()
		pt.dirty = true
		pt.rows[name] = candidate
	}
}

// applyPrefixRules aggregates dynamically named attributes into out.
func applyPrefixRules(rules []PrefixRule, inputs []value.Map, out value.Map) {
	for _, rule := range rules {
		merged := make(map[string]value.Value)
		for _, row := range inputs {
			for name, v := range row {
				if len(name) < len(rule.Prefix) || name[:len(rule.Prefix)] != rule.Prefix {
					continue
				}
				acc, ok := merged[name]
				if !ok {
					merged[name] = v
					continue
				}
				merged[name] = mergePrefixValue(rule.Op, acc, v)
			}
		}
		for name, v := range merged {
			if v.IsValid() {
				out[name] = v
			}
		}
	}
}

func mergePrefixValue(op PrefixOp, acc, v value.Value) value.Value {
	switch op {
	case PrefixBitOr:
		ab, ok1 := acc.RawBytes()
		vb, ok2 := v.RawBytes()
		if !ok1 {
			return v
		}
		if !ok2 {
			return acc
		}
		n := len(ab)
		if len(vb) > n {
			n = len(vb)
		}
		out := make([]byte, n)
		copy(out, ab)
		for i, x := range vb {
			out[i] |= x
		}
		return value.Bytes(out)
	case PrefixBoolOr:
		a, _ := acc.AsBool()
		b, _ := v.AsBool()
		return value.Bool(a || b)
	case PrefixSum:
		a, ok1 := acc.AsFloat()
		b, ok2 := v.AsFloat()
		if !ok1 || !ok2 {
			return acc
		}
		return value.Float(a + b)
	case PrefixMin:
		if c, err := acc.Compare(v); err == nil && c > 0 {
			return v
		}
		return acc
	case PrefixMax:
		if c, err := acc.Compare(v); err == nil && c < 0 {
			return v
		}
		return acc
	case PrefixSketch:
		ab, ok1 := acc.RawBytes()
		vb, ok2 := v.RawBytes()
		if !ok1 {
			return v
		}
		if !ok2 {
			return acc
		}
		merged, err := metrics.MergeEncoded(ab, vb)
		if err != nil {
			return acc
		}
		return value.Bytes(merged)
	case PrefixSubgroup:
		ab, ok1 := acc.RawBytes()
		vb, ok2 := v.RawBytes()
		if !ok1 {
			return v
		}
		if !ok2 {
			return acc
		}
		return value.Bytes(bloom.MergeSignatureSets(ab, vb))
	default:
		return acc
	}
}

// pickLeafPartnersLocked selects up to n random gossip partners from the
// agent's leaf table (excluding itself). A joining agent placed into a
// zone whose members it does not know yet has an empty leaf table; it
// falls back to the representatives its parent-table replica lists for
// the zone, whose gossip replies then carry the full leaf table (the
// join path of §8).
func (a *Agent) pickLeafPartnersLocked(n int) []string {
	t := a.tables[a.leaf]
	candidates := make([]string, 0, len(t.rows))
	for name, r := range t.rows {
		if name == a.name {
			continue
		}
		if _, virt := r.Attrs[AttrVirtual]; virt {
			continue // no agent behind a virtual leaf to gossip with
		}
		if addr, ok := r.Attrs[AttrAddr].AsString(); ok {
			candidates = append(candidates, addr)
		}
	}
	if len(candidates) == 0 {
		if parent, ok := ParentZone(a.leaf); ok {
			if pt, ok := a.tables[parent]; ok {
				if row, ok := pt.rows[ZoneName(a.leaf)]; ok {
					if reps, ok := row.Attrs[AttrReps].AsStrings(); ok {
						for _, rep := range reps {
							if rep != a.addr {
								candidates = append(candidates, rep)
							}
						}
					}
				}
			}
		}
	}
	return samplePartners(a.cfg.Rand, candidates, n)
}

// pickZonePartnersLocked selects up to n partner addresses among the
// representatives of sibling child zones in `zone`'s table.
func (a *Agent) pickZonePartnersLocked(zone string, n int) []string {
	child, _ := ChildToward(zone, a.leaf)
	ownName := ZoneName(child)
	t := a.tables[zone]
	// Visit rows in sorted name order: the rep draw below consumes the
	// seeded rand stream, and pairing draws with rows in map order would
	// make identically-seeded runs diverge.
	names := make([]string, 0, len(t.rows))
	for name := range t.rows {
		if name != ownName {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var candidates []string
	for _, name := range names {
		r := t.rows[name]
		if reps, ok := r.Attrs[AttrReps].AsStrings(); ok && len(reps) > 0 {
			candidates = append(candidates, reps[a.cfg.Rand.Intn(len(reps))])
		} else if addr, ok := r.Attrs[AttrAddr].AsString(); ok {
			candidates = append(candidates, addr)
		}
	}
	return samplePartners(a.cfg.Rand, candidates, n)
}

// ScrambleRows is the chaos-injection hook: it corrupts a fraction of the
// agent's replicated rows in place, modeling arbitrary state damage
// (bit-rot, a buggy peer, an attacker replaying mangled gossip). Each
// victim row is replaced by a freshly built copy (the stored row stays
// immutable — peers may share it) whose attributes are mutated while the
// issue stamp, owner, and any signature are carried over unchanged. The
// stale signature makes a scrambled row fail certificate verification at
// every peer it gossips to; without signing, the unchanged stamp means the
// owner's next heartbeat or aggregate recomputation supersedes it, so the
// damage self-heals within a bounded number of rounds either way.
// Additionally the first two victims of each table have their attribute
// maps swapped (a row permutation, the "arbitrary state" of
// self-stabilization testing).
//
// The agent's own leaf row is never scrambled (it is authoritative and
// reissued every Tick regardless) and neither are virtual-leaf template
// rows (nothing reissues those, so damage to them could never heal).
//
// rng must be owned by the caller and drawn in canonical order; zones and
// rows are visited in sorted order so identically seeded runs scramble
// identically. Returns the number of rows scrambled.
func (a *Agent) ScrambleRows(rng *rand.Rand, frac float64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, zone := range a.chain {
		t := a.tables[zone]
		names := make([]string, 0, len(t.rows))
		for name := range t.rows {
			names = append(names, name)
		}
		sort.Strings(names)
		var victims []*wire.SharedRow
		for _, name := range names {
			r := t.rows[name]
			if zone == a.leaf && name == a.name {
				continue
			}
			if _, virt := r.Attrs[AttrVirtual]; virt {
				continue
			}
			if rng.Float64() >= frac {
				continue
			}
			attrs := r.Attrs.Clone()
			keys := make([]string, 0, len(attrs))
			for k := range attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			if len(keys) > 0 {
				k := keys[rng.Intn(len(keys))]
				attrs[k] = value.String(fmt.Sprintf("scrambled-%d", rng.Int63()))
			}
			mutated := &wire.SharedRow{
				Name:   r.Name,
				Attrs:  attrs,
				Issued: r.Issued, // stale stamp: the owner's next issue wins
				Owner:  r.Owner,
				Signer: r.Signer, // stale signature: fails verification
				Sig:    r.Sig,
			}
			t.rows[name] = mutated
			victims = append(victims, mutated)
			total++
		}
		if len(victims) >= 2 {
			// Permute: swap the attribute maps of the first two victims.
			// Both are freshly built rows not yet shared with any peer, so
			// mutating them here is still within the COW discipline.
			victims[0].Attrs, victims[1].Attrs = victims[1].Attrs, victims[0].Attrs
		}
		if len(victims) > 0 {
			t.dirty = true
		}
	}
	if total > 0 {
		a.recomputeAggregatesLocked()
	}
	return total
}

// FingerprintTables digests the attribute content of every replicated
// table: zones in chain order, rows in sorted name order, each mixed as
// (zone, name, canonical-attrs hash). Issue stamps, owners, and signatures
// are deliberately excluded — two runs that converged to the same content
// through different gossip histories must fingerprint equal. This is the
// convergence oracle of the chaos suite: a scrambled run has self-healed
// exactly when its fingerprint matches a never-scrambled twin's.
func (a *Agent) FingerprintTables() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mixByte := func(b byte) { h ^= uint64(b); h *= prime64 }
	mixString := func(s string) {
		for i := 0; i < len(s); i++ {
			mixByte(s[i])
		}
		mixByte(0xff) // separator
	}
	mixUint64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mixByte(byte(v >> (8 * i)))
		}
	}
	for _, zone := range a.chain {
		t := a.tables[zone]
		names := make([]string, 0, len(t.rows))
		for name := range t.rows {
			names = append(names, name)
		}
		sort.Strings(names)
		mixString(zone)
		for _, name := range names {
			mixString(name)
			mixUint64(fingerprintAttrsHash(t.rows[name]))
		}
	}
	return h
}

// fingerprintAttrsHash returns the row's attrs hash with sys$health
// attributes excluded. Health telemetry (retry counters, latency
// sketches) legitimately diverges between runs whose delivery content
// converged — a chaos run and its clean twin — so it must not feed the
// convergence oracle. Rows without health attrs (the overwhelming
// majority, and every row when health telemetry is off) use the row's
// cached hash unchanged, so the exclusion costs nothing where it does
// not apply.
func fingerprintAttrsHash(r *wire.SharedRow) uint64 {
	clean := true
	for k := range r.Attrs {
		if strings.HasPrefix(k, HealthPrefix) {
			clean = false
			break
		}
	}
	if clean {
		return r.AttrsHash()
	}
	filtered := make(value.Map, len(r.Attrs))
	for k, v := range r.Attrs {
		if !strings.HasPrefix(k, HealthPrefix) {
			filtered[k] = v
		}
	}
	// FNV-64a over the canonical encoding, mirroring SharedRow.AttrsHash
	// so a row that merely lacks health attrs hashes identically through
	// either path.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range filtered.AppendBinary(nil) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// samplePartners picks up to n distinct elements of candidates, sorted
// first for determinism (map iteration order is random).
func samplePartners(rng *rand.Rand, candidates []string, n int) []string {
	if len(candidates) == 0 {
		return nil
	}
	sort.Strings(candidates)
	if n >= len(candidates) {
		return candidates
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:n]
}
