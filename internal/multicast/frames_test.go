package multicast

import (
	"math/rand"
	"testing"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/transport"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// frameView is a minimal static View: one leaf zone with this node and a
// few members, enough to drive the leaf fan-out path.
type frameView struct {
	zone    string
	name    string
	addr    string
	members map[string]string // row name -> transport addr
}

func (v *frameView) Addr() string     { return v.addr }
func (v *frameView) Name() string     { return v.name }
func (v *frameView) ZonePath() string { return v.zone }
func (v *frameView) Chain() []string  { return []string{astrolabe.RootZone, v.zone} }

func (v *frameView) Table(zone string) ([]astrolabe.Row, bool) {
	if zone != v.zone {
		return nil, false
	}
	rows := []astrolabe.Row{{Name: v.name, Attrs: value.Map{astrolabe.AttrAddr: value.String(v.addr)}}}
	for name, addr := range v.members {
		rows = append(rows, astrolabe.Row{Name: name, Attrs: value.Map{astrolabe.AttrAddr: value.String(addr)}})
	}
	return rows, true
}

func (v *frameView) Row(zone, name string) (astrolabe.Row, bool) {
	rows, ok := v.Table(zone)
	if !ok {
		return astrolabe.Row{}, false
	}
	for _, r := range rows {
		if r.Name == name {
			return r, true
		}
	}
	return astrolabe.Row{}, false
}

// frameTransport records the frame-path and message-path sends so tests
// can assert which one the router took and how often it encoded.
type frameTransport struct {
	addr      string
	newFrames int
	sent      []struct {
		addr  string
		frame wire.Frame
	}
	msgSends []string // addrs that went through plain Send
}

func (tr *frameTransport) Addr() string { return tr.addr }
func (tr *frameTransport) Close() error { return nil }

func (tr *frameTransport) Send(to string, msg *wire.Message) error {
	tr.msgSends = append(tr.msgSends, to)
	return nil
}

func (tr *frameTransport) NewFrame(msg *wire.Message) (wire.Frame, error) {
	tr.newFrames++
	return wire.NewFrame(msg, tr.addr)
}

func (tr *frameTransport) SendFrame(to string, f wire.Frame) error {
	tr.sent = append(tr.sent, struct {
		addr  string
		frame wire.Frame
	}{to, f})
	return nil
}

var _ transport.FrameSender = (*frameTransport)(nil)

func frameRouterConfig(v *frameView, tr transport.Transport) Config {
	return Config{
		View:      v,
		Transport: tr,
		Rand:      rand.New(rand.NewSource(1)),
		Deliver:   func(*wire.ItemEnvelope) {},
	}
}

// TestLeafFanOutEncodesOnce checks the encode-once path: with a
// frame-capable transport and default fire-and-forget forwarding, a
// leaf-zone fan-out must serialize the deliver-copy exactly once and
// enqueue the same frame to every member.
func TestLeafFanOutEncodesOnce(t *testing.T) {
	v := &frameView{
		zone: "/z", name: "self", addr: "self:0",
		members: map[string]string{"m1": "m1:0", "m2": "m2:0", "m3": "m3:0", "m4": "m4:0"},
	}
	tr := &frameTransport{addr: "self:0"}
	r, err := NewRouter(frameRouterConfig(v, tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(envelope("it-1"), "/z"); err != nil {
		t.Fatal(err)
	}

	if tr.newFrames != 1 {
		t.Errorf("fan-out encoded %d times, want exactly once", tr.newFrames)
	}
	if len(tr.msgSends) != 0 {
		t.Errorf("fan-out used the per-recipient Send path for %v", tr.msgSends)
	}
	if len(tr.sent) != len(v.members) {
		t.Fatalf("sent %d frames, want one per member (%d)", len(tr.sent), len(v.members))
	}
	first := tr.sent[0].frame.Bytes()
	seen := map[string]bool{}
	for _, s := range tr.sent {
		seen[s.addr] = true
		// Same frame by reference, not a re-encoded copy.
		if b := s.frame.Bytes(); &b[0] != &first[0] {
			t.Errorf("frame to %s is a different allocation; fan-out should share one frame", s.addr)
		}
		msg, err := wire.Decode(s.frame.Payload())
		if err != nil {
			t.Fatalf("frame to %s does not decode: %v", s.addr, err)
		}
		if msg.From != "self:0" {
			t.Errorf("frame to %s: From = %q, want %q", s.addr, msg.From, "self:0")
		}
		mc := msg.Multicast
		if mc == nil || !mc.Deliver || mc.Envelope.Key() != "test/it-1#0" {
			t.Errorf("frame to %s carries wrong payload: %+v", s.addr, mc)
		}
	}
	for _, addr := range v.members {
		if !seen[addr] {
			t.Errorf("member %s got no frame", addr)
		}
	}
	if st := r.Stats(); st.Forwarded != int64(len(v.members)) {
		t.Errorf("stats.Forwarded = %d, want %d", st.Forwarded, len(v.members))
	}
}

// TestFramePathDisabledForOverridesAndAcks: a custom Sender or reliable
// (acked) forwarding must bypass the shared-frame path — overridden
// senders expect to see every per-destination Send, and acked forwards
// differ per destination (AckSeq), so they cannot share bytes.
func TestFramePathDisabledForOverridesAndAcks(t *testing.T) {
	v := &frameView{zone: "/z", name: "self", addr: "self:0",
		members: map[string]string{"m1": "m1:0"}}

	var viaSender []string
	cfg := frameRouterConfig(v, &frameTransport{addr: "self:0"})
	cfg.Sender = func(to string, msg *wire.Message) error {
		viaSender = append(viaSender, to)
		return nil
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.frames != nil {
		t.Error("router with an overridden Sender must not take the frame path")
	}
	if err := r.Publish(envelope("it-2"), "/z"); err != nil {
		t.Fatal(err)
	}
	if len(viaSender) != 1 {
		t.Errorf("overridden sender saw %v, want the one member send", viaSender)
	}

	acked := frameRouterConfig(v, &frameTransport{addr: "self:0"})
	acked.AckTimeout = time.Second
	acked.After = func(time.Duration, func()) {}
	ar, err := NewRouter(acked)
	if err != nil {
		t.Fatal(err)
	}
	if ar.frames != nil {
		t.Error("router with reliable forwarding must not take the frame path")
	}
}
