// Package chaos is a composable, seed-deterministic adversarial scenario
// driver for the newswire simulation. A Scenario is a schedule of typed
// events — region partitions, Poisson churn storms with §9 rejoin
// recovery, zipf-skewed publish bursts, link-loss ramps, and state
// scrambling that corrupts zone-table rows and dedup/retransmit queues
// mid-run — applied between gossip rounds of a core.Cluster. The driver
// measures delivery during the fault window, counts the rounds needed to
// converge back to 100% delivery, and reports the bytes spent recovering.
//
// Every random draw comes from one of three owned streams (event schedule,
// scramble victims, key entropy), consumed in canonical order between
// rounds, so a scenario is bit-identical for a given seed under both the
// serial engine and the parallel executor. Scramble events draw from their
// own stream so a "clean twin" run — same seed, scrambles skipped — sees
// the exact same faults, publishes and churn; comparing final table
// fingerprints against the twin is the self-healing oracle.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/vtime"
	"newswire/internal/workload"
)

// EventKind enumerates the fault and load injections a Scenario can
// schedule.
type EventKind int

// Event kinds.
const (
	// PartitionRegions splits the cluster into two regions: the members
	// of leaf zones [0, Split) versus everyone else. At most one
	// partition may be active at a time.
	PartitionRegions EventKind = iota + 1
	// HealPartition removes the active partition.
	HealPartition
	// ChurnStorm crashes a Poisson(Rate)-distributed number of random
	// non-publisher members per active round; each victim rejoins after
	// DownRounds rounds via §9 state transfer. A victim that is still a
	// virtual leaf is materialized first — crashing a template row would
	// silently test nothing.
	ChurnStorm
	// PublishBurst publishes Count items per active round from node 0,
	// with subjects drawn zipf(ZipfS)-skewed from the scenario's subject
	// pool (hot keys).
	PublishBurst
	// LinkLossRamp ramps the global link loss linearly from its base
	// value up to Rate over the event's rounds, then restores the base.
	LinkLossRamp
	// ScrambleState corrupts a Frac fraction of every live node's zone-
	// table rows (stale-stamped, stale-signed mutations plus attribute
	// permutations) and drops a Frac fraction of its dedup and
	// retransmit-queue entries. Corrupted rows must lose to fresh owner
	// heartbeats (open mode) or be rejected by certificate verification
	// (secure mode); the run must still converge to 100% delivery.
	ScrambleState
)

// Event is one scheduled injection. Round is the gossip round (0-based,
// counted from the end of warmup) at which the event starts; Rounds is how
// many consecutive rounds it stays active (default 1).
type Event struct {
	Kind   EventKind
	Round  int
	Rounds int
	// Split is the leaf-zone count of region A (PartitionRegions).
	Split int
	// Rate is the Poisson mean crashes/round (ChurnStorm) or the peak
	// loss probability (LinkLossRamp).
	Rate float64
	// DownRounds is how long a churn victim stays down (default 1).
	DownRounds int
	// Count is the items per active round (PublishBurst).
	Count int
	// ZipfS is the zipf exponent for subject selection (default 1.2).
	ZipfS float64
	// Frac is the per-row/per-entry scramble probability (ScrambleState).
	Frac float64
}

// Scenario is a named, self-contained adversarial run: cluster shape,
// event schedule, and the convergence bounds benchgate enforces.
type Scenario struct {
	Name      string
	Nodes     int
	Branching int
	// VirtualLeaves packs quiescent members into template rows + delivery
	// bitsets; churn storms materialize victims on demand.
	VirtualLeaves bool
	// Security runs with certificates: signed rows and items, verification
	// everywhere. Scrambled rows then fail signature checks at peers.
	Security bool
	// Predicate runs the cluster in pubsub.ModePredicate so the chaos
	// gates cover the §7 predicate routing path: compiled signatures,
	// subgroup rows (and their scrambled/healed forms) and the subs
	// fallback on malformed subgroup attributes.
	Predicate          bool
	AckTimeout         time.Duration
	MaxForwardAttempts int
	// Warmup rounds run before round 0 of the event schedule.
	Warmup int
	Events []Event
	// MaxRounds bounds the convergence phase after the last fault clears;
	// benchgate fails a run that needs more.
	MaxRounds int
	// QuietRounds run after convergence before the table fingerprint is
	// taken (lets scrambled rows finish healing).
	QuietRounds int
	// DeliveryFloor is the minimum acceptable delivery fraction among
	// live members at any point during the fault window.
	DeliveryFloor float64
	// Subjects is the subscription pool; every member subscribes to all
	// of them (burst subjects are zipf-drawn from this pool).
	Subjects []string
	// SeedOffset decorrelates this scenario from others at the same seed.
	SeedOffset int64
}

// Options are per-invocation knobs shared by all scenarios in a run.
type Options struct {
	Seed int64
	// Workers selects the parallel executor (0 = serial, -1 = all cores).
	Workers int
}

// Result is one scenario's measured outcome, shaped for BENCH_E10.json.
type Result struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Items    int    `json:"items"`
	// DeliveryDuringFault is the worst live-member delivery fraction
	// observed at any round boundary inside the fault window.
	DeliveryDuringFault float64 `json:"delivery_during_fault"`
	// FinalDelivery is total delivered / (members × items) at run end.
	FinalDelivery float64 `json:"final_delivery"`
	// ConvergenceRounds is how many rounds past the last fault the run
	// needed to get every member to 100% delivery (MaxRounds+1 = never).
	ConvergenceRounds int `json:"convergence_rounds"`
	// RecoveryBytes is the wire bytes sent between the last fault
	// clearing and the convergence point.
	RecoveryBytes       int64   `json:"recovery_bytes"`
	SteadyBytesPerRound float64 `json:"steady_bytes_per_round"`
	RowsRejected        int64   `json:"rows_rejected"`
	RowsScrambled       int     `json:"rows_scrambled"`
	QueueDropped        int     `json:"queue_dropped"`
	Recovered           int64   `json:"recovered_items"`
	Materialized        int     `json:"materialized"`
	Crashes             int     `json:"crashes"`
	// SelfHealed is set for scenarios with ScrambleState events: true
	// when the final table fingerprint matches a never-scrambled twin
	// run's and delivery still reached 100%.
	SelfHealed *bool `json:"self_healed,omitempty"`
	// DeliveryFloor and MaxRounds echo the scenario's bounds so benchgate
	// can enforce them without a side channel.
	DeliveryFloor float64 `json:"delivery_floor"`
	MaxRounds     int     `json:"max_rounds"`
}

// Run executes the scenario and, when it scrambles state, a clean twin
// (same seed, scrambles skipped) whose final table fingerprint defines
// the self-healing oracle.
func Run(sc Scenario, opt Options) (*Result, error) {
	res, fp, err := runOnce(sc, opt, false)
	if err != nil {
		return nil, err
	}
	if hasKind(sc, ScrambleState) {
		_, cleanFp, err := runOnce(sc, opt, true)
		if err != nil {
			return nil, fmt.Errorf("chaos: clean twin: %w", err)
		}
		healed := fp == cleanFp && res.FinalDelivery >= 1
		res.SelfHealed = &healed
	}
	return res, nil
}

func hasKind(sc Scenario, k EventKind) bool {
	for _, ev := range sc.Events {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

// runOnce drives one full scenario execution and returns its result plus
// the final table fingerprint. skipScramble elides ScrambleState events
// without consuming any shared randomness (scrambles own their stream),
// producing the clean twin.
func runOnce(sc Scenario, opt Options, skipScramble bool) (*Result, uint64, error) {
	if sc.Nodes <= 0 || len(sc.Subjects) == 0 {
		return nil, 0, fmt.Errorf("chaos: scenario %q needs nodes and subjects", sc.Name)
	}
	branching := sc.Branching
	if branching <= 0 {
		branching = 16
	}
	seed := opt.Seed + sc.SeedOffset
	// Three owned streams: the event schedule (churn victims, zipf
	// subjects, crash delays), scramble victims, and certificate key
	// entropy. Distinct derivations keep them independent, and the
	// scramble stream's isolation is what lets the clean twin skip
	// scrambles without shifting any other draw.
	eventRng := rand.New(rand.NewSource(seed*31 + 17))
	scrambleRng := rand.New(rand.NewSource(seed*131 + 7))

	var realm *core.Realm
	if sc.Security {
		// The realm clock is pinned at the epoch: certificate expiry
		// checks run on worker goroutines inside parallel windows, so the
		// realm must not share the engine clock. A fixed vtime.Virtual is
		// lock-protected and never advanced; the long TTL outlives any
		// simulated run.
		entropy := rand.New(rand.NewSource(seed*257 + 3))
		r, err := core.NewSeededRealm(vtime.NewVirtual(), 1000*time.Hour, entropy)
		if err != nil {
			return nil, 0, fmt.Errorf("chaos: realm: %w", err)
		}
		realm = r
	}

	var secErr error
	cfg := core.ClusterConfig{
		N: sc.Nodes, Branching: branching, Seed: seed, Workers: opt.Workers,
		Customize: func(i int, ncfg *core.Config) {
			ncfg.AckTimeout = sc.AckTimeout
			if sc.MaxForwardAttempts > 0 {
				ncfg.MaxForwardAttempts = sc.MaxForwardAttempts
			}
			// Rejoiners re-offer recovered items to their leaf zone so
			// members behind them (virtual bitsets included) catch up.
			ncfg.ReshareRecovered = true
			if sc.Predicate {
				ncfg.Mode = pubsub.ModePredicate
			}
			if realm != nil {
				sec, err := realm.Member(fmt.Sprintf("node-%d", i))
				if err != nil {
					secErr = err
					return
				}
				if i == 0 {
					if err := realm.Publisher(sec, "reuters"); err != nil {
						secErr = err
						return
					}
				}
				ncfg.Security = sec
			}
		},
	}
	if sc.VirtualLeaves {
		cfg.VirtualLeaves = true
		cfg.VirtualSubjects = sc.Subjects
	}
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("chaos: scenario %q: %w", sc.Name, err)
	}
	if secErr != nil {
		return nil, 0, fmt.Errorf("chaos: scenario %q: %w", sc.Name, secErr)
	}
	if !sc.VirtualLeaves {
		for _, node := range cluster.Nodes {
			if err := node.Subscribe(sc.Subjects...); err != nil {
				return nil, 0, fmt.Errorf("chaos: subscribe: %w", err)
			}
		}
	}

	warmup := sc.Warmup
	if warmup <= 0 {
		warmup = 8
	}
	cluster.RunRounds(warmup)
	warmSent, _ := cluster.Net.BytesTotals()

	st := &runState{
		sc: sc, cluster: cluster, branching: branching,
		eventRng: eventRng, scrambleRng: scrambleRng,
		skipScramble: skipScramble,
		baseLoss:     cluster.Net.LossRate(),
		downUntil:    make(map[int]int),
		minDelivery:  1,
	}
	if err := st.runFaultWindow(); err != nil {
		return nil, 0, err
	}
	res, err := st.converge()
	if err != nil {
		return nil, 0, err
	}
	res.SteadyBytesPerRound = float64(warmSent) / float64(warmup)

	quiet := sc.QuietRounds
	if quiet <= 0 {
		quiet = 3
	}
	cluster.RunRounds(quiet)
	return res, fingerprintCluster(cluster), nil
}

// runState carries the mutable driver state across the fault window and
// convergence phases.
type runState struct {
	sc           Scenario
	cluster      *core.Cluster
	branching    int
	eventRng     *rand.Rand
	scrambleRng  *rand.Rand
	skipScramble bool
	baseLoss     float64

	items       int // items published so far
	itemSeq     int
	crashes     int
	materialize int
	scrambled   int
	dropped     int
	minDelivery float64

	downUntil map[int]int // node index -> round at which to restore
	partA     []string    // active partition, region A addresses
	partB     []string
}

// runFaultWindow applies the event schedule round by round until every
// event has finished and every churned node has rejoined.
func (st *runState) runFaultWindow() error {
	lastActive := 0
	for _, ev := range st.sc.Events {
		end := ev.Round + maxInt(ev.Rounds, 1)
		if ev.Kind == LinkLossRamp {
			end++ // the round after the ramp restores the base loss
		}
		if end > lastActive {
			lastActive = end
		}
	}
	for r := 0; ; r++ {
		st.restoreDue(r)
		if r >= lastActive && len(st.downUntil) == 0 {
			return nil
		}
		for _, ev := range st.sc.Events {
			if err := st.applyEvent(ev, r); err != nil {
				return err
			}
		}
		st.cluster.RunRounds(1)
		st.observeDelivery()
	}
}

// restoreDue rejoins every churn victim whose downtime expires at round r:
// the endpoint is restored and the node runs the §9 recovery protocol
// (state transfer from a zone peer's cache, since its last-seen stamp).
func (st *runState) restoreDue(r int) {
	var due []int
	for idx, until := range st.downUntil {
		if until <= r {
			due = append(due, idx)
		}
	}
	sort.Ints(due)
	for _, idx := range due {
		delete(st.downUntil, idx)
		st.cluster.Net.Restore(fmt.Sprintf("n%d", idx))
		_ = st.cluster.Nodes[idx].RecoverFromZonePeer(st.items*2 + 32)
	}
}

func (st *runState) applyEvent(ev Event, r int) error {
	dur := maxInt(ev.Rounds, 1)
	step := r - ev.Round
	if ev.Kind == LinkLossRamp && step == dur {
		st.cluster.Net.SetLossRate(st.baseLoss)
		return nil
	}
	if step < 0 || step >= dur {
		return nil
	}
	switch ev.Kind {
	case PartitionRegions:
		return st.applyPartition(ev)
	case HealPartition:
		if st.partA != nil {
			st.cluster.Net.Heal(st.partA, st.partB)
			st.partA, st.partB = nil, nil
		}
	case ChurnStorm:
		return st.applyChurn(ev, r)
	case PublishBurst:
		return st.applyBurst(ev)
	case LinkLossRamp:
		frac := float64(step+1) / float64(dur)
		st.cluster.Net.SetLossRate(st.baseLoss + (ev.Rate-st.baseLoss)*frac)
	case ScrambleState:
		st.applyScramble(ev)
	default:
		return fmt.Errorf("chaos: unknown event kind %d", ev.Kind)
	}
	return nil
}

func (st *runState) applyPartition(ev Event) error {
	if st.partA != nil {
		return fmt.Errorf("chaos: overlapping partitions")
	}
	cut := ev.Split * st.branching
	if cut <= 0 || cut >= st.sc.Nodes {
		return fmt.Errorf("chaos: partition split %d out of range", ev.Split)
	}
	var a, b []string
	for i := 0; i < st.sc.Nodes; i++ {
		addr := fmt.Sprintf("n%d", i)
		if i < cut {
			a = append(a, addr)
		} else {
			b = append(b, addr)
		}
	}
	st.cluster.Net.Partition(a, b)
	st.partA, st.partB = a, b
	return nil
}

// applyChurn crashes poisson(Rate) members this round. A victim that is
// still a virtual leaf is materialized first — the template row cannot
// crash, and a storm that silently skipped virtual members would overstate
// robustness.
func (st *runState) applyChurn(ev Event, r int) error {
	k := poisson(st.eventRng, ev.Rate)
	for j := 0; j < k; j++ {
		idx := 1 + st.eventRng.Intn(st.sc.Nodes-1) // never the publisher
		if _, down := st.downUntil[idx]; down {
			continue
		}
		if st.cluster.Nodes[idx] == nil {
			node, err := st.cluster.MaterializeNode(idx)
			if err != nil || node == nil {
				return fmt.Errorf("chaos: churn victim %d not materialized: %v", idx, err)
			}
			st.materialize++
		}
		delay := time.Duration(1 + st.eventRng.Int63n(int64(500*time.Millisecond)))
		st.cluster.Net.CrashAfter(fmt.Sprintf("n%d", idx), delay)
		st.downUntil[idx] = r + maxInt(ev.DownRounds, 1)
		st.crashes++
	}
	return nil
}

func (st *runState) applyBurst(ev Event) error {
	s := ev.ZipfS
	if s <= 0 {
		s = 1.2
	}
	pub := st.cluster.Nodes[0]
	now := st.cluster.Eng.Now()
	for j := 0; j < ev.Count; j++ {
		subj := st.sc.Subjects[workload.ZipfIndex(st.eventRng, len(st.sc.Subjects), s)]
		it := &news.Item{
			Publisher: "reuters", ID: fmt.Sprintf("chaos-%d", st.itemSeq),
			Headline: "h", Body: "chaos burst payload",
			Subjects:  []string{subj},
			Published: now,
		}
		if err := pub.PublishItem(it, "", ""); err != nil {
			return fmt.Errorf("chaos: publish: %w", err)
		}
		st.itemSeq++
		st.items++
	}
	return nil
}

// applyScramble corrupts every live real node's state in ascending index
// order, drawing only from the scramble stream.
func (st *runState) applyScramble(ev Event) {
	if st.skipScramble {
		return
	}
	for idx, node := range st.cluster.Nodes {
		if node == nil {
			continue
		}
		if _, down := st.downUntil[idx]; down {
			continue
		}
		rep := node.ScrambleState(st.scrambleRng, ev.Frac)
		st.scrambled += rep.Rows
		st.dropped += rep.Dedup + rep.Pending
	}
}

// observeDelivery tracks the worst live-member delivery fraction seen at
// any round boundary inside the fault window.
func (st *runState) observeDelivery() {
	if st.items == 0 {
		return
	}
	live := 0
	var got int64
	for i := 0; i < st.sc.Nodes; i++ {
		if _, down := st.downUntil[i]; down {
			continue
		}
		live++
		got += st.cluster.NodeDelivered(i)
	}
	if live == 0 {
		return
	}
	frac := float64(got) / float64(int64(live)*int64(st.items))
	if frac < st.minDelivery {
		st.minDelivery = frac
	}
}

// converge runs exactly MaxRounds post-fault rounds (a fixed length keeps
// the clean twin's table history comparable), recording the first round at
// which every member has every item. Nodes still missing items run §9
// recovery between rounds — incremental first, escalating to a full
// Resync after resyncAfter rounds; in virtual clusters, a zone whose
// bitsets have holes gets its items re-offered by its first real member.
func (st *runState) converge() (*Result, error) {
	cluster := st.cluster
	want := int64(st.sc.Nodes) * int64(st.items)
	sentAtFaultEnd, _ := cluster.Net.BytesTotals()
	convRound := -1
	var recoveryBytes int64
	if st.totalDelivered() >= want {
		convRound = 0
	}
	for i := 1; i <= st.sc.MaxRounds; i++ {
		if convRound < 0 {
			st.recoveryPass(i)
		}
		cluster.RunRounds(1)
		if convRound < 0 && st.totalDelivered() >= want {
			convRound = i
			sent, _ := cluster.Net.BytesTotals()
			recoveryBytes = sent - sentAtFaultEnd
		}
	}
	total := st.totalDelivered()
	if convRound < 0 {
		convRound = st.sc.MaxRounds + 1
		sent, _ := cluster.Net.BytesTotals()
		recoveryBytes = sent - sentAtFaultEnd
	}
	final := 1.0
	if want > 0 {
		final = float64(total) / float64(want)
	}
	if final > 1.0000001 {
		return nil, fmt.Errorf("chaos: scenario %q delivered %.4f > 100%% — accounting bug", st.sc.Name, final)
	}

	var rejected, recovered int64
	for _, node := range cluster.Nodes {
		if node == nil {
			continue
		}
		rejected += node.Agent().Stats().RowsRejected
		recovered += node.Recovered()
	}
	return &Result{
		Scenario:            st.sc.Name,
		Nodes:               st.sc.Nodes,
		Items:               st.items,
		DeliveryDuringFault: st.minDelivery,
		FinalDelivery:       final,
		ConvergenceRounds:   convRound,
		RecoveryBytes:       recoveryBytes,
		RowsRejected:        rejected,
		RowsScrambled:       st.scrambled,
		QueueDropped:        st.dropped,
		Recovered:           recovered,
		Materialized:        st.materialize,
		Crashes:             st.crashes,
		DeliveryFloor:       st.sc.DeliveryFloor,
		MaxRounds:           st.sc.MaxRounds,
	}, nil
}

func (st *runState) totalDelivered() int64 {
	var n int64
	for i := 0; i < st.sc.Nodes; i++ {
		n += st.cluster.NodeDelivered(i)
	}
	return n
}

// resyncAfter is the convergence round at which recovery escalates from
// the incremental lastSeen-watermark protocol to a full Resync: a node
// still missing items after two incremental passes is likely stuck on a
// hole older than its watermark (a whole zone that exhausted its
// retransmit budget on one mid-partition item, then kept delivering
// later publications).
const resyncAfter = 3

func (st *runState) recoveryPass(round int) {
	for idx, node := range st.cluster.Nodes {
		if node == nil {
			continue
		}
		if st.cluster.NodeDelivered(idx) < int64(st.items) {
			if round >= resyncAfter {
				_ = node.Resync(st.items*2 + 32)
			} else {
				_ = node.RecoverFromZonePeer(st.items*2 + 32)
			}
		}
	}
	if !st.sc.VirtualLeaves {
		return
	}
	// Virtual members cannot run recovery themselves: their bitsets only
	// fill from Deliver copies. The zone's first member (always real)
	// re-offers its cached items into the zone; receiver-side dedup makes
	// repeats free.
	b := st.branching
	for z := 0; z*b < st.sc.Nodes; z++ {
		first := z * b
		size := minInt(b, st.sc.Nodes-first)
		var got int64
		for i := first; i < first+size; i++ {
			got += st.cluster.NodeDelivered(i)
		}
		if got >= int64(size)*int64(st.items) {
			continue
		}
		member := st.cluster.Nodes[first]
		if member == nil {
			continue
		}
		envs, _ := member.Cache().Since(time.Time{}, st.sc.Subjects, 0)
		for i := range envs {
			member.Router().Reinject(&envs[i])
		}
	}
}

// fingerprintCluster folds every real node's zone-table fingerprint (in
// index order) into one value. Row stamps and signatures are excluded at
// the agent level, so two runs that converged to the same table contents
// fingerprint equal even with different gossip histories.
func fingerprintCluster(c *core.Cluster) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= prime64
		}
	}
	for i, node := range c.Nodes {
		if node == nil {
			continue
		}
		mix(uint64(i))
		mix(node.Agent().FingerprintTables())
	}
	return h
}

// poisson draws a Poisson(lambda) variate (Knuth's multiplication method;
// the rates used here are small, so the loop is short).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
