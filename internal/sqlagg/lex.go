// Package sqlagg implements the SQL dialect Astrolabe uses for aggregation
// functions — "expressions in SQL that take any number of attributes from
// the child table and produce new attributes for inclusion into the
// appropriate row in the parent table" (paper §3).
//
// A program has the shape
//
//	SELECT <expr> [AS name] {, <expr> [AS name]} [WHERE <expr>]
//
// and is evaluated against a child zone table (a slice of attribute maps),
// producing the parent summary row. Aggregate functions cover everything
// the paper's examples need: MIN/MAX/SUM/AVG/COUNT for load and performance
// summaries, BIT_OR for Bloom-filter and category-mask aggregation (§6–7),
// BOOL_OR/BOOL_AND for availability flags, FIRST for representative
// attributes, and MINK/MAXK for electing the k best-loaded multicast
// representatives (§5).
package sqlagg

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp      // punctuation and operators
	tokKeyword // SELECT, AS, WHERE, AND, OR, NOT, TRUE, FALSE
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokOp:
		return "operator"
	case tokKeyword:
		return "keyword"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written; strings unquoted
	pos  int    // byte offset in the source
}

var keywords = map[string]bool{
	"SELECT": true,
	"AS":     true,
	"WHERE":  true,
	"AND":    true,
	"OR":     true,
	"NOT":    true,
	"TRUE":   true,
	"FALSE":  true,
}

// SyntaxError describes a lexical or parse failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
	Src string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlagg: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: l.src}
}

// lex tokenizes the whole source up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] == '.' {
			l.pos++
			if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
				return token{}, l.errorf(start, "malformed number")
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}

	case strings.ContainsRune("(),*+-/%=", rune(c)):
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected character %q", c)

	default:
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
