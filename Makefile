# NewsWire build and experiment targets.

GO ?= go

.PHONY: all build test vet race bench tables tables-quick tables-big examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick-size experiment tables + hot-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Full-size experiment tables (EXPERIMENTS.md).
tables: bin/newswire-bench
	bin/newswire-bench

tables-quick: bin/newswire-bench
	bin/newswire-bench -quick

# Adds the 32k/131k-node E1/E7 points (slow, several GB of memory).
tables-big: bin/newswire-bench
	bin/newswire-bench -run E1,E7 -big

bin/newswire-bench:
	$(GO) build -o bin/newswire-bench ./cmd/newswire-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/technews
	$(GO) run ./examples/worldnews
	$(GO) run ./examples/resilience
	$(GO) run ./examples/monitor

clean:
	rm -rf bin
