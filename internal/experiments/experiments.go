// Package experiments implements one runner per experiment in DESIGN.md's
// experiment index (E1–E8 and ablations A1–A4). The paper is a position
// paper with no numbered tables or figures, so each experiment reproduces
// one quantitative claim; EXPERIMENTS.md records claim vs. measurement.
//
// Runners are deterministic given Options.Seed and are shared by the
// cmd/newswire-bench binary and the root-level testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"newswire/internal/sim/chaos"
)

// Options scales experiment size.
type Options struct {
	// Quick shrinks every experiment for CI and benchmarks.
	Quick bool
	// Big enables the largest configurations (the 131072-node E1 point).
	Big bool
	// Seed drives all randomness.
	Seed int64
	// Workers selects the cluster execution mode for experiments that
	// support it (currently E1): 0 = serial engine, >= 1 = deterministic
	// parallel executor, -1 = GOMAXPROCS workers. Tables are identical
	// for any value; only wall-clock time changes.
	Workers int
	// Trace attaches delivery tracing to the experiments that support it
	// (E1 and the E6 crash-during-forward cases) and fills Table.Traces.
	// Tracing never perturbs the run: tables are bit-identical with it on
	// or off.
	Trace bool
	// Nodes, when positive, replaces E1's standard size sweep with a
	// single row at exactly this size, run with virtual quiescent
	// leaves (core.ClusterConfig.VirtualLeaves): only 4 members per
	// leaf zone are full agents, the rest are template rows plus
	// delivery bitsets. Delivery accounting stays exact; latency
	// quantiles are sampled at the real members. This is what makes
	// the 1,048,576-node row tractable.
	Nodes int
	// Scenario restricts E10 to a comma-separated list of chaos scenario
	// names (see internal/sim/chaos). Empty runs the quick subset under
	// Quick and the full registry otherwise.
	Scenario string
}

// Table is one experiment's result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim being tested
	Columns []string
	Rows    [][]string
	Notes   []string
	// Traces holds per-run delivery-trace reports when Options.Trace was
	// set. Render and String deliberately ignore it so the
	// serial-vs-parallel table equality gate keeps comparing pure table
	// text; span-set equality is gated separately on TraceReport
	// Fingerprint.
	Traces []*TraceReport
	// Wire holds per-configuration wire-byte usage for experiments that
	// record it (E1). Render and String ignore it for the same reason as
	// Traces; newswire-bench persists it into BENCH_<ID>.json, where CI
	// gates on bytes-per-round regressions.
	Wire []WireUsage
	// Nodes is the largest cluster size the experiment simulated, for
	// per-node normalization of process-level measurements (the
	// peak_heap_bytes_per_node figure in BENCH_E1.json). 0 when the
	// experiment doesn't report it.
	Nodes int
	// Chaos holds the raw per-scenario results when the experiment is the
	// E10 adversarial suite. Render and String ignore it (like Traces and
	// Wire); newswire-bench persists it into BENCH_E10.json, where
	// benchgate bounds convergence rounds and delivery floors.
	Chaos []chaos.Result
	// Obs holds the raw per-arm figures when the experiment is the E12
	// observability-overhead suite. Render and String ignore it (like
	// Chaos); newswire-bench persists it into BENCH_E12.json, where
	// benchgate bounds the enabled-vs-disabled overhead ratios.
	Obs []ObsArm
	// Precision holds the raw per-arm routing-precision figures when the
	// experiment is the E8 subscription-summary sweep. Render and String
	// ignore it (like Chaos and Obs); newswire-bench persists it into
	// BENCH_E8.json, where benchgate requires the predicate arm to cut
	// false-positive forwarding versus plain Bloom at equal recall
	// without blowing up gossip bytes.
	Precision []PrecisionRow
	// Volatile names columns whose cells are wall-clock measurements —
	// meaningful in the rendered table but not reproducible between runs.
	// ComparableString masks them so the serial-vs-parallel determinism
	// gate compares only the deterministic cells.
	Volatile []string
}

// PrecisionRow records one E8 arm (subscription count × summary mode):
// how precisely the zone-level forwarding test tracked the subscribers'
// exact interests, and what the summary cost on the wire.
type PrecisionRow struct {
	// Label names the arm, e.g. "256 subs / predicate".
	Label string `json:"label"`
	// Mode is the pubsub summary mode name.
	Mode string `json:"mode"`
	// Subscriptions is the subject-pool size of the arm.
	Subscriptions int `json:"subscriptions"`
	// RootAttrs is the widest root-zone row (gossip payload growth).
	RootAttrs int `json:"root_row_attrs"`
	// Recall is delivered / expected exact matches (1.0 = no lost items).
	Recall float64 `json:"recall"`
	// ExactMatches counts leaf deliveries that matched exactly.
	ExactMatches int64 `json:"exact_matches"`
	// FPDrops counts leaf arrivals the exact test discarded — items the
	// summary forwarded for nothing.
	FPDrops int64 `json:"false_positive_drops"`
	// FPRate is FPDrops / (FPDrops + ExactMatches).
	FPRate float64 `json:"fp_rate"`
	// Forwards counts positive zone-level forwarding decisions.
	Forwards int64 `json:"forwards"`
	// SubgroupTests counts subgroup filters consulted (predicate mode).
	SubgroupTests int64 `json:"subgroup_tests"`
	// BytesPerRoundPerNode is steady-state gossip load in a publish-free
	// window — the price of carrying the summary in the hierarchy.
	BytesPerRoundPerNode float64 `json:"bytes_per_round_per_node"`
	// NsPerDecision is the forwarding-filter cost against a root row.
	NsPerDecision int64 `json:"ns_per_decision"`
	// SubgroupFilters is the cluster-wide count of aggregated subgroup
	// filters visible from node 0 (predicate mode; 0 otherwise).
	SubgroupFilters int `json:"subgroup_filters"`
}

// WireUsage records the simulated network's byte load for one
// experiment configuration, as charged by wire.(*Message).EstimateSize.
type WireUsage struct {
	// Label names the configuration, e.g. "64 nodes".
	Label string `json:"label"`
	// Nodes is the cluster size.
	Nodes int `json:"nodes"`
	// Rounds is how many gossip rounds the run spanned (warmup included).
	Rounds int `json:"rounds"`
	// BytesOnWire is the total bytes handed to the network (sent side).
	BytesOnWire int64 `json:"bytes_on_wire"`
	// BytesPerRound is BytesOnWire / Rounds — the steady-state figure the
	// CI regression gate compares across commits.
	BytesPerRound float64 `json:"bytes_per_round"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// ComparableString renders the table with every Volatile column's cells
// replaced by "-", for executor-equality comparisons: two runs of a
// deterministic experiment must agree on everything except wall-clock
// cells.
func (t *Table) ComparableString() string {
	if len(t.Volatile) == 0 {
		return t.String()
	}
	masked := *t
	vol := make(map[int]bool, len(t.Volatile))
	for i, c := range t.Columns {
		for _, v := range t.Volatile {
			if c == v {
				vol[i] = true
			}
		}
	}
	masked.Rows = make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		out := append([]string(nil), row...)
		for i := range out {
			if vol[i] {
				out[i] = "-"
			}
		}
		masked.Rows[r] = out
	}
	return masked.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(opt Options) *Table
}

// All lists every experiment in index order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Name: "delivery latency vs. system size", Run: RunE1},
		{ID: "E2", Name: "pull-model redundancy", Run: RunE2},
		{ID: "E3", Name: "Bloom filter accuracy vs. size", Run: RunE3},
		{ID: "E4", Name: "publisher load vs. direct push", Run: RunE4},
		{ID: "E5", Name: "flash-crowd overload", Run: RunE5},
		{ID: "E6", Name: "robustness under forwarder failure", Run: RunE6},
		{ID: "E7", Name: "gossip convergence to the root", Run: RunE7},
		{ID: "E8", Name: "subscription-summary precision (predicate vs. Bloom vs. attributes)", Run: RunE8},
		{ID: "A1", Name: "forwarding queue strategies", Run: RunA1},
		{ID: "A2", Name: "representative election policies", Run: RunA2},
		{ID: "A3", Name: "publication zone scoping", Run: RunA3},
		{ID: "A4", Name: "gossip fanout/interval trade-off", Run: RunA4},
		{ID: "E10", Name: "adversarial chaos scenarios", Run: RunE10},
		{ID: "E12", Name: "observability overhead (health + tracing)", Run: RunE12},
	}
}

// fmtMS renders a duration-in-seconds as milliseconds.
func fmtMS(seconds float64) string {
	return fmt.Sprintf("%.0fms", seconds*1000)
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

// fmtF renders a float compactly.
func fmtF(f float64) string {
	return fmt.Sprintf("%.2f", f)
}

// fmtI renders an int.
func fmtI(i int64) string {
	return fmt.Sprintf("%d", i)
}
