package newswire_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"newswire"
)

// webUICluster builds a tiny cluster with one delivered item and returns
// the UI over node 1.
func webUICluster(t *testing.T) (*newswire.Cluster, *newswire.WebUI) {
	t.Helper()
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N: 4, Branching: 4, Seed: 404,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cluster.Nodes {
		if err := n.Subscribe("tech/linux"); err != nil {
			t.Fatal(err)
		}
	}
	cluster.RunRounds(6)
	item := &newswire.Item{
		Publisher: "slashdot", ID: "ui-item",
		Headline: "WebUI test story", Body: "body",
		Subjects:  []string{"tech/linux"},
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(item, "", ""); err != nil {
		t.Fatal(err)
	}
	cluster.RunFor(5 * time.Second)
	return cluster, newswire.NewWebUI(cluster.Nodes[1])
}

func TestWebUIStatusJSON(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Name       string   `json:"name"`
		Zone       string   `json:"zone"`
		Subjects   []string `json:"subjects"`
		Delivered  int64    `json:"delivered"`
		Publishers []string `json:"publishers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Name != "node-1" {
		t.Errorf("name = %q", status.Name)
	}
	if status.Delivered != 1 {
		t.Errorf("delivered = %d", status.Delivered)
	}
	if len(status.Subjects) != 1 || status.Subjects[0] != "tech/linux" {
		t.Errorf("subjects = %v", status.Subjects)
	}
}

func TestWebUIItemsJSON(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/items.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []struct {
		Key      string `json:"key"`
		Headline string `json:"headline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != "slashdot/ui-item#0" {
		t.Fatalf("items = %+v", items)
	}
	if items[0].Headline != "WebUI test story" {
		t.Fatalf("headline = %q", items[0].Headline)
	}
}

func TestWebUIZonesJSON(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/zones.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var zones []struct {
		Zone string `json:"zone"`
		Row  string `json:"row"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&zones); err != nil {
		t.Fatal(err)
	}
	if len(zones) < 4 {
		t.Fatalf("zones = %+v", zones)
	}
}

func TestWebUIIndexHTML(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"NewsWire node node-1", "tech/linux", "WebUI test story", "slashdot"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Unknown paths 404.
	resp2, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}
