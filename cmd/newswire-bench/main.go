// Command newswire-bench regenerates every experiment table in
// EXPERIMENTS.md (E1–E8 and ablations A1–A4).
//
// Usage:
//
//	newswire-bench                   # run everything at standard size
//	newswire-bench -run E3,E5        # specific experiments
//	newswire-bench -quick            # smaller, faster configurations
//	newswire-bench -big              # include the largest E1/E7 points
//	newswire-bench -nodes 1048576    # one E1 row at exactly this size (virtual leaves)
//	newswire-bench -scenario partition-heal,scramble-converge
//	                                 # specific chaos scenarios (implies -run E10)
//	newswire-bench -seed 7           # change the deterministic seed
//	newswire-bench -workers -1       # parallel executor, GOMAXPROCS workers
//	newswire-bench -verify-parallel  # gate: parallel tables == serial tables
//	newswire-bench -trace            # print slowest/failed delivery hop paths (E1, E6)
//	newswire-bench -json out/        # write BENCH_<ID>.json result files
//	newswire-bench -speedup          # measure serial vs parallel gossip rounds
//	newswire-bench -cpuprofile p.out # pprof the run
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"newswire/internal/experiments"
	"newswire/internal/sim/chaos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswire-bench:", err)
		os.Exit(1)
	}
}

// jsonReport is the machine-readable result written per experiment when
// -json is set, so the perf trajectory is tracked across changes.
type jsonReport struct {
	ID          string     `json:"id"`
	Title       string     `json:"title"`
	Claim       string     `json:"claim,omitempty"`
	Columns     []string   `json:"columns"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	Seed        int64      `json:"seed"`
	Quick       bool       `json:"quick"`
	Big         bool       `json:"big"`
	Workers     int        `json:"workers"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	WallSeconds float64    `json:"wall_seconds"`
	// PeakHeapBytes is the maximum runtime.MemStats.HeapInuse observed by
	// a 50ms sampler while the experiment ran — the footprint figure the
	// big-run E1 rows in EXPERIMENTS.md quote.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
	// PeakHeapBytesPerNode normalizes the peak by the largest cluster
	// size the experiment simulated (HeapNodes). This is the number the
	// million-node memory architecture is judged by, and benchgate fails
	// a >10% regression of it between artifacts with equal heap_nodes.
	PeakHeapBytesPerNode float64 `json:"peak_heap_bytes_per_node,omitempty"`
	HeapNodes            int     `json:"heap_nodes,omitempty"`
	// Wire is the per-configuration wire-byte usage (bytes_on_wire,
	// bytes_per_round) for experiments that record it; CI gates on the
	// E1 quick-size bytes_per_round regressing against the committed
	// artifact.
	Wire []experiments.WireUsage `json:"bytes_on_wire,omitempty"`
	// Chaos is the per-scenario adversarial suite outcome (E10): delivery
	// floors, convergence rounds and recovery bytes that benchgate bounds.
	Chaos []chaos.Result `json:"chaos,omitempty"`
	// Obs is the per-arm observability-overhead outcome (E12): bytes,
	// time and allocs per gossip round with the self-monitoring plane
	// off/on, gated by benchgate's enabled-vs-disabled ratio bounds.
	Obs []experiments.ObsArm `json:"obs,omitempty"`
	// Precision is the per-arm routing-precision outcome (E8): recall,
	// false-positive forwards and summary bytes per subscription-summary
	// mode, gated by benchgate's predicate-vs-bloom bounds.
	Precision []experiments.PrecisionRow `json:"precision,omitempty"`
	Verified  bool                       `json:"verified_against_serial,omitempty"`
	Bench     *experiments.SpeedupReport `json:"bench,omitempty"`
	Traces    []*experiments.TraceReport `json:"traces,omitempty"`
}

// heapSampler polls HeapInuse until stopped and reports the peak. With
// capture on it also snapshots the pprof heap profile whenever the peak
// grows by 10% past the last snapshot, so the retained profile describes
// the heap near its peak tick rather than at end of run (when transient
// experiment state is already released).
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64

	capture   bool
	profileAt uint64 // peak at the last snapshot
	profile   bytes.Buffer
}

func startHeapSampler(capture bool) *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{}), capture: capture}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > s.peak {
				s.peak = ms.HeapInuse
				if s.capture && s.peak > s.profileAt+s.profileAt/10 {
					s.profile.Reset()
					if pprof.Lookup("heap").WriteTo(&s.profile, 0) == nil {
						s.profileAt = s.peak
					}
				}
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// Peak stops the sampler and returns the highest heap-in-use seen.
func (s *heapSampler) Peak() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswire-bench", flag.ContinueOnError)
	var (
		runList    = fs.String("run", "all", "comma-separated experiment IDs (E1..E8, E10, A1..A4) or 'all'")
		quick      = fs.Bool("quick", false, "run reduced-size configurations")
		big        = fs.Bool("big", false, "include the largest configurations (slow, memory-hungry)")
		seed       = fs.Int64("seed", 1, "deterministic random seed")
		list       = fs.Bool("list", false, "list available experiments and exit")
		workers    = fs.Int("workers", 0, "cluster execution mode: 0 serial, N>=1 parallel workers, -1 GOMAXPROCS")
		verifyPar  = fs.Bool("verify-parallel", false, "run each experiment serially and in parallel; fail on any table or trace difference")
		traced     = fs.Bool("trace", false, "attach delivery tracing (E1, E6) and print slowest/failed hop paths")
		jsonDir    = fs.String("json", "", "directory to write BENCH_<ID>.json result files into")
		speedup    = fs.Bool("speedup", false, "measure serial-vs-parallel gossip rounds at 4096 nodes (recorded in BENCH_E1.json)")
		nodes      = fs.Int("nodes", 0, "run E1 as one row at exactly this size with virtual quiescent leaves (implies -run E1)")
		scenario   = fs.String("scenario", "", "comma-separated chaos scenario names for the E10 suite (implies -run E10)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write the pprof heap profile snapshotted at the run's peak tick to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	// The heap profile is captured by the sampler at the peak tick of
	// whichever experiment peaked highest, not at exit: by exit the
	// clusters are garbage and the profile would show an empty heap.
	var peakProfile []byte
	var peakProfileBytes uint64
	if *memprofile != "" {
		defer func() {
			if peakProfile == nil {
				fmt.Fprintln(os.Stderr, "newswire-bench: memprofile: no peak snapshot captured")
				return
			}
			if err := os.WriteFile(*memprofile, peakProfile, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "newswire-bench: memprofile:", err)
			}
		}()
	}

	want := map[string]bool{}
	if *nodes > 0 {
		*runList = "E1"
	}
	if *scenario != "" {
		*runList = "E10"
		for _, n := range strings.Split(*scenario, ",") {
			if n = strings.TrimSpace(n); n == "" {
				continue
			}
			if _, ok := chaos.ByName(n); !ok {
				return fmt.Errorf("unknown chaos scenario %q (known: %s)", n, strings.Join(chaosNames(), ", "))
			}
		}
	}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range want {
			found := false
			for _, r := range all {
				if r.ID == id {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
		}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}

	opt := experiments.Options{Quick: *quick, Big: *big, Seed: *seed, Workers: *workers, Trace: *traced, Nodes: *nodes, Scenario: *scenario}
	if *verifyPar && opt.Workers == 0 {
		opt.Workers = 4
	}
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		sampler := startHeapSampler(*memprofile != "")
		table := r.Run(opt)
		peakHeap := sampler.Peak()
		if sampler.profileAt > peakProfileBytes {
			peakProfileBytes = sampler.profileAt
			peakProfile = append([]byte(nil), sampler.profile.Bytes()...)
		}
		wall := time.Since(start)
		verified := false
		if *verifyPar {
			serialOpt := opt
			serialOpt.Workers = 0
			serialTable := r.Run(serialOpt)
			if got, wantT := table.ComparableString(), serialTable.ComparableString(); got != wantT {
				return fmt.Errorf("%s: parallel table differs from serial table:\n--- parallel ---\n%s--- serial ---\n%s",
					r.ID, got, wantT)
			}
			// With -trace on, the span sets must match too: same spans, same
			// canonical order, fingerprint-equal between executors.
			if len(table.Traces) != len(serialTable.Traces) {
				return fmt.Errorf("%s: parallel run produced %d trace reports, serial %d",
					r.ID, len(table.Traces), len(serialTable.Traces))
			}
			for i, tr := range table.Traces {
				if st := serialTable.Traces[i]; tr.Fingerprint != st.Fingerprint {
					return fmt.Errorf("%s: trace %q span fingerprint differs: parallel %s (%d spans) vs serial %s (%d spans)",
						r.ID, tr.Label, tr.Fingerprint, tr.SpanCount, st.Fingerprint, st.SpanCount)
				}
			}
			verified = true
			fmt.Printf("   (%s: parallel table verified identical to serial)\n", r.ID)
			if len(table.Traces) > 0 {
				fmt.Printf("   (%s: %d trace span sets verified identical to serial)\n", r.ID, len(table.Traces))
			}
		}
		table.Render(os.Stdout)
		for _, tr := range table.Traces {
			tr.Render(os.Stdout)
		}
		fmt.Printf("   (%s completed in %v)\n\n", r.ID, wall.Round(time.Millisecond))

		if *jsonDir != "" {
			rep := &jsonReport{
				ID: table.ID, Title: table.Title, Claim: table.Claim,
				Columns: table.Columns, Rows: table.Rows, Notes: table.Notes,
				Seed: *seed, Quick: *quick, Big: *big, Workers: opt.Workers,
				GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
				WallSeconds: wall.Seconds(), Verified: verified,
				PeakHeapBytes: peakHeap, Wire: table.Wire,
				Chaos:     table.Chaos,
				Obs:       table.Obs,
				Precision: table.Precision,
				Traces:    table.Traces,
			}
			if table.Nodes > 0 && peakHeap > 0 {
				rep.HeapNodes = table.Nodes
				rep.PeakHeapBytesPerNode = float64(peakHeap) / float64(table.Nodes)
			}
			if *speedup && r.ID == "E1" {
				b, err := experiments.MeasureGossipSpeedup(4096, 5, *seed, opt.Workers)
				if err != nil {
					return fmt.Errorf("speedup: %w", err)
				}
				rep.Bench = b
				fmt.Printf("   (E1 gossip rounds @4096 nodes: serial %.2fs, parallel %.2fs, %.2fx, allocs %d -> %d)\n\n",
					b.SerialSeconds, b.ParallelSeconds, b.Speedup, b.SerialAllocs, b.ParallelAllocs)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+table.ID+".json")
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return fmt.Errorf("json: %w", err)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("json: %w", err)
			}
			fmt.Printf("   (wrote %s)\n\n", path)
		}
	}
	return nil
}

func chaosNames() []string {
	var names []string
	for _, sc := range chaos.Scenarios() {
		names = append(names, sc.Name)
	}
	return names
}
