package astrolabe

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"newswire/internal/value"
	"newswire/internal/wire"
)

// These tests pin the copy-on-write contract behind shared rows: a row is
// immutable once it has been gossiped, and writers must build fresh rows
// rather than touch the version peers may still hold. They are most
// meaningful under -race (the nightly and CI race runs), where any stray
// mutation of a shared map or cache shows up as a data race.

// TestOwnRowMutationDoesNotRacePeerReaders mutates an agent's own row in
// a tight loop while three peers concurrently read the shared prior
// version they merged — its attribute map, canonical encoding, digest
// hash, and wire size. Under the COW invariant the readers touch only
// immutable state, so the race detector stays quiet.
func TestOwnRowMutationDoesNotRacePeerReaders(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z", "/z", "/z"}, nil)
	writer := c.agents[0]
	peers := c.agents[1:]

	// Hand every peer the writer's current row: they now share one
	// *wire.SharedRow by reference.
	u := writer.OwnRowUpdate()
	for _, p := range peers {
		p.MergeRows([]wire.RowUpdate{u})
	}
	shared := u.Shared()
	if shared == nil {
		t.Fatal("OwnRowUpdate carries no shared row")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, p := range peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The merged table row and the captured prior version are
				// both fair game for readers at any time.
				row, ok := p.Row("/z", "node-0")
				if !ok {
					t.Error("peer lost the merged row")
					return
				}
				for k, v := range row.Attrs {
					_ = k
					_ = v.IsValid()
				}
				_ = shared.Encoding()
				_ = shared.AttrsHash()
				_ = shared.WireAttrsSize()
			}
		}()
	}

	clock := c.eng.Clock()
	for i := 0; i < 200; i++ {
		clock.Advance(time.Millisecond)
		writer.SetAttr("load", value.Int(int64(i)))
	}
	close(stop)
	wg.Wait()
}

// TestSetAttrAfterMergeLeavesPeerRowIntact checks the user-visible half
// of the invariant: once a peer has merged a row, the issuer calling
// SetAttr must never change what that peer sees until the peer merges
// the new version explicitly.
func TestSetAttrAfterMergeLeavesPeerRowIntact(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	issuer, peer := c.agents[0], c.agents[1]

	issuer.SetAttr("color", value.String("green"))
	peer.MergeRows([]wire.RowUpdate{issuer.OwnRowUpdate()})

	before, ok := peer.Row("/z", "node-0")
	if !ok {
		t.Fatal("peer did not merge the row")
	}
	wantAttrs := before.Attrs.Clone()

	c.eng.Clock().Advance(time.Second)
	issuer.SetAttr("color", value.String("red"))
	issuer.SetAttr("extra", value.Int(42))

	after, ok := peer.Row("/z", "node-0")
	if !ok {
		t.Fatal("peer lost the row")
	}
	if !after.Attrs.Equal(wantAttrs) {
		t.Fatalf("peer-visible row changed without a merge:\n before %v\n after  %v", wantAttrs, after.Attrs)
	}
	if v, ok := after.Attrs["extra"]; ok {
		t.Fatalf("issuer's later SetAttr leaked into the peer's row: extra=%v", v)
	}

	// After an explicit merge of the new version the peer converges.
	peer.MergeRows([]wire.RowUpdate{issuer.OwnRowUpdate()})
	converged, _ := peer.Row("/z", "node-0")
	if s, _ := converged.Attrs["color"].AsString(); s != "red" {
		t.Fatalf("after merging the fresh row, color = %q, want red", s)
	}
}

// TestMergeSharesOneRowAllocation pins the space win the COW design
// exists for: two peers that merge the same update hold the very same
// attribute map, not two copies.
func TestMergeSharesOneRowAllocation(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z", "/z"}, nil)
	issuer := c.agents[0]
	u := issuer.OwnRowUpdate()
	for _, p := range c.agents[1:] {
		p.MergeRows([]wire.RowUpdate{u})
	}
	r1, _ := c.agents[1].Row("/z", "node-0")
	r2, _ := c.agents[2].Row("/z", "node-0")
	if reflect.ValueOf(r1.Attrs).Pointer() != reflect.ValueOf(r2.Attrs).Pointer() {
		t.Fatal("peers hold distinct attribute maps for the same merged row; expected one shared allocation")
	}
	if reflect.ValueOf(r1.Attrs).Pointer() != reflect.ValueOf(issuer.OwnRowUpdate().Attrs).Pointer() {
		t.Fatal("peers copied the issuer's attribute map instead of sharing it")
	}
}
