package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func at(ms int) time.Time { return time.Unix(0, int64(ms)*int64(time.Millisecond)) }

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindPublish; k <= KindDeliveryFail; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %s -> %v", k, data, back)
		}
	}
	var bad Kind
	if err := json.Unmarshal([]byte(`"nonsense"`), &bad); err == nil {
		t.Error("unknown kind name unmarshalled without error")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Kind: KindForward, Hop: i, At: at(i)})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := 6 + i; s.Hop != want {
			t.Errorf("spans[%d].Hop = %d, want %d (oldest-first)", i, s.Hop, want)
		}
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	if c := cap(r.buf); c != 4096 {
		t.Errorf("default cap = %d, want 4096", c)
	}
}

// TestRingConcurrent drives concurrent writers and readers; its value is
// under -race, where any unsynchronized access fails the run.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Span{Kind: KindDeliver, Node: "n", Hop: i, At: at(i)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Spans()
			_ = r.Recorded()
		}
	}()
	wg.Wait()
	if got := r.Recorded(); got != 2000 {
		t.Fatalf("Recorded() = %d, want 2000", got)
	}
	if got := len(r.Spans()); got != 64 {
		t.Fatalf("retained %d spans, want 64", got)
	}
}

func TestCollectorCanonicalOrder(t *testing.T) {
	c := NewCollector(3)
	// Node 2 records first in real order, but its span is later in time.
	c.Node(2).Record(Span{Kind: KindDeliver, Node: "n2", At: at(30)})
	c.Node(1).Record(Span{Kind: KindForward, Node: "n1", At: at(10)})
	c.Node(0).Record(Span{Kind: KindPublish, Node: "n0", At: at(10)})
	c.Node(1).Record(Span{Kind: KindDeliver, Node: "n1", At: at(20)})
	if c.Len() != 4 {
		t.Fatalf("Len() = %d", c.Len())
	}
	spans := c.Spans()
	wantNodes := []string{"n0", "n1", "n1", "n2"} // time asc, node index tiebreak
	for i, want := range wantNodes {
		if spans[i].Node != want {
			t.Fatalf("spans[%d].Node = %s, want %s (order %+v)", i, spans[i].Node, want, spans)
		}
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	a := []Span{{Kind: KindPublish, Key: "k", At: at(1)}, {Kind: KindDeliver, Key: "k", At: at(2)}}
	b := []Span{a[1], a[0]}
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("reordered span slices produced equal fingerprints")
	}
	if Fingerprint(a) != Fingerprint(append([]Span(nil), a...)) {
		t.Error("identical span slices produced different fingerprints")
	}
}

func TestPathTo(t *testing.T) {
	spans := []Span{
		{Kind: KindPublish, Key: "k", Node: "n0", At: at(0)},
		{Kind: KindForward, Key: "k", Node: "n0", To: "n5", Hop: 1, At: at(0)},
		{Kind: KindForward, Key: "k", Node: "n5", To: "n9", Hop: 2, At: at(40)},
		// A later redundant copy toward n9 must lose to the earlier one.
		{Kind: KindForward, Key: "k", Node: "n7", To: "n9", Hop: 2, At: at(55)},
		{Kind: KindDeliver, Key: "k", Node: "n9", At: at(60)},
		// Noise: another item's spans.
		{Kind: KindForward, Key: "other", Node: "n0", To: "n9", At: at(10)},
	}
	path := PathTo(spans, "k", "n9")
	if len(path) != 4 {
		t.Fatalf("path length %d, want 4: %+v", len(path), path)
	}
	wantKinds := []Kind{KindPublish, KindForward, KindForward, KindDeliver}
	for i, k := range wantKinds {
		if path[i].Kind != k {
			t.Fatalf("path[%d].Kind = %v, want %v", i, path[i].Kind, k)
		}
	}
	if path[2].Node != "n5" {
		t.Errorf("hop 2 source = %s, want n5 (earliest transmission wins)", path[2].Node)
	}
	if got := PathTo(spans, "k", "nowhere"); got != nil {
		t.Errorf("PathTo to an undelivered node = %+v, want nil", got)
	}
}
