package value

import (
	"strconv"
	"strings"
	"testing"
	"unsafe"
)

func TestInternReturnsCanonicalInstance(t *testing.T) {
	a := Intern(string([]byte("attr-name")))
	b := Intern(string([]byte("attr-name")))
	if a != b {
		t.Fatalf("Intern returned different contents: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("Intern returned distinct backing arrays for equal strings")
	}
}

func TestInternKeysDropsPerMessageCopies(t *testing.T) {
	canon := Intern("load")
	// Simulate a decoded message: the key is a fresh heap copy.
	m := Map{string([]byte("load")): Float(0.5)}
	m.InternKeys()
	if len(m) != 1 {
		t.Fatalf("InternKeys changed map size: %d", len(m))
	}
	if v, ok := m["load"]; !ok || !v.Equal(Float(0.5)) {
		t.Fatalf("InternKeys lost the value: %v %v", v, ok)
	}
	for k := range m {
		if unsafe.StringData(k) != unsafe.StringData(canon) {
			t.Fatal("map key is not the interned instance after InternKeys")
		}
	}
}

func TestInternCapStopsGrowth(t *testing.T) {
	// Saturate the table; strings past the cap must still round-trip by
	// value even though they are not retained.
	prefix := strings.Repeat("x", 8)
	for i := 0; i < maxInterned+64; i++ {
		Intern(prefix + strconv.Itoa(i))
	}
	internMu.RLock()
	n := len(interned)
	internMu.RUnlock()
	if n > maxInterned {
		t.Fatalf("intern table grew past cap: %d > %d", n, maxInterned)
	}
	if got := Intern("definitely-not-retained-past-cap"); got != "definitely-not-retained-past-cap" {
		t.Fatalf("Intern corrupted a value past the cap: %q", got)
	}
}
