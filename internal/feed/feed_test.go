package feed

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const sampleRSS = `<?xml version="1.0"?>
<rss version="2.0">
  <channel>
    <title>Slashdot</title>
    <link>http://slashdot.org/</link>
    <description>News for nerds</description>
    <item>
      <title>Linux 2.5 kernel status</title>
      <link>http://slashdot.org/article/1</link>
      <description>The kernel marches on. More inside.</description>
      <guid>slashdot-1</guid>
      <category>Linux</category>
      <pubDate>Mon, 01 Apr 2002 09:00:00 -0500</pubDate>
    </item>
    <item>
      <title>New worm spreading</title>
      <link>http://slashdot.org/article/2</link>
      <description>A worm exploits unpatched servers.</description>
      <guid>slashdot-2</guid>
      <category>Security</category>
      <category>tech/internet</category>
    </item>
  </channel>
</rss>`

func TestParseRSS(t *testing.T) {
	ch, err := ParseRSS([]byte(sampleRSS))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Title != "Slashdot" || ch.Link != "http://slashdot.org/" {
		t.Fatalf("channel header: %+v", ch)
	}
	if len(ch.Items) != 2 {
		t.Fatalf("items = %d", len(ch.Items))
	}
	first := ch.Items[0]
	if first.Title != "Linux 2.5 kernel status" || first.GUID != "slashdot-1" {
		t.Fatalf("first item: %+v", first)
	}
	if first.Published.IsZero() {
		t.Fatal("pubDate not parsed")
	}
	if first.Published.UTC().Hour() != 14 {
		t.Fatalf("pubDate timezone wrong: %v", first.Published.UTC())
	}
	second := ch.Items[1]
	if len(second.Categories) != 2 {
		t.Fatalf("categories: %v", second.Categories)
	}
	if !second.Published.IsZero() {
		t.Fatal("missing pubDate should stay zero")
	}
}

func TestParseRSSErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not xml at all <",
		"no title":      `<rss><channel><link>x</link></channel></rss>`,
		"item untitled": `<rss><channel><title>t</title><item><guid>g</guid></item></channel></rss>`,
		"no guid/link":  `<rss><channel><title>t</title><item><title>i</title></item></channel></rss>`,
		"bad date":      `<rss><channel><title>t</title><item><title>i</title><guid>g</guid><pubDate>someday</pubDate></item></channel></rss>`,
	}
	for name, doc := range cases {
		if _, err := ParseRSS([]byte(doc)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseRSSGUIDFallsBackToLink(t *testing.T) {
	doc := `<rss><channel><title>t</title><item><title>i</title><link>http://x/1</link></item></channel></rss>`
	ch, err := ParseRSS([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Items[0].GUID != "http://x/1" {
		t.Fatalf("GUID = %q", ch.Items[0].GUID)
	}
}

func TestDefaultSubjectMapper(t *testing.T) {
	m := DefaultSubjectMapper("tech", "tech/internet")
	subjects := m(&Entry{Categories: []string{"Linux", "tech/security", "Ask Slashdot"}})
	want := []string{"tech/ask-slashdot", "tech/linux", "tech/security"}
	if len(subjects) != len(want) {
		t.Fatalf("subjects = %v", subjects)
	}
	for i := range want {
		if subjects[i] != want[i] {
			t.Fatalf("subjects = %v, want %v", subjects, want)
		}
	}
	// Fallback for uncategorized entries.
	if got := m(&Entry{}); len(got) != 1 || got[0] != "tech/internet" {
		t.Fatalf("fallback = %v", got)
	}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent("", nil); err == nil {
		t.Fatal("empty publisher accepted")
	}
	if _, err := NewAgent("slashdot", nil); err != nil {
		t.Fatalf("nil mapper should default: %v", err)
	}
}

func TestAgentTransformNewEntries(t *testing.T) {
	a, _ := NewAgent("slashdot", nil)
	ch, _ := ParseRSS([]byte(sampleRSS))
	now := time.Date(2002, 4, 1, 12, 0, 0, 0, time.UTC)

	items := a.Transform(ch, now)
	if len(items) != 2 {
		t.Fatalf("got %d items", len(items))
	}
	for _, it := range items {
		if err := it.Validate(); err != nil {
			t.Fatalf("item invalid: %v", err)
		}
		if it.Publisher != "slashdot" || it.Revision != 0 {
			t.Fatalf("item: %+v", it)
		}
	}
	// The entry with a pubDate keeps it; the other gets now.
	if items[0].Published.Equal(now) {
		t.Fatal("pubDate entry should keep its own time")
	}
	if !items[1].Published.Equal(now) {
		t.Fatal("dateless entry should get the poll time")
	}
	if !strings.Contains(items[0].Body, "http://slashdot.org/article/1") {
		t.Fatal("link not embedded in body")
	}
}

func TestAgentTransformIdempotentOnUnchangedFeed(t *testing.T) {
	a, _ := NewAgent("slashdot", nil)
	ch, _ := ParseRSS([]byte(sampleRSS))
	now := time.Now()
	if got := a.Transform(ch, now); len(got) != 2 {
		t.Fatalf("first poll: %d", len(got))
	}
	if got := a.Transform(ch, now); len(got) != 0 {
		t.Fatalf("second poll of identical feed produced %d items", len(got))
	}
}

func TestAgentTransformDetectsRevision(t *testing.T) {
	a, _ := NewAgent("slashdot", nil)
	ch, _ := ParseRSS([]byte(sampleRSS))
	now := time.Now()
	first := a.Transform(ch, now)

	// Same GUID, changed description: a revision.
	ch.Items[0].Description = "Updated: the kernel has been released."
	second := a.Transform(ch, now.Add(time.Hour))
	if len(second) != 1 {
		t.Fatalf("revision poll produced %d items", len(second))
	}
	rev := second[0]
	if rev.Revision != 1 {
		t.Fatalf("revision = %d, want 1", rev.Revision)
	}
	if rev.ID != first[0].ID {
		t.Fatalf("revision changed item ID: %q vs %q", rev.ID, first[0].ID)
	}
}

func TestAgentNewEntriesGetNewIDs(t *testing.T) {
	a, _ := NewAgent("p", nil)
	ch := &Channel{Title: "t", Items: []Entry{
		{Title: "one", GUID: "g1"},
		{Title: "two", GUID: "g2"},
	}}
	items := a.Transform(ch, time.Now())
	if items[0].ID == items[1].ID {
		t.Fatal("distinct entries share an item ID")
	}
}

func TestFirstSentence(t *testing.T) {
	if got := firstSentence("Short. More after."); got != "Short." {
		t.Fatalf("got %q", got)
	}
	long := strings.Repeat("a", 300)
	if got := firstSentence(long); len(got) != 140 {
		t.Fatalf("long truncation = %d bytes", len(got))
	}
	if got := firstSentence("no period here"); got != "no period here" {
		t.Fatalf("got %q", got)
	}
}

// Property: ParseRSS never panics on arbitrary byte input.
func TestQuickParseRSSRobustness(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseRSS(data) // errors fine, panics not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
