// Monitor: Astrolabe as an infrastructure-management service (paper §4) —
// independent of news delivery, the same substrate monitors and aggregates
// live operational state: "the availability and configuration of local
// communication paths, as well as performance measurements of local
// networking and computing elements", with aggregation functions that
// "offer real-time guidance concerning which elements are in the min/max
// category, and hence represent targets for new operations".
//
// The demo runs 24 agents in three zones, each exporting cpu load, free
// memory, and a link-latency measurement. A custom aggregation program
// summarizes min/max/avg per zone and elects the best target for new work;
// the operator reads the whole deployment's state from any single node's
// root table.
//
// Run with: go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"newswire"
	"newswire/internal/astrolabe"
	"newswire/internal/metrics"
	"newswire/internal/sqlagg"
	"newswire/internal/value"
)

// managementProgram is §4's management-flavoured aggregation: capacity
// summaries plus a "best target" election by free memory.
var managementProgram = sqlagg.MustParse(`SELECT
	SUM(COALESCE(nmembers, 1)) AS nmembers,
	REPS(3, load, COALESCE(reps, addr)) AS reps,
	MINV(load, addr) AS addr,
	MIN(load) AS load,
	AVG(cpu) AS cpu,
	MAX(cpu) AS max_cpu,
	SUM(free_mb) AS free_mb,
	MAX(latency_ms) AS worst_latency_ms,
	MAXV(free_mb, addr) AS best_target,
	BIT_OR(subs) AS subs`)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Astrolabe infrastructure monitoring (paper §4) ==")

	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         24,
		Branching: 8,
		Seed:      4,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.Aggregation = managementProgram
		},
	})
	if err != nil {
		return err
	}

	// Each node exports its (synthetic) operational metrics and keeps
	// refreshing them — machine 7 is overloaded, machine 16 is idle.
	rng := rand.New(rand.NewSource(99))
	report := func() {
		for i, node := range cluster.Nodes {
			cpu := 0.2 + 0.1*rng.Float64()
			freeMB := int64(2000 + rng.Intn(500))
			switch i {
			case 7:
				cpu = 0.97
				freeMB = 60
			case 16:
				cpu = 0.02
				freeMB = 7800
			}
			node.Agent().SetAttrs(value.Map{
				"cpu":        value.Float(cpu),
				"free_mb":    value.Int(freeMB),
				"latency_ms": value.Float(5 + 40*rng.Float64()),
			})
		}
	}
	report()
	cluster.RunRounds(4)
	report()
	cluster.RunRounds(8)

	// Any node answers deployment-wide questions from its root table.
	observer := cluster.Nodes[23]
	rows, _ := observer.Agent().Table(astrolabe.RootZone)
	fmt.Printf("\noperator view from node 23 (%d top-level zones):\n\n", len(rows))
	fmt.Printf("%-6s %-8s %-8s %-8s %-10s %-12s %s\n",
		"zone", "members", "avg cpu", "max cpu", "free MB", "worst lat", "best target")
	var totalFree, totalMembers int64
	for _, r := range rows {
		members, _ := r.Attrs["nmembers"].AsInt()
		avgCPU, _ := r.Attrs["cpu"].AsFloat()
		maxCPU, _ := r.Attrs["max_cpu"].AsFloat()
		free, _ := r.Attrs["free_mb"].AsInt()
		lat, _ := r.Attrs["worst_latency_ms"].AsFloat()
		best, _ := r.Attrs["best_target"].AsString()
		fmt.Printf("%-6s %-8d %-8.2f %-8.2f %-10d %-12.1f %s\n",
			r.Name, members, avgCPU, maxCPU, free, lat, best)
		totalFree += free
		totalMembers += members
	}
	fmt.Printf("\nwhole deployment: %d machines, %d MB free aggregate\n",
		totalMembers, totalFree)

	// The min/max election the paper describes: where should new work go?
	bestZone, bestTarget, bestFree := "", "", int64(-1)
	for _, r := range rows {
		if free, _ := r.Attrs["free_mb"].AsInt(); free > bestFree {
			bestFree = free
			bestZone = r.Name
			bestTarget, _ = r.Attrs["best_target"].AsString()
		}
	}
	fmt.Printf("placement guidance: zone %s, machine %s (most free memory)\n",
		bestZone, bestTarget)

	// Overload detection: any zone with max cpu > 0.9 has a hot machine.
	for _, r := range rows {
		if maxCPU, _ := r.Attrs["max_cpu"].AsFloat(); maxCPU > 0.9 {
			fmt.Printf("alert: zone %s contains a machine above 90%% cpu\n", r.Name)
		}
	}

	// The monitoring substrate also watches itself: delta anti-entropy
	// keeps the gossip that carries all the state above cheap. Summed
	// across the deployment the counters show mostly digest entries
	// (tiny) and comparatively few full rows.
	var gossips, gossipBytes, rowsSent, digests int64
	for _, node := range cluster.Nodes {
		st := node.Agent().Stats()
		gossips += st.GossipsSent
		gossipBytes += st.GossipBytesSent
		rowsSent += st.RowsSent
		digests += st.DigestsSent
	}
	fmt.Printf("\ngossip traffic so far: %d exchanges, %.1f KB, %d full rows, %d digest entries\n",
		gossips, float64(gossipBytes)/1024, rowsSent, digests)

	// A single node's view of the same counters, through the metrics
	// registry an operator would scrape.
	reg := metrics.NewRegistry()
	observer.FillMetrics(reg)
	fmt.Printf("\nnode 23 metrics registry:\n%s\n", reg.Snapshot())

	// The monitoring state keeps converging as metrics change: idle
	// machine 16 gets busy, and within a few rounds every root table
	// reflects it.
	cluster.Nodes[16].Agent().SetAttrs(value.Map{
		"cpu":     value.Float(0.99),
		"free_mb": value.Int(100),
	})
	cluster.RunRounds(6)
	rows, _ = observer.Agent().Table(astrolabe.RootZone)
	fmt.Println("\nafter machine 16 becomes busy:")
	for _, r := range rows {
		maxCPU, _ := r.Attrs["max_cpu"].AsFloat()
		best, _ := r.Attrs["best_target"].AsString()
		fmt.Printf("  zone %s: max cpu %.2f, best target now %s\n", r.Name, maxCPU, best)
	}
	return nil
}
