// Package cert implements the public-key certificate machinery Astrolabe
// relies on ("Secure, through pervasive use of certificates", paper §3).
//
// The trust structure mirrors the paper's: a zone authority key signs member
// certificates for the agents inside the zone and publisher certificates for
// authorised news producers; agents sign the MIB rows they gossip; and
// publishers sign every news item so leaves can verify authenticity
// end-to-end regardless of which forwarders touched the item (§8).
//
// Keys are Ed25519 (crypto/ed25519 in the standard library).
package cert

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"time"
)

// Role classifies what a certificate authorises its subject to do.
type Role uint8

// Certificate roles.
const (
	RoleInvalid   Role = iota
	RoleAuthority      // may sign other certificates (zone authority)
	RoleMember         // may gossip rows as an Astrolabe agent
	RolePublisher      // may publish news items
)

// String returns the lower-case role name.
func (r Role) String() string {
	switch r {
	case RoleAuthority:
		return "authority"
	case RoleMember:
		return "member"
	case RolePublisher:
		return "publisher"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// KeyPair bundles an Ed25519 key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh key pair from the given entropy source
// (nil means crypto/rand.Reader).
func GenerateKeyPair(rng io.Reader) (KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return KeyPair{}, fmt.Errorf("cert: generate key: %w", err)
	}
	return KeyPair{Public: pub, Private: priv}, nil
}

// Sign signs msg with the private key.
func (kp KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(kp.Private, msg)
}

// Certificate binds a subject name and public key to a role, signed by an
// issuer. Certificates form chains rooted at a self-signed authority.
type Certificate struct {
	Subject   string
	Role      Role
	PublicKey ed25519.PublicKey
	Issuer    string
	NotAfter  time.Time
	Signature []byte
}

// Errors returned by certificate verification.
var (
	ErrBadSignature = errors.New("cert: signature verification failed")
	ErrExpired      = errors.New("cert: certificate expired")
	ErrNotAuthority = errors.New("cert: issuer is not an authority")
	ErrBrokenChain  = errors.New("cert: broken certificate chain")
)

// signedPayload renders the certificate fields that the signature covers.
func (c *Certificate) signedPayload() []byte {
	out := make([]byte, 0, 128)
	out = appendString(out, c.Subject)
	out = append(out, byte(c.Role))
	out = appendString(out, string(c.PublicKey))
	out = appendString(out, c.Issuer)
	out = binary.AppendVarint(out, c.NotAfter.UnixNano())
	return out
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Issue creates a certificate for subject with the given role and public
// key, signed by the issuer's key pair.
func Issue(issuerName string, issuerKey KeyPair, subject string, role Role,
	subjectPub ed25519.PublicKey, notAfter time.Time) *Certificate {
	c := &Certificate{
		Subject:   subject,
		Role:      role,
		PublicKey: subjectPub,
		Issuer:    issuerName,
		NotAfter:  notAfter,
	}
	c.Signature = issuerKey.Sign(c.signedPayload())
	return c
}

// SelfSign creates the root authority certificate: subject == issuer, role
// RoleAuthority, signed with its own key.
func SelfSign(name string, key KeyPair, notAfter time.Time) *Certificate {
	return Issue(name, key, name, RoleAuthority, key.Public, notAfter)
}

// VerifyWith checks that the certificate was signed by issuerPub and has
// not expired at instant now.
func (c *Certificate) VerifyWith(issuerPub ed25519.PublicKey, now time.Time) error {
	if now.After(c.NotAfter) {
		return fmt.Errorf("%w: %s at %v", ErrExpired, c.Subject, c.NotAfter)
	}
	if !ed25519.Verify(issuerPub, c.signedPayload(), c.Signature) {
		return fmt.Errorf("%w: subject %s issuer %s", ErrBadSignature, c.Subject, c.Issuer)
	}
	return nil
}

// Chain is an ordered certificate chain: chain[0] is the root authority
// (self-signed) and each subsequent certificate is signed by its
// predecessor.
type Chain []*Certificate

// Verify walks the chain at instant now: the root must be a valid
// self-signed authority, every link must verify against its predecessor's
// key, and every intermediate must hold RoleAuthority. It returns the leaf
// certificate on success.
func (ch Chain) Verify(now time.Time) (*Certificate, error) {
	if len(ch) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrBrokenChain)
	}
	root := ch[0]
	if root.Role != RoleAuthority {
		return nil, fmt.Errorf("%w: root %s", ErrNotAuthority, root.Subject)
	}
	if root.Subject != root.Issuer {
		return nil, fmt.Errorf("%w: root not self-signed", ErrBrokenChain)
	}
	if err := root.VerifyWith(root.PublicKey, now); err != nil {
		return nil, err
	}
	prev := root
	for _, c := range ch[1:] {
		if prev.Role != RoleAuthority {
			return nil, fmt.Errorf("%w: %s signed by non-authority %s",
				ErrNotAuthority, c.Subject, prev.Subject)
		}
		if c.Issuer != prev.Subject {
			return nil, fmt.Errorf("%w: %s issued by %s, expected %s",
				ErrBrokenChain, c.Subject, c.Issuer, prev.Subject)
		}
		if err := c.VerifyWith(prev.PublicKey, now); err != nil {
			return nil, err
		}
		prev = c
	}
	return prev, nil
}

// SignedBlob is a detached signature over an arbitrary payload, carrying the
// signer name so verifiers can look up the right certificate.
type SignedBlob struct {
	Signer    string
	Signature []byte
}

// SignBlob signs payload with the key pair.
func SignBlob(signer string, key KeyPair, payload []byte) SignedBlob {
	return SignedBlob{Signer: signer, Signature: key.Sign(payload)}
}

// VerifyBlob checks sig over payload against pub.
func VerifyBlob(sig SignedBlob, pub ed25519.PublicKey, payload []byte) error {
	if !ed25519.Verify(pub, payload, sig.Signature) {
		return fmt.Errorf("%w: signer %s", ErrBadSignature, sig.Signer)
	}
	return nil
}

// Fingerprint returns a short hex identifier for a public key, used in
// logs and row attributes.
func Fingerprint(pub ed25519.PublicKey) string {
	if len(pub) < 8 {
		return hex.EncodeToString(pub)
	}
	return hex.EncodeToString(pub[:8])
}

// Store is an in-memory certificate directory keyed by subject name. It is
// what an agent consults when verifying gossiped rows and published items.
type Store struct {
	certs map[string]*Certificate
}

// NewStore returns an empty certificate store.
func NewStore() *Store {
	return &Store{certs: make(map[string]*Certificate)}
}

// Add records a certificate, replacing any previous one for the subject.
func (s *Store) Add(c *Certificate) {
	s.certs[c.Subject] = c
}

// Lookup returns the certificate for subject, if present.
func (s *Store) Lookup(subject string) (*Certificate, bool) {
	c, ok := s.certs[subject]
	return c, ok
}

// VerifySigned verifies a blob signature using the store: the signer must
// have a certificate with one of the accepted roles, and the certificate
// must itself verify against the given authority key.
func (s *Store) VerifySigned(sig SignedBlob, payload []byte,
	authorityPub ed25519.PublicKey, now time.Time, accepted ...Role) error {
	c, ok := s.Lookup(sig.Signer)
	if !ok {
		return fmt.Errorf("cert: no certificate for signer %q", sig.Signer)
	}
	roleOK := false
	for _, r := range accepted {
		if c.Role == r {
			roleOK = true
			break
		}
	}
	if !roleOK {
		return fmt.Errorf("cert: signer %q has role %s, not accepted", sig.Signer, c.Role)
	}
	if err := c.VerifyWith(authorityPub, now); err != nil {
		return fmt.Errorf("cert: signer certificate invalid: %w", err)
	}
	return VerifyBlob(sig, c.PublicKey, payload)
}

// Len returns the number of stored certificates.
func (s *Store) Len() int { return len(s.certs) }
