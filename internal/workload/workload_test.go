package workload

import (
	"math/rand"
	"testing"
	"time"

	"newswire/internal/news"
	"newswire/internal/vtime"
)

func TestNewArticleGenValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := SlashdotProfile()
	if _, err := NewArticleGen(good, rng); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := good
	bad.Name = ""
	if _, err := NewArticleGen(bad, rng); err == nil {
		t.Error("empty name accepted")
	}
	bad = good
	bad.Subjects = nil
	if _, err := NewArticleGen(bad, rng); err == nil {
		t.Error("no subjects accepted")
	}
	bad = good
	bad.ArticlesPerHour = 0
	if _, err := NewArticleGen(bad, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewArticleGen(good, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestArticleGenProducesValidItems(t *testing.T) {
	g, err := NewArticleGen(SlashdotProfile(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	now := vtime.Epoch
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		it := g.Next(now)
		if err := it.Validate(); err != nil {
			t.Fatalf("item %d invalid: %v", i, err)
		}
		if it.Publisher != "slashdot" {
			t.Fatalf("publisher = %q", it.Publisher)
		}
		if seen[it.Key()] {
			t.Fatalf("duplicate key %s", it.Key())
		}
		seen[it.Key()] = true
		now = now.Add(time.Minute)
	}
}

func TestArticleGenEmitsRevisions(t *testing.T) {
	profile := SlashdotProfile()
	profile.RevisionProb = 1.0 // every story gets revised
	g, _ := NewArticleGen(profile, rand.New(rand.NewSource(3)))
	revs := 0
	for i := 0; i < 300; i++ {
		if it := g.Next(vtime.Epoch); it.Revision > 0 {
			revs++
		}
	}
	if revs == 0 {
		t.Fatal("no revisions generated despite RevisionProb=1")
	}
}

func TestNextDelayPositiveAndRoughlyCalibrated(t *testing.T) {
	profile := SlashdotProfile()
	profile.ArticlesPerHour = 60 // one per minute
	g, _ := NewArticleGen(profile, rand.New(rand.NewSource(11)))
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := g.NextDelay()
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		total += d
	}
	mean := total / n
	if mean < 30*time.Second || mean > 2*time.Minute {
		t.Fatalf("mean inter-arrival %v, want ~1m", mean)
	}
}

func TestZipfIndexSkewAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		idx := ZipfIndex(rng, 10, 1.2)
		if idx < 0 || idx >= 10 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("no skew: first=%d last=%d", counts[0], counts[9])
	}
	if counts[0] <= counts[4] {
		t.Fatalf("weak skew: first=%d mid=%d", counts[0], counts[4])
	}
	// Degenerate sizes.
	if ZipfIndex(rng, 1, 1.2) != 0 || ZipfIndex(rng, 0, 1.2) != 0 {
		t.Fatal("degenerate n mishandled")
	}
}

func TestSampleSubscriptionsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	subs := SampleSubscriptions(rng, news.StandardSubjects, 5, 1.0)
	if len(subs) != 5 {
		t.Fatalf("got %d subjects", len(subs))
	}
	seen := make(map[string]bool)
	for _, s := range subs {
		if seen[s] {
			t.Fatalf("duplicate subject %q", s)
		}
		seen[s] = true
	}
	// Requesting more than the pool returns the whole pool.
	all := SampleSubscriptions(rng, []string{"a", "b"}, 10, 1.0)
	if len(all) != 2 {
		t.Fatalf("overdraw returned %d", len(all))
	}
}

func TestReaderVisitTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	day := vtime.Epoch
	visits := ReaderProfile{VisitsPerDay: 4}.VisitTimes(rng, day)
	if len(visits) != 4 {
		t.Fatalf("got %d visits", len(visits))
	}
	for i, v := range visits {
		if v.Before(day) || v.After(day.Add(24*time.Hour)) {
			t.Fatalf("visit %d at %v outside the day", i, v)
		}
		if i > 0 && !visits[i].After(visits[i-1]) {
			t.Fatalf("visits not increasing: %v", visits)
		}
	}
	if got := (ReaderProfile{}).VisitTimes(rng, day); got != nil {
		t.Fatal("zero visits should return nil")
	}
}

func TestFlashCrowdRate(t *testing.T) {
	f := FlashCrowd{Start: vtime.Epoch.Add(time.Hour), Duration: time.Hour, Multiplier: 100}
	if got := f.RateAt(vtime.Epoch, 10); got != 10 {
		t.Fatalf("pre-event rate = %v", got)
	}
	if got := f.RateAt(vtime.Epoch.Add(90*time.Minute), 10); got != 1000 {
		t.Fatalf("event rate = %v", got)
	}
	if got := f.RateAt(vtime.Epoch.Add(3*time.Hour), 10); got != 10 {
		t.Fatalf("post-event rate = %v", got)
	}
	calm := FlashCrowd{Multiplier: 1}
	if got := calm.RateAt(vtime.Epoch, 10); got != 10 {
		t.Fatalf("multiplier 1 changed rate: %v", got)
	}
}

func TestGeographyFromWorldSubjects(t *testing.T) {
	profile := WireServiceProfile("reuters")
	profile.Subjects = []string{"world/asia"}
	g, _ := NewArticleGen(profile, rand.New(rand.NewSource(4)))
	it := g.Next(vtime.Epoch)
	if it.Geography != "asia" {
		t.Fatalf("geography = %q, want asia", it.Geography)
	}
}

func TestDayOfArticles(t *testing.T) {
	g, _ := NewArticleGen(SlashdotProfile(), rand.New(rand.NewSource(6)))
	day := vtime.Epoch
	items := g.DayOfArticles(day)
	// ~40 stories/day at 1.7/hour; allow wide slack.
	if len(items) < 15 || len(items) > 90 {
		t.Fatalf("day produced %d articles, want ~40", len(items))
	}
	for i, it := range items {
		if it.Published.Before(day) || it.Published.After(day.Add(24*time.Hour)) {
			t.Fatalf("article %d published outside the day: %v", i, it.Published)
		}
		if i > 0 && items[i].Published.Before(items[i-1].Published) {
			t.Fatal("articles out of order")
		}
	}
}
