package main

// The -collect mode: the observability client for a live cluster. It
// polls each node's /cluster-health.json until the gossip-aggregated
// rollup has converged (every node sees the expected member count from
// its own local table), then joins the nodes' /trace.json spans by trace
// ID into cross-process delivery traces, corrects their timestamps with
// the clock offsets the transports measured (/status.json clockOffsets),
// and reports the slowest delivery paths hop by hop.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"newswire/internal/trace"
)

type collectOptions struct {
	nodes   []string
	expect  int
	timeout time.Duration
	key     string
	top     int
	log     *slog.Logger
}

// healthDoc mirrors the /cluster-health.json fields the collector needs;
// decoding into a local struct keeps this an honest external consumer of
// the published schema.
type healthDoc struct {
	Node    string `json:"node"`
	Cluster struct {
		Nodes            int64   `json:"nodes"`
		Retries          int64   `json:"retries"`
		DeliveryFailures int64   `json:"deliveryFailures"`
		QueueDrops       int64   `json:"queueDrops"`
		WorstNode        string  `json:"worstNode"`
		LatencyCount     uint64  `json:"latencyCount"`
		LatencyP50       float64 `json:"latencyP50"`
		LatencyP99       float64 `json:"latencyP99"`
	} `json:"cluster"`
}

// statusDoc mirrors the /status.json fields the collector needs.
type statusDoc struct {
	Name         string `json:"name"`
	Addr         string `json:"addr"`
	ClockOffsets map[string]struct {
		Offset time.Duration `json:"offset"`
		RTT    time.Duration `json:"rtt"`
	} `json:"clockOffsets"`
}

type traceDoc struct {
	Spans []trace.Span `json:"spans"`
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func collectMain(o collectOptions) error {
	var nodes []string
	for _, n := range o.nodes {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !strings.Contains(n, "://") {
			n = "http://" + n
		}
		nodes = append(nodes, strings.TrimRight(n, "/"))
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-collect needs -nodes")
	}
	if o.expect <= 0 {
		o.expect = len(nodes)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(o.timeout)

	// Phase 1: health convergence. Every node must serve the rollup from
	// its own replicated table and count at least the expected members.
	var last healthDoc
	for {
		converged := 0
		for _, n := range nodes {
			var doc healthDoc
			if err := getJSON(client, n+"/cluster-health.json", &doc); err != nil {
				o.log.Debug("health poll", "node", n, "err", err)
				continue
			}
			if doc.Cluster.Nodes >= int64(o.expect) {
				converged++
				last = doc
			}
		}
		if converged == len(nodes) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster health never converged: %d/%d nodes see >= %d members",
				converged, len(nodes), o.expect)
		}
		time.Sleep(250 * time.Millisecond)
	}
	o.log.Info("cluster health converged",
		"nodes", last.Cluster.Nodes,
		"latency_p50_ms", fmt.Sprintf("%.2f", last.Cluster.LatencyP50*1000),
		"latency_p99_ms", fmt.Sprintf("%.2f", last.Cluster.LatencyP99*1000),
		"latency_samples", last.Cluster.LatencyCount,
		"retries", last.Cluster.Retries,
		"delivery_failures", last.Cluster.DeliveryFailures,
		"queue_drops", last.Cluster.QueueDrops,
		"worst_node", last.Cluster.WorstNode)

	// Phase 2: per-node status for transport addresses and measured clock
	// offsets. Offsets are re-based onto the first node's clock: a span
	// recorded at time t on a node whose clock runs `off` ahead of the
	// reference happened at t-off on the reference's timeline.
	statuses := make([]statusDoc, len(nodes))
	for i, n := range nodes {
		if err := getJSON(client, n+"/status.json", &statuses[i]); err != nil {
			return fmt.Errorf("status %s: %w", n, err)
		}
	}
	ref := statuses[0]
	offsetOf := map[string]time.Duration{ref.Addr: 0}
	for _, st := range statuses[1:] {
		if e, ok := ref.ClockOffsets[st.Addr]; ok {
			offsetOf[st.Addr] = e.Offset
		} else if e, ok := st.ClockOffsets[ref.Addr]; ok {
			offsetOf[st.Addr] = -e.Offset // measured from the other side
		} else {
			o.log.Warn("no clock offset measured; assuming zero", "node", st.Addr)
			offsetOf[st.Addr] = 0
		}
		o.log.Debug("clock offset", "node", st.Addr, "offset", offsetOf[st.Addr])
	}

	// Phase 3: join traces. Spans from every node, timestamps corrected,
	// merged into the canonical order the path walker expects.
	var spans []trace.Span
	perNode := make(map[string]int)
	for i, n := range nodes {
		var doc traceDoc
		if err := getJSON(client, n+"/trace.json", &doc); err != nil {
			return fmt.Errorf("trace %s: %w", n, err)
		}
		for _, s := range doc.Spans {
			if off, ok := offsetOf[s.Node]; ok && off != 0 {
				s.At = s.At.Add(-off)
			}
			spans = append(spans, s)
		}
		perNode[statuses[i].Addr] += len(doc.Spans)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].At.Before(spans[j].At) })
	o.log.Info("traces fetched", "spans", len(spans), "processes", len(nodes))

	// Pick the trace to join: the requested key's, or the one whose spans
	// cover the most distinct processes (ties to the larger trace).
	id := uint64(0)
	if o.key != "" {
		id = trace.DeriveTraceID(o.key)
	} else {
		type spread struct{ procs, count int }
		byID := make(map[uint64]map[string]int)
		for _, s := range spans {
			if s.TraceID == 0 {
				continue
			}
			if byID[s.TraceID] == nil {
				byID[s.TraceID] = make(map[string]int)
			}
			byID[s.TraceID][s.Node]++
		}
		best := spread{}
		for tid, procs := range byID {
			total := 0
			for _, c := range procs {
				total += c
			}
			if len(procs) > best.procs || (len(procs) == best.procs && total > best.count) {
				best = spread{procs: len(procs), count: total}
				id = tid
			}
		}
	}
	joined := trace.ByTrace(spans, id)
	if len(joined) == 0 {
		return fmt.Errorf("no spans found for trace %#x", id)
	}
	procs := make(map[string]bool)
	for _, s := range joined {
		procs[s.Node] = true
	}
	if len(procs) < 2 {
		return fmt.Errorf("trace %#x has spans from only %d process(es); cross-process join failed", id, len(procs))
	}
	o.log.Info("cross-process trace joined",
		"trace", fmt.Sprintf("%#x", id),
		"key", joined[0].Key,
		"spans", len(joined),
		"processes", len(procs))
	t0 := joined[0].At
	for _, s := range joined {
		o.log.Info("span",
			"trace", fmt.Sprintf("%#x", id),
			"kind", s.Kind.String(),
			"node", s.Node,
			"zone", s.Zone,
			"to", s.To,
			"t_ms", fmt.Sprintf("%.3f", s.At.Sub(t0).Seconds()*1000))
	}

	// Phase 4: slowest delivery paths across every joined trace, by
	// corrected publish-to-deliver latency.
	type delivery struct {
		key, dst string
		lat      time.Duration
	}
	publishAt := make(map[string]time.Time)
	for _, s := range spans {
		if s.Kind == trace.KindPublish {
			if _, ok := publishAt[s.Key]; !ok {
				publishAt[s.Key] = s.At
			}
		}
	}
	var dels []delivery
	for _, s := range spans {
		if s.Kind != trace.KindDeliver {
			continue
		}
		pub, ok := publishAt[s.Key]
		if !ok {
			continue
		}
		dels = append(dels, delivery{key: s.Key, dst: s.Node, lat: s.At.Sub(pub)})
	}
	sort.Slice(dels, func(i, j int) bool { return dels[i].lat > dels[j].lat })
	if len(dels) > o.top {
		dels = dels[:o.top]
	}
	for rank, d := range dels {
		o.log.Info("slow path",
			"rank", rank+1,
			"key", d.key,
			"dst", d.dst,
			"latency_ms", fmt.Sprintf("%.3f", d.lat.Seconds()*1000))
		path := trace.PathTo(spans, d.key, d.dst)
		prev := time.Time{}
		for hop, s := range path {
			dt := 0.0
			if !prev.IsZero() {
				dt = s.At.Sub(prev).Seconds() * 1000
			}
			prev = s.At
			o.log.Info("hop",
				"rank", rank+1, "hop", hop,
				"kind", s.Kind.String(), "node", s.Node, "to", s.To,
				"dt_ms", fmt.Sprintf("%.3f", dt))
		}
	}
	return nil
}
