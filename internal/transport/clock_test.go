package transport

import (
	"testing"
	"time"

	"newswire/internal/wire"
)

func TestEstimateOffset(t *testing.T) {
	base := time.Unix(1000, 0)
	cases := []struct {
		name       string
		skew       time.Duration // responder clock − initiator clock
		fwd, back  time.Duration // one-way delays
		wantOffset time.Duration
		wantRTT    time.Duration
	}{
		{"synchronized symmetric", 0, 10 * time.Millisecond, 10 * time.Millisecond, 0, 20 * time.Millisecond},
		{"peer ahead", 2 * time.Second, 5 * time.Millisecond, 5 * time.Millisecond, 2 * time.Second, 10 * time.Millisecond},
		{"peer behind", -700 * time.Millisecond, 15 * time.Millisecond, 15 * time.Millisecond, -700 * time.Millisecond, 30 * time.Millisecond},
		// Asymmetry bounds: with all delay on the forward path the
		// estimate errs by rtt/2.
		{"asymmetric path", 0, 20 * time.Millisecond, 0, 10 * time.Millisecond, 20 * time.Millisecond},
	}
	for _, tc := range cases {
		t1 := base
		t2 := base.Add(tc.fwd).Add(tc.skew) // responder stamps its own clock
		t3 := base.Add(tc.fwd + tc.back)
		offset, rtt := estimateOffset(t1, t2, t3)
		if offset != tc.wantOffset {
			t.Errorf("%s: offset = %v, want %v", tc.name, offset, tc.wantOffset)
		}
		if rtt != tc.wantRTT {
			t.Errorf("%s: rtt = %v, want %v", tc.name, rtt, tc.wantRTT)
		}
	}
}

// TestClockOffsetHandshake runs two real endpoints over loopback and
// waits for the dial-time ping/pong to produce an offset estimate. Both
// ends share one wall clock, so the estimate must be near zero and the
// RTT must be positive.
func TestClockOffsetHandshake(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Any send establishes the connection and fires the dial-time probe.
	if err := a.Send(b.Addr(), &wire.Message{
		Kind:   wire.KindGossip,
		Gossip: &wire.Gossip{FromZone: "/x"},
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if e, ok := a.ClockOffset(b.Addr()); ok {
			if d := e.Offset; d < -time.Second || d > time.Second {
				t.Fatalf("loopback offset = %v, want ~0", d)
			}
			if e.RTT <= 0 {
				t.Fatalf("rtt = %v, want > 0", e.RTT)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no clock offset estimated within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The pong answered a's probe through b's normal send path, which
	// dialed a — so b must have fired its own dial-time probe at a too.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, ok := b.ClockOffset(a.Addr()); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("responder never estimated initiator offset")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
