package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMain lets the loadgen spawn its sink child even when the compiled
// binary is the test binary: the parent sets NEWSWIRE_LOADGEN_SINK and
// the child dispatches straight into run() instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("NEWSWIRE_LOADGEN_SINK") == "1" {
		if err := run(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "newswire-loadgen:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestLoadgenEndToEnd runs a miniature E11 — real sockets, both arms,
// both-codec verification — and checks the artifact invariants: every
// published frame delivered, zero corruption, sane schema.
func TestLoadgenEndToEnd(t *testing.T) {
	dir := t.TempDir()
	err := loadgen(options{
		subs: 32, payload: 64, pubRates: []int{20}, step: 500 * time.Millisecond,
		decodeEvery: 4, verifyItems: 16, jsonDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_E11.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E11" || rep.Subs != 32 {
		t.Fatalf("bad report header: %+v", rep)
	}
	if len(rep.Arms) != 2 {
		t.Fatalf("got %d arms, want async and sync", len(rep.Arms))
	}
	for _, arm := range rep.Arms {
		if arm.TotalCorrupt != 0 {
			t.Errorf("arm %s: %d corrupt frames", arm.Label, arm.TotalCorrupt)
		}
		if arm.SustainedMsgsPerSec <= 0 {
			t.Errorf("arm %s: no sustained throughput recorded", arm.Label)
		}
		for _, st := range arm.Steps {
			if st.DeliveredFrames != st.OfferedFrames {
				t.Errorf("arm %s rate %d: delivered %d of %d frames",
					arm.Label, st.TargetItemsPerSec, st.DeliveredFrames, st.OfferedFrames)
			}
		}
	}
	if len(rep.Verify) != 2 {
		t.Fatalf("got %d verify rows, want binary and gob", len(rep.Verify))
	}
	for _, v := range rep.Verify {
		if v.Corrupt != 0 || v.Decoded != v.Frames || v.Frames != 16*32 {
			t.Errorf("verify %s: frames %d decoded %d corrupt %d", v.Codec, v.Frames, v.Decoded, v.Corrupt)
		}
	}
}

// TestLoadgenUnknownFlag matches the repo's CLI convention (newswire-bench):
// an unknown flag prints usage and returns a parse error instead of
// calling os.Exit mid-library.
func TestLoadgenUnknownFlag(t *testing.T) {
	err := run([]string{"-definitely-not-a-flag"})
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(err.Error(), "definitely-not-a-flag") {
		t.Fatalf("unexpected error: %v", err)
	}
}
