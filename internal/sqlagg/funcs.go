package sqlagg

import (
	"hash/fnv"
	"math"
	"sort"

	"newswire/internal/value"
)

// aggregator accumulates per-row argument values and produces the final
// aggregate. Implementations skip rows whose arguments are invalid or of an
// unusable kind — heterogeneous tables must not poison the whole summary.
type aggregator interface {
	add(args []value.Value)
	result() value.Value
}

type aggSpec struct {
	minArgs, maxArgs int
	new              func(star bool) aggregator
}

// aggregates is the aggregate-function registry.
var aggregates = map[string]aggSpec{
	"COUNT":    {minArgs: 1, maxArgs: 1, new: func(star bool) aggregator { return &countAgg{star: star} }},
	"MIN":      {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &extremeAgg{wantLess: true} }},
	"MAX":      {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &extremeAgg{wantLess: false} }},
	"SUM":      {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &sumAgg{} }},
	"AVG":      {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &avgAgg{} }},
	"FIRST":    {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &firstAgg{} }},
	"BIT_OR":   {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &bitOrAgg{} }},
	"BOOL_OR":  {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &boolAgg{or: true} }},
	"BOOL_AND": {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &boolAgg{or: false, acc: true} }},
	"MINK":     {minArgs: 3, maxArgs: 3, new: func(bool) aggregator { return &kBestAgg{wantLess: true} }},
	"MAXK":     {minArgs: 3, maxArgs: 3, new: func(bool) aggregator { return &kBestAgg{wantLess: false} }},
	"MINV":     {minArgs: 2, maxArgs: 2, new: func(bool) aggregator { return &argBestAgg{wantLess: true} }},
	"MAXV":     {minArgs: 2, maxArgs: 2, new: func(bool) aggregator { return &argBestAgg{wantLess: false} }},
	"REPS":     {minArgs: 3, maxArgs: 3, new: func(bool) aggregator { return &repsAgg{} }},
	"UNION":    {minArgs: 1, maxArgs: 1, new: func(bool) aggregator { return &unionAgg{seen: map[string]bool{}} }},
}

// countAgg implements COUNT(*) and COUNT(expr).
type countAgg struct {
	star bool
	n    int64
}

func (a *countAgg) add(args []value.Value) {
	if a.star || (len(args) > 0 && args[0].IsValid()) {
		a.n++
	}
}
func (a *countAgg) result() value.Value { return value.Int(a.n) }

// extremeAgg implements MIN and MAX over any ordered kind.
type extremeAgg struct {
	wantLess bool
	best     value.Value
}

func (a *extremeAgg) add(args []value.Value) {
	v := args[0]
	if !v.IsValid() {
		return
	}
	if !a.best.IsValid() {
		a.best = v
		return
	}
	c, err := v.Compare(a.best)
	if err != nil {
		return // unusable kind mix; skip
	}
	if (a.wantLess && c < 0) || (!a.wantLess && c > 0) {
		a.best = v
	}
}
func (a *extremeAgg) result() value.Value { return a.best }

// sumAgg implements SUM over numeric attributes, preserving int-ness when
// every input is an int.
type sumAgg struct {
	any     bool
	isFloat bool
	iSum    int64
	fSum    float64
}

func (a *sumAgg) add(args []value.Value) {
	v := args[0]
	if !v.IsNumeric() {
		return
	}
	a.any = true
	if i, ok := v.AsInt(); ok && v.Kind() == value.KindInt && !a.isFloat {
		a.iSum += i
		return
	}
	if !a.isFloat {
		a.isFloat = true
		a.fSum = float64(a.iSum)
	}
	f, _ := v.AsFloat()
	a.fSum += f
}

func (a *sumAgg) result() value.Value {
	if !a.any {
		return value.Invalid()
	}
	if a.isFloat {
		return value.Float(a.fSum)
	}
	return value.Int(a.iSum)
}

// avgAgg implements AVG over numeric attributes.
type avgAgg struct {
	sum float64
	n   int64
}

func (a *avgAgg) add(args []value.Value) {
	if f, ok := args[0].AsFloat(); ok {
		a.sum += f
		a.n++
	}
}

func (a *avgAgg) result() value.Value {
	if a.n == 0 {
		return value.Invalid()
	}
	return value.Float(a.sum / float64(a.n))
}

// firstAgg implements FIRST: the first valid value in table order.
type firstAgg struct {
	v value.Value
}

func (a *firstAgg) add(args []value.Value) {
	if !a.v.IsValid() && args[0].IsValid() {
		a.v = args[0]
	}
}
func (a *firstAgg) result() value.Value { return a.v }

// bitOrAgg implements BIT_OR over bytes attributes — the aggregation the
// paper uses for Bloom filters and category masks ("aggregated into parent
// zones through a simple binary-or operation on the child arrays", §6).
// Shorter inputs are zero-extended to the longest seen.
type bitOrAgg struct {
	acc []byte
	any bool
}

func (a *bitOrAgg) add(args []value.Value) {
	b, ok := args[0].RawBytes()
	if !ok {
		return
	}
	a.any = true
	if len(b) > len(a.acc) {
		grown := make([]byte, len(b))
		copy(grown, a.acc)
		a.acc = grown
	}
	for i, x := range b {
		a.acc[i] |= x
	}
}

func (a *bitOrAgg) result() value.Value {
	if !a.any {
		return value.Invalid()
	}
	return value.Bytes(a.acc)
}

// boolAgg implements BOOL_OR / BOOL_AND.
type boolAgg struct {
	or  bool
	acc bool
	any bool
}

func (a *boolAgg) add(args []value.Value) {
	b, ok := args[0].AsBool()
	if !ok {
		return
	}
	if !a.any {
		a.any = true
		a.acc = b
		return
	}
	if a.or {
		a.acc = a.acc || b
	} else {
		a.acc = a.acc && b
	}
}

func (a *boolAgg) result() value.Value {
	if !a.any {
		return value.Invalid()
	}
	return value.Bool(a.acc)
}

// kBestAgg implements MINK(k, order, val) / MAXK(k, order, val): the string
// values of the k rows with the smallest (largest) order attribute. This is
// the representative-election aggregate of §5: e.g.
// MINK(3, load, addr) AS reps. Ties break on the value string so election
// is deterministic across replicas.
type kBestAgg struct {
	wantLess bool
	k        int
	rows     []kBestRow
}

type kBestRow struct {
	order value.Value
	val   string
}

func (a *kBestAgg) add(args []value.Value) {
	if k, ok := args[0].AsInt(); ok && a.k == 0 && k > 0 {
		a.k = int(k)
	}
	order := args[1]
	val, ok := args[2].AsString()
	if !ok || !order.IsValid() {
		return
	}
	a.rows = append(a.rows, kBestRow{order: order, val: val})
}

func (a *kBestAgg) result() value.Value {
	if a.k <= 0 || len(a.rows) == 0 {
		return value.Invalid()
	}
	rows := a.rows
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := rows[i].order.Compare(rows[j].order)
		if err != nil || c == 0 {
			return rows[i].val < rows[j].val
		}
		if a.wantLess {
			return c < 0
		}
		return c > 0
	})
	n := a.k
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].val
	}
	return value.Strings(out)
}

// repsAgg implements REPS(k, order, vals): the representative-election
// aggregate for multi-level hierarchies. vals may be a string (a leaf
// row's address) or a string list (a child zone's already-elected
// representatives); rows are visited in ascending order of the order
// attribute, their vals flattened and deduplicated, and the first k
// collected. This keeps parent zones stocked with k distinct contact
// addresses drawn from their best children — a plain MINK would collapse
// each child zone to a single address.
type repsAgg struct {
	k    int
	rows []repsRow
}

type repsRow struct {
	order value.Value
	vals  []string
}

func (a *repsAgg) add(args []value.Value) {
	if k, ok := args[0].AsInt(); ok && a.k == 0 && k > 0 {
		a.k = int(k)
	}
	order := args[1]
	if !order.IsValid() {
		return
	}
	var vals []string
	switch args[2].Kind() {
	case value.KindString:
		s, _ := args[2].AsString()
		vals = []string{s}
	case value.KindStrings:
		vals, _ = args[2].AsStrings()
	default:
		return
	}
	if len(vals) == 0 {
		return
	}
	a.rows = append(a.rows, repsRow{order: order, vals: vals})
}

func (a *repsAgg) result() value.Value {
	if a.k <= 0 || len(a.rows) == 0 {
		return value.Invalid()
	}
	rows := a.rows
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := rows[i].order.Compare(rows[j].order)
		if err != nil || c == 0 {
			return rows[i].vals[0] < rows[j].vals[0]
		}
		return c < 0
	})
	seen := make(map[string]bool, a.k)
	out := make([]string, 0, a.k)
	// Round-robin across rows so redundancy spreads over child zones
	// rather than exhausting one child's rep list first.
	for depth := 0; len(out) < a.k; depth++ {
		advanced := false
		for _, r := range rows {
			if depth >= len(r.vals) {
				continue
			}
			advanced = true
			v := r.vals[depth]
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
				if len(out) == a.k {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	if len(out) == 0 {
		return value.Invalid()
	}
	return value.Strings(out)
}

// argBestAgg implements MINV(order, val) / MAXV(order, val): the val of the
// row with the smallest (largest) order attribute — SQL-less argmin/argmax.
// Zone aggregation uses it to pick the primary contact address:
// MINV(load, addr) AS addr. Ties break on the value itself (any ordered
// kind) so replicas elect identically.
type argBestAgg struct {
	wantLess  bool
	bestOrder value.Value
	bestVal   value.Value
}

func (a *argBestAgg) add(args []value.Value) {
	order, val := args[0], args[1]
	if !order.IsValid() || !val.IsValid() {
		return
	}
	if !a.bestOrder.IsValid() {
		a.bestOrder, a.bestVal = order, val
		return
	}
	c, err := order.Compare(a.bestOrder)
	if err != nil {
		return
	}
	if c == 0 {
		// Deterministic tie-break on the value.
		if vc, err := val.Compare(a.bestVal); err == nil && vc < 0 {
			a.bestVal = val
		}
		return
	}
	if (a.wantLess && c < 0) || (!a.wantLess && c > 0) {
		a.bestOrder, a.bestVal = order, val
	}
}

func (a *argBestAgg) result() value.Value { return a.bestVal }

// unionAgg implements UNION over string-list attributes: the deduplicated,
// sorted union of all child lists. Used to aggregate publisher rosters.
type unionAgg struct {
	seen map[string]bool
	any  bool
}

func (a *unionAgg) add(args []value.Value) {
	switch args[0].Kind() {
	case value.KindStrings:
		ss, _ := args[0].AsStrings()
		a.any = true
		for _, s := range ss {
			a.seen[s] = true
		}
	case value.KindString:
		s, _ := args[0].AsString()
		a.any = true
		a.seen[s] = true
	}
}

func (a *unionAgg) result() value.Value {
	if !a.any {
		return value.Invalid()
	}
	out := make([]string, 0, len(a.seen))
	for s := range a.seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return value.Strings(out)
}

// scalarSpec describes a scalar (per-row) function. maxArgs < 0 means
// variadic.
type scalarSpec struct {
	minArgs, maxArgs int
	call             func(args []value.Value) value.Value
}

// scalarFuncs is the scalar-function registry.
var scalarFuncs = map[string]scalarSpec{
	"HASH":     {minArgs: 1, maxArgs: -1, call: scalarHash},
	"LEN":      {minArgs: 1, maxArgs: 1, call: scalarLen},
	"IF":       {minArgs: 3, maxArgs: 3, call: scalarIf},
	"COALESCE": {minArgs: 1, maxArgs: -1, call: scalarCoalesce},
	"ABS":      {minArgs: 1, maxArgs: 1, call: scalarAbs},
	"BITCOUNT": {minArgs: 1, maxArgs: 1, call: scalarBitCount},
	"CONCAT":   {minArgs: 1, maxArgs: -1, call: scalarConcat},
	"CONTAINS": {minArgs: 2, maxArgs: 2, call: scalarContains},
}

// scalarHash hashes its arguments' canonical encodings to a non-negative
// int64. It gives aggregation programs a deterministic pseudo-random order,
// e.g. for the random representative-election ablation:
// MINK(3, HASH(addr, epoch), addr).
func scalarHash(args []value.Value) value.Value {
	h := fnv.New64a()
	var buf []byte
	for _, a := range args {
		buf = a.AppendBinary(buf[:0])
		h.Write(buf)
	}
	return value.Int(int64(h.Sum64() & math.MaxInt64))
}

func scalarLen(args []value.Value) value.Value {
	switch args[0].Kind() {
	case value.KindString:
		s, _ := args[0].AsString()
		return value.Int(int64(len(s)))
	case value.KindBytes:
		b, _ := args[0].RawBytes()
		return value.Int(int64(len(b)))
	case value.KindStrings:
		ss, _ := args[0].AsStrings()
		return value.Int(int64(len(ss)))
	default:
		return value.Invalid()
	}
}

func scalarIf(args []value.Value) value.Value {
	if args[0].Truthy() {
		return args[1]
	}
	return args[2]
}

func scalarCoalesce(args []value.Value) value.Value {
	for _, a := range args {
		if a.IsValid() {
			return a
		}
	}
	return value.Invalid()
}

func scalarAbs(args []value.Value) value.Value {
	switch args[0].Kind() {
	case value.KindInt:
		i, _ := args[0].AsInt()
		if i < 0 {
			if i == math.MinInt64 {
				return value.Invalid()
			}
			i = -i
		}
		return value.Int(i)
	case value.KindFloat:
		f, _ := args[0].AsFloat()
		return value.Float(math.Abs(f))
	default:
		return value.Invalid()
	}
}

func scalarBitCount(args []value.Value) value.Value {
	b, ok := args[0].RawBytes()
	if !ok {
		return value.Invalid()
	}
	n := int64(0)
	for _, x := range b {
		for x != 0 {
			n += int64(x & 1)
			x >>= 1
		}
	}
	return value.Int(n)
}

func scalarConcat(args []value.Value) value.Value {
	var out string
	for _, a := range args {
		s, ok := a.AsString()
		if !ok {
			return value.Invalid()
		}
		out += s
	}
	return value.String(out)
}

// scalarContains tests membership of a string in a string-list attribute.
func scalarContains(args []value.Value) value.Value {
	ss, ok := args[0].AsStrings()
	if !ok {
		return value.Invalid()
	}
	want, ok := args[1].AsString()
	if !ok {
		return value.Invalid()
	}
	for _, s := range ss {
		if s == want {
			return value.Bool(true)
		}
	}
	return value.Bool(false)
}

// AggregateNames returns the sorted list of aggregate function names, for
// documentation and error messages.
func AggregateNames() []string {
	names := make([]string, 0, len(aggregates))
	for n := range aggregates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScalarNames returns the sorted list of scalar function names.
func ScalarNames() []string {
	names := make([]string, 0, len(scalarFuncs))
	for n := range scalarFuncs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
