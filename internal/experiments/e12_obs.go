package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"newswire/internal/core"
)

// ObsArm is one E12 measurement arm: the same 64-node gossip workload as
// BenchmarkGossipRound, with the self-monitoring plane off, with health
// telemetry on, and with health plus tracing on. The JSON artifact
// (BENCH_E12.json) carries the raw figures; benchgate bounds the
// enabled-vs-disabled overhead ratios.
type ObsArm struct {
	Label  string `json:"label"`
	Health bool   `json:"health"`
	Traced bool   `json:"traced"`
	// BytesPerRound is the whole cluster's steady-state gossip traffic as
	// charged by the wire-size model, averaged over the measured rounds.
	BytesPerRound float64 `json:"bytes_per_round"`
	// NsPerRound is the median over timing reps that interleave the arms
	// (off, health, health+trace, off, ...). AllocsPerRound is the exact
	// mallocgc count per round from runtime.MemStats.
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	// NsOverheadVsOff is the fractional round-time overhead of this arm
	// over the off arm (0 for off itself), computed as the median of
	// per-rep ratios: within one rep every arm runs back to back, so
	// machine-load drift divides out of the ratio before the median
	// discards the remaining spikes. This — not the quotient of the
	// NsPerRound fields — is what benchgate bounds; on a shared CI box
	// wall-clock minima are not stable enough to gate a 5% budget.
	NsOverheadVsOff float64 `json:"ns_overhead_vs_off"`
	// HealthNodes is the member count the cluster-wide health rollup
	// reports at the end of the run (0 when the plane is off) — proof the
	// aggregation converged, not just that attributes were emitted.
	HealthNodes int64 `json:"health_nodes"`
	// Spans is the number of trace spans recorded (traced arm only).
	Spans int `json:"spans,omitempty"`
}

// RunE12 measures what the self-monitoring plane costs: the gossip-borne
// health digests (extra bytes per round) and the tracing/health hot-path
// overhead (ns and allocs per round) on the standard 64-node
// BenchmarkGossipRound shape. The claim under test is the observability
// tentpole's budget: enabling health telemetry and tracing costs at most
// a few percent of gossip bandwidth and round time, and disabling them
// costs nothing (the alloc-ceiling guard in bench_test.go covers the
// zero-extra-allocs half).
func RunE12(opt Options) *Table {
	measureRounds := 20
	healthEvery := 2
	if opt.Quick {
		measureRounds = 8
	}

	t := &Table{
		ID:    "E12",
		Title: "observability overhead: health telemetry + tracing vs. off",
		Claim: "self-monitoring rides existing gossip for <= 5% bytes/round and <= 5% ns/round",
		Columns: []string{"arm", "bytes/round", "Δbytes", "ns/round", "Δns",
			"allocs/round", "health nodes", "spans"},
	}

	arms := []struct {
		label  string
		health bool
		traced bool
	}{
		{"off", false, false},
		{"health", true, false},
		{"health+trace", true, true},
	}

	build := func(health, traced bool) (*core.Cluster, error) {
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: 64, Branching: 64, Seed: opt.Seed, Trace: traced,
			Customize: func(i int, cfg *core.Config) {
				if health {
					cfg.HealthEvery = healthEvery
				}
			},
		})
		if err != nil {
			return nil, err
		}
		for _, n := range cluster.Nodes {
			if err := n.Subscribe("tech/linux"); err != nil {
				return nil, err
			}
		}
		// Warm well past the health-attr propagation transient: the first
		// digests change every leaf row and must epidemic through the
		// cluster (~10 rounds at this shape) before steady state, where
		// unchanged rows ride ~25-byte heartbeat stamps and the health
		// plane's marginal gossip cost drops to ~zero. Measuring inside
		// the transient would charge one-time join traffic as per-round
		// overhead.
		cluster.RunRounds(15)
		return cluster, nil
	}

	// Build every arm's cluster up front: timing reps below interleave
	// across them, so a noisy stretch on a shared machine degrades all
	// three arms instead of penalizing the one that happened to be
	// running — the overhead *ratio* is what the CI gate bounds.
	results := make([]ObsArm, 0, len(arms))
	clusters := make([]*core.Cluster, 0, len(arms))
	for _, arm := range arms {
		res := ObsArm{Label: arm.label, Health: arm.health, Traced: arm.traced}
		cluster, err := build(arm.health, arm.traced)
		if err != nil {
			t.AddRow(arm.label, "error: "+err.Error(), "", "", "", "", "", "")
			continue
		}
		// Bytes per round first: deterministic, so measuring it before
		// the timing reps costs nothing and keeps the clusters warm.
		startBytes, _ := cluster.Net.BytesTotals()
		cluster.RunRounds(measureRounds)
		endBytes, _ := cluster.Net.BytesTotals()
		res.BytesPerRound = float64(endBytes-startBytes) / float64(measureRounds)

		// Exact allocation count per round from the runtime's mallocgc
		// counter (GC-independent, unlike heap deltas).
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		cluster.RunRounds(measureRounds)
		runtime.ReadMemStats(&after)
		res.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / float64(measureRounds)

		results = append(results, res)
		clusters = append(clusters, cluster)
	}

	// Timing: reps of a fixed round batch, every arm back to back within
	// a rep. The per-rep arm/off ratio cancels machine-load drift (both
	// sides of the quotient saw the same machine), and the median over
	// reps discards GC pauses and preemption spikes.
	const timingReps, batchRounds = 41, 6
	perArm := make([][]float64, len(clusters))
	for rep := 0; rep < timingReps; rep++ {
		for i := range clusters {
			start := time.Now()
			clusters[i].RunRounds(batchRounds)
			perArm[i] = append(perArm[i], float64(time.Since(start).Nanoseconds())/batchRounds)
		}
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	var offIdx = -1
	for i := range results {
		if results[i].Label == "off" {
			offIdx = i
		}
	}
	for i := range clusters {
		results[i].NsPerRound = median(perArm[i])
		if offIdx >= 0 && i != offIdx {
			ratios := make([]float64, timingReps)
			for rep := 0; rep < timingReps; rep++ {
				ratios[rep] = perArm[i][rep] / perArm[offIdx][rep]
			}
			results[i].NsOverheadVsOff = median(ratios) - 1
		}
	}
	for i := range clusters {
		if results[i].Health {
			if sum, ok := clusters[i].Nodes[len(clusters[i].Nodes)-1].ClusterHealth(); ok {
				results[i].HealthNodes = sum.Nodes
			}
		}
		if results[i].Traced && clusters[i].Tracer() != nil {
			results[i].Spans = clusters[i].Tracer().Len()
		}
	}

	var base *ObsArm
	for i := range results {
		if results[i].Label == "off" {
			base = &results[i]
		}
	}
	pct := func(cur, ref float64) string {
		if ref <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (cur-ref)/ref*100)
	}
	for _, r := range results {
		db, dn := "-", "-"
		if base != nil && r.Label != "off" {
			db = pct(r.BytesPerRound, base.BytesPerRound)
			dn = fmt.Sprintf("%+.1f%%", r.NsOverheadVsOff*100)
		}
		t.AddRow(r.Label,
			fmt.Sprintf("%.0f", r.BytesPerRound), db,
			fmt.Sprintf("%.0f", r.NsPerRound), dn,
			fmt.Sprintf("%.0f", r.AllocsPerRound),
			fmtI(r.HealthNodes),
			fmt.Sprint(r.Spans))
	}
	t.Obs = results
	t.Nodes = 64
	t.Notes = append(t.Notes,
		"same 64-node/64-branching shape as BenchmarkGossipRound; gossip-only steady state",
		fmt.Sprintf("health digests published every %d ticks; attrs are fingerprint-excluded so determinism gates hold", healthEvery),
		"benchgate bounds the health+trace arm at +5% bytes/round and +5% ns/round over off",
		"Δns is the median of per-rep arm/off ratios from interleaved fixed-batch timing (drift divides out, the median drops spikes)")
	return t
}
