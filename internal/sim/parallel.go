package sim

// Deterministic parallel execution.
//
// The serial engine runs every event on one goroutine in (time, seq)
// order. At 131k gossiping nodes that single core is the bottleneck: the
// protocol work is embarrassingly parallel (each delivery touches one
// node's tables), but the engine serializes it.
//
// The Executor exploits the structure conservatively, in the classic
// PDES sense: every message in the simulated network takes at least
// LinkModel.LatencyMin of virtual time to arrive, so an event owned by
// node A at time T cannot influence an event owned by node B before
// T+LatencyMin. Events tagged with an owner and falling inside one
// lookahead window [T, T+LatencyMin) are therefore causally independent
// whenever their owners differ, and may run concurrently.
//
// Determinism is preserved by construction, not by luck:
//
//   - Compute phase: workers run each owner's window events against that
//     node's own state. Side effects that would touch shared simulator
//     state — outbound sends and timer registrations — are not applied;
//     they are buffered per event, in call order. The expensive pure
//     parts of a send (wire-size estimation, crash/block/loss-override
//     lookup against maps that are frozen for the window's duration) are
//     precomputed here, off the serial path.
//   - Commit, pre-pass: a single goroutine walks the buffered effects in
//     canonical (time, seq) event order. The engine RNG (loss and
//     latency sampling) is consumed only here, in exactly the order the
//     serial engine would have consumed it, and new events receive
//     exactly the sequence numbers the serial engine would have
//     assigned. Timer effects are scheduled here too.
//   - Commit, shard phase: the remaining send work — per-endpoint sender
//     statistics and construction of the delivery event closure — is
//     partitioned by the sending endpoint's shard (its leaf zone, under
//     core.Cluster) and replayed in parallel. Two shards never touch the
//     same endpoint's counters, and each shard applies its own effects
//     in canonical order, so the result is independent of scheduling.
//   - Commit, merge: a single goroutine pushes the constructed delivery
//     events in canonical order and folds the shard-local traffic
//     tallies into the network totals (commutative sums). The resulting
//     event queue — and hence the entire run — is bit-identical to
//     serial execution.
//
// Per-node randomness (gossip partner selection) never touches the
// engine RNG: each node owns a private rand.Rand derived from the seed,
// and a node's events always run single-threaded within a window, so
// those streams are consumed in serial order too.
//
// Events without an owner tag (engine tickers, fault injections,
// test callbacks) make no isolation promise; the window collector stops
// at the first one and runs it alone, serially, at its global position.
// Fault state (crash/block/loss overrides) is only ever mutated by such
// unowned events or by test code between runs, which is what makes the
// compute-phase lookups above safe: the maps are frozen while any window
// is in flight.
//
// Known restriction: a node-scheduled timer (Config.After) with a delay
// shorter than the lookahead could fire inside a window that has already
// executed past it, which would break serial equivalence. The commit
// phase detects that case and panics; NewCluster validates configured
// protocol timers against the link model up front. All real timers
// (ack/retransmit deadlines ≥ 1s) exceed any plausible LatencyMin by
// orders of magnitude.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// OwnedClock is the vtime.Clock handed to an executor-registered node.
// While the node is executing events inside a parallel window it reports
// the owning event's timestamp (the engine clock lags behind during the
// compute phase); outside windows it follows the engine clock. Reads and
// writes are ordered by the executor's fork/join, so no lock is needed.
type OwnedClock struct {
	base   vtime.Clock
	active bool
	at     time.Time
}

// Now implements vtime.Clock.
func (c *OwnedClock) Now() time.Time {
	if c.active {
		return c.at
	}
	return c.base.Now()
}

func (c *OwnedClock) set(t time.Time) { c.at = t; c.active = true }
func (c *OwnedClock) clear()          { c.active = false }

// effect is one buffered side effect of an owned computation: either an
// outbound message (msg != nil) or a timer registration (fn != nil).
type effect struct {
	// Send effect. size, preDropped and lossRate are precomputed during
	// the compute phase (see the package comment).
	ep         *Endpoint
	to         string
	msg        *wire.Message
	size       int64
	lossRate   float64
	preDropped bool
	// Timer effect.
	d  time.Duration
	fn func()
}

// resolvedSend is one send effect after the serial commit pre-pass: loss
// and latency drawn, delivery sequence number assigned. The shard phase
// fills ev; the merge phase pushes it.
type resolvedSend struct {
	eff      *effect
	at       time.Time // delivery time (meaningless when dropped)
	seq      uint64
	dstOwner int
	dropped  bool
	ev       *event
}

// execNode is the executor's per-owner slot. sink is non-nil exactly
// while this owner's computation runs on a worker; the owning endpoint
// and After func buffer their effects through it.
type execNode struct {
	clock *OwnedClock
	sink  *[]effect
}

// Executor runs an Engine's owned events in deterministic parallel
// windows. Construct with NewExecutor, register every node's endpoint
// with Register, then drive virtual time with RunFor/RunUntil instead of
// the engine's own methods. The same engine can still be driven serially
// (Engine.RunFor) at any point; the two modes interleave freely.
type Executor struct {
	eng       *Engine
	net       *Network
	workers   int
	lookahead time.Duration
	nodes     []*execNode
	numShards int

	// Window scratch, reused across windows to keep the steady state
	// allocation-free.
	batch    []*event
	effects  [][]effect
	perOwner [][]int32
	touched  []int32

	// Commit scratch.
	resolved      []resolvedSend
	perShard      [][]int32
	touchedShards []int32

	// Tick-phase scratch (RunOwners).
	tickEffects [][]effect
}

// NewExecutor returns an executor for net's engine. workers <= 0 selects
// runtime.GOMAXPROCS(0). The lookahead window is the link model's
// minimum latency; a zero-latency link model leaves no exploitable
// lookahead and degenerates to serial stepping.
func NewExecutor(net *Network, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{
		eng:       net.eng,
		net:       net,
		workers:   workers,
		lookahead: net.link.LatencyMin,
	}
}

// Workers returns the configured worker count.
func (x *Executor) Workers() int { return x.workers }

// Lookahead returns the conservative window width (the link model's
// minimum latency).
func (x *Executor) Lookahead() time.Duration { return x.lookahead }

// Register ties ep to a new owner slot and returns the clock its node
// must use. Delivery events for ep, and timers created through AfterFunc,
// are tagged with the owner and become eligible for parallel windows.
// The endpoint's commit shard defaults to its own owner slot; SetShard
// coarsens it (one shard per leaf zone, under core.Cluster).
func (x *Executor) Register(ep *Endpoint) *OwnedClock {
	owner := x.newOwner()
	ep.exec = x.nodes[owner]
	ep.owner = owner
	x.setShard(ep, owner)
	return x.nodes[owner].clock
}

// RegisterSink creates an owner slot with no endpoint of its own and
// returns its id. The virtual-leaf layer uses one sink owner per leaf
// zone: delivery events for all of a zone's virtual members are tagged
// with the zone's sink owner, so they parallelize across zones while the
// zone's packed delivery state stays single-writer.
func (x *Executor) RegisterSink() int { return x.newOwner() }

// Adopt attaches ep to an existing owner slot (a sink owner): its
// delivery events are tagged with that owner, and sends it performs
// inside windows (ack replies) buffer through the owner's sink, keeping
// the engine RNG stream serial-identical.
func (x *Executor) Adopt(ep *Endpoint, owner int) {
	ep.exec = x.nodes[owner]
	ep.owner = owner
	x.setShard(ep, owner)
}

// SetShard assigns ep's commit shard. Endpoints sharing a shard have
// their sender-side commit work replayed on one goroutine in canonical
// order; distinct shards replay in parallel.
func (x *Executor) SetShard(ep *Endpoint, shard int) { x.setShard(ep, shard) }

func (x *Executor) newOwner() int {
	oc := &OwnedClock{base: x.eng.clock}
	en := &execNode{clock: oc}
	x.nodes = append(x.nodes, en)
	x.perOwner = append(x.perOwner, nil)
	x.tickEffects = append(x.tickEffects, nil)
	return len(x.nodes) - 1
}

func (x *Executor) setShard(ep *Endpoint, shard int) {
	ep.shard = int32(shard)
	for x.numShards <= shard {
		x.numShards++
		x.perShard = append(x.perShard, nil)
	}
}

// AfterFunc returns the After scheduler for a registered endpoint's
// node: inside a window it buffers the timer as an effect (committed in
// canonical order); outside it schedules directly on the engine, tagged
// with the node's owner so the timer's firing can itself be parallelized.
func (x *Executor) AfterFunc(ep *Endpoint) func(d time.Duration, fn func()) {
	en, owner := ep.exec, ep.owner
	return func(d time.Duration, fn func()) {
		if sink := en.sink; sink != nil {
			*sink = append(*sink, effect{d: d, fn: fn})
			return
		}
		x.eng.AfterOwned(owner, d, fn)
	}
}

// RunUntil executes events until the queue is empty or the next event is
// after t, exactly like Engine.RunUntil but running owned events in
// parallel windows. It returns the number of events run.
func (x *Executor) RunUntil(t time.Time) int {
	e := x.eng
	n := 0
	for {
		first := e.peek()
		if first == nil || first.at.After(t) {
			break
		}
		if first.owner < 0 || x.lookahead <= 0 {
			e.Step()
			n++
			continue
		}
		// Collect the conservative window: owned events in
		// [first.at, first.at+lookahead), not beyond t, stopping at the
		// first unowned event (it must run at its global position).
		end := first.at.Add(x.lookahead)
		batch := x.batch[:0]
		for {
			ev := e.peek()
			if ev == nil || ev.owner < 0 || ev.at.After(t) || !ev.at.Before(end) {
				break
			}
			e.pop()
			batch = append(batch, ev)
		}
		x.batch = batch[:0] // retain backing array for reuse
		if len(batch) == 0 {
			// Defensive: cannot happen with lookahead > 0.
			e.Step()
			n++
			continue
		}
		if len(batch) == 1 {
			// Nothing to overlap; run it exactly as Engine.Step would.
			ev := batch[0]
			e.clock.SetNow(ev.at)
			fn := ev.fn
			ev.fn = nil
			fn()
			n++
			continue
		}
		x.runWindow(batch)
		n += len(batch)
	}
	e.clock.SetNow(t)
	return n
}

// RunFor advances the simulation by d of virtual time, in parallel.
func (x *Executor) RunFor(d time.Duration) int {
	return x.RunUntil(x.eng.clock.Now().Add(d))
}

// runWindow executes one batch of owned events: compute in parallel
// (grouped by owner, each owner's events in order), then commit effects
// in canonical (time, seq) order (see commitWindow).
func (x *Executor) runWindow(batch []*event) {
	// Group batch indices by owner, preserving in-owner order.
	for len(x.effects) < len(batch) {
		x.effects = append(x.effects, nil)
	}
	touched := x.touched[:0]
	for i, ev := range batch {
		o := ev.owner
		if len(x.perOwner[o]) == 0 {
			touched = append(touched, int32(o))
		}
		x.perOwner[o] = append(x.perOwner[o], int32(i))
		x.effects[i] = x.effects[i][:0]
	}

	// Compute phase.
	w := x.workers
	if w > len(touched) {
		w = len(touched)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if int(k) >= len(touched) {
					return
				}
				o := touched[k]
				en := x.nodes[o]
				for _, bi := range x.perOwner[o] {
					ev := batch[bi]
					en.clock.set(ev.at)
					en.sink = &x.effects[bi]
					fn := ev.fn
					ev.fn = nil
					fn()
				}
				en.sink = nil
				en.clock.clear()
			}
		}()
	}
	wg.Wait()

	// Commit.
	lastAt := batch[len(batch)-1].at
	x.commitWindow(func(yield func(at time.Time, owner int, effs []effect)) {
		for i, ev := range batch {
			yield(ev.at, ev.owner, x.effects[i])
		}
	}, lastAt)
	for i := range batch {
		x.effects[i] = x.effects[i][:0]
	}

	// Reset per-owner scratch.
	for _, o := range touched {
		x.perOwner[o] = x.perOwner[o][:0]
	}
	x.touched = touched[:0]
}

// commitWindow applies every buffered effect of one window (or one tick
// phase) in canonical order: a serial pre-pass that consumes the engine
// RNG and assigns sequence numbers, a sharded parallel phase for sender
// statistics and delivery-event construction, and a serial merge. each
// iterates the window's (event time, owner, effects) triples in canonical
// order; lastAt is the latest event timestamp already executed (the timer
// short-delay guard).
func (x *Executor) commitWindow(each func(func(at time.Time, owner int, effs []effect)), lastAt time.Time) {
	e := x.eng
	n := x.net
	span := int64(n.link.LatencyMax - n.link.LatencyMin)

	// Serial pre-pass.
	resolved := x.resolved[:0]
	touchedShards := x.touchedShards[:0]
	n.mu.Lock()
	each(func(at time.Time, owner int, effs []effect) {
		e.clock.SetNow(at)
		for j := range effs {
			eff := &effs[j]
			if eff.msg != nil {
				if eff.ep.closed {
					// Serial Send would have returned errClosed without
					// touching stats; senders treat gossip as best-effort.
					continue
				}
				rs := resolvedSend{eff: eff, dropped: eff.preDropped, dstOwner: noOwner}
				if !rs.dropped && eff.lossRate > 0 && e.rng.Float64() < eff.lossRate {
					rs.dropped = true
				}
				if !rs.dropped {
					latency := n.link.LatencyMin
					if span > 0 {
						latency += time.Duration(e.rng.Int63n(span))
					}
					rs.at = at.Add(latency)
					rs.seq = e.nextSeq()
					if dst, ok := n.endpoints[eff.to]; ok {
						rs.dstOwner = dst.owner
					}
				}
				shard := int(eff.ep.shard)
				if len(x.perShard[shard]) == 0 {
					touchedShards = append(touchedShards, int32(shard))
				}
				x.perShard[shard] = append(x.perShard[shard], int32(len(resolved)))
				resolved = append(resolved, rs)
				continue
			}
			// A timer firing strictly before the window's last executed
			// event would have interleaved with already-run events in
			// serial order (firing exactly at lastAt is safe: its sequence
			// number is necessarily later).
			fires := at.Add(eff.d)
			if fires.Before(at) {
				fires = at // AfterOwned clamps negative delays the same way
			}
			if fires.Before(lastAt) {
				panic(fmt.Sprintf(
					"sim: owned timer (%v) fires inside an executed window (%v <= %v); "+
						"timers shorter than the link lookahead require the serial engine",
					eff.d, fires, lastAt))
			}
			e.push(&event{at: fires, seq: e.nextSeq(), owner: owner, fn: eff.fn})
		}
	})
	n.mu.Unlock()

	// Shard phase: sender stats and delivery-event construction, one
	// goroutine per shard (small windows run inline).
	var sent, bytesSent, dropped int64
	if len(resolved) > 0 {
		w := x.workers
		if w > len(touchedShards) {
			w = len(touchedShards)
		}
		if w <= 1 || len(resolved) < 64 {
			s, b, d := x.applyShards(touchedShards, resolved)
			sent, bytesSent, dropped = s, b, d
		} else {
			var mu sync.Mutex
			var next atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var ls, lb, ld int64
					for {
						k := next.Add(1) - 1
						if int(k) >= len(touchedShards) {
							break
						}
						s, b, d := x.applyShards(touchedShards[k:k+1], resolved)
						ls += s
						lb += b
						ld += d
					}
					mu.Lock()
					sent += ls
					bytesSent += lb
					dropped += ld
					mu.Unlock()
				}()
			}
			wg.Wait()
		}
	}

	// Merge: network totals, then delivery events in canonical order.
	if len(resolved) > 0 {
		n.mu.Lock()
		n.totalSent += sent
		n.totalBytesSent += bytesSent
		n.totalDropped += dropped
		n.mu.Unlock()
		for i := range resolved {
			if ev := resolved[i].ev; ev != nil {
				e.push(ev)
			}
		}
	}

	// Reset commit scratch (keep backing arrays).
	for i := range resolved {
		resolved[i] = resolvedSend{}
	}
	x.resolved = resolved[:0]
	for _, s := range touchedShards {
		x.perShard[s] = x.perShard[s][:0]
	}
	x.touchedShards = touchedShards[:0]
}

// applyShards replays the sender-side commit work of the given shards in
// canonical order and returns their (sent, bytesSent, dropped) tallies.
// Safe to run concurrently for disjoint shard sets: per-endpoint counters
// belong to exactly one shard, and the stats map itself is frozen while a
// window is in flight.
func (x *Executor) applyShards(shards []int32, resolved []resolvedSend) (sent, bytesSent, dropped int64) {
	n := x.net
	for _, s := range shards {
		for _, ri := range x.perShard[s] {
			rs := &resolved[ri]
			eff := rs.eff
			st := n.stats[eff.ep.addr]
			st.MsgsSent++
			st.BytesSent += eff.size
			sent++
			bytesSent += eff.size
			if rs.dropped {
				dropped++
				continue
			}
			to, msg, size := eff.to, eff.msg, eff.size
			rs.ev = &event{at: rs.at, seq: rs.seq, owner: rs.dstOwner, fn: func() {
				n.deliver(to, msg, size)
			}}
		}
	}
	return
}

// RunOwners runs fn(owner) for every registered owner at the current
// virtual time — the parallel equivalent of a serial for-loop over
// nodes, as used by a cluster's per-round tick phase. Each owner's sends
// and timer registrations are buffered and committed in ascending owner
// order, which matches a serial loop as long as owners were registered
// in loop order. A caller whose loop order diverges from registration
// order (a node materialized mid-run registers late but ticks at its
// index position) must use RunOwnersOrdered instead.
func (x *Executor) RunOwners(fn func(owner int)) {
	x.RunOwnersOrdered(nil, fn)
}

// RunOwnersOrdered is RunOwners with an explicit commit order: effects
// are committed — and the engine RNG consumed — following order, which
// must list every registered owner exactly once. It exists so a caller
// can keep the commit sequence identical to its serial loop even when
// owners were registered out of loop order. A nil order means ascending
// owner order.
func (x *Executor) RunOwnersOrdered(order []int, fn func(owner int)) {
	nOwners := len(x.nodes)
	if nOwners == 0 {
		return
	}
	if order != nil && len(order) != nOwners {
		panic(fmt.Sprintf("sim: RunOwnersOrdered: order lists %d of %d owners", len(order), nOwners))
	}
	now := x.eng.clock.Now()
	for i := range x.tickEffects {
		x.tickEffects[i] = x.tickEffects[i][:0]
	}
	w := x.workers
	if w > nOwners {
		w = nOwners
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= nOwners {
					return
				}
				en := x.nodes[k]
				en.clock.set(now)
				en.sink = &x.tickEffects[k]
				fn(k)
				en.sink = nil
				en.clock.clear()
			}
		}()
	}
	wg.Wait()
	x.commitWindow(func(yield func(at time.Time, owner int, effs []effect)) {
		for k := 0; k < nOwners; k++ {
			o := k
			if order != nil {
				o = order[k]
			}
			yield(now, o, x.tickEffects[o])
		}
	}, now)
}
