package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"newswire/internal/bloom"
	"newswire/internal/news"
	"newswire/internal/value"
)

// probe is the reference forwarding test over a signature filter: each
// dimension passes on its wildcard key or a value key, and the decision
// is their conjunction. pubsub.ForwardFilter implements the same test
// over raw aggregated row bytes.
func probe(f *bloom.Filter, subjects []string, publisher string, urgency int) bool {
	subjHit := f.Test(WildSubject)
	for _, s := range subjects {
		if subjHit {
			break
		}
		subjHit = f.Test(SubjectKey(s))
	}
	return subjHit &&
		(f.Test(WildPublisher) || f.Test(PublisherKey(publisher))) &&
		(f.Test(WildUrgency) || f.Test(UrgencyKey(urgency)))
}

// TestSignatureNeverFalseNegative is the soundness gate: across many
// random predicates and random items, an item the exact evaluator
// matches must always pass the compiled signature's probe — under a
// deliberately small, collision-prone geometry, and also after merging
// all signatures into one aggregated filter (the zone OR-aggregation).
func TestSignatureNeverFalseNegative(t *testing.T) {
	const seeds = 20 // satellite spec: ≥16
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed*7919 + 13))
			g := newGen(rng)
			f := bloom.New(256, 3) // small and multi-hash: collisions likely
			merged := bloom.New(256, 3)

			preds := make([]*Predicate, 24)
			for i := range preds {
				src := g.predicate(3)
				p, err := Parse(src)
				if err != nil {
					t.Fatalf("generated predicate %q does not parse: %v", src, err)
				}
				// Canonical form must survive a round trip.
				again, err := Parse(p.String())
				if err != nil || again.String() != p.String() {
					t.Fatalf("round trip of %q → %q failed: %v", src, p.String(), err)
				}
				preds[i] = p
				pf := bloom.New(256, 3)
				p.Compile().Fill(pf)
				if err := merged.Merge(pf); err != nil {
					t.Fatal(err)
				}
			}

			for n := 0; n < 200; n++ {
				subjects, publisher, urgency, r := g.item()
				anyMatch := false
				for _, p := range preds {
					if !p.Match(r) {
						continue
					}
					anyMatch = true
					f.Clear()
					p.Compile().Fill(f)
					if !probe(f, subjects, publisher, urgency) {
						t.Fatalf("false negative: predicate %q matches item subjects=%v publisher=%q urgency=%d but its signature rejects it",
							p.String(), subjects, publisher, urgency)
					}
				}
				if anyMatch && !probe(merged, subjects, publisher, urgency) {
					t.Fatalf("false negative after OR-aggregation: some predicate matches item subjects=%v publisher=%q urgency=%d but the merged filter rejects it",
						subjects, publisher, urgency)
				}
			}
		})
	}
}

// gen produces random predicates and random items over a shared small
// vocabulary, so matches are frequent enough to exercise the soundness
// property rather than vacuously passing on all-false predicates.
type gen struct {
	rng        *rand.Rand
	subjects   []string
	publishers []string
}

func newGen(rng *rand.Rand) *gen {
	return &gen{
		rng:        rng,
		subjects:   []string{"tech/linux", "tech/ai", "world/markets", "sci/space", "sport/football", "a'b"},
		publishers: []string{"reuters", "ap", "afp", "slashdot"},
	}
}

func (g *gen) item() (subjects []string, publisher string, urgency int, r value.Map) {
	n := 1 + g.rng.Intn(3)
	seen := map[string]bool{}
	for len(subjects) < n {
		s := g.subjects[g.rng.Intn(len(g.subjects))]
		if !seen[s] {
			seen[s] = true
			subjects = append(subjects, s)
		}
	}
	publisher = g.publishers[g.rng.Intn(len(g.publishers))]
	urgency = g.rng.Intn(news.UrgencyMax + 1)
	r = value.Map{
		"publisher": value.String(publisher),
		"item_id":   value.String(fmt.Sprintf("it-%d", g.rng.Intn(8))),
		"revision":  value.Int(int64(g.rng.Intn(3))),
		"urgency":   value.Int(int64(urgency)),
		"subjects":  value.Strings(subjects),
		"published": value.Time(time.Date(2026, 8, 1+g.rng.Intn(5), 0, 0, 0, 0, time.UTC)),
	}
	return subjects, publisher, urgency, r
}

func (g *gen) quoted(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// predicate renders a random predicate of bounded depth as source text,
// exercising every atom form the language has.
func (g *gen) predicate(depth int) string {
	if depth > 0 {
		switch g.rng.Intn(6) {
		case 0:
			return "(" + g.predicate(depth-1) + " AND " + g.predicate(depth-1) + ")"
		case 1:
			return "(" + g.predicate(depth-1) + " OR " + g.predicate(depth-1) + ")"
		case 2:
			return "NOT (" + g.predicate(depth-1) + ")"
		}
	}
	return g.atom()
}

func (g *gen) atom() string {
	not := ""
	if g.rng.Intn(3) == 0 {
		not = "NOT "
	}
	switch g.rng.Intn(10) {
	case 0:
		return "subject = " + g.quoted(g.subjects[g.rng.Intn(len(g.subjects))])
	case 1:
		return "subject != " + g.quoted(g.subjects[g.rng.Intn(len(g.subjects))])
	case 2:
		a := g.subjects[g.rng.Intn(len(g.subjects))]
		b := g.subjects[g.rng.Intn(len(g.subjects))]
		return fmt.Sprintf("subject %sIN (%s, %s)", not, g.quoted(a), g.quoted(b))
	case 3:
		s := g.subjects[g.rng.Intn(len(g.subjects))]
		if i := strings.IndexByte(s, '/'); i >= 0 && g.rng.Intn(2) == 0 {
			s = s[:i+1] + "%"
		}
		return fmt.Sprintf("subject %sLIKE %s", not, g.quoted(s))
	case 4:
		return "publisher = " + g.quoted(g.publishers[g.rng.Intn(len(g.publishers))])
	case 5:
		a := g.publishers[g.rng.Intn(len(g.publishers))]
		b := g.publishers[g.rng.Intn(len(g.publishers))]
		return fmt.Sprintf("publisher %sIN (%s, %s)", not, g.quoted(a), g.quoted(b))
	case 6:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return fmt.Sprintf("urgency %s %d", ops[g.rng.Intn(len(ops))], g.rng.Intn(news.UrgencyMax+1))
	case 7:
		lo := g.rng.Intn(news.UrgencyMax + 1)
		return fmt.Sprintf("urgency %sBETWEEN %d AND %d", not, lo, lo+g.rng.Intn(news.UrgencyMax+1-lo))
	case 8:
		return fmt.Sprintf("urgency %sIN (%d, %d)", not, g.rng.Intn(news.UrgencyMax+1), g.rng.Intn(news.UrgencyMax+1))
	default:
		day := 1 + g.rng.Intn(7)
		ops := []string{"<", "<=", ">", ">="}
		return fmt.Sprintf("published %s '2026-08-%02dT00:00:00Z'", ops[g.rng.Intn(len(ops))], day)
	}
}
