package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"
	"time"

	"newswire/internal/value"
)

func sampleGossipMessage() *Message {
	return &Message{
		Kind: KindGossip,
		From: "node-1:9000",
		Gossip: &Gossip{
			FromZone: "/usa/ny",
			Rows: []RowUpdate{
				{
					Zone:   "/usa/ny",
					Name:   "node-1",
					Attrs:  value.Map{"load": value.Float(0.3), "subs": value.Bytes([]byte{1, 2})},
					Issued: time.Unix(1017619200, 0).UTC(),
					Owner:  "node-1:9000",
				},
			},
		},
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindGossip, "gossip"},
		{KindGossipReply, "gossip-reply"},
		{KindMulticast, "multicast"},
		{KindStateRequest, "state-request"},
		{KindStateReply, "state-reply"},
		{KindGossipDigest, "gossip-digest"},
		{KindGossipDelta, "gossip-delta"},
		{KindMulticastAck, "multicast-ack"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEncodeDecodeGossip(t *testing.T) {
	m := sampleGossipMessage()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindGossip || got.From != m.From {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Gossip == nil || len(got.Gossip.Rows) != 1 {
		t.Fatalf("gossip payload lost: %+v", got.Gossip)
	}
	row := got.Gossip.Rows[0]
	if row.Zone != "/usa/ny" || row.Name != "node-1" {
		t.Fatalf("row identity lost: %+v", row)
	}
	if !row.Attrs.Equal(m.Gossip.Rows[0].Attrs) {
		t.Fatalf("attrs lost: %v", row.Attrs)
	}
	if !row.Issued.Equal(m.Gossip.Rows[0].Issued) {
		t.Fatalf("issue time lost: %v", row.Issued)
	}
}

func TestEncodeDecodeMulticast(t *testing.T) {
	m := &Message{
		Kind: KindMulticast,
		From: "rep-1:9000",
		Multicast: &Multicast{
			TargetZone: "/asia",
			Hops:       2,
			Envelope: ItemEnvelope{
				Publisher:   "reuters",
				ItemID:      "item-42",
				Revision:    1,
				Subjects:    []string{"world/asia"},
				SubjectBits: []uint32{17, 403},
				ScopeZone:   "/asia",
				Predicate:   "premium",
				Published:   time.Unix(1017619300, 0).UTC(),
				Payload:     []byte("<nitf/>"),
				Signer:      "reuters",
				Sig:         []byte{9, 9},
			},
		},
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	env := got.Multicast.Envelope
	if env.Key() != "reuters/item-42#1" {
		t.Fatalf("Key() = %q", env.Key())
	}
	if env.Predicate != "premium" || env.ScopeZone != "/asia" {
		t.Fatalf("envelope fields lost: %+v", env)
	}
	if len(env.SubjectBits) != 2 || env.SubjectBits[1] != 403 {
		t.Fatalf("subject bits lost: %v", env.SubjectBits)
	}
	if string(env.Payload) != "<nitf/>" {
		t.Fatalf("payload lost: %q", env.Payload)
	}
}

func TestEncodeDecodeMulticastAck(t *testing.T) {
	// A reliable forward round-trips its AckSeq, and the ack echoes it.
	fwd := &Message{
		Kind: KindMulticast,
		From: "rep-1:9000",
		Multicast: &Multicast{
			TargetZone: "/asia",
			AckSeq:     77,
			Envelope:   ItemEnvelope{Publisher: "reuters", ItemID: "item-1"},
		},
	}
	data, err := Encode(fwd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Multicast.AckSeq != 77 {
		t.Fatalf("AckSeq lost: %+v", got.Multicast)
	}

	ack := &Message{
		Kind: KindMulticastAck,
		From: "leaf-3:9000",
		MulticastAck: &MulticastAck{
			Seq:        77,
			Key:        "reuters/item-1#0",
			TargetZone: "/asia",
		},
	}
	data, err = Encode(ack)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	a := got.MulticastAck
	if a == nil || a.Seq != 77 || a.Key != "reuters/item-1#0" || a.TargetZone != "/asia" {
		t.Fatalf("ack payload lost: %+v", a)
	}
	if s := got.EstimateSize(); s <= 0 {
		t.Fatalf("ack EstimateSize = %d", s)
	}
}

func TestEncodeDecodeStateTransfer(t *testing.T) {
	req := &Message{
		Kind: KindStateRequest,
		From: "joiner:1",
		StateRequest: &StateRequest{
			Since:    time.Unix(100, 0).UTC(),
			MaxItems: 50,
			Subjects: []string{"tech/linux"},
		},
	}
	data, err := Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.StateRequest.MaxItems != 50 || got.StateRequest.Subjects[0] != "tech/linux" {
		t.Fatalf("state request lost: %+v", got.StateRequest)
	}

	rep := &Message{
		Kind: KindStateReply,
		From: "peer:1",
		StateReply: &StateReply{
			Envelopes: []ItemEnvelope{{Publisher: "p", ItemID: "i", Revision: 0}},
			Truncated: true,
		},
	}
	data, err = Encode(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.StateReply.Truncated || len(got.StateReply.Envelopes) != 1 {
		t.Fatalf("state reply lost: %+v", got.StateReply)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
		ok   bool
	}{
		{"valid gossip", *sampleGossipMessage(), true},
		{"gossip missing payload", Message{Kind: KindGossip}, false},
		{"multicast missing payload", Message{Kind: KindMulticast}, false},
		{"unknown kind", Message{Kind: Kind(77)}, false},
		{"zero message", Message{}, false},
		{"state request", Message{Kind: KindStateRequest, StateRequest: &StateRequest{}}, true},
		{"valid digest", *sampleDigestMessage(), true},
		{"digest missing payload", Message{Kind: KindGossipDigest}, false},
		{"valid delta", *sampleDeltaMessage(), true},
		{"delta missing payload", Message{Kind: KindGossipDelta}, false},
		{"valid ack", Message{Kind: KindMulticastAck,
			MulticastAck: &MulticastAck{Seq: 1}}, true},
		{"ack missing payload", Message{Kind: KindMulticastAck}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.msg.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage should fail to decode")
	}
	// A structurally valid gob of an invalid message must also fail.
	data, err := Encode(&Message{Kind: KindGossip}) // missing payload
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("invalid message should fail Validate on decode")
	}
}

func TestEnvelopeKeyDistinguishesRevisions(t *testing.T) {
	a := ItemEnvelope{Publisher: "p", ItemID: "x", Revision: 1}
	b := ItemEnvelope{Publisher: "p", ItemID: "x", Revision: 2}
	if a.Key() == b.Key() {
		t.Fatal("revisions must have distinct dedup keys")
	}
}

func TestSignedPayloadCoversFields(t *testing.T) {
	base := ItemEnvelope{
		Publisher: "p", ItemID: "x", Revision: 1,
		Subjects: []string{"s"}, ScopeZone: "/", Predicate: "",
		Published: time.Unix(5, 0), Payload: []byte("body"),
	}
	p1 := string(base.SignedPayload())

	mutations := []func(e *ItemEnvelope){
		func(e *ItemEnvelope) { e.Publisher = "q" },
		func(e *ItemEnvelope) { e.ItemID = "y" },
		func(e *ItemEnvelope) { e.Revision = 2 },
		func(e *ItemEnvelope) { e.Subjects = []string{"other"} },
		func(e *ItemEnvelope) { e.ScopeZone = "/asia" },
		func(e *ItemEnvelope) { e.Predicate = "premium" },
		func(e *ItemEnvelope) { e.Published = time.Unix(6, 0) },
		func(e *ItemEnvelope) { e.Payload = []byte("tampered") },
	}
	for i, mutate := range mutations {
		e := base
		mutate(&e)
		if string(e.SignedPayload()) == p1 {
			t.Errorf("mutation %d not covered by SignedPayload", i)
		}
	}
	// Signature fields themselves are NOT covered.
	e := base
	e.Sig = []byte{1}
	e.Signer = "other"
	if string(e.SignedPayload()) != p1 {
		t.Error("signature fields must not be covered by SignedPayload")
	}
}

func TestEncodeIsDeterministicForSameMessage(t *testing.T) {
	m := sampleGossipMessage()
	d1, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) == 0 || !strings.Contains(string(d2), "node-1") {
		t.Log("sanity only; gob layout may differ across encoders")
	}
}

func sampleDigestMessage() *Message {
	return &Message{
		Kind: KindGossipDigest,
		From: "node-1:9000",
		GossipDigest: &GossipDigest{
			FromZone: "/usa/ny",
			Digests: []RowDigest{
				{Zone: "/usa/ny", Name: "node-1",
					Issued: time.Unix(1017619200, 0).UTC(), Hash: 0xdeadbeef},
				{Zone: "/", Name: "usa",
					Issued: time.Unix(1017619260, 0).UTC(), Hash: 42},
			},
		},
	}
}

func sampleDeltaMessage() *Message {
	return &Message{
		Kind: KindGossipDelta,
		From: "node-2:9000",
		GossipDelta: &GossipDelta{
			FromZone: "/usa/sf",
			Rows: []RowUpdate{{
				Zone: "/usa/sf", Name: "node-2",
				Attrs:  value.Map{"load": value.Float(0.1)},
				Issued: time.Unix(1017619200, 0).UTC(),
				Owner:  "node-2:9000",
			}},
			Want: []RowRef{{Zone: "/", Name: "asia"}},
		},
	}
}

func sampleStampedDeltaMessage() *Message {
	m := sampleDeltaMessage()
	m.GossipDelta.Stamps = []RowDigest{
		{Zone: "/usa/sf", Name: "node-3",
			Issued: time.Unix(1017619300, 12).UTC(), Hash: 0xfeedface},
		{Zone: "/", Name: "usa",
			Issued: time.Unix(1017619360, 0).UTC(), Hash: 7},
	}
	return m
}

func TestEncodeDecodeDeltaStamps(t *testing.T) {
	m := sampleStampedDeltaMessage()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	d := got.GossipDelta
	if len(d.Stamps) != 2 {
		t.Fatalf("stamps lost: %+v", d)
	}
	for i := range d.Stamps {
		if d.Stamps[i] != m.GossipDelta.Stamps[i] {
			t.Fatalf("stamp %d mismatch: %+v != %+v", i, d.Stamps[i], m.GossipDelta.Stamps[i])
		}
	}
	if len(d.Rows) != 1 || len(d.Want) != 1 {
		t.Fatalf("rows/want lost alongside stamps: %+v", d)
	}
	// A stamp-free delta must stay byte-identical to the pre-stamp format:
	// no trailing zero count.
	plain := sampleDeltaMessage()
	encPlain, err := Encode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(encPlain) >= len(data) {
		t.Fatalf("stamp-free delta (%d bytes) not smaller than stamped (%d)", len(encPlain), len(data))
	}
	// EstimateSize must model the optional section the same way.
	stampedEst := m.EstimateSize()
	plainEst := plain.EstimateSize()
	if stampedEst-plainEst != StampsSize(m.GossipDelta.Stamps) {
		t.Fatalf("EstimateSize delta %d != StampsSize %d",
			stampedEst-plainEst, StampsSize(m.GossipDelta.Stamps))
	}
	var sum int
	for i := range m.GossipDelta.Stamps {
		sum += StampSize(&m.GossipDelta.Stamps[i])
	}
	if want := UvarintLen(uint64(len(m.GossipDelta.Stamps))) + sum; StampsSize(m.GossipDelta.Stamps) != want {
		t.Fatalf("StampsSize %d != count prefix + per-stamp sum %d",
			StampsSize(m.GossipDelta.Stamps), want)
	}
	if StampsSize(nil) != 0 {
		t.Fatalf("StampsSize(nil) = %d, want 0", StampsSize(nil))
	}
}

func TestEncodeDecodeMulticastTraceID(t *testing.T) {
	m := &Message{
		Kind: KindMulticast,
		From: "rep-1:9000",
		Multicast: &Multicast{
			TargetZone: "/asia",
			TraceID:    0xabcdef0123456789,
			Envelope:   ItemEnvelope{Publisher: "reuters", ItemID: "item-1"},
		},
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Multicast.TraceID != m.Multicast.TraceID {
		t.Fatalf("TraceID lost: %x", got.Multicast.TraceID)
	}
	// Gob path carries it too.
	SetGobFallback(true)
	data, err = Encode(m)
	SetGobFallback(false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Multicast.TraceID != m.Multicast.TraceID {
		t.Fatalf("TraceID lost over gob: %x", got.Multicast.TraceID)
	}
}

func TestEncodeDecodeClockSync(t *testing.T) {
	for _, kind := range []Kind{KindClockPing, KindClockPong} {
		m := &Message{
			Kind:      kind,
			From:      "n1:9000",
			ClockSync: &ClockSync{Seq: 42, T1: 1017619200123456789, T2: 1017619200123459999},
		}
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != kind || got.ClockSync == nil || *got.ClockSync != *m.ClockSync {
			t.Fatalf("%s round trip lost payload: %+v", kind, got.ClockSync)
		}
		if s := got.EstimateSize(); s <= 0 {
			t.Fatalf("%s EstimateSize = %d", kind, s)
		}
	}
	// Missing payload fails validation.
	if err := (&Message{Kind: KindClockPing}).Validate(); err == nil {
		t.Fatal("clock ping without payload should fail Validate")
	}
	if KindClockPing.String() != "clock-ping" || KindClockPong.String() != "clock-pong" {
		t.Fatal("clock kind names wrong")
	}
}

func TestEncodeDecodeDeltaGossip(t *testing.T) {
	for _, m := range []*Message{sampleDigestMessage(), sampleDeltaMessage()} {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != m.Kind || got.From != m.From {
			t.Fatalf("header mismatch: %+v", got)
		}
		switch m.Kind {
		case KindGossipDigest:
			d := got.GossipDigest
			if d.FromZone != m.GossipDigest.FromZone || len(d.Digests) != 2 {
				t.Fatalf("digest payload mismatch: %+v", d)
			}
			if d.Digests[0] != m.GossipDigest.Digests[0] {
				t.Fatalf("digest entry mismatch: %+v", d.Digests[0])
			}
		case KindGossipDelta:
			d := got.GossipDelta
			if d.FromZone != m.GossipDelta.FromZone || len(d.Rows) != 1 || len(d.Want) != 1 {
				t.Fatalf("delta payload mismatch: %+v", d)
			}
			if d.Want[0] != m.GossipDelta.Want[0] {
				t.Fatalf("want ref mismatch: %+v", d.Want[0])
			}
			if !d.Rows[0].Attrs.Equal(m.GossipDelta.Rows[0].Attrs) {
				t.Fatalf("row attrs mismatch: %+v", d.Rows[0])
			}
		}
	}
}

func TestDeltaEstimateSizes(t *testing.T) {
	digest := sampleDigestMessage()
	delta := sampleDeltaMessage()
	if s := digest.EstimateSize(); s <= 0 {
		t.Fatalf("digest EstimateSize = %d", s)
	}
	if s := delta.EstimateSize(); s <= 0 {
		t.Fatalf("delta EstimateSize = %d", s)
	}
	// A digest of a table must be much smaller than the rows themselves
	// once rows carry real payloads — that is the point of the protocol.
	heavyRow := RowUpdate{
		Zone: "/usa/ny", Name: "node-1",
		Attrs: value.Map{"subs": value.Bytes(make([]byte, 128))},
	}
	rows := Message{Kind: KindGossip, Gossip: &Gossip{FromZone: "/usa/ny",
		Rows: []RowUpdate{heavyRow}}}
	dig := Message{Kind: KindGossipDigest, GossipDigest: &GossipDigest{FromZone: "/usa/ny",
		Digests: []RowDigest{{Zone: "/usa/ny", Name: "node-1"}}}}
	if dig.EstimateSize() >= rows.EstimateSize() {
		t.Fatalf("digest (%d) not smaller than full row (%d)",
			dig.EstimateSize(), rows.EstimateSize())
	}
	// Per-entry sizing helpers must scale with content.
	if DigestsSize(sampleDigestMessage().GossipDigest.Digests) <= DigestsSize(nil) {
		t.Fatal("DigestsSize insensitive to entries")
	}
	if RefsSize([]RowRef{{Zone: "/z", Name: "n"}}) <= RefsSize(nil) {
		t.Fatal("RefsSize insensitive to refs")
	}
	if RowSize(&heavyRow, 130) <= RowSize(&heavyRow, 0) {
		t.Fatal("RowSize insensitive to encoded attr length")
	}
}

func TestEstimateSizeCoversAllKinds(t *testing.T) {
	msgs := []*Message{
		sampleGossipMessage(),
		sampleDigestMessage(),
		sampleDeltaMessage(),
		{
			Kind: KindGossipReply,
			GossipReply: &GossipReply{FromZone: "/z", Rows: []RowUpdate{{
				Zone: "/z", Name: "n", Attrs: value.Map{"a": value.Int(1)},
			}}},
		},
		{
			Kind: KindMulticast,
			Multicast: &Multicast{TargetZone: "/z", Envelope: ItemEnvelope{
				Publisher: "p", ItemID: "i", Subjects: []string{"s"},
				SubjectBits: []uint32{1, 2}, Payload: []byte("xxxx"),
			}},
		},
		{
			Kind:         KindStateRequest,
			StateRequest: &StateRequest{Subjects: []string{"tech/linux"}},
		},
		{
			Kind: KindStateReply,
			StateReply: &StateReply{Envelopes: []ItemEnvelope{
				{Publisher: "p", ItemID: "a", Payload: []byte("pay")},
			}},
		},
	}
	for _, m := range msgs {
		size := m.EstimateSize()
		if size <= 0 {
			t.Errorf("%s: EstimateSize = %d", m.Kind, size)
		}
		// The estimate must grow when payload content grows.
		if m.Multicast != nil {
			grown := *m.Multicast
			grown.Envelope.Payload = make([]byte, 10000)
			g := Message{Kind: KindMulticast, Multicast: &grown}
			if g.EstimateSize() <= size {
				t.Error("estimate insensitive to payload size")
			}
		}
	}
}

func TestEstimateSizeEmptyMessage(t *testing.T) {
	m := Message{Kind: KindInvalid, From: "x"}
	if m.EstimateSize() <= 0 {
		t.Error("empty message should still have header size")
	}
}

func TestRowUpdateSignedPayloadCoversFields(t *testing.T) {
	base := RowUpdate{
		Zone: "/z", Name: "n",
		Attrs:  value.Map{"a": value.Int(1)},
		Issued: time.Unix(5, 0),
		Owner:  "addr",
	}
	p1 := string(base.SignedPayload())
	mutations := []func(r *RowUpdate){
		func(r *RowUpdate) { r.Zone = "/other" },
		func(r *RowUpdate) { r.Name = "m" },
		func(r *RowUpdate) { r.Attrs = value.Map{"a": value.Int(2)} },
		func(r *RowUpdate) { r.Issued = time.Unix(6, 0) },
		func(r *RowUpdate) { r.Owner = "evil" },
	}
	for i, mutate := range mutations {
		r := base
		mutate(&r)
		if string(r.SignedPayload()) == p1 {
			t.Errorf("mutation %d not covered by row SignedPayload", i)
		}
	}
	// Signature fields are not covered.
	r := base
	r.Signer, r.Sig = "x", []byte{1}
	if string(r.SignedPayload()) != p1 {
		t.Error("signature fields must not be covered")
	}
}

// benchGossipMessage builds a gossip message at the paper's 64-row table
// shape, the dominant steady-state message on the TCP transport.
func benchGossipMessage() *Message {
	rows := make([]RowUpdate, 64)
	for i := range rows {
		rows[i] = RowUpdate{
			Zone: "/z00", Name: fmt.Sprintf("node-%d", i),
			Attrs: value.Map{
				"addr":     value.String(fmt.Sprintf("n%d", i)),
				"load":     value.Float(float64(i) / 64),
				"nmembers": value.Int(1),
				"subs":     value.Bytes(make([]byte, 128)),
			},
			Issued: time.Unix(1017619200, int64(i)).UTC(),
			Owner:  fmt.Sprintf("n%d", i),
		}
	}
	return &Message{
		Kind:   KindGossip,
		From:   "n0",
		Gossip: &Gossip{FromZone: "/z00", Rows: rows},
	}
}

// BenchmarkEncodeDecode measures the pooled Encode/Decode round trip.
// The sync.Pool scratch buffers are the win under guard here: run with
// -benchmem and compare allocs/op against the recorded baseline in
// EXPERIMENTS.md before touching the codec.
func BenchmarkEncodeDecode(b *testing.B) {
	m := benchGossipMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode compares the pooled serialize side against the
// unpooled construction it replaced, so the B/op and allocs/op win stays
// visible in every -benchmem run.
func BenchmarkEncode(b *testing.B) {
	m := benchGossipMessage()
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEncodeBufferPoolReuse pins the pooling behaviour: after a warm-up
// encode, the steady-state Encode of a mid-size message must not re-grow
// a scratch buffer from scratch. The bound is deliberately loose (gob
// internals allocate per call); what it catches is losing the pool, which
// roughly doubles allocations per call.
func TestEncodeBufferPoolReuse(t *testing.T) {
	m := benchGossipMessage()
	if _, err := Encode(m); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(50, func() {
		if _, err := Encode(m); err != nil {
			t.Fatal(err)
		}
	})
	var buf bytes.Buffer
	cold := testing.AllocsPerRun(50, func() {
		buf = bytes.Buffer{}
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("pooled Encode: %.0f allocs/op, unpooled baseline: %.0f", warm, cold)
	if warm >= cold {
		t.Errorf("pooled Encode allocates %.0f/op, not below unpooled %.0f/op", warm, cold)
	}
}
