package core

import (
	"fmt"
	"sort"

	"newswire/internal/astrolabe"
)

// ChooseZone suggests a leaf zone for a joining node, implementing the
// "automatic configuration of application instances into zones" the paper
// defers to the broader Astrolabe effort (§8). The policy keeps the tree
// balanced using only information already in the hierarchy: starting at
// the root of a bootstrap peer's view, repeatedly descend into the child
// zone with the fewest members (ties break lexicographically), until a
// zone with spare leaf capacity is found.
//
// view is any agent whose tables to consult (typically a bootstrap
// peer's); branching is the table-size cap (§3's "say, 64-rows").
func ChooseZone(view *astrolabe.Agent, branching int) (string, error) {
	if view == nil {
		return "", fmt.Errorf("core: placement needs a bootstrap view")
	}
	if branching < 2 {
		branching = 2
	}
	zone := astrolabe.RootZone
	for depth := 0; depth < 16; depth++ {
		rows, ok := view.Table(zone)
		if !ok || len(rows) == 0 {
			// The view cannot see below this zone; if the zone itself is
			// a leaf zone on the view's chain we can join it, otherwise
			// fall back to the view's own leaf zone.
			if zone != astrolabe.RootZone {
				return zone, nil
			}
			return view.ZonePath(), nil
		}
		// Is this table a leaf table (rows are members, with addresses
		// but no member counts) or an internal table (rows are zones)?
		if _, isZoneTable := rows[0].Attrs[astrolabe.AttrMembers]; !isZoneTable {
			// Leaf table: join here.
			return zone, nil
		}
		best := pickSmallestChild(rows)
		if best == "" {
			return "", fmt.Errorf("core: zone %s has no usable children", zone)
		}
		child := astrolabe.JoinZone(zone, best)
		// If the smallest child is itself a full leaf zone and the parent
		// has room for a sibling zone, propose a fresh sibling instead.
		if n := memberCount(rows, best); n >= int64(branching) {
			if len(rows) < branching {
				return astrolabe.JoinZone(zone, freshChildName(rows)), nil
			}
		}
		zone = child
		// Descend only while the view replicates the child's table;
		// otherwise the child zone is the answer.
		if _, ok := view.Table(zone); !ok {
			return zone, nil
		}
	}
	return "", fmt.Errorf("core: placement exceeded maximum depth")
}

// pickSmallestChild returns the child row name with the fewest members.
func pickSmallestChild(rows []astrolabe.Row) string {
	bestName := ""
	var bestCount int64 = -1
	for _, r := range rows {
		n, ok := r.Attrs[astrolabe.AttrMembers].AsInt()
		if !ok {
			continue
		}
		if bestCount == -1 || n < bestCount || (n == bestCount && r.Name < bestName) {
			bestName = r.Name
			bestCount = n
		}
	}
	return bestName
}

func memberCount(rows []astrolabe.Row, name string) int64 {
	for _, r := range rows {
		if r.Name == name {
			n, _ := r.Attrs[astrolabe.AttrMembers].AsInt()
			return n
		}
	}
	return 0
}

// freshChildName invents a child zone name not present in the table.
func freshChildName(rows []astrolabe.Row) string {
	taken := make(map[string]bool, len(rows))
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		taken[r.Name] = true
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for i := 0; ; i++ {
		candidate := fmt.Sprintf("z%02d", len(rows)+i)
		if !taken[candidate] {
			return candidate
		}
	}
}
