package multicast

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/sim"
	"newswire/internal/wire"
)

// mcNode couples an astrolabe agent with a multicast router on one
// simulated endpoint.
type mcNode struct {
	agent  *astrolabe.Agent
	router *Router

	mu        sync.Mutex
	delivered []string // envelope keys
}

func (n *mcNode) deliveredKeys() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.delivered))
	copy(out, n.delivered)
	return out
}

type mcCluster struct {
	t     *testing.T
	eng   *sim.Engine
	net   *sim.Network
	nodes []*mcNode
}

// newMCCluster builds a small simulated cluster. Optional hooks adjust
// each node's router Config before creation (e.g. to turn on reliable
// forwarding).
func newMCCluster(t *testing.T, zones []string, repCount int, filter Filter, hooks ...func(i int, cfg *Config)) *mcCluster {
	t.Helper()
	eng := sim.NewEngine(777)
	net := sim.NewNetwork(eng, sim.LinkModel{
		LatencyMin: 5 * time.Millisecond,
		LatencyMax: 30 * time.Millisecond,
	})
	c := &mcCluster{t: t, eng: eng, net: net}
	for i, zone := range zones {
		addr := fmt.Sprintf("n%d", i)
		node := &mcNode{}
		ep := net.Attach(addr, func(m *wire.Message) {
			switch m.Kind {
			case wire.KindMulticast, wire.KindMulticastAck:
				node.router.HandleMessage(m)
			default:
				node.agent.HandleMessage(m)
			}
		})
		agent, err := astrolabe.NewAgent(astrolabe.Config{
			Name:      fmt.Sprintf("node-%d", i),
			ZonePath:  zone,
			Transport: ep,
			Clock:     eng.Clock(),
			Rand:      rand.New(rand.NewSource(int64(i) + 100)),
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			View:      agent,
			Transport: ep,
			RepCount:  repCount,
			Rand:      rand.New(rand.NewSource(int64(i) + 200)),
			Filter:    filter,
			Deliver: func(env *wire.ItemEnvelope) {
				node.mu.Lock()
				node.delivered = append(node.delivered, env.Key())
				node.mu.Unlock()
			},
		}
		for _, h := range hooks {
			h(i, &cfg)
		}
		if cfg.AckTimeout > 0 && cfg.After == nil {
			cfg.After = eng.After // virtual-time retries
		}
		router, err := NewRouter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.agent = agent
		node.router = router
		c.nodes = append(c.nodes, node)
	}
	// Bootstrap membership and run gossip until tables stabilize.
	for _, n := range c.nodes {
		var seeds []wire.RowUpdate
		for _, m := range c.nodes {
			if m != n {
				seeds = append(seeds, m.agent.ChainRowUpdates()...)
			}
		}
		n.agent.MergeRows(seeds)
	}
	c.runRounds(6)
	return c
}

func (c *mcCluster) runRounds(r int) {
	for i := 0; i < r; i++ {
		for _, n := range c.nodes {
			n.agent.Tick()
		}
		c.eng.RunFor(time.Second)
	}
}

func envelope(id string) wire.ItemEnvelope {
	return wire.ItemEnvelope{
		Publisher: "test",
		ItemID:    id,
		Subjects:  []string{"tech/linux"},
		Published: time.Unix(1017619200, 0).UTC(),
		Payload:   []byte("<nitf/>"),
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestMulticastReachesAllNodes(t *testing.T) {
	zones := []string{"/usa/ny", "/usa/ny", "/usa/ca", "/asia/jp", "/asia/jp", "/asia/cn"}
	c := newMCCluster(t, zones, 1, nil)

	if err := c.nodes[0].router.Publish(envelope("story-1"), "/"); err != nil {
		t.Fatal(err)
	}
	c.eng.RunFor(5 * time.Second)

	for i, n := range c.nodes {
		keys := n.deliveredKeys()
		if len(keys) != 1 || keys[0] != "test/story-1#0" {
			t.Errorf("node %d delivered %v, want [test/story-1#0]", i, keys)
		}
	}
}

func TestMulticastNoDuplicateDeliveries(t *testing.T) {
	zones := []string{"/a/x", "/a/x", "/a/y", "/b/z", "/b/z"}
	c := newMCCluster(t, zones, 3, nil) // redundant forwarding

	c.nodes[0].router.Publish(envelope("dup-test"), "/")
	c.eng.RunFor(5 * time.Second)

	for i, n := range c.nodes {
		if keys := n.deliveredKeys(); len(keys) != 1 {
			t.Errorf("node %d delivered %d copies: %v", i, len(keys), keys)
		}
	}
}

func TestMulticastZoneScoped(t *testing.T) {
	zones := []string{"/usa/ny", "/usa/ca", "/asia/jp", "/asia/cn"}
	c := newMCCluster(t, zones, 1, nil)

	// Publish from a /usa node into /asia only (§8's localized news).
	c.nodes[0].router.Publish(envelope("asia-only"), "/asia")
	c.eng.RunFor(5 * time.Second)

	for i, n := range c.nodes {
		keys := n.deliveredKeys()
		inAsia := astrolabe.ZoneContains("/asia", n.agent.ZonePath())
		if inAsia && len(keys) != 1 {
			t.Errorf("asia node %d delivered %v", i, keys)
		}
		if !inAsia && len(keys) != 0 {
			t.Errorf("usa node %d should not receive asia-scoped item: %v", i, keys)
		}
	}
}

func TestMulticastFilterPruning(t *testing.T) {
	zones := []string{"/a/x", "/a/y", "/b/z"}
	// Filter that refuses everything under /b.
	filter := func(zone string, row astrolabe.Row, env *wire.ItemEnvelope) bool {
		child := astrolabe.JoinZone(zone, row.Name)
		return !astrolabe.ZoneContains("/b", child)
	}
	c := newMCCluster(t, zones, 1, filter)

	c.nodes[0].router.Publish(envelope("filtered"), "/")
	c.eng.RunFor(5 * time.Second)

	if keys := c.nodes[2].deliveredKeys(); len(keys) != 0 {
		t.Errorf("/b node received filtered item: %v", keys)
	}
	if keys := c.nodes[1].deliveredKeys(); len(keys) != 1 {
		t.Errorf("/a node missed item: %v", keys)
	}
	st := c.nodes[0].router.Stats()
	if st.FilteredOut == 0 {
		t.Error("filter was never consulted")
	}
}

func TestMulticastPredicateGating(t *testing.T) {
	zones := []string{"/a/x", "/b/y"}
	c := newMCCluster(t, zones, 1, nil)

	// The predicate evaluates against every row on the forwarding path:
	// aggregated zone rows and leaf member rows. "load" exists at both
	// levels (leaf rows carry it; the default program aggregates
	// MIN(load)), so gate on load.
	c.runRounds(4)

	env := envelope("everyone")
	env.Predicate = "load >= 0"
	c.nodes[0].router.Publish(env, "/")
	c.eng.RunFor(5 * time.Second)
	if len(c.nodes[1].deliveredKeys()) != 1 {
		t.Error("satisfied predicate blocked delivery")
	}

	env2 := envelope("impossible")
	env2.Predicate = "load > 1000"
	c.nodes[0].router.Publish(env2, "/")
	c.eng.RunFor(5 * time.Second)
	for i, n := range c.nodes {
		for _, k := range n.deliveredKeys() {
			if k == "test/impossible#0" {
				// Publisher's own leaf-zone fan-out also consults the
				// predicate against leaf rows, which lack nmembers; the
				// item must reach nobody.
				t.Errorf("node %d received item with unsatisfiable predicate", i)
			}
		}
	}
}

func TestMulticastRedundantRepsSurviveFailure(t *testing.T) {
	// Zone /a has 3 members, so with RepCount 3 each parent-level forward
	// goes to up to 3 representatives; killing one must not stop
	// delivery.
	zones := []string{"/a/x", "/a/x", "/a/x", "/b/y"}
	c := newMCCluster(t, zones, 3, nil)

	// Find a representative of /a and crash it, but keep it listed in
	// the (now stale) aggregated row — the redundancy covers the gap
	// before failure detection catches up.
	row, ok := c.nodes[3].agent.Row("/", "a")
	if !ok {
		t.Fatal("no /a row at /b node")
	}
	reps, _ := row.Attrs[astrolabe.AttrReps].AsStrings()
	if len(reps) < 2 {
		t.Fatalf("want ≥2 reps for /a, got %v", reps)
	}
	c.net.Crash(reps[0])

	c.nodes[3].router.Publish(envelope("survives"), "/")
	c.eng.RunFor(5 * time.Second)

	delivered := 0
	for i, n := range c.nodes {
		if c.net.Crashed(n.agent.Addr()) {
			continue
		}
		if len(n.deliveredKeys()) == 1 {
			delivered++
		} else if n.agent.ZonePath() == "/a/x" {
			t.Logf("live /a node %d missed delivery", i)
		}
	}
	// The two live /a members plus the publisher must all have it.
	if delivered != 3 {
		t.Fatalf("delivered to %d live nodes, want 3", delivered)
	}
}

func TestMulticastSingleRepFailureLosesDelivery(t *testing.T) {
	// The contrast case for E6: with k=1 and the sole representative
	// dead, the zone is unreachable until reconfiguration.
	zones := []string{"/a/x", "/a/x", "/b/y"}
	c := newMCCluster(t, zones, 1, nil)

	row, _ := c.nodes[2].agent.Row("/", "a")
	reps, _ := row.Attrs[astrolabe.AttrReps].AsStrings()
	if len(reps) == 0 {
		t.Fatal("no reps for /a")
	}
	// With k=1 the default aggregation still lists up to 3 reps; force
	// the experiment by crashing all of them.
	for _, rep := range reps {
		c.net.Crash(rep)
	}

	c.nodes[2].router.Publish(envelope("lost"), "/")
	c.eng.RunFor(5 * time.Second)

	for i, n := range c.nodes[:2] {
		if c.net.Crashed(n.agent.Addr()) {
			continue
		}
		if len(n.deliveredKeys()) != 0 {
			t.Errorf("node %d in /a received despite dead reps", i)
		}
	}
}

func TestMulticastHopLimit(t *testing.T) {
	zones := []string{"/a/x", "/a/y"}
	c := newMCCluster(t, zones, 1, nil)
	msg := &wire.Message{
		Kind: wire.KindMulticast,
		Multicast: &wire.Multicast{
			TargetZone: "/",
			Hops:       1000, // over the limit
			Envelope:   envelope("too-far"),
		},
	}
	c.nodes[0].router.HandleMessage(msg)
	c.eng.RunFor(time.Second)
	for i, n := range c.nodes {
		if len(n.deliveredKeys()) != 0 {
			t.Errorf("node %d processed over-hop message", i)
		}
	}
}

func TestMulticastEnvelopeVerification(t *testing.T) {
	eng := sim.NewEngine(5)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	var node mcNode
	ep := net.Attach("n0", func(m *wire.Message) { node.router.HandleMessage(m) })
	agent, err := astrolabe.NewAgent(astrolabe.Config{
		Name: "node-0", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(Config{
		View: agent, Transport: ep, Rand: rand.New(rand.NewSource(2)),
		Deliver: func(env *wire.ItemEnvelope) {
			node.mu.Lock()
			node.delivered = append(node.delivered, env.Key())
			node.mu.Unlock()
		},
		VerifyEnvelope: func(env *wire.ItemEnvelope) error {
			if env.Publisher != "trusted" {
				return fmt.Errorf("unknown publisher")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	node.agent, node.router = agent, router

	bad := envelope("evil")
	router.HandleMessage(&wire.Message{
		Kind:      wire.KindMulticast,
		Multicast: &wire.Multicast{TargetZone: "/z", Envelope: bad},
	})
	eng.RunFor(time.Second)
	if len(node.deliveredKeys()) != 0 {
		t.Fatal("unverified envelope delivered")
	}
	if st := router.Stats(); st.BadEnvelope != 1 {
		t.Fatalf("BadEnvelope = %d, want 1", st.BadEnvelope)
	}

	good := envelope("fine")
	good.Publisher = "trusted"
	router.HandleMessage(&wire.Message{
		Kind:      wire.KindMulticast,
		Multicast: &wire.Multicast{TargetZone: "/z", Envelope: good},
	})
	eng.RunFor(time.Second)
	if len(node.deliveredKeys()) != 1 {
		t.Fatal("verified envelope not delivered")
	}
}

func TestPublishValidatesScope(t *testing.T) {
	zones := []string{"/a/x"}
	c := newMCCluster(t, zones, 1, nil)
	if err := c.nodes[0].router.Publish(envelope("x"), "not-a-zone"); err == nil {
		t.Fatal("bad scope accepted")
	}
	if err := c.nodes[0].router.Publish(envelope("y"), ""); err != nil {
		t.Fatalf("empty scope should default to root: %v", err)
	}
}

func TestForwardingLogRecords(t *testing.T) {
	zones := []string{"/a/x", "/b/y"}
	c := newMCCluster(t, zones, 1, nil)
	c.nodes[0].router.Publish(envelope("logged"), "/")
	c.eng.RunFor(3 * time.Second)

	log := c.nodes[0].router.Log()
	if len(log) == 0 {
		t.Fatal("forwarding log empty after publish")
	}
	found := false
	for _, e := range log {
		if e.Key == "test/logged#0" && len(e.Dests) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("log lacks the published item: %+v", log)
	}
}

func TestRouterStats(t *testing.T) {
	zones := []string{"/a/x", "/a/x", "/b/y"}
	c := newMCCluster(t, zones, 1, nil)
	c.nodes[0].router.Publish(envelope("s1"), "/")
	c.eng.RunFor(3 * time.Second)

	st := c.nodes[0].router.Stats()
	if st.Published != 1 {
		t.Errorf("Published = %d", st.Published)
	}
	if st.Forwarded == 0 {
		t.Errorf("Forwarded = 0")
	}
	if st.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1 (own delivery)", st.Delivered)
	}
}

func TestLeafZoneRowsWithoutAddressSkipped(t *testing.T) {
	// A leaf row missing its addr attribute (malformed gossip) must be
	// skipped without panicking or blocking other deliveries.
	zones := []string{"/a/x", "/a/x"}
	c := newMCCluster(t, zones, 1, nil)

	// Inject a bogus member row with no address into node 0's leaf table.
	c.nodes[0].agent.MergeRows([]wire.RowUpdate{{
		Zone:   "/a/x",
		Name:   "ghost",
		Attrs:  nil,
		Issued: c.eng.Now(),
		Owner:  "ghost",
	}})
	c.nodes[0].router.Publish(envelope("no-addr"), "/")
	c.eng.RunFor(3 * time.Second)

	if len(c.nodes[1].deliveredKeys()) != 1 {
		t.Fatal("valid member missed delivery because of malformed row")
	}
}

func TestRouterIgnoresNonMulticast(t *testing.T) {
	zones := []string{"/a/x"}
	c := newMCCluster(t, zones, 1, nil)
	// Must be a no-op, not a panic.
	c.nodes[0].router.HandleMessage(&wire.Message{Kind: wire.KindGossip,
		Gossip: &wire.Gossip{}})
	c.nodes[0].router.HandleMessage(&wire.Message{Kind: wire.KindMulticast})
	if len(c.nodes[0].deliveredKeys()) != 0 {
		t.Fatal("bogus messages caused deliveries")
	}
}

func TestDeliverFlagShortCircuits(t *testing.T) {
	// A Deliver-marked copy must be delivered (post-filter) and never
	// fanned out further.
	zones := []string{"/a/x", "/a/x"}
	c := newMCCluster(t, zones, 1, nil)
	before := c.nodes[0].router.Stats().Forwarded
	c.nodes[0].router.HandleMessage(&wire.Message{
		Kind: wire.KindMulticast,
		Multicast: &wire.Multicast{
			TargetZone: "/a/x",
			Deliver:    true,
			Envelope:   envelope("final-copy"),
		},
	})
	c.eng.RunFor(time.Second)
	if len(c.nodes[0].deliveredKeys()) != 1 {
		t.Fatal("final-delivery copy not delivered")
	}
	if got := c.nodes[0].router.Stats().Forwarded; got != before {
		t.Fatalf("final-delivery copy was forwarded (%d -> %d)", before, got)
	}
	if len(c.nodes[1].deliveredKeys()) != 0 {
		t.Fatal("final-delivery copy leaked to a peer")
	}
}

func TestDedupWindowBoundsMemory(t *testing.T) {
	eng := sim.NewEngine(6)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	var node mcNode
	ep := net.Attach("n0", func(m *wire.Message) { node.router.HandleMessage(m) })
	agent, err := astrolabe.NewAgent(astrolabe.Config{
		Name: "node-0", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(Config{
		View: agent, Transport: ep, Rand: rand.New(rand.NewSource(2)),
		DedupWindow: 4,
		Deliver: func(env *wire.ItemEnvelope) {
			node.mu.Lock()
			node.delivered = append(node.delivered, env.Key())
			node.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	node.agent, node.router = agent, router

	// Deliver 10 distinct items; the window holds only 4 keys, but every
	// distinct item is still delivered exactly once (recent duplicates
	// suppressed; ancient ones fall to the cache layer above).
	for i := 0; i < 10; i++ {
		router.Publish(envelope(fmt.Sprintf("w-%d", i)), "/")
	}
	eng.RunUntilIdle(0)
	if got := len(node.deliveredKeys()); got != 10 {
		t.Fatalf("delivered %d distinct items, want 10", got)
	}
	// A recent duplicate is suppressed.
	before := len(node.deliveredKeys())
	router.Publish(envelope("w-9"), "/")
	eng.RunUntilIdle(0)
	if got := len(node.deliveredKeys()); got != before {
		t.Fatalf("recent duplicate re-delivered (%d -> %d)", before, got)
	}
}

// reliableHook turns on ack/retry forwarding with a short virtual-time
// timeout; newMCCluster wires the engine's After automatically.
func reliableHook(timeout time.Duration) func(i int, cfg *Config) {
	return func(i int, cfg *Config) { cfg.AckTimeout = timeout }
}

func TestReliableMulticastSurvivesForwarderCrash(t *testing.T) {
	// k=1: a single representative forwards into /a. Crash it while its
	// row is still in every table — without retries the zone goes dark
	// (TestMulticastSingleRepFailureLosesDelivery); with ack/retry the
	// publisher times out and fails over to the next listed rep.
	zones := []string{"/a/x", "/a/x", "/a/x", "/b/y"}
	c := newMCCluster(t, zones, 1, nil, reliableHook(200*time.Millisecond))

	row, ok := c.nodes[3].agent.Row("/", "a")
	if !ok {
		t.Fatal("no /a row at /b node")
	}
	if reps, _ := row.Attrs[astrolabe.AttrReps].AsStrings(); len(reps) < 2 {
		t.Fatalf("want ≥2 ranked reps for /a, got %v", reps)
	}

	// Publish, then crash the representative the forward actually chose
	// before the (≥5ms) link latency delivers it: a crash mid-forward.
	// Publish routes synchronously, so the forwarding log already names
	// the destination.
	if err := c.nodes[3].router.Publish(envelope("failover"), "/"); err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, e := range c.nodes[3].router.Log() {
		if e.Key == "test/failover#0" && e.Zone == "/a" && len(e.Dests) > 0 {
			victim = e.Dests[0]
		}
	}
	if victim == "" {
		t.Fatal("publisher's log lacks the /a forward")
	}
	c.net.Crash(victim)
	c.eng.RunFor(10 * time.Second)

	for i, n := range c.nodes {
		if c.net.Crashed(n.agent.Addr()) {
			continue
		}
		if got := len(n.deliveredKeys()); got != 1 {
			t.Errorf("live node %d delivered %d copies, want 1", i, got)
		}
	}
	st := c.nodes[3].router.Stats()
	if st.RetriesSent == 0 {
		t.Error("publisher never retried the dead representative")
	}
	if st.FailoversTotal == 0 {
		t.Error("publisher never failed over to an alternate representative")
	}
}

func TestReliableMulticastNoDuplicatesUnderLostAcks(t *testing.T) {
	// Asymmetric partition: forwards from n0 arrive at n1 but acks back
	// are lost. n0 retransmits until MaxAttempts; n1 must deliver exactly
	// once (dedup absorbs the retries).
	zones := []string{"/a/x", "/a/x"}
	c := newMCCluster(t, zones, 1, nil, reliableHook(200*time.Millisecond))

	c.net.PartitionOneWay([]string{"n1"}, []string{"n0"})
	if err := c.nodes[0].router.Publish(envelope("once"), "/"); err != nil {
		t.Fatal(err)
	}
	c.eng.RunFor(15 * time.Second)

	if got := c.nodes[1].deliveredKeys(); len(got) != 1 {
		t.Fatalf("node 1 delivered %d copies, want exactly 1: %v", len(got), got)
	}
	st0 := c.nodes[0].router.Stats()
	if st0.RetriesSent == 0 {
		t.Error("lost acks should force retransmissions")
	}
	if st0.DeliveryFailures == 0 {
		t.Error("exhausted retries should count a delivery failure")
	}
	if st1 := c.nodes[1].router.Stats(); st1.Duplicates == 0 {
		t.Error("retransmits should hit node 1's duplicate suppression")
	}
	if c.nodes[0].router.PendingAcks() != 0 {
		t.Error("pending table should drain after MaxAttempts")
	}
}

func TestReliableMulticastAcksClearPending(t *testing.T) {
	zones := []string{"/a/x", "/a/x", "/b/y"}
	c := newMCCluster(t, zones, 1, nil, reliableHook(time.Second))

	if err := c.nodes[0].router.Publish(envelope("clean"), "/"); err != nil {
		t.Fatal(err)
	}
	c.eng.RunFor(10 * time.Second)

	for i, n := range c.nodes {
		if got := len(n.deliveredKeys()); got != 1 {
			t.Errorf("node %d delivered %d copies, want 1", i, got)
		}
		if p := n.router.PendingAcks(); p != 0 {
			t.Errorf("node %d still has %d pending acks", i, p)
		}
	}
	st := c.nodes[0].router.Stats()
	if st.AcksReceived == 0 {
		t.Error("publisher received no acks on a healthy network")
	}
	if st.RetriesSent != 0 {
		t.Errorf("healthy lossless network should need no retries, got %d", st.RetriesSent)
	}
}

func TestReliableRetriesHealLinkLoss(t *testing.T) {
	// 100% loss on the first-choice path forces the ack deadline every
	// time; retries (to the same or an alternate address) must still get
	// the item through.
	zones := []string{"/a/x", "/a/x"}
	c := newMCCluster(t, zones, 1, nil, reliableHook(200*time.Millisecond))

	// Drop the first transmission n0->n1 only: after one loss, restore.
	c.net.SetLinkLoss("n0", "n1", 1.0)
	if err := c.nodes[0].router.Publish(envelope("heal"), "/"); err != nil {
		t.Fatal(err)
	}
	c.eng.RunFor(150 * time.Millisecond) // first copy lost in flight
	c.net.ClearLinkLoss("n0", "n1")
	c.eng.RunFor(10 * time.Second)

	if got := len(c.nodes[1].deliveredKeys()); got != 1 {
		t.Fatalf("node 1 delivered %d copies, want 1", got)
	}
	if st := c.nodes[0].router.Stats(); st.RetriesSent == 0 {
		t.Error("lost first copy should have been retried")
	}
}
