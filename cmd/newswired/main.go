// Command newswired runs one live NewsWire node over TCP: it joins a
// cluster through seed peers, subscribes to subjects, and prints every
// delivered news item — the downloadable participant application of
// paper §8.
//
// Start a first node:
//
//	newswired -listen 127.0.0.1:9001 -zone /usa/ny -subscribe tech/linux
//
// Join more nodes to it:
//
//	newswired -listen 127.0.0.1:9002 -zone /usa/ny -peers 127.0.0.1:9001 \
//	    -subscribe tech/linux,tech/security
//
// Observability: -http serves the status interface (status.json,
// metrics, trace.json, cluster-health.json); -log-json switches the
// structured log to one-JSON-object-per-line for log shippers; -pprof
// adds the net/http/pprof profiling endpoints to the same mux (see
// DESIGN.md §12 for the profiling workflow).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"newswire"
	"newswire/internal/news"
	"newswire/internal/transport"
	"newswire/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswired:", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: text for humans, JSON for log
// shippers, leveled by -log-level.
func newLogger(jsonOut bool, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswired", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		zone      = fs.String("zone", "/default", "leaf zone path, e.g. /usa/ny")
		name      = fs.String("name", "", "node name (default derived from address)")
		peers     = fs.String("peers", "", "comma-separated seed peer addresses")
		mode      = fs.String("mode", "", "subscription-summary mode: bloom (default), attributes, category-mask or predicate")
		subscribe = fs.String("subscribe", "", "comma-separated subscription subjects")
		queryStr  = fs.String("query", "", "typed predicate subscription, e.g. \"subjects = 'tech/linux' AND urgency >= 6\" (requires -mode predicate; repeatable via ';')")
		predicate = fs.String("predicate", "", "SQL selection predicate over item metadata")
		interval  = fs.Duration("interval", 2*time.Second, "gossip interval")
		httpAddr  = fs.String("http", "", "serve the status web interface on this address (e.g. 127.0.0.1:8080)")
		gobWire   = fs.Bool("gob-wire", false, "encode outbound frames with the legacy gob codec (transition aid; inbound frames are auto-detected either way)")
		syncWr    = fs.Bool("sync-transport", false, "use the legacy synchronous transport writes (ablation; one mutex serializes all peers)")
		queueLen  = fs.Int("send-queue", 0, "per-peer outbound queue length in frames (0 = default)")
		logJSON   = fs.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofOn   = fs.Bool("pprof", false, "expose net/http/pprof on the -http mux (operator opt-in; see DESIGN.md §12)")
		healthEv  = fs.Int("health-every", 0, "publish the health digest every N gossip ticks (0 = default cadence, negative = disable)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wire.SetGobFallback(*gobWire)

	logger, err := newLogger(*logJSON, *logLevel)
	if err != nil {
		return err
	}

	summaryMode, err := newswire.ParseMode(*mode)
	if err != nil {
		return err
	}
	if *queryStr != "" && summaryMode != newswire.ModePredicate {
		return fmt.Errorf("-query requires -mode predicate")
	}

	cfg := newswire.LiveConfig{
		ListenAddr: *listen,
		Transport: transport.TCPOptions{
			SyncWrites: *syncWr,
			QueueLen:   *queueLen,
		},
		Node: newswire.Config{
			Name:           *name,
			ZonePath:       *zone,
			Mode:           summaryMode,
			GossipInterval: *interval,
			OnItem: func(it *news.Item, env *wire.ItemEnvelope) {
				logger.Info("item delivered",
					"key", it.Key(),
					"revision", it.Revision,
					"subjects", strings.Join(it.Subjects, ","),
					"headline", it.Headline,
					"published", it.Published.Format(time.RFC3339))
			},
			// Every delivery failure is logged with the item's trace ID, so
			// the operator can pull the matching hop-by-hop spans from
			// /trace.json?trace=<id> across the whole cluster.
			OnDeliveryFailure: func(key string, traceID uint64, zone, to string, attempts int) {
				logger.Error("delivery failure",
					"key", key,
					"trace", fmt.Sprintf("%#x", traceID),
					"zone", zone,
					"to", to,
					"attempts", attempts)
			},
		},
	}
	if *healthEv > 0 {
		cfg.Node.HealthEvery = *healthEv
	} else if *healthEv < 0 {
		cfg.DisableHealth = true
	}
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
	}

	ln, err := newswire.StartLive(cfg)
	if err != nil {
		return err
	}
	defer ln.Close()
	logger.Info("listening", "addr", ln.Addr(), "zone", *zone)

	if *subscribe != "" {
		subjects := strings.Split(*subscribe, ",")
		if err := ln.Node().Subscribe(subjects...); err != nil {
			return err
		}
		logger.Info("subscribed", "subjects", *subscribe)
	}
	if *queryStr != "" {
		for _, q := range strings.Split(*queryStr, ";") {
			q = strings.TrimSpace(q)
			if q == "" {
				continue
			}
			canon, err := ln.Node().SubscribeQuery(q)
			if err != nil {
				return err
			}
			logger.Info("query subscribed", "query", canon)
		}
	}
	if *predicate != "" {
		if err := ln.Node().SetPredicate(*predicate); err != nil {
			return err
		}
		logger.Info("predicate installed", "predicate", *predicate)
	}

	if *httpAddr != "" {
		ui := ln.WebUI()
		if *pprofOn {
			ui.EnablePprof()
		}
		srv := &http.Server{Addr: *httpAddr, Handler: ui.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("web interface", "err", err)
			}
		}()
		defer srv.Close()
		logger.Info("web interface up", "url", "http://"+*httpAddr+"/",
			"endpoints", "status.json items.json zones.json trace.json cluster-health.json metrics",
			"pprof", *pprofOn)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	return nil
}
