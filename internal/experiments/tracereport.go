package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"newswire/internal/trace"
)

// TraceReport summarizes one traced cluster run: the canonical span-set
// fingerprint (the serial-vs-parallel equality gate), the slowest
// deliveries with their reconstructed hop paths, and every abandoned
// reliable forward. Attached to Table.Traces, which Render ignores — the
// table text stays bit-identical between traced and untraced runs.
type TraceReport struct {
	Label       string           `json:"label"`
	SpanCount   int              `json:"span_count"`
	Fingerprint string           `json:"fingerprint"`
	Slowest     []TracedDelivery `json:"slowest,omitempty"`
	Failed      []trace.Span     `json:"failed,omitempty"`
}

// TracedDelivery is one application delivery explained hop by hop.
type TracedDelivery struct {
	Key     string        `json:"key"`
	Node    string        `json:"node"`
	Latency time.Duration `json:"latency"`
	Hops    []TraceHop    `json:"hops"`
}

// TraceHop is one span on a delivery path plus the time spent since the
// previous hop.
type TraceHop struct {
	Span  trace.Span    `json:"span"`
	Delta time.Duration `json:"delta"`
}

// BuildTraceReport digests a canonical span slice: delivery latency is
// each deliver span's offset from its item's publish span, the topN
// slowest deliveries get their hop paths reconstructed with trace.PathTo,
// and delivery-fail spans are carried verbatim.
func BuildTraceReport(label string, spans []trace.Span, topN int) *TraceReport {
	r := &TraceReport{
		Label:       label,
		SpanCount:   len(spans),
		Fingerprint: trace.Fingerprint(spans),
	}
	publishAt := make(map[string]time.Time)
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case trace.KindPublish:
			if _, ok := publishAt[s.Key]; !ok {
				publishAt[s.Key] = s.At
			}
		case trace.KindDeliveryFail:
			r.Failed = append(r.Failed, *s)
		}
	}
	type deliv struct {
		key, node string
		lat       time.Duration
	}
	var delivs []deliv
	for i := range spans {
		s := &spans[i]
		if s.Kind != trace.KindDeliver {
			continue
		}
		pub, ok := publishAt[s.Key]
		if !ok {
			continue
		}
		delivs = append(delivs, deliv{key: s.Key, node: s.Node, lat: s.At.Sub(pub)})
	}
	sort.SliceStable(delivs, func(i, j int) bool { return delivs[i].lat > delivs[j].lat })
	if topN > 0 && len(delivs) > topN {
		delivs = delivs[:topN]
	}
	for _, d := range delivs {
		td := TracedDelivery{Key: d.key, Node: d.node, Latency: d.lat}
		path := trace.PathTo(spans, d.key, d.node)
		prev := time.Time{}
		for _, s := range path {
			hop := TraceHop{Span: s}
			if !prev.IsZero() {
				hop.Delta = s.At.Sub(prev)
			}
			prev = s.At
			td.Hops = append(td.Hops, hop)
		}
		r.Slowest = append(r.Slowest, td)
	}
	return r
}

// Render writes the report as indented text under a "-- trace" header,
// one line per hop with the per-hop latency delta.
func (r *TraceReport) Render(w io.Writer) {
	fmt.Fprintf(w, "-- trace %s: %d spans, fingerprint %.12s…\n",
		r.Label, r.SpanCount, r.Fingerprint)
	for i, d := range r.Slowest {
		fmt.Fprintf(w, "   slowest[%d] %s -> %s in %v\n", i, d.Key, d.Node, d.Latency)
		for _, h := range d.Hops {
			s := h.Span
			line := fmt.Sprintf("     %-8s %s", s.Kind, s.Node)
			if s.To != "" {
				line += " -> " + s.To
			}
			if s.Zone != "" {
				line += "  zone=" + s.Zone
			}
			if s.Hop > 0 {
				line += fmt.Sprintf("  hop=%d", s.Hop)
			}
			if h.Delta > 0 {
				line += fmt.Sprintf("  +%v", h.Delta)
			}
			if s.Note != "" {
				line += "  (" + s.Note + ")"
			}
			fmt.Fprintln(w, line)
		}
	}
	for _, s := range r.Failed {
		fmt.Fprintf(w, "   failed  %s at %s -> %s after attempt %d\n",
			s.Key, s.Node, s.To, s.Attempt)
	}
	fmt.Fprintln(w)
}
