package newswire_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"newswire"
	"newswire/internal/news"
	"newswire/internal/wire"
)

// TestPublicAPISimulatedCluster exercises the README quick-start path
// through the public facade only.
func TestPublicAPISimulatedCluster(t *testing.T) {
	var delivered atomic.Int64
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         16,
		Branching: 4,
		Seed:      99,
		Link:      newswire.DefaultWAN,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.RepCount = 2
			// Reliable forwarding (see README "Delivery guarantees"):
			// over the 1%-loss WAN model, all-16 delivery within the
			// run window is a coin flip without ack/retry — any change
			// to the simulation's event order re-rolls which copies the
			// loss model eats.
			cfg.AckTimeout = time.Second
			cfg.OnItem = func(it *newswire.Item, env *newswire.ItemEnvelope) {
				delivered.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cluster.Nodes {
		if err := n.Subscribe("tech/linux"); err != nil {
			t.Fatal(err)
		}
	}
	cluster.RunRounds(8)

	item := &newswire.Item{
		Publisher: "slashdot", ID: "api-test",
		Headline: "public API works", Body: "body",
		Subjects:  []string{"tech/linux"},
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(item, newswire.RootZone, ""); err != nil {
		t.Fatal(err)
	}
	cluster.RunFor(10 * time.Second)

	if got := delivered.Load(); got != 16 {
		t.Fatalf("delivered to %d of 16 nodes", got)
	}
}

// TestLiveClusterOverTCP runs three real nodes over loopback TCP: two
// subscribers and a publisher joining through a seed peer.
func TestLiveClusterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test")
	}
	var got1, got2 atomic.Int64
	mk := func(name string, peers []string, counter *atomic.Int64) *newswire.LiveNode {
		t.Helper()
		cfg := newswire.LiveConfig{
			Node: newswire.Config{
				Name:           name,
				ZonePath:       "/live",
				GossipInterval: 200 * time.Millisecond,
			},
			Peers: peers,
		}
		if counter != nil {
			cfg.Node.OnItem = func(*news.Item, *wire.ItemEnvelope) { counter.Add(1) }
		}
		ln, err := newswire.StartLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		return ln
	}

	seed := mk("seed", nil, &got1)
	if err := seed.Node().Subscribe("tech/linux"); err != nil {
		t.Fatal(err)
	}
	second := mk("second", []string{seed.Addr()}, &got2)
	if err := second.Node().Subscribe("tech/linux"); err != nil {
		t.Fatal(err)
	}
	publisher := mk("pub", []string{seed.Addr()}, nil)

	// Wait for membership to converge: both subscribers visible in the
	// publisher's leaf table.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rows, _ := publisher.Node().Agent().Table("/live")
		if len(rows) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never converged: %d rows", len(rows))
		}
		time.Sleep(50 * time.Millisecond)
	}
	// And for the subscription filters to aggregate.
	time.Sleep(time.Second)

	item := &newswire.Item{
		Publisher: "slashdot", ID: "live-1",
		Headline: "over real sockets", Body: "body",
		Subjects:  []string{"tech/linux"},
		Published: time.Now(),
	}
	if err := publisher.Node().PublishItem(item, "", ""); err != nil {
		t.Fatal(err)
	}

	deadline = time.Now().Add(10 * time.Second)
	for got1.Load() < 1 || got2.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("live delivery incomplete: seed=%d second=%d", got1.Load(), got2.Load())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDeterministicClusterRuns verifies the simulation's headline
// property: the same seed reproduces the same run exactly.
func TestDeterministicClusterRuns(t *testing.T) {
	run := func() string {
		var log string
		var cluster *newswire.Cluster
		c, err := newswire.NewCluster(newswire.ClusterConfig{
			N: 12, Branching: 4, Seed: 4242,
			Customize: func(i int, cfg *newswire.Config) {
				node := i
				cfg.OnItem = func(it *newswire.Item, env *newswire.ItemEnvelope) {
					log += fmt.Sprintf("%d:%s@%s;", node, it.ID,
						cluster.Eng.Now().Format("15:04:05.000"))
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cluster = c
		for _, n := range cluster.Nodes {
			n.Subscribe("tech/linux")
		}
		cluster.RunRounds(8)
		it := &newswire.Item{
			Publisher: "p", ID: "det", Headline: "h", Body: "b",
			Subjects: []string{"tech/linux"}, Published: cluster.Eng.Now(),
		}
		cluster.Nodes[0].PublishItem(it, "", "")
		cluster.RunFor(10 * time.Second)
		sent, deliveredCt, dropped := cluster.Net.Totals()
		return fmt.Sprintf("%s|%d/%d/%d", log, sent, deliveredCt, dropped)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestFacadeConstructors exercises the thin wrappers the facade adds over
// internal/core.
func TestFacadeConstructors(t *testing.T) {
	realm, err := newswire.NewRealm(newswire.RealClock, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if realm.Store == nil {
		t.Fatal("realm has no certificate store")
	}
	// NewNode surfaces config errors.
	if _, err := newswire.NewNode(newswire.Config{}); err == nil {
		t.Fatal("empty node config accepted")
	}
}

func TestStartLiveErrors(t *testing.T) {
	// A bad listen address fails fast.
	if _, err := newswire.StartLive(newswire.LiveConfig{
		ListenAddr: "999.999.999.999:0",
	}); err == nil {
		t.Fatal("bad listen address accepted")
	}
	// A bad zone path fails after the listener opens (and closes it).
	if _, err := newswire.StartLive(newswire.LiveConfig{
		Node: newswire.Config{ZonePath: "not-a-zone"},
	}); err == nil {
		t.Fatal("bad zone path accepted")
	}
}

func TestStartLiveDefaults(t *testing.T) {
	ln, err := newswire.StartLive(newswire.LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Node().ZonePath() != "/default" {
		t.Fatalf("default zone = %q", ln.Node().ZonePath())
	}
	if ln.Node().Name() == "" {
		t.Fatal("no default name")
	}
	if ln.Addr() == "" {
		t.Fatal("no resolved address")
	}
}
