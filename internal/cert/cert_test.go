package cert

import (
	"errors"
	"testing"
	"time"
)

var testTime = time.Date(2002, time.April, 1, 12, 0, 0, 0, time.UTC)

func mustKey(t *testing.T) KeyPair {
	t.Helper()
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestRoleString(t *testing.T) {
	tests := []struct {
		role Role
		want string
	}{
		{RoleAuthority, "authority"},
		{RoleMember, "member"},
		{RolePublisher, "publisher"},
		{Role(99), "role(99)"},
	}
	for _, tt := range tests {
		if got := tt.role.String(); got != tt.want {
			t.Errorf("Role(%d).String() = %q, want %q", tt.role, got, tt.want)
		}
	}
}

func TestSignVerifyBlob(t *testing.T) {
	kp := mustKey(t)
	payload := []byte("news item body")
	sig := SignBlob("reuters", kp, payload)
	if sig.Signer != "reuters" {
		t.Fatalf("signer = %q", sig.Signer)
	}
	if err := VerifyBlob(sig, kp.Public, payload); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := VerifyBlob(sig, kp.Public, []byte("tampered")); err == nil {
		t.Fatal("tampered payload should fail verification")
	}
	other := mustKey(t)
	if err := VerifyBlob(sig, other.Public, payload); err == nil {
		t.Fatal("wrong key should fail verification")
	}
}

func TestIssueAndVerify(t *testing.T) {
	authority := mustKey(t)
	member := mustKey(t)
	c := Issue("root", authority, "node-1", RoleMember, member.Public, testTime.Add(time.Hour))
	if err := c.VerifyWith(authority.Public, testTime); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyExpired(t *testing.T) {
	authority := mustKey(t)
	member := mustKey(t)
	c := Issue("root", authority, "node-1", RoleMember, member.Public, testTime.Add(-time.Second))
	err := c.VerifyWith(authority.Public, testTime)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestVerifyTamperedFields(t *testing.T) {
	authority := mustKey(t)
	member := mustKey(t)
	c := Issue("root", authority, "node-1", RoleMember, member.Public, testTime.Add(time.Hour))

	tampered := *c
	tampered.Subject = "node-evil"
	if err := tampered.VerifyWith(authority.Public, testTime); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered subject: err = %v, want ErrBadSignature", err)
	}

	tampered = *c
	tampered.Role = RoleAuthority
	if err := tampered.VerifyWith(authority.Public, testTime); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered role: err = %v, want ErrBadSignature", err)
	}
}

func TestSelfSign(t *testing.T) {
	authority := mustKey(t)
	root := SelfSign("root", authority, testTime.Add(time.Hour))
	if root.Subject != root.Issuer {
		t.Fatal("self-signed cert must have subject == issuer")
	}
	if err := root.VerifyWith(authority.Public, testTime); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestChainVerify(t *testing.T) {
	rootKey := mustKey(t)
	zoneKey := mustKey(t)
	nodeKey := mustKey(t)
	exp := testTime.Add(time.Hour)

	root := SelfSign("root", rootKey, exp)
	zone := Issue("root", rootKey, "zone-usa", RoleAuthority, zoneKey.Public, exp)
	node := Issue("zone-usa", zoneKey, "node-1", RoleMember, nodeKey.Public, exp)

	leaf, err := Chain{root, zone, node}.Verify(testTime)
	if err != nil {
		t.Fatalf("chain verify: %v", err)
	}
	if leaf.Subject != "node-1" {
		t.Fatalf("leaf = %q, want node-1", leaf.Subject)
	}
}

func TestChainRejectsNonAuthorityIntermediate(t *testing.T) {
	rootKey := mustKey(t)
	midKey := mustKey(t)
	leafKey := mustKey(t)
	exp := testTime.Add(time.Hour)

	root := SelfSign("root", rootKey, exp)
	mid := Issue("root", rootKey, "mid", RoleMember, midKey.Public, exp) // not an authority
	leaf := Issue("mid", midKey, "leaf", RoleMember, leafKey.Public, exp)

	_, err := Chain{root, mid, leaf}.Verify(testTime)
	if !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("err = %v, want ErrNotAuthority", err)
	}
}

func TestChainRejectsWrongIssuer(t *testing.T) {
	rootKey := mustKey(t)
	zoneKey := mustKey(t)
	leafKey := mustKey(t)
	exp := testTime.Add(time.Hour)

	root := SelfSign("root", rootKey, exp)
	leaf := Issue("someone-else", zoneKey, "leaf", RoleMember, leafKey.Public, exp)

	_, err := Chain{root, leaf}.Verify(testTime)
	if !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("err = %v, want ErrBrokenChain", err)
	}
}

func TestChainRejectsEmptyAndBadRoot(t *testing.T) {
	if _, err := (Chain{}).Verify(testTime); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("empty chain: err = %v, want ErrBrokenChain", err)
	}
	rootKey := mustKey(t)
	notSelf := Issue("other", rootKey, "root", RoleAuthority, rootKey.Public, testTime.Add(time.Hour))
	if _, err := (Chain{notSelf}).Verify(testTime); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("non-self-signed root: err = %v, want ErrBrokenChain", err)
	}
	memberRoot := SelfSign("root", rootKey, testTime.Add(time.Hour))
	memberRoot.Role = RoleMember
	if _, err := (Chain{memberRoot}).Verify(testTime); !errors.Is(err, ErrNotAuthority) {
		t.Errorf("member root: err = %v, want ErrNotAuthority", err)
	}
}

func TestFingerprint(t *testing.T) {
	kp := mustKey(t)
	fp := Fingerprint(kp.Public)
	if len(fp) != 16 {
		t.Fatalf("fingerprint length = %d, want 16 hex chars", len(fp))
	}
	if Fingerprint(kp.Public) != fp {
		t.Fatal("fingerprint not deterministic")
	}
	short := Fingerprint([]byte{1, 2})
	if short != "0102" {
		t.Fatalf("short key fingerprint = %q", short)
	}
}

func TestStore(t *testing.T) {
	authority := mustKey(t)
	pubKey := mustKey(t)
	exp := testTime.Add(time.Hour)
	c := Issue("root", authority, "reuters", RolePublisher, pubKey.Public, exp)

	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Add(c)
	if s.Len() != 1 {
		t.Fatal("Add did not store")
	}
	got, ok := s.Lookup("reuters")
	if !ok || got.Subject != "reuters" {
		t.Fatal("Lookup failed")
	}
	if _, ok := s.Lookup("absent"); ok {
		t.Fatal("Lookup of absent subject succeeded")
	}
}

func TestStoreVerifySigned(t *testing.T) {
	authority := mustKey(t)
	pubKey := mustKey(t)
	exp := testTime.Add(time.Hour)
	s := NewStore()
	s.Add(Issue("root", authority, "reuters", RolePublisher, pubKey.Public, exp))

	payload := []byte("item")
	sig := SignBlob("reuters", pubKey, payload)

	if err := s.VerifySigned(sig, payload, authority.Public, testTime, RolePublisher); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong accepted role.
	if err := s.VerifySigned(sig, payload, authority.Public, testTime, RoleMember); err == nil {
		t.Fatal("wrong role should fail")
	}
	// Unknown signer.
	badSig := SignBlob("unknown", pubKey, payload)
	if err := s.VerifySigned(badSig, payload, authority.Public, testTime, RolePublisher); err == nil {
		t.Fatal("unknown signer should fail")
	}
	// Certificate not really from the authority.
	rogue := mustKey(t)
	s2 := NewStore()
	s2.Add(Issue("root", rogue, "reuters", RolePublisher, pubKey.Public, exp))
	if err := s2.VerifySigned(sig, payload, authority.Public, testTime, RolePublisher); err == nil {
		t.Fatal("rogue-issued certificate should fail")
	}
	// Tampered payload.
	if err := s.VerifySigned(sig, []byte("other"), authority.Public, testTime, RolePublisher); err == nil {
		t.Fatal("tampered payload should fail")
	}
}

func TestGenerateKeyPairDeterministicSource(t *testing.T) {
	// Two keys from crypto/rand must differ.
	a := mustKey(t)
	b := mustKey(t)
	if string(a.Public) == string(b.Public) {
		t.Fatal("two generated keys are identical")
	}
}
