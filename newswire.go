// Package newswire is the public API of the NewsWire collaborative news
// delivery infrastructure — a reproduction of "A Collaborative
// Infrastructure for Scalable and Robust News Delivery" (Vogels, Re,
// van Renesse, Birman; ICDCS Workshops 2002).
//
// A NewsWire deployment is a peer-to-peer publish/subscribe network built
// on an Astrolabe-style gossip hierarchy: every participant runs the same
// node, which is simultaneously an Astrolabe leaf agent, a multicast
// forwarding component, a subscriber with a Bloom-filter subscription
// summary, and an end-system message cache. Publishers are ordinary nodes
// holding a publisher certificate.
//
// Two ways to run a node:
//
//   - Simulated: NewCluster builds N nodes on a deterministic
//     discrete-event network in one process (virtual time, latency/loss
//     models, failure injection). All experiments in EXPERIMENTS.md run
//     this way.
//   - Live: StartLive runs one node over TCP with a real clock; see
//     cmd/newswired.
//
// Quick start (simulated):
//
//	cluster, err := newswire.NewCluster(newswire.ClusterConfig{N: 32, Seed: 1})
//	...
//	cluster.Nodes[1].Subscribe("tech/linux")
//	cluster.RunRounds(10)
//	cluster.Nodes[0].PublishItem(item, "", "")
//	cluster.RunFor(10 * time.Second)
package newswire

import (
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/sim"
	"newswire/internal/trace"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// Core node and cluster types.
type (
	// Node is one NewsWire participant: subscriber, forwarder, cache
	// and (optionally) publisher in a single application.
	Node = core.Node
	// Config configures a Node.
	Config = core.Config
	// Cluster is a simulated multi-node deployment.
	Cluster = core.Cluster
	// ClusterConfig configures a simulated deployment.
	ClusterConfig = core.ClusterConfig
	// ItemHandler receives delivered news items.
	ItemHandler = core.ItemHandler
	// Security wires certificates into a node.
	Security = core.Security
	// Realm is a convenience certificate authority for tests/examples.
	Realm = core.Realm
)

// News model types.
type (
	// Item is one news item revision with its NITF-like metadata.
	Item = news.Item
	// ItemEnvelope is the wire form of a published item.
	ItemEnvelope = wire.ItemEnvelope
)

// Subscription-summary modes (paper §6–7).
type Mode = pubsub.Mode

// Subscription summary representations.
const (
	// ModeBloom is the paper's Bloom-filter design (§6).
	ModeBloom = pubsub.ModeBloom
	// ModeAttributes is the per-subscription attribute strawman §6
	// rejects (kept for experiment E8).
	ModeAttributes = pubsub.ModeAttributes
	// ModeCategoryMask is the early prototype's per-publisher category
	// bit masks (§7).
	ModeCategoryMask = pubsub.ModeCategoryMask
	// ModePredicate is the §7 target design: typed SQL predicates
	// compiled to sound Bloom signatures, with zone subgrouping.
	ModePredicate = pubsub.ModePredicate
)

// ParseMode maps a mode name ("bloom", "attributes", "category-mask",
// "predicate") to its Mode; empty selects ModeBloom.
func ParseMode(name string) (Mode, error) { return pubsub.ParseMode(name) }

// Geometry fixes the shared Bloom filter shape.
type Geometry = pubsub.Geometry

// LinkModel describes simulated network links.
type LinkModel = sim.LinkModel

// DefaultWAN is a 2002-era wide-area link model (20–180 ms, 1% loss).
var DefaultWAN = sim.DefaultWAN

// RootZone is the path of the root zone ("/").
const RootZone = astrolabe.RootZone

// StandardSubjects is the default subscription-subject vocabulary.
var StandardSubjects = news.StandardSubjects

// NewNode assembles a single node from cfg.
func NewNode(cfg Config) (*Node, error) { return core.NewNode(cfg) }

// NewCluster builds a bootstrapped simulated deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewCluster(cfg) }

// NewRealm creates a certificate authority whose Member and Publisher
// methods mint node and publisher identities with the given certificate
// lifetime.
func NewRealm(clock vtime.Clock, ttl time.Duration) (*Realm, error) {
	return core.NewRealm(clock, ttl)
}

// Clock is the time source abstraction shared by live and simulated runs.
type Clock = vtime.Clock

// RealClock is the wall clock, for live nodes.
var RealClock Clock = vtime.Real{}

// Delivery tracing types (see internal/trace): spans explain a single
// item's hop-by-hop journey; recorders plug into Config.Tracer.
type (
	// TraceSpan is one recorded delivery event.
	TraceSpan = trace.Span
	// TraceRecorder receives spans (nil on a Config disables tracing).
	TraceRecorder = trace.Recorder
	// TraceRing is the bounded span recorder live nodes use.
	TraceRing = trace.Ring
	// TraceCollector is the deterministic recorder simulated clusters use.
	TraceCollector = trace.Collector
)

// NewTraceRing returns a bounded live-node span recorder (cap <= 0
// selects the default capacity).
func NewTraceRing(cap int) *TraceRing { return trace.NewRing(cap) }
