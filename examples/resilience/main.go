// Resilience: the robustness story of the abstract — "guarantees delivery
// even in the face of publisher overload or denial of service attacks" —
// and of §9-10: redundant representatives, failure detection with
// automatic zone reconfiguration, and cache-based end-to-end recovery.
//
// The demo crashes 20% of a 64-node cluster mid-stream, shows that
// k=3-redundant forwarding plus ack/retry forwarding (per-forward acks,
// retransmission with backoff, representative failover) keeps deliveries
// flowing, lets failure detection re-elect representatives, and recovers
// the stragglers from zone peers' caches. It then launches a flooding
// publisher and shows per-publisher admission control clipping it while
// legitimate traffic is untouched.
//
// Run with: go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"time"

	"newswire"
	"newswire/internal/news"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== NewsWire resilience: failures, reconfiguration, DoS ==")

	const n = 64
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         n,
		Branching: 8,
		Seed:      13,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.RepCount = 3             // k-redundant forwarding (§9-10)
			cfg.AckTimeout = time.Second // reliable forwarding: ack/retry/failover
			cfg.PublishRate = 2          // admission control per publisher (§8)
			cfg.PublishBurst = 6
		},
	})
	if err != nil {
		return err
	}
	for _, node := range cluster.Nodes {
		if err := node.Subscribe("world/americas"); err != nil {
			return err
		}
	}
	cluster.RunRounds(10)

	publish := func(id string) error {
		it := &news.Item{
			Publisher: "reuters", ID: id, Headline: id, Body: "body",
			Subjects:  []string{"world/americas"},
			Published: cluster.Eng.Now(),
		}
		return cluster.Nodes[0].PublishItem(it, "", "")
	}
	countHaving := func(prefix string, k int) int {
		have := 0
		for _, node := range cluster.Nodes {
			if cluster.Net.Crashed(node.Addr()) {
				continue
			}
			all := true
			for i := 0; i < k; i++ {
				if !node.Cache().Has(fmt.Sprintf("reuters/%s-%d#0", prefix, i)) {
					all = false
				}
			}
			if all {
				have++
			}
		}
		return have
	}

	// --- Phase 1: kill 20% of the nodes, then publish. ---
	fmt.Println("\n-- phase 1: crash 13 of 64 nodes, publish 5 items --")
	for i := 0; i < 13; i++ {
		victim := cluster.Nodes[3+i*4]
		cluster.Net.Crash(victim.Addr())
	}
	for i := 0; i < 5; i++ {
		if err := publish(fmt.Sprintf("breaking-%d", i)); err != nil {
			return err
		}
	}
	cluster.RunFor(15 * time.Second)
	live := 0
	for _, node := range cluster.Nodes {
		if !cluster.Net.Crashed(node.Addr()) {
			live++
		}
	}
	fmt.Printf("live nodes with all 5 items (k=3, stale tables): %d of %d\n",
		countHaving("breaking", 5), live)
	var retries, failovers, acks int64
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		st := node.Router().Stats()
		retries += st.RetriesSent
		failovers += st.FailoversTotal
		acks += st.AcksReceived
	}
	fmt.Printf("reliable forwarding: %d acks received, %d retries, %d rep failovers\n",
		acks, retries, failovers)

	// --- Phase 2: failure detection + cache recovery close the gap. ---
	fmt.Println("\n-- phase 2: failure detection + end-to-end cache recovery --")
	cluster.RunRounds(14) // past the failure timeout: reps re-elected
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		if node.Delivered() < 5 {
			_ = node.RecoverFromZonePeer(20)
		}
	}
	cluster.RunFor(10 * time.Second)
	fmt.Printf("after recovery: %d of %d live nodes have all 5 items\n",
		countHaving("breaking", 5), live)

	// --- Phase 3: denial of service by a flooding publisher. ---
	fmt.Println("\n-- phase 3: flooding publisher vs. admission control --")
	flooder := cluster.Nodes[1]
	admitted := 0
	for i := 0; i < 60; i++ {
		it := &news.Item{
			Publisher: "spammer", ID: fmt.Sprintf("junk-%d", i),
			Headline: "junk", Body: "junk",
			Subjects:  []string{"world/americas"},
			Published: cluster.Eng.Now(),
		}
		if err := flooder.PublishItem(it, "", ""); err == nil {
			admitted++
		}
	}
	if err := publish("legit-0"); err != nil {
		return err
	}
	cluster.RunFor(15 * time.Second)
	// Anti-entropy: stragglers (1% link loss) recover from peer caches.
	for _, node := range cluster.Nodes {
		if !cluster.Net.Crashed(node.Addr()) && !node.Cache().Has("reuters/legit-0#0") {
			_ = node.RecoverFromZonePeer(10)
		}
	}
	cluster.RunFor(5 * time.Second)

	var junkDeliveries, denied int64
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		denied += node.DeniedPublications("spammer")
	}
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		for i := 0; i < 60; i++ {
			if node.Cache().Has(fmt.Sprintf("spammer/junk-%d#0", i)) {
				junkDeliveries++
			}
		}
	}
	fmt.Printf("flood: 60 junk items offered, %d admitted at the source\n", admitted)
	fmt.Printf("forwarder admission control denials: %d\n", denied)
	fmt.Printf("junk deliveries: %d of %d possible\n", junkDeliveries, int64(60*live))
	fmt.Printf("legitimate item delivered to %d of %d live nodes\n",
		countHaving("legit", 1), live)
	return nil
}
