package newswire_test

import (
	"fmt"
	"time"

	"newswire"
)

// ExampleNewCluster shows the end-to-end flow: build a simulated
// deployment, subscribe, let the subscription summaries aggregate, publish
// and count deliveries. The simulation is deterministic, so this example
// has stable output.
func ExampleNewCluster() {
	delivered := 0
	var cluster *newswire.Cluster
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         16,
		Branching: 4,
		Seed:      7,
		Customize: func(i int, cfg *newswire.Config) {
			// Reliable forwarding: the default link model loses 1% of
			// frames, so exact delivery counts need ack/retry.
			cfg.AckTimeout = time.Second
			cfg.OnItem = func(it *newswire.Item, env *newswire.ItemEnvelope) {
				delivered++
			}
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// Half the nodes follow Linux news.
	for i := 0; i < 8; i++ {
		if err := cluster.Nodes[i].Subscribe("tech/linux"); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	cluster.RunRounds(8) // aggregate the subscription Bloom filters

	item := &newswire.Item{
		Publisher: "slashdot",
		ID:        "kernel",
		Headline:  "Kernel released",
		Body:      "...",
		Subjects:  []string{"tech/linux"},
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[15].PublishItem(item, "", ""); err != nil {
		fmt.Println("error:", err)
		return
	}
	cluster.RunFor(10 * time.Second)

	fmt.Printf("delivered to %d of 8 subscribers\n", delivered)
	// Output: delivered to 8 of 8 subscribers
}
