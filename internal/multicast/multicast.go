// Package multicast implements the Astrolabe-based application-level
// multicast of paper §5: SendToZone(zone, data) walks the zone hierarchy,
// consulting each zone's aggregated table to find per-child-zone
// representatives (elected by the aggregation function on load and
// availability) and forwarding recursively until leaves deliver to the
// application.
//
// Redundant delivery through k representatives (in the manner of the MIT
// mesh-routing work the paper cites) is supported; duplicates are
// suppressed via the items' unique publisher/ID/revision keys (§9).
// The selective pub/sub forwarding of §6 plugs in through the Filter hook.
//
// With Config.AckTimeout set, forwarding is reliable rather than
// fire-and-forget: every forward requests a MulticastAck, unacknowledged
// forwards are retransmitted with exponential jittered backoff, and on
// each retry the sender re-consults the aggregated zone table and fails
// over to the next-best representative of the child zone (excluding those
// already tried). Retransmits are idempotent — the duplicate-suppression
// log absorbs re-sent copies, so reliability never causes duplicate
// deliveries.
package multicast

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/sqlagg"
	"newswire/internal/trace"
	"newswire/internal/transport"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// View is the slice of an Astrolabe agent the router needs: the replicated
// zone tables and the agent's own placement. *astrolabe.Agent implements it.
type View interface {
	Addr() string
	Name() string
	ZonePath() string
	Chain() []string
	Table(zone string) ([]astrolabe.Row, bool)
	Row(zone, name string) (astrolabe.Row, bool)
}

var _ View = (*astrolabe.Agent)(nil)

// Filter decides whether an item should be forwarded toward the subtree
// or member described by row (the pub/sub Bloom test of §6). zone is the
// table the row came from. A nil Filter forwards everything (pure
// multicast).
type Filter func(zone string, row astrolabe.Row, env *wire.ItemEnvelope) bool

// Deliver consumes an item that reached this leaf.
type Deliver func(env *wire.ItemEnvelope)

// Sender transmits a message to a peer; the default sends directly on the
// transport. The forwarding-queue ablation (A1) substitutes a queued
// sender.
type Sender func(to string, msg *wire.Message) error

// Config configures a Router.
type Config struct {
	View      View
	Transport transport.Transport
	// RepCount is how many of a child zone's representatives receive
	// each forward (k-redundant dissemination, §9–10). Default 1.
	RepCount int
	// Rand drives representative choice among candidates. Required.
	Rand *rand.Rand
	// Filter gates forwarding per child row (nil forwards everything).
	Filter Filter
	// Deliver receives items for the local application. Required.
	Deliver Deliver
	// Sender overrides direct transport sends (used by queue ablations).
	Sender Sender
	// MaxHops bounds forwarding depth. Default 64.
	MaxHops int
	// LogSize bounds the in-memory forwarding log (§9). Default 1024.
	LogSize int
	// DedupWindow bounds the duplicate-suppression state: the router
	// remembers this many recent item keys for forwarding and delivery
	// dedup, evicting oldest-first. Older items falling out of the
	// window are instead deduplicated by the end-system cache. Default
	// 8192.
	DedupWindow int
	// VerifyEnvelope, when set, authenticates items before forwarding or
	// delivery; failing envelopes are dropped.
	VerifyEnvelope func(env *wire.ItemEnvelope) error

	// AckTimeout, when positive, makes forwarding reliable: every forward
	// carries an AckSeq, and a forward not acknowledged within the
	// deadline is retransmitted with exponential backoff (doubling per
	// attempt, ±RetryJitter), failing over to the next-best
	// representative from a fresh read of the zone table. 0 keeps the
	// paper's fire-and-forget forwarding.
	AckTimeout time.Duration
	// After schedules a callback after a delay, driving retransmit
	// deadlines. Simulated deployments wire the event engine (so retries
	// happen in virtual time); live nodes may leave it nil to get
	// time.AfterFunc. Only consulted when AckTimeout > 0.
	After func(d time.Duration, fn func())
	// MaxAttempts caps transmissions per reliable forward, the initial
	// send included. Default 4.
	MaxAttempts int
	// RetryJitter is the ± fraction of random spread applied to each
	// backoff delay. Default 0.2.
	RetryJitter float64
	// MaxPendingAcks bounds the retransmit table; forwards beyond it
	// degrade to fire-and-forget rather than queueing unboundedly.
	// Default 8192.
	MaxPendingAcks int

	// OnDeliveryFailure, when set, is called after a reliable forward is
	// abandoned at MaxAttempts, with the item's key and trace ID, the
	// target zone, the last address tried, and the attempt count. Runs on
	// the deadline callback's goroutine; keep it fast.
	OnDeliveryFailure func(key string, traceID uint64, zone, to string, attempts int)

	// Tracer, when non-nil, receives a delivery-trace span for every
	// forwarding decision this router makes (publish, forward, deliver,
	// ack, retry, failover, dedup drop, abandoned forward). Nil disables
	// tracing; the disabled path costs one nil check per would-be span.
	Tracer trace.Recorder
	// Clock stamps trace spans (virtual time in simulation, wall clock
	// live). Defaults to the wall clock; only consulted when Tracer is
	// set.
	Clock vtime.Clock
}

// Stats counts router activity.
type Stats struct {
	Published   int64
	Forwarded   int64
	Delivered   int64
	Duplicates  int64
	FilteredOut int64
	// FilteredZone/FilteredLeaf split FilteredOut by where the summary
	// test said no: child-zone rows on the way down vs. sibling members in
	// the final leaf fan-out. Zone-level filtering is the precision win —
	// a pruned subtree saves every hop below it.
	FilteredZone int64
	FilteredLeaf int64
	BadEnvelope  int64

	// Reliable-forwarding counters (zero when AckTimeout is off).
	AcksSent         int64 // acks this node sent for inbound forwards
	AcksReceived     int64 // acks that resolved a pending forward
	RetriesSent      int64 // retransmissions after an ack deadline
	FailoversTotal   int64 // retries that switched representative
	DeliveryFailures int64 // forwards abandoned after MaxAttempts

	// Chaos-injection counters (ScrambleState).
	DedupScrambled   int64 // dedup-log entries dropped by state scrambling
	PendingScrambled int64 // pending reliable forwards dropped by scrambling
}

// LogEntry records one forwarding decision (§9's forwarder log).
type LogEntry struct {
	Key   string
	Zone  string
	Dests []string
}

// Router implements SendToZone and the forwarding component of a node.
type Router struct {
	cfg  Config
	view View
	rq   *retransmitQueue // nil when AckTimeout is off
	// frames, when non-nil, is the transport's encode-once fan-out path:
	// one wire.Frame shared by reference across every recipient of a
	// fan-out. Set only when the caller did not override Sender (the
	// override must see every message) and forwarding is fire-and-forget
	// (acked forwards carry per-destination AckSeqs, so they cannot share
	// an encoding).
	frames transport.FrameSender

	mu        sync.Mutex
	seen      map[string]map[string]bool // item key -> zones handled
	seenOrder []string                   // insertion order for eviction
	delivered map[string]bool            // item key -> delivered locally
	dlvOrder  []string
	log       []LogEntry
	logNext   int
	stats     Stats
	preds     map[string]*sqlagg.Predicate
}

// NewRouter validates cfg and returns a router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.View == nil {
		return nil, fmt.Errorf("multicast: view required")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("multicast: transport required")
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("multicast: rand required")
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("multicast: deliver callback required")
	}
	if cfg.RepCount <= 0 {
		cfg.RepCount = 1
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 64
	}
	if cfg.LogSize <= 0 {
		cfg.LogSize = 1024
	}
	defaultSender := cfg.Sender == nil
	if defaultSender {
		tr := cfg.Transport
		cfg.Sender = func(to string, msg *wire.Message) error { return tr.Send(to, msg) }
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 8192
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryJitter <= 0 {
		cfg.RetryJitter = 0.2
	}
	if cfg.MaxPendingAcks <= 0 {
		cfg.MaxPendingAcks = 8192
	}
	if cfg.AckTimeout > 0 && cfg.After == nil {
		cfg.After = func(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	r := &Router{
		cfg:       cfg,
		view:      cfg.View,
		seen:      make(map[string]map[string]bool),
		delivered: make(map[string]bool),
		preds:     make(map[string]*sqlagg.Predicate),
	}
	if cfg.AckTimeout > 0 {
		r.rq = newRetransmitQueue(cfg.MaxPendingAcks)
	}
	if defaultSender && r.rq == nil {
		// The simulated transport passes messages by reference and does
		// not implement FrameSender, so this stays nil there and the
		// deterministic scheduler sees the exact same Send sequence.
		if fs, ok := cfg.Transport.(transport.FrameSender); ok {
			r.frames = fs
		}
	}
	return r, nil
}

// traceSpan stamps and records one delivery-trace span. Callers must
// check r.cfg.Tracer != nil first, so the disabled path pays exactly that
// nil comparison and never builds a span (or an envelope key string).
func (r *Router) traceSpan(s trace.Span) {
	s.Node = r.view.Addr()
	s.At = r.cfg.Clock.Now()
	r.cfg.Tracer.Record(s)
}

// Stats returns a copy of the router's counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Log returns a copy of the forwarding log, oldest first.
func (r *Router) Log() []LogEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LogEntry, 0, len(r.log))
	if len(r.log) == r.cfg.LogSize {
		out = append(out, r.log[r.logNext:]...)
	}
	out = append(out, r.log[:r.logNext]...)
	return out
}

// Publish injects an item at this node, disseminating it to every
// subscribed leaf under scope ("" or "/" means the whole system —
// SendToZone with the root zone, §5).
func (r *Router) Publish(env wire.ItemEnvelope, scope string) error {
	if scope == "" {
		scope = astrolabe.RootZone
	}
	if err := astrolabe.ValidateZonePath(scope); err != nil {
		return err
	}
	env.ScopeZone = scope
	r.mu.Lock()
	r.stats.Published++
	r.mu.Unlock()
	// The trace ID is a pure function of the envelope key, so stamping it
	// unconditionally keeps traced and untraced runs byte-identical on the
	// wire while letting spans from different processes join on it.
	tid := trace.DeriveTraceID(env.Key())
	if r.cfg.Tracer != nil {
		r.traceSpan(trace.Span{Kind: trace.KindPublish, Key: env.Key(), TraceID: tid, Zone: scope})
	}
	r.route(&wire.Multicast{TargetZone: scope, TraceID: tid, Envelope: env})
	return nil
}

// HandleMessage processes an inbound multicast forward or ack. Other
// message kinds are ignored.
func (r *Router) HandleMessage(msg *wire.Message) {
	if msg.Kind == wire.KindMulticastAck && msg.MulticastAck != nil {
		r.handleAck(msg.MulticastAck, msg.From)
		return
	}
	if msg.Kind != wire.KindMulticast || msg.Multicast == nil {
		return
	}
	m := msg.Multicast
	if m.Hops > r.cfg.MaxHops {
		return
	}
	if r.cfg.VerifyEnvelope != nil {
		if err := r.cfg.VerifyEnvelope(&m.Envelope); err != nil {
			r.mu.Lock()
			r.stats.BadEnvelope++
			r.mu.Unlock()
			// No ack: a forward this node discards as unverifiable was
			// not delivered, and the sender should not believe it was.
			return
		}
	}
	// Acknowledge before the dedup check: a retransmitted copy of an
	// already-handled forward still needs its ack (the first one may have
	// been lost), and the duplicate-suppression log below keeps the
	// retransmit idempotent.
	if m.AckSeq != 0 && msg.From != "" {
		r.mu.Lock()
		r.stats.AcksSent++
		r.mu.Unlock()
		_ = r.cfg.Transport.Send(msg.From, &wire.Message{
			Kind: wire.KindMulticastAck,
			MulticastAck: &wire.MulticastAck{
				Seq:        m.AckSeq,
				Key:        m.Envelope.Key(),
				TargetZone: m.TargetZone,
			},
		})
	}
	if m.Deliver {
		r.deliverLocal(m.TraceID, &m.Envelope)
		return
	}
	r.route(m)
}

// handleAck resolves the pending forward the ack confirms; late, stale or
// mismatched acks are ignored.
func (r *Router) handleAck(a *wire.MulticastAck, from string) {
	if r.rq == nil {
		return
	}
	if p := r.rq.ack(a.Seq, a.Key, from); p != nil {
		r.mu.Lock()
		r.stats.AcksReceived++
		r.mu.Unlock()
		if r.cfg.Tracer != nil {
			to := p.addr
			if p.fan != nil {
				to = from
			}
			r.traceSpan(trace.Span{
				Kind: trace.KindAck, Key: a.Key, TraceID: p.msg.TraceID,
				Zone: a.TargetZone, To: to, Attempt: p.attempt,
			})
		}
	}
}

// route fans the item out for the subtree rooted at m.TargetZone.
func (r *Router) route(m *wire.Multicast) {
	key := m.Envelope.Key()
	target := m.TargetZone

	// Forwarding dedup: handle each (item, zone) pair once per node, so
	// k-redundant parents don't multiply traffic exponentially.
	r.mu.Lock()
	zones := r.seen[key]
	if zones == nil {
		zones = make(map[string]bool)
		r.seen[key] = zones
		r.seenOrder = append(r.seenOrder, key)
		for len(r.seenOrder) > r.cfg.DedupWindow {
			delete(r.seen, r.seenOrder[0])
			r.seenOrder = r.seenOrder[1:]
		}
	}
	if zones[target] {
		r.stats.Duplicates++
		r.mu.Unlock()
		if r.cfg.Tracer != nil {
			r.traceSpan(trace.Span{
				Kind: trace.KindDedupDrop, Key: key, TraceID: m.TraceID,
				Zone: target, Hop: m.Hops, Note: "forward-dup",
			})
		}
		return
	}
	zones[target] = true
	r.mu.Unlock()

	chain := r.view.Chain()
	onChain := false
	for _, z := range chain {
		if z == target {
			onChain = true
			break
		}
	}
	if !onChain {
		// The target is not on our chain: route toward it through the
		// deepest chain zone that contains it (publishing into a remote
		// zone, §8).
		r.routeToward(m)
		return
	}

	if target == r.view.ZonePath() {
		r.fanOutLeafZone(m)
		return
	}
	r.fanOutChildZones(m)
}

// routeToward sends m to representatives of the remote subtree containing
// TargetZone.
func (r *Router) routeToward(m *wire.Multicast) {
	chain := r.view.Chain()
	// Deepest chain zone that contains the target.
	var anchor string
	for _, z := range chain {
		if astrolabe.ZoneContains(z, m.TargetZone) {
			anchor = z
		}
	}
	if anchor == "" {
		return
	}
	child, ok := astrolabe.ChildToward(anchor, m.TargetZone)
	if !ok {
		return
	}
	row, ok := r.view.Row(anchor, astrolabe.ZoneName(child))
	if !ok {
		return
	}
	r.forwardToRow(anchor, row, m, m.TargetZone)
}

// fanOutChildZones handles a target that is a proper ancestor of this
// node's leaf zone: consult the target's table and forward per child.
func (r *Router) fanOutChildZones(m *wire.Multicast) {
	rows, ok := r.view.Table(m.TargetZone)
	if !ok {
		return
	}
	ownChild, _ := astrolabe.ChildToward(m.TargetZone, r.view.ZonePath())
	ownName := astrolabe.ZoneName(ownChild)

	for _, row := range rows {
		childZone := astrolabe.JoinZone(m.TargetZone, row.Name)
		if !r.passesFilter(m.TargetZone, row, &m.Envelope) {
			r.mu.Lock()
			r.stats.FilteredOut++
			r.stats.FilteredZone++
			r.mu.Unlock()
			continue
		}
		if row.Name == ownName {
			// We are inside this child: recurse locally instead of
			// taking a network hop.
			r.route(&wire.Multicast{
				TargetZone: childZone,
				Hops:       m.Hops,
				TraceID:    m.TraceID,
				Envelope:   m.Envelope,
			})
			continue
		}
		r.forwardToRow(m.TargetZone, row, m, childZone)
	}
}

// fanOutLeafZone handles a target equal to this node's leaf zone: deliver
// locally and send final-delivery copies to the other subscribed members.
func (r *Router) fanOutLeafZone(m *wire.Multicast) {
	rows, ok := r.view.Table(m.TargetZone)
	if !ok {
		return
	}
	// With a frame-capable transport the deliver-copies are identical for
	// every member, so collect the recipients and encode once.
	var fanAddrs, fanRows []string
	for _, row := range rows {
		if !r.passesFilter(m.TargetZone, row, &m.Envelope) {
			r.mu.Lock()
			r.stats.FilteredOut++
			r.stats.FilteredLeaf++
			r.mu.Unlock()
			continue
		}
		if row.Name == r.view.Name() {
			r.deliverLocal(m.TraceID, &m.Envelope)
			continue
		}
		addr, ok := row.Attrs[astrolabe.AttrAddr].AsString()
		if !ok {
			continue
		}
		if r.frames != nil {
			fanAddrs = append(fanAddrs, addr)
			fanRows = append(fanRows, row.Name)
		} else {
			r.sendTracked(m.TargetZone, row.Name, addr, &wire.Multicast{
				TargetZone: m.TargetZone,
				Hops:       m.Hops + 1,
				Deliver:    true,
				TraceID:    m.TraceID,
				Envelope:   m.Envelope,
			})
		}
		r.logForward(m.Envelope.Key(), m.TargetZone, []string{addr})
	}
	if len(fanAddrs) > 0 {
		r.sendShared(m.TargetZone, fanAddrs, fanRows, &wire.Multicast{
			TargetZone: m.TargetZone,
			Hops:       m.Hops + 1,
			Deliver:    true,
			TraceID:    m.TraceID,
			Envelope:   m.Envelope,
		})
	}
}

// forwardToRow sends m toward the zone summarized by row, via up to
// RepCount of its representatives.
func (r *Router) forwardToRow(zone string, row astrolabe.Row, m *wire.Multicast, nextTarget string) {
	reps, ok := row.Attrs[astrolabe.AttrReps].AsStrings()
	if !ok || len(reps) == 0 {
		if addr, ok := row.Attrs[astrolabe.AttrAddr].AsString(); ok {
			reps = []string{addr}
		} else {
			return
		}
	}
	k := r.cfg.RepCount
	if k > len(reps) {
		k = len(reps)
	}
	// Random subset of size k for load spreading ("a set of local
	// criteria", §5).
	r.cfg.Rand.Shuffle(len(reps), func(i, j int) { reps[i], reps[j] = reps[j], reps[i] })
	chosen := reps[:k]
	var fanAddrs []string
	for _, addr := range chosen {
		if addr == r.view.Addr() {
			// We happen to be a representative of the child: recurse
			// locally.
			r.route(&wire.Multicast{TargetZone: nextTarget, Hops: m.Hops, TraceID: m.TraceID, Envelope: m.Envelope})
			continue
		}
		if r.frames != nil {
			fanAddrs = append(fanAddrs, addr)
		} else {
			r.sendTracked(zone, row.Name, addr, &wire.Multicast{
				TargetZone: nextTarget,
				Hops:       m.Hops + 1,
				TraceID:    m.TraceID,
				Envelope:   m.Envelope,
			})
		}
	}
	if len(fanAddrs) > 0 {
		fanRows := make([]string, len(fanAddrs))
		for i := range fanRows {
			fanRows[i] = row.Name
		}
		r.sendShared(zone, fanAddrs, fanRows, &wire.Multicast{
			TargetZone: nextTarget,
			Hops:       m.Hops + 1,
			TraceID:    m.TraceID,
			Envelope:   m.Envelope,
		})
	}
	r.logForward(m.Envelope.Key(), nextTarget, chosen)
}

// sendTracked transmits m to addr, registering it for ack tracking and
// retransmission when reliable forwarding is on. zone and rowName record
// where the destination came from, so a retry can re-consult the (possibly
// fresher) table and fail over to an alternate representative.
func (r *Router) sendTracked(zone, rowName, addr string, m *wire.Multicast) {
	if r.rq == nil {
		r.send(addr, m)
		return
	}
	p := &pendingForward{
		addr:    addr,
		zone:    zone,
		rowName: rowName,
		msg:     *m,
		attempt: 1,
		tried:   map[string]bool{addr: true},
	}
	seq, ok := r.rq.register(p)
	if !ok {
		// Retransmit table full: degrade to fire-and-forget rather than
		// queueing unboundedly (the end-to-end cache recovery still backs
		// this forward up).
		r.send(addr, m)
		return
	}
	m.AckSeq = seq
	r.send(addr, m)
	r.scheduleDeadline(seq, 1)
}

// scheduleDeadline arms the ack deadline for attempt n of pending forward
// seq: AckTimeout doubled per attempt, spread by ±RetryJitter.
func (r *Router) scheduleDeadline(seq uint64, attempt int) {
	d := r.cfg.AckTimeout << (attempt - 1)
	r.mu.Lock()
	jitter := 1 + r.cfg.RetryJitter*(2*r.cfg.Rand.Float64()-1)
	r.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	r.cfg.After(d, func() { r.onAckDeadline(seq) })
}

// onAckDeadline fires when a reliable forward's ack deadline passes: if
// the forward is still pending it is retransmitted — to the next-best
// representative the zone table lists when one remains untried, otherwise
// to the same address — until MaxAttempts is exhausted.
func (r *Router) onAckDeadline(seq uint64) {
	p := r.rq.take(seq)
	if p == nil {
		return // acked in time
	}
	if p.fan != nil {
		// Shared-frame fan-out: hand every recipient still silent to the
		// per-destination retransmit path, where it gets its own sequence
		// number, backoff, and failover. Deterministic order matters —
		// the simulator replays identically seeded runs bit-for-bit.
		addrs := make([]string, 0, len(p.fan))
		for addr := range p.fan {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		r.mu.Lock()
		r.stats.RetriesSent += int64(len(addrs))
		r.mu.Unlock()
		for _, addr := range addrs {
			if r.cfg.Tracer != nil {
				r.traceSpan(trace.Span{
					Kind: trace.KindRetry, Key: p.msg.Envelope.Key(),
					TraceID: p.msg.TraceID,
					Zone:    p.msg.TargetZone, To: addr, Attempt: 2,
				})
			}
			m := p.msg
			m.AckSeq = 0
			r.sendTracked(p.zone, p.fan[addr], addr, &m)
		}
		return
	}
	if p.attempt >= r.cfg.MaxAttempts {
		r.mu.Lock()
		r.stats.DeliveryFailures++
		r.mu.Unlock()
		if r.cfg.Tracer != nil {
			r.traceSpan(trace.Span{
				Kind: trace.KindDeliveryFail, Key: p.msg.Envelope.Key(),
				TraceID: p.msg.TraceID,
				Zone:    p.msg.TargetZone, To: p.addr, Attempt: p.attempt,
			})
		}
		if r.cfg.OnDeliveryFailure != nil {
			r.cfg.OnDeliveryFailure(p.msg.Envelope.Key(), p.msg.TraceID,
				p.msg.TargetZone, p.addr, p.attempt)
		}
		return
	}
	addr := r.failoverAddr(p)
	p.attempt++
	r.mu.Lock()
	r.stats.RetriesSent++
	if addr != p.addr {
		r.stats.FailoversTotal++
	}
	r.mu.Unlock()
	if r.cfg.Tracer != nil {
		r.traceSpan(trace.Span{
			Kind: trace.KindRetry, Key: p.msg.Envelope.Key(),
			TraceID: p.msg.TraceID,
			Zone:    p.msg.TargetZone, To: addr, Attempt: p.attempt,
		})
		if addr != p.addr {
			r.traceSpan(trace.Span{
				Kind: trace.KindFailover, Key: p.msg.Envelope.Key(),
				TraceID: p.msg.TraceID,
				Zone:    p.msg.TargetZone, To: addr, Attempt: p.attempt,
				Note: "from " + p.addr,
			})
		}
	}
	p.addr = addr
	p.tried[addr] = true
	r.rq.reinsert(p)
	m := p.msg // fresh copy per transmission; AckSeq is already seq
	r.send(addr, &m)
	r.logForward(p.msg.Envelope.Key(), p.msg.TargetZone, []string{addr})
	r.scheduleDeadline(seq, p.attempt)
}

// failoverAddr re-consults the zone table the original forward was routed
// from and returns the best representative not yet tried; when the table
// offers nothing new (vanished row, every candidate tried) it falls back
// to the current address.
func (r *Router) failoverAddr(p *pendingForward) string {
	row, ok := r.view.Row(p.zone, p.rowName)
	if !ok {
		return p.addr
	}
	reps, ok := row.Attrs[astrolabe.AttrReps].AsStrings()
	if !ok || len(reps) == 0 {
		if addr, ok := row.Attrs[astrolabe.AttrAddr].AsString(); ok {
			reps = []string{addr}
		} else {
			return p.addr
		}
	}
	// reps is ranked best-first by the REPS election aggregate, so the
	// first untried candidate is the next-best representative.
	for _, cand := range reps {
		if cand == r.view.Addr() || p.tried[cand] {
			continue
		}
		return cand
	}
	return p.addr
}

// ScrambleState is the chaos-injection hook for the router's soft state:
// it drops a fraction of the duplicate-suppression log (forwarding and
// delivery dedup) and of the pending reliable forwards, modeling a node
// whose in-memory bookkeeping was damaged or lost. Dropping dedup entries
// is safe-but-wasteful (the end-system cache still dedups deliveries;
// re-forwards burn bytes). Dropping a pending forward silently abandons
// its retransmits — its deadline callback finds nothing to take — which is
// exactly the hole §9 cache recovery exists to fill.
//
// rng must be owned by the caller; entries are visited in their canonical
// insertion/sequence order, so identically seeded runs scramble
// identically. Returns how many dedup entries and pending forwards were
// dropped.
func (r *Router) ScrambleState(rng *rand.Rand, frac float64) (dedupDropped, pendingDropped int) {
	r.mu.Lock()
	keepSeen := r.seenOrder[:0]
	for _, key := range r.seenOrder {
		if rng.Float64() < frac {
			delete(r.seen, key)
			dedupDropped++
			continue
		}
		keepSeen = append(keepSeen, key)
	}
	r.seenOrder = keepSeen
	keepDlv := r.dlvOrder[:0]
	for _, key := range r.dlvOrder {
		if rng.Float64() < frac {
			delete(r.delivered, key)
			dedupDropped++
			continue
		}
		keepDlv = append(keepDlv, key)
	}
	r.dlvOrder = keepDlv
	r.stats.DedupScrambled += int64(dedupDropped)
	r.mu.Unlock()

	if r.rq != nil {
		pendingDropped = r.rq.scramble(rng, frac)
		r.mu.Lock()
		r.stats.PendingScrambled += int64(pendingDropped)
		r.mu.Unlock()
	}
	return dedupDropped, pendingDropped
}

// Reinject re-fans env into this node's own leaf zone, as if a forward for
// it had just arrived. The §9 rejoin path uses it: a node that recovered an
// item from a peer's cache re-offers it to its leaf siblings, which is how
// quiescent (virtual) members behind the rejoiner receive items they missed
// during its downtime. It fans out directly rather than going through
// route(), whose (item, zone) forwarding dedup would silently drop the
// re-offer on any node that already handled the item once; receivers dedup
// final-delivery copies themselves, which keeps repeated re-offers
// idempotent.
func (r *Router) Reinject(env *wire.ItemEnvelope) {
	r.fanOutLeafZone(&wire.Multicast{
		TargetZone: r.view.ZonePath(),
		TraceID:    trace.DeriveTraceID(env.Key()),
		Envelope:   *env,
	})
}

// PendingAcks reports how many reliable forwards await acknowledgment.
func (r *Router) PendingAcks() int {
	if r.rq == nil {
		return 0
	}
	return r.rq.Len()
}

// passesFilter applies the pub/sub filter hook and the publisher's
// dissemination predicate (§8) to a child row.
func (r *Router) passesFilter(zone string, row astrolabe.Row, env *wire.ItemEnvelope) bool {
	if env.Predicate != "" {
		pred, err := r.predicate(env.Predicate)
		if err != nil || !pred.Eval(row.Attrs) {
			return false
		}
	}
	if r.cfg.Filter != nil {
		return r.cfg.Filter(zone, row, env)
	}
	return true
}

func (r *Router) predicate(src string) (*sqlagg.Predicate, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.preds[src]; ok {
		return p, nil
	}
	p, err := sqlagg.ParsePredicate(src)
	if err != nil {
		return nil, err
	}
	r.preds[src] = p
	return p, nil
}

// deliverLocal hands env to the application unless it is a duplicate. tid
// is the wire-carried trace ID of the forward that brought the item here
// (equal to DeriveTraceID of the key, but taken from the message so the
// recorded span proves cross-process propagation).
func (r *Router) deliverLocal(tid uint64, env *wire.ItemEnvelope) {
	key := env.Key()
	r.mu.Lock()
	if r.delivered[key] {
		r.stats.Duplicates++
		r.mu.Unlock()
		if r.cfg.Tracer != nil {
			r.traceSpan(trace.Span{
				Kind: trace.KindDedupDrop, Key: key, TraceID: tid,
				Zone: r.view.ZonePath(), Note: "deliver-dup",
			})
		}
		return
	}
	r.delivered[key] = true
	r.dlvOrder = append(r.dlvOrder, key)
	for len(r.dlvOrder) > r.cfg.DedupWindow {
		delete(r.delivered, r.dlvOrder[0])
		r.dlvOrder = r.dlvOrder[1:]
	}
	r.stats.Delivered++
	r.mu.Unlock()
	if r.cfg.Tracer != nil {
		r.traceSpan(trace.Span{
			Kind: trace.KindDeliver, Key: key, TraceID: tid,
			Zone: r.view.ZonePath(),
		})
	}
	r.cfg.Deliver(env)
}

func (r *Router) send(addr string, m *wire.Multicast) {
	r.mu.Lock()
	r.stats.Forwarded++
	r.mu.Unlock()
	if r.cfg.Tracer != nil {
		note := ""
		if m.Deliver {
			note = "deliver-copy"
		}
		r.traceSpan(trace.Span{
			Kind: trace.KindForward, Key: m.Envelope.Key(),
			TraceID: m.TraceID,
			Zone:    m.TargetZone, To: addr, Hop: m.Hops, Note: note,
		})
	}
	_ = r.cfg.Sender(addr, &wire.Message{Kind: wire.KindMulticast, Multicast: m})
}

// sendShared transmits one message to every addr via the transport's
// frame path: the message is encoded once and the same immutable bytes
// are enqueued to every peer, instead of re-serializing per recipient.
// Per-destination stats and trace spans match send exactly. Only called
// when r.frames is set (fire-and-forget forwarding, default sender).
func (r *Router) sendShared(zone string, addrs, rowNames []string, m *wire.Multicast) {
	// Register the whole fan-out as one reliable entry before encoding,
	// so every recipient sees the same AckSeq in the one shared frame.
	// Recipients ack individually; a deadline hands each silent one to
	// the per-destination retransmit path. When the retransmit table is
	// off or full the fan-out degrades to fire-and-forget, exactly like
	// the per-destination path.
	var seq uint64
	if r.rq != nil {
		p := &pendingForward{
			zone:    zone,
			msg:     *m,
			attempt: 1,
			fan:     make(map[string]string, len(addrs)),
		}
		for i, addr := range addrs {
			p.fan[addr] = rowNames[i]
		}
		if s, ok := r.rq.register(p); ok {
			seq = s
			m = &p.msg // carries AckSeq = seq
		}
	}
	f, err := r.frames.NewFrame(&wire.Message{Kind: wire.KindMulticast, Multicast: m})
	if err != nil {
		if seq != 0 {
			r.rq.take(seq)
		}
		return
	}
	if seq != 0 {
		r.scheduleDeadline(seq, 1)
	}
	r.mu.Lock()
	r.stats.Forwarded += int64(len(addrs))
	r.mu.Unlock()
	note := ""
	if m.Deliver {
		note = "deliver-copy"
	}
	for _, addr := range addrs {
		if r.cfg.Tracer != nil {
			r.traceSpan(trace.Span{
				Kind: trace.KindForward, Key: m.Envelope.Key(),
				TraceID: m.TraceID,
				Zone:    m.TargetZone, To: addr, Hop: m.Hops, Note: note,
			})
		}
		_ = r.frames.SendFrame(addr, f)
	}
}

func (r *Router) logForward(key, zone string, dests []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entry := LogEntry{Key: key, Zone: zone, Dests: dests}
	if len(r.log) < r.cfg.LogSize {
		r.log = append(r.log, entry)
		r.logNext = len(r.log) % r.cfg.LogSize
		return
	}
	r.log[r.logNext] = entry
	r.logNext = (r.logNext + 1) % r.cfg.LogSize
}
