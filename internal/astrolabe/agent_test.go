package astrolabe

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"newswire/internal/sim"
	"newswire/internal/sqlagg"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// testCluster drives a set of agents on a simulated network.
type testCluster struct {
	t      *testing.T
	eng    *sim.Engine
	net    *sim.Network
	agents []*Agent
}

// newTestCluster builds one agent per given leaf zone path (addresses
// n0, n1, ...), fully bootstrapped with each other's leaf rows, and wires
// inbound messages to HandleMessage.
func newTestCluster(t *testing.T, zones []string, opts func(i int, cfg *Config)) *testCluster {
	t.Helper()
	eng := sim.NewEngine(12345)
	net := sim.NewNetwork(eng, sim.LinkModel{
		LatencyMin: 5 * time.Millisecond,
		LatencyMax: 40 * time.Millisecond,
	})
	c := &testCluster{t: t, eng: eng, net: net}
	for i, zone := range zones {
		addr := fmt.Sprintf("n%d", i)
		var agent *Agent
		ep := net.Attach(addr, func(m *wire.Message) { agent.HandleMessage(m) })
		cfg := Config{
			Name:           fmt.Sprintf("node-%d", i),
			ZonePath:       zone,
			Transport:      ep,
			Clock:          eng.Clock(),
			Rand:           rand.New(rand.NewSource(int64(i) + 1)),
			GossipInterval: time.Second,
		}
		if opts != nil {
			opts(i, &cfg)
		}
		a, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		agent = a
		c.agents = append(c.agents, a)
	}
	// Bootstrap: every agent is introduced to every other agent's chain
	// rows (same-zone peers contribute leaf rows; distant peers
	// contribute the aggregated zone rows of the tables they share).
	for _, a := range c.agents {
		var seeds []wire.RowUpdate
		for _, b := range c.agents {
			if b != a {
				seeds = append(seeds, b.ChainRowUpdates()...)
			}
		}
		a.MergeRows(seeds)
	}
	return c
}

// runRounds advances the cluster r gossip rounds: every agent Ticks once
// per simulated second, and the network drains between rounds.
func (c *testCluster) runRounds(r int) {
	for i := 0; i < r; i++ {
		for _, a := range c.agents {
			a.Tick()
		}
		c.eng.RunFor(time.Second)
	}
}

func TestNewAgentValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	ep := net.Attach("x", func(*wire.Message) {})
	base := Config{
		Name: "n", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: rand.New(rand.NewSource(1)),
	}

	if _, err := NewAgent(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Name = ""
	if _, err := NewAgent(bad); err == nil {
		t.Error("empty name accepted")
	}
	bad = base
	bad.ZonePath = "no-slash"
	if _, err := NewAgent(bad); err == nil {
		t.Error("bad zone path accepted")
	}
	bad = base
	bad.ZonePath = "/"
	if _, err := NewAgent(bad); err == nil {
		t.Error("root zone accepted as leaf")
	}
	bad = base
	bad.Transport = nil
	if _, err := NewAgent(bad); err == nil {
		t.Error("nil transport accepted")
	}
	bad = base
	bad.Clock = nil
	if _, err := NewAgent(bad); err == nil {
		t.Error("nil clock accepted")
	}
	bad = base
	bad.Rand = nil
	if _, err := NewAgent(bad); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestAgentOwnRowInLeafTable(t *testing.T) {
	c := newTestCluster(t, []string{"/usa/ny"}, nil)
	a := c.agents[0]
	rows, ok := a.Table("/usa/ny")
	if !ok || len(rows) != 1 {
		t.Fatalf("leaf table = %v, %v", rows, ok)
	}
	if rows[0].Name != "node-0" {
		t.Fatalf("row name = %q", rows[0].Name)
	}
	if addr, _ := rows[0].Attrs[AttrAddr].AsString(); addr != "n0" {
		t.Fatalf("addr attr = %q", addr)
	}
	if _, ok := a.Table("/nonexistent"); ok {
		t.Fatal("Table should report unknown zones")
	}
}

func TestAgentBootstrapAggregation(t *testing.T) {
	// A single agent immediately aggregates itself up to the root.
	c := newTestCluster(t, []string{"/usa/ny"}, nil)
	a := c.agents[0]

	// "/usa" table must contain a row for "ny".
	row, ok := a.Row("/usa", "ny")
	if !ok {
		t.Fatal("missing aggregate row for /usa/ny in /usa")
	}
	if n, _ := row.Attrs[AttrMembers].AsInt(); n != 1 {
		t.Fatalf("nmembers = %v, want 1", row.Attrs[AttrMembers])
	}
	reps, _ := row.Attrs[AttrReps].AsStrings()
	if len(reps) != 1 || reps[0] != "n0" {
		t.Fatalf("reps = %v, want [n0]", reps)
	}
	// Root table must contain a row for "usa" with the same member count.
	rootRow, ok := a.Row("/", "usa")
	if !ok {
		t.Fatal("missing aggregate row for /usa in root")
	}
	if n, _ := rootRow.Attrs[AttrMembers].AsInt(); n != 1 {
		t.Fatalf("root nmembers = %v, want 1", rootRow.Attrs[AttrMembers])
	}
	// A lone agent is the representative of its chain.
	if !a.IsRepresentative("/usa") || !a.IsRepresentative("/") {
		t.Fatal("lone agent must represent its chain")
	}
}

func TestAgentSetAttrReissues(t *testing.T) {
	c := newTestCluster(t, []string{"/z"}, nil)
	a := c.agents[0]
	before, _ := a.Row("/z", "node-0")

	c.eng.RunFor(time.Second)
	a.SetAttr("custom", value.Int(42))

	after, _ := a.Row("/z", "node-0")
	if !after.Issued.After(before.Issued) {
		t.Fatal("SetAttr did not re-issue the row")
	}
	if v, _ := a.Attr("custom").AsInt(); v != 42 {
		t.Fatalf("Attr(custom) = %v", a.Attr("custom"))
	}
	// Clearing with an invalid value removes the attribute.
	a.SetAttr("custom", value.Invalid())
	if a.Attr("custom").IsValid() {
		t.Fatal("invalid SetAttr did not remove attribute")
	}
}

func TestAgentSetAttrsBatch(t *testing.T) {
	c := newTestCluster(t, []string{"/z"}, nil)
	a := c.agents[0]
	a.SetAttrs(value.Map{
		AttrLoad: value.Float(0.7),
		"color":  value.String("blue"),
	})
	if v, _ := a.Attr(AttrLoad).AsFloat(); v != 0.7 {
		t.Fatalf("load = %v", a.Attr(AttrLoad))
	}
	if v, _ := a.Attr("color").AsString(); v != "blue" {
		t.Fatalf("color = %v", a.Attr("color"))
	}
}

func TestLeafGossipConverges(t *testing.T) {
	zones := []string{"/z", "/z", "/z", "/z"}
	c := newTestCluster(t, zones, nil)

	// Agent 0 publishes an attribute; after a few rounds every peer's
	// replica of the leaf table must reflect it.
	c.agents[0].SetAttr("headline", value.String("war over"))
	c.runRounds(6)

	for i, a := range c.agents {
		row, ok := a.Row("/z", "node-0")
		if !ok {
			t.Fatalf("agent %d lost node-0's row", i)
		}
		if s, _ := row.Attrs["headline"].AsString(); s != "war over" {
			t.Fatalf("agent %d has headline %v", i, row.Attrs["headline"])
		}
	}
}

func TestHierarchicalGossipConverges(t *testing.T) {
	// Two leaf zones under the root; reps must exchange aggregates so
	// both sides see each other's member counts at the root.
	zones := []string{"/usa/ny", "/usa/ny", "/asia/jp", "/asia/jp"}
	c := newTestCluster(t, zones, nil)
	c.runRounds(10)

	for i, a := range c.agents {
		usa, ok1 := a.Row("/", "usa")
		asia, ok2 := a.Row("/", "asia")
		if !ok1 || !ok2 {
			t.Fatalf("agent %d root table incomplete: usa=%v asia=%v", i, ok1, ok2)
		}
		if n, _ := usa.Attrs[AttrMembers].AsInt(); n != 2 {
			t.Fatalf("agent %d sees usa nmembers=%v, want 2", i, usa.Attrs[AttrMembers])
		}
		if n, _ := asia.Attrs[AttrMembers].AsInt(); n != 2 {
			t.Fatalf("agent %d sees asia nmembers=%v, want 2", i, asia.Attrs[AttrMembers])
		}
	}
}

func TestBloomFilterAggregatesToRoot(t *testing.T) {
	zones := []string{"/usa/ny", "/usa/ny", "/asia/jp", "/asia/jp"}
	c := newTestCluster(t, zones, nil)

	// Each agent sets a distinct subscription bit.
	for i, a := range c.agents {
		mask := make([]byte, 4)
		mask[i] = 0xFF
		a.SetAttr(AttrSubs, value.Bytes(mask))
	}
	c.runRounds(10)

	// Every agent's root-level rows must OR together all four masks.
	for i, a := range c.agents {
		var merged [4]byte
		for _, name := range []string{"usa", "asia"} {
			row, ok := a.Row("/", name)
			if !ok {
				t.Fatalf("agent %d missing root row %s", i, name)
			}
			subs, ok := row.Attrs[AttrSubs].RawBytes()
			if !ok {
				t.Fatalf("agent %d root row %s has no subs", i, name)
			}
			for j, b := range subs {
				merged[j] |= b
			}
		}
		for j, b := range merged {
			if b != 0xFF {
				t.Fatalf("agent %d: root subs byte %d = %x, want FF", i, j, b)
			}
		}
	}
}

func TestFailureDetectionEvictsDeadAgent(t *testing.T) {
	zones := []string{"/z", "/z", "/z"}
	c := newTestCluster(t, zones, nil)
	c.runRounds(3)

	// Everyone knows everyone.
	for i, a := range c.agents {
		if rows, _ := a.Table("/z"); len(rows) != 3 {
			t.Fatalf("agent %d sees %d rows before crash", i, len(rows))
		}
	}

	// Crash agent 2: it stops ticking and the network drops its traffic.
	c.net.Crash("n2")
	dead := c.agents[2]
	c.agents = c.agents[:2]
	_ = dead

	// Default FailTimeout is 10×interval; run past it.
	c.runRounds(13)

	for i, a := range c.agents {
		if _, ok := a.Row("/z", "node-2"); ok {
			t.Fatalf("agent %d still has the dead agent's row", i)
		}
		if rows, _ := a.Table("/z"); len(rows) != 2 {
			t.Fatalf("agent %d sees %d rows after eviction", i, len(rows))
		}
	}
}

func TestZoneReconfigurationAfterRepFailure(t *testing.T) {
	// Representative election must recover after the current reps die.
	zones := []string{"/usa/a", "/usa/a", "/usa/a", "/usa/a", "/usa/b"}
	aggr := sqlagg.MustParse(`SELECT
		SUM(COALESCE(nmembers, 1)) AS nmembers,
		MINK(1, load, addr) AS reps,
		MINV(load, addr) AS addr,
		MIN(load) AS load`)
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.Aggregation = aggr
	})
	// Give agent 0 the lowest load so it is the elected rep of /usa/a.
	for i, a := range c.agents {
		a.SetAttr(AttrLoad, value.Float(float64(i)*0.1))
	}
	c.runRounds(8)

	aRow, ok := c.agents[4].Row("/usa", "a")
	if !ok {
		t.Fatal("agent in /usa/b does not see zone a")
	}
	reps, _ := aRow.Attrs[AttrReps].AsStrings()
	if len(reps) != 1 || reps[0] != "n0" {
		t.Fatalf("initial rep = %v, want [n0]", reps)
	}

	// Kill the representative.
	c.net.Crash("n0")
	live := []*Agent{c.agents[1], c.agents[2], c.agents[3], c.agents[4]}
	c.agents = live
	c.runRounds(14)

	aRow, ok = c.agents[len(c.agents)-1].Row("/usa", "a")
	if !ok {
		t.Fatal("zone a vanished after rep failure")
	}
	reps, _ = aRow.Attrs[AttrReps].AsStrings()
	if len(reps) != 1 || reps[0] != "n1" {
		t.Fatalf("reconfigured rep = %v, want [n1]", reps)
	}
}

func TestPrefixRuleAggregation(t *testing.T) {
	zones := []string{"/z", "/z"}
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.PrefixRules = []PrefixRule{{Prefix: "pub_", Op: PrefixBitOr}}
	})
	c.agents[0].SetAttr("pub_slashdot", value.Bytes([]byte{0b0001}))
	c.agents[1].SetAttr("pub_slashdot", value.Bytes([]byte{0b0100}))
	c.agents[1].SetAttr("pub_wired", value.Bytes([]byte{0b1000}))
	c.runRounds(6)

	row, ok := c.agents[0].Row("/", "z")
	if !ok {
		t.Fatal("missing root aggregate")
	}
	slash, ok := row.Attrs["pub_slashdot"].RawBytes()
	if !ok || slash[0] != 0b0101 {
		t.Fatalf("pub_slashdot = %v, want 0b0101", row.Attrs["pub_slashdot"])
	}
	wired, ok := row.Attrs["pub_wired"].RawBytes()
	if !ok || wired[0] != 0b1000 {
		t.Fatalf("pub_wired = %v", row.Attrs["pub_wired"])
	}
}

func TestRowVerificationRejectsTampered(t *testing.T) {
	rejected := 0
	c := newTestCluster(t, []string{"/z", "/z"}, func(i int, cfg *Config) {
		if i == 0 {
			cfg.VerifyRow = func(r *wire.RowUpdate) error {
				if _, bad := r.Attrs["evil"]; bad {
					rejected++
					return fmt.Errorf("tampered")
				}
				return nil
			}
		}
	})
	c.agents[1].SetAttr("evil", value.Bool(true))
	c.runRounds(4)

	if rejected == 0 {
		t.Fatal("verifier never invoked")
	}
	row, ok := c.agents[0].Row("/z", "node-1")
	// The bootstrap seeded node-1's original row (without "evil"); the
	// tampered update must have been rejected.
	if ok {
		if _, bad := row.Attrs["evil"]; bad {
			t.Fatal("tampered row merged despite failing verification")
		}
	}
}

func TestStatsProgress(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	c.runRounds(4)
	st := c.agents[0].Stats()
	if st.GossipsSent == 0 {
		t.Error("no gossips sent")
	}
	if st.GossipsReceived == 0 && st.RepliesReceived == 0 {
		t.Error("no gossip traffic received")
	}
	if st.RowsMerged == 0 {
		t.Error("no rows merged")
	}
}

func TestMergeIgnoresUnknownZonesAndOwnRow(t *testing.T) {
	c := newTestCluster(t, []string{"/z"}, nil)
	a := c.agents[0]
	ownBefore, _ := a.Row("/z", "node-0")

	a.MergeRows([]wire.RowUpdate{
		{Zone: "/other", Name: "x", Attrs: value.Map{}, Issued: c.eng.Now()},
		{Zone: "/z", Name: "node-0", Attrs: value.Map{"hijack": value.Bool(true)},
			Issued: c.eng.Now().Add(time.Hour), Owner: "evil"},
	})

	ownAfter, _ := a.Row("/z", "node-0")
	if _, hijacked := ownAfter.Attrs["hijack"]; hijacked {
		t.Fatal("own row was overwritten by remote update")
	}
	if !ownAfter.Issued.Equal(ownBefore.Issued) {
		t.Fatal("own row issue time changed")
	}
	if _, ok := a.Table("/other"); ok {
		t.Fatal("unknown zone table materialized")
	}
}

func TestMergeFreshnessRule(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	a := c.agents[0]
	now := c.eng.Now()

	fresh := wire.RowUpdate{
		Zone: "/z", Name: "node-1",
		Attrs:  value.Map{"v": value.Int(2)},
		Issued: now.Add(time.Minute),
		Owner:  "n1",
	}
	stale := wire.RowUpdate{
		Zone: "/z", Name: "node-1",
		Attrs:  value.Map{"v": value.Int(1)},
		Issued: now,
		Owner:  "n1",
	}
	a.MergeRows([]wire.RowUpdate{fresh})
	a.MergeRows([]wire.RowUpdate{stale})
	row, _ := a.Row("/z", "node-1")
	if v, _ := row.Attrs["v"].AsInt(); v != 2 {
		t.Fatalf("stale row overwrote fresh: v=%v", row.Attrs["v"])
	}
}

func TestDeterministicTieBreakOnEqualTimestamps(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	a, b := c.agents[0], c.agents[1]
	now := c.eng.Now().Add(time.Minute)

	u1 := wire.RowUpdate{Zone: "/z", Name: "ghost", Attrs: value.Map{"x": value.Int(1)}, Issued: now}
	u2 := wire.RowUpdate{Zone: "/z", Name: "ghost", Attrs: value.Map{"x": value.Int(2)}, Issued: now}

	// Deliver in opposite orders to the two agents.
	a.MergeRows([]wire.RowUpdate{u1})
	a.MergeRows([]wire.RowUpdate{u2})
	b.MergeRows([]wire.RowUpdate{u2})
	b.MergeRows([]wire.RowUpdate{u1})

	ra, _ := a.Row("/z", "ghost")
	rb, _ := b.Row("/z", "ghost")
	if !ra.Attrs.Equal(rb.Attrs) {
		t.Fatalf("replicas diverged on timestamp tie: %v vs %v", ra.Attrs, rb.Attrs)
	}
}

func TestIsRepresentativeNonChainZone(t *testing.T) {
	c := newTestCluster(t, []string{"/usa/ny"}, nil)
	a := c.agents[0]
	if a.IsRepresentative("/asia") {
		t.Fatal("agent represents a zone not on its chain")
	}
	if !a.IsRepresentative("/usa/ny") {
		t.Fatal("agent must participate at its own leaf level")
	}
}

func TestChainAndAccessors(t *testing.T) {
	c := newTestCluster(t, []string{"/usa/ny"}, nil)
	a := c.agents[0]
	if a.Name() != "node-0" || a.Addr() != "n0" || a.ZonePath() != "/usa/ny" {
		t.Fatalf("accessors: %q %q %q", a.Name(), a.Addr(), a.ZonePath())
	}
	chain := a.Chain()
	if len(chain) != 3 || chain[0] != "/" || chain[2] != "/usa/ny" {
		t.Fatalf("chain = %v", chain)
	}
}

func TestPartitionHeal(t *testing.T) {
	// Two zones partitioned from each other evict each other's aggregate
	// rows after AggFailTimeout, then rediscover and reconverge when the
	// partition heals (the seed rows are re-exchanged through gossip
	// replies because each side still replicates the root table).
	zones := []string{"/a/x", "/a/x", "/b/y", "/b/y"}
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.FailTimeout = 6 * time.Second
		cfg.AggFailTimeout = 12 * time.Second
	})
	c.runRounds(5)

	// Both sides see both zones.
	if _, ok := c.agents[0].Row("/", "b"); !ok {
		t.Fatal("zone b invisible before partition")
	}

	sideA := []string{"n0", "n1"}
	sideB := []string{"n2", "n3"}
	c.net.Partition(sideA, sideB)
	c.runRounds(16) // beyond AggFailTimeout

	if _, ok := c.agents[0].Row("/", "b"); ok {
		t.Fatal("partitioned zone b not evicted after AggFailTimeout")
	}
	if _, ok := c.agents[2].Row("/", "a"); ok {
		t.Fatal("partitioned zone a not evicted after AggFailTimeout")
	}

	// Heal and re-introduce (a fresh introduction is required once the
	// sides have fully forgotten each other; any surviving replica would
	// have reconnected them automatically).
	c.net.Heal(sideA, sideB)
	c.agents[0].MergeRows(c.agents[2].ChainRowUpdates())
	c.runRounds(8)

	for i, a := range c.agents {
		if _, ok := a.Row("/", "a"); !ok {
			t.Errorf("agent %d missing zone a after heal", i)
		}
		if _, ok := a.Row("/", "b"); !ok {
			t.Errorf("agent %d missing zone b after heal", i)
		}
	}
}

func TestGossipConvergesUnderLossAndDisorder(t *testing.T) {
	// Property-style check: despite 20% loss and random per-agent tick
	// jitter, all replicas of an attribute converge.
	eng := sim.NewEngine(4242)
	net := sim.NewNetwork(eng, sim.LinkModel{
		LatencyMin: 5 * time.Millisecond,
		LatencyMax: 200 * time.Millisecond,
		LossRate:   0.2,
	})
	var agents []*Agent
	for i := 0; i < 8; i++ {
		addr := fmt.Sprintf("n%d", i)
		var agent *Agent
		ep := net.Attach(addr, func(m *wire.Message) { agent.HandleMessage(m) })
		a, err := NewAgent(Config{
			Name: fmt.Sprintf("node-%d", i), ZonePath: "/z",
			Transport: ep, Clock: eng.Clock(),
			Rand:           rand.New(rand.NewSource(int64(i) * 17)),
			GossipInterval: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		agent = a
		agents = append(agents, a)
	}
	for _, a := range agents {
		var seeds []wire.RowUpdate
		for _, b := range agents {
			if b != a {
				seeds = append(seeds, b.OwnRowUpdate())
			}
		}
		a.MergeRows(seeds)
	}
	// Each agent ticks on its own jittered schedule.
	for i, a := range agents {
		a := a
		eng.Every(time.Second, 0.5+float64(i%3)*0.1, a.Tick)
	}
	agents[3].SetAttr("flag", value.Int(77))
	eng.RunFor(40 * time.Second)

	for i, a := range agents {
		row, ok := a.Row("/z", "node-3")
		if !ok {
			t.Fatalf("agent %d lost node-3's row", i)
		}
		if v, _ := row.Attrs["flag"].AsInt(); v != 77 {
			t.Fatalf("agent %d has flag=%v, not converged", i, row.Attrs["flag"])
		}
	}
}
