package astrolabe

import (
	"testing"
	"testing/quick"
)

func TestValidateZonePath(t *testing.T) {
	valid := []string{"/", "/usa", "/usa/ny", "/usa/ny/ithaca", "/r0/z1/n2"}
	for _, p := range valid {
		if err := ValidateZonePath(p); err != nil {
			t.Errorf("ValidateZonePath(%q) = %v, want nil", p, err)
		}
	}
	invalid := []string{"", "usa", "/usa/", "//", "/usa//ny", "/us a", "/a/b "}
	for _, p := range invalid {
		if err := ValidateZonePath(p); err == nil {
			t.Errorf("ValidateZonePath(%q) = nil, want error", p)
		}
	}
}

func TestParentZone(t *testing.T) {
	tests := []struct {
		give       string
		wantParent string
		wantOK     bool
	}{
		{"/", "", false},
		{"/usa", "/", true},
		{"/usa/ny", "/usa", true},
		{"/usa/ny/ithaca", "/usa/ny", true},
	}
	for _, tt := range tests {
		got, ok := ParentZone(tt.give)
		if got != tt.wantParent || ok != tt.wantOK {
			t.Errorf("ParentZone(%q) = %q, %v; want %q, %v", tt.give, got, ok, tt.wantParent, tt.wantOK)
		}
	}
}

func TestZoneName(t *testing.T) {
	tests := []struct {
		give, want string
	}{
		{"/", ""},
		{"/usa", "usa"},
		{"/usa/ny", "ny"},
	}
	for _, tt := range tests {
		if got := ZoneName(tt.give); got != tt.want {
			t.Errorf("ZoneName(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestJoinZone(t *testing.T) {
	if got := JoinZone("/", "usa"); got != "/usa" {
		t.Errorf("JoinZone(/, usa) = %q", got)
	}
	if got := JoinZone("/usa", "ny"); got != "/usa/ny" {
		t.Errorf("JoinZone(/usa, ny) = %q", got)
	}
}

func TestAncestorChain(t *testing.T) {
	got := AncestorChain("/usa/ny")
	want := []string{"/", "/usa", "/usa/ny"}
	if len(got) != len(want) {
		t.Fatalf("chain = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
	root := AncestorChain("/")
	if len(root) != 1 || root[0] != "/" {
		t.Fatalf("root chain = %v", root)
	}
}

func TestZoneContains(t *testing.T) {
	tests := []struct {
		ancestor, path string
		want           bool
	}{
		{"/", "/anything/below", true},
		{"/", "/", true},
		{"/usa", "/usa", true},
		{"/usa", "/usa/ny", true},
		{"/usa", "/usavirgin", false},
		{"/usa/ny", "/usa", false},
		{"/asia", "/usa/ny", false},
	}
	for _, tt := range tests {
		if got := ZoneContains(tt.ancestor, tt.path); got != tt.want {
			t.Errorf("ZoneContains(%q, %q) = %v, want %v", tt.ancestor, tt.path, got, tt.want)
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	tests := []struct {
		a, b, want string
	}{
		{"/usa/ny", "/usa/ca", "/usa"},
		{"/usa/ny", "/asia/jp", "/"},
		{"/usa/ny", "/usa/ny", "/usa/ny"},
		{"/usa", "/usa/ny", "/usa"},
		{"/", "/usa", "/"},
	}
	for _, tt := range tests {
		if got := CommonAncestor(tt.a, tt.b); got != tt.want {
			t.Errorf("CommonAncestor(%q, %q) = %q, want %q", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestChildToward(t *testing.T) {
	tests := []struct {
		ancestor, descendant, want string
		wantOK                     bool
	}{
		{"/", "/usa/ny", "/usa", true},
		{"/usa", "/usa/ny/ithaca", "/usa/ny", true},
		{"/usa", "/usa", "", false},
		{"/usa", "/asia/jp", "", false},
		{"/usa/ny", "/usa", "", false},
	}
	for _, tt := range tests {
		got, ok := ChildToward(tt.ancestor, tt.descendant)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("ChildToward(%q, %q) = %q, %v; want %q, %v",
				tt.ancestor, tt.descendant, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestZoneDepth(t *testing.T) {
	tests := []struct {
		give string
		want int
	}{
		{"/", 0},
		{"/usa", 1},
		{"/usa/ny", 2},
		{"/usa/ny/ithaca", 3},
	}
	for _, tt := range tests {
		if got := ZoneDepth(tt.give); got != tt.want {
			t.Errorf("ZoneDepth(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

// Property: for any valid two-level path built from clean segments,
// JoinZone(ParentZone(p)) reconstructs p and the ancestor chain is
// consistent with ZoneDepth.
func TestQuickZonePathAlgebra(t *testing.T) {
	clean := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r >= 'a' && r <= 'z' {
				out = append(out, r)
			}
		}
		if len(out) == 0 {
			return "x"
		}
		return string(out)
	}
	f := func(rawA, rawB string) bool {
		a, b := clean(rawA), clean(rawB)
		p := JoinZone(JoinZone("/", a), b)
		if ValidateZonePath(p) != nil {
			return false
		}
		parent, ok := ParentZone(p)
		if !ok || JoinZone(parent, ZoneName(p)) != p {
			return false
		}
		chain := AncestorChain(p)
		if len(chain) != ZoneDepth(p)+1 {
			return false
		}
		for _, anc := range chain {
			if !ZoneContains(anc, p) {
				return false
			}
		}
		child, ok := ChildToward("/", p)
		return ok && child == JoinZone("/", a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
