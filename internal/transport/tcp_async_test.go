package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"newswire/internal/wire"
)

// TestTCPSharedMessageFanOutRace is the regression test for the Send
// data race: fanning ONE message out to several peers used to write
// msg.From per send, so concurrent sends of a shared message raced.
// From is now stamped into the frame at encode time; run with -race
// this test proves the source message is never written.
func TestTCPSharedMessageFanOutRace(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	const nPeers = 4
	const perPeer = 32
	cols := make([]*collector, nPeers)
	addrs := make([]string, nPeers)
	for i := range cols {
		cols[i] = newCollector()
		r, err := ListenTCP("127.0.0.1:0", cols[i].handle)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		addrs[i] = r.Addr()
	}

	shared := gossipMsg("/usa/ny")
	shared.From = "left-alone"
	var wg sync.WaitGroup
	for i := 0; i < nPeers; i++ {
		for j := 0; j < perPeer; j++ {
			wg.Add(1)
			go func(to string) {
				defer wg.Done()
				if err := hub.Send(to, shared); err != nil {
					t.Errorf("send: %v", err)
				}
			}(addrs[i])
		}
	}
	wg.Wait()

	for i, col := range cols {
		for _, m := range col.waitFor(t, perPeer) {
			if m.From != hub.Addr() {
				t.Fatalf("receiver %d: From = %q, want the hub address %q", i, m.From, hub.Addr())
			}
		}
	}
	if shared.From != "left-alone" {
		t.Fatalf("fan-out mutated the shared message: From = %q", shared.From)
	}
}

// TestTCPSlowConsumerIsolation jams peer A (a socket that is accepted
// but never read) and checks the core asynchronous-writer guarantees:
// sends to A never block the caller, A's queue stays bounded with the
// overflow dropped and counted, a healthy peer B keeps receiving
// normally the whole time, and Close still terminates promptly.
func TestTCPSlowConsumerIsolation(t *testing.T) {
	// Peer A: accepts connections and never reads a byte.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()
	var jam struct {
		sync.Mutex
		conns []net.Conn
	}
	go func() {
		for {
			c, err := lnA.Accept()
			if err != nil {
				return
			}
			jam.Lock()
			jam.conns = append(jam.conns, c)
			jam.Unlock()
		}
	}()
	defer func() {
		jam.Lock()
		for _, c := range jam.conns {
			c.Close()
		}
		jam.Unlock()
	}()

	// Peer B: a normal transport endpoint.
	colB := newCollector()
	b, err := ListenTCP("127.0.0.1:0", colB.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const queueLen = 4
	hub, err := ListenTCPWith("127.0.0.1:0", func(*wire.Message) {}, TCPOptions{
		QueueLen:     queueLen,
		WriteTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Jam A with big frames: each is ~256 KiB, far more than the loopback
	// socket buffers absorb, so the writer blocks in writev, the
	// queue fills, and further sends must drop instead of blocking.
	big := &wire.Message{Kind: wire.KindMulticast, Multicast: &wire.Multicast{
		TargetZone: "/", Envelope: wire.ItemEnvelope{
			Publisher: "p", ItemID: "big", Published: time.Unix(0, 0),
			Payload: make([]byte, 256<<10),
		},
	}}
	const bigFrames = 64
	start := time.Now()
	for i := 0; i < bigFrames; i++ {
		if err := hub.Send(lnA.Addr().String(), big); err != nil {
			t.Fatalf("send to jammed peer returned error: %v", err)
		}
	}
	// B stays healthy while A is wedged. Sends are paced just below the
	// writer's drain rate: this test's tiny 4-frame queue is sized to jam
	// on A, not to absorb a same-instant burst of 50.
	const nB = 50
	for i := 0; i < nB; i++ {
		if err := hub.Send(b.Addr(), gossipMsg("/usa/ny")); err != nil {
			t.Fatalf("send to healthy peer: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("sends took %v; a jammed peer must never block the caller", elapsed)
	}
	colB.waitFor(t, nB)

	st := hub.TransportStats()
	if st.QueueFullDrops == 0 {
		t.Errorf("expected queue-full drops on the jammed peer, got none (stats %+v)", st)
	}
	if st.QueueHighWater > queueLen {
		t.Errorf("queue high water %d exceeds the configured bound %d", st.QueueHighWater, queueLen)
	}

	// Close must not wait for the jammed writer's full timeout cascade.
	done := make(chan error, 1)
	go func() { done <- hub.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on a jammed peer")
	}
}

// TestTCPWritevBatchRoundTrip queues one message of every kind on a
// peer's writer before waking it, so the whole set is flushed in a
// single writev, and verifies every frame survives the vectored write
// intact — under the binary codec and the gob fallback. White-box: it
// loads the queue directly to make the single-batch flush
// deterministic.
func TestTCPWritevBatchRoundTrip(t *testing.T) {
	for _, gobWire := range []bool{false, true} {
		name := "binary"
		if gobWire {
			name = "gob-fallback"
		}
		t.Run(name, func(t *testing.T) {
			wire.SetGobFallback(gobWire)
			defer wire.SetGobFallback(false)

			col := newCollector()
			b, err := ListenTCP("127.0.0.1:0", col.handle)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()

			sent := allKindMessages()
			frames := make([]wire.Frame, len(sent))
			for i, m := range sent {
				if frames[i], err = a.NewFrame(m); err != nil {
					t.Fatalf("frame %v: %v", m.Kind, err)
				}
			}

			p, err := a.peer(b.Addr())
			if err != nil {
				t.Fatal(err)
			}
			// Load the whole set while the writer sleeps, then wake it once:
			// everything drains as one batch, one writev.
			p.mu.Lock()
			p.queue = append(p.queue, frames...)
			p.mu.Unlock()
			p.cond.Signal()

			got := col.waitFor(t, len(sent))
			for i, m := range got {
				if m.Kind != sent[i].Kind {
					t.Fatalf("frame %d arrived as %v, want %v", i, m.Kind, sent[i].Kind)
				}
				if m.From != a.Addr() {
					t.Fatalf("frame %d: From = %q, want %q", i, m.From, a.Addr())
				}
			}
			env := got[4].Multicast.Envelope
			if env.Key() != "reuters/item-42#1" || string(env.Payload) != "<nitf/>" {
				t.Fatalf("multicast envelope corrupted by vectored write: %+v", env)
			}

			// The dial-time clock probe rides the same queue, and b probes
			// back: its pong dials a fresh b→a connection carrying b's own
			// ping, which a answers with a pong. Wait for that reverse
			// handshake to quiesce so the counters are deterministic:
			// ping + the batch + the reply pong.
			want := int64(len(sent) + 2)
			deadline := time.Now().Add(2 * time.Second)
			st := a.TransportStats()
			for st.FramesSent < want && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
				st = a.TransportStats()
			}
			if st.FramesSent != want {
				t.Errorf("frames sent = %d, want %d (clock ping + batch + reply pong)", st.FramesSent, want)
			}
			if st.FlushBatches > 3 {
				t.Errorf("flush batches = %d, want <= 3 (clock probes, then the whole set in one writev)", st.FlushBatches)
			}
		})
	}
}
