package pubsub

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/news"
	"newswire/internal/query"
	"newswire/internal/sim"
	"newswire/internal/value"
	"newswire/internal/wire"
)

func testAgent(t *testing.T) *astrolabe.Agent {
	t.Helper()
	eng := sim.NewEngine(1)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	ep := net.Attach("n0", func(*wire.Message) {})
	a, err := astrolabe.NewAgent(astrolabe.Config{
		Name: "node-0", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: rand.New(rand.NewSource(1)),
		PrefixRules: []astrolabe.PrefixRule{
			{Prefix: AttrSubPrefix, Op: astrolabe.PrefixBoolOr},
			{Prefix: AttrPubPrefix, Op: astrolabe.PrefixBitOr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testItem() *news.Item {
	return &news.Item{
		Publisher: "slashdot",
		ID:        "story-9",
		Revision:  0,
		Headline:  "Linux 2.6 roadmap",
		Body:      "kernel news",
		Subjects:  []string{"tech/linux"},
		Urgency:   5,
		Published: time.Unix(1017619200, 0).UTC(),
	}
}

func TestNewSubscriberValidation(t *testing.T) {
	if _, err := NewSubscriber(Config{}); err == nil {
		t.Error("nil agent accepted")
	}
	a := testAgent(t)
	if _, err := NewSubscriber(Config{Agent: a, Mode: Mode(9)}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := NewSubscriber(Config{Agent: a, Geometry: Geometry{Bits: 4, Hashes: 1}}); err == nil {
		t.Error("tiny geometry accepted")
	}
	s, err := NewSubscriber(Config{Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode() != ModeBloom {
		t.Errorf("default mode = %v", s.Mode())
	}
}

func TestModeString(t *testing.T) {
	if ModeBloom.String() != "bloom" || ModeAttributes.String() != "attributes" ||
		ModeCategoryMask.String() != "category-mask" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestSubscribeAdvertisesBloom(t *testing.T) {
	a := testAgent(t)
	s, err := NewSubscriber(Config{Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("tech/linux", "world/asia"); err != nil {
		t.Fatal(err)
	}

	subsAttr := a.Attr(astrolabe.AttrSubs)
	raw, ok := subsAttr.RawBytes()
	if !ok {
		t.Fatal("subs attribute not advertised")
	}
	f, err := bloom.FromBytes(raw, DefaultGeometry.Bits, DefaultGeometry.Hashes)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Test("tech/linux") || !f.Test("world/asia") {
		t.Fatal("advertised filter missing subscriptions")
	}

	subjects := s.Subjects()
	if len(subjects) != 2 || subjects[0] != "tech/linux" || subjects[1] != "world/asia" {
		t.Fatalf("Subjects() = %v", subjects)
	}
}

func TestUnsubscribeRebuildsFilter(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a})
	s.Subscribe("tech/linux", "world/asia")
	s.Unsubscribe("tech/linux")

	raw, _ := a.Attr(astrolabe.AttrSubs).RawBytes()
	f, _ := bloom.FromBytes(raw, DefaultGeometry.Bits, DefaultGeometry.Hashes)
	if f.Test("tech/linux") {
		t.Fatal("unsubscribed subject still in filter")
	}
	if !f.Test("world/asia") {
		t.Fatal("remaining subject lost")
	}
}

func TestSubscribeEmptySubjectRejected(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a})
	if err := s.Subscribe(""); err == nil {
		t.Fatal("empty subject accepted")
	}
}

func TestSubscribeAdvertisesAttributes(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a, Mode: ModeAttributes})
	s.Subscribe("tech/linux")
	if v, ok := a.Attr(AttrSubPrefix + "tech/linux").AsBool(); !ok || !v {
		t.Fatal("sub_ attribute not advertised")
	}
	s.Unsubscribe("tech/linux")
	if a.Attr(AttrSubPrefix + "tech/linux").IsValid() {
		t.Fatal("sub_ attribute not cleared on unsubscribe")
	}
}

func TestSubscribePublisherMask(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a, Mode: ModeCategoryMask})
	if err := s.SubscribePublisher("slashdot", "tech/linux"); err != nil {
		t.Fatal(err)
	}
	mask, ok := a.Attr(AttrPubPrefix + "slashdot").RawBytes()
	if !ok {
		t.Fatal("pub_ mask not advertised")
	}
	idx := -1
	for i, c := range news.StandardSubjects {
		if c == "tech/linux" {
			idx = i
		}
	}
	if mask[idx/8]&(1<<(idx%8)) == 0 {
		t.Fatal("category bit not set in mask")
	}
	if err := s.SubscribePublisher("slashdot", "not/a/category"); err == nil {
		t.Fatal("unknown category accepted")
	}
	// SubscribePublisher outside mask mode fails.
	sb, _ := NewSubscriber(Config{Agent: a})
	if err := sb.SubscribePublisher("x", "tech/linux"); err == nil {
		t.Fatal("SubscribePublisher in bloom mode accepted")
	}
	// Subscribe with an out-of-vocabulary subject fails in mask mode.
	if err := s.Subscribe("nonexistent/cat"); err == nil {
		t.Fatal("out-of-vocabulary Subscribe accepted in mask mode")
	}
}

func TestEncodeDecodeItemBloom(t *testing.T) {
	it := testItem()
	env, err := EncodeItem(it, ModeBloom, DefaultGeometry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.SubjectBits) != DefaultGeometry.Hashes {
		t.Fatalf("SubjectBits = %v, want %d positions", env.SubjectBits, DefaultGeometry.Hashes)
	}
	want := bloom.PositionsFor("tech/linux", DefaultGeometry.Bits, DefaultGeometry.Hashes)
	if env.SubjectBits[0] != want[0] {
		t.Fatal("bit positions disagree with bloom package")
	}
	if env.Urgency != 5 {
		t.Fatalf("urgency not mirrored: %d", env.Urgency)
	}
	got, err := DecodeItem(&env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Headline != it.Headline {
		t.Fatal("payload content lost")
	}
}

func TestDecodeItemRejectsMismatchedEnvelope(t *testing.T) {
	it := testItem()
	env, _ := EncodeItem(it, ModeBloom, DefaultGeometry, nil)

	bad := env
	bad.ItemID = "other"
	if _, err := DecodeItem(&bad); err == nil {
		t.Error("identity mismatch accepted")
	}
	bad = env
	bad.Subjects = []string{"sports/soccer"}
	if _, err := DecodeItem(&bad); err == nil {
		t.Error("subject mismatch accepted")
	}
	bad = env
	bad.Subjects = append([]string{}, env.Subjects...)
	bad.Subjects = append(bad.Subjects, "extra/subject")
	if _, err := DecodeItem(&bad); err == nil {
		t.Error("extra subject accepted")
	}
}

func TestEncodeItemMaskMode(t *testing.T) {
	it := testItem()
	env, err := EncodeItem(it, ModeCategoryMask, DefaultGeometry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.SubjectBits) != 1 {
		t.Fatalf("SubjectBits = %v", env.SubjectBits)
	}
	it2 := testItem()
	it2.Subjects = []string{"unknown/category"}
	if _, err := EncodeItem(it2, ModeCategoryMask, DefaultGeometry, nil); err == nil {
		t.Fatal("out-of-vocabulary subject accepted")
	}
}

func rowWithSubs(filter *bloom.Filter) astrolabe.Row {
	return astrolabe.Row{
		Name:  "child",
		Attrs: value.Map{astrolabe.AttrSubs: value.Bytes(filter.Bytes())},
	}
}

func TestForwardFilterBloom(t *testing.T) {
	geo := DefaultGeometry
	filter := ForwardFilter(ModeBloom, geo, nil)

	f := bloom.New(geo.Bits, geo.Hashes)
	f.Add("tech/linux")
	row := rowWithSubs(f)

	env, _ := EncodeItem(testItem(), ModeBloom, geo, nil)
	if !filter("/", row, &env) {
		t.Fatal("matching subscription not forwarded")
	}

	other := testItem()
	other.Subjects = []string{"sports/soccer"}
	envOther, _ := EncodeItem(other, ModeBloom, geo, nil)
	if filter("/", row, &envOther) {
		t.Fatal("non-matching subject forwarded (and this subject does not collide)")
	}

	// Row with no subs attribute: prune.
	if filter("/", astrolabe.Row{Attrs: value.Map{}}, &env) {
		t.Fatal("row without subs forwarded")
	}
}

func TestForwardFilterBloomMultiSubjectAnyMatch(t *testing.T) {
	geo := Geometry{Bits: 1024, Hashes: 4}
	filter := ForwardFilter(ModeBloom, geo, nil)
	f := bloom.New(geo.Bits, geo.Hashes)
	f.Add("world/asia")
	row := rowWithSubs(f)

	it := testItem()
	it.Subjects = []string{"tech/linux", "world/asia"}
	env, _ := EncodeItem(it, ModeBloom, geo, nil)
	if len(env.SubjectBits) != 8 {
		t.Fatalf("expected 2 subjects × 4 hashes positions, got %d", len(env.SubjectBits))
	}
	if !filter("/", row, &env) {
		t.Fatal("any-subject match failed")
	}
}

func TestForwardFilterAttributes(t *testing.T) {
	filter := ForwardFilter(ModeAttributes, Geometry{}, nil)
	row := astrolabe.Row{Attrs: value.Map{AttrSubPrefix + "tech/linux": value.Bool(true)}}
	env, _ := EncodeItem(testItem(), ModeAttributes, Geometry{}, nil)
	if !filter("/", row, &env) {
		t.Fatal("attribute match failed")
	}
	empty := astrolabe.Row{Attrs: value.Map{}}
	if filter("/", empty, &env) {
		t.Fatal("row without sub_ attr forwarded")
	}
}

func TestForwardFilterCategoryMask(t *testing.T) {
	filter := ForwardFilter(ModeCategoryMask, Geometry{}, nil)
	idx := 0
	for i, c := range news.StandardSubjects {
		if c == "tech/linux" {
			idx = i
		}
	}
	mask := make([]byte, (len(news.StandardSubjects)+7)/8)
	mask[idx/8] |= 1 << (idx % 8)
	row := astrolabe.Row{Attrs: value.Map{AttrPubPrefix + "slashdot": value.Bytes(mask)}}

	env, _ := EncodeItem(testItem(), ModeCategoryMask, Geometry{}, nil)
	if !filter("/", row, &env) {
		t.Fatal("mask match failed")
	}
	// Same mask under a different publisher attribute: prune.
	otherPub := astrolabe.Row{Attrs: value.Map{AttrPubPrefix + "wired": value.Bytes(mask)}}
	if filter("/", otherPub, &env) {
		t.Fatal("mask of different publisher matched")
	}
}

func TestShouldDeliverExactMatch(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a})
	s.Subscribe("tech/linux")

	env, _ := EncodeItem(testItem(), ModeBloom, DefaultGeometry, nil)
	if !s.ShouldDeliver(&env) {
		t.Fatal("subscribed item rejected")
	}

	other := testItem()
	other.Subjects = []string{"sports/soccer"}
	envOther, _ := EncodeItem(other, ModeBloom, DefaultGeometry, nil)
	if s.ShouldDeliver(&envOther) {
		t.Fatal("unsubscribed item delivered — false positive not filtered")
	}
}

func TestShouldDeliverPredicate(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a})
	s.Subscribe("tech/linux")
	if err := s.SetPredicate("urgency <= 5 AND publisher = 'slashdot'"); err != nil {
		t.Fatal(err)
	}

	env, _ := EncodeItem(testItem(), ModeBloom, DefaultGeometry, nil)
	if !s.ShouldDeliver(&env) {
		t.Fatal("predicate-satisfying item rejected")
	}

	urgent := testItem()
	urgent.Urgency = 8
	envU, _ := EncodeItem(urgent, ModeBloom, DefaultGeometry, nil)
	if s.ShouldDeliver(&envU) {
		t.Fatal("predicate-failing item delivered")
	}

	if err := s.SetPredicate("bad syntax ("); err == nil {
		t.Fatal("bad predicate accepted")
	}
	if err := s.SetPredicate(""); err != nil {
		t.Fatal("clearing predicate failed")
	}
	if !s.ShouldDeliver(&envU) {
		t.Fatal("cleared predicate still filtering")
	}
}

func TestShouldDeliverMaskModePerPublisher(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a, Mode: ModeCategoryMask})
	s.SubscribePublisher("slashdot", "tech/linux")

	env, _ := EncodeItem(testItem(), ModeCategoryMask, Geometry{}, nil)
	if !s.ShouldDeliver(&env) {
		t.Fatal("subscribed publisher+category rejected")
	}

	// Same category from a different publisher must NOT deliver.
	wired := testItem()
	wired.Publisher = "wired"
	envW, _ := EncodeItem(wired, ModeCategoryMask, Geometry{}, nil)
	if s.ShouldDeliver(&envW) {
		t.Fatal("per-publisher interest leaked to another publisher")
	}
}

func TestItemMetadataRow(t *testing.T) {
	env, _ := EncodeItem(testItem(), ModeBloom, DefaultGeometry, nil)
	row := ItemMetadataRow(&env)
	if p, _ := row["publisher"].AsString(); p != "slashdot" {
		t.Errorf("publisher = %v", row["publisher"])
	}
	if u, _ := row["urgency"].AsInt(); u != 5 {
		t.Errorf("urgency = %v", row["urgency"])
	}
	if subs, _ := row["subjects"].AsStrings(); len(subs) != 1 {
		t.Errorf("subjects = %v", row["subjects"])
	}
}

func predicateAgent(t *testing.T) *astrolabe.Agent {
	t.Helper()
	eng := sim.NewEngine(1)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	ep := net.Attach("n0", func(*wire.Message) {})
	a, err := astrolabe.NewAgent(astrolabe.Config{
		Name: "node-0", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: rand.New(rand.NewSource(1)),
		PrefixRules: []astrolabe.PrefixRule{
			{Prefix: AttrSubGroups, Op: astrolabe.PrefixSubgroup},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigErrorTyped(t *testing.T) {
	a := testAgent(t)
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"unknown mode", Config{Agent: a, Mode: Mode(9)}, "Mode"},
		{"tiny bits", Config{Agent: a, Geometry: Geometry{Bits: 4, Hashes: 1}}, "Geometry"},
		{"huge bits", Config{Agent: a, Geometry: Geometry{Bits: MaxGeometryBits + 1, Hashes: 1}}, "Geometry"},
		{"zero hashes", Config{Agent: a, Geometry: Geometry{Bits: 1024, Hashes: 0}}, "Geometry"},
		{"many hashes", Config{Agent: a, Geometry: Geometry{Bits: 1024, Hashes: MaxGeometryHash + 1}}, "Geometry"},
		{"negative K", Config{Agent: a, Mode: ModePredicate, SubgroupK: -1}, "SubgroupK"},
		{"huge K", Config{Agent: a, Mode: ModePredicate, SubgroupK: MaxSubgroupK + 1}, "SubgroupK"},
	}
	for _, tc := range cases {
		_, err := NewSubscriber(tc.cfg)
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: err = %v, want *ConfigError", tc.name, err)
			continue
		}
		if cerr.Field != tc.field {
			t.Errorf("%s: Field = %q, want %q", tc.name, cerr.Field, tc.field)
		}
	}
	// Defaults are valid and not ConfigErrors.
	if _, err := NewSubscriber(Config{Agent: a, Mode: ModePredicate}); err != nil {
		t.Fatalf("default predicate config rejected: %v", err)
	}
	var cerr *ConfigError
	if _, err := NewSubscriber(Config{}); !errors.As(err, &cerr) && err == nil {
		t.Fatal("nil agent accepted")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeBloom}, {"bloom", ModeBloom}, {"attributes", ModeAttributes},
		{"category-mask", ModeCategoryMask}, {"predicate", ModePredicate}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("round trip %q -> %q", tc.in, got)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("unknown mode name accepted")
	}
}

func TestSubscribeQueryAdvertisesSignature(t *testing.T) {
	a := predicateAgent(t)
	s, err := NewSubscriber(Config{Agent: a, Mode: ModePredicate, Geometry: Geometry{Bits: 1024, Hashes: 4}})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := s.SubscribeQuery("urgency >= 6 and subjects = 'tech/linux'")
	if err != nil {
		t.Fatal(err)
	}
	if qs := s.Queries(); len(qs) != 1 || qs[0] != canon {
		t.Fatalf("Queries() = %v, want [%s]", qs, canon)
	}

	// The compiled filter travels only inside the subgroup signature set;
	// a raw AttrSubs copy would double the summary's gossip bytes.
	if _, ok := a.Attr(astrolabe.AttrSubs).RawBytes(); ok {
		t.Fatal("predicate leaf advertised a redundant raw subs filter")
	}
	setEnc, ok := a.Attr(AttrSubGroups).RawBytes()
	if !ok {
		t.Fatal("subgroup set not advertised")
	}
	_, setFilters, ok := bloom.DecodeSignatureSet(setEnc)
	if !ok || len(setFilters) != 1 {
		t.Fatalf("subgroup set: n=%d ok=%v", len(setFilters), ok)
	}
	raw := setFilters[0]
	f, err := bloom.FromBytes(raw, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		query.SubjectKey("tech/linux"), query.WildPublisher,
		query.UrgencyKey(6), query.UrgencyKey(7), query.UrgencyKey(8),
	} {
		if !f.Test(key) {
			t.Errorf("advertised filter missing %q", key)
		}
	}
	if f.Test(query.UrgencyKey(5)) || f.Test(query.WildSubject) || f.Test(query.WildUrgency) {
		t.Error("advertised filter carries keys the predicate excludes")
	}

	enc, ok := a.Attr(AttrSubGroups).RawBytes()
	if !ok {
		t.Fatal("subgroup set not advertised")
	}
	k, filters, ok := bloom.DecodeSignatureSet(enc)
	if !ok || k != DefaultSubgroupK || len(filters) != 1 {
		t.Fatalf("subgroup set: k=%d n=%d ok=%v", k, len(filters), ok)
	}
	if !bytes.Equal(filters[0], raw) {
		t.Fatal("leaf subgroup filter differs from the subs filter")
	}

	if err := s.UnsubscribeQuery("urgency>=6 AND subjects='tech/linux'"); err != nil {
		t.Fatal(err)
	}
	if qs := s.Queries(); len(qs) != 0 {
		t.Fatalf("Queries() after unsubscribe = %v", qs)
	}
}

func TestSubscribeQueryRequiresPredicateMode(t *testing.T) {
	a := testAgent(t)
	s, _ := NewSubscriber(Config{Agent: a})
	if _, err := s.SubscribeQuery("urgency = 1"); err == nil {
		t.Fatal("SubscribeQuery accepted outside ModePredicate")
	}
	ap := predicateAgent(t)
	sp, _ := NewSubscriber(Config{Agent: ap, Mode: ModePredicate})
	if _, err := sp.SubscribeQuery("urgency = "); err == nil {
		t.Fatal("malformed query accepted")
	}
}

func TestShouldDeliverQueryAndCounters(t *testing.T) {
	a := predicateAgent(t)
	var ctr Counters
	s, err := NewSubscriber(Config{Agent: a, Mode: ModePredicate, Counters: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubscribeQuery("publisher = 'slashdot' AND urgency >= 5"); err != nil {
		t.Fatal(err)
	}

	env, _ := EncodeItem(testItem(), ModePredicate, DefaultGeometry, nil)
	if !s.ShouldDeliver(&env) {
		t.Fatal("query-matching item rejected")
	}
	calm := testItem()
	calm.Urgency = 1
	envCalm, _ := EncodeItem(calm, ModePredicate, DefaultGeometry, nil)
	if s.ShouldDeliver(&envCalm) {
		t.Fatal("query-failing item delivered")
	}
	snap := ctr.Snapshot()
	if snap.ExactMatches != 1 || snap.FalsePositiveDrops != 1 {
		t.Fatalf("counters = %+v, want 1 match / 1 drop", snap)
	}

	// Plain subject subscriptions still work alongside queries.
	if err := s.Subscribe("sports/soccer"); err != nil {
		t.Fatal(err)
	}
	soccer := testItem()
	soccer.Subjects = []string{"sports/soccer"}
	soccer.Urgency = 1
	envSoccer, _ := EncodeItem(soccer, ModePredicate, DefaultGeometry, nil)
	if !s.ShouldDeliver(&envSoccer) {
		t.Fatal("plain subject subscription lost in predicate mode")
	}
}

func TestEncodeItemPredicateLayout(t *testing.T) {
	it := testItem()
	it.Subjects = []string{"tech/linux", "world/asia"}
	geo := Geometry{Bits: 1024, Hashes: 4}
	env, err := EncodeItem(it, ModePredicate, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := (2 + 2) * geo.Hashes; len(env.SubjectBits) != want {
		t.Fatalf("SubjectBits len = %d, want %d", len(env.SubjectBits), want)
	}
	wantSub := bloom.PositionsFor(query.SubjectKey("tech/linux"), geo.Bits, geo.Hashes)
	for i, p := range wantSub {
		if env.SubjectBits[i] != p {
			t.Fatal("subject group positions disagree with signature keys")
		}
	}
	wantUrg := bloom.PositionsFor(query.UrgencyKey(5), geo.Bits, geo.Hashes)
	off := len(env.SubjectBits) - geo.Hashes
	for i, p := range wantUrg {
		if env.SubjectBits[off+i] != p {
			t.Fatal("urgency group positions disagree with signature keys")
		}
	}
}

func TestForwardFilterPredicatePrecision(t *testing.T) {
	geo := Geometry{Bits: 1024, Hashes: 4}
	a := predicateAgent(t)
	var ctr Counters
	s, err := NewSubscriber(Config{Agent: a, Mode: ModePredicate, Geometry: geo})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubscribeQuery("subjects = 'tech/linux' AND urgency >= 6"); err != nil {
		t.Fatal(err)
	}
	row := astrolabe.Row{Name: "child", Attrs: value.Map{
		astrolabe.AttrSubs: a.Attr(astrolabe.AttrSubs),
		AttrSubGroups:      a.Attr(AttrSubGroups),
	}}
	filter := ForwardFilter(ModePredicate, geo, &ctr)

	calm := testItem() // tech/linux, urgency 5
	envCalm, _ := EncodeItem(calm, ModePredicate, geo, nil)
	if filter("/", row, &envCalm) {
		t.Fatal("urgency below the predicate range forwarded — no precision win")
	}
	urgent := testItem()
	urgent.Urgency = 7
	envHot, _ := EncodeItem(urgent, ModePredicate, geo, nil)
	if !filter("/", row, &envHot) {
		t.Fatal("matching item pruned — signature unsound")
	}
	wrongSubj := testItem()
	wrongSubj.Subjects = []string{"sports/soccer"}
	wrongSubj.Urgency = 7
	envWS, _ := EncodeItem(wrongSubj, ModePredicate, geo, nil)
	if filter("/", row, &envWS) {
		t.Fatal("non-matching subject forwarded")
	}
	snap := ctr.Snapshot()
	if snap.Forwards != 1 || snap.SubgroupTests == 0 {
		t.Fatalf("counters = %+v, want 1 forward and subgroup tests > 0", snap)
	}

	// ModeBloom over plain subject bits cannot see the urgency constraint:
	// both tech/linux items pass its filter — the false positives
	// ModePredicate prunes.
	fb := bloom.New(geo.Bits, geo.Hashes)
	fb.Add("tech/linux")
	bloomRow := rowWithSubs(fb)
	bloomFilter := ForwardFilter(ModeBloom, geo, nil)
	envCalmB, _ := EncodeItem(calm, ModeBloom, geo, nil)
	if !bloomFilter("/", bloomRow, &envCalmB) {
		t.Fatal("bloom baseline broken")
	}
}

func TestForwardFilterPredicateFallbacks(t *testing.T) {
	geo := Geometry{Bits: 1024, Hashes: 4}
	// Build the raw subs filter an older (or BIT_OR-aggregating) row
	// would carry: leaves no longer advertise it, but the forwarding
	// test still honors it as the fallback summary.
	sf := bloom.New(geo.Bits, geo.Hashes)
	query.SubjectsSignature([]string{"tech/linux"}).Fill(sf)
	subs := value.Bytes(sf.Bytes())
	env, _ := EncodeItem(testItem(), ModePredicate, geo, nil)
	filter := ForwardFilter(ModePredicate, geo, nil)

	// No subg attribute: the OR-aggregated subs filter decides.
	if !filter("/", astrolabe.Row{Attrs: value.Map{astrolabe.AttrSubs: subs}}, &env) {
		t.Fatal("subs fallback did not forward a matching item")
	}
	// Malformed subg (scrambled row): same fallback, never a lost delivery.
	mal := astrolabe.Row{Attrs: value.Map{
		astrolabe.AttrSubs: subs,
		AttrSubGroups:      value.Bytes([]byte{0x00, 0x13, 0x9a}),
	}}
	if !filter("/", mal, &env) {
		t.Fatal("malformed subgroup set lost a delivery instead of falling back")
	}
	// Neither attribute: prune.
	if filter("/", astrolabe.Row{Attrs: value.Map{}}, &env) {
		t.Fatal("row without any summary forwarded")
	}
	// Envelope encoded under another mode (no predicate position groups):
	// the filter recomputes positions rather than misreading the layout.
	envBloom, _ := EncodeItem(testItem(), ModeBloom, geo, nil)
	if !filter("/", astrolabe.Row{Attrs: value.Map{astrolabe.AttrSubs: subs}}, &envBloom) {
		t.Fatal("cross-mode envelope not recomputed")
	}
}
