package sqlagg

import "strings"

// TokenKind classifies a lexical token for external consumers of the
// sqlagg lexer. internal/query builds the subscription predicate language
// on the same token stream so the two dialects cannot drift on string
// escaping, number syntax, or operator spelling.
type TokenKind uint8

// Token kinds, mirroring the internal lexer's categories.
const (
	TokEOF     = TokenKind(tokEOF)
	TokIdent   = TokenKind(tokIdent)
	TokNumber  = TokenKind(tokNumber)
	TokString  = TokenKind(tokString)
	TokOp      = TokenKind(tokOp)
	TokKeyword = TokenKind(tokKeyword)
)

// String returns the kind's human-readable name (for parse errors).
func (k TokenKind) String() string { return tokenKind(k).String() }

// Token is one lexical token: keywords upper-cased, identifiers as
// written, string literals unquoted, Pos the byte offset in the source.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// Tokens lexes src with the sqlagg lexer and returns the full token
// stream, terminated by a TokEOF token. Identifiers whose upper-casing
// appears in extraKeywords are promoted to keyword tokens (upper-cased),
// letting callers graft contextual keywords such as IN, LIKE, or BETWEEN
// onto the dialect without touching the core grammar.
func Tokens(src string, extraKeywords ...string) ([]Token, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	extra := make(map[string]bool, len(extraKeywords))
	for _, k := range extraKeywords {
		extra[strings.ToUpper(k)] = true
	}
	out := make([]Token, len(toks))
	for i, t := range toks {
		kind, text := TokenKind(t.kind), t.text
		if t.kind == tokIdent {
			if up := strings.ToUpper(t.text); extra[up] {
				kind, text = TokKeyword, up
			}
		}
		out[i] = Token{Kind: kind, Text: text, Pos: t.pos}
	}
	return out, nil
}
