// Command benchgate guards the perf trajectory without external tooling.
//
// Gate mode (CI): compare two BENCH_<ID>.json artifacts and fail when
// any common configuration's bytes_per_round — or the per-node peak
// heap, when both artifacts measured the same cluster size — regressed
// beyond the allowed fraction. Baseline-only configurations (rows CI
// does not regenerate, like the nightly million-node point) are skipped:
//
//	benchgate -baseline old/BENCH_E1.json -current artifacts/BENCH_E1.json
//	benchgate -baseline ... -current ... -max-regress 0.10 -max-heap-regress 0.10
//
// Chaos artifacts (BENCH_E10.json) are gated on hard bounds instead of
// deltas: every scenario's final delivery must reach -min-delivery, its
// during-fault delivery must stay above the scenario's own floor, and it
// must converge within -max-convergence-rounds (0 = the scenario's own
// max_rounds bound):
//
//	benchgate -baseline old/BENCH_E10.json -current artifacts/BENCH_E10.json
//	benchgate -baseline ... -current ... -min-delivery 1.0 -max-convergence-rounds 0
//
// Compare mode (benchstat fallback for `make bench-compare`): diff two
// `go test -bench` output files metric by metric:
//
//	benchgate -compare baseline.txt current.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline   = fs.String("baseline", "", "baseline BENCH_<ID>.json")
		current    = fs.String("current", "", "current BENCH_<ID>.json")
		maxRegress = fs.Float64("max-regress", 0.10, "allowed fractional bytes_per_round regression")
		maxHeap    = fs.Float64("max-heap-regress", 0.10, "allowed fractional peak_heap_bytes_per_node regression")
		maxConv    = fs.Int("max-convergence-rounds", 0, "chaos: max rounds back to 100% delivery (0 = each scenario's own max_rounds)")
		minDeliver = fs.Float64("min-delivery", 1.0, "chaos: required final delivery fraction per scenario")
		compare    = fs.Bool("compare", false, "diff two `go test -bench` output files (positional args)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two bench output files, got %d", fs.NArg())
		}
		return compareBenchFiles(fs.Arg(0), fs.Arg(1))
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("need -baseline and -current (or -compare old.txt new.txt)")
	}
	return gate(*baseline, *current, *maxRegress, *maxHeap, *maxConv, *minDeliver)
}

// benchArtifact is the slice of the BENCH_<ID>.json schema the gate needs.
type benchArtifact struct {
	ID   string `json:"id"`
	Wire []struct {
		Label         string  `json:"label"`
		BytesPerRound float64 `json:"bytes_per_round"`
	} `json:"bytes_on_wire"`
	// Per-node peak heap, comparable only between artifacts that
	// simulated the same cluster size.
	PeakHeapBytesPerNode float64 `json:"peak_heap_bytes_per_node"`
	HeapNodes            int     `json:"heap_nodes"`
	// Chaos rows (BENCH_E10.json) carry their own bounds: the scenario's
	// during-fault delivery floor and convergence-round budget.
	Chaos []chaosRow `json:"chaos"`
}

type chaosRow struct {
	Scenario            string  `json:"scenario"`
	DeliveryDuringFault float64 `json:"delivery_during_fault"`
	FinalDelivery       float64 `json:"final_delivery"`
	ConvergenceRounds   int     `json:"convergence_rounds"`
	SelfHealed          *bool   `json:"self_healed"`
	DeliveryFloor       float64 `json:"delivery_floor"`
	MaxRounds           int     `json:"max_rounds"`
}

func gate(baselinePath, currentPath string, maxRegress, maxHeap float64, maxConv int, minDeliver float64) error {
	var base, cur benchArtifact
	if err := readJSON(baselinePath, &base); err != nil {
		return err
	}
	if err := readJSON(currentPath, &cur); err != nil {
		return err
	}
	if len(cur.Chaos) > 0 || len(base.Chaos) > 0 {
		return gateChaos(baselinePath, base, cur, maxConv, minDeliver)
	}
	if len(base.Wire) == 0 {
		// A pre-codec artifact has no wire section: nothing to gate
		// against yet. Report and pass so the first regenerating commit
		// can land the section.
		fmt.Printf("benchgate: baseline %s has no bytes_on_wire section; gate skipped\n", baselinePath)
		return nil
	}
	curByLabel := map[string]float64{}
	for _, w := range cur.Wire {
		curByLabel[w.Label] = w.BytesPerRound
	}
	failed := false
	compared := 0
	for _, b := range base.Wire {
		got, ok := curByLabel[b.Label]
		if !ok {
			// The committed baseline may hold configurations CI does not
			// regenerate (the nightly 1M-node row, big-run points); gate
			// on the intersection and only fail when it is empty.
			fmt.Printf("benchgate: %-22s baseline %.0f B/round, not in current artifact; skipped\n",
				b.Label, b.BytesPerRound)
			continue
		}
		compared++
		delta := (got - b.BytesPerRound) / b.BytesPerRound
		status := "ok"
		if delta > maxRegress {
			status = fmt.Sprintf("REGRESSED beyond %.0f%%", maxRegress*100)
			failed = true
		}
		fmt.Printf("benchgate: %-22s %.0f -> %.0f B/round (%+.1f%%) %s\n",
			b.Label, b.BytesPerRound, got, delta*100, status)
	}
	if compared == 0 {
		return fmt.Errorf("no common bytes_on_wire labels between %s and %s", baselinePath, currentPath)
	}
	if base.PeakHeapBytesPerNode > 0 && cur.PeakHeapBytesPerNode > 0 {
		if base.HeapNodes != cur.HeapNodes {
			fmt.Printf("benchgate: peak heap/node measured at different sizes (%d vs %d nodes); skipped\n",
				base.HeapNodes, cur.HeapNodes)
		} else {
			delta := (cur.PeakHeapBytesPerNode - base.PeakHeapBytesPerNode) / base.PeakHeapBytesPerNode
			status := "ok"
			if delta > maxHeap {
				status = fmt.Sprintf("REGRESSED beyond %.0f%%", maxHeap*100)
				failed = true
			}
			fmt.Printf("benchgate: heap/node @%-9d %.0f -> %.0f B (%+.1f%%) %s\n",
				base.HeapNodes, base.PeakHeapBytesPerNode, cur.PeakHeapBytesPerNode, delta*100, status)
		}
	}
	if failed {
		return fmt.Errorf("regression gate failed (baseline %s)", baselinePath)
	}
	return nil
}

// gateChaos enforces the adversarial suite's hard bounds on the current
// artifact: per-scenario final delivery, during-fault floor, convergence
// budget, and the self-healing oracle. The baseline supplies the expected
// scenario set (a scenario that vanishes from the current artifact fails
// the gate) and convergence deltas for the report.
func gateChaos(baselinePath string, base, cur benchArtifact, maxConv int, minDeliver float64) error {
	baseBy := map[string]chaosRow{}
	for _, b := range base.Chaos {
		baseBy[b.Scenario] = b
	}
	failed := false
	for _, c := range cur.Chaos {
		bound := maxConv
		if bound <= 0 {
			bound = c.MaxRounds
		}
		var problems []string
		if c.FinalDelivery < minDeliver {
			problems = append(problems, fmt.Sprintf("final delivery %.4f < %.4f", c.FinalDelivery, minDeliver))
		}
		if c.DeliveryDuringFault < c.DeliveryFloor {
			problems = append(problems, fmt.Sprintf("during-fault delivery %.4f < floor %.4f", c.DeliveryDuringFault, c.DeliveryFloor))
		}
		if c.ConvergenceRounds > bound {
			problems = append(problems, fmt.Sprintf("convergence %d rounds > bound %d", c.ConvergenceRounds, bound))
		}
		if c.SelfHealed != nil && !*c.SelfHealed {
			problems = append(problems, "did not self-heal (table fingerprint differs from clean twin)")
		}
		convNote := fmt.Sprintf("conv %d/%d", c.ConvergenceRounds, bound)
		if b, ok := baseBy[c.Scenario]; ok {
			convNote = fmt.Sprintf("conv %d -> %d (bound %d)", b.ConvergenceRounds, c.ConvergenceRounds, bound)
		}
		status := "ok"
		if len(problems) > 0 {
			status = "FAILED: " + strings.Join(problems, "; ")
			failed = true
		}
		fmt.Printf("benchgate: %-18s final %.1f%% during %.1f%% (floor %.0f%%) %s %s\n",
			c.Scenario, c.FinalDelivery*100, c.DeliveryDuringFault*100,
			c.DeliveryFloor*100, convNote, status)
	}
	// Scenarios the baseline covered must still be covered — unless the
	// current artifact is an explicit subset run (smoke jobs pass the
	// subset's own baseline, so this only bites when the sets diverge
	// unexpectedly).
	curBy := map[string]bool{}
	for _, c := range cur.Chaos {
		curBy[c.Scenario] = true
	}
	for _, b := range base.Chaos {
		if !curBy[b.Scenario] {
			fmt.Printf("benchgate: %-18s in baseline but missing from current artifact; skipped\n", b.Scenario)
		}
	}
	if len(cur.Chaos) == 0 {
		return fmt.Errorf("current artifact has no chaos rows")
	}
	if failed {
		return fmt.Errorf("chaos gate failed (baseline %s)", baselinePath)
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// benchMetrics maps "BenchmarkName/arm" -> unit -> value, averaged over
// repeated runs of the same benchmark.
type benchMetrics map[string]map[string]float64

func parseBenchFile(path string) (benchMetrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := benchMetrics{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -<GOMAXPROCS> suffix so runs on different hosts align.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = map[string]float64{}
			out[name] = m
		}
		counts[name]++
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, m := range out {
		for unit := range m {
			m[unit] /= float64(counts[name])
		}
	}
	return out, nil
}

func compareBenchFiles(oldPath, newPath string) error {
	oldM, err := parseBenchFile(oldPath)
	if err != nil {
		return err
	}
	newM, err := parseBenchFile(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		if _, ok := newM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	fmt.Printf("%-44s %-14s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "delta")
	for _, name := range names {
		units := make([]string, 0, len(oldM[name]))
		for unit := range oldM[name] {
			if _, ok := newM[name][unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			o, n := oldM[name][unit], newM[name][unit]
			delta := "~"
			if o != 0 {
				delta = fmt.Sprintf("%+.1f%%", (n-o)/o*100)
			}
			fmt.Printf("%-44s %-14s %14.1f %14.1f %8s\n", name, unit, o, n, delta)
		}
	}
	return nil
}
