package metrics

import (
	"fmt"
	"math"
	"sync"
)

// SketchBuckets is the fixed bucket count of a Sketch. Together with
// sketchGamma it covers roughly one nanosecond to several hours of
// latency, which is every delivery latency this system can produce.
const SketchBuckets = 48

const (
	// sketchMin is the lower edge of bucket 1 (values at or below it land
	// in bucket 0). One microsecond: finer resolution is below anything a
	// network delivery path can measure meaningfully.
	sketchMin = 1e-6
	// sketchGamma is the bucket growth factor. gamma=1.6 over 47 log
	// buckets spans sketchMin * 1.6^47 ≈ 3.8e3 seconds; quantile
	// estimates come back as the bucket's geometric midpoint, bounding
	// the relative error at sqrt(gamma)-1 ≈ 26%.
	sketchGamma = 1.6
)

// Sketch is a compact mergeable quantile sketch over non-negative values
// (log-bucketed counting histogram). It exists so Astrolabe can aggregate
// delivery-latency distributions up the zone hierarchy: per-node sketches
// gossip as a few dozen bytes, merge by bucket-wise addition in any order
// (commutative, associative, idempotent-under-replay-free like any
// counter), and any node can then answer "cluster-wide p99" from its own
// replicated table. Count and Sum are exact; quantiles are bucket
// estimates.
//
// The zero value is an empty sketch, ready to use. All methods are safe
// for concurrent use.
type Sketch struct {
	mu     sync.Mutex
	counts [SketchBuckets]uint64
	sum    float64
}

// sketchBucket maps a value to its bucket index.
func sketchBucket(v float64) int {
	if v <= sketchMin || math.IsNaN(v) {
		return 0
	}
	// Clamp before the int conversion: +Inf (and anything past the top
	// bucket) would otherwise overflow int.
	f := math.Log(v/sketchMin) / math.Log(sketchGamma)
	if f >= SketchBuckets-2 {
		return SketchBuckets - 1
	}
	return 1 + int(f)
}

// sketchValue returns the representative value of a bucket: its geometric
// midpoint (bucket 0 reports sketchMin).
func sketchValue(b int) float64 {
	if b <= 0 {
		return sketchMin
	}
	lo := sketchMin * math.Pow(sketchGamma, float64(b-1))
	return lo * math.Sqrt(sketchGamma)
}

// Observe records one value.
func (s *Sketch) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	b := sketchBucket(v)
	s.mu.Lock()
	s.counts[b]++
	s.sum += v
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, c := range s.counts {
		n += c
	}
	return n
}

// Sum returns the exact sum of all observations (merges included).
func (s *Sketch) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Quantile returns the q-quantile estimate (0 ≤ q ≤ 1), or 0 for an
// empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, c := range s.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b, c := range s.counts {
		seen += c
		if seen >= rank {
			return sketchValue(b)
		}
	}
	return sketchValue(SketchBuckets - 1)
}

// Merge folds other into s (bucket-wise addition). other is unchanged.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other == s {
		return
	}
	other.mu.Lock()
	counts := other.counts
	sum := other.sum
	other.mu.Unlock()
	s.mu.Lock()
	for i, c := range counts {
		s.counts[i] += c
	}
	s.sum += sum
	s.mu.Unlock()
}

// Reset discards all state.
func (s *Sketch) Reset() {
	s.mu.Lock()
	s.counts = [SketchBuckets]uint64{}
	s.sum = 0
	s.mu.Unlock()
}

// sketchVersion tags the encoding so the format can evolve.
const sketchVersion = 1

// AppendBinary appends the sketch's compact encoding to dst: a version
// byte, the sum as 8 big-endian bytes, then one uvarint per bucket.
// Empty buckets encode as single zero bytes, which the wire codec's
// zero-run packing then collapses, so a sparse sketch costs a handful of
// bytes on the wire.
func (s *Sketch) AppendBinary(dst []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst = append(dst, sketchVersion)
	bits := math.Float64bits(s.sum)
	for i := 7; i >= 0; i-- {
		dst = append(dst, byte(bits>>(8*i)))
	}
	for _, c := range s.counts {
		dst = appendUvarint(dst, c)
	}
	return dst
}

// Encode returns the sketch's compact encoding.
func (s *Sketch) Encode() []byte { return s.AppendBinary(nil) }

// DecodeSketch parses an encoding produced by Encode/AppendBinary.
func DecodeSketch(data []byte) (*Sketch, error) {
	if len(data) < 9 {
		return nil, fmt.Errorf("metrics: sketch encoding too short (%d bytes)", len(data))
	}
	if data[0] != sketchVersion {
		return nil, fmt.Errorf("metrics: unknown sketch version %d", data[0])
	}
	var bits uint64
	for _, b := range data[1:9] {
		bits = bits<<8 | uint64(b)
	}
	s := &Sketch{sum: math.Float64frombits(bits)}
	pos := 9
	for i := 0; i < SketchBuckets; i++ {
		v, n := uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("metrics: truncated sketch bucket %d", i)
		}
		s.counts[i] = v
		pos += n
	}
	if pos != len(data) {
		return nil, fmt.Errorf("metrics: %d trailing bytes after sketch", len(data)-pos)
	}
	return s, nil
}

// MergeEncoded merges two encoded sketches without exposing intermediate
// state, for aggregation layers that hold sketches as opaque bytes. A nil
// or empty operand passes the other through unchanged; two invalid
// encodings yield an error.
func MergeEncoded(a, b []byte) ([]byte, error) {
	if len(a) == 0 {
		return b, nil
	}
	if len(b) == 0 {
		return a, nil
	}
	sa, err := DecodeSketch(a)
	if err != nil {
		return nil, err
	}
	sb, err := DecodeSketch(b)
	if err != nil {
		return nil, err
	}
	sa.Merge(sb)
	return sa.Encode(), nil
}

// appendUvarint / uvarint are the standard varint routines, local so the
// package stays dependency-free beyond the standard library.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarint(src []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range src {
		if i == 10 {
			return 0, -1
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
