package wire

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeeds returns one encoded frame per message kind plus a gob frame,
// so both fuzz targets start from every decoder path.
func fuzzSeeds(t interface{ Fatal(...any) }) [][]byte {
	msgs := []*Message{
		sampleGossipMessage(),
		sampleDigestMessage(),
		sampleDeltaMessage(),
		sampleStampedDeltaMessage(),
		{
			Kind:      KindClockPing,
			From:      "n1:9000",
			ClockSync: &ClockSync{Seq: 3, T1: 1017619200123456789},
		},
		{
			Kind:      KindClockPong,
			From:      "n2:9000",
			ClockSync: &ClockSync{Seq: 3, T1: 1017619200123456789, T2: 1017619200123459999},
		},
		{
			Kind: KindGossipReply,
			From: "n2:9000",
			GossipReply: &GossipReply{
				FromZone: "/usa/ny",
				Rows:     sampleGossipMessage().Gossip.Rows,
			},
		},
		{
			Kind: KindMulticast,
			From: "rep-1:9000",
			Multicast: &Multicast{
				TargetZone: "/asia",
				Hops:       2,
				Deliver:    true,
				AckSeq:     7,
				Envelope: ItemEnvelope{
					Publisher:   "reuters",
					ItemID:      "item-42",
					Revision:    1,
					Subjects:    []string{"world/asia"},
					SubjectBits: []uint32{17, 403},
					ScopeZone:   "/asia",
					Predicate:   "premium",
					Published:   time.Unix(1017619300, 0).UTC(),
					Payload:     []byte("<nitf/>"),
					Signer:      "reuters",
					Sig:         []byte{9, 9},
				},
			},
		},
		{
			Kind:         KindMulticastAck,
			From:         "leaf-3:9000",
			MulticastAck: &MulticastAck{Seq: 7, Key: "reuters/item-42#1", TargetZone: "/asia"},
		},
		{
			Kind: KindStateRequest,
			From: "n9:9000",
			StateRequest: &StateRequest{
				Since:    time.Unix(1017619200, 0).UTC(),
				Subjects: []string{"tech/linux", "world"},
				MaxItems: 64,
			},
		},
		{
			Kind: KindStateReply,
			From: "n2:9000",
			StateReply: &StateReply{
				Envelopes: []ItemEnvelope{{
					Publisher: "ap",
					ItemID:    "it-1",
					Subjects:  []string{"tech"},
					Published: time.Unix(1017619200, 0).UTC(),
					Payload:   bytes.Repeat([]byte{0, 0, 0, 1}, 8),
				}},
				Truncated: true,
			},
		},
	}
	var seeds [][]byte
	for _, m := range msgs {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, data)
	}
	// One gob frame so the fallback decoder is in the corpus too.
	SetGobFallback(true)
	data, err := Encode(sampleGossipMessage())
	SetGobFallback(false)
	if err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, data)
	return seeds
}

// FuzzDecode feeds arbitrary bytes to Decode: it must never panic, never
// allocate absurdly, and anything it accepts must re-encode cleanly.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{codecMagic})
	f.Add([]byte{codecMagic, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		m, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := Encode(m); err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
	})
}

// FuzzRoundTrip checks the codec is canonical on everything it accepts:
// decode → encode → decode → encode must be a fixed point, so a frame's
// meaning never drifts as it is relayed.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		m1, err := Decode(data)
		if err != nil {
			return
		}
		enc1, err := Encode(m1)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\nframe: %x", err, enc1)
		}
		enc2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("codec not canonical:\n first  %x\n second %x", enc1, enc2)
		}
	})
}
