package sqlagg

import (
	"testing/quick"

	"newswire/internal/value"
	"strings"
	"testing"
)

func TestParseValidPrograms(t *testing.T) {
	tests := []struct {
		give      string
		wantNames []string
	}{
		{"SELECT COUNT(*)", []string{"count"}},
		{"SELECT COUNT(*) AS members", []string{"members"}},
		{"select min(load) as load", []string{"load"}},
		{"SELECT MIN(load) AS minload, MAX(load) AS maxload", []string{"minload", "maxload"}},
		{"SELECT BIT_OR(subs) AS subs", []string{"subs"}},
		{"SELECT MINK(3, load, addr) AS reps", []string{"reps"}},
		{"SELECT SUM(load)/COUNT(*) AS meanload", []string{"meanload"}},
		{"SELECT COUNT(*) AS n WHERE alive", []string{"n"}},
		{"SELECT COUNT(*) AS n WHERE load < 0.5 AND alive = TRUE", []string{"n"}},
		{"SELECT FIRST(name) AS who WHERE NOT failed", []string{"who"}},
		{"SELECT AVG(latency) AS lat WHERE region = 'asia'", []string{"lat"}},
		{"SELECT MAXK(2, score, addr) AS best", []string{"best"}},
		{"SELECT BOOL_OR(alive) AS any_alive, BOOL_AND(alive) AS all_alive", []string{"any_alive", "all_alive"}},
		{"SELECT UNION(pubs) AS pubs", []string{"pubs"}},
		{"SELECT MIN(HASH(addr, nonce)) AS h", []string{"h"}},
		{"SELECT 1 AS one", []string{"one"}},
		{"SELECT COUNT(x)", []string{"count"}},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			p, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.give, err)
			}
			got := p.OutputNames()
			if len(got) != len(tt.wantNames) {
				t.Fatalf("output names %v, want %v", got, tt.wantNames)
			}
			for i := range got {
				if got[i] != tt.wantNames[i] {
					t.Fatalf("output names %v, want %v", got, tt.wantNames)
				}
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		give    string
		wantErr string
	}{
		{"", "expected SELECT"},
		{"FROM x", "expected SELECT"},
		{"SELECT", "unexpected"},
		{"SELECT COUNT(*) extra", "trailing"},
		{"SELECT MIN(*)", "only COUNT(*)"},
		{"SELECT NOPE(x)", "unknown function"},
		{"SELECT MIN(x, y)", "arguments"},
		{"SELECT MINK(1, x)", "arguments"},
		{"SELECT MIN(MAX(x))", "nested aggregate"},
		{"SELECT 1 + 2", "requires AS"},
		{"SELECT COUNT(*) AS n, MIN(x) AS n", "duplicate output"},
		{"SELECT COUNT(*) AS 5", "identifier after AS"},
		{"SELECT 'unterminated", "unterminated string"},
		{"SELECT 1.", "malformed number"},
		{"SELECT @", "unexpected character"},
		{"SELECT (COUNT(*)", `expected ")"`},
		{"SELECT COUNT(*) WHERE", "unexpected"},
		{"SELECT IF(*)", "not valid"},
		{"SELECT ABS(1, 2) AS x", "arguments"},
		{"SELECT COUNT(*) AS n WHERE x !", "unexpected character"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			_, err := Parse(tt.give)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tt.give, tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Parse(%q) error = %q, want substring %q", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestParseNormalizedString(t *testing.T) {
	p := MustParse("select count(*) as n, bit_or(subs) as subs where alive and load<0.5")
	s := p.String()
	for _, want := range []string{"SELECT", "COUNT(*) AS n", "BIT_OR(subs) AS subs", "WHERE", "AND", "load < 0.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("normalized %q missing %q", s, want)
		}
	}
}

func TestParseSourcePreserved(t *testing.T) {
	src := "SELECT COUNT(*) AS n"
	p := MustParse(src)
	if p.Source() != src {
		t.Fatalf("Source() = %q, want %q", p.Source(), src)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not sql")
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 = 7, not 9.
	p := MustParse("SELECT 1 + 2 * 3 AS x")
	out, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out["x"].AsInt(); v != 7 {
		t.Fatalf("1+2*3 = %v, want 7", out["x"])
	}
	// (1 + 2) * 3 = 9.
	p = MustParse("SELECT (1 + 2) * 3 AS x")
	out, _ = p.Eval(nil)
	if v, _ := out["x"].AsInt(); v != 9 {
		t.Fatalf("(1+2)*3 = %v, want 9", out["x"])
	}
	// Comparison binds looser than arithmetic; AND looser than comparison;
	// OR loosest.
	p2 := MustParse("SELECT COUNT(*) AS n WHERE a + 1 > 2 AND b = 1 OR c = 2")
	if p2.Where == nil {
		t.Fatal("missing WHERE")
	}
	top, ok := p2.Where.(*Binary)
	if !ok || top.Op != "OR" {
		t.Fatalf("top operator = %v, want OR", p2.Where)
	}
}

func TestParseStringEscapes(t *testing.T) {
	p := MustParse("SELECT 'it''s' AS s")
	out, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := out["s"].AsString(); s != "it's" {
		t.Fatalf("s = %q, want \"it's\"", s)
	}
}

func TestParsePredicate(t *testing.T) {
	pred, err := ParsePredicate("premium AND region = 'asia'")
	if err != nil {
		t.Fatal(err)
	}
	if pred.Source() == "" || pred.String() == "" {
		t.Fatal("predicate lost its source text")
	}
	if _, err := ParsePredicate("COUNT(*) > 1"); err == nil {
		t.Fatal("aggregate in predicate should be rejected")
	}
	if _, err := ParsePredicate("a b"); err == nil {
		t.Fatal("trailing input should be rejected")
	}
	if _, err := ParsePredicate("(("); err == nil {
		t.Fatal("unbalanced parens should be rejected")
	}
}

func TestFunctionNameLists(t *testing.T) {
	aggs := AggregateNames()
	if len(aggs) == 0 {
		t.Fatal("no aggregates registered")
	}
	for i := 1; i < len(aggs); i++ {
		if aggs[i-1] >= aggs[i] {
			t.Fatal("AggregateNames not sorted")
		}
	}
	scalars := ScalarNames()
	if len(scalars) == 0 {
		t.Fatal("no scalar functions registered")
	}
	found := false
	for _, s := range scalars {
		if s == "HASH" {
			found = true
		}
	}
	if !found {
		t.Fatal("HASH missing from scalar registry")
	}
}

// Property: Parse never panics on arbitrary input, and parses of valid
// programs re-parse to the same normalized form (idempotent rendering).
func TestQuickParseRobustness(t *testing.T) {
	f := func(src string) bool {
		// Must not panic; errors are fine.
		p, err := Parse(src)
		if err != nil {
			return true
		}
		// A successfully parsed program renders to a form that parses
		// again to the same rendering.
		p2, err := Parse(p.String())
		if err != nil {
			return false
		}
		return p.String() == p2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: predicates never panic on arbitrary input either.
func TestQuickPredicateRobustness(t *testing.T) {
	row := value.Map{"a": value.Int(1), "s": value.String("x")}
	f := func(src string) bool {
		pred, err := ParsePredicate(src)
		if err != nil {
			return true
		}
		pred.Eval(row) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
