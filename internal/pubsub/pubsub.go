// Package pubsub implements NewsWire's selective-forwarding layer on top
// of Astrolabe and the application-level multicast (paper §6–7).
//
// Subscriptions live as attributes of the subscriber's Astrolabe leaf row
// and aggregate up the zone hierarchy; publishing is a multicast whose
// forwarding decision at each zone consults the child zone's aggregated
// subscription summary. Three summary representations are implemented:
//
//   - ModeBloom — the paper's design: one Bloom filter attribute per node,
//     OR-aggregated upward; items carry the bit positions of their
//     subjects; a final exact-match test at the leaf discards false
//     positives (§6).
//   - ModeAttributes — the strawman §6 rejects: one boolean attribute per
//     subscription, aggregated by OR. Work and gossip size grow linearly
//     with the number of distinct subscriptions (experiment E8).
//   - ModeCategoryMask — the early prototype of §7: a per-publisher bit
//     mask attribute over a fixed category vocabulary.
package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/multicast"
	"newswire/internal/news"
	"newswire/internal/sqlagg"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// Mode selects the subscription-summary representation.
type Mode int

// Subscription summary modes.
const (
	ModeBloom Mode = iota + 1
	ModeAttributes
	ModeCategoryMask
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeBloom:
		return "bloom"
	case ModeAttributes:
		return "attributes"
	case ModeCategoryMask:
		return "category-mask"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// AttrSubPrefix is the attribute-name prefix of ModeAttributes
// subscriptions ("sub_tech/linux" = true).
const AttrSubPrefix = "sub_"

// AttrPubPrefix is the attribute-name prefix of ModeCategoryMask masks
// ("pub_reuters" = category bit mask).
const AttrPubPrefix = "pub_"

// Geometry fixes the Bloom filter shape shared by all participants. It is
// part of the (signed) system configuration, like the aggregation program.
type Geometry struct {
	Bits   int
	Hashes int
}

// DefaultGeometry is the paper's "a thousand bits or more" with single-bit
// hashing of the early prototype.
var DefaultGeometry = Geometry{Bits: bloom.DefaultBits, Hashes: bloom.DefaultHashes}

// Config configures a Subscriber.
type Config struct {
	// Agent is the Astrolabe agent whose leaf row carries the
	// subscription summary.
	Agent *astrolabe.Agent
	// Mode selects the summary representation. Default ModeBloom.
	Mode Mode
	// Geometry is the Bloom geometry (ModeBloom). Default DefaultGeometry.
	Geometry Geometry
	// Vocabulary is the category list indexed by ModeCategoryMask masks.
	// Default news.StandardSubjects.
	Vocabulary []string
}

// Subscriber manages a node's subscription set, keeps the Astrolabe
// attributes that advertise it in sync, and answers the local
// exact-match/delivery question.
type Subscriber struct {
	cfg   Config
	vocab map[string]int // category -> bit index (ModeCategoryMask)

	mu        sync.Mutex
	subjects  map[string]bool
	perPub    map[string]map[string]bool // publisher -> categories (mask mode)
	predicate *sqlagg.Predicate
}

// NewSubscriber validates cfg and returns an empty-subscription
// subscriber.
func NewSubscriber(cfg Config) (*Subscriber, error) {
	if cfg.Agent == nil {
		return nil, fmt.Errorf("pubsub: agent required")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeBloom
	}
	switch cfg.Mode {
	case ModeBloom, ModeAttributes, ModeCategoryMask:
	default:
		return nil, fmt.Errorf("pubsub: unknown mode %d", cfg.Mode)
	}
	if cfg.Geometry.Bits == 0 {
		cfg.Geometry = DefaultGeometry
	}
	if cfg.Geometry.Bits < 8 || cfg.Geometry.Hashes < 1 {
		return nil, fmt.Errorf("pubsub: bad geometry %+v", cfg.Geometry)
	}
	if cfg.Vocabulary == nil {
		cfg.Vocabulary = news.StandardSubjects
	}
	s := &Subscriber{
		cfg:      cfg,
		vocab:    make(map[string]int, len(cfg.Vocabulary)),
		subjects: make(map[string]bool),
		perPub:   make(map[string]map[string]bool),
	}
	for i, c := range cfg.Vocabulary {
		s.vocab[c] = i
	}
	return s, nil
}

// Mode returns the subscriber's summary mode.
func (s *Subscriber) Mode() Mode { return s.cfg.Mode }

// Subscribe adds subjects to the subscription set and re-advertises.
func (s *Subscriber) Subscribe(subjects ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, subj := range subjects {
		if subj == "" {
			return fmt.Errorf("pubsub: empty subject")
		}
		if s.cfg.Mode == ModeCategoryMask {
			if _, ok := s.vocab[subj]; !ok {
				return fmt.Errorf("pubsub: subject %q not in category vocabulary", subj)
			}
		}
		s.subjects[subj] = true
	}
	s.advertiseLocked()
	return nil
}

// Unsubscribe removes subjects and re-advertises. Bloom filters do not
// support deletion, so the filter is rebuilt from the remaining set — the
// freshest-row-wins gossip rule replaces the old advertisement wholesale.
func (s *Subscriber) Unsubscribe(subjects ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, subj := range subjects {
		delete(s.subjects, subj)
	}
	s.advertiseLocked()
}

// SubscribePublisher registers interest in specific categories of one
// publisher (the per-publisher interest areas of §7, ModeCategoryMask).
func (s *Subscriber) SubscribePublisher(publisher string, categories ...string) error {
	if s.cfg.Mode != ModeCategoryMask {
		return fmt.Errorf("pubsub: SubscribePublisher requires ModeCategoryMask")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.perPub[publisher]
	if set == nil {
		set = make(map[string]bool)
		s.perPub[publisher] = set
	}
	for _, c := range categories {
		if _, ok := s.vocab[c]; !ok {
			return fmt.Errorf("pubsub: category %q not in vocabulary", c)
		}
		set[c] = true
		s.subjects[c] = true
	}
	s.advertiseLocked()
	return nil
}

// SetPredicate installs an SQL selection predicate over item metadata, the
// "more complex selection criteria based on the meta-data associated with
// the news-items, in the form of an SQL query" (§8). An empty string
// clears it.
func (s *Subscriber) SetPredicate(expr string) error {
	var pred *sqlagg.Predicate
	if expr != "" {
		var err error
		pred, err = sqlagg.ParsePredicate(expr)
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.predicate = pred
	s.mu.Unlock()
	return nil
}

// Subjects returns the sorted current subscription set.
func (s *Subscriber) Subjects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.subjects))
	for subj := range s.subjects {
		out = append(out, subj)
	}
	sort.Strings(out)
	return out
}

// advertiseLocked pushes the subscription summary into the agent's row.
func (s *Subscriber) advertiseLocked() {
	switch s.cfg.Mode {
	case ModeBloom:
		f := bloom.New(s.cfg.Geometry.Bits, s.cfg.Geometry.Hashes)
		for subj := range s.subjects {
			f.Add(subj)
		}
		s.cfg.Agent.SetAttr(astrolabe.AttrSubs, value.Bytes(f.Bytes()))

	case ModeAttributes:
		// One boolean attribute per subscription. Clear every sub_*
		// attribute first (unsubscribes), then set the current set.
		updates := make(value.Map)
		for name := range s.ownSubAttrs() {
			updates[name] = value.Invalid()
		}
		for subj := range s.subjects {
			updates[AttrSubPrefix+subj] = value.Bool(true)
		}
		s.cfg.Agent.SetAttrs(updates)

	case ModeCategoryMask:
		updates := make(value.Map)
		for name := range s.ownPubAttrs() {
			updates[name] = value.Invalid()
		}
		for pub, cats := range s.perPub {
			mask := make([]byte, (len(s.cfg.Vocabulary)+7)/8)
			for c := range cats {
				idx := s.vocab[c]
				mask[idx/8] |= 1 << (idx % 8)
			}
			updates[AttrPubPrefix+pub] = value.Bytes(mask)
		}
		s.cfg.Agent.SetAttrs(updates)
	}
}

// ownSubAttrs lists the agent's current sub_* attributes.
func (s *Subscriber) ownSubAttrs() map[string]bool {
	return s.ownPrefixedAttrs(AttrSubPrefix)
}

// ownPubAttrs lists the agent's current pub_* attributes.
func (s *Subscriber) ownPubAttrs() map[string]bool {
	return s.ownPrefixedAttrs(AttrPubPrefix)
}

func (s *Subscriber) ownPrefixedAttrs(prefix string) map[string]bool {
	out := make(map[string]bool)
	rows, ok := s.cfg.Agent.Table(s.cfg.Agent.ZonePath())
	if !ok {
		return out
	}
	for _, r := range rows {
		if r.Name != s.cfg.Agent.Name() {
			continue
		}
		for name := range r.Attrs {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				out[name] = true
			}
		}
	}
	return out
}

// ShouldDeliver is the leaf's final test (§6): an exact subject match
// (discarding Bloom false positives) plus the optional SQL predicate over
// the item's metadata.
func (s *Subscriber) ShouldDeliver(env *wire.ItemEnvelope) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	matched := false
	for _, subj := range env.Subjects {
		if s.subjects[subj] {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	if s.cfg.Mode == ModeCategoryMask {
		// Interest is per publisher: the subject must be subscribed for
		// this specific publisher.
		set := s.perPub[env.Publisher]
		if set == nil {
			return false
		}
		pubMatch := false
		for _, subj := range env.Subjects {
			if set[subj] {
				pubMatch = true
				break
			}
		}
		if !pubMatch {
			return false
		}
	}
	if s.predicate != nil {
		return s.predicate.Eval(ItemMetadataRow(env))
	}
	return true
}

// ItemMetadataRow renders an envelope's metadata as an attribute row for
// SQL predicate evaluation.
func ItemMetadataRow(env *wire.ItemEnvelope) value.Map {
	return value.Map{
		"publisher": value.String(env.Publisher),
		"item_id":   value.String(env.ItemID),
		"revision":  value.Int(int64(env.Revision)),
		"urgency":   value.Int(int64(env.Urgency)),
		"subjects":  value.Strings(env.Subjects),
		"published": value.Time(env.Published),
	}
}

// ForwardFilter builds the multicast filter that consults a child row's
// aggregated subscription summary — the conditional-forwarding test of §6.
// It is stateless with respect to any one subscriber: the decision reads
// only the row and the envelope.
func ForwardFilter(mode Mode, geo Geometry) multicast.Filter {
	if geo.Bits == 0 {
		geo = DefaultGeometry
	}
	return func(zone string, row astrolabe.Row, env *wire.ItemEnvelope) bool {
		switch mode {
		case ModeAttributes:
			for _, subj := range env.Subjects {
				if v, ok := row.Attrs[AttrSubPrefix+subj].AsBool(); ok && v {
					return true
				}
			}
			return false

		case ModeCategoryMask:
			mask, ok := row.Attrs[AttrPubPrefix+env.Publisher].RawBytes()
			if !ok {
				return false
			}
			for _, pos := range env.SubjectBits {
				if int(pos/8) < len(mask) && mask[pos/8]&(1<<(pos%8)) != 0 {
					return true
				}
			}
			return false

		default: // ModeBloom
			subs, ok := row.Attrs[astrolabe.AttrSubs].RawBytes()
			if !ok || len(subs) != (geo.Bits+7)/8 {
				return false
			}
			// SubjectBits holds geo.Hashes positions per subject; the
			// item is forwarded if ANY subject fully matches. Test the
			// raw aggregated bytes directly — this runs once per child
			// row per forwarded item, so it must not allocate.
			k := geo.Hashes
		subjects:
			for i := 0; i+k <= len(env.SubjectBits); i += k {
				for _, pos := range env.SubjectBits[i : i+k] {
					if int(pos) >= geo.Bits || subs[pos/8]&(1<<(pos%8)) == 0 {
						continue subjects
					}
				}
				return true
			}
			return false
		}
	}
}

// EncodeItem builds the wire envelope for an item: NITF payload, subject
// bit positions for the configured mode, and mirrored routing metadata.
func EncodeItem(it *news.Item, mode Mode, geo Geometry, vocabulary []string) (wire.ItemEnvelope, error) {
	if geo.Bits == 0 {
		geo = DefaultGeometry
	}
	payload, err := news.MarshalNITF(it)
	if err != nil {
		return wire.ItemEnvelope{}, err
	}
	env := wire.ItemEnvelope{
		Publisher: it.Publisher,
		ItemID:    it.ID,
		Revision:  it.Revision,
		Subjects:  append([]string(nil), it.Subjects...),
		Urgency:   it.Urgency,
		Published: it.Published,
		Payload:   payload,
	}
	switch mode {
	case ModeCategoryMask:
		if vocabulary == nil {
			vocabulary = news.StandardSubjects
		}
		idx := make(map[string]int, len(vocabulary))
		for i, c := range vocabulary {
			idx[c] = i
		}
		for _, subj := range it.Subjects {
			i, ok := idx[subj]
			if !ok {
				return wire.ItemEnvelope{}, fmt.Errorf("pubsub: subject %q not in vocabulary", subj)
			}
			env.SubjectBits = append(env.SubjectBits, uint32(i))
		}
	case ModeAttributes:
		// Exact subjects travel in env.Subjects; no bits needed.
	default: // ModeBloom
		for _, subj := range it.Subjects {
			env.SubjectBits = append(env.SubjectBits,
				bloom.PositionsFor(subj, geo.Bits, geo.Hashes)...)
		}
	}
	return env, nil
}

// DecodeItem parses the envelope payload back into an item and
// cross-checks the envelope's routing metadata against it, so a forwarder
// cannot smuggle an item into subjects it does not carry.
func DecodeItem(env *wire.ItemEnvelope) (*news.Item, error) {
	it, err := news.UnmarshalNITF(env.Payload)
	if err != nil {
		return nil, err
	}
	if it.Publisher != env.Publisher || it.ID != env.ItemID || it.Revision != env.Revision {
		return nil, fmt.Errorf("pubsub: envelope identity %s does not match payload %s",
			env.Key(), it.Key())
	}
	if len(it.Subjects) != len(env.Subjects) {
		return nil, fmt.Errorf("pubsub: envelope subjects %v do not match payload %v",
			env.Subjects, it.Subjects)
	}
	for i := range it.Subjects {
		if it.Subjects[i] != env.Subjects[i] {
			return nil, fmt.Errorf("pubsub: envelope subjects %v do not match payload %v",
				env.Subjects, it.Subjects)
		}
	}
	return it, nil
}
