package sqlagg

import (
	"fmt"
	"math"

	"newswire/internal/value"
)

// Eval runs the program against a child zone table and returns the parent
// summary row. Rows are attribute maps; the WHERE clause (if any) filters
// rows before aggregation. Output attributes whose aggregate produced no
// value (e.g. MIN over an empty or non-numeric column) are omitted from the
// result, so an empty zone contributes nothing upward.
//
// Scalar evaluation follows permissive SQL-ish semantics: a missing
// attribute, a type mismatch, or division by zero yields the invalid value,
// which is not truthy and is skipped by aggregators. Eval only returns an
// error for structural problems: a select item that references a column
// outside any aggregate (there is no GROUP BY, so bare columns have no
// meaning in a summary row).
func (p *Program) Eval(rows []value.Map) (value.Map, error) {
	filtered := rows
	if p.Where != nil {
		filtered = make([]value.Map, 0, len(rows))
		for _, row := range rows {
			if evalScalar(p.Where, row).Truthy() {
				filtered = append(filtered, row)
			}
		}
	}
	out := make(value.Map, len(p.Items))
	for _, item := range p.Items {
		v, err := evalTop(item.Expr, filtered)
		if err != nil {
			return nil, fmt.Errorf("sqlagg: item %q: %w", item.Name, err)
		}
		if v.IsValid() {
			out[item.Name] = v
		}
	}
	return out, nil
}

// EvalWhere reports whether a single row satisfies the program's WHERE
// clause (true when there is no WHERE clause). Publisher dissemination
// predicates (§8's "predicates ... evaluated using the attribute values of
// a child zone") reuse this entry point.
func (p *Program) EvalWhere(row value.Map) bool {
	if p.Where == nil {
		return true
	}
	return evalScalar(p.Where, row).Truthy()
}

// EvalPredicate parses expr as a bare boolean expression and evaluates it
// against one row. It is the entry point for subscription predicates and
// publisher delivery predicates, which are expressions rather than full
// SELECT programs.
func EvalPredicate(expr string, row value.Map) (bool, error) {
	pred, err := ParsePredicate(expr)
	if err != nil {
		return false, err
	}
	return pred.Eval(row), nil
}

// Predicate is a compiled boolean expression over a single row.
type Predicate struct {
	expr Expr
	src  string
}

// ParsePredicate compiles a bare boolean expression (no SELECT keyword).
func ParsePredicate(src string) (*Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", t.text)
	}
	if containsAggregate(e) {
		return nil, &SyntaxError{Pos: 0, Msg: "aggregate function in predicate", Src: src}
	}
	return &Predicate{expr: e, src: src}, nil
}

// Eval evaluates the predicate against one row.
func (p *Predicate) Eval(row value.Map) bool {
	return evalScalar(p.expr, row).Truthy()
}

// Source returns the original predicate text.
func (p *Predicate) Source() string { return p.src }

// String renders the predicate in normalized form.
func (p *Predicate) String() string { return p.expr.String() }

// evalTop evaluates a select-item expression over the whole table.
func evalTop(e Expr, rows []value.Map) (value.Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil

	case *ColumnRef:
		return value.Invalid(), fmt.Errorf("column %q referenced outside an aggregate", n.Name)

	case *Unary:
		x, err := evalTop(n.X, rows)
		if err != nil {
			return value.Invalid(), err
		}
		return applyUnary(n.Op, x), nil

	case *Binary:
		l, err := evalTop(n.L, rows)
		if err != nil {
			return value.Invalid(), err
		}
		r, err := evalTop(n.R, rows)
		if err != nil {
			return value.Invalid(), err
		}
		return applyBinary(n.Op, l, r), nil

	case *Call:
		if spec, ok := aggregates[n.Name]; ok {
			agg := spec.new(n.Star)
			args := make([]value.Value, len(n.Args))
			for _, row := range rows {
				for i, a := range n.Args {
					args[i] = evalScalar(a, row)
				}
				agg.add(args)
			}
			return agg.result(), nil
		}
		spec := scalarFuncs[n.Name] // existence checked at parse time
		args := make([]value.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := evalTop(a, rows)
			if err != nil {
				return value.Invalid(), err
			}
			args[i] = v
		}
		return spec.call(args), nil

	default:
		return value.Invalid(), fmt.Errorf("unknown expression node %T", e)
	}
}

// evalScalar evaluates an expression against a single row. It never fails;
// unusable inputs produce the invalid value.
func evalScalar(e Expr, row value.Map) value.Value {
	switch n := e.(type) {
	case *Literal:
		return n.Val

	case *ColumnRef:
		return row[n.Name]

	case *Unary:
		return applyUnary(n.Op, evalScalar(n.X, row))

	case *Binary:
		switch n.Op {
		case "AND":
			// Short-circuit.
			if !evalScalar(n.L, row).Truthy() {
				return value.Bool(false)
			}
			return value.Bool(evalScalar(n.R, row).Truthy())
		case "OR":
			if evalScalar(n.L, row).Truthy() {
				return value.Bool(true)
			}
			return value.Bool(evalScalar(n.R, row).Truthy())
		}
		return applyBinary(n.Op, evalScalar(n.L, row), evalScalar(n.R, row))

	case *Call:
		spec, ok := scalarFuncs[n.Name]
		if !ok {
			// Aggregate inside scalar context: rejected at parse time for
			// predicates; unreachable for well-formed programs.
			return value.Invalid()
		}
		args := make([]value.Value, len(n.Args))
		for i, a := range n.Args {
			args[i] = evalScalar(a, row)
		}
		return spec.call(args)

	default:
		return value.Invalid()
	}
}

func applyUnary(op string, x value.Value) value.Value {
	switch op {
	case "-":
		switch x.Kind() {
		case value.KindInt:
			i, _ := x.AsInt()
			if i == math.MinInt64 {
				return value.Invalid()
			}
			return value.Int(-i)
		case value.KindFloat:
			f, _ := x.AsFloat()
			return value.Float(-f)
		default:
			return value.Invalid()
		}
	case "NOT":
		return value.Bool(!x.Truthy())
	default:
		return value.Invalid()
	}
}

func applyBinary(op string, l, r value.Value) value.Value {
	switch op {
	case "AND":
		return value.Bool(l.Truthy() && r.Truthy())
	case "OR":
		return value.Bool(l.Truthy() || r.Truthy())
	case "=":
		if !l.IsValid() || !r.IsValid() {
			return value.Invalid()
		}
		return value.Bool(l.Equal(r))
	case "!=":
		if !l.IsValid() || !r.IsValid() {
			return value.Invalid()
		}
		return value.Bool(!l.Equal(r))
	case "<", "<=", ">", ">=":
		c, err := l.Compare(r)
		if err != nil {
			return value.Invalid()
		}
		switch op {
		case "<":
			return value.Bool(c < 0)
		case "<=":
			return value.Bool(c <= 0)
		case ">":
			return value.Bool(c > 0)
		default:
			return value.Bool(c >= 0)
		}
	case "+", "-", "*":
		return arith(op, l, r)
	case "/":
		lf, ok1 := l.AsFloat()
		rf, ok2 := r.AsFloat()
		if !ok1 || !ok2 || rf == 0 {
			return value.Invalid()
		}
		return value.Float(lf / rf)
	case "%":
		li, ok1 := l.AsInt()
		ri, ok2 := r.AsInt()
		if !ok1 || !ok2 || ri == 0 {
			return value.Invalid()
		}
		return value.Int(li % ri)
	default:
		return value.Invalid()
	}
}

// arith implements +, -, * with int preservation when both sides are ints.
func arith(op string, l, r value.Value) value.Value {
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt {
		a, _ := l.AsInt()
		b, _ := r.AsInt()
		switch op {
		case "+":
			return value.Int(a + b)
		case "-":
			return value.Int(a - b)
		default:
			return value.Int(a * b)
		}
	}
	a, ok1 := l.AsFloat()
	b, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		// String concatenation with +.
		if op == "+" {
			ls, lok := l.AsString()
			rs, rok := r.AsString()
			if lok && rok {
				return value.String(ls + rs)
			}
		}
		return value.Invalid()
	}
	switch op {
	case "+":
		return value.Float(a + b)
	case "-":
		return value.Float(a - b)
	default:
		return value.Float(a * b)
	}
}
