package metrics

import (
	"math"
	"testing"
)

func TestSketchQuantileAccuracy(t *testing.T) {
	var s Sketch
	// Uniform 1ms..1s in 1ms steps.
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i) / 1000)
	}
	if got := s.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.5}, {0.9, 0.9}, {0.99, 0.99}, {1.0, 1.0},
	} {
		got := s.Quantile(tc.q)
		// The sketch guarantees a relative error of sqrt(gamma)-1.
		relErr := math.Abs(got-tc.want) / tc.want
		if relErr > math.Sqrt(sketchGamma)-1+1e-9 {
			t.Errorf("Quantile(%v) = %v, want within %.0f%% of %v", tc.q, got, 100*(math.Sqrt(sketchGamma)-1), tc.want)
		}
	}
	wantSum := 0.0
	for i := 1; i <= 1000; i++ {
		wantSum += float64(i) / 1000
	}
	if got := s.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
}

func TestSketchEmptyAndEdgeValues(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	s.Observe(0)
	s.Observe(-5)          // clamped to 0
	s.Observe(math.NaN())  // clamped to 0
	s.Observe(1e12)        // clamps into top bucket
	s.Observe(math.Inf(1)) // top bucket
	if got := s.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := s.Quantile(0); got != sketchMin {
		t.Errorf("Quantile(0) = %v, want %v", got, sketchMin)
	}
	if got := s.Quantile(1); got != sketchValue(SketchBuckets-1) {
		t.Errorf("Quantile(1) = %v, want top bucket %v", got, sketchValue(SketchBuckets-1))
	}
}

func TestSketchMerge(t *testing.T) {
	var a, b, both Sketch
	for i := 1; i <= 500; i++ {
		v := float64(i) / 1000
		a.Observe(v)
		both.Observe(v)
	}
	for i := 501; i <= 1000; i++ {
		v := float64(i) / 1000
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), both.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), both.Quantile(q); got != want {
			t.Errorf("merged Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got, want := a.Sum(), both.Sum(); math.Abs(got-want) > 1e-6 {
		t.Errorf("merged Sum = %v, want %v", got, want)
	}
	// Self-merge and nil-merge are no-ops.
	before := a.Count()
	a.Merge(&a)
	a.Merge(nil)
	if a.Count() != before {
		t.Errorf("self/nil merge changed Count: %d -> %d", before, a.Count())
	}
}

func TestSketchEncodeDecodeRoundTrip(t *testing.T) {
	var s Sketch
	for _, v := range []float64{0.001, 0.01, 0.01, 0.1, 2.5, 0} {
		s.Observe(v)
	}
	enc := s.Encode()
	dec, err := DecodeSketch(enc)
	if err != nil {
		t.Fatalf("DecodeSketch: %v", err)
	}
	if dec.Count() != s.Count() || dec.Sum() != s.Sum() {
		t.Fatalf("round-trip mismatch: count %d/%d sum %v/%v", dec.Count(), s.Count(), dec.Sum(), s.Sum())
	}
	for _, q := range []float64{0.5, 0.99} {
		if dec.Quantile(q) != s.Quantile(q) {
			t.Errorf("round-trip Quantile(%v) mismatch", q)
		}
	}
	// An empty sketch round-trips too and stays compact.
	var empty Sketch
	enc = empty.Encode()
	if len(enc) != 1+8+SketchBuckets {
		t.Errorf("empty encoding is %d bytes, want %d", len(enc), 1+8+SketchBuckets)
	}
	if _, err := DecodeSketch(enc); err != nil {
		t.Errorf("DecodeSketch(empty): %v", err)
	}
}

func TestSketchDecodeErrors(t *testing.T) {
	if _, err := DecodeSketch(nil); err == nil {
		t.Error("DecodeSketch(nil) succeeded")
	}
	if _, err := DecodeSketch([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("DecodeSketch with bad version succeeded")
	}
	var s Sketch
	s.Observe(0.5)
	enc := s.Encode()
	if _, err := DecodeSketch(enc[:len(enc)-1]); err == nil {
		t.Error("DecodeSketch(truncated) succeeded")
	}
	if _, err := DecodeSketch(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("DecodeSketch(trailing bytes) succeeded")
	}
}

func TestMergeEncoded(t *testing.T) {
	var a, b, both Sketch
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i) / 100)
		both.Observe(float64(i) / 100)
	}
	for i := 1; i <= 50; i++ {
		b.Observe(float64(i) / 10)
		both.Observe(float64(i) / 10)
	}
	merged, err := MergeEncoded(a.Encode(), b.Encode())
	if err != nil {
		t.Fatalf("MergeEncoded: %v", err)
	}
	dec, err := DecodeSketch(merged)
	if err != nil {
		t.Fatalf("DecodeSketch(merged): %v", err)
	}
	if dec.Count() != both.Count() {
		t.Errorf("merged Count = %d, want %d", dec.Count(), both.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if dec.Quantile(q) != both.Quantile(q) {
			t.Errorf("merged Quantile(%v) = %v, want %v", q, dec.Quantile(q), both.Quantile(q))
		}
	}

	// Empty operands pass through.
	enc := a.Encode()
	if out, err := MergeEncoded(enc, nil); err != nil || string(out) != string(enc) {
		t.Errorf("MergeEncoded(enc, nil) = %v, %v", out, err)
	}
	if out, err := MergeEncoded(nil, enc); err != nil || string(out) != string(enc) {
		t.Errorf("MergeEncoded(nil, enc) = %v, %v", out, err)
	}
	if _, err := MergeEncoded([]byte{1, 2}, enc); err == nil {
		t.Error("MergeEncoded with invalid operand succeeded")
	}
}

func TestMergeEncodedAssociative(t *testing.T) {
	var a, b, c Sketch
	a.Observe(0.01)
	b.Observe(0.1)
	b.Observe(0.2)
	c.Observe(1.5)
	ab, err := MergeEncoded(a.Encode(), b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	abc1, err := MergeEncoded(ab, c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	bc, err := MergeEncoded(b.Encode(), c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := MergeEncoded(a.Encode(), bc)
	if err != nil {
		t.Fatal(err)
	}
	if string(abc1) != string(abc2) {
		t.Error("MergeEncoded is not associative")
	}
}
