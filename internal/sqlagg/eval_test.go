package sqlagg

import (
	"strings"
	"testing"
	"testing/quick"

	"newswire/internal/value"
)

// table builds the child-zone table used across evaluation tests.
func table() []value.Map {
	return []value.Map{
		{"name": value.String("a"), "load": value.Float(0.9), "alive": value.Bool(true), "addr": value.String("a:1"), "subs": value.Bytes([]byte{0b0001})},
		{"name": value.String("b"), "load": value.Float(0.2), "alive": value.Bool(true), "addr": value.String("b:1"), "subs": value.Bytes([]byte{0b0010})},
		{"name": value.String("c"), "load": value.Float(0.5), "alive": value.Bool(false), "addr": value.String("c:1"), "subs": value.Bytes([]byte{0b0100})},
		{"name": value.String("d"), "load": value.Float(0.1), "alive": value.Bool(true), "addr": value.String("d:1")},
	}
}

func evalOne(t *testing.T, src string, rows []value.Map) value.Value {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out, err := p.Eval(rows)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if len(p.Items) != 1 {
		t.Fatalf("evalOne needs exactly one select item")
	}
	return out[p.Items[0].Name]
}

func TestCountStar(t *testing.T) {
	v := evalOne(t, "SELECT COUNT(*)", table())
	if n, _ := v.AsInt(); n != 4 {
		t.Fatalf("COUNT(*) = %v, want 4", v)
	}
}

func TestCountColumnSkipsMissing(t *testing.T) {
	// Row d has no subs attribute.
	v := evalOne(t, "SELECT COUNT(subs)", table())
	if n, _ := v.AsInt(); n != 3 {
		t.Fatalf("COUNT(subs) = %v, want 3", v)
	}
}

func TestMinMax(t *testing.T) {
	if v := evalOne(t, "SELECT MIN(load) AS m", table()); !v.Equal(value.Float(0.1)) {
		t.Fatalf("MIN(load) = %v", v)
	}
	if v := evalOne(t, "SELECT MAX(load) AS m", table()); !v.Equal(value.Float(0.9)) {
		t.Fatalf("MAX(load) = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(name) AS m", table()); !v.Equal(value.String("a")) {
		t.Fatalf("MIN(name) = %v", v)
	}
}

func TestSumPreservesInt(t *testing.T) {
	rows := []value.Map{{"x": value.Int(2)}, {"x": value.Int(3)}}
	v := evalOne(t, "SELECT SUM(x) AS s", rows)
	if v.Kind() != value.KindInt {
		t.Fatalf("SUM over ints has kind %v, want int", v.Kind())
	}
	if n, _ := v.AsInt(); n != 5 {
		t.Fatalf("SUM = %v, want 5", v)
	}
	rows = append(rows, value.Map{"x": value.Float(0.5)})
	v = evalOne(t, "SELECT SUM(x) AS s", rows)
	if v.Kind() != value.KindFloat {
		t.Fatalf("mixed SUM has kind %v, want float", v.Kind())
	}
	if f, _ := v.AsFloat(); f != 5.5 {
		t.Fatalf("SUM = %v, want 5.5", v)
	}
}

func TestAvg(t *testing.T) {
	rows := []value.Map{{"x": value.Int(1)}, {"x": value.Int(3)}}
	v := evalOne(t, "SELECT AVG(x) AS a", rows)
	if f, _ := v.AsFloat(); f != 2 {
		t.Fatalf("AVG = %v, want 2", v)
	}
}

func TestAggregatesOverEmptyTableOmitted(t *testing.T) {
	p := MustParse("SELECT MIN(load) AS m, COUNT(*) AS n, BIT_OR(subs) AS s")
	out, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["m"]; ok {
		t.Error("MIN over empty table should be omitted")
	}
	if _, ok := out["s"]; ok {
		t.Error("BIT_OR over empty table should be omitted")
	}
	if n, _ := out["n"].AsInt(); n != 0 {
		t.Errorf("COUNT(*) over empty table = %v, want 0", out["n"])
	}
}

func TestFirst(t *testing.T) {
	v := evalOne(t, "SELECT FIRST(name) AS f", table())
	if s, _ := v.AsString(); s != "a" {
		t.Fatalf("FIRST(name) = %v", v)
	}
	// First valid, skipping rows without the attribute.
	rows := []value.Map{{}, {"x": value.Int(7)}}
	v = evalOne(t, "SELECT FIRST(x) AS f", rows)
	if n, _ := v.AsInt(); n != 7 {
		t.Fatalf("FIRST skipping invalid = %v", v)
	}
}

func TestBitOr(t *testing.T) {
	v := evalOne(t, "SELECT BIT_OR(subs) AS s", table())
	b, ok := v.AsBytes()
	if !ok || len(b) != 1 || b[0] != 0b0111 {
		t.Fatalf("BIT_OR(subs) = %v", v)
	}
}

func TestBitOrDifferentLengths(t *testing.T) {
	rows := []value.Map{
		{"m": value.Bytes([]byte{0x01})},
		{"m": value.Bytes([]byte{0x00, 0x80})},
	}
	v := evalOne(t, "SELECT BIT_OR(m) AS s", rows)
	b, _ := v.AsBytes()
	if len(b) != 2 || b[0] != 0x01 || b[1] != 0x80 {
		t.Fatalf("BIT_OR mixed lengths = %v", b)
	}
}

func TestBoolOrAnd(t *testing.T) {
	if v := evalOne(t, "SELECT BOOL_OR(alive) AS b", table()); !v.Equal(value.Bool(true)) {
		t.Fatalf("BOOL_OR = %v", v)
	}
	if v := evalOne(t, "SELECT BOOL_AND(alive) AS b", table()); !v.Equal(value.Bool(false)) {
		t.Fatalf("BOOL_AND = %v", v)
	}
}

func TestMinK(t *testing.T) {
	v := evalOne(t, "SELECT MINK(2, load, addr) AS reps", table())
	reps, ok := v.AsStrings()
	if !ok || len(reps) != 2 {
		t.Fatalf("MINK = %v", v)
	}
	// d (0.1) then b (0.2).
	if reps[0] != "d:1" || reps[1] != "b:1" {
		t.Fatalf("MINK reps = %v, want [d:1 b:1]", reps)
	}
}

func TestMinKWithWhere(t *testing.T) {
	// Representative election excluding dead nodes (the paper's combined
	// availability+load election, §5).
	p := MustParse("SELECT MINK(3, load, addr) AS reps WHERE alive")
	out, err := p.Eval(table())
	if err != nil {
		t.Fatal(err)
	}
	reps, _ := out["reps"].AsStrings()
	for _, r := range reps {
		if r == "c:1" {
			t.Fatal("dead node elected as representative")
		}
	}
	if len(reps) != 3 {
		t.Fatalf("reps = %v, want 3 alive nodes", reps)
	}
}

func TestMaxK(t *testing.T) {
	v := evalOne(t, "SELECT MAXK(1, load, addr) AS reps", table())
	reps, _ := v.AsStrings()
	if len(reps) != 1 || reps[0] != "a:1" {
		t.Fatalf("MAXK = %v, want [a:1]", reps)
	}
}

func TestMinKFewerRowsThanK(t *testing.T) {
	v := evalOne(t, "SELECT MINK(10, load, addr) AS reps", table())
	reps, _ := v.AsStrings()
	if len(reps) != 4 {
		t.Fatalf("MINK with k>rows = %v, want all 4", reps)
	}
}

func TestMinKDeterministicTieBreak(t *testing.T) {
	rows := []value.Map{
		{"load": value.Int(1), "addr": value.String("z")},
		{"load": value.Int(1), "addr": value.String("a")},
		{"load": value.Int(1), "addr": value.String("m")},
	}
	v := evalOne(t, "SELECT MINK(2, load, addr) AS reps", rows)
	reps, _ := v.AsStrings()
	if reps[0] != "a" || reps[1] != "m" {
		t.Fatalf("tie-break order = %v, want [a m]", reps)
	}
}

func TestUnion(t *testing.T) {
	rows := []value.Map{
		{"pubs": value.Strings([]string{"reuters", "ap"})},
		{"pubs": value.Strings([]string{"ap", "slashdot"})},
		{"pubs": value.String("wired")},
	}
	v := evalOne(t, "SELECT UNION(pubs) AS pubs", rows)
	got, _ := v.AsStrings()
	want := []string{"ap", "reuters", "slashdot", "wired"}
	if len(got) != len(want) {
		t.Fatalf("UNION = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UNION = %v, want %v", got, want)
		}
	}
}

func TestWhereFilters(t *testing.T) {
	v := evalOne(t, "SELECT COUNT(*) AS n WHERE alive", table())
	if n, _ := v.AsInt(); n != 3 {
		t.Fatalf("COUNT alive = %v, want 3", v)
	}
	v = evalOne(t, "SELECT COUNT(*) AS n WHERE load < 0.3", table())
	if n, _ := v.AsInt(); n != 2 {
		t.Fatalf("COUNT load<0.3 = %v, want 2", v)
	}
	v = evalOne(t, "SELECT COUNT(*) AS n WHERE name = 'a' OR name = 'b'", table())
	if n, _ := v.AsInt(); n != 2 {
		t.Fatalf("COUNT name in (a,b) = %v, want 2", v)
	}
	v = evalOne(t, "SELECT COUNT(*) AS n WHERE NOT alive", table())
	if n, _ := v.AsInt(); n != 1 {
		t.Fatalf("COUNT not alive = %v, want 1", v)
	}
}

func TestWhereMissingAttributeIsFalse(t *testing.T) {
	v := evalOne(t, "SELECT COUNT(*) AS n WHERE missing_attr > 5", table())
	if n, _ := v.AsInt(); n != 0 {
		t.Fatalf("missing attribute comparison matched %v rows, want 0", v)
	}
}

func TestArithmeticOnAggregates(t *testing.T) {
	v := evalOne(t, "SELECT SUM(load)/COUNT(*) AS mean", table())
	f, ok := v.AsFloat()
	if !ok {
		t.Fatalf("mean = %v", v)
	}
	want := (0.9 + 0.2 + 0.5 + 0.1) / 4
	if diff := f - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean = %v, want %v", f, want)
	}
}

func TestBareColumnErrors(t *testing.T) {
	p := MustParse("SELECT load AS l")
	if _, err := p.Eval(table()); err == nil {
		t.Fatal("bare column in select should fail at Eval")
	}
	p = MustParse("SELECT MIN(load) + load AS l")
	if _, err := p.Eval(table()); err == nil {
		t.Fatal("column outside aggregate should fail at Eval")
	}
}

func TestDivisionByZeroOmitted(t *testing.T) {
	p := MustParse("SELECT 1/0 AS x")
	out, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["x"]; ok {
		t.Fatal("division by zero should be omitted, not present")
	}
}

func TestModulo(t *testing.T) {
	v := evalOne(t, "SELECT 7 % 3 AS m", nil)
	if n, _ := v.AsInt(); n != 1 {
		t.Fatalf("7 %% 3 = %v", v)
	}
	p := MustParse("SELECT 7 % 0 AS m")
	out, _ := p.Eval(nil)
	if _, ok := out["m"]; ok {
		t.Fatal("modulo by zero should be omitted")
	}
}

func TestUnaryMinus(t *testing.T) {
	v := evalOne(t, "SELECT -MIN(x) AS m", []value.Map{{"x": value.Int(5)}})
	if n, _ := v.AsInt(); n != -5 {
		t.Fatalf("-MIN = %v", v)
	}
}

func TestStringConcatPlus(t *testing.T) {
	v := evalOne(t, "SELECT 'a' + 'b' AS s", nil)
	if s, _ := v.AsString(); s != "ab" {
		t.Fatalf("'a'+'b' = %v", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	rows := []value.Map{{
		"s":    value.String("hello"),
		"b":    value.Bytes([]byte{0xFF, 0x01}),
		"list": value.Strings([]string{"x", "y"}),
	}}
	if v := evalOne(t, "SELECT MIN(LEN(s)) AS n", rows); !v.Equal(value.Int(5)) {
		t.Errorf("LEN(s) = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(LEN(b)) AS n", rows); !v.Equal(value.Int(2)) {
		t.Errorf("LEN(b) = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(LEN(list)) AS n", rows); !v.Equal(value.Int(2)) {
		t.Errorf("LEN(list) = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(BITCOUNT(b)) AS n", rows); !v.Equal(value.Int(9)) {
		t.Errorf("BITCOUNT = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(IF(TRUE, 1, 2)) AS n", rows); !v.Equal(value.Int(1)) {
		t.Errorf("IF = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(COALESCE(absent, s)) AS c", rows); !v.Equal(value.String("hello")) {
		t.Errorf("COALESCE = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(ABS(0 - 4)) AS a", rows); !v.Equal(value.Int(4)) {
		t.Errorf("ABS = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(CONCAT(s, '!')) AS c", rows); !v.Equal(value.String("hello!")) {
		t.Errorf("CONCAT = %v", v)
	}
	if v := evalOne(t, "SELECT BOOL_OR(CONTAINS(list, 'x')) AS c", rows); !v.Equal(value.Bool(true)) {
		t.Errorf("CONTAINS true = %v", v)
	}
	if v := evalOne(t, "SELECT BOOL_OR(CONTAINS(list, 'z')) AS c", rows); !v.Equal(value.Bool(false)) {
		t.Errorf("CONTAINS false = %v", v)
	}
}

func TestHashDeterministicAndNonNegative(t *testing.T) {
	rows := []value.Map{{"a": value.String("x")}}
	v1 := evalOne(t, "SELECT MIN(HASH(a)) AS h", rows)
	v2 := evalOne(t, "SELECT MIN(HASH(a)) AS h", rows)
	if !v1.Equal(v2) {
		t.Fatal("HASH not deterministic")
	}
	if n, _ := v1.AsInt(); n < 0 {
		t.Fatal("HASH produced negative value")
	}
	v3 := evalOne(t, "SELECT MIN(HASH(a, 1)) AS h", rows)
	if v1.Equal(v3) {
		t.Fatal("HASH insensitive to extra arguments")
	}
}

func TestPredicateEval(t *testing.T) {
	row := value.Map{
		"premium": value.Bool(true),
		"region":  value.String("asia"),
		"load":    value.Float(0.4),
	}
	tests := []struct {
		give string
		want bool
	}{
		{"premium", true},
		{"NOT premium", false},
		{"region = 'asia'", true},
		{"region != 'asia'", false},
		{"load < 0.5 AND premium", true},
		{"load > 0.5 OR region = 'asia'", true},
		{"missing", false},
		{"missing = 1", false},
	}
	for _, tt := range tests {
		got, err := EvalPredicate(tt.give, row)
		if err != nil {
			t.Errorf("EvalPredicate(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("EvalPredicate(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if _, err := EvalPredicate("bad syntax here(", row); err == nil {
		t.Error("bad predicate should error")
	}
}

func TestEvalWhereSingleRow(t *testing.T) {
	p := MustParse("SELECT COUNT(*) AS n WHERE load < 0.5")
	if !p.EvalWhere(value.Map{"load": value.Float(0.1)}) {
		t.Error("EvalWhere should accept matching row")
	}
	if p.EvalWhere(value.Map{"load": value.Float(0.9)}) {
		t.Error("EvalWhere should reject non-matching row")
	}
	noWhere := MustParse("SELECT COUNT(*) AS n")
	if !noWhere.EvalWhere(value.Map{}) {
		t.Error("program without WHERE should accept every row")
	}
}

// Property: COUNT(*) equals the number of rows for arbitrary tables.
func TestQuickCountStar(t *testing.T) {
	p := MustParse("SELECT COUNT(*) AS n")
	f := func(loads []float64) bool {
		rows := make([]value.Map, len(loads))
		for i, l := range loads {
			rows[i] = value.Map{"load": value.Float(l)}
		}
		out, err := p.Eval(rows)
		if err != nil {
			return false
		}
		n, _ := out["n"].AsInt()
		return n == int64(len(loads))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MIN(x) <= every row value and equals some row value.
func TestQuickMinIsLowerBound(t *testing.T) {
	p := MustParse("SELECT MIN(x) AS m")
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		rows := make([]value.Map, len(xs))
		for i, x := range xs {
			rows[i] = value.Map{"x": value.Int(x)}
		}
		out, err := p.Eval(rows)
		if err != nil {
			return false
		}
		m, ok := out["m"].AsInt()
		if !ok {
			return false
		}
		seen := false
		for _, x := range xs {
			if m > x {
				return false
			}
			if m == x {
				seen = true
			}
		}
		return seen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BIT_OR result has every bit that any input had, and no others.
func TestQuickBitOrIsUnion(t *testing.T) {
	p := MustParse("SELECT BIT_OR(m) AS u")
	f := func(inputs [][]byte) bool {
		rows := make([]value.Map, len(inputs))
		maxLen := 0
		for i, b := range inputs {
			rows[i] = value.Map{"m": value.Bytes(b)}
			if len(b) > maxLen {
				maxLen = len(b)
			}
		}
		out, err := p.Eval(rows)
		if err != nil {
			return false
		}
		u, ok := out["u"].AsBytes()
		if !ok {
			// Valid only when no row had a bytes value.
			return len(inputs) == 0
		}
		if len(u) != maxLen {
			return false
		}
		want := make([]byte, maxLen)
		for _, b := range inputs {
			for i, x := range b {
				want[i] |= x
			}
		}
		for i := range want {
			if u[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinVMaxV(t *testing.T) {
	v := evalOne(t, "SELECT MINV(load, addr) AS a", table())
	if s, _ := v.AsString(); s != "d:1" {
		t.Fatalf("MINV = %v, want d:1", v)
	}
	v = evalOne(t, "SELECT MAXV(load, addr) AS a", table())
	if s, _ := v.AsString(); s != "a:1" {
		t.Fatalf("MAXV = %v, want a:1", v)
	}
	// Empty table: omitted.
	p := MustParse("SELECT MINV(load, addr) AS a")
	out, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["a"]; ok {
		t.Fatal("MINV over empty table should be omitted")
	}
}

func TestMinVTieBreak(t *testing.T) {
	rows := []value.Map{
		{"load": value.Int(1), "addr": value.String("z")},
		{"load": value.Int(1), "addr": value.String("a")},
	}
	v := evalOne(t, "SELECT MINV(load, addr) AS a", rows)
	if s, _ := v.AsString(); s != "a" {
		t.Fatalf("MINV tie-break = %v, want a", v)
	}
}

func TestMinVNonStringValue(t *testing.T) {
	rows := []value.Map{
		{"load": value.Int(2), "score": value.Int(20)},
		{"load": value.Int(1), "score": value.Int(10)},
	}
	v := evalOne(t, "SELECT MINV(load, score) AS s", rows)
	if n, _ := v.AsInt(); n != 10 {
		t.Fatalf("MINV with int value = %v, want 10", v)
	}
}

func TestRepsAggregate(t *testing.T) {
	// Leaf-level: scalar addresses.
	leafRows := []value.Map{
		{"load": value.Float(0.9), "addr": value.String("a")},
		{"load": value.Float(0.1), "addr": value.String("b")},
		{"load": value.Float(0.5), "addr": value.String("c")},
	}
	v := evalOne(t, "SELECT REPS(2, load, COALESCE(reps, addr)) AS r", leafRows)
	got, _ := v.AsStrings()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("leaf REPS = %v, want [b c]", got)
	}

	// Zone-level: child rows carry rep lists; REPS must flatten them
	// round-robin so redundancy spans zones.
	zoneRows := []value.Map{
		{"load": value.Float(0.2), "reps": value.Strings([]string{"z1a", "z1b"})},
		{"load": value.Float(0.3), "reps": value.Strings([]string{"z2a", "z2b"})},
	}
	v = evalOne(t, "SELECT REPS(3, load, COALESCE(reps, addr)) AS r", zoneRows)
	got, _ = v.AsStrings()
	if len(got) != 3 {
		t.Fatalf("zone REPS = %v, want 3 reps", got)
	}
	// Round-robin: first rep of each zone before second reps.
	if got[0] != "z1a" || got[1] != "z2a" {
		t.Fatalf("zone REPS order = %v, want z1a,z2a first", got)
	}

	// Deduplication across rows.
	dupRows := []value.Map{
		{"load": value.Float(0.1), "reps": value.Strings([]string{"x"})},
		{"load": value.Float(0.2), "reps": value.Strings([]string{"x", "y"})},
	}
	v = evalOne(t, "SELECT REPS(3, load, reps) AS r", dupRows)
	got, _ = v.AsStrings()
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("dedup REPS = %v, want [x y]", got)
	}

	// Empty table: omitted.
	p := MustParse("SELECT REPS(3, load, addr) AS r")
	out, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["r"]; ok {
		t.Fatal("REPS over empty table should be omitted")
	}

	// Rows with the wrong kinds are skipped.
	junkRows := []value.Map{
		{"load": value.Float(0.1), "reps": value.Int(5)},
		{"load": value.Float(0.2)},
	}
	out, _ = MustParse("SELECT REPS(3, load, reps) AS r").Eval(junkRows)
	if _, ok := out["r"]; ok {
		t.Fatal("REPS over unusable rows should be omitted")
	}
}

func TestNotOperator(t *testing.T) {
	if v := evalOne(t, "SELECT COUNT(*) AS n WHERE NOT FALSE", []value.Map{{}}); !v.Equal(value.Int(1)) {
		t.Fatalf("NOT FALSE = %v", v)
	}
	if v := evalOne(t, "SELECT COUNT(*) AS n WHERE NOT NOT TRUE", []value.Map{{}}); !v.Equal(value.Int(1)) {
		t.Fatalf("NOT NOT TRUE = %v", v)
	}
}

func TestUnaryMinusEdgeCases(t *testing.T) {
	// Negating a non-numeric value is invalid and omitted.
	out, _ := MustParse("SELECT -MIN(s) AS x").Eval([]value.Map{{"s": value.String("a")}})
	if _, ok := out["x"]; ok {
		t.Fatal("negated string should be omitted")
	}
	// Negating a float works.
	v := evalOne(t, "SELECT -MIN(f) AS x", []value.Map{{"f": value.Float(2.5)}})
	if !v.Equal(value.Float(-2.5)) {
		t.Fatalf("-2.5 = %v", v)
	}
}

func TestScalarIfFalseBranchAndAbsFloat(t *testing.T) {
	if v := evalOne(t, "SELECT MIN(IF(FALSE, 1, 2)) AS x", []value.Map{{}}); !v.Equal(value.Int(2)) {
		t.Fatalf("IF false branch = %v", v)
	}
	if v := evalOne(t, "SELECT MIN(ABS(0.5 - 2)) AS x", []value.Map{{}}); !v.Equal(value.Float(1.5)) {
		t.Fatalf("ABS float = %v", v)
	}
	out, _ := MustParse("SELECT MIN(ABS(s)) AS x").Eval([]value.Map{{"s": value.String("a")}})
	if _, ok := out["x"]; ok {
		t.Fatal("ABS of string should be omitted")
	}
}

func TestExprStringForms(t *testing.T) {
	p := MustParse("SELECT MIN(-load) AS a, MAX(LEN(s)) AS b WHERE NOT x AND s = 'it''s'")
	rendered := p.String()
	for _, want := range []string{"MIN(-load)", "LEN(s)", "NOT x", "'it''s'"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("String() missing %q: %s", want, rendered)
		}
	}
}

func TestCountStarString(t *testing.T) {
	p := MustParse("SELECT COUNT(*) AS n")
	if !strings.Contains(p.String(), "COUNT(*)") {
		t.Fatalf("String() = %q", p.String())
	}
}
