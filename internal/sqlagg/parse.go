package sqlagg

import (
	"strconv"
	"strings"

	"newswire/internal/value"
)

// Parse compiles an aggregation program. The grammar is
//
//	program    = "SELECT" item { "," item } [ "WHERE" expr ]
//	item       = expr [ "AS" ident ]
//	expr       = orExpr
//	orExpr     = andExpr { "OR" andExpr }
//	andExpr    = notExpr { "AND" notExpr }
//	notExpr    = [ "NOT" ] cmpExpr
//	cmpExpr    = addExpr [ cmpOp addExpr ]
//	addExpr    = mulExpr { ("+"|"-") mulExpr }
//	mulExpr    = unary { ("*"|"/"|"%") unary }
//	unary      = [ "-" ] primary
//	primary    = number | string | TRUE | FALSE | ident
//	           | ident "(" [ "*" | expr { "," expr } ] ")"
//	           | "(" expr ")"
//
// A select item that is a bare column reference or a single function call
// may omit AS (the output name defaults to the column name or the
// lower-cased function name); any other expression requires AS.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for statically known programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) advance()   { p.i++ }

func (p *parser) errorf(format string, args ...any) error {
	l := &lexer{src: p.src}
	return l.errorf(p.cur().pos, format, args...)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tokKeyword || t.text != kw {
		return p.errorf("expected %s, found %s %q", kw, t.kind, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.cur()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.cur()
	if t.kind == tokOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		t := p.cur()
		return p.errorf("expected %q, found %s %q", op, t.kind, t.text)
	}
	return nil
}

func (p *parser) parseProgram() (*Program, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	prog := &Program{src: p.src}
	seen := make(map[string]bool)
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		if seen[item.Name] {
			return nil, p.errorf("duplicate output attribute %q", item.Name)
		}
		seen[item.Name] = true
		prog.Items = append(prog.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		prog.Where = where
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", t.text)
	}
	return prog, nil
}

func (p *parser) parseItem() (SelectItem, error) {
	expr, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	if p.acceptKeyword("AS") {
		t := p.cur()
		if t.kind != tokIdent {
			return SelectItem{}, p.errorf("expected identifier after AS, found %q", t.text)
		}
		p.advance()
		return SelectItem{Expr: expr, Name: t.text}, nil
	}
	switch n := expr.(type) {
	case *ColumnRef:
		return SelectItem{Expr: expr, Name: n.Name}, nil
	case *Call:
		return SelectItem{Expr: expr, Name: strings.ToLower(n.Name)}, nil
	default:
		return SelectItem{}, p.errorf("select item %q requires AS <name>", expr.String())
	}
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokOp && cmpOps[t.text] {
		p.advance()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "<>" {
			op = "!="
		}
		return &Binary{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, L: left, R: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad float literal %q", t.text)
			}
			return &Literal{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad int literal %q", t.text)
		}
		return &Literal{Val: value.Int(i)}, nil

	case tokString:
		p.advance()
		return &Literal{Val: value.String(t.text)}, nil

	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return &Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: value.Bool(false)}, nil
		}
		return nil, p.errorf("unexpected keyword %q", t.text)

	case tokIdent:
		p.advance()
		if !p.acceptOp("(") {
			return &ColumnRef{Name: t.text}, nil
		}
		name := strings.ToUpper(t.text)
		call := &Call{Name: name}
		if p.acceptOp("*") {
			call.Star = true
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return p.checkCall(call)
		}
		if p.acceptOp(")") {
			return p.checkCall(call)
		}
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return p.checkCall(call)
		}

	case tokOp:
		if t.text == "(" {
			p.advance()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
		return nil, p.errorf("unexpected %q", t.text)

	default:
		return nil, p.errorf("unexpected %s", t.kind)
	}
}

// checkCall validates function arity at parse time so bad programs fail
// before they are installed as zone aggregation functions.
func (p *parser) checkCall(c *Call) (Expr, error) {
	if agg, ok := aggregates[c.Name]; ok {
		if c.Star {
			if c.Name != "COUNT" {
				return nil, p.errorf("%s(*) is not valid; only COUNT(*)", c.Name)
			}
			return c, nil
		}
		if len(c.Args) < agg.minArgs || len(c.Args) > agg.maxArgs {
			return nil, p.errorf("%s takes %d..%d arguments, got %d",
				c.Name, agg.minArgs, agg.maxArgs, len(c.Args))
		}
		for _, a := range c.Args {
			if containsAggregate(a) {
				return nil, p.errorf("nested aggregate in %s", c.Name)
			}
		}
		return c, nil
	}
	if fn, ok := scalarFuncs[c.Name]; ok {
		if c.Star {
			return nil, p.errorf("%s(*) is not valid", c.Name)
		}
		if len(c.Args) < fn.minArgs || (fn.maxArgs >= 0 && len(c.Args) > fn.maxArgs) {
			return nil, p.errorf("%s takes %d..%d arguments, got %d",
				c.Name, fn.minArgs, fn.maxArgs, len(c.Args))
		}
		return c, nil
	}
	return nil, p.errorf("unknown function %s", c.Name)
}
