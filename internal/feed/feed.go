// Package feed implements the bootstrap agents of paper §10: "we have
// already developed some agents that are capable of transforming the
// current RSS/HTML information from some publishers into message streams
// for the system to bootstrap it". It parses RSS 0.91/2.0 channel
// documents and converts new or changed entries into news items ready for
// publication into NewsWire.
package feed

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"time"

	"newswire/internal/news"
)

// Channel is a parsed RSS channel.
type Channel struct {
	Title       string
	Link        string
	Description string
	Items       []Entry
}

// Entry is one RSS channel entry.
type Entry struct {
	Title       string
	Link        string
	Description string
	GUID        string
	Categories  []string
	Published   time.Time
}

type rssDoc struct {
	XMLName xml.Name   `xml:"rss"`
	Channel rssChannel `xml:"channel"`
}

type rssChannel struct {
	Title       string    `xml:"title"`
	Link        string    `xml:"link"`
	Description string    `xml:"description"`
	Items       []rssItem `xml:"item"`
}

type rssItem struct {
	Title       string   `xml:"title"`
	Link        string   `xml:"link"`
	Description string   `xml:"description"`
	GUID        string   `xml:"guid"`
	Categories  []string `xml:"category"`
	PubDate     string   `xml:"pubDate"`
}

// ParseRSS parses an RSS 0.91/2.0 document.
func ParseRSS(data []byte) (*Channel, error) {
	var doc rssDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("feed: parse rss: %w", err)
	}
	ch := &Channel{
		Title:       strings.TrimSpace(doc.Channel.Title),
		Link:        strings.TrimSpace(doc.Channel.Link),
		Description: strings.TrimSpace(doc.Channel.Description),
	}
	if ch.Title == "" {
		return nil, fmt.Errorf("feed: rss channel has no title")
	}
	for i, it := range doc.Channel.Items {
		e := Entry{
			Title:       strings.TrimSpace(it.Title),
			Link:        strings.TrimSpace(it.Link),
			Description: strings.TrimSpace(it.Description),
			GUID:        strings.TrimSpace(it.GUID),
		}
		if e.Title == "" {
			return nil, fmt.Errorf("feed: rss item %d has no title", i)
		}
		if e.GUID == "" {
			e.GUID = e.Link
		}
		if e.GUID == "" {
			return nil, fmt.Errorf("feed: rss item %q has neither guid nor link", e.Title)
		}
		for _, c := range it.Categories {
			if c = strings.TrimSpace(c); c != "" {
				e.Categories = append(e.Categories, c)
			}
		}
		if pd := strings.TrimSpace(it.PubDate); pd != "" {
			ts, err := parsePubDate(pd)
			if err != nil {
				return nil, fmt.Errorf("feed: rss item %q: %w", e.Title, err)
			}
			e.Published = ts
		}
		ch.Items = append(ch.Items, e)
	}
	return ch, nil
}

// pubDateFormats are the date layouts seen in the wild for RSS pubDate.
var pubDateFormats = []string{
	time.RFC1123Z,
	time.RFC1123,
	time.RFC822Z,
	time.RFC822,
	time.RFC3339,
}

func parsePubDate(s string) (time.Time, error) {
	for _, layout := range pubDateFormats {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized pubDate %q", s)
}

// SubjectMapper maps an RSS entry's categories (and, as a fallback, its
// title) to NewsWire subscription subjects.
type SubjectMapper func(entry *Entry) []string

// DefaultSubjectMapper lower-cases categories, slash-joins them under the
// given top-level prefix when they are bare words, and keeps already
// hierarchical ones. Entries with no category map to fallback.
func DefaultSubjectMapper(prefix, fallback string) SubjectMapper {
	return func(entry *Entry) []string {
		var out []string
		for _, c := range entry.Categories {
			c = strings.ToLower(strings.TrimSpace(c))
			c = strings.ReplaceAll(c, " ", "-")
			if c == "" {
				continue
			}
			if !strings.Contains(c, "/") {
				c = prefix + "/" + c
			}
			out = append(out, c)
		}
		if len(out) == 0 {
			out = []string{fallback}
		}
		sort.Strings(out)
		return out
	}
}

// Agent turns successive polls of one publisher's RSS channel into a
// stream of new items and revisions: unseen GUIDs become revision 0;
// changed descriptions of known GUIDs become the next revision; unchanged
// entries produce nothing.
type Agent struct {
	publisher string
	mapper    SubjectMapper
	seen      map[string]entryState // GUID -> state
	nextSeq   int
}

type entryState struct {
	itemID   string
	revision int
	content  string
}

// NewAgent creates a bootstrap agent publishing under the given name.
func NewAgent(publisher string, mapper SubjectMapper) (*Agent, error) {
	if publisher == "" {
		return nil, fmt.Errorf("feed: publisher required")
	}
	if mapper == nil {
		mapper = DefaultSubjectMapper("tech", "tech/internet")
	}
	return &Agent{
		publisher: publisher,
		mapper:    mapper,
		seen:      make(map[string]entryState),
	}, nil
}

// Transform converts the channel's new/changed entries into items, using
// now for entries that carry no pubDate. Items come back in channel order.
func (a *Agent) Transform(ch *Channel, now time.Time) []*news.Item {
	var out []*news.Item
	for i := range ch.Items {
		e := &ch.Items[i]
		content := e.Title + "\x00" + e.Description
		state, known := a.seen[e.GUID]
		if known && state.content == content {
			continue // unchanged
		}
		if !known {
			a.nextSeq++
			state = entryState{itemID: fmt.Sprintf("rss-%06d", a.nextSeq), revision: 0}
		} else {
			state.revision++
		}
		state.content = content
		a.seen[e.GUID] = state

		published := e.Published
		if published.IsZero() {
			published = now
		}
		out = append(out, &news.Item{
			Publisher: a.publisher,
			ID:        state.itemID,
			Revision:  state.revision,
			Headline:  e.Title,
			Abstract:  firstSentence(e.Description),
			Body:      e.Description + "\n\n" + e.Link,
			Subjects:  a.mapper(e),
			Urgency:   5,
			Published: published,
		})
	}
	return out
}

// firstSentence truncates a description at its first period (or 140
// bytes) for use as an abstract.
func firstSentence(s string) string {
	if i := strings.IndexByte(s, '.'); i >= 0 && i < 140 {
		return s[:i+1]
	}
	if len(s) > 140 {
		return s[:140]
	}
	return s
}
