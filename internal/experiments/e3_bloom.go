package experiments

import (
	"fmt"
	"math/rand"

	"newswire/internal/bloom"
	"newswire/internal/workload"
)

// RunE3 measures Bloom-filter false-positive forwarding rates as the bit
// array grows — the §6 claim that "the accuracy can be made as good as
// desired by varying the size of the bit array" and that ~1000 bits are
// adequate for Internet news services.
func RunE3(opt Options) *Table {
	sizes := []int{256, 1024, 4096, 16384}
	subscriberCounts := []int{1000, 10000}
	if opt.Quick {
		subscriberCounts = []int{1000}
	}
	t := &Table{
		ID:    "E3",
		Title: "aggregated Bloom filter false positives vs. array size",
		Claim: "accuracy as good as desired by varying the bit array; ~1000 bits adequate (§6)",
		Columns: []string{"bits", "subscribers", "zone density",
			"root density", "FP@zone", "FP@root", "theory@zone"},
	}

	const (
		branching   = 64
		universe    = 512 // distinct subjects in the system
		subjectsPer = 3   // subscriptions per node
		trials      = 4000
	)
	// The subject pool: only the first half is ever subscribed, so the
	// second half probes pure false positives.
	pool := make([]string, universe)
	for i := range pool {
		pool[i] = fmt.Sprintf("subject-%04d", i)
	}
	subscribed := pool[:universe/2]
	probes := pool[universe/2:]

	for _, bits := range sizes {
		for _, n := range subscriberCounts {
			rng := rand.New(rand.NewSource(opt.Seed + int64(bits) + int64(n)))
			// Leaf filters, grouped into zones of `branching` members,
			// then OR-aggregated again into the root.
			numZones := (n + branching - 1) / branching
			zoneFilters := make([]*bloom.Filter, numZones)
			root := bloom.New(bits, bloom.DefaultHashes)
			perNodeSubjects := 0
			for z := range zoneFilters {
				zoneFilters[z] = bloom.New(bits, bloom.DefaultHashes)
			}
			for i := 0; i < n; i++ {
				leaf := bloom.New(bits, bloom.DefaultHashes)
				subs := workload.SampleSubscriptions(rng, subscribed, subjectsPer, 1.1)
				perNodeSubjects += len(subs)
				for _, s := range subs {
					leaf.Add(s)
				}
				zone := i / branching
				_ = zoneFilters[zone].Merge(leaf)
				_ = root.Merge(leaf)
			}

			// Probe with never-subscribed subjects: any positive test is
			// a false positive that would cause a useless forward.
			zoneFP, rootFP := 0, 0
			for i := 0; i < trials; i++ {
				probe := probes[rng.Intn(len(probes))]
				zone := zoneFilters[rng.Intn(numZones)]
				if zone.Test(probe) {
					zoneFP++
				}
				if root.Test(probe) {
					rootFP++
				}
			}
			var zoneDensity float64
			for _, f := range zoneFilters {
				zoneDensity += f.Density()
			}
			zoneDensity /= float64(numZones)

			// Theoretical rate for one zone: distinct subjects in a zone
			// is ~min(branching×subjectsPer, universe/2) before dedup;
			// use the measured density instead of n for honesty, via the
			// filter's own estimate.
			theory := zoneDensity // k=1: FP rate equals density

			t.AddRow(
				fmt.Sprint(bits),
				fmt.Sprint(n),
				fmtPct(zoneDensity),
				fmtPct(root.Density()),
				fmtPct(float64(zoneFP)/trials),
				fmtPct(float64(rootFP)/trials),
				fmtPct(theory),
			)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("k=%d hash(es), %d-subject universe, %d subscriptions/node, zones of %d",
			bloom.DefaultHashes, universe, subjectsPer, branching),
		"a false positive at a zone forwards one extra copy toward that zone; leaves discard it")
	return t
}
