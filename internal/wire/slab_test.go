package wire

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"newswire/internal/value"
)

// TestArenaCopyIsPrivateAndImmutable checks the COW contract: the copy
// is detached from the caller's buffer, and later arena activity never
// rewrites an earlier region.
func TestArenaCopyIsPrivateAndImmutable(t *testing.T) {
	var a Arena
	src := []byte("attribute payload")
	c1 := a.Copy(src)
	src[0] = 'X' // caller mutates its buffer afterwards
	if string(c1) != "attribute payload" {
		t.Fatalf("arena copy aliases the source: %q", c1)
	}
	// Fill well past one slab; c1 must be untouched.
	chunk := bytes.Repeat([]byte{0xAB}, 4096)
	for i := 0; i < 2*arenaSlabSize/len(chunk); i++ {
		a.Copy(chunk)
	}
	if string(c1) != "attribute payload" {
		t.Fatalf("arena copy was overwritten by later copies: %q", c1)
	}
	if got := len(a.Copy(nil)); got != 0 {
		t.Fatalf("Copy(nil) = %d bytes", got)
	}
	big := make([]byte, arenaMaxCopy+1)
	if got := a.Copy(big); len(got) != len(big) {
		t.Fatalf("oversized copy truncated: %d != %d", len(got), len(big))
	}
}

// TestArenaConcurrentCopyRace hammers one arena from many goroutines
// (the parallel executor digests rows concurrently) while epochs seal
// underneath — run under -race this is the aliasing check: no slab
// region is ever written twice or shared between callers.
func TestArenaConcurrentCopyRace(t *testing.T) {
	var a Arena
	const goroutines = 8
	const copies = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // epoch sealer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.SealEpoch()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	var copiers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		copiers.Add(1)
		go func(g int) {
			defer copiers.Done()
			payload := bytes.Repeat([]byte{byte(g + 1)}, 512+g)
			var mine [][]byte
			for i := 0; i < copies; i++ {
				mine = append(mine, a.Copy(payload))
			}
			for _, c := range mine {
				if len(c) != len(payload) || c[0] != byte(g+1) || c[len(c)-1] != byte(g+1) {
					t.Errorf("goroutine %d: corrupted copy", g)
					return
				}
			}
		}(g)
	}
	copiers.Wait()
	close(stop)
	wg.Wait()
}

// TestArenaEpochReclaim proves a sealed slab's memory is returned to the
// collector once the last reference into it is dropped — the epoch
// reclamation contract. The finalizer is set on the slab's first byte,
// which is the allocation start for the first copy after a seal.
func TestArenaEpochReclaim(t *testing.T) {
	var a Arena
	a.SealEpoch() // next Copy starts a fresh slab at offset 0
	freed := make(chan struct{})
	func() {
		c := a.Copy([]byte("epoch resident"))
		runtime.SetFinalizer(&c[0], func(*byte) { close(freed) })
		// More residents of the same epoch.
		for i := 0; i < 100; i++ {
			a.Copy(bytes.Repeat([]byte{byte(i)}, 256))
		}
	}()
	// While the epoch is open the arena itself pins the slab.
	runtime.GC()
	select {
	case <-freed:
		t.Fatal("open-epoch slab was collected while the arena still references it")
	default:
	}
	a.SealEpoch() // drop the arena's reference; no rows hold one either
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-freed:
			return
		case <-deadline:
			t.Fatal("sealed slab was not reclaimed after all references were dropped")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestSharedRowEncodingInArena checks that racing ensure() initializers
// on one shared row stay consistent with slab backing: every caller sees
// identical bytes, and the bytes match a direct encoding.
func TestSharedRowEncodingInArena(t *testing.T) {
	row := &SharedRow{
		Name: "node-1",
		Attrs: value.Map{
			"addr": value.String("n1"),
			"load": value.Float(0.25),
			"subs": value.Bytes(bytes.Repeat([]byte{0x5A}, 128)),
		},
		Issued: time.Unix(1017619200, 0),
		Owner:  "n1",
	}
	want := row.Attrs.AppendBinary(nil)
	const goroutines = 8
	encs := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			encs[g] = row.Encoding()
		}(g)
	}
	wg.Wait()
	for g, enc := range encs {
		if !bytes.Equal(enc, want) {
			t.Fatalf("goroutine %d saw encoding %x, want %x", g, enc, want)
		}
	}
	st := RowArena().Stats()
	if st.Copies == 0 {
		t.Fatal("row encoding did not go through the arena")
	}
}
