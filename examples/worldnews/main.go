// Worldnews: the paper's second target configuration (§10) — general news
// distribution by wire services — demonstrating two §8 features:
//
//   - zone-scoped publication ("allows the publisher to disseminate
//     localized news items in Asia"), and
//   - publisher dissemination predicates ("a publisher could send some
//     item only to premium subscribers"), using a custom aggregation
//     program that carries a BOOL_OR(premium) attribute up the hierarchy.
//
// Run with: go run ./examples/worldnews
package main

import (
	"fmt"
	"log"
	"time"

	"newswire"
	"newswire/internal/news"
	"newswire/internal/sqlagg"
	"newswire/internal/value"
)

// aggregation extends the default program with a premium flag so the
// publisher predicate can prune whole zones without premium subscribers.
var aggregation = sqlagg.MustParse(`SELECT
	SUM(COALESCE(nmembers, 1)) AS nmembers,
	REPS(3, load, COALESCE(reps, addr)) AS reps,
	MINV(load, addr) AS addr,
	MIN(load) AS load,
	BIT_OR(subs) AS subs,
	BOOL_OR(premium) AS premium,
	UNION(pubs) AS pubs`)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== NewsWire worldnews: regional scoping + premium predicates ==")

	// 8 nodes per region: indices 0-7 in the first zone ("asia"), 8-15
	// in the second ("europe").
	received := make(map[int][]string)
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         16,
		Branching: 8,
		Seed:      8,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.Aggregation = aggregation
			node := i
			cfg.OnItem = func(it *newswire.Item, env *newswire.ItemEnvelope) {
				received[node] = append(received[node], it.ID)
			}
		},
	})
	if err != nil {
		return err
	}

	asiaZone := cluster.Nodes[0].ZonePath()
	fmt.Printf("region zones: asia=%s europe=%s\n",
		asiaZone, cluster.Nodes[15].ZonePath())

	// Everyone follows world news; even-numbered nodes are premium.
	for i, node := range cluster.Nodes {
		if err := node.Subscribe("world/asia", "world/europe"); err != nil {
			return err
		}
		if i%2 == 0 {
			node.Agent().SetAttr("premium", value.Bool(true))
		}
	}
	cluster.RunRounds(12)

	publish := func(id, subject, scope, predicate string) error {
		it := &news.Item{
			Publisher: "reuters", ID: id,
			Headline: id, Body: "body",
			Subjects:  []string{subject},
			Urgency:   4,
			Published: cluster.Eng.Now(),
		}
		return cluster.Nodes[8].PublishItem(it, scope, predicate)
	}

	// 1. Global story: everyone gets it.
	if err := publish("global-summit", "world/europe", "", ""); err != nil {
		return err
	}
	// 2. Asia-scoped story: only the asia zone's subtree.
	if err := publish("typhoon-warning", "world/asia", asiaZone, ""); err != nil {
		return err
	}
	// 3. Premium-only market flash: the predicate prunes zones and
	// members without the premium attribute.
	if err := publish("market-flash", "world/europe", "", "premium"); err != nil {
		return err
	}
	cluster.RunFor(15 * time.Second)
	// A few more gossip rounds so the publisher roster (a UNION-aggregated
	// attribute) reaches every root table.
	cluster.RunRounds(6)

	counts := map[string]int{}
	premiumLeak, scopeLeak := 0, 0
	for i := range cluster.Nodes {
		for _, id := range received[i] {
			counts[id]++
			if id == "market-flash" && i%2 != 0 {
				premiumLeak++
			}
			if id == "typhoon-warning" && i >= 8 {
				scopeLeak++
			}
		}
	}
	fmt.Printf("\n%-16s delivered to %2d nodes (want 16)\n", "global-summit", counts["global-summit"])
	fmt.Printf("%-16s delivered to %2d nodes (want 8, asia only; leaks to europe: %d)\n",
		"typhoon-warning", counts["typhoon-warning"], scopeLeak)
	fmt.Printf("%-16s delivered to %2d nodes (want 8, premium only; leaks: %d)\n",
		"market-flash", counts["market-flash"], premiumLeak)

	pubs := cluster.Nodes[3].KnownPublishers()
	fmt.Printf("\npublisher roster visible at node 3: %v\n", pubs)
	return nil
}
