// Package astrolabe reimplements the Astrolabe distributed monitoring and
// aggregation substrate the paper builds on (§3–4): a virtual hierarchy of
// zones, each a small table of attribute rows; leaf rows owned by agents;
// parent rows computed by SQL aggregation programs; all state disseminated
// by epidemic (anti-entropy) gossip with freshest-row-wins merging; row
// timeouts providing failure detection and automatic zone reconfiguration.
//
// An Agent is a passive state machine: the caller (a live runtime or the
// discrete-event simulator) delivers messages via HandleMessage and drives
// time via Tick. All randomness comes from an injected *rand.Rand so
// simulated runs are deterministic.
package astrolabe

import (
	"fmt"
	"strings"
)

// RootZone is the path of the root zone.
const RootZone = "/"

// ValidateZonePath checks a zone path: "/" or "/"-separated non-empty
// segments without whitespace, e.g. "/usa/ny/ithaca".
func ValidateZonePath(path string) error {
	if path == RootZone {
		return nil
	}
	if !strings.HasPrefix(path, "/") {
		return fmt.Errorf("astrolabe: zone path %q must start with /", path)
	}
	if strings.HasSuffix(path, "/") {
		return fmt.Errorf("astrolabe: zone path %q must not end with /", path)
	}
	for _, seg := range strings.Split(path[1:], "/") {
		if seg == "" {
			return fmt.Errorf("astrolabe: zone path %q has an empty segment", path)
		}
		if strings.ContainsAny(seg, " \t\n") {
			return fmt.Errorf("astrolabe: zone segment %q contains whitespace", seg)
		}
	}
	return nil
}

// ParentZone returns the parent of a zone path, and false for the root.
func ParentZone(path string) (string, bool) {
	if path == RootZone {
		return "", false
	}
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return RootZone, true
	}
	return path[:i], true
}

// ZoneName returns the last path segment (the row name a zone contributes
// to its parent's table). The root has no name.
func ZoneName(path string) string {
	if path == RootZone {
		return ""
	}
	i := strings.LastIndexByte(path, '/')
	return path[i+1:]
}

// JoinZone appends a child segment to a zone path.
func JoinZone(parent, child string) string {
	if parent == RootZone {
		return RootZone + child
	}
	return parent + "/" + child
}

// AncestorChain returns the zones from the root down to and including
// path: AncestorChain("/usa/ny") = ["/", "/usa", "/usa/ny"].
func AncestorChain(path string) []string {
	if path == RootZone {
		return []string{RootZone}
	}
	segs := strings.Split(path[1:], "/")
	chain := make([]string, 0, len(segs)+1)
	chain = append(chain, RootZone)
	cur := ""
	for _, s := range segs {
		cur = cur + "/" + s
		chain = append(chain, cur)
	}
	return chain
}

// ZoneContains reports whether zone ancestor contains (or equals) path.
func ZoneContains(ancestor, path string) bool {
	if ancestor == RootZone {
		return true
	}
	if ancestor == path {
		return true
	}
	return strings.HasPrefix(path, ancestor+"/")
}

// CommonAncestor returns the deepest zone containing both paths.
func CommonAncestor(a, b string) string {
	ca := AncestorChain(a)
	cb := AncestorChain(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	common := RootZone
	for i := 0; i < n; i++ {
		if ca[i] != cb[i] {
			break
		}
		common = ca[i]
	}
	return common
}

// ChildToward returns the child of ancestor that lies on the path toward
// descendant, and false if descendant is not strictly below ancestor.
// ChildToward("/", "/usa/ny") = "/usa".
func ChildToward(ancestor, descendant string) (string, bool) {
	if !ZoneContains(ancestor, descendant) || ancestor == descendant {
		return "", false
	}
	rest := descendant
	if ancestor != RootZone {
		rest = descendant[len(ancestor):]
	}
	// rest starts with "/segment...".
	rest = rest[1:]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return JoinZone(ancestor, rest), true
}

// ZoneDepth returns the number of segments below the root (root = 0).
func ZoneDepth(path string) int {
	if path == RootZone {
		return 0
	}
	return strings.Count(path, "/")
}
