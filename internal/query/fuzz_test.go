package query

import (
	"testing"
	"time"

	"newswire/internal/value"
)

// FuzzParsePredicate asserts the parser never panics, and that anything
// it accepts can be evaluated and compiled without panicking.
func FuzzParsePredicate(f *testing.F) {
	seeds := []string{
		"subject = 'tech/linux'",
		"subject IN ('a', 'b') AND urgency <= 3",
		"publisher LIKE 'reu%' OR NOT (urgency BETWEEN 2 AND 5)",
		"published >= '2026-08-01' AND revision != 0",
		"subjects NOT IN ('x''y')",
		"TRUE AND (FALSE OR item_id = 'a')",
		"urgency NOT BETWEEN 1 AND",
		"((((", "subject =", "NOT NOT NOT urgency < 9",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	it := value.Map{
		"publisher": value.String("reuters"),
		"item_id":   value.String("a"),
		"revision":  value.Int(1),
		"urgency":   value.Int(3),
		"subjects":  value.Strings([]string{"tech/linux"}),
		"published": value.Time(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)),
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		_ = p.Match(it)
		_ = p.Compile()
	})
}

// FuzzPredicateRoundTrip asserts parse → String → parse is a fixpoint:
// the canonical rendering re-parses, and re-parsing it is idempotent.
func FuzzPredicateRoundTrip(f *testing.F) {
	seeds := []string{
		"subject = 'tech/linux'",
		"Subject != 'a''b'",
		"subject NOT LIKE '%x_' OR urgency <> 3",
		"(publisher IN ('a') AND TRUE) OR published < '2026-01-02T15:04:05.999999999Z'",
		"urgency NOT IN (0, 8) AND revision BETWEEN -2 AND 7",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not re-parse: %v", p.String(), src, err)
		}
		if again.String() != p.String() {
			t.Fatalf("String not a fixpoint: %q re-parses to %q", p.String(), again.String())
		}
	})
}
