package astrolabe

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"newswire/internal/sim"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// TestQuiescentTickZeroAggEvals is the incremental-aggregation
// acceptance check: once nothing but heartbeats is happening, a Tick
// must not evaluate the aggregation program at all — clean zones only
// re-stamp the aggregate row this agent owns.
func TestQuiescentTickZeroAggEvals(t *testing.T) {
	// Strict single-agent case first: no gossip traffic at all.
	solo := newTestCluster(t, []string{"/usa/ny"}, nil)
	a := solo.agents[0]
	base := a.Stats().AggEvals
	if base == 0 {
		t.Fatal("construction should have evaluated the aggregation at least once")
	}
	for i := 0; i < 5; i++ {
		a.Tick()
	}
	if got := a.Stats().AggEvals; got != base {
		t.Fatalf("quiescent ticks ran %d extra Eval calls", got-base)
	}

	// Cluster case: after convergence, gossip carries only heartbeat
	// re-stamps, which must not dirty any zone.
	c := newTestCluster(t, []string{"/usa/ny", "/usa/ny", "/usa/sf", "/usa/sf"}, nil)
	c.runRounds(10)
	before := int64(0)
	for _, ag := range c.agents {
		before += ag.Stats().AggEvals
	}
	c.runRounds(5)
	after := int64(0)
	for _, ag := range c.agents {
		after += ag.Stats().AggEvals
	}
	if after != before {
		t.Fatalf("steady-state rounds ran %d Eval calls, want 0", after-before)
	}

	// A real content change must evaluate again.
	c.agents[0].SetAttr("cpu", value.Float(0.5))
	changed := int64(0)
	for _, ag := range c.agents {
		changed += ag.Stats().AggEvals
	}
	if changed == after {
		t.Fatal("SetAttr did not trigger re-aggregation")
	}
}

// TestDigestDiff exercises every branch of the digest diff rules
// directly against one agent's tables.
func TestDigestDiff(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	a := c.agents[0]
	now := c.eng.Now()

	// Seed a third-party row the initiator will be stale on, and one it
	// will be fresher on.
	a.MergeRows([]wire.RowUpdate{
		{Zone: "/z", Name: "stale-here", Attrs: value.Map{"x": value.Int(1)}, Issued: now.Add(-time.Minute)},
		{Zone: "/z", Name: "fresh-here", Attrs: value.Map{"x": value.Int(2)}, Issued: now.Add(time.Minute)},
		{Zone: "/z", Name: "tied", Attrs: value.Map{"x": value.Int(3)}, Issued: now},
	})

	tiedHash := (&wire.SharedRow{Attrs: value.Map{"x": value.Int(3)}}).AttrsHash()
	digests := []wire.RowDigest{
		// We lack this row entirely → should land in Want.
		{Zone: "/z", Name: "unknown", Issued: now},
		// Initiator's copy is fresher than ours → Want.
		{Zone: "/z", Name: "stale-here", Issued: now},
		// Initiator's copy is staler than ours → Rows.
		{Zone: "/z", Name: "fresh-here", Issued: now},
		// Same stamp, same content → neither.
		{Zone: "/z", Name: "tied", Issued: now, Hash: tiedHash},
		// A zone we do not replicate → ignored.
		{Zone: "/asia", Name: "x", Issued: now},
	}

	a.mu.Lock()
	rows, want, _, size := a.diffDigestLocked("/z", digests)
	a.mu.Unlock()
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}

	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w.Zone+"|"+w.Name] = true
	}
	rowSet := map[string]bool{}
	for i := range rows {
		rowSet[rows[i].Zone+"|"+rows[i].Name] = true
	}

	for _, k := range []string{"/z|unknown", "/z|stale-here"} {
		if !wantSet[k] {
			t.Errorf("want set missing %s: %v", k, want)
		}
	}
	if !rowSet["/z|fresh-here"] {
		t.Errorf("rows missing fresh-here: %v", rowSet)
	}
	if wantSet["/z|tied"] || rowSet["/z|tied"] {
		t.Error("identical row exchanged despite matching digest")
	}
	if wantSet["/asia|x"] || rowSet["/asia|x"] {
		t.Error("unreplicated zone leaked into the diff")
	}
	// Rows the initiator never digested (our own row, its peer rows)
	// must be pushed.
	if !rowSet["/z|node-0"] {
		t.Errorf("undigested local rows not pushed: %v", rowSet)
	}

	// Same stamp + different hash → both directions, so the encoded
	// tie-break can run on both sides.
	a.mu.Lock()
	rows, want, _, _ = a.diffDigestLocked("/z", []wire.RowDigest{
		{Zone: "/z", Name: "tied", Issued: now, Hash: tiedHash + 1},
	})
	a.mu.Unlock()
	foundRow, foundWant := false, false
	for i := range rows {
		if rows[i].Name == "tied" {
			foundRow = true
		}
	}
	for _, w := range want {
		if w.Name == "tied" {
			foundWant = true
		}
	}
	if !foundRow || !foundWant {
		t.Fatalf("hash mismatch at equal stamps must exchange both ways (row=%v want=%v)",
			foundRow, foundWant)
	}
}

// TestFullStateFallbackConverges keeps the pre-digest protocol working:
// clusters running with DisableDeltaGossip still converge.
func TestFullStateFallbackConverges(t *testing.T) {
	zones := []string{"/usa/ny", "/usa/ny", "/asia/jp", "/asia/jp"}
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.DisableDeltaGossip = true
	})
	c.runRounds(10)
	for i, a := range c.agents {
		usa, ok1 := a.Row("/", "usa")
		asia, ok2 := a.Row("/", "asia")
		if !ok1 || !ok2 {
			t.Fatalf("agent %d root table incomplete", i)
		}
		if n, _ := usa.Attrs[AttrMembers].AsInt(); n != 2 {
			t.Fatalf("agent %d sees usa nmembers=%v", i, usa.Attrs[AttrMembers])
		}
		if n, _ := asia.Attrs[AttrMembers].AsInt(); n != 2 {
			t.Fatalf("agent %d sees asia nmembers=%v", i, asia.Attrs[AttrMembers])
		}
	}
	if st := c.agents[0].Stats(); st.DigestsSent != 0 {
		t.Fatalf("fallback agent sent %d digest entries", st.DigestsSent)
	}
}

// TestMixedModeConverges runs half the agents on delta gossip and half
// on the full-state fallback: every agent handles both protocols on
// receive, so a mixed deployment (mid-upgrade, or one side ablated)
// must still converge.
func TestMixedModeConverges(t *testing.T) {
	zones := []string{"/usa/ny", "/usa/ny", "/asia/jp", "/asia/jp"}
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.DisableDeltaGossip = i%2 == 0
	})
	c.runRounds(10)
	for i, a := range c.agents {
		usa, _ := a.Row("/", "usa")
		asia, _ := a.Row("/", "asia")
		if n, _ := usa.Attrs[AttrMembers].AsInt(); n != 2 {
			t.Fatalf("agent %d sees usa nmembers=%v", i, usa.Attrs[AttrMembers])
		}
		if n, _ := asia.Attrs[AttrMembers].AsInt(); n != 2 {
			t.Fatalf("agent %d sees asia nmembers=%v", i, asia.Attrs[AttrMembers])
		}
	}
}

// TestDeltaGossipByteSavings drives two identical leaf zones — one per
// protocol — and checks the delta variant moves fewer bytes in steady
// state, per the agents' own accounting.
func TestDeltaGossipByteSavings(t *testing.T) {
	run := func(disable bool) int64 {
		zones := make([]string, 8)
		for i := range zones {
			zones[i] = "/z"
		}
		c := newTestCluster(t, zones, func(i int, cfg *Config) {
			cfg.DisableDeltaGossip = disable
		})
		// Realistic row weight: every member carries a subscription Bloom
		// filter (the paper's 1024-bit geometry) at its design load —
		// roughly half the bits set, so the codec's sparse-bytes packing
		// cannot engage. An all-zero filter would pack to a few bytes and
		// understate full-gossip row weight.
		for i, a := range c.agents {
			subs := make([]byte, 128)
			x := uint32(i + 1)
			for j := range subs {
				x = x*1664525 + 1013904223
				subs[j] = byte(x >> 24)
			}
			a.SetAttr(AttrSubs, value.Bytes(subs))
		}
		c.runRounds(5)
		var start int64
		for _, a := range c.agents {
			start += a.Stats().GossipBytesSent
		}
		c.runRounds(10)
		var end int64
		for _, a := range c.agents {
			end += a.Stats().GossipBytesSent
		}
		return end - start
	}
	full := run(true)
	delta := run(false)
	if delta*2 > full {
		t.Fatalf("delta gossip sent %d bytes, full %d — want at least 2x savings", delta, full)
	}
}

// TestGossipByteAccountingMatchesWire cross-checks the agents'
// hand-rolled size accounting against the wire package's EstimateSize
// as charged by the simulated network.
func TestGossipByteAccountingMatchesWire(t *testing.T) {
	zones := []string{"/z", "/z", "/z"}
	c := newTestCluster(t, zones, nil)
	c.runRounds(6)
	var agents int64
	for _, a := range c.agents {
		agents += a.Stats().GossipBytesSent
	}
	netSent, _ := c.net.BytesTotals()
	// The network total includes the same messages; bootstrap MergeRows
	// bypasses the network, and agents only send gossip kinds, so the
	// two totals must match exactly.
	if agents != netSent {
		t.Fatalf("agent accounting %d bytes, network charged %d", agents, netSent)
	}
}

// --- regression benchmarks for the encoding cache ---

// benchAgentPair returns two converged same-zone agents and a batch of
// row updates b will repeatedly merge into a.
func benchAgentPair(b *testing.B, nrows int) (*Agent, []wire.RowUpdate) {
	b.Helper()
	eng := sim.NewEngine(1)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	ep := net.Attach("bench", func(*wire.Message) {})
	a, err := NewAgent(Config{
		Name: "bench", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]wire.RowUpdate, nrows)
	for i := range rows {
		rows[i] = wire.RowUpdate{
			Zone: "/z", Name: fmt.Sprintf("peer-%d", i),
			Attrs: value.Map{
				AttrAddr: value.String(fmt.Sprintf("p%d", i)),
				AttrLoad: value.Float(float64(i) / float64(nrows)),
				AttrSubs: value.Bytes(make([]byte, 128)),
			},
			Issued: eng.Now(),
			Owner:  fmt.Sprintf("p%d", i),
		}
	}
	a.MergeRows(rows)
	return a, rows
}

// BenchmarkMergeEqualStampTieBreak hits the worst case the attrsLess
// double-encoding fix targets: every incoming row carries the stored
// row's issue time with different content, forcing the encoded
// tie-break on each merge. The stored side must come from the row's
// encoding cache.
func BenchmarkMergeEqualStampTieBreak(b *testing.B) {
	a, rows := benchAgentPair(b, 64)
	// Same stamps, different content, and an encoding that orders below
	// the stored rows so the merge never replaces them (steady worst
	// case; replacement would reset the cache each iteration).
	challenge := make([]wire.RowUpdate, len(rows))
	for i := range rows {
		challenge[i] = rows[i]
		attrs := rows[i].Attrs.Clone()
		attrs[AttrAddr] = value.String("!") // sorts first in the encoding
		challenge[i].Attrs = attrs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MergeRows(challenge)
	}
}

// BenchmarkMergeFreshHeartbeats models the dominant steady-state load:
// re-delivery of identical rows with advanced issue times.
func BenchmarkMergeFreshHeartbeats(b *testing.B) {
	a, rows := benchAgentPair(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rows {
			rows[j].Issued = rows[j].Issued.Add(time.Millisecond)
		}
		a.MergeRows(rows)
	}
}

// BenchmarkDigestBuild measures building the digest for a full 64-row
// leaf zone — the per-partner cost of initiating delta gossip.
func BenchmarkDigestBuild(b *testing.B) {
	a, _ := benchAgentPair(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.mu.Lock()
		digests, _ := a.digestLocked("/z")
		a.mu.Unlock()
		if len(digests) == 0 {
			b.Fatal("empty digest")
		}
	}
}

// TestDigestDiffStamps pins the stamp rules: a fresher local row whose
// bytes the initiator already holds travels as a stamp, not a full row;
// an initiator-fresher hash-equal digest re-stamps the stored row
// locally with no wire traffic; signed rows always use the full path.
func TestDigestDiffStamps(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	a := c.agents[0]
	now := c.eng.Now()

	attrs := value.Map{"x": value.Int(9)}
	hash := (&wire.SharedRow{Attrs: attrs}).AttrsHash()
	a.MergeRows([]wire.RowUpdate{
		{Zone: "/z", Name: "peer", Attrs: attrs, Issued: now},
		{Zone: "/z", Name: "signed", Attrs: attrs, Issued: now,
			Signer: "ca", Sig: []byte{1, 2, 3}},
	})

	// Initiator lags by a minute but already holds the bytes → stamp.
	a.mu.Lock()
	rows, want, stamps, _ := a.diffDigestLocked("/z", []wire.RowDigest{
		{Zone: "/z", Name: "peer", Issued: now.Add(-time.Minute), Hash: hash},
		{Zone: "/z", Name: "signed", Issued: now.Add(-time.Minute), Hash: hash},
		// Cover the rest of the table so nothing is "undigested".
		{Zone: "/z", Name: "node-0", Issued: now.Add(time.Hour)},
		{Zone: "/z", Name: "node-1", Issued: now.Add(time.Hour)},
		{Zone: "/", Name: "z", Issued: now.Add(time.Hour)},
	})
	a.mu.Unlock()
	if len(stamps) != 1 || stamps[0].Name != "peer" || !stamps[0].Issued.Equal(now) || stamps[0].Hash != hash {
		t.Fatalf("expected one stamp for peer, got %+v", stamps)
	}
	for i := range rows {
		if rows[i].Name == "peer" {
			t.Fatalf("hash-equal unsigned row travelled whole: %+v", rows[i])
		}
	}
	foundSigned := false
	for i := range rows {
		if rows[i].Name == "signed" {
			foundSigned = true
		}
	}
	if !foundSigned {
		t.Fatalf("signed row must travel whole, rows=%v want=%v", rows, want)
	}

	// Initiator fresher + hash equal → local re-stamp, no want ref.
	fresher := now.Add(time.Minute)
	a.mu.Lock()
	_, want, stamps, _ = a.diffDigestLocked("/z", []wire.RowDigest{
		{Zone: "/z", Name: "peer", Issued: fresher, Hash: hash},
	})
	a.mu.Unlock()
	for _, w := range want {
		if w.Name == "peer" {
			t.Fatalf("hash-equal fresher digest should re-stamp locally, not want: %+v", want)
		}
	}
	if len(stamps) != 0 {
		t.Fatalf("unexpected stamps: %+v", stamps)
	}
	got, ok := a.Row("/z", "peer")
	if !ok || !got.Issued.Equal(fresher) {
		t.Fatalf("row not re-stamped locally: %+v", got)
	}
	if !got.Attrs.Equal(attrs) {
		t.Fatalf("re-stamp changed content: %+v", got.Attrs)
	}
	if st := a.Stats(); st.StampsApplied == 0 {
		t.Fatal("StampsApplied not counted")
	}

	// Signed row with a fresher digest must produce a want, never a
	// local re-stamp.
	a.mu.Lock()
	_, want, _, _ = a.diffDigestLocked("/z", []wire.RowDigest{
		{Zone: "/z", Name: "signed", Issued: fresher, Hash: hash},
	})
	a.mu.Unlock()
	foundWant := false
	for _, w := range want {
		if w.Name == "signed" {
			foundWant = true
		}
	}
	if !foundWant {
		t.Fatal("fresher signed digest must be wanted as a full row")
	}
}

// TestApplyStamps pins receiver-side stamp application rules.
func TestApplyStamps(t *testing.T) {
	c := newTestCluster(t, []string{"/z", "/z"}, nil)
	a := c.agents[0]
	now := c.eng.Now()

	attrs := value.Map{"x": value.Int(5)}
	hash := (&wire.SharedRow{Attrs: attrs}).AttrsHash()
	a.MergeRows([]wire.RowUpdate{
		{Zone: "/z", Name: "peer", Attrs: attrs, Issued: now},
	})
	ownIssued, _ := a.Row("/z", "node-0")

	later := now.Add(30 * time.Second)
	a.mu.Lock()
	a.applyStampsLocked([]wire.RowDigest{
		{Zone: "/z", Name: "peer", Issued: later, Hash: hash},                      // applies
		{Zone: "/z", Name: "peer", Issued: now, Hash: hash},                        // stale: no-op
		{Zone: "/z", Name: "gone", Issued: later, Hash: hash},                      // unknown row
		{Zone: "/z", Name: "node-0", Issued: later.Add(time.Hour)},                 // own row: never
		{Zone: "/nope", Name: "peer", Issued: later, Hash: hash},                   // unreplicated zone
		{Zone: "/z", Name: "peer", Issued: later.Add(time.Second), Hash: hash + 1}, // drifted hash
	})
	a.mu.Unlock()

	got, _ := a.Row("/z", "peer")
	if !got.Issued.Equal(later) {
		t.Fatalf("peer row Issued = %v, want %v", got.Issued, later)
	}
	own, _ := a.Row("/z", "node-0")
	if !own.Issued.Equal(ownIssued.Issued) {
		t.Fatal("own row must never be re-stamped from a peer's stamp")
	}
	if _, ok := a.Row("/z", "gone"); ok {
		t.Fatal("stamp materialized a row out of nothing")
	}
}

// TestSteadyStateGossipsStampsNotRows is the end-to-end guarantee the
// byte optimization rests on: once a cluster converges, anti-entropy
// stops shipping full rows at all — heartbeat refreshes travel as
// stamps or re-stamp locally from digests.
func TestSteadyStateGossipsStampsNotRows(t *testing.T) {
	zones := []string{"/z", "/z", "/z", "/z"}
	c := newTestCluster(t, zones, nil)
	c.runRounds(10)

	var rowsBefore, stampsBefore int64
	for _, a := range c.agents {
		st := a.Stats()
		rowsBefore += st.RowsSent
		stampsBefore += st.StampsSent
	}
	c.runRounds(10)
	var rowsAfter, stampsAfter, applied int64
	for _, a := range c.agents {
		st := a.Stats()
		rowsAfter += st.RowsSent
		stampsAfter += st.StampsSent
		applied += st.StampsApplied
	}
	if rowsAfter != rowsBefore {
		t.Fatalf("steady-state rounds shipped %d full rows, want 0", rowsAfter-rowsBefore)
	}
	if stampsAfter == stampsBefore && applied == 0 {
		t.Fatal("no stamps sent or applied in steady state — heartbeats are not propagating")
	}
	// And heartbeats must still propagate: no agent may see another's
	// leaf row go stale enough to expire.
	c.runRounds(15)
	for i, a := range c.agents {
		rows, _ := a.Table("/z")
		if len(rows) != len(zones) {
			t.Fatalf("agent %d leaf table shrank to %d rows — stamps broke failure detection", i, len(rows))
		}
	}
}

// TestSignedClusterNeverStamps: with row signing on, every refresh must
// travel as a full signed row (a stamp would fabricate an issue time the
// owner never signed).
func TestSignedClusterNeverStamps(t *testing.T) {
	sign := func(r *wire.RowUpdate) {
		r.Signer = "test-ca"
		r.Sig = append([]byte("sig:"), r.SignedPayload()...)
	}
	verify := func(r *wire.RowUpdate) error {
		want := append([]byte("sig:"), r.SignedPayload()...)
		if r.Signer != "test-ca" || !bytes.Equal(r.Sig, want) {
			return fmt.Errorf("bad signature")
		}
		return nil
	}
	zones := []string{"/z", "/z", "/z"}
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.SignRow = sign
		cfg.VerifyRow = verify
	})
	c.runRounds(12)
	for i, a := range c.agents {
		st := a.Stats()
		if st.StampsSent != 0 || st.StampsApplied != 0 {
			t.Fatalf("agent %d used stamps on signed rows (sent=%d applied=%d)",
				i, st.StampsSent, st.StampsApplied)
		}
		rows, _ := a.Table("/z")
		if len(rows) != len(zones) {
			t.Fatalf("signed cluster agent %d sees %d rows", i, len(rows))
		}
	}
}
