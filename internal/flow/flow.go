// Package flow implements the flow-control machinery of paper §8: news
// producers publish "according to a restrictive set of rules ... to
// perform flow control", and "the selection and filtering mechanisms used
// in each forwarding component protect the system from flooding by
// publishers". Publishers are rate-limited by token buckets; forwarding
// components can apply per-publisher admission control.
package flow

import (
	"fmt"
	"sync"
	"time"

	"newswire/internal/vtime"
)

// TokenBucket is a classic token-bucket rate limiter driven by an
// injected clock so simulations stay deterministic.
type TokenBucket struct {
	clock vtime.Clock

	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a bucket that refills at rate tokens/second up to
// burst, starting full.
func NewTokenBucket(clock vtime.Clock, rate, burst float64) (*TokenBucket, error) {
	if clock == nil {
		return nil, fmt.Errorf("flow: clock required")
	}
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("flow: rate and burst must be positive (rate=%v burst=%v)", rate, burst)
	}
	return &TokenBucket{
		clock:  clock,
		rate:   rate,
		burst:  burst,
		tokens: burst,
		last:   clock.Now(),
	}, nil
}

// Allow consumes n tokens if available and reports whether the action is
// admitted.
func (b *TokenBucket) Allow(n float64) bool {
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Available returns the current token count.
func (b *TokenBucket) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

func (b *TokenBucket) refillLocked() {
	now := b.clock.Now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed <= 0 {
		return
	}
	b.last = now
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Limiter applies independent token buckets per key (publisher name), so
// one flooding publisher cannot consume another's budget.
type Limiter struct {
	clock vtime.Clock
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*TokenBucket
	denied  map[string]int64
}

// NewLimiter returns a per-key limiter with a shared rate/burst policy.
func NewLimiter(clock vtime.Clock, rate, burst float64) (*Limiter, error) {
	if clock == nil {
		return nil, fmt.Errorf("flow: clock required")
	}
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("flow: rate and burst must be positive")
	}
	return &Limiter{
		clock:   clock,
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*TokenBucket),
		denied:  make(map[string]int64),
	}, nil
}

// Allow consumes n tokens from key's bucket.
func (l *Limiter) Allow(key string, n float64) bool {
	l.mu.Lock()
	b, ok := l.buckets[key]
	if !ok {
		b, _ = NewTokenBucket(l.clock, l.rate, l.burst)
		l.buckets[key] = b
	}
	l.mu.Unlock()

	if b.Allow(n) {
		return true
	}
	l.mu.Lock()
	l.denied[key]++
	l.mu.Unlock()
	return false
}

// Denied returns how many admissions key has been refused.
func (l *Limiter) Denied(key string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.denied[key]
}

// Keys returns the number of tracked keys.
func (l *Limiter) Keys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
