package wire

// Slab-backed allocation for row payloads.
//
// A million-node simulation holds millions of SharedRow cached encodings
// — one small []byte per distinct row content. Allocated individually
// they are millions of separate GC objects: every cycle scans every one,
// and the mark phase cost grows O(rows). An Arena packs them into
// megabyte slabs instead, so the collector sees thousands of large
// objects rather than millions of small ones — O(zones), in effect,
// since steady-state row content is shared per zone.
//
// The discipline mirrors the copy-on-write row rules (row.go): slab
// bytes are written exactly once, inside Copy, before the returned slice
// escapes; afterwards the slab region is immutable for as long as any
// row references it. Slabs are append-only while reachable. Reclamation
// is by epoch: SealEpoch detaches the arena from its current slab, so a
// slab's lifetime ends with the last row pointing into it — when a zone
// table drops its last reference to an epoch's rows, the garbage
// collector frees the whole slab at once.
//
// An Arena never hands out aliased regions, so the race detector sees
// each byte written once; concurrent Copy calls (parallel digest/encode
// workers) serialize on one short critical section.

import "sync"

// arenaSlabSize is the slab granule. Big enough that slab count stays in
// the thousands at 10^6 rows, small enough that a mostly-dead epoch pins
// little memory.
const arenaSlabSize = 1 << 20

// arenaMaxCopy bounds payloads worth packing: anything larger than a
// quarter slab gets its own allocation (it is its own GC object either
// way at that size, and it would fragment slabs).
const arenaMaxCopy = arenaSlabSize / 4

// Arena packs small immutable byte payloads into shared slabs.
// The zero value is ready to use.
type Arena struct {
	mu    sync.Mutex
	cur   []byte
	stats ArenaStats
}

// ArenaStats counts an arena's lifetime activity.
type ArenaStats struct {
	Slabs  int64  // slabs ever started
	Bytes  int64  // payload bytes copied in
	Copies int64  // payloads copied in
	Epochs uint64 // times SealEpoch was called
}

// Copy stores a private, immutable copy of b in the arena's current slab
// and returns it. The result must be treated as read-only, like every
// shared row encoding.
func (a *Arena) Copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(b) > arenaMaxCopy {
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	a.mu.Lock()
	if len(a.cur)+len(b) > cap(a.cur) {
		a.cur = make([]byte, 0, arenaSlabSize)
		a.stats.Slabs++
	}
	off := len(a.cur)
	a.cur = a.cur[:off+len(b)]
	// Full-capacity three-index slice: the region can never be grown
	// into by a later append, even if the arena's own reference races
	// ahead.
	out := a.cur[off : off+len(b) : off+len(b)]
	copy(out, b)
	a.stats.Bytes += int64(len(b))
	a.stats.Copies++
	a.mu.Unlock()
	return out
}

// SealEpoch detaches the arena from its current slab: subsequent copies
// start a fresh slab, and the sealed slab is freed by the collector as
// soon as the last row encoding pointing into it is dropped. Callers
// with generational row churn (a simulation's periodic table turnover)
// seal between generations so short-lived rows don't pin a slab that
// mostly holds long-lived ones.
func (a *Arena) SealEpoch() {
	a.mu.Lock()
	a.cur = nil
	a.stats.Epochs++
	a.mu.Unlock()
}

// Stats returns the arena's lifetime counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// rowArena is the process arena backing SharedRow cached encodings.
var rowArena Arena

// RowArena returns the arena that SharedRow encodings are packed into.
// Simulations seal it between table generations (core.Cluster does this
// every few gossip rounds); live nodes may ignore it entirely.
func RowArena() *Arena { return &rowArena }
