package query

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"newswire/internal/news"
	"newswire/internal/value"
)

// row builds a metadata row the way pubsub.ItemMetadataRow does.
func row(publisher, id string, rev, urg int, subjects []string, published time.Time) value.Map {
	return value.Map{
		"publisher": value.String(publisher),
		"item_id":   value.String(id),
		"revision":  value.Int(int64(rev)),
		"urgency":   value.Int(int64(urg)),
		"subjects":  value.Strings(subjects),
		"published": value.Time(published),
	}
}

func TestParseAndMatch(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	it := row("reuters", "a1", 2, 3, []string{"tech/linux", "world/markets"}, base)

	cases := []struct {
		src  string
		want bool
	}{
		{"subject = 'tech/linux'", true},
		{"subjects = 'tech/linux'", true},
		{"subject = 'sci/space'", false},
		{"subject != 'sci/space'", true},
		{"subject != 'tech/linux'", false}, // negated existential: some subject equals it
		{"publisher = 'reuters'", true},
		{"publisher <> 'reuters'", false},
		{"urgency <= 3", true},
		{"urgency < 3", false},
		{"urgency BETWEEN 2 AND 5", true},
		{"urgency NOT BETWEEN 2 AND 5", false},
		{"urgency IN (1, 3, 5)", true},
		{"urgency NOT IN (1, 3, 5)", false},
		{"revision >= 2", true},
		{"subject IN ('sci/space', 'world/markets')", true},
		{"subject NOT IN ('sci/space')", true},
		{"publisher LIKE 'reu%'", true},
		{"publisher NOT LIKE 'reu%'", false},
		{"subject LIKE 'tech/%'", true},
		{"subject LIKE '%__linux'", true},
		{"subject LIKE 'tech'", false},
		{"item_id = 'a1' AND urgency = 3", true},
		{"urgency = 1 OR publisher = 'reuters'", true},
		{"NOT (urgency = 1 OR publisher = 'ap')", true},
		{"published >= '2026-08-01'", true},
		{"published > '2026-08-01T12:00:00Z'", false},
		{"published BETWEEN '2026-07-01' AND '2026-09-01'", true},
		{"TRUE", true},
		{"FALSE", false},
		{"subject = 'tech/linux' AND NOT publisher = 'ap' AND urgency <= 4", true},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		if got := p.Match(it); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"bogus = 'x'",
		"urgency = 'three'",
		"urgency = 3.5",
		"publisher = 3",
		"publisher < 'a'", // ordered compare on a string field
		"subject BETWEEN 'a' AND 'b'",
		"urgency LIKE '3'",
		"published = 'not-a-time'",
		"subject IN ()",
		"subject IN ('a',)",
		"urgency BETWEEN 1 5",
		"subject = 'a' AND",
		"subject = 'a' extra",
		"NOT",
		"(subject = 'a'",
		"subject NOT = 'a'",
		"urgency IN (1, 'two')",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error %T, want *SyntaxError", src, err)
			}
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"subject = 'tech/linux'",
		"Subject  =  'a''b'", // alias + escaped quote normalize
		"urgency <> 3",
		"subject IN ('a', 'b') AND NOT publisher LIKE 'r%' OR urgency NOT BETWEEN 2 AND 5",
		"published < '2026-08-01T00:00:00Z' AND revision = -1",
		"(TRUE OR FALSE) AND subjects != 'x'",
	}
	for _, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q) of %q: %v", p.String(), src, err)
		}
		if again.String() != p.String() {
			t.Errorf("round trip of %q: %q != %q", src, again.String(), p.String())
		}
	}
}

func TestFieldsMatchNewsMetadata(t *testing.T) {
	if got, want := Fields(), news.MetadataFields(); !reflect.DeepEqual(got, want) {
		t.Fatalf("query.Fields() = %v, news.MetadataFields() = %v", got, want)
	}
}

func TestCompileCovers(t *testing.T) {
	cases := []struct {
		src  string
		want Signature
	}{
		{
			"subject = 'a'",
			Signature{Subjects: []string{"a"}, AnyPublisher: true, AnyUrgency: true},
		},
		{
			"subject IN ('b', 'a', 'a') AND publisher = 'reuters' AND urgency <= 2",
			Signature{Subjects: []string{"a", "b"}, Publishers: []string{"reuters"}, Urgencies: []int{0, 1, 2}},
		},
		{
			// OR unions per dimension; the cross terms widen to wildcards.
			"subject = 'a' OR urgency = 3",
			Signature{AnySubject: true, AnyPublisher: true, AnyUrgency: true},
		},
		{
			"(subject = 'a' AND urgency = 1) OR (subject = 'b' AND urgency = 2)",
			Signature{Subjects: []string{"a", "b"}, AnyPublisher: true, Urgencies: []int{1, 2}},
		},
		{
			// AND of two subject constraints: intersection would be unsound
			// (an item can carry both); the smaller sound side wins.
			"subject = 'a' AND subject IN ('b', 'c')",
			Signature{Subjects: []string{"a"}, AnyPublisher: true, AnyUrgency: true},
		},
		{
			// Negations over string dimensions widen; urgency stays exact.
			"subject != 'a' AND publisher NOT IN ('x') AND urgency != 0",
			Signature{AnySubject: true, AnyPublisher: true, Urgencies: []int{1, 2, 3, 4, 5, 6, 7, 8}},
		},
		{
			"NOT (subject = 'a')",
			Signature{AnySubject: true, AnyPublisher: true, AnyUrgency: true},
		},
		{
			"publisher LIKE 'reuters'", // wildcard-free LIKE is equality
			Signature{AnySubject: true, Publishers: []string{"reuters"}, AnyUrgency: true},
		},
		{
			"publisher LIKE 'reu%'",
			Signature{AnySubject: true, AnyPublisher: true, AnyUrgency: true},
		},
		{
			"FALSE",
			Signature{},
		},
		{
			"urgency BETWEEN 3 AND 99", // clamped to the domain
			Signature{AnySubject: true, AnyPublisher: true, Urgencies: []int{3, 4, 5, 6, 7, 8}},
		},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		if got := p.Compile(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Compile(%q) = %+v, want %+v", tc.src, got, tc.want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"", "", true},
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"a%c", "abc", true},
		{"a%c", "ac", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a%b%c", "axxbyyc", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"%world/%", "world/politics", true},
		{"__", "ab", true},
		{"__", "a", false},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

func TestMatchMissingFieldsIsFalse(t *testing.T) {
	empty := value.Map{}
	for _, src := range []string{
		"subject = 'a'", "subject != 'a'", "publisher != 'a'",
		"urgency NOT IN (1)", "published < '2026-01-01'", "subject NOT LIKE 'a%'",
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if p.Match(empty) {
			t.Errorf("Match(%q) on empty row = true, want false", src)
		}
	}
}

func TestSubjectsSignature(t *testing.T) {
	sig := SubjectsSignature([]string{"b", "a", "b"})
	want := Signature{Subjects: []string{"a", "b"}, AnyPublisher: true, AnyUrgency: true}
	if !reflect.DeepEqual(sig, want) {
		t.Fatalf("SubjectsSignature = %+v, want %+v", sig, want)
	}
}

func TestParseErrorMentionsFields(t *testing.T) {
	_, err := Parse("nope = 1")
	if err == nil || !strings.Contains(err.Error(), "urgency") {
		t.Fatalf("unknown-field error should list fields, got %v", err)
	}
}
