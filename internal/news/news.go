// Package news models news items and their metadata the way the NewsWire
// prototype does (paper §7): an NITF-like XML format carrying the industry
// metadata that drives subscriptions, duplicate removal, cache management
// and revision fusion — unique item IDs per publisher, revision history,
// subject categories, urgency, and geography.
package news

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Item is one news item revision.
type Item struct {
	// Publisher is the originating news source ("reuters", "slashdot").
	Publisher string
	// ID uniquely identifies the item within the publisher's namespace.
	ID string
	// Revision numbers successive versions of the same item, from 0.
	Revision int
	// Headline is the display headline.
	Headline string
	// Byline credits the author.
	Byline string
	// Abstract is the summary shown on index pages.
	Abstract string
	// Body is the article text.
	Body string
	// Subjects are the subscription subjects the item matches, e.g.
	// "tech/linux" — the paper's "interest areas".
	Subjects []string
	// Urgency is the NITF editorial urgency, 1 (flash) to 8 (routine).
	Urgency int
	// Geography is a region hint used for zone-scoped publication (§8),
	// e.g. "asia".
	Geography string
	// Published is the publication instant of this revision.
	Published time.Time
}

// UrgencyMax bounds the NITF editorial urgency scale; Validate enforces
// 0..UrgencyMax. The domain is finite so subscription predicates over
// urgency compile to exact routing covers (internal/query).
const UrgencyMax = 8

// MetadataFields lists the item-metadata fields exposed to subscription
// predicates, matching the attribute row pubsub.ItemMetadataRow builds
// for each envelope. Sorted.
func MetadataFields() []string {
	return []string{"item_id", "published", "publisher", "revision", "subjects", "urgency"}
}

// Key returns the item's global deduplication key (§9: items are uniquely
// identified by the publisher as part of the metadata).
func (it *Item) Key() string {
	return fmt.Sprintf("%s/%s#%d", it.Publisher, it.ID, it.Revision)
}

// SeriesKey identifies the revision chain the item belongs to, ignoring
// the revision number. The cache fuses revisions within a series.
func (it *Item) SeriesKey() string {
	return it.Publisher + "/" + it.ID
}

// Validate checks the invariants the rest of the system relies on.
func (it *Item) Validate() error {
	if it.Publisher == "" {
		return fmt.Errorf("news: item missing publisher")
	}
	if strings.ContainsAny(it.Publisher, "/# \t\n") {
		return fmt.Errorf("news: publisher %q contains reserved characters", it.Publisher)
	}
	if it.ID == "" {
		return fmt.Errorf("news: item missing id")
	}
	if strings.ContainsAny(it.ID, "/# \t\n") {
		return fmt.Errorf("news: item id %q contains reserved characters", it.ID)
	}
	if it.Revision < 0 {
		return fmt.Errorf("news: negative revision %d", it.Revision)
	}
	if it.Urgency < 0 || it.Urgency > UrgencyMax {
		return fmt.Errorf("news: urgency %d outside 0..%d", it.Urgency, UrgencyMax)
	}
	if len(it.Subjects) == 0 {
		return fmt.Errorf("news: item %s has no subjects", it.Key())
	}
	for _, s := range it.Subjects {
		if s == "" {
			return fmt.Errorf("news: item %s has an empty subject", it.Key())
		}
	}
	return nil
}

// Size returns the approximate byte size of the item's content, used by
// the pull-redundancy experiment (E2) to count transferred bytes.
func (it *Item) Size() int {
	n := len(it.Headline) + len(it.Byline) + len(it.Abstract) + len(it.Body) +
		len(it.Publisher) + len(it.ID) + len(it.Geography) + 16
	for _, s := range it.Subjects {
		n += len(s)
	}
	return n
}

// nitfDoc is the XML schema, shaped after NITF 3.0's structure (head with
// docdata, body with body.head and body.content).
type nitfDoc struct {
	XMLName xml.Name `xml:"nitf"`
	Version string   `xml:"version,attr"`
	Head    nitfHead `xml:"head"`
	Body    nitfBody `xml:"body"`
}

type nitfHead struct {
	DocData nitfDocData `xml:"docdata"`
	PubData nitfPubData `xml:"pubdata"`
}

type nitfDocData struct {
	DocID     nitfDocID     `xml:"doc-id"`
	Urgency   nitfUrgency   `xml:"urgency"`
	DateIssue nitfDateIssue `xml:"date.issue"`
	DuKey     nitfDuKey     `xml:"du-key"`
	KeyList   nitfKeyList   `xml:"key-list"`
	Location  nitfLocation  `xml:"location,omitempty"`
}

type nitfDocID struct {
	IDString string `xml:"id-string,attr"`
}

type nitfUrgency struct {
	EdUrg int `xml:"ed-urg,attr"`
}

type nitfDateIssue struct {
	Norm string `xml:"norm,attr"`
}

// nitfDuKey carries the revision number (NITF uses du-key for update
// chains).
type nitfDuKey struct {
	Version int `xml:"version,attr"`
}

type nitfKeyList struct {
	Keywords []nitfKeyword `xml:"keyword"`
}

type nitfKeyword struct {
	Key string `xml:"key,attr"`
}

type nitfLocation struct {
	Region string `xml:"region,attr,omitempty"`
}

type nitfPubData struct {
	Name string `xml:"name,attr"`
}

type nitfBody struct {
	Head    nitfBodyHead `xml:"body.head"`
	Content string       `xml:"body.content"`
}

type nitfBodyHead struct {
	Hedline  nitfHedline `xml:"hedline"`
	Byline   string      `xml:"byline,omitempty"`
	Abstract string      `xml:"abstract,omitempty"`
}

type nitfHedline struct {
	HL1 string `xml:"hl1"`
}

// nitfVersion is the DTD identifier stamped on encoded items.
const nitfVersion = "-//IPTC//DTD NITF 3.0//EN"

// MarshalNITF encodes the item as NITF-like XML.
func MarshalNITF(it *Item) ([]byte, error) {
	if err := it.Validate(); err != nil {
		return nil, err
	}
	doc := nitfDoc{
		Version: nitfVersion,
		Head: nitfHead{
			DocData: nitfDocData{
				DocID:     nitfDocID{IDString: it.ID},
				Urgency:   nitfUrgency{EdUrg: it.Urgency},
				DateIssue: nitfDateIssue{Norm: it.Published.UTC().Format(time.RFC3339Nano)},
				DuKey:     nitfDuKey{Version: it.Revision},
				Location:  nitfLocation{Region: it.Geography},
			},
			PubData: nitfPubData{Name: it.Publisher},
		},
		Body: nitfBody{
			Head: nitfBodyHead{
				Hedline:  nitfHedline{HL1: it.Headline},
				Byline:   it.Byline,
				Abstract: it.Abstract,
			},
			Content: it.Body,
		},
	}
	for _, s := range it.Subjects {
		doc.Head.DocData.KeyList.Keywords = append(doc.Head.DocData.KeyList.Keywords,
			nitfKeyword{Key: s})
	}
	out, err := xml.Marshal(&doc)
	if err != nil {
		return nil, fmt.Errorf("news: marshal %s: %w", it.Key(), err)
	}
	return append([]byte(xml.Header), out...), nil
}

// UnmarshalNITF decodes an item from NITF-like XML produced by
// MarshalNITF (or hand-written equivalents).
func UnmarshalNITF(data []byte) (*Item, error) {
	var doc nitfDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("news: unmarshal: %w", err)
	}
	it := &Item{
		Publisher: doc.Head.PubData.Name,
		ID:        doc.Head.DocData.DocID.IDString,
		Revision:  doc.Head.DocData.DuKey.Version,
		Headline:  doc.Body.Head.Hedline.HL1,
		Byline:    doc.Body.Head.Byline,
		Abstract:  doc.Body.Head.Abstract,
		Body:      doc.Body.Content,
		Urgency:   doc.Head.DocData.Urgency.EdUrg,
		Geography: doc.Head.DocData.Location.Region,
	}
	for _, kw := range doc.Head.DocData.KeyList.Keywords {
		it.Subjects = append(it.Subjects, kw.Key)
	}
	if norm := doc.Head.DocData.DateIssue.Norm; norm != "" {
		ts, err := time.Parse(time.RFC3339Nano, norm)
		if err != nil {
			return nil, fmt.Errorf("news: bad date.issue %q: %w", norm, err)
		}
		it.Published = ts
	}
	if err := it.Validate(); err != nil {
		return nil, err
	}
	return it, nil
}

// Standard subject vocabulary used by the examples and workload
// generators. Subjects are hierarchical slash-separated categories in the
// spirit of the IPTC subject codes NITF references.
var StandardSubjects = []string{
	"tech/linux", "tech/security", "tech/hardware", "tech/internet",
	"tech/software", "tech/science",
	"world/asia", "world/europe", "world/americas", "world/africa",
	"world/middle-east",
	"business/markets", "business/companies", "business/economy",
	"sports/soccer", "sports/baseball", "sports/olympics",
	"politics/elections", "politics/policy",
	"culture/film", "culture/music", "culture/books",
}

// SubjectsByPrefix returns the standard subjects under a top-level
// category ("tech" -> tech/*), sorted.
func SubjectsByPrefix(prefix string) []string {
	var out []string
	for _, s := range StandardSubjects {
		if strings.HasPrefix(s, prefix+"/") {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// MatchesAny reports whether the item carries at least one of the given
// subjects — the leaf node's final exact-match test that discards Bloom
// false positives (§6).
func (it *Item) MatchesAny(subjects []string) bool {
	for _, want := range subjects {
		for _, have := range it.Subjects {
			if have == want {
				return true
			}
		}
	}
	return false
}
