// Technews: the paper's first target configuration (§10) — technical news
// publishing by Slashdot-like sites, bootstrapped from RSS.
//
// A bootstrap agent (§10) polls an RSS channel, transforms new and changed
// entries into NewsWire items, and publishes them into a simulated
// 48-node cluster. Subscribers follow specific tech categories; revision
// fusion in the end-system cache keeps only the newest version of each
// story.
//
// Run with: go run ./examples/technews
package main

import (
	"fmt"
	"log"
	"time"

	"newswire"
	"newswire/internal/feed"
)

// pollOne is the RSS channel as seen on the first poll.
const pollOne = `<?xml version="1.0"?>
<rss version="2.0"><channel>
  <title>Slashdot</title><link>http://slashdot.org/</link>
  <item><title>Linux 2.5.8 released</title><guid>s1</guid>
    <description>New devel kernel out.</description>
    <category>Linux</category></item>
  <item><title>New SSH vulnerability</title><guid>s2</guid>
    <description>Patch your servers.</description>
    <category>Security</category></item>
</channel></rss>`

// pollTwo is the same channel later: one entry updated, one new.
const pollTwo = `<?xml version="1.0"?>
<rss version="2.0"><channel>
  <title>Slashdot</title><link>http://slashdot.org/</link>
  <item><title>Linux 2.5.8 released</title><guid>s1</guid>
    <description>New devel kernel out. UPDATE: mirrors are live.</description>
    <category>Linux</category></item>
  <item><title>New SSH vulnerability</title><guid>s2</guid>
    <description>Patch your servers.</description>
    <category>Security</category></item>
  <item><title>AMD ships new CPU</title><guid>s3</guid>
    <description>Benchmarks inside.</description>
    <category>Hardware</category></item>
</channel></rss>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== NewsWire technews: RSS-bootstrapped tech publishing ==")

	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         48,
		Branching: 8,
		Seed:      77,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.FuseRevisions = true // cache keeps newest revision only (§9)
			node := i
			cfg.OnItem = func(it *newswire.Item, env *newswire.ItemEnvelope) {
				if node == 1 || node == 30 {
					fmt.Printf("  node %-2d <- %-24s rev %d  %s\n",
						node, it.Key(), it.Revision, it.Headline)
				}
			}
		},
	})
	if err != nil {
		return err
	}

	// Nodes follow different tech beats.
	for i, node := range cluster.Nodes {
		var subjects []string
		switch i % 3 {
		case 0:
			subjects = []string{"tech/linux"}
		case 1:
			subjects = []string{"tech/security", "tech/linux"}
		default:
			subjects = []string{"tech/hardware"}
		}
		if err := node.Subscribe(subjects...); err != nil {
			return err
		}
	}
	cluster.RunRounds(10)

	// The bootstrap agent transforms RSS polls into item streams (§10).
	agent, err := feed.NewAgent("slashdot", nil)
	if err != nil {
		return err
	}
	publish := func(rss string) error {
		channel, err := feed.ParseRSS([]byte(rss))
		if err != nil {
			return err
		}
		items := agent.Transform(channel, cluster.Eng.Now())
		fmt.Printf("poll produced %d new/changed items\n", len(items))
		for _, it := range items {
			if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
				return err
			}
		}
		cluster.RunFor(5 * time.Second)
		return nil
	}

	fmt.Println("\n-- first RSS poll --")
	if err := publish(pollOne); err != nil {
		return err
	}
	fmt.Println("\n-- second RSS poll (one update, one new story) --")
	if err := publish(pollTwo); err != nil {
		return err
	}

	// The cache of a linux+security subscriber holds the fused newest
	// revisions only.
	node1 := cluster.Nodes[1]
	fmt.Printf("\nnode 1 cache: %d items (revision fusion on)\n", node1.Cache().Len())
	if env, ok := node1.Cache().Latest("slashdot/rss-000001"); ok {
		fmt.Printf("  newest revision of the kernel story: rev %d\n", env.Revision)
	}
	st := node1.Cache().Stats()
	fmt.Printf("  cache stats: puts=%d dups=%d fused=%d\n", st.Puts, st.Duplicates, st.Fused)
	return nil
}
