package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Add(-10)
	if c.Value() != 5 {
		t.Fatal("negative Add must be ignored")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("Value = %v, want 3.5", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("Value = %v, want -1", g.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", h.Mean())
	}
	if h.Sum() != 5050 {
		t.Fatalf("Sum = %v, want 5050", h.Sum())
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Quantile(0.5)
	h.Observe(1)
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("min after late observe = %v, want 1", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("Mean = %v, want 1.5", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("Counter did not return the same instance")
	}
	g := r.Gauge("y")
	g.Set(2)
	if r.Gauge("y").Value() != 2 {
		t.Fatal("Gauge did not return the same instance")
	}
	h := r.Histogram("z")
	h.Observe(1)
	if r.Histogram("z").Count() != 1 {
		t.Fatal("Histogram did not return the same instance")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(3)
	r.Gauge("load").Set(0.5)
	r.Histogram("latency").Observe(2)
	snap := r.Snapshot()
	for _, want := range []string{"counter msgs 3", "gauge load 0.5", "histogram latency count=1"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
