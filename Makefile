# NewsWire build and experiment targets.

# Recipes pipe gating commands through tee (smoke, bench-smoke); with the
# default /bin/sh the pipeline's exit status is tee's, so a failed bench or
# equality check would pass CI green. pipefail restores propagation.
SHELL := bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: all build test vet race fmt-check lint smoke bench bench-smoke bench-mem bench-compare chaos chaos-smoke e8 e8-smoke e11 e11-smoke e12 obs-smoke tables tables-quick tables-big examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fail if any file needs gofmt (CI gate).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Vet plus staticcheck when available (CI installs it; local runs skip
# silently if absent, keeping lint dependency-free).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped"; fi

# Quick experiment smoke: the scale (E1), robustness/retry (E6), and
# convergence (E7) tables at reduced size, saved for artifact upload.
smoke: bin/newswire-bench
	mkdir -p artifacts
	bin/newswire-bench -quick -run E1,E6,E7 | tee artifacts/tables.txt

# Quick-size experiment tables + hot-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Parallel-executor smoke: regenerate E1 (largest standard point: 4096
# nodes) under the parallel executor, gating on the serial-vs-parallel
# table equality check, and record wall/alloc numbers as BENCH_E1.json.
# The equality check is the gate; the timing numbers are informational.
# With -trace the gate also covers span-set equality (fingerprints),
# and the slowest deliveries' hop paths land in the JSON artifact.
bench-smoke: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E1.json > artifacts/BENCH_E1.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E1.baseline.json
	bin/newswire-bench -run E1 -workers -1 -verify-parallel -speedup -trace -json artifacts | tee artifacts/bench-smoke.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E1.baseline.json -current artifacts/BENCH_E1.json | tee artifacts/bytes-gate.txt
	$(GO) test . -run TestGossipRoundTraceOverheadGuard -count=1 -v | tee artifacts/trace-guard.txt
	bin/newswire-bench -run E6 -quick -trace -json artifacts | tee artifacts/trace-smoke.txt

# Memory smoke: one virtual-leaf E1 row at 65,536 nodes with the heap
# profile snapshotted at the run's peak tick, gated on the per-node peak
# heap (peak_heap_bytes_per_node) against the committed baseline for the
# same size. This is the guard for the million-node memory architecture
# (slab rows, virtual leaves, timer wheel — DESIGN.md §9): losing any of
# it shows up as a multiple, not a percentage. The wider 25% bound
# absorbs allocator/runner variance that the deterministic byte gate
# does not have.
bench-mem: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E1_N65536.json > artifacts/BENCH_E1_N65536.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E1_N65536.baseline.json
	bin/newswire-bench -nodes 65536 -workers -1 -memprofile artifacts/heap-peak-n65536.pprof -json artifacts/memsmoke | tee artifacts/bench-mem.txt
	cp artifacts/memsmoke/BENCH_E1.json artifacts/BENCH_E1_N65536.json
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E1_N65536.baseline.json -current artifacts/BENCH_E1_N65536.json -max-heap-regress 0.25 | tee artifacts/heap-gate.txt

# Compare the gossip-round micro-benchmarks between the last commit on
# main (origin/main when a remote exists) and the working tree. Uses
# benchstat when installed; otherwise falls back to the dependency-free
# comparer built into this repo (cmd/benchgate -compare).
bench-compare:
	mkdir -p artifacts
	rm -rf .benchbase && git worktree prune
	git worktree add --detach .benchbase origin/main 2>/dev/null || git worktree add --detach .benchbase main
	cd .benchbase && $(GO) test . -run '^$$' -bench BenchmarkGossipRound -benchmem -count 3 > ../artifacts/bench-base.txt
	$(GO) test . -run '^$$' -bench BenchmarkGossipRound -benchmem -count 3 > artifacts/bench-head.txt
	git worktree remove --force .benchbase
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat artifacts/bench-base.txt artifacts/bench-head.txt; \
	else \
		$(GO) run ./cmd/benchgate -compare artifacts/bench-base.txt artifacts/bench-head.txt; \
	fi

# Full adversarial scenario suite (E10): every chaos scenario under the
# parallel executor with the serial-equality check, gated against the
# committed BENCH_E10.json baseline (per-scenario delivery floors and
# convergence bounds travel inside the artifact rows).
chaos: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E10.json > artifacts/BENCH_E10.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E10.baseline.json
	bin/newswire-bench -run E10 -workers -1 -verify-parallel -json artifacts | tee artifacts/chaos.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E10.baseline.json -current artifacts/BENCH_E10.json | tee artifacts/chaos-gate.txt

# PR-sized chaos gate: the two quickest scenarios (partition-heal and
# scramble-converge) with the same serial-equality and benchgate checks.
chaos-smoke: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E10.json > artifacts/BENCH_E10.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E10.baseline.json
	bin/newswire-bench -scenario partition-heal,scramble-converge -workers -1 -verify-parallel -json artifacts/chaos-smoke | tee artifacts/chaos-smoke.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E10.baseline.json -current artifacts/chaos-smoke/BENCH_E10.json | tee artifacts/chaos-smoke-gate.txt

# Routing-precision sweep (E8): predicate signatures vs. Bloom vs.
# attribute summaries over one identical workload per subscription count,
# gated on equal recall, the predicate arm's false-positive cut (drops
# <= 50% of bloom's) and its gossip-bytes budget (<= 1.10x bloom), plus
# per-arm bytes drift against the committed BENCH_E8.json baseline.
e8: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E8.json > artifacts/BENCH_E8.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E8.baseline.json
	bin/newswire-bench -run E8 -workers -1 -verify-parallel -json artifacts | tee artifacts/e8.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E8.baseline.json -current artifacts/BENCH_E8.json | tee artifacts/e8-gate.txt

# PR-sized precision gate: the quick sweep (16 and 256 subject pools)
# under the same serial-equality and benchgate checks; baseline-only
# labels (the full run's 64/1024 pools) are skipped by the drift bound.
e8-smoke: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E8.json > artifacts/BENCH_E8.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E8.baseline.json
	bin/newswire-bench -run E8 -quick -workers -1 -verify-parallel -json artifacts/e8-smoke | tee artifacts/e8-smoke.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E8.baseline.json -current artifacts/e8-smoke/BENCH_E8.json | tee artifacts/e8-smoke-gate.txt

# Live-transport fan-out benchmark (E11): 10,000 loopback subscriber
# connections against one hub over real sockets, the asynchronous writer
# path against the legacy synchronous ablation, plus a both-codec
# full-decode verification phase. Hard gates: zero frame corruption, a
# sustained-throughput floor and clean-p99 ceiling on the async arm, and
# the async/sync speedup the tentpole claims. Baseline deltas are
# informational (wall-clock socket numbers vary per machine).
e11: bin/newswire-loadgen
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E11.json > artifacts/BENCH_E11.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E11.baseline.json
	bin/newswire-loadgen -subs 10000 -json artifacts | tee artifacts/e11.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E11.baseline.json -current artifacts/BENCH_E11.json -min-msgs-per-sec 100000 -max-p99-ms 1500 -min-speedup 5 | tee artifacts/e11-gate.txt

# PR-sized live-transport gate: 2,000 subscriber connections with short
# steps. Floors are sized for noisy shared CI runners; corruption stays a
# hard zero. The speedup ratio is informational at this size — the sync
# arm only separates cleanly near full scale.
e11-smoke: bin/newswire-loadgen
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E11.json > artifacts/BENCH_E11.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E11.baseline.json
	bin/newswire-loadgen -subs 2000 -pub-rates 5,20,100 -step 2s -verify-items 64 -json artifacts/e11-smoke | tee artifacts/e11-smoke.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E11.baseline.json -current artifacts/e11-smoke/BENCH_E11.json -min-msgs-per-sec 30000 -max-p99-ms 2000 | tee artifacts/e11-smoke-gate.txt

# Observability overhead (E12): the BenchmarkGossipRound shape with the
# self-monitoring plane off / health-only / health+trace, gated on the
# enabled-vs-disabled overhead: <= 5% gossip bytes/round and <= 5%
# ns/round (drift-cancelling paired-ratio timing; see experiments.ObsArm).
e12: bin/newswire-bench
	mkdir -p artifacts
	git show HEAD:artifacts/BENCH_E12.json > artifacts/BENCH_E12.baseline.json 2>/dev/null || echo '{}' > artifacts/BENCH_E12.baseline.json
	bin/newswire-bench -run E12 -quick -json artifacts | tee artifacts/e12.txt
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_E12.baseline.json -current artifacts/BENCH_E12.json | tee artifacts/e12-gate.txt

# Live observability smoke: 3-process mini-cluster, gossip-aggregated
# /cluster-health.json convergence on every node, one published item's
# cross-process trace joined by the loadgen collector with clock-offset
# corrected timestamps (scripts/obs_smoke.sh).
obs-smoke:
	mkdir -p artifacts
	./scripts/obs_smoke.sh

# Full-size experiment tables (EXPERIMENTS.md).
tables: bin/newswire-bench
	bin/newswire-bench

tables-quick: bin/newswire-bench
	bin/newswire-bench -quick

# Adds the 32k/131k-node E1/E7 points (slow, several GB of memory).
# GOGC=200 trades peak heap for ~15% less GC churn on the 131k point;
# -workers -1 lets hosts with spare cores run gossip windows in parallel.
tables-big: bin/newswire-bench
	GOGC=200 bin/newswire-bench -run E1,E7 -big -workers -1

bin/newswire-bench:
	$(GO) build -o bin/newswire-bench ./cmd/newswire-bench

bin/newswire-loadgen:
	$(GO) build -o bin/newswire-loadgen ./cmd/newswire-loadgen

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/technews
	$(GO) run ./examples/worldnews
	$(GO) run ./examples/resilience
	$(GO) run ./examples/monitor

clean:
	rm -rf bin
