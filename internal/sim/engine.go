// Package sim is the discrete-event simulation substrate that stands in
// for the paper's Internet-scale deployment (see DESIGN.md §2). It provides
// a deterministic event engine driven by virtual time and a network model
// with per-link latency, loss, crash-stop failures and partitions.
//
// Protocol agents are passive state machines; the engine calls their
// handlers and tick functions in a single goroutine, so runs are exactly
// reproducible from a seed — every experiment table in EXPERIMENTS.md can
// be regenerated bit-for-bit.
package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"newswire/internal/vtime"
)

// Engine is a deterministic discrete-event scheduler over virtual time.
type Engine struct {
	clock  *vtime.Virtual
	rng    *rand.Rand
	events eventHeap
	seq    uint64
}

// NewEngine returns an engine whose clock starts at vtime.Epoch and whose
// randomness derives entirely from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		clock: vtime.NewVirtual(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Clock returns the engine's virtual clock, for handing to protocol
// components that need a vtime.Clock.
func (e *Engine) Clock() *vtime.Virtual { return e.clock }

// Rand returns the engine's deterministic random source. Only simulator-
// driven code may use it; sharing it keeps the whole run reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// After schedules fn to run d from now. Non-positive delays run at the
// current time (but still through the queue, preserving ordering).
func (e *Engine) After(d time.Duration, fn func()) {
	e.AfterOwned(noOwner, d, fn)
}

// At schedules fn at the absolute virtual time t. Times in the past are
// clamped to now.
func (e *Engine) At(t time.Time, fn func()) {
	e.AtOwned(noOwner, t, fn)
}

// noOwner marks events that are not tied to one simulated node; the
// parallel executor runs them serially, in order, on its own goroutine.
const noOwner = -1

// AfterOwned schedules fn like After and tags the event as owned by the
// executor-registered node `owner`: the event touches only that node's
// state, so parallel windows may run it concurrently with other owners'
// events. Pass noOwner (or use After) for events without that guarantee.
func (e *Engine) AfterOwned(owner int, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.AtOwned(owner, e.clock.Now().Add(d), fn)
}

// AtOwned schedules fn like At with an owner tag (see AfterOwned).
func (e *Engine) AtOwned(owner int, t time.Time, fn func()) {
	now := e.clock.Now()
	if t.Before(now) {
		t = now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, owner: owner, fn: fn})
}

// Ticker is a recurring scheduled callback. Stop cancels future firings.
type Ticker struct {
	stopped bool
}

// Stop cancels the ticker after the currently scheduled firing.
func (t *Ticker) Stop() { t.stopped = true }

// Every schedules fn to run every interval, starting one interval from
// now, until the returned Ticker is stopped. A jitter fraction j in [0,1)
// spreads firings by ±j·interval/2 so simulated nodes don't tick in
// lockstep (real gossip deployments never do).
func (e *Engine) Every(interval time.Duration, jitter float64, fn func()) *Ticker {
	t := &Ticker{}
	var schedule func()
	schedule = func() {
		d := interval
		if jitter > 0 {
			half := time.Duration(float64(interval) * jitter / 2)
			d += time.Duration(e.rng.Int63n(int64(2*half+1))) - half
		}
		e.After(d, func() {
			if t.stopped {
				return
			}
			fn()
			if !t.stopped {
				schedule()
			}
		})
	}
	schedule()
	return t
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.clock.SetNow(ev.at)
	ev.fn()
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is after t; the clock ends at exactly t (or later if an event at t
// scheduled follow-ups that also ran). It returns the number of events run.
func (e *Engine) RunUntil(t time.Time) int {
	n := 0
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.at.After(t) {
			break
		}
		e.Step()
		n++
	}
	e.clock.SetNow(t)
	return n
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) int {
	return e.RunUntil(e.clock.Now().Add(d))
}

// RunUntilIdle drains the queue completely, up to a safety cap of maxEvents
// (0 means no cap). It returns the number of events run.
func (e *Engine) RunUntilIdle(maxEvents int) int {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

type event struct {
	at    time.Time
	seq   uint64
	owner int // executor owner id, or noOwner
	fn    func()
}

// eventHeap orders events by (time, insertion sequence) so simultaneous
// events run in deterministic FIFO order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
