package experiments

import (
	"fmt"
	"strings"

	"newswire/internal/sim/chaos"
)

// RunE10 drives the adversarial scenario suite (internal/sim/chaos):
// partitions that heal, Poisson churn storms over virtual leaves, zipf
// hot-key bursts, link-loss ramps, mid-run state scrambling (open and
// certificate-verified), and the composed kitchen-sink run. Each scenario
// measures delivery during the fault window, the rounds needed to
// converge back to 100%, and the bytes spent recovering — the §9–10
// robustness story under compound failures rather than one fault at a
// time.
//
// Options.Scenario selects a comma-separated subset by name; otherwise
// Quick runs the PR-gate pair and the default runs the full registry.
// Results land in Table.Chaos for BENCH_E10.json, where benchgate bounds
// convergence rounds and per-scenario delivery floors.
func RunE10(opt Options) *Table {
	var names []string
	switch {
	case opt.Scenario != "":
		for _, n := range strings.Split(opt.Scenario, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	case opt.Quick:
		names = chaos.QuickNames()
	default:
		for _, sc := range chaos.Scenarios() {
			names = append(names, sc.Name)
		}
	}

	t := &Table{
		ID:    "E10",
		Title: "adversarial scenarios: partitions, churn, scrambling",
		Claim: "self-stabilizing delivery: every fault schedule converges back to 100% (§9-10)",
		Columns: []string{"scenario", "nodes", "items", "min delivery", "final",
			"conv rounds", "recovery KB", "rejected", "scrambled", "materialized", "self-heal"},
	}
	maxNodes := 0
	for _, name := range names {
		sc, ok := chaos.ByName(name)
		if !ok {
			t.AddRow(name, "error: unknown scenario", "", "", "", "", "", "", "", "", "")
			continue
		}
		res, err := chaos.Run(sc, chaos.Options{Seed: opt.Seed, Workers: opt.Workers})
		if err != nil {
			t.AddRow(name, "error: "+err.Error(), "", "", "", "", "", "", "", "", "")
			continue
		}
		heal := "n/a"
		if res.SelfHealed != nil {
			heal = fmt.Sprint(*res.SelfHealed)
		}
		t.AddRow(
			res.Scenario,
			fmt.Sprint(res.Nodes),
			fmt.Sprint(res.Items),
			fmtPct(res.DeliveryDuringFault),
			fmtPct(res.FinalDelivery),
			fmt.Sprint(res.ConvergenceRounds),
			fmt.Sprintf("%.1f", float64(res.RecoveryBytes)/1024),
			fmtI(res.RowsRejected),
			fmt.Sprint(res.RowsScrambled),
			fmt.Sprint(res.Materialized),
			heal,
		)
		t.Chaos = append(t.Chaos, *res)
		if res.Nodes > maxNodes {
			maxNodes = res.Nodes
		}
	}
	t.Nodes = maxNodes
	t.Notes = append(t.Notes,
		"min delivery = worst live-member delivery fraction at any round boundary in the fault window",
		"conv rounds = rounds past the last fault until every member holds every item (max_rounds+1 = never)",
		"self-heal compares final table fingerprints against a never-scrambled twin run at the same seed",
		"seed-deterministic and serial≡parallel: scramble draws come from an owned stream in canonical order")
	return t
}
