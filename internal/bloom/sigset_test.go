package bloom

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestSignatureSetRoundTrip(t *testing.T) {
	filters := [][]byte{{0x01, 0x02}, {}, {0xff}}
	enc := EncodeSignatureSet(4, filters)
	k, got, ok := DecodeSignatureSet(enc)
	if !ok || k != 4 {
		t.Fatalf("decode: k=%d ok=%v", k, ok)
	}
	if !reflect.DeepEqual(got, filters) {
		t.Fatalf("filters = %v, want %v", got, filters)
	}
	if n := SignatureSetLen(enc); n != 3 {
		t.Fatalf("SignatureSetLen = %d, want 3", n)
	}
}

func TestSignatureSetMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},             // k = 0
		{0x01},             // missing count
		{0x01, 0x02, 0x05}, // filter length runs past the buffer
		{0x01, 0x01, 0x10, 0xaa},
		bytes.Repeat([]byte{0xff}, 12), // giant uvarints
	}
	for _, enc := range cases {
		if _, _, ok := DecodeSignatureSet(enc); ok {
			t.Errorf("DecodeSignatureSet(%x) ok, want malformed", enc)
		}
		if n := SignatureSetLen(enc); n != 0 && enc != nil {
			// {0x01, 0x01, ...} has a plausible header; Len only reads it.
			_ = n
		}
		if IterSignatureSet(enc, func([]byte) bool { return true }) {
			// Iteration over malformed input must not report a hit unless a
			// complete filter was actually walked.
			k, _, ok := DecodeSignatureSet(enc)
			t.Errorf("IterSignatureSet(%x) hit on malformed input (k=%d ok=%v)", enc, k, ok)
		}
	}
}

func TestIterSignatureSetShortCircuits(t *testing.T) {
	enc := EncodeSignatureSet(2, [][]byte{{0x01}, {0x02}, {0x04}})
	var seen [][]byte
	hit := IterSignatureSet(enc, func(f []byte) bool {
		seen = append(seen, f)
		return f[0] == 0x02
	})
	if !hit || len(seen) != 2 {
		t.Fatalf("hit=%v seen=%v, want hit after 2 filters", hit, seen)
	}
}

func TestMergeSignatureSetsClustersToK(t *testing.T) {
	// Two members with identical filters and one different: the identical
	// pair must merge first.
	a := EncodeSignatureSet(2, [][]byte{{0x0f, 0x00}, {0x00, 0xf0}})
	b := EncodeSignatureSet(2, [][]byte{{0x0f, 0x00}})
	merged := MergeSignatureSets(a, b)
	k, filters, ok := DecodeSignatureSet(merged)
	if !ok || k != 2 || len(filters) != 2 {
		t.Fatalf("merged: k=%d n=%d ok=%v", k, len(filters), ok)
	}
	if !reflect.DeepEqual(filters[0], []byte{0x0f, 0x00}) && !reflect.DeepEqual(filters[1], []byte{0x0f, 0x00}) {
		t.Fatalf("identical filters did not merge into one: %x", filters)
	}
}

func TestMergeSignatureSetsMalformedSideIgnored(t *testing.T) {
	good := EncodeSignatureSet(3, [][]byte{{0xaa}})
	for _, merged := range [][]byte{
		MergeSignatureSets(good, []byte{0x00}),
		MergeSignatureSets([]byte{0x00}, good),
	} {
		k, filters, ok := DecodeSignatureSet(merged)
		if !ok || k != 3 || len(filters) != 1 || !bytes.Equal(filters[0], []byte{0xaa}) {
			t.Fatalf("merge with malformed side = k=%d %x ok=%v, want the good side", k, filters, ok)
		}
	}
	if _, _, ok := DecodeSignatureSet(MergeSignatureSets(nil, nil)); !ok {
		t.Fatal("merging two malformed sets must still produce a decodable empty set")
	}
}

// TestMergeSignatureSetsUnionInvariant: however clustering groups the
// inputs, every input bit must survive into some output filter, and the
// union of outputs must equal the union of inputs (bits are only added,
// never lost — the soundness carrier).
func TestMergeSignatureSetsUnionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		mk := func(n int) [][]byte {
			fs := make([][]byte, n)
			for i := range fs {
				f := make([]byte, 16)
				for j := 0; j < 4; j++ {
					f[rng.Intn(len(f))] |= 1 << uint(rng.Intn(8))
				}
				fs[i] = f
			}
			return fs
		}
		fa, fb := mk(1+rng.Intn(5)), mk(1+rng.Intn(5))
		ka, kb := 1+rng.Intn(4), 1+rng.Intn(4)
		merged := MergeSignatureSets(EncodeSignatureSet(ka, fa), EncodeSignatureSet(kb, fb))
		k, out, ok := DecodeSignatureSet(merged)
		if !ok {
			t.Fatal("merged set does not decode")
		}
		maxK := ka
		if kb > maxK {
			maxK = kb
		}
		if k != maxK || len(out) > maxK {
			t.Fatalf("k=%d n=%d, want k=%d n<=%d", k, len(out), maxK, maxK)
		}
		wantUnion := make([]byte, 16)
		for _, f := range append(append([][]byte{}, fa...), fb...) {
			for i, c := range f {
				wantUnion[i] |= c
			}
		}
		gotUnion := make([]byte, 16)
		for _, f := range out {
			for i, c := range f {
				gotUnion[i] |= c
			}
		}
		if !bytes.Equal(gotUnion, wantUnion) {
			t.Fatalf("union changed across merge:\n got %x\nwant %x", gotUnion, wantUnion)
		}
	}
}

// TestMergeSignatureSetsDeterministic: same inputs, same bytes out.
func TestMergeSignatureSetsDeterministic(t *testing.T) {
	a := EncodeSignatureSet(2, [][]byte{{0x01}, {0x02}, {0x03}})
	b := EncodeSignatureSet(2, [][]byte{{0x04}, {0x05}})
	first := MergeSignatureSets(a, b)
	for i := 0; i < 5; i++ {
		if again := MergeSignatureSets(a, b); !bytes.Equal(first, again) {
			t.Fatalf("merge not deterministic: %x vs %x", first, again)
		}
	}
}

func TestClusterFiltersTieBreak(t *testing.T) {
	// All pairs have equal union popcount (6, above the saturation bound
	// of 3 for one-byte filters); the lowest-index pair merges.
	out := clusterFilters([][]byte{{0x1F}, {0x2F}, {0x4F}}, 2)
	if len(out) != 2 || !bytes.Equal(out[0], []byte{0x3F}) || !bytes.Equal(out[1], []byte{0x4F}) {
		t.Fatalf("tie-break merge = %x, want [3f 4f]", out)
	}
}

func TestClusterFiltersSaturationCollapse(t *testing.T) {
	// Below the K budget, near-disjoint-but-sparse filters still fold
	// together: three filters whose unions stay under 2/5 fill collapse
	// to one, so a zone of like-minded members costs a single filter.
	out := clusterFilters([][]byte{
		{0x01, 0x00, 0x00, 0x00, 0x00},
		{0x02, 0x00, 0x00, 0x00, 0x00},
		{0x00, 0x04, 0x00, 0x00, 0x00},
	}, 4)
	if len(out) != 1 || !bytes.Equal(out[0], []byte{0x03, 0x04, 0x00, 0x00, 0x00}) {
		t.Fatalf("saturation collapse = %x, want one union filter", out)
	}
	// Dense filters refuse the opportunistic merge and keep their K slots.
	dense := clusterFilters([][]byte{{0xFF, 0x0F, 0x00, 0x00, 0x00}, {0x00, 0x00, 0x00, 0xFF, 0x0F}}, 4)
	if len(dense) != 2 {
		t.Fatalf("dense filters merged below saturation: %x", dense)
	}
}

func BenchmarkMergeSignatureSets(b *testing.B) {
	mk := func(seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		fs := make([][]byte, 4)
		for i := range fs {
			f := make([]byte, 128)
			for j := 0; j < 64; j++ {
				f[rng.Intn(len(f))] |= 1 << uint(rng.Intn(8))
			}
			fs[i] = f
		}
		return EncodeSignatureSet(4, fs)
	}
	a, bb := mk(1), mk(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeSignatureSets(a, bb)
	}
}

func ExampleEncodeSignatureSet() {
	enc := EncodeSignatureSet(2, [][]byte{{0x01}, {0x02}})
	k, filters, _ := DecodeSignatureSet(enc)
	fmt.Println(k, len(filters))
	// Output: 2 2
}
