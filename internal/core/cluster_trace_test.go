package core

import (
	"testing"
	"time"

	"newswire/internal/news"
	"newswire/internal/trace"
)

// runTracedScenario mirrors runScenario's workload exactly, with span
// collection switched on, and returns the state fingerprint plus the
// canonical span set.
func runTracedScenario(t *testing.T, n int, seed int64, workers int) (string, []trace.Span) {
	t.Helper()
	cluster, err := NewCluster(ClusterConfig{
		N:       n,
		Seed:    seed,
		Workers: workers,
		Trace:   true,
		Customize: func(i int, cfg *Config) {
			cfg.RepCount = 2
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for _, node := range cluster.Nodes {
		if err := node.Subscribe("tech/linux"); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}
	cluster.RunRounds(6)
	it := &news.Item{
		Publisher: "reuters", ID: "breaking", Headline: "h",
		Body: "b", Subjects: []string{"tech/linux"}, Urgency: 1,
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
		t.Fatalf("publish: %v", err)
	}
	cluster.RunFor(20 * time.Second)
	return fingerprint(t, cluster), cluster.TraceSpans()
}

// TestTracedRunMatchesUntraced is the observability layer's determinism
// gate: attaching the span collector must not change a single byte of the
// simulation — same zone tables, same traffic counters, same deliveries —
// under both the serial engine and the parallel executor.
func TestTracedRunMatchesUntraced(t *testing.T) {
	n := 128
	seed := int64(7)
	for _, workers := range []int{0, 4} {
		untraced := runScenario(t, n, seed, workers)
		traced, spans := runTracedScenario(t, n, seed, workers)
		if traced != untraced {
			t.Errorf("workers=%d: traced run diverged from untraced (fingerprint %s vs %s)",
				workers, traced[:16], untraced[:16])
		}
		if len(spans) == 0 {
			t.Errorf("workers=%d: traced run recorded no spans", workers)
		}
	}
}

// TestTraceSpansSerialParallelIdentical pins the collector's canonical
// order: the same seed yields the same span set, span for span, whether
// the cluster ran serially or under the parallel executor.
func TestTraceSpansSerialParallelIdentical(t *testing.T) {
	n := 128
	for _, seed := range []int64{1, 42} {
		_, serial := runTracedScenario(t, n, seed, 0)
		_, parallel := runTracedScenario(t, n, seed, 4)
		if sf, pf := trace.Fingerprint(serial), trace.Fingerprint(parallel); sf != pf {
			t.Errorf("seed %d: span sets differ: serial %d spans (%s) vs parallel %d spans (%s)",
				seed, len(serial), sf[:16], len(parallel), pf[:16])
		}
	}
}

// TestTraceSpansExplainDelivery asserts the recorded spans actually
// reconstruct a delivery: every delivered node has a deliver span whose
// hop path walks back to the publisher.
func TestTraceSpansExplainDelivery(t *testing.T) {
	_, spans := runTracedScenario(t, 64, 3, 0)
	kinds := map[trace.Kind]int{}
	for _, s := range spans {
		kinds[s.Kind]++
	}
	if kinds[trace.KindPublish] == 0 || kinds[trace.KindForward] == 0 || kinds[trace.KindDeliver] == 0 {
		t.Fatalf("span kinds incomplete: %v", kinds)
	}
	// Pick one deliver span and reconstruct its path.
	var deliver *trace.Span
	for i := range spans {
		if spans[i].Kind == trace.KindDeliver && spans[i].Node != "n0" {
			deliver = &spans[i]
			break
		}
	}
	if deliver == nil {
		t.Fatal("no remote deliver span recorded")
	}
	path := trace.PathTo(spans, deliver.Key, deliver.Node)
	if len(path) < 3 {
		t.Fatalf("path to %s has %d spans, want >= 3 (publish, forward+, deliver): %+v",
			deliver.Node, len(path), path)
	}
	if path[0].Kind != trace.KindPublish || path[0].Node != "n0" {
		t.Errorf("path does not start at the publisher: %+v", path[0])
	}
	if last := path[len(path)-1]; last.Kind != trace.KindDeliver || last.Node != deliver.Node {
		t.Errorf("path does not end at the delivery: %+v", last)
	}
}

// TestTraceIDJoinsSpans asserts every span an item's delivery produced
// carries the trace ID derived from its envelope key — the join handle
// that stitches spans from different processes into one trace.
func TestTraceIDJoinsSpans(t *testing.T) {
	_, spans := runTracedScenario(t, 64, 3, 0)
	var key string
	for i := range spans {
		if spans[i].Kind == trace.KindPublish {
			key = spans[i].Key
			break
		}
	}
	if key == "" {
		t.Fatal("no publish span recorded")
	}
	want := trace.DeriveTraceID(key)
	joined := trace.ByTrace(spans, want)
	if len(joined) == 0 {
		t.Fatalf("no spans carry trace ID %x", want)
	}
	kinds := map[trace.Kind]bool{}
	for _, s := range spans {
		if s.Key != key {
			continue
		}
		if s.TraceID != want {
			t.Fatalf("span %+v: trace ID %x, want %x", s, s.TraceID, want)
		}
		kinds[s.Kind] = true
	}
	if !kinds[trace.KindPublish] || !kinds[trace.KindForward] || !kinds[trace.KindDeliver] {
		t.Fatalf("joined trace misses lifecycle kinds: %v", kinds)
	}
}
