package transport

import "sync/atomic"

// Stats is a point-in-time snapshot of the TCP data path's cumulative
// counters. All fields are totals since the transport started; the
// snapshot is internally consistent enough for monitoring (fields are
// read atomically, not under one lock).
type Stats struct {
	// FramesSent / BytesSent count frames (and their bytes, length prefix
	// included) actually written to sockets.
	FramesSent int64 `json:"frames_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	// FramesReceived / BytesReceived count inbound frames that decoded
	// cleanly and were handed to the handler.
	FramesReceived int64 `json:"frames_received"`
	BytesReceived  int64 `json:"bytes_received"`
	// Dials counts outbound connection attempts; DialErrors the failures.
	Dials      int64 `json:"dials"`
	DialErrors int64 `json:"dial_errors"`
	// StaleRetries counts flushes that failed on a cached connection and
	// were retried on a fresh dial.
	StaleRetries int64 `json:"stale_retries"`
	// QueueFullDrops counts frames dropped because a peer's bounded
	// outbound queue was full — the fire-and-forget backpressure policy.
	QueueFullDrops int64 `json:"queue_full_drops"`
	// ConnDrops counts frames dropped because the peer's connection died
	// (flush failure after the stale retry, or Close with frames queued).
	ConnDrops int64 `json:"conn_drops"`
	// QueueHighWater is the deepest any peer's outbound queue has been,
	// in frames.
	QueueHighWater int64 `json:"queue_high_water"`
	// FlushBatches counts writev flushes; FramesSent/FlushBatches is the
	// mean batch size (the full distribution is the
	// transport_flush_batch_frames histogram).
	FlushBatches int64 `json:"flush_batches"`
}

// tcpStats holds the live atomics behind Stats.
type tcpStats struct {
	framesSent     atomic.Int64
	bytesSent      atomic.Int64
	framesReceived atomic.Int64
	bytesReceived  atomic.Int64
	dials          atomic.Int64
	dialErrors     atomic.Int64
	staleRetries   atomic.Int64
	queueFullDrops atomic.Int64
	connDrops      atomic.Int64
	queueHighWater atomic.Int64
	flushBatches   atomic.Int64
}

// observeQueueDepth raises the high-water mark to depth if deeper.
func (s *tcpStats) observeQueueDepth(depth int) {
	d := int64(depth)
	for {
		cur := s.queueHighWater.Load()
		if d <= cur || s.queueHighWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

func (s *tcpStats) snapshot() Stats {
	return Stats{
		FramesSent:     s.framesSent.Load(),
		BytesSent:      s.bytesSent.Load(),
		FramesReceived: s.framesReceived.Load(),
		BytesReceived:  s.bytesReceived.Load(),
		Dials:          s.dials.Load(),
		DialErrors:     s.dialErrors.Load(),
		StaleRetries:   s.staleRetries.Load(),
		QueueFullDrops: s.queueFullDrops.Load(),
		ConnDrops:      s.connDrops.Load(),
		QueueHighWater: s.queueHighWater.Load(),
		FlushBatches:   s.flushBatches.Load(),
	}
}
