package core

// Virtual quiescent leaves.
//
// The paper's E1 claim is about reaching "hundreds of thousands of
// subscribers"; the interesting protocol work — gossip, aggregation,
// representative election, multicast routing — happens in the interior
// of the tree and among a handful of active members per leaf zone. A
// quiescent subscriber contributes exactly two things to a run: a leaf
// row (address, load, subscription summary) that shapes aggregation and
// fan-out, and a delivery endpoint that accepts final Deliver copies.
// Neither needs a full Node: a ClusterConfig with VirtualLeaves packs
// every quiescent member into one shared template row plus one bit in a
// per-zone delivery bitset, and materializes a real agent lazily only
// when an experiment needs the member to act (publish, crash, be
// sampled).
//
// Exactness is preserved, not approximated:
//   - The template row carries the same attributes a real quiescent
//     member would advertise (addr, load, subs Bloom), so aggregation
//     and multicast fan-out see the identical zone population. An
//     AttrVirtual marker pins the row from expiry and excludes it from
//     gossip-partner choice — no agent answers at a virtual address.
//   - Delivery accounting is exact: each virtual member has its own
//     network endpoint whose handler acks reliable forwards and runs
//     the leaf's exact-match subject test, then sets the member's bit
//     in a per-(zone, item) bitset. Counting 0→1 transitions mirrors a
//     real node's dedup-then-count ingest path.
//   - Under the parallel executor all of a zone's virtual endpoints are
//     adopted by one sink owner, so their delivery events serialize the
//     same way one node's events do, and acks they send are buffered
//     and committed in canonical order — the serial≡parallel guarantee
//     is untouched.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/pubsub"
	"newswire/internal/sim"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// virtualZone is the packed representation of one leaf zone's quiescent
// members: a template row per virtual member and a delivery bitset per
// multicast item.
type virtualZone struct {
	zone     string
	ordinal  int // leaf-zone index; doubles as the commit shard
	firstIdx int // global node index of the zone's first member
	size     int // total members, real + virtual
	owner    int // parallel-executor sink owner (unused when serial)

	// templates[pos] is the shared row standing in for member pos, nil
	// for materialized members.
	templates []*wire.SharedRow
	subjects  map[string]bool

	// mu guards the delivery bitsets. Within a run all of the zone's
	// sink endpoints execute under one owner (or the serial engine), so
	// contention is only with readers totalling results.
	mu        sync.Mutex
	delivered map[string][]uint64 // item key -> member bitset
	count     int64               // total 0→1 transitions
}

func (vz *virtualZone) matches(env *wire.ItemEnvelope) bool {
	for _, s := range env.Subjects {
		if vz.subjects[s] {
			return true
		}
	}
	return false
}

// handler returns the inbound-message handler for the virtual member at
// pos. It emulates exactly the slice of Node.HandleMessage a quiescent
// subscriber exercises: ack reliable multicast forwards (before any
// dedup, like multicast.Router), and record final-delivery copies that
// pass the leaf's exact subject match.
func (vz *virtualZone) handler(pos int, ep *sim.Endpoint) func(*wire.Message) {
	return func(msg *wire.Message) {
		if msg.Kind != wire.KindMulticast || msg.Multicast == nil {
			return
		}
		m := msg.Multicast
		if m.AckSeq != 0 && msg.From != "" {
			_ = ep.Send(msg.From, &wire.Message{
				Kind: wire.KindMulticastAck,
				MulticastAck: &wire.MulticastAck{
					Seq:        m.AckSeq,
					Key:        m.Envelope.Key(),
					TargetZone: m.TargetZone,
				},
			})
		}
		if !m.Deliver {
			// Routing copies target representatives; virtual members
			// always lose representative election (advertised load 1 vs
			// a real member's 0), so none should arrive. Ignore.
			return
		}
		if !vz.matches(&m.Envelope) {
			return
		}
		vz.mu.Lock()
		bits := vz.delivered[m.Envelope.Key()]
		if bits == nil {
			bits = make([]uint64, (vz.size+63)/64)
			vz.delivered[m.Envelope.Key()] = bits
		}
		if bits[pos>>6]&(1<<uint(pos&63)) == 0 {
			bits[pos>>6] |= 1 << uint(pos&63)
			vz.count++
		}
		vz.mu.Unlock()
	}
}

// deliveredAt returns how many items the (possibly former) virtual
// member at pos accepted while virtual.
func (vz *virtualZone) deliveredAt(pos int) int64 {
	vz.mu.Lock()
	defer vz.mu.Unlock()
	var n int64
	for _, bits := range vz.delivered {
		if bits[pos>>6]&(1<<uint(pos&63)) != 0 {
			n++
		}
	}
	return n
}

// deliveredKeys returns (sorted) the keys of every item the member at pos
// accepted while virtual. MaterializeNode seeds the new real node with
// them so delivery accounting stays exact across the phase switch.
func (vz *virtualZone) deliveredKeys(pos int) []string {
	vz.mu.Lock()
	defer vz.mu.Unlock()
	var keys []string
	for key, bits := range vz.delivered {
		if bits[pos>>6]&(1<<uint(pos&63)) != 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// templateUpdates renders the zone's live template rows for bootstrap
// merging into the zone's real members.
func (vz *virtualZone) templateUpdates() []wire.RowUpdate {
	var out []wire.RowUpdate
	for _, t := range vz.templates {
		if t != nil {
			out = append(out, t.Update(vz.zone))
		}
	}
	return out
}

// virtualSubsBloom builds the shared subscription Bloom filter every
// virtual member advertises. Virtual leaves assume the default ModeBloom
// geometry; a Customize hook that changes the pub/sub mode or geometry
// is incompatible with them.
func virtualSubsBloom(subjects []string) value.Value {
	f := bloom.New(pubsub.DefaultGeometry.Bits, pubsub.DefaultGeometry.Hashes)
	for _, s := range subjects {
		f.Add(s)
	}
	return value.Bytes(f.Bytes())
}

// newVirtualZone packs the members [firstIdx, firstIdx+size) of zone.
func newVirtualZone(zone string, ordinal, firstIdx, size int, subjects []string) *virtualZone {
	vz := &virtualZone{
		zone:      zone,
		ordinal:   ordinal,
		firstIdx:  firstIdx,
		size:      size,
		owner:     -1,
		templates: make([]*wire.SharedRow, size),
		subjects:  make(map[string]bool, len(subjects)),
		delivered: make(map[string][]uint64),
	}
	for _, s := range subjects {
		vz.subjects[s] = true
	}
	return vz
}

// template builds (and remembers) the row standing in for member pos.
func (vz *virtualZone) template(pos int, name, addr string, subsVal, loadVal, virtVal value.Value, issued time.Time) *wire.SharedRow {
	row := &wire.SharedRow{
		Name: name,
		Attrs: value.Map{
			astrolabe.AttrAddr:    value.String(addr),
			astrolabe.AttrLoad:    loadVal,
			astrolabe.AttrSubs:    subsVal,
			astrolabe.AttrVirtual: virtVal,
		},
		Issued: issued,
		Owner:  addr,
	}
	vz.templates[pos] = row
	return row
}

// VirtualDelivered returns the total number of items accepted by
// members while they were virtual (each member counts an item once,
// mirroring a real node's dedup-then-count path).
func (c *Cluster) VirtualDelivered() int64 {
	var n int64
	for _, vz := range c.vzones {
		vz.mu.Lock()
		n += vz.count
		vz.mu.Unlock()
	}
	return n
}

// VirtualMembers returns how many members are currently virtual.
func (c *Cluster) VirtualMembers() int {
	n := 0
	for _, vz := range c.vzones {
		for _, t := range vz.templates {
			if t != nil {
				n++
			}
		}
	}
	return n
}

// NodeDelivered returns how many items member i has accepted, whether
// it is a real node or a virtual leaf. For a member materialized
// mid-run the two phases sum.
func (c *Cluster) NodeDelivered(i int) int64 {
	var n int64
	if node := c.Nodes[i]; node != nil {
		n = node.Delivered()
	}
	if vz := c.vzoneOf(i); vz != nil {
		n += vz.deliveredAt(i - vz.firstIdx)
	}
	return n
}

// vzoneOf returns the virtual zone covering member i, or nil.
func (c *Cluster) vzoneOf(i int) *virtualZone {
	if c.vzoneByPath == nil {
		return nil
	}
	return c.vzoneByPath[ZonePathFor(i, c.cfg.N, c.cfg.Branching)]
}

// MaterializeNode lazily replaces the virtual leaf i with a real Node:
// the member's endpoint is re-attached to a full agent whose fresh own
// row (no virt marker, current issue time) supersedes the template via
// normal gossip. Call it between rounds, at a deterministic point in
// the run — like any other cluster mutation, determinism is preserved
// only when the call sequence is itself deterministic. The new node is
// not ticked by a StartTicking issued before the call; RunRounds picks
// it up on the next round.
func (c *Cluster) MaterializeNode(i int) (*Node, error) {
	if i < 0 || i >= len(c.Nodes) {
		return nil, fmt.Errorf("core: materialize: node %d out of range", i)
	}
	if c.Nodes[i] != nil {
		return c.Nodes[i], nil
	}
	vz := c.vzoneOf(i)
	if vz == nil {
		return nil, fmt.Errorf("core: materialize: node %d has no virtual zone", i)
	}
	pos := i - vz.firstIdx
	node, err := c.buildNode(i)
	if err != nil {
		return nil, err
	}
	if err := node.Subscribe(c.cfg.VirtualSubjects...); err != nil {
		return nil, fmt.Errorf("core: materialize: node %d: %w", i, err)
	}
	c.Nodes[i] = node
	vz.templates[pos] = nil
	// Items already counted against this member's delivery bitset must not
	// count again if the real node re-ingests them (say, a recovery pass
	// after it later crashes). The bitset stays authoritative for the
	// virtual phase; the node skips those keys in its own accounting.
	node.SeedDeliveredKeys(vz.deliveredKeys(pos))
	// Seed the new node's tables from an established zone peer (member 0
	// of every zone is always real), then push its own row to the zone's
	// real members so the next gossip rounds spread it outward.
	peer := c.Nodes[vz.firstIdx]
	var seeds []wire.RowUpdate
	for _, zone := range peer.agent.Chain() {
		rows, ok := peer.agent.Table(zone)
		if !ok {
			continue
		}
		for _, r := range rows {
			seeds = append(seeds, wire.RowUpdate{
				Zone: zone, Name: r.Name, Attrs: r.Attrs,
				Issued: r.Issued, Owner: r.Owner,
				Signer: r.Signer, Sig: r.Sig,
			})
		}
	}
	node.agent.MergeRows(seeds)
	own := []wire.RowUpdate{node.agent.OwnRowUpdate()}
	for p := 0; p < vz.size; p++ {
		if m := c.Nodes[vz.firstIdx+p]; m != nil && m != node {
			m.agent.MergeRows(own)
		}
	}
	return node, nil
}
