package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSeriesKeyCanonical(t *testing.T) {
	a, metaA := seriesKey("reqs", []Label{L("zone", "/usa"), L("app", "x")})
	b, metaB := seriesKey("reqs", []Label{L("app", "x"), L("zone", "/usa")})
	if a != b {
		t.Errorf("label order changed the series key: %q vs %q", a, b)
	}
	if want := `reqs{app="x",zone="/usa"}`; a != want {
		t.Errorf("key = %q, want %q", a, want)
	}
	if metaA != metaB || metaA.family != "reqs" {
		t.Errorf("meta = %+v vs %+v", metaA, metaB)
	}
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escape = %q", got)
	}
}

func TestWriteToExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("gossips_total").Add(3)
	r.CounterWith("deliveries_total", L("zone", "/usa")).Add(5)
	r.CounterWith("deliveries_total", L("zone", "/eu")).Add(2)
	r.Gauge("load").Set(0.25)
	h := r.Histogram("latency_seconds")
	h.Observe(1)
	h.Observe(3)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gossips_total counter\n",
		"gossips_total 3\n",
		"# TYPE deliveries_total counter\n",
		`deliveries_total{zone="/eu"} 2` + "\n",
		`deliveries_total{zone="/usa"} 5` + "\n",
		"# TYPE load gauge\n",
		"load 0.25\n",
		"# TYPE latency_seconds summary\n",
		`latency_seconds{quantile="0.5"} 1` + "\n",
		`latency_seconds{quantile="0.99"} 3` + "\n",
		"latency_seconds_sum 4\n",
		"latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Labeled series of one family must be sorted under a single TYPE line.
	if strings.Count(out, "# TYPE deliveries_total") != 1 {
		t.Errorf("family rendered with multiple TYPE lines:\n%s", out)
	}
	if strings.Index(out, `zone="/eu"`) > strings.Index(out, `zone="/usa"`) {
		t.Errorf("labeled series not sorted:\n%s", out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
}

func TestHistogramReservoir(t *testing.T) {
	h := &Histogram{}
	h.SetReservoir(8)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want exact 100", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("Sum = %g, want exact 5050", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %g/%g, want exact 1/100", h.Min(), h.Max())
	}
	h.mu.Lock()
	retained := len(h.samples)
	h.mu.Unlock()
	if retained != 8 {
		t.Errorf("retained %d samples, want 8", retained)
	}
	if q := h.Quantile(0.5); q < 1 || q > 100 {
		t.Errorf("reservoir quantile %g outside observed range", q)
	}
	// Trimming an over-full exact histogram on SetReservoir.
	e := &Histogram{}
	for i := 1; i <= 20; i++ {
		e.Observe(float64(i))
	}
	e.SetReservoir(4)
	e.mu.Lock()
	trimmed := append([]float64(nil), e.samples...)
	e.mu.Unlock()
	if len(trimmed) != 4 {
		t.Fatalf("trimmed to %d samples, want 4", len(trimmed))
	}
	for i, v := range trimmed {
		if want := float64(17 + i); v != want {
			t.Errorf("trimmed[%d] = %g, want %g (oldest-first trim)", i, v, want)
		}
	}
	if e.Count() != 20 || e.Min() != 1 || e.Max() != 20 {
		t.Errorf("exact stats lost on trim: count=%d min=%g max=%g", e.Count(), e.Min(), e.Max())
	}
}

func TestHistogramUnboundedStaysExact(t *testing.T) {
	h := &Histogram{}
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("p50 = %g, want exact 50", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Errorf("p99 = %g, want exact 99", q)
	}
}

func TestRegisterHistogram(t *testing.T) {
	r := NewRegistry()
	h := &Histogram{}
	h.Observe(2.5)
	r.RegisterHistogram("delivery_latency_seconds", h)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "delivery_latency_seconds_count 1") {
		t.Errorf("registered histogram missing from exposition:\n%s", sb.String())
	}
	if !strings.Contains(r.Snapshot(), "histogram delivery_latency_seconds count=1") {
		t.Errorf("registered histogram missing from snapshot:\n%s", r.Snapshot())
	}
}

func TestSnapshotMinMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(2)
	h.Observe(8)
	snap := r.Snapshot()
	if !strings.Contains(snap, "min=2") || !strings.Contains(snap, "max=8") {
		t.Errorf("snapshot missing min/max: %s", snap)
	}
}
