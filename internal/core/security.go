package core

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"time"

	"newswire/internal/cert"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// Security wires the certificate machinery of paper §3 and §8 into a
// node: gossiped rows are signed by their owners and verified against
// member certificates; published items are signed by publisher keys and
// verified end-to-end at every forwarder and leaf.
type Security struct {
	// Clock is used for certificate expiry checks.
	Clock vtime.Clock
	// AuthorityPub is the zone authority's public key that anchors all
	// certificate verification.
	AuthorityPub ed25519.PublicKey
	// Key is this node's own key pair (member role).
	Key cert.KeyPair
	// CertName is the subject name on this node's member certificate (and
	// the Signer stamped on its rows).
	CertName string
	// Store holds the certificates of every member and publisher this
	// node may hear from.
	Store *cert.Store
	// PublisherKey, when set, lets this node sign published items under
	// PublisherName's publisher certificate.
	PublisherKey  *cert.KeyPair
	PublisherName string
}

// NewSecurity validates the fields needed for verification.
func NewSecurity(s Security) (*Security, error) {
	if s.Clock == nil {
		return nil, fmt.Errorf("core: security clock required")
	}
	if len(s.AuthorityPub) == 0 {
		return nil, fmt.Errorf("core: authority public key required")
	}
	if s.CertName == "" {
		return nil, fmt.Errorf("core: certificate subject name required")
	}
	if s.Store == nil {
		return nil, fmt.Errorf("core: certificate store required")
	}
	return &s, nil
}

// signRow signs a gossiped row with the node's member key.
func (s *Security) signRow(r *wire.RowUpdate) {
	blob := cert.SignBlob(s.CertName, s.Key, r.SignedPayload())
	r.Signer = blob.Signer
	r.Sig = blob.Signature
}

// verifyRow authenticates a gossiped row: the signer must hold a member
// or authority certificate anchored at the authority key.
func (s *Security) verifyRow(r *wire.RowUpdate) error {
	if r.Signer == "" || len(r.Sig) == 0 {
		return fmt.Errorf("core: unsigned row %s/%s", r.Zone, r.Name)
	}
	sig := cert.SignedBlob{Signer: r.Signer, Signature: r.Sig}
	return s.Store.VerifySigned(sig, r.SignedPayload(), s.AuthorityPub, s.now(),
		cert.RoleMember, cert.RoleAuthority)
}

// signEnvelope signs a published item with the publisher key.
func (s *Security) signEnvelope(env *wire.ItemEnvelope) error {
	if s.PublisherKey == nil {
		return fmt.Errorf("core: node has no publisher key")
	}
	name := s.PublisherName
	if name == "" {
		name = env.Publisher
	}
	blob := cert.SignBlob(name, *s.PublisherKey, env.SignedPayload())
	env.Signer = blob.Signer
	env.Sig = blob.Signature
	return nil
}

// verifyEnvelope authenticates a published item end-to-end: the signer
// must hold a publisher certificate anchored at the authority key
// ("restrictions ... to handle the authentication of publishers, to
// assure the authenticity of the data they publish", §8).
func (s *Security) verifyEnvelope(env *wire.ItemEnvelope) error {
	if env.Signer == "" || len(env.Sig) == 0 {
		return fmt.Errorf("core: unsigned item %s", env.Key())
	}
	sig := cert.SignedBlob{Signer: env.Signer, Signature: env.Sig}
	return s.Store.VerifySigned(sig, env.SignedPayload(), s.AuthorityPub, s.now(),
		cert.RolePublisher)
}

func (s *Security) now() time.Time { return s.Clock.Now() }

// Realm is a convenience bundle for tests and examples: one authority and
// helpers to mint member and publisher identities whose certificates are
// pre-loaded into a shared store.
type Realm struct {
	AuthorityName string
	AuthorityKey  cert.KeyPair
	Store         *cert.Store
	Clock         vtime.Clock
	TTL           time.Duration
	// Entropy generates key material; nil uses crypto/rand. Simulations
	// inject a seeded stream (ed25519 keygen just reads 32 bytes, and the
	// signature scheme is deterministic) so security-enabled runs stay
	// bit-identical for a given seed.
	Entropy io.Reader
}

// NewRealm creates an authority and an empty certificate directory,
// drawing keys from crypto/rand.
func NewRealm(clock vtime.Clock, ttl time.Duration) (*Realm, error) {
	return NewSeededRealm(clock, ttl, nil)
}

// NewSeededRealm is NewRealm with injected key entropy, for deterministic
// simulations. A *math/rand.Rand works as the reader (NOT for production
// use — predictable keys).
func NewSeededRealm(clock vtime.Clock, ttl time.Duration, entropy io.Reader) (*Realm, error) {
	if clock == nil {
		return nil, fmt.Errorf("core: clock required")
	}
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	key, err := cert.GenerateKeyPair(entropy)
	if err != nil {
		return nil, err
	}
	return &Realm{
		AuthorityName: "newswire-authority",
		AuthorityKey:  key,
		Store:         cert.NewStore(),
		Clock:         clock,
		TTL:           ttl,
		Entropy:       entropy,
	}, nil
}

// Member mints a member identity: a key pair plus a certificate added to
// the realm's store, and a ready-to-use Security for a node.
func (r *Realm) Member(name string) (*Security, error) {
	key, err := cert.GenerateKeyPair(r.Entropy)
	if err != nil {
		return nil, err
	}
	c := cert.Issue(r.AuthorityName, r.AuthorityKey, name, cert.RoleMember,
		key.Public, r.Clock.Now().Add(r.TTL))
	r.Store.Add(c)
	return NewSecurity(Security{
		Clock:        r.Clock,
		AuthorityPub: r.AuthorityKey.Public,
		Key:          key,
		CertName:     name,
		Store:        r.Store,
	})
}

// Publisher mints a publisher identity and attaches it to an existing
// member Security so the node can both gossip and publish.
func (r *Realm) Publisher(sec *Security, publisherName string) error {
	key, err := cert.GenerateKeyPair(r.Entropy)
	if err != nil {
		return err
	}
	c := cert.Issue(r.AuthorityName, r.AuthorityKey, publisherName,
		cert.RolePublisher, key.Public, r.Clock.Now().Add(r.TTL))
	r.Store.Add(c)
	sec.PublisherKey = &key
	sec.PublisherName = publisherName
	return nil
}
