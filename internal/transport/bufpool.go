package transport

import "sync"

// Size-classed receive buffers for readLoop. A busy hub decodes tens of
// thousands of frames per second; allocating each frame's buffer fresh
// makes the read path a pure allocation treadmill (the decoder copies
// everything out, so the buffer is dead the moment Decode returns).
// Buffers are pooled in power-of-two classes from minBufClass to
// maxBufClass; larger frames (rare state transfers) fall back to plain
// allocation. Pooled as *[]byte so Put does not allocate a header.

const (
	minBufClass = 10 // 1 KiB
	maxBufClass = 20 // 1 MiB, matching wire's maxPooledBuf
)

var bufPools [maxBufClass - minBufClass + 1]sync.Pool

// GetBuf returns a buffer with len(buf) == n, drawn from the smallest
// pooled size class that fits (or freshly allocated above the largest
// class). Release it with PutBuf when the frame has been decoded.
func GetBuf(n int) []byte {
	if c, ok := bufClass(n); ok {
		if p, _ := bufPools[c].Get().(*[]byte); p != nil {
			return (*p)[:n]
		}
		return make([]byte, n, 1<<(c+minBufClass))
	}
	return make([]byte, n)
}

// PutBuf returns a buffer obtained from GetBuf to its pool. Buffers whose
// capacity is not a pooled class size (over-large frames) are dropped for
// the GC.
func PutBuf(b []byte) {
	if c, ok := bufClass(cap(b)); ok && cap(b) == 1<<(c+minBufClass) {
		b = b[:cap(b)]
		bufPools[c].Put(&b)
	}
}

// bufClass maps a byte count to its pool index: the smallest class c with
// 1<<(c+minBufClass) >= n.
func bufClass(n int) (int, bool) {
	if n > 1<<maxBufClass {
		return 0, false
	}
	for c := 0; c < len(bufPools); c++ {
		if n <= 1<<(c+minBufClass) {
			return c, true
		}
	}
	return 0, false
}
