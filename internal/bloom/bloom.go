// Package bloom implements the Bloom filters NewsWire uses to aggregate
// subscription sets up the Astrolabe zone hierarchy (paper §6).
//
// A leaf node hashes each of its subscriptions into the filter; parent zones
// aggregate child filters with a bitwise OR (the paper's "simple binary-or
// operation on the child arrays"). A publisher hashes its publication the
// same way and, at every forwarding node, tests the child zone's aggregated
// filter; the item is forwarded only to child zones whose filters match.
// False positives cause harmless extra forwarding that is discarded by the
// exact-match test at the leaves.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter. The zero Filter is unusable;
// construct one with New or FromBytes.
type Filter struct {
	bits   []byte
	nbits  uint32
	hashes int
}

// DefaultBits is the filter size the paper suggests ("a large single bit
// array in the order of a thousand bits or more").
const DefaultBits = 1024

// DefaultHashes is the default number of hash functions. The paper's early
// prototype hashes "a subscription ... to a single bit in the array"; k=1
// preserves OR-aggregation semantics with minimal density growth, but callers
// can pick a larger k for lower single-filter false-positive rates.
const DefaultHashes = 1

// New returns an empty filter with nbits bits (rounded up to a whole byte)
// and k hash functions. It panics only on programmer error (nbits or k < 1),
// matching make's behaviour for invalid sizes.
func New(nbits int, k int) *Filter {
	if nbits < 1 {
		panic(fmt.Sprintf("bloom: invalid size %d", nbits))
	}
	if k < 1 {
		panic(fmt.Sprintf("bloom: invalid hash count %d", k))
	}
	nbytes := (nbits + 7) / 8
	return &Filter{
		bits:   make([]byte, nbytes),
		nbits:  uint32(nbits),
		hashes: k,
	}
}

// FromBytes reconstructs a filter from a previous Bytes() snapshot. The
// snapshot must have come from a filter with the same geometry (nbits, k);
// geometry is not stored in the snapshot because the whole system shares one
// configured geometry (it is part of the signed aggregation program).
func FromBytes(snapshot []byte, nbits, k int) (*Filter, error) {
	f := New(nbits, k)
	if len(snapshot) != len(f.bits) {
		return nil, fmt.Errorf("bloom: snapshot is %d bytes, want %d for %d bits",
			len(snapshot), len(f.bits), nbits)
	}
	copy(f.bits, snapshot)
	return f, nil
}

// Bits returns the number of bits in the filter.
func (f *Filter) Bits() int { return int(f.nbits) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.hashes }

// Positions returns the k bit positions key hashes to. Positions are
// derived with Kirsch–Mitzenmacher double hashing over a 64-bit FNV-1a
// digest, so they are stable across processes and architectures — a
// requirement, since publishers and subscribers hash independently.
func (f *Filter) Positions(key string) []uint32 {
	h := fnv.New64a()
	h.Write([]byte(key))
	digest := mix64(h.Sum64())
	h1 := uint32(digest)
	h2 := uint32(digest >> 32)
	// Ensure h2 is odd so the probe sequence cycles through all positions.
	h2 |= 1
	out := make([]uint32, f.hashes)
	for i := range out {
		out[i] = (h1 + uint32(i)*h2) % f.nbits
	}
	return out
}

// mix64 is the murmur3 avalanche finalizer. FNV-1a is multiplicative and
// keeps visible linear structure over near-identical keys (sequential
// subject names collide far above the birthday bound after the modulo);
// the finalizer destroys that structure while staying deterministic
// across processes.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts key into the filter.
func (f *Filter) Add(key string) {
	for _, p := range f.Positions(key) {
		f.bits[p/8] |= 1 << (p % 8)
	}
}

// Test reports whether key is possibly in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Test(key string) bool {
	for _, p := range f.Positions(key) {
		if f.bits[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// TestPositions reports whether all the given bit positions are set. A
// publisher ships the positions of its publication key with each item so
// forwarders can test aggregated filters without re-hashing (paper §6: "an
// attribute is added to the data representing the bit position in the
// subscription array this publication corresponds to").
func (f *Filter) TestPositions(positions []uint32) bool {
	for _, p := range positions {
		if p >= f.nbits {
			return false
		}
		if f.bits[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// SetPosition sets one bit directly. Used when aggregating pre-hashed
// subscription announcements.
func (f *Filter) SetPosition(p uint32) {
	if p < f.nbits {
		f.bits[p/8] |= 1 << (p % 8)
	}
}

// Merge ORs other into f. The paper aggregates child-zone filters into the
// parent zone "through a simple binary-or operation on the child arrays".
func (f *Filter) Merge(other *Filter) error {
	if other.nbits != f.nbits {
		return fmt.Errorf("bloom: merge size mismatch: %d vs %d bits", f.nbits, other.nbits)
	}
	for i, b := range other.bits {
		f.bits[i] |= b
	}
	return nil
}

// MergeBytes ORs a raw snapshot (as gossiped in an Astrolabe bytes
// attribute) into f.
func (f *Filter) MergeBytes(snapshot []byte) error {
	if len(snapshot) != len(f.bits) {
		return fmt.Errorf("bloom: merge snapshot is %d bytes, want %d", len(snapshot), len(f.bits))
	}
	for i, b := range snapshot {
		f.bits[i] |= b
	}
	return nil
}

// Bytes returns a copy of the filter's bit array, suitable for storing in
// an Astrolabe bytes attribute.
func (f *Filter) Bytes() []byte {
	cp := make([]byte, len(f.bits))
	copy(cp, f.bits)
	return cp
}

// Clone returns an independent copy of the filter.
func (f *Filter) Clone() *Filter {
	cp := New(int(f.nbits), f.hashes)
	copy(cp.bits, f.bits)
	return cp
}

// Clear resets every bit.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	n := 0
	for _, b := range f.bits {
		for b != 0 {
			n += int(b & 1)
			b >>= 1
		}
	}
	return n
}

// Density returns the fraction of set bits in [0, 1].
func (f *Filter) Density() float64 {
	return float64(f.PopCount()) / float64(f.nbits)
}

// FalsePositiveRate estimates the probability that a random absent key
// tests positive, given the filter's current density: density^k.
func (f *Filter) FalsePositiveRate() float64 {
	return math.Pow(f.Density(), float64(f.hashes))
}

// ExpectedFalsePositiveRate predicts the false-positive rate of a filter
// with m bits and k hashes after n insertions: (1 - e^{-kn/m})^k. Used by
// experiment E3 to compare measured against theoretical rates.
func ExpectedFalsePositiveRate(m, k, n int) float64 {
	if m <= 0 || k <= 0 || n < 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// PositionsFor computes the bit positions for key under the given geometry
// without allocating a filter. Publishers use this to stamp items with the
// bit positions of the publication subject.
func PositionsFor(key string, nbits, k int) []uint32 {
	f := Filter{nbits: uint32(nbits), hashes: k}
	return f.Positions(key)
}

// EncodePositions packs bit positions into a compact byte slice for the
// item header.
func EncodePositions(positions []uint32) []byte {
	out := binary.AppendUvarint(nil, uint64(len(positions)))
	for _, p := range positions {
		out = binary.AppendUvarint(out, uint64(p))
	}
	return out
}

// DecodePositions unpacks positions encoded with EncodePositions.
func DecodePositions(src []byte) ([]uint32, error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("bloom: truncated position count")
	}
	if count > uint64(len(src)) {
		return nil, fmt.Errorf("bloom: position count %d exceeds input", count)
	}
	pos := n
	out := make([]uint32, 0, count)
	for i := uint64(0); i < count; i++ {
		p, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("bloom: truncated position %d", i)
		}
		if p > math.MaxUint32 {
			return nil, fmt.Errorf("bloom: position %d overflows uint32", p)
		}
		out = append(out, uint32(p))
		pos += n
	}
	return out, nil
}
