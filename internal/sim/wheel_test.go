package sim

import (
	"math/rand"
	"testing"
	"time"

	"newswire/internal/vtime"
)

// refQueue is the straightforward priority queue the timer wheel
// replaced: a plain slice scanned for the (at, seq) minimum. Slow but
// obviously correct — the oracle for the property tests below.
type refQueue struct {
	live map[*event]bool
}

func (q *refQueue) push(ev *event) {
	if q.live == nil {
		q.live = make(map[*event]bool)
	}
	q.live[ev] = true
}

func (q *refQueue) cancel(ev *event) { delete(q.live, ev) }

func (q *refQueue) popMin() *event {
	var min *event
	for ev := range q.live {
		if min == nil || ev.at.Before(min.at) || (ev.at.Equal(min.at) && ev.seq < min.seq) {
			min = ev
		}
	}
	if min != nil {
		delete(q.live, min)
	}
	return min
}

func (q *refQueue) len() int { return len(q.live) }

// TestWheelMatchesReference drives the hierarchical wheel and the
// reference queue through random interleaved push/pop/cancel schedules
// and checks they agree on every pop — the total (time, seq) order the
// engine's determinism guarantees rest on. The delay mix deliberately
// covers the wheel's structural cases: already-due events (the sorted
// current-tick buffer), near events (level 0), mid-range events that
// cascade down from upper levels, and events past the 2^32-tick horizon
// (the overflow heap).
func TestWheelMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		var w timerWheel
		var ref refQueue
		now := vtime.Epoch
		var seq uint64
		nop := func() {}

		randomDelay := func() time.Duration {
			switch rng.Intn(12) {
			case 0:
				return 0 // same instant: seq breaks the tie
			case 1:
				// Past relative to the clock (a clamped schedule): must
				// still pop in (at, seq) order among due events.
				return -time.Duration(rng.Int63n(int64(time.Second)))
			case 2, 3:
				// Beyond the 2^32-tick horizon: overflow heap territory.
				return 60*24*time.Hour + time.Duration(rng.Int63n(int64(200*24*time.Hour)))
			case 4, 5, 6:
				return time.Duration(rng.Int63n(int64(2 * time.Millisecond))) // level 0
			default:
				return time.Duration(rng.Int63n(int64(30 * time.Minute))) // upper levels
			}
		}

		var cancellable []*event
		for step := 0; step < 20000; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // push
				seq++
				ev := &event{at: now.Add(randomDelay()), seq: seq, fn: nop}
				w.Push(ev)
				ref.push(ev)
				cancellable = append(cancellable, ev)
			case op < 8: // pop
				if w.Len() != ref.len() {
					t.Fatalf("seed %d step %d: Len %d != reference %d", seed, step, w.Len(), ref.len())
				}
				if ref.len() == 0 {
					continue
				}
				got, want := w.Pop(), ref.popMin()
				if got != want {
					t.Fatalf("seed %d step %d: popped seq %d at %v, want seq %d at %v",
						seed, step, got.seq, got.at, want.seq, want.at)
				}
				// The engine nils fn when it fires an event; cancel's
				// already-fired fast path (fn == nil) relies on it.
				got.fn = nil
				if got.at.After(now) {
					now = got.at
				}
			default: // cancel a random previously pushed event
				if len(cancellable) == 0 {
					continue
				}
				i := rng.Intn(len(cancellable))
				ev := cancellable[i]
				cancellable[i] = cancellable[len(cancellable)-1]
				cancellable = cancellable[:len(cancellable)-1]
				// Cancelling an already-popped event is a no-op in both.
				w.cancel(ev)
				ref.cancel(ev)
			}
		}
		// Drain completely: the tail order matters as much as the
		// interleaved one (it exercises overflow refill and cascades).
		for ref.len() > 0 {
			got, want := w.Pop(), ref.popMin()
			if got != want {
				t.Fatalf("seed %d drain: popped seq %d at %v, want seq %d at %v",
					seed, got.seq, got.at, want.seq, want.at)
			}
		}
		if w.Len() != 0 {
			t.Fatalf("seed %d: wheel reports %d pending after drain", seed, w.Len())
		}
	}
}

// TestTickerStopCancelsPending checks the heap-growth fix the wheel
// enables: Stop cancels the already-scheduled next firing outright (the
// closure is freed, the pending count drops), instead of leaving a dead
// event to fire as a no-op.
func TestTickerStopCancelsPending(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tk := e.Every(time.Second, 0, func() { fires++ })
	e.RunFor(3500 * time.Millisecond)
	if fires == 0 {
		t.Fatal("ticker never fired")
	}
	firesAtStop := fires
	if e.Pending() == 0 {
		t.Fatal("expected a pending next firing before Stop")
	}
	tk.Stop()
	if e.Pending() != 0 {
		t.Fatalf("Stop left %d pending events", e.Pending())
	}
	st := e.Stats()
	if st.Cancelled == 0 {
		t.Fatal("Stats.Cancelled not incremented by Stop")
	}
	e.RunFor(10 * time.Second)
	if fires != firesAtStop {
		t.Fatalf("ticker fired %d more times after Stop", fires-firesAtStop)
	}
}

// TestEngineStats checks the pending high-water mark and fired counter.
func TestEngineStats(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 100; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if st := e.Stats(); st.Pending != 100 || st.HighWater < 100 {
		t.Fatalf("before run: %+v", st)
	}
	e.RunFor(time.Second)
	st := e.Stats()
	if st.Pending != 0 || st.Fired != 100 || st.HighWater < 100 {
		t.Fatalf("after run: %+v", st)
	}
}
