package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"newswire/internal/value"
)

// Binary wire codec (DESIGN.md §8).
//
// Layout: every frame starts with codecMagic and the kind byte, then the
// sender address, then — for the four gossip kinds — an interned string
// table holding each distinct zone path and attribute name once, then the
// kind's payload. Payload fields reference table entries by index, so a
// 64-row gossip exchange carries "/usa/ny" and "subs" one time each
// instead of 64. Integers travel as varints, times as Unix seconds +
// nanoseconds, and byte-array attribute values (the dominant row weight:
// 128-byte subscription Bloom filters that are mostly zero) switch to a
// zero-run packing whenever that is smaller than the raw bytes.
//
// The first byte disambiguates against the legacy gob codec: a gob stream
// begins with a small uvarint segment length (< 0x80) or a byte-count
// marker (>= 0xF8), never 0xB7, so Decode can route old frames to gob for
// the one-release fallback window (SetGobFallback).
const (
	codecMagic     = 0xB7
	packedBytesTag = 0xF0 // distinct from every value.Kind byte
	// minZeroRun is the shortest zero run worth breaking a literal for:
	// each run pair costs two framing bytes.
	minZeroRun = 3
	// maxPackedLen caps the claimed decoded size of a packed byte array
	// (mirrors the transport's frame cap) so a tiny adversarial frame
	// cannot demand a huge allocation.
	maxPackedLen = 16 << 20
)

// zeroTimeUnixSec is time.Time{}.Unix(); the codec maps this instant back
// to the zero Time so IsZero survives a round trip (StateRequest.Since).
const zeroTimeUnixSec = -62135596800

// SniffKind reports a binary-codec frame payload's kind without decoding
// it: the codec leads every frame with its magic byte and the kind. It
// returns false for gob-fallback frames (which never start with the
// magic), so callers that must classify those still need a full Decode.
// Raw-socket consumers (the loadgen sink) use it to separate
// transport-internal clock-sync frames from the news stream cheaply.
func SniffKind(payload []byte) (Kind, bool) {
	if len(payload) < 2 || payload[0] != codecMagic {
		return KindInvalid, false
	}
	k := Kind(payload[1])
	if k == KindInvalid || k > KindClockPong {
		return KindInvalid, false
	}
	return k, true
}

// --- varint sizing helpers (shared with the EstimateSize model) ---

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}

// UvarintLen returns the encoded size of x as a uvarint. The gossip agent
// uses it to account count prefixes exactly as EstimateSize will charge
// them.
func UvarintLen(x uint64) int { return uvarintLen(x) }

func sizeStr(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func sizeBytes(b []byte) int { return uvarintLen(uint64(len(b))) + len(b) }

func sizeTime(t time.Time) int {
	return varintLen(t.Unix()) + uvarintLen(uint64(t.Nanosecond()))
}

// valueWireSize returns the exact encoded size of one attribute value
// under appendWireValue, without allocating.
func valueWireSize(v value.Value) int {
	switch v.Kind() {
	case value.KindBool:
		return 2
	case value.KindInt:
		i, _ := v.AsInt()
		return 1 + varintLen(i)
	case value.KindFloat:
		return 9
	case value.KindString:
		s, _ := v.AsString()
		return 1 + sizeStr(s)
	case value.KindBytes:
		raw, _ := v.RawBytes()
		rawSize := 1 + sizeBytes(raw)
		if p := packedBytesSize(raw); p < rawSize {
			return p
		}
		return rawSize
	case value.KindTime:
		t, _ := v.AsTime()
		return 1 + varintLen(t.UnixNano())
	case value.KindStrings:
		ss, _ := v.RawStrings()
		n := 1 + uvarintLen(uint64(len(ss)))
		for _, s := range ss {
			n += sizeStr(s)
		}
		return n
	default: // KindInvalid and future kinds: bare kind byte
		return 1
	}
}

// attrsWireSize returns the exact payload size of an encoded attribute
// map: count prefix plus, per attribute, a one-byte table reference and
// the value. (Reference indices above 127 would take two bytes; a message
// never interns that many distinct names in practice.)
func attrsWireSize(m value.Map) int {
	n := uvarintLen(uint64(len(m)))
	for _, v := range m {
		n += 1 + valueWireSize(v)
	}
	return n
}

// --- primitive append helpers ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendByteSlice(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendTime(b []byte, t time.Time) []byte {
	b = binary.AppendVarint(b, t.Unix())
	return binary.AppendUvarint(b, uint64(t.Nanosecond()))
}

// appendWireValue encodes one attribute value: the canonical value
// encoding, except byte arrays, which use the zero-run packing when it is
// strictly smaller. valueWireSize must mirror this choice exactly.
func appendWireValue(dst []byte, v value.Value) []byte {
	if raw, ok := v.RawBytes(); ok {
		rawSize := 1 + sizeBytes(raw)
		if packedBytesSize(raw) < rawSize {
			return appendPackedBytes(dst, raw)
		}
	}
	return v.AppendBinary(dst)
}

// packedRuns walks raw as alternating (zero run, literal) pairs, keeping
// literals together across zero runs shorter than minZeroRun. The loop is
// duplicated in packedBytesSize to keep both paths allocation-free; the
// codec tests pin their agreement.
func appendPackedBytes(dst, raw []byte) []byte {
	dst = append(dst, packedBytesTag)
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	i := 0
	for i < len(raw) {
		z := i
		for i < len(raw) && raw[i] == 0 {
			i++
		}
		zeros := i - z
		start := i
		j := i
		for j < len(raw) {
			if raw[j] != 0 {
				j++
				continue
			}
			k := j
			for k < len(raw) && raw[k] == 0 {
				k++
			}
			if k-j >= minZeroRun || k == len(raw) {
				break
			}
			j = k
		}
		dst = binary.AppendUvarint(dst, uint64(zeros))
		dst = binary.AppendUvarint(dst, uint64(j-start))
		dst = append(dst, raw[start:j]...)
		i = j
	}
	return dst
}

// packedBytesSize returns len(appendPackedBytes(nil, raw)) without
// encoding.
func packedBytesSize(raw []byte) int {
	n := 1 + uvarintLen(uint64(len(raw)))
	i := 0
	for i < len(raw) {
		z := i
		for i < len(raw) && raw[i] == 0 {
			i++
		}
		zeros := i - z
		start := i
		j := i
		for j < len(raw) {
			if raw[j] != 0 {
				j++
				continue
			}
			k := j
			for k < len(raw) && raw[k] == 0 {
				k++
			}
			if k-j >= minZeroRun || k == len(raw) {
				break
			}
			j = k
		}
		n += uvarintLen(uint64(zeros)) + uvarintLen(uint64(j-start)) + (j - start)
		i = j
	}
	return n
}

// --- encoder ---

type binEncoder struct {
	head    []byte // magic, kind, from, string table
	body    []byte // payload, encoded against the table
	keys    []string
	tblList []string
	tblIdx  map[string]uint32
}

var binEncPool = sync.Pool{
	New: func() any { return &binEncoder{tblIdx: make(map[string]uint32, 16)} },
}

func (e *binEncoder) reset() {
	e.head = e.head[:0]
	e.body = e.body[:0]
	for _, s := range e.tblList {
		delete(e.tblIdx, s)
	}
	e.tblList = e.tblList[:0]
}

func (e *binEncoder) release() {
	if cap(e.head) > maxPooledBuf {
		e.head = nil
	}
	if cap(e.body) > maxPooledBuf {
		e.body = nil
	}
	e.reset()
	binEncPool.Put(e)
}

// ref interns s into the message's string table and returns its index.
func (e *binEncoder) ref(s string) uint64 {
	if i, ok := e.tblIdx[s]; ok {
		return uint64(i)
	}
	i := uint32(len(e.tblList))
	e.tblIdx[s] = i
	e.tblList = append(e.tblList, s)
	return uint64(i)
}

// encodeBinary serializes m with the sender address stamped as from (the
// Message itself is never written to, so one message can be encoded
// concurrently from many goroutines). The returned slice carries prefix
// unwritten bytes up front — NewFrame reserves the transport's length
// prefix there so frame assembly costs no second copy.
func encodeBinary(m *Message, from string, prefix int) ([]byte, error) {
	e := binEncPool.Get().(*binEncoder)
	e.reset()
	defer e.release()

	usesTable := false
	switch m.Kind {
	case KindGossip:
		if g := m.Gossip; g != nil {
			usesTable = true
			e.body = binary.AppendUvarint(e.body, e.ref(g.FromZone))
			e.rows(g.Rows)
		}
	case KindGossipReply:
		if g := m.GossipReply; g != nil {
			usesTable = true
			e.body = binary.AppendUvarint(e.body, e.ref(g.FromZone))
			e.rows(g.Rows)
		}
	case KindGossipDigest:
		if g := m.GossipDigest; g != nil {
			usesTable = true
			e.body = binary.AppendUvarint(e.body, e.ref(g.FromZone))
			e.body = binary.AppendUvarint(e.body, uint64(len(g.Digests)))
			for i := range g.Digests {
				d := &g.Digests[i]
				e.body = binary.AppendUvarint(e.body, e.ref(d.Zone))
				e.body = appendString(e.body, d.Name)
				e.body = appendTime(e.body, d.Issued)
				e.body = binary.LittleEndian.AppendUint64(e.body, d.Hash)
			}
		}
	case KindGossipDelta:
		if g := m.GossipDelta; g != nil {
			usesTable = true
			e.body = binary.AppendUvarint(e.body, e.ref(g.FromZone))
			e.rows(g.Rows)
			e.body = binary.AppendUvarint(e.body, uint64(len(g.Want)))
			for i := range g.Want {
				e.body = binary.AppendUvarint(e.body, e.ref(g.Want[i].Zone))
				e.body = appendString(e.body, g.Want[i].Name)
			}
			// The stamp section is appended only when non-empty, so a
			// stamp-free delta is byte-identical to the pre-stamp format
			// (the decoder reads stamps iff bytes remain after Want).
			if len(g.Stamps) > 0 {
				e.body = binary.AppendUvarint(e.body, uint64(len(g.Stamps)))
				for i := range g.Stamps {
					s := &g.Stamps[i]
					e.body = binary.AppendUvarint(e.body, e.ref(s.Zone))
					e.body = appendString(e.body, s.Name)
					e.body = appendTime(e.body, s.Issued)
					e.body = binary.LittleEndian.AppendUint64(e.body, s.Hash)
				}
			}
		}
	case KindMulticast:
		if mc := m.Multicast; mc != nil {
			e.body = appendString(e.body, mc.TargetZone)
			e.body = binary.AppendVarint(e.body, int64(mc.Hops))
			e.body = appendBool(e.body, mc.Deliver)
			e.body = binary.AppendUvarint(e.body, mc.AckSeq)
			e.body = binary.AppendUvarint(e.body, mc.TraceID)
			e.envelope(&mc.Envelope)
		}
	case KindMulticastAck:
		if a := m.MulticastAck; a != nil {
			e.body = binary.AppendUvarint(e.body, a.Seq)
			e.body = appendString(e.body, a.Key)
			e.body = appendString(e.body, a.TargetZone)
		}
	case KindClockPing, KindClockPong:
		if c := m.ClockSync; c != nil {
			e.body = binary.AppendUvarint(e.body, c.Seq)
			e.body = binary.AppendVarint(e.body, c.T1)
			e.body = binary.AppendVarint(e.body, c.T2)
		}
	case KindStateRequest:
		if r := m.StateRequest; r != nil {
			e.body = appendTime(e.body, r.Since)
			e.body = binary.AppendVarint(e.body, int64(r.MaxItems))
			e.body = binary.AppendUvarint(e.body, uint64(len(r.Subjects)))
			for _, s := range r.Subjects {
				e.body = appendString(e.body, s)
			}
		}
	case KindStateReply:
		if r := m.StateReply; r != nil {
			e.body = binary.AppendUvarint(e.body, uint64(len(r.Envelopes)))
			for i := range r.Envelopes {
				e.envelope(&r.Envelopes[i])
			}
			e.body = appendBool(e.body, r.Truncated)
		}
	default:
		// Unknown kind: emit no payload; Decode rejects the frame.
	}

	e.head = append(e.head, codecMagic, byte(m.Kind))
	e.head = appendString(e.head, from)
	if usesTable {
		e.head = binary.AppendUvarint(e.head, uint64(len(e.tblList)))
		for _, s := range e.tblList {
			e.head = appendString(e.head, s)
		}
	}
	out := make([]byte, prefix, prefix+len(e.head)+len(e.body))
	out = append(out, e.head...)
	out = append(out, e.body...)
	return out, nil
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func (e *binEncoder) rows(rows []RowUpdate) {
	e.body = binary.AppendUvarint(e.body, uint64(len(rows)))
	for i := range rows {
		r := &rows[i]
		e.body = binary.AppendUvarint(e.body, e.ref(r.Zone))
		e.body = appendString(e.body, r.Name)
		e.body = appendTime(e.body, r.Issued)
		e.body = appendString(e.body, r.Owner)
		e.body = appendString(e.body, r.Signer)
		e.body = appendByteSlice(e.body, r.Sig)
		e.attrs(r.Attrs)
	}
}

func (e *binEncoder) attrs(m value.Map) {
	e.body = binary.AppendUvarint(e.body, uint64(len(m)))
	e.keys = e.keys[:0]
	for k := range m {
		e.keys = append(e.keys, k)
	}
	sort.Strings(e.keys)
	for _, k := range e.keys {
		e.body = binary.AppendUvarint(e.body, e.ref(k))
		e.body = appendWireValue(e.body, m[k])
	}
}

func (e *binEncoder) envelope(env *ItemEnvelope) {
	b := e.body
	b = appendString(b, env.Publisher)
	b = appendString(b, env.ItemID)
	b = binary.AppendVarint(b, int64(env.Revision))
	b = binary.AppendUvarint(b, uint64(len(env.Subjects)))
	for _, s := range env.Subjects {
		b = appendString(b, s)
	}
	b = binary.AppendUvarint(b, uint64(len(env.SubjectBits)))
	for _, bit := range env.SubjectBits {
		b = binary.AppendUvarint(b, uint64(bit))
	}
	b = appendString(b, env.ScopeZone)
	b = appendString(b, env.Predicate)
	b = binary.AppendVarint(b, int64(env.Urgency))
	b = appendTime(b, env.Published)
	b = appendByteSlice(b, env.Payload)
	b = appendString(b, env.Signer)
	b = appendByteSlice(b, env.Sig)
	e.body = b
}

// --- decoder ---

// binDecoder cursors over one frame with a sticky error: after the first
// failure every accessor returns a zero value, so decode call sites stay
// linear. All counts and lengths are bounds-checked against the remaining
// input before anything is allocated.
type binDecoder struct {
	data []byte
	pos  int
	err  error
	tbl  []string
}

func (d *binDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *binDecoder) remaining() int { return len(d.data) - d.pos }

func (d *binDecoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail("truncated input")
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *binDecoder) bool() bool { return d.u8() != 0 }

func (d *binDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *binDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.pos += n
	return v
}

// count reads a uvarint bounded by the remaining input length, the
// natural ceiling for any element count (every element costs at least one
// byte), so a forged count cannot drive a huge allocation.
func (d *binDecoder) count(what string) int {
	c := d.uvarint()
	if d.err != nil {
		return 0
	}
	if c > uint64(d.remaining()) {
		d.fail("%s count %d exceeds input", what, c)
		return 0
	}
	return int(c)
}

func (d *binDecoder) str() string {
	n := d.count("string length")
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *binDecoder) byteSlice() []byte {
	n := d.count("bytes length")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.data[d.pos:])
	d.pos += n
	return out
}

func (d *binDecoder) time() time.Time {
	sec := d.varint()
	nsec := d.uvarint()
	if d.err != nil {
		return time.Time{}
	}
	if nsec >= uint64(time.Second) {
		d.fail("time nanoseconds %d out of range", nsec)
		return time.Time{}
	}
	if sec == zeroTimeUnixSec && nsec == 0 {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// table reads the interned string table, canonicalizing each entry
// through the process-wide intern table so decoded rows share one
// instance of each attribute name and zone path.
func (d *binDecoder) table() {
	n := d.count("string table")
	if d.err != nil {
		return
	}
	d.tbl = d.tbl[:0]
	for i := 0; i < n; i++ {
		if d.err != nil {
			return
		}
		d.tbl = append(d.tbl, value.Intern(d.str()))
	}
}

func (d *binDecoder) ref() string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(d.tbl)) {
		d.fail("string table ref %d out of range (table has %d)", i, len(d.tbl))
		return ""
	}
	return d.tbl[i]
}

func (d *binDecoder) value() value.Value {
	if d.err != nil {
		return value.Value{}
	}
	if d.pos < len(d.data) && d.data[d.pos] == packedBytesTag {
		return d.packedBytes()
	}
	v, n, err := value.DecodeBinary(d.data[d.pos:])
	if err != nil {
		d.fail("attr value: %v", err)
		return value.Value{}
	}
	d.pos += n
	return v
}

// packedBytes decodes a zero-run-packed byte array. It validates the run
// structure in a first pass — total coverage must equal the claimed
// length and every run pair must make progress — before allocating the
// output, so a malformed frame cannot cost more memory than its own size
// plus one bounded buffer.
func (d *binDecoder) packedBytes() value.Value {
	d.pos++ // tag
	rawLen64 := d.uvarint()
	if d.err != nil {
		return value.Value{}
	}
	if rawLen64 > maxPackedLen {
		d.fail("packed bytes length %d exceeds cap", rawLen64)
		return value.Value{}
	}
	rawLen := int(rawLen64)
	start := d.pos
	covered := 0
	for covered < rawLen {
		z := d.uvarint()
		l := d.uvarint()
		if d.err != nil {
			return value.Value{}
		}
		if z == 0 && l == 0 {
			d.fail("packed bytes: zero-progress run")
			return value.Value{}
		}
		if z > maxPackedLen || l > uint64(d.remaining()) {
			d.fail("packed bytes: run exceeds input")
			return value.Value{}
		}
		d.pos += int(l)
		covered += int(z) + int(l)
		if covered > rawLen {
			d.fail("packed bytes: runs exceed claimed length %d", rawLen)
			return value.Value{}
		}
	}
	out := make([]byte, rawLen)
	pos, p := 0, start
	for pos < rawLen {
		z, n := binary.Uvarint(d.data[p:])
		p += n
		l, n := binary.Uvarint(d.data[p:])
		p += n
		pos += int(z)
		copy(out[pos:], d.data[p:p+int(l)])
		p += int(l)
		pos += int(l)
	}
	return value.Bytes(out)
}

func (d *binDecoder) attrs() value.Map {
	n := d.count("attr")
	if d.err != nil {
		return nil
	}
	c := n
	if c > 64 {
		c = 64
	}
	m := make(value.Map, c)
	for i := 0; i < n; i++ {
		if d.err != nil {
			return nil
		}
		k := d.ref()
		m[k] = d.value()
	}
	return m
}

func (d *binDecoder) rowList() []RowUpdate {
	n := d.count("row")
	if d.err != nil || n == 0 {
		return nil
	}
	c := n
	if c > 1024 {
		c = 1024
	}
	out := make([]RowUpdate, 0, c)
	for i := 0; i < n; i++ {
		if d.err != nil {
			return nil
		}
		var r RowUpdate
		r.Zone = d.ref()
		r.Name = d.str()
		r.Issued = d.time()
		r.Owner = d.str()
		r.Signer = d.str()
		r.Sig = d.byteSlice()
		r.Attrs = d.attrs()
		out = append(out, r)
	}
	return out
}

func (d *binDecoder) digestList() []RowDigest {
	n := d.count("digest")
	if d.err != nil || n == 0 {
		return nil
	}
	c := n
	if c > 4096 {
		c = 4096
	}
	out := make([]RowDigest, 0, c)
	for i := 0; i < n; i++ {
		if d.err != nil {
			return nil
		}
		var g RowDigest
		g.Zone = d.ref()
		g.Name = d.str()
		g.Issued = d.time()
		if d.remaining() < 8 {
			d.fail("truncated digest hash")
			return nil
		}
		g.Hash = binary.LittleEndian.Uint64(d.data[d.pos:])
		d.pos += 8
		out = append(out, g)
	}
	return out
}

func (d *binDecoder) refList() []RowRef {
	n := d.count("row ref")
	if d.err != nil || n == 0 {
		return nil
	}
	c := n
	if c > 4096 {
		c = 4096
	}
	out := make([]RowRef, 0, c)
	for i := 0; i < n; i++ {
		if d.err != nil {
			return nil
		}
		out = append(out, RowRef{Zone: d.ref(), Name: d.str()})
	}
	return out
}

func (d *binDecoder) envelope(env *ItemEnvelope) {
	env.Publisher = d.str()
	env.ItemID = d.str()
	env.Revision = int(d.varint())
	n := d.count("subject")
	for i := 0; i < n && d.err == nil; i++ {
		env.Subjects = append(env.Subjects, d.str())
	}
	n = d.count("subject bit")
	for i := 0; i < n && d.err == nil; i++ {
		bit := d.uvarint()
		if bit > math.MaxUint32 {
			d.fail("subject bit %d out of range", bit)
			return
		}
		env.SubjectBits = append(env.SubjectBits, uint32(bit))
	}
	env.ScopeZone = d.str()
	env.Predicate = d.str()
	env.Urgency = int(d.varint())
	env.Published = d.time()
	env.Payload = d.byteSlice()
	env.Signer = d.str()
	env.Sig = d.byteSlice()
}

func decodeBinary(data []byte) (*Message, error) {
	d := &binDecoder{data: data, pos: 1} // pos 0 is the magic byte
	kind := Kind(d.u8())
	m := &Message{Kind: kind, From: d.str()}
	switch kind {
	case KindGossip:
		d.table()
		g := &Gossip{FromZone: d.ref()}
		g.Rows = d.rowList()
		m.Gossip = g
	case KindGossipReply:
		d.table()
		g := &GossipReply{FromZone: d.ref()}
		g.Rows = d.rowList()
		m.GossipReply = g
	case KindGossipDigest:
		d.table()
		g := &GossipDigest{FromZone: d.ref()}
		g.Digests = d.digestList()
		m.GossipDigest = g
	case KindGossipDelta:
		d.table()
		g := &GossipDelta{FromZone: d.ref()}
		g.Rows = d.rowList()
		g.Want = d.refList()
		if d.err == nil && d.remaining() > 0 {
			g.Stamps = d.digestList()
		}
		m.GossipDelta = g
	case KindMulticast:
		mc := &Multicast{
			TargetZone: d.str(),
			Hops:       int(d.varint()),
			Deliver:    d.bool(),
			AckSeq:     d.uvarint(),
			TraceID:    d.uvarint(),
		}
		d.envelope(&mc.Envelope)
		m.Multicast = mc
	case KindMulticastAck:
		m.MulticastAck = &MulticastAck{
			Seq:        d.uvarint(),
			Key:        d.str(),
			TargetZone: d.str(),
		}
	case KindClockPing, KindClockPong:
		m.ClockSync = &ClockSync{
			Seq: d.uvarint(),
			T1:  d.varint(),
			T2:  d.varint(),
		}
	case KindStateRequest:
		r := &StateRequest{
			Since:    d.time(),
			MaxItems: int(d.varint()),
		}
		n := d.count("subject")
		for i := 0; i < n && d.err == nil; i++ {
			r.Subjects = append(r.Subjects, d.str())
		}
		m.StateRequest = r
	case KindStateReply:
		r := &StateReply{}
		n := d.count("envelope")
		for i := 0; i < n && d.err == nil; i++ {
			var env ItemEnvelope
			d.envelope(&env)
			r.Envelopes = append(r.Envelopes, env)
		}
		r.Truncated = d.bool()
		m.StateReply = r
	default:
		return nil, fmt.Errorf("wire: decode: unknown message kind %d", kind)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", kind, d.err)
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("wire: decode %s: %d trailing bytes", kind, len(data)-d.pos)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
