package chaos_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/sim/chaos"
)

// miniScramble is a small scramble scenario for property tests: big
// enough for a three-level tree, small enough to run at many seeds.
func miniScramble(frac float64) chaos.Scenario {
	return chaos.Scenario{
		Name: "mini-scramble", Nodes: 48, Branching: 16,
		AckTimeout: time.Second, Warmup: 8,
		Events: []chaos.Event{
			{Kind: chaos.PublishBurst, Round: 0, Count: 6},
			{Kind: chaos.ScrambleState, Round: 1, Frac: frac},
		},
		MaxRounds: 6, QuietRounds: 5, DeliveryFloor: 0.5,
		Subjects:   []string{"tech/security", "world/politics"},
		SeedOffset: 11,
	}
}

// TestSerialParallelIdentical asserts the bit-identity contract: the same
// scenario at the same seed yields byte-for-byte equal results under the
// serial engine and the parallel executor.
func TestSerialParallelIdentical(t *testing.T) {
	for _, name := range chaos.QuickNames() {
		sc, ok := chaos.ByName(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		serial, err := chaos.Run(sc, chaos.Options{Seed: 42, Workers: 0})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		par, err := chaos.Run(sc, chaos.Options{Seed: 42, Workers: -1})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: serial and parallel results differ:\nserial:   %+v\nparallel: %+v",
				name, serial, par)
		}
	}
}

// TestRunDeterministic asserts that repeating a run at the same seed
// reproduces the result exactly, and that a different seed still
// converges.
func TestRunDeterministic(t *testing.T) {
	sc, _ := chaos.ByName("partition-heal")
	a, err := chaos.Run(sc, chaos.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.Run(sc, chaos.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if a.FinalDelivery != 1 {
		t.Errorf("partition-heal final delivery = %v, want 1", a.FinalDelivery)
	}
}

// TestScrambleAlwaysConverges is the self-stabilization property test:
// across 16 random seeds, scrambling a third of every node's rows and
// queues always converges back to 100% delivery with tables whose
// fingerprint matches a never-scrambled twin run.
func TestScrambleAlwaysConverges(t *testing.T) {
	sc := miniScramble(0.35)
	for seed := int64(1); seed <= 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := chaos.Run(sc, chaos.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.RowsScrambled == 0 {
				t.Fatal("scramble touched no rows — test is vacuous")
			}
			if res.FinalDelivery != 1 {
				t.Errorf("final delivery = %v, want 1", res.FinalDelivery)
			}
			if res.SelfHealed == nil || !*res.SelfHealed {
				t.Errorf("self-healed = %v, want true (fingerprint must match clean twin)", res.SelfHealed)
			}
		})
	}
}

// TestChurnStormMaterializes asserts the churn arm's virtual-leaf
// contract: storms over a mostly-virtual cluster must materialize their
// victims (crashing a template row tests nothing) and still converge.
func TestChurnStormMaterializes(t *testing.T) {
	sc, ok := chaos.ByName("churn-storm")
	if !ok {
		t.Fatal("churn-storm not registered")
	}
	res, err := chaos.Run(sc, chaos.Options{Seed: 1, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("storm crashed nobody")
	}
	if res.Materialized == 0 {
		t.Error("no virtual victim was materialized — the storm only hit the few real members")
	}
	if res.FinalDelivery != 1 {
		t.Errorf("final delivery = %v, want 1", res.FinalDelivery)
	}
	if res.ConvergenceRounds > sc.MaxRounds {
		t.Errorf("convergence took %d rounds, bound %d", res.ConvergenceRounds, sc.MaxRounds)
	}
}

// TestCorruptReject asserts the secure arm: scrambled rows carry
// signatures that no longer match their payload, so peers must reject
// them via certificate verification — and the run still self-heals.
func TestCorruptReject(t *testing.T) {
	sc, ok := chaos.ByName("corrupt-reject")
	if !ok {
		t.Fatal("corrupt-reject not registered")
	}
	res, err := chaos.Run(sc, chaos.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScrambled == 0 {
		t.Fatal("scramble touched no rows")
	}
	if res.RowsRejected == 0 {
		t.Error("no corrupted row was rejected by signature verification")
	}
	if res.FinalDelivery != 1 {
		t.Errorf("final delivery = %v, want 1", res.FinalDelivery)
	}
	if res.SelfHealed == nil || !*res.SelfHealed {
		t.Errorf("self-healed = %v, want true", res.SelfHealed)
	}
}

// TestMaterializedCrashAccounting is the regression test for delivery
// accounting across the virtual→real→crashed→recovered lifecycle: items
// counted against a member's virtual bitset must not count again when the
// materialized node recovers them into its own cache.
func TestMaterializedCrashAccounting(t *testing.T) {
	subjects := []string{"tech/security"}
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: 32, Branching: 16, Seed: 5,
		VirtualLeaves: true, VirtualSubjects: subjects,
		Customize: func(i int, cfg *core.Config) {
			cfg.AckTimeout = time.Second
			cfg.ReshareRecovered = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.RunRounds(8)

	const itemCount = 5
	pubAt := cluster.Eng.Now()
	for i := 0; i < itemCount; i++ {
		it := &news.Item{
			Publisher: "reuters", ID: fmt.Sprintf("acct-%d", i),
			Headline: "x", Body: "y", Subjects: subjects, Published: pubAt,
		}
		if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	cluster.RunRounds(4)

	// Pick a virtual member, check its bitset is full, then materialize.
	const victim = 10
	if cluster.Nodes[victim] != nil {
		t.Fatalf("node %d expected virtual", victim)
	}
	if got := cluster.NodeDelivered(victim); got != itemCount {
		t.Fatalf("virtual member delivered %d of %d before materialization", got, itemCount)
	}
	node, err := cluster.MaterializeNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	cluster.RunRounds(2)

	// Crash it, publish one more item while it is down, restore, recover.
	cluster.Net.Crash(node.Addr())
	it := &news.Item{
		Publisher: "reuters", ID: "acct-late",
		Headline: "x", Body: "y", Subjects: subjects, Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
		t.Fatal(err)
	}
	cluster.RunRounds(3)
	cluster.Net.Restore(node.Addr())
	if err := node.RecoverFromZonePeer(32); err != nil {
		t.Fatal(err)
	}
	cluster.RunRounds(3)

	// The recovery pass re-fetched all 6 items into the node's cache. The
	// 5 virtual-phase items stay counted by the bitset alone; the node
	// itself must only count the late one.
	const total = itemCount + 1
	if got := cluster.NodeDelivered(victim); got != total {
		t.Errorf("NodeDelivered = %d, want exactly %d (virtual bitset + late item, no double count)",
			got, total)
	}
	if got := node.Delivered(); got != 1 {
		t.Errorf("node.Delivered = %d, want 1 (only the post-materialization item)", got)
	}
}
