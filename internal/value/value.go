// Package value implements the dynamically typed attribute values that
// populate Astrolabe MIB rows and flow through the SQL aggregation engine.
//
// A Value is a small immutable sum type over the attribute kinds the paper's
// aggregation layer needs: booleans, integers, floats, strings, byte arrays
// (Bloom filters and category masks ride as bytes), timestamps, and string
// lists (multicast representative addresses). Values have a total order
// within a kind, a deterministic binary encoding for gossip, and copy
// semantics that never alias caller-owned slices.
package value

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported attribute kinds. KindInvalid is the zero Value's kind.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindTime
	KindStrings
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindTime:
		return "time"
	case KindStrings:
		return "strings"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value is the
// distinguished "invalid" (absent) value.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	by   []byte
	t    time.Time
	ss   []string
}

// Invalid returns the absent value.
func Invalid() Value { return Value{} }

// Bool returns a boolean Value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string Value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a byte-array Value. The input slice is copied.
func Bytes(v []byte) Value {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Value{kind: KindBytes, by: cp}
}

// Time returns a timestamp Value, truncated to nanosecond Unix time in UTC
// so that encoding round-trips exactly.
func Time(v time.Time) Value {
	return Value{kind: KindTime, t: time.Unix(0, v.UnixNano()).UTC()}
}

// Strings returns a string-list Value. The input slice is copied.
func Strings(v []string) Value {
	cp := make([]string, len(v))
	copy(cp, v)
	return Value{kind: KindStrings, ss: cp}
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v holds a value (is not the absent value).
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsBool returns the boolean payload. ok is false if v is not a bool.
func (v Value) AsBool() (b bool, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload, coercing from float when the float is
// integral-representable. ok is false otherwise.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			return int64(v.f), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// AsFloat returns the numeric payload as a float64, coercing from int.
// ok is false if v is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// AsString returns the string payload. ok is false if v is not a string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBytes returns a copy of the byte payload. ok is false if v is not bytes.
func (v Value) AsBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	cp := make([]byte, len(v.by))
	copy(cp, v.by)
	return cp, true
}

// RawBytes returns the byte payload without copying. The caller must not
// mutate the result. ok is false if v is not bytes.
func (v Value) RawBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return v.by, true
}

// RawStrings returns the string-list payload without copying. The caller
// must not mutate the result. ok is false if v is not a string list.
func (v Value) RawStrings() ([]string, bool) {
	if v.kind != KindStrings {
		return nil, false
	}
	return v.ss, true
}

// AsTime returns the timestamp payload. ok is false if v is not a time.
func (v Value) AsTime() (time.Time, bool) { return v.t, v.kind == KindTime }

// AsStrings returns a copy of the string-list payload. ok is false if v is
// not a string list.
func (v Value) AsStrings() ([]string, bool) {
	if v.kind != KindStrings {
		return nil, false
	}
	cp := make([]string, len(v.ss))
	copy(cp, v.ss)
	return cp, true
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Truthy reports whether v counts as true in a WHERE clause: true booleans,
// non-zero numbers, non-empty strings/bytes/lists, and any valid time.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindBytes:
		return len(v.by) > 0
	case KindTime:
		return !v.t.IsZero()
	case KindStrings:
		return len(v.ss) > 0
	default:
		return false
	}
}

// Equal reports deep equality of two values, including kind. Numeric values
// of different kinds compare equal when they represent the same number.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInvalid:
		return true
	case KindBool:
		return v.b == o.b
	case KindString:
		return v.s == o.s
	case KindBytes:
		return bytes.Equal(v.by, o.by)
	case KindTime:
		return v.t.Equal(o.t)
	case KindStrings:
		if len(v.ss) != len(o.ss) {
			return false
		}
		for i := range v.ss {
			if v.ss[i] != o.ss[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders v against o. It returns -1, 0, or +1. Values of mixed
// numeric kinds compare numerically. Comparing other mixed kinds or
// unordered kinds returns an error.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindBool:
		switch {
		case v.b == o.b:
			return 0, nil
		case !v.b:
			return -1, nil
		default:
			return 1, nil
		}
	case KindString:
		return strings.Compare(v.s, o.s), nil
	case KindBytes:
		return bytes.Compare(v.by, o.by), nil
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1, nil
		case v.t.After(o.t):
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("value: kind %s has no order", v.kind)
	}
}

// String renders v for logs and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindInvalid:
		return "<invalid>"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.by))
	case KindTime:
		return v.t.Format(time.RFC3339Nano)
	case KindStrings:
		return "[" + strings.Join(v.ss, ",") + "]"
	default:
		return "<?>"
	}
}

// AppendBinary appends the canonical binary encoding of v to dst and
// returns the extended slice. The encoding is self-delimiting.
func (v Value) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInvalid:
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.AppendVarint(dst, v.i)
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.by)))
		dst = append(dst, v.by...)
	case KindTime:
		dst = binary.AppendVarint(dst, v.t.UnixNano())
	case KindStrings:
		dst = binary.AppendUvarint(dst, uint64(len(v.ss)))
		for _, s := range v.ss {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// DecodeBinary decodes one Value from the front of src, returning the value
// and the number of bytes consumed.
func DecodeBinary(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("value: decode from empty input")
	}
	kind := Kind(src[0])
	pos := 1
	switch kind {
	case KindInvalid:
		return Value{}, pos, nil
	case KindBool:
		if len(src) < pos+1 {
			return Value{}, 0, fmt.Errorf("value: truncated bool")
		}
		return Bool(src[pos] != 0), pos + 1, nil
	case KindInt:
		i, n := binary.Varint(src[pos:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: truncated int")
		}
		return Int(i), pos + n, nil
	case KindFloat:
		if len(src) < pos+8 {
			return Value{}, 0, fmt.Errorf("value: truncated float")
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(src[pos:]))
		return Float(f), pos + 8, nil
	case KindString:
		s, n, err := decodeLenPrefixed(src[pos:], "string")
		if err != nil {
			return Value{}, 0, err
		}
		return String(string(s)), pos + n, nil
	case KindBytes:
		b, n, err := decodeLenPrefixed(src[pos:], "bytes")
		if err != nil {
			return Value{}, 0, err
		}
		return Bytes(b), pos + n, nil
	case KindTime:
		ns, n := binary.Varint(src[pos:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: truncated time")
		}
		return Time(time.Unix(0, ns).UTC()), pos + n, nil
	case KindStrings:
		count, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: truncated strings count")
		}
		pos += n
		if count > uint64(len(src)) {
			return Value{}, 0, fmt.Errorf("value: strings count %d exceeds input", count)
		}
		ss := make([]string, 0, count)
		for i := uint64(0); i < count; i++ {
			s, n, err := decodeLenPrefixed(src[pos:], "strings element")
			if err != nil {
				return Value{}, 0, err
			}
			ss = append(ss, string(s))
			pos += n
		}
		return Value{kind: KindStrings, ss: ss}, pos, nil
	default:
		return Value{}, 0, fmt.Errorf("value: unknown kind %d", kind)
	}
}

func decodeLenPrefixed(src []byte, what string) ([]byte, int, error) {
	l, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, 0, fmt.Errorf("value: truncated %s length", what)
	}
	if uint64(len(src)-n) < l {
		return nil, 0, fmt.Errorf("value: truncated %s payload (want %d bytes)", what, l)
	}
	return src[n : n+int(l)], n + int(l), nil
}

// Map is an attribute map: attribute name to value.
type Map map[string]Value

// Clone returns a deep-enough copy of m (Values are immutable so a shallow
// copy of the entries suffices).
func (m Map) Clone() Map {
	cp := make(Map, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// Keys returns the attribute names in sorted order.
func (m Map) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AppendBinary appends a deterministic (sorted-key) encoding of m to dst.
func (m Map) AppendBinary(dst []byte) []byte {
	keys := m.Keys()
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = m[k].AppendBinary(dst)
	}
	return dst
}

// DecodeMap decodes a Map from the front of src, returning the map and the
// number of bytes consumed.
func DecodeMap(src []byte) (Map, int, error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, 0, fmt.Errorf("value: truncated map count")
	}
	pos := n
	if count > uint64(len(src)) {
		return nil, 0, fmt.Errorf("value: map count %d exceeds input", count)
	}
	m := make(Map, count)
	for i := uint64(0); i < count; i++ {
		k, kn, err := decodeLenPrefixed(src[pos:], "map key")
		if err != nil {
			return nil, 0, err
		}
		pos += kn
		v, vn, err := DecodeBinary(src[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: map entry %q: %w", k, err)
		}
		pos += vn
		m[string(k)] = v
	}
	return m, pos, nil
}

// Equal reports whether two maps hold the same entries.
func (m Map) Equal(o Map) bool {
	if len(m) != len(o) {
		return false
	}
	for k, v := range m {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// MarshalBinary implements encoding.BinaryMarshaler so Values (and Maps of
// them) can travel through encoding/gob on the TCP transport.
func (v Value) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(nil), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *Value) UnmarshalBinary(data []byte) error {
	decoded, n, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("value: %d trailing bytes after value", len(data)-n)
	}
	*v = decoded
	return nil
}
