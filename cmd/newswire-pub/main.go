// Command newswire-pub publishes news items into a live NewsWire cluster.
// It runs a short-lived publisher node (§8: "Under the covers of the
// publisher is an application identical to the subscriber application
// core"), joins through a peer, and publishes either a single item from
// flags or a whole RSS file through the bootstrap agent of §10.
//
// Publish one item:
//
//	newswire-pub -peers 127.0.0.1:9001 -publisher slashdot \
//	    -subject tech/linux -headline "Kernel released" -body "..."
//
// Publish an RSS file:
//
//	newswire-pub -peers 127.0.0.1:9001 -publisher slashdot -rss feed.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"newswire"
	"newswire/internal/feed"
	"newswire/internal/news"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswire-pub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswire-pub", flag.ContinueOnError)
	var (
		peers     = fs.String("peers", "", "comma-separated seed peer addresses (required)")
		zone      = fs.String("zone", "/default", "leaf zone to join")
		mode      = fs.String("mode", "", "cluster subscription-summary mode: bloom (default), attributes, category-mask or predicate — must match the subscribers")
		publisher = fs.String("publisher", "", "publisher name (required)")
		scope     = fs.String("scope", "/", "dissemination scope zone (§8)")
		predicate = fs.String("predicate", "", "forwarding predicate over zone attributes (§8)")

		itemID   = fs.String("id", "", "item ID (default derived from time)")
		subject  = fs.String("subject", "", "item subject, e.g. tech/linux")
		headline = fs.String("headline", "", "item headline")
		body     = fs.String("body", "", "item body")
		urgency  = fs.Int("urgency", 5, "NITF urgency 1 (flash) .. 8 (routine)")

		rssFile = fs.String("rss", "", "publish all new entries of this RSS file instead")
		settle  = fs.Duration("settle", 6*time.Second, "time to gossip before/after publishing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers == "" {
		return fmt.Errorf("-peers is required")
	}
	if *publisher == "" {
		return fmt.Errorf("-publisher is required")
	}

	summaryMode, err := newswire.ParseMode(*mode)
	if err != nil {
		return err
	}
	ln, err := newswire.StartLive(newswire.LiveConfig{
		Node:  newswire.Config{ZonePath: *zone, Mode: summaryMode},
		Peers: strings.Split(*peers, ","),
	})
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("publisher node on %s, joining %s\n", ln.Addr(), *peers)

	// Let gossip build enough routing state to publish through.
	time.Sleep(*settle)

	var items []*news.Item
	if *rssFile != "" {
		data, err := os.ReadFile(*rssFile)
		if err != nil {
			return err
		}
		channel, err := feed.ParseRSS(data)
		if err != nil {
			return err
		}
		agent, err := feed.NewAgent(*publisher, nil)
		if err != nil {
			return err
		}
		items = agent.Transform(channel, time.Now())
		fmt.Printf("transformed %d items from %s\n", len(items), *rssFile)
	} else {
		if *subject == "" || *headline == "" {
			return fmt.Errorf("-subject and -headline are required without -rss")
		}
		id := *itemID
		if id == "" {
			id = fmt.Sprintf("item-%d", time.Now().UnixNano())
		}
		items = []*news.Item{{
			Publisher: *publisher,
			ID:        id,
			Headline:  *headline,
			Body:      *body,
			Subjects:  strings.Split(*subject, ","),
			Urgency:   *urgency,
			Published: time.Now(),
		}}
	}

	for _, it := range items {
		if err := ln.Node().PublishItem(it, *scope, *predicate); err != nil {
			return fmt.Errorf("publish %s: %w", it.Key(), err)
		}
		fmt.Printf("published %s: %s\n", it.Key(), it.Headline)
	}

	// Stay up long enough for forwards to drain.
	time.Sleep(*settle)
	return nil
}
