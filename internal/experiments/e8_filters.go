package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/wire"
	"newswire/internal/workload"
)

// RunE8 sweeps the three subscription-summary representations against an
// identical workload and measures routing precision. §6 rejects the
// attribute-per-subscription strawman ("the work done for purposes of
// filtering would be at least linear in the number of subscriptions") in
// favor of Bloom filters, and §7 sharpens the Bloom design into typed SQL
// predicates compiled to signatures plus zone subgrouping. The sweep
// quantifies both steps: attributes lose on row size, and plain Bloom
// loses on precision — a subject-only filter cannot express the urgency
// constraint every subscriber here carries, so every urgency miss is a
// false-positive forward that the leaf's exact test discards. The
// predicate arm routes on the compiled constraint and prunes those
// forwards inside the zone hierarchy.
//
// Every arm uses the same seeded draws (subjects, urgency thresholds,
// publish schedule) and ends at the same exact delivered set, so recall
// is equal by construction and the arms differ only in wasted forwarding
// and summary bytes.
func RunE8(opt Options) *Table {
	subCounts := []int{16, 64, 256, 1024}
	items := 64
	if opt.Quick {
		subCounts = []int{16, 256}
		items = 32
	}
	t := &Table{
		ID:    "E8",
		Title: "Subscription summaries: predicate signatures vs. Bloom vs. attributes",
		Claim: "predicate signatures + subgrouping cut false-positive forwards vs. Bloom at equal recall (§6–7)",
		Columns: []string{"subscriptions", "mode", "root row attrs", "recall",
			"fp drops", "fp rate", "forwards", "KB/round/node", "ns/decision",
			"subg filters"},
	}

	const n = 48
	for _, subs := range subCounts {
		for _, mode := range []pubsub.Mode{pubsub.ModeBloom, pubsub.ModeAttributes, pubsub.ModePredicate} {
			row, prec := runE8Case(opt.Seed, n, subs, items, mode)
			t.AddRow(row...)
			t.Precision = append(t.Precision, prec)
		}
	}
	t.Nodes = n
	t.Volatile = []string{"ns/decision"}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d nodes; 4 zipf subjects + one urgency threshold per node; shared geometry %d bits / %d hashes",
			n, e8Geometry.Bits, e8Geometry.Hashes),
		"bloom/attributes filter urgency at the leaf (SetPredicate); predicate compiles it into the routed signature")
	return t
}

// e8Geometry is shared by the bloom and predicate arms so the comparison
// isolates what the signature encodes, not how big the filter is. Multiple
// hashes are what make subgrouping pay: a k-hash subgroup filter stays
// sparse where the OR-union of a zone's members saturates.
var e8Geometry = pubsub.Geometry{Bits: 2048, Hashes: 4}

func runE8Case(seed int64, n, subjectPool, items int, mode pubsub.Mode) ([]string, PrecisionRow) {
	errRow := func(err error) ([]string, PrecisionRow) {
		return []string{fmt.Sprint(subjectPool), mode.String(), "error: " + err.Error(),
			"", "", "", "", "", "", ""}, PrecisionRow{}
	}
	// Build the synthetic subject universe.
	pool := make([]string, subjectPool)
	for i := range pool {
		pool[i] = fmt.Sprintf("topic-%04d/sub", i)
	}
	delivered := make([]int64, n)
	// The cluster seed deliberately excludes the mode: all three arms run
	// the exact same gossip partner schedule, so the bytes comparison is
	// paired rather than noisy across seeds.
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: 16, Seed: seed + int64(subjectPool),
		Customize: func(i int, cfg *core.Config) {
			cfg.Mode = mode
			cfg.Geometry = e8Geometry
			// Reliable forwarding: the default WAN link drops 1% of
			// frames, and recall must be exactly 1.0 in every arm for the
			// precision comparison to mean anything.
			cfg.AckTimeout = time.Second
			idx := i
			cfg.OnItem = func(it *news.Item, env *wire.ItemEnvelope) {
				delivered[idx]++
			}
		},
	})
	if err != nil {
		return errRow(err)
	}

	// One workload stream per subscription count, shared verbatim by all
	// modes: same subjects, same urgency thresholds, same publish
	// schedule. Node 0 is a pure publisher so no arm depends on
	// self-delivery.
	wrng := rand.New(rand.NewSource(seed*7 + int64(subjectPool)))
	subsOf := make([][]string, n)
	urgOf := make([]int, n)
	for i := 1; i < n; i++ {
		subsOf[i] = workload.SampleSubscriptions(wrng, pool, 4, 1.0)
		urgOf[i] = 2 + wrng.Intn(6)
		switch mode {
		case pubsub.ModePredicate:
			quoted := make([]string, len(subsOf[i]))
			for j, s := range subsOf[i] {
				quoted[j] = "'" + s + "'"
			}
			q := fmt.Sprintf("subjects IN (%s) AND urgency >= %d",
				strings.Join(quoted, ", "), urgOf[i])
			if _, err := cluster.Nodes[i].SubscribeQuery(q); err != nil {
				return errRow(err)
			}
		default:
			if err := cluster.Nodes[i].Subscribe(subsOf[i]...); err != nil {
				return errRow(err)
			}
			// The summary cannot express urgency; the subscriber still
			// wants it, so the leaf filters exactly — every urgency miss
			// that reaches the node is a counted false-positive drop.
			if err := cluster.Nodes[i].SetPredicate(fmt.Sprintf("urgency >= %d", urgOf[i])); err != nil {
				return errRow(err)
			}
		}
	}

	// Let the summaries propagate, then measure steady-state gossip in a
	// publish-free window: the cost of carrying this summary shape.
	cluster.RunRounds(6)
	startBytes := make([]int64, n)
	for i, node := range cluster.Nodes {
		startBytes[i] = cluster.Net.Stats(node.Addr()).BytesSent
	}
	const windowRounds = 5
	cluster.RunRounds(windowRounds)
	var totalBytes int64
	for i, node := range cluster.Nodes {
		totalBytes += cluster.Net.Stats(node.Addr()).BytesSent - startBytes[i]
	}
	bytesPerRoundPerNode := float64(totalBytes) / float64(windowRounds) / float64(n)

	// Root-row attribute counts (the gossip payload growth §6 warns
	// about) and the per-decision forwarding-filter cost against a root
	// row carrying the full aggregated summary.
	rows, _ := cluster.Nodes[0].Agent().Table(astrolabe.RootZone)
	maxAttrs := 0
	for _, r := range rows {
		if len(r.Attrs) > maxAttrs {
			maxAttrs = len(r.Attrs)
		}
	}
	env, _ := pubsub.EncodeItem(e8Probe(pool[0]), mode, e8Geometry, nil)
	filter := pubsub.ForwardFilter(mode, e8Geometry, nil)
	var row astrolabe.Row
	if len(rows) > 0 {
		row = rows[0]
	}
	const reps = 20000
	startT := time.Now()
	for i := 0; i < reps; i++ {
		filter("/", row, &env)
	}
	perOp := time.Since(startT) / reps

	// Publish phase: one shared schedule, expected exact matches computed
	// against the drawn interests.
	expected := int64(0)
	for j := 0; j < items; j++ {
		subj := pool[wrng.Intn(len(pool))]
		urg := 1 + wrng.Intn(news.UrgencyMax)
		it := &news.Item{
			Publisher: "bench", ID: fmt.Sprintf("item-%04d", j),
			Headline: "probe", Body: "b",
			Subjects: []string{subj}, Urgency: urg,
			Published: time.Date(2002, 4, 1, 0, 0, 0, 0, time.UTC),
		}
		if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
			return errRow(err)
		}
		for i := 1; i < n; i++ {
			if urg >= urgOf[i] && containsSubject(subsOf[i], subj) {
				expected++
			}
		}
		if j%8 == 7 {
			cluster.RunRounds(2)
		}
	}
	cluster.RunRounds(20)

	var got int64
	for _, d := range delivered {
		got += d
	}
	recall := 1.0
	if expected > 0 {
		recall = float64(got) / float64(expected)
	}
	var fwd, fpd, exact, sgTests int64
	for _, node := range cluster.Nodes {
		rs := node.RoutingStats()
		fwd += rs.Forwards
		fpd += rs.FalsePositiveDrops
		exact += rs.ExactMatches
		sgTests += rs.SubgroupTests
	}
	fpRate := 0.0
	if fpd+exact > 0 {
		fpRate = float64(fpd) / float64(fpd+exact)
	}
	subgFilters := cluster.Nodes[0].SubgroupFilters()

	prec := PrecisionRow{
		Label:                fmt.Sprintf("%d subs / %s", subjectPool, mode),
		Mode:                 mode.String(),
		Subscriptions:        subjectPool,
		RootAttrs:            maxAttrs,
		Recall:               recall,
		ExactMatches:         exact,
		FPDrops:              fpd,
		FPRate:               fpRate,
		Forwards:             fwd,
		SubgroupTests:        sgTests,
		BytesPerRoundPerNode: bytesPerRoundPerNode,
		NsPerDecision:        perOp.Nanoseconds(),
		SubgroupFilters:      subgFilters,
	}
	return []string{
		fmt.Sprint(subjectPool),
		mode.String(),
		fmt.Sprint(maxAttrs),
		fmt.Sprintf("%.3f", recall),
		fmt.Sprint(fpd),
		fmtPct(fpRate),
		fmt.Sprint(fwd),
		fmt.Sprintf("%.1f", bytesPerRoundPerNode/1024),
		fmt.Sprint(perOp.Nanoseconds()),
		fmt.Sprint(subgFilters),
	}, prec
}

func containsSubject(subs []string, subject string) bool {
	for _, s := range subs {
		if s == subject {
			return true
		}
	}
	return false
}

func e8Probe(subject string) *news.Item {
	return &news.Item{
		Publisher: "bench", ID: "probe", Headline: "probe", Body: "b",
		Subjects: []string{subject}, Urgency: 7,
		Published: time.Date(2002, 4, 1, 0, 0, 0, 0, time.UTC),
	}
}
