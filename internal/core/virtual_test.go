package core

import (
	"fmt"
	"testing"
	"time"

	"newswire/internal/news"
	"newswire/internal/sim"
)

// losslessLink removes link loss so a full run and a virtual run are
// comparable: the two modes consume the engine RNG differently (virtual
// members do not gossip), so only the lossless delivery outcome — every
// subscribed member gets the item exactly once — is mode-independent.
var losslessLink = sim.LinkModel{
	LatencyMin: 20 * time.Millisecond,
	LatencyMax: 180 * time.Millisecond,
	LossRate:   0,
}

func publishOne(t *testing.T, c *Cluster, id string) {
	t.Helper()
	it := &news.Item{
		Publisher: "reuters", ID: id, Headline: "hl", Body: "b",
		Subjects: []string{"tech/linux"}, Urgency: 1,
		Published: c.Eng.Now(),
	}
	if err := c.Nodes[0].PublishItem(it, "", ""); err != nil {
		t.Fatalf("publish: %v", err)
	}
}

// TestVirtualLeavesDeliveryEquivalence runs the same deployment twice —
// every member a real node, then quiescent members virtualized — and
// checks the delivery fingerprints agree: over a lossless network every
// one of the 512 members accepts the published item exactly once in
// both modes, for each of three seeds.
func TestVirtualLeavesDeliveryEquivalence(t *testing.T) {
	const n = 512
	for _, seed := range []int64{1, 2, 3} {
		fingerprint := func(virtual bool) []int64 {
			cfg := ClusterConfig{
				N:         n,
				Branching: 64,
				Seed:      seed,
				Link:      losslessLink,
				Customize: func(i int, nc *Config) { nc.RepCount = 2 },
			}
			if virtual {
				cfg.VirtualLeaves = true
				cfg.VirtualSubjects = []string{"tech/linux"}
			}
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatalf("seed %d virtual=%v: %v", seed, virtual, err)
			}
			if !virtual {
				for _, node := range c.Nodes {
					if err := node.Subscribe("tech/linux"); err != nil {
						t.Fatal(err)
					}
				}
			}
			c.RunRounds(12) // let subscription summaries reach the root
			publishOne(t, c, fmt.Sprintf("item-%d", seed))
			c.RunFor(60 * time.Second)
			out := make([]int64, n)
			for i := range out {
				out[i] = c.NodeDelivered(i)
			}
			return out
		}
		full := fingerprint(false)
		virt := fingerprint(true)
		for i := 0; i < n; i++ {
			if full[i] != 1 {
				t.Fatalf("seed %d: full run node %d delivered %d times", seed, i, full[i])
			}
			if virt[i] != full[i] {
				t.Fatalf("seed %d: node %d delivered %d virtual vs %d full",
					seed, i, virt[i], full[i])
			}
		}
	}
}

// TestVirtualLeavesSerialParallelIdentical checks the virtual-leaf path
// keeps the executor guarantee: per-member delivery counts and network
// totals are identical between serial and parallel runs of one seed.
func TestVirtualLeavesSerialParallelIdentical(t *testing.T) {
	run := func(workers int) ([]int64, int64) {
		c, err := NewCluster(ClusterConfig{
			N: 256, Branching: 64, Seed: 9, Workers: workers,
			VirtualLeaves:   true,
			VirtualSubjects: []string{"tech/linux"},
			Customize:       func(i int, nc *Config) { nc.RepCount = 2 },
		})
		if err != nil {
			t.Fatal(err)
		}
		c.RunRounds(12)
		publishOne(t, c, "sp")
		c.RunFor(60 * time.Second)
		out := make([]int64, len(c.Nodes))
		for i := range out {
			out[i] = c.NodeDelivered(i)
		}
		sent, _, _ := c.Net.Totals()
		return out, sent
	}
	serial, sentS := run(0)
	parallel, sentP := run(2)
	if sentS != sentP {
		t.Fatalf("messages sent differ: serial %d, parallel %d", sentS, sentP)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("node %d: delivered %d serial vs %d parallel", i, serial[i], parallel[i])
		}
	}
}

// TestMaterializeNode promotes a virtual leaf mid-run and checks both
// accounting phases: the item published while virtual is in the bitset,
// the one published after materialization lands in the real node, and
// NodeDelivered sums them.
func TestMaterializeNode(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 64, Branching: 16, Seed: 5, Link: losslessLink,
		VirtualLeaves:   true,
		VirtualSubjects: []string{"tech/linux"},
	})
	if err != nil {
		t.Fatal(err)
	}
	const target = 10 // pos 10 of zone 0: virtual (4 materialized per zone)
	if c.Nodes[target] != nil {
		t.Fatalf("node %d expected virtual at construction", target)
	}
	virtBefore := c.VirtualMembers()
	c.RunRounds(10)
	publishOne(t, c, "while-virtual")
	c.RunFor(30 * time.Second)
	if got := c.NodeDelivered(target); got != 1 {
		t.Fatalf("virtual phase: delivered %d, want 1", got)
	}

	node, err := c.MaterializeNode(target)
	if err != nil {
		t.Fatal(err)
	}
	if node == nil || c.Nodes[target] != node {
		t.Fatal("materialized node not installed")
	}
	if again, _ := c.MaterializeNode(target); again != node {
		t.Fatal("MaterializeNode not idempotent")
	}
	if got := c.VirtualMembers(); got != virtBefore-1 {
		t.Fatalf("VirtualMembers %d, want %d", got, virtBefore-1)
	}
	c.RunRounds(4) // let the fresh own row replace the template via gossip
	publishOne(t, c, "after-materialize")
	c.RunFor(30 * time.Second)
	if got := node.Delivered(); got != 1 {
		t.Fatalf("real phase: node delivered %d, want 1", got)
	}
	if got := c.NodeDelivered(target); got != 2 {
		t.Fatalf("combined: NodeDelivered %d, want 2", got)
	}
}
