package newswire

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/cache"
	"newswire/internal/core"
	"newswire/internal/metrics"
	"newswire/internal/multicast"
	"newswire/internal/pubsub"
	"newswire/internal/sim"
	"newswire/internal/trace"
	"newswire/internal/transport"
)

// WebUI serves the node-status web interface the paper promises for the
// user application (§10: "a full user control application ... with an
// additional web interface for access"). It exposes:
//
//	GET /                    – human-readable status page
//	GET /status.json         – machine-readable node status (incl. gossip/multicast counters)
//	GET /items.json          – recent items from the message cache
//	GET /zones.json          – the node's replicated zone tables (summarized)
//	GET /trace.json          – recent delivery trace spans (live trace ring);
//	                           ?trace=<id> filters to one trace
//	GET /cluster-health.json – cluster-wide health rollup from the local root table
//	GET /metrics             – Prometheus text exposition of the node's counters
//	GET /debug/pprof/*       – Go profiling endpoints (only with EnablePprof)
//
// Mount it on any http.Server; cmd/newswired wires it to -http.
type WebUI struct {
	node       *core.Node
	reg        *metrics.Registry
	ring       *trace.Ring            // nil serves an empty /trace.json
	engineInfo func() sim.EngineStats // nil omits the engine section
	pprof      bool
}

// EnablePprof mounts the net/http/pprof profiling endpoints under
// /debug/pprof/ on the next Handler call. Off by default: the profiler
// exposes goroutine stacks and heap contents, which an operator must opt
// into exposing (cmd/newswired's -pprof flag; DESIGN.md §12 documents the
// profiling workflow).
func (ui *WebUI) EnablePprof() { ui.pprof = true }

// SetEngineStatsFunc installs a provider for the event engine's queue
// statistics (pending events, high-water mark, fired/cancelled totals),
// added to /status.json as an "engine" section. Simulation harnesses
// pass their engine's Stats method; live nodes have no event engine and
// leave it unset.
func (ui *WebUI) SetEngineStatsFunc(fn func() sim.EngineStats) { ui.engineInfo = fn }

// NewWebUI returns a handler set for the given node. LiveNode.WebUI wires
// the node's trace ring in as well.
func NewWebUI(node *Node) *WebUI {
	return &WebUI{node: node, reg: metrics.NewRegistry()}
}

// Handler returns the mux serving every endpoint.
func (ui *WebUI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", ui.handleIndex)
	mux.HandleFunc("/status.json", ui.handleStatus)
	mux.HandleFunc("/items.json", ui.handleItems)
	mux.HandleFunc("/zones.json", ui.handleZones)
	mux.HandleFunc("/trace.json", ui.handleTrace)
	mux.HandleFunc("/cluster-health.json", ui.handleClusterHealth)
	mux.HandleFunc("/metrics", ui.handleMetrics)
	if ui.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusDoc is the /status.json schema.
type statusDoc struct {
	Name       string   `json:"name"`
	Addr       string   `json:"addr"`
	Zone       string   `json:"zone"`
	Subjects   []string `json:"subjects"`
	// Queries are the node's predicate subscriptions in canonical form
	// (ModePredicate; empty otherwise).
	Queries    []string             `json:"queries,omitempty"`
	Delivered  int64                `json:"delivered"`
	CacheItems int                  `json:"cacheItems"`
	Publishers []string             `json:"publishers"`
	Gossip     astrolabe.Stats      `json:"gossip"`
	Multicast  multicast.Stats      `json:"multicast"`
	Routing    routingDoc           `json:"routing"`
	Cache      cache.Stats          `json:"cache"`
	Runtime    metrics.RuntimeStats `json:"runtime"`
	Engine     *sim.EngineStats     `json:"engine,omitempty"`
	// Transport carries the live TCP data-path counters; omitted on the
	// simulated transport, which has no sockets to count.
	Transport *transport.Stats `json:"transport,omitempty"`
	// ClockOffsets are the per-peer clock-offset estimates from the TCP
	// transport's sync handshake; omitted in simulation.
	ClockOffsets map[string]transport.ClockOffset `json:"clockOffsets,omitempty"`
}

// routingDoc is the routing-precision section of /status.json: how often
// the subscription summaries said "forward", how the leaf's exact check
// resolved those forwards, and how many subgroup filters are in play.
type routingDoc struct {
	Forwards           int64 `json:"forwards"`
	ExactMatches       int64 `json:"exactMatches"`
	FalsePositiveDrops int64 `json:"falsePositiveDrops"`
	SubgroupTests      int64 `json:"subgroupTests"`
	SubgroupFilters    int   `json:"subgroupFilters"`
}

func (ui *WebUI) status() statusDoc {
	rs := ui.node.RoutingStats()
	doc := statusDoc{
		Name:       ui.node.Name(),
		Addr:       ui.node.Addr(),
		Zone:       ui.node.ZonePath(),
		Subjects:   ui.node.Subjects(),
		Queries:    ui.node.Queries(),
		Delivered:  ui.node.Delivered(),
		CacheItems: ui.node.Cache().Len(),
		Publishers: ui.node.KnownPublishers(),
		Gossip:     ui.node.Agent().Stats(),
		Multicast:  ui.node.Router().Stats(),
		Routing: routingDoc{
			Forwards:           rs.Forwards,
			ExactMatches:       rs.ExactMatches,
			FalsePositiveDrops: rs.FalsePositiveDrops,
			SubgroupTests:      rs.SubgroupTests,
			SubgroupFilters:    ui.node.SubgroupFilters(),
		},
		Cache:   ui.node.Cache().Stats(),
		Runtime: metrics.ReadRuntime(),
	}
	if ui.engineInfo != nil {
		st := ui.engineInfo()
		doc.Engine = &st
	}
	if ts, ok := ui.node.TransportStats(); ok {
		doc.Transport = &ts
	}
	if offs := ui.node.ClockOffsets(); len(offs) > 0 {
		doc.ClockOffsets = offs
	}
	return doc
}

func (ui *WebUI) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ui.status())
}

// traceDoc is the /trace.json schema.
type traceDoc struct {
	Recorded int64        `json:"recorded"` // spans ever recorded, incl. overwritten
	Spans    []trace.Span `json:"spans"`    // retained spans, oldest first
}

func (ui *WebUI) handleTrace(w http.ResponseWriter, r *http.Request) {
	doc := traceDoc{Spans: []trace.Span{}}
	if ui.ring != nil {
		doc.Recorded = ui.ring.Recorded()
		doc.Spans = ui.ring.Spans()
	}
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := strconv.ParseUint(q, 0, 64)
		if err != nil {
			http.Error(w, "trace: want a decimal or 0x-hex trace id", http.StatusBadRequest)
			return
		}
		if filtered := trace.ByTrace(doc.Spans, id); filtered != nil {
			doc.Spans = filtered
		} else {
			doc.Spans = []trace.Span{}
		}
	}
	writeJSON(w, doc)
}

// clusterHealthDoc is the /cluster-health.json schema: the cluster-wide
// rollup plus one summary per top-level zone, all computed from this
// node's local replicated tables.
type clusterHealthDoc struct {
	Node    string                        `json:"node"`
	Zone    string                        `json:"zone"`
	Cluster core.HealthSummary            `json:"cluster"`
	Zones   map[string]core.HealthSummary `json:"zones,omitempty"`
}

func (ui *WebUI) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	summary, ok := ui.node.ClusterHealth()
	if !ok {
		http.Error(w, "root table not replicated yet", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, clusterHealthDoc{
		Node:    ui.node.Name(),
		Zone:    ui.node.ZonePath(),
		Cluster: summary,
		Zones:   ui.node.ZoneHealth(),
	})
}

func (ui *WebUI) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Mirror the node's cumulative counters into the registry at scrape
	// time (SyncTo is idempotent), then render the exposition.
	ui.node.FillMetrics(ui.reg)
	ui.reg.Handler().ServeHTTP(w, r)
}

// itemDoc is one /items.json entry.
type itemDoc struct {
	Key       string    `json:"key"`
	Publisher string    `json:"publisher"`
	Headline  string    `json:"headline"`
	Subjects  []string  `json:"subjects"`
	Urgency   int       `json:"urgency"`
	Published time.Time `json:"published"`
}

func (ui *WebUI) recentItems(max int) []itemDoc {
	envs, _ := ui.node.Cache().Since(time.Time{}, nil, max)
	docs := make([]itemDoc, 0, len(envs))
	for i := range envs {
		env := &envs[i]
		doc := itemDoc{
			Key:       env.Key(),
			Publisher: env.Publisher,
			Subjects:  env.Subjects,
			Urgency:   env.Urgency,
			Published: env.Published,
		}
		if it, err := pubsub.DecodeItem(env); err == nil {
			doc.Headline = it.Headline
		}
		docs = append(docs, doc)
	}
	// Newest first for display.
	sort.Slice(docs, func(i, j int) bool { return docs[i].Published.After(docs[j].Published) })
	return docs
}

func (ui *WebUI) handleItems(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ui.recentItems(100))
}

// zoneDoc summarizes one replicated table row.
type zoneDoc struct {
	Zone    string   `json:"zone"`
	Row     string   `json:"row"`
	Members int64    `json:"members,omitempty"`
	Addr    string   `json:"addr,omitempty"`
	Reps    []string `json:"reps,omitempty"`
}

func (ui *WebUI) zones() []zoneDoc {
	var docs []zoneDoc
	for _, zone := range ui.node.Agent().Chain() {
		rows, ok := ui.node.Agent().Table(zone)
		if !ok {
			continue
		}
		for _, row := range rows {
			doc := zoneDoc{Zone: zone, Row: row.Name}
			doc.Members, _ = row.Attrs[astrolabe.AttrMembers].AsInt()
			doc.Addr, _ = row.Attrs[astrolabe.AttrAddr].AsString()
			doc.Reps, _ = row.Attrs[astrolabe.AttrReps].AsStrings()
			docs = append(docs, doc)
		}
	}
	return docs
}

func (ui *WebUI) handleZones(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ui.zones())
}

func (ui *WebUI) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	st := ui.status()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>NewsWire — %s</title></head><body>",
		html.EscapeString(st.Name))
	fmt.Fprintf(w, "<h1>NewsWire node %s</h1>", html.EscapeString(st.Name))
	fmt.Fprintf(w, "<p>address <code>%s</code>, zone <code>%s</code>, %d items delivered, %d cached</p>",
		html.EscapeString(st.Addr), html.EscapeString(st.Zone), st.Delivered, st.CacheItems)

	fmt.Fprint(w, "<h2>Subscriptions</h2><ul>")
	for _, s := range st.Subjects {
		fmt.Fprintf(w, "<li><code>%s</code></li>", html.EscapeString(s))
	}
	for _, q := range st.Queries {
		fmt.Fprintf(w, "<li>query <code>%s</code></li>", html.EscapeString(q))
	}
	fmt.Fprint(w, "</ul>")

	fmt.Fprint(w, "<h2>Known publishers</h2><ul>")
	for _, p := range st.Publishers {
		fmt.Fprintf(w, "<li>%s</li>", html.EscapeString(p))
	}
	fmt.Fprint(w, "</ul>")

	fmt.Fprint(w, "<h2>Recent items</h2><table border='1' cellpadding='4'>")
	fmt.Fprint(w, "<tr><th>published</th><th>key</th><th>headline</th><th>subjects</th></tr>")
	for _, it := range ui.recentItems(25) {
		fmt.Fprintf(w, "<tr><td>%s</td><td><code>%s</code></td><td>%s</td><td>%s</td></tr>",
			it.Published.Format("15:04:05"),
			html.EscapeString(it.Key),
			html.EscapeString(it.Headline),
			html.EscapeString(fmt.Sprint(it.Subjects)))
	}
	fmt.Fprint(w, "</table>")
	fmt.Fprint(w, `<p><a href="/status.json">status.json</a> · <a href="/items.json">items.json</a> · <a href="/zones.json">zones.json</a> · <a href="/trace.json">trace.json</a> · <a href="/cluster-health.json">cluster-health.json</a> · <a href="/metrics">metrics</a></p>`)
	fmt.Fprint(w, "</body></html>")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
