package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindInvalid, "invalid"},
		{KindBool, "bool"},
		{KindInt, "int"},
		{KindFloat, "float"},
		{KindString, "string"},
		{KindBytes, "bytes"},
		{KindTime, "time"},
		{KindStrings, "strings"},
		{Kind(200), "kind(200)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Errorf("Bool(true) round trip failed: %v %v", v, ok)
	}
	if v, ok := Int(-7).AsInt(); !ok || v != -7 {
		t.Errorf("Int(-7) round trip failed: %v %v", v, ok)
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Errorf("Float(2.5) round trip failed: %v %v", v, ok)
	}
	if v, ok := String("hi").AsString(); !ok || v != "hi" {
		t.Errorf("String round trip failed: %v %v", v, ok)
	}
	if v, ok := Bytes([]byte{1, 2}).AsBytes(); !ok || len(v) != 2 {
		t.Errorf("Bytes round trip failed: %v %v", v, ok)
	}
	now := time.Now()
	if v, ok := Time(now).AsTime(); !ok || v.UnixNano() != now.UnixNano() {
		t.Errorf("Time round trip failed: %v %v", v, ok)
	}
	if v, ok := Strings([]string{"a", "b"}).AsStrings(); !ok || len(v) != 2 {
		t.Errorf("Strings round trip failed: %v %v", v, ok)
	}
}

func TestZeroValueIsInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Fatal("zero Value should be invalid")
	}
	if v.Kind() != KindInvalid {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
	if v.Truthy() {
		t.Fatal("zero Value should not be truthy")
	}
}

func TestNumericCoercion(t *testing.T) {
	if v, ok := Float(42).AsInt(); !ok || v != 42 {
		t.Errorf("Float(42).AsInt() = %v, %v", v, ok)
	}
	if _, ok := Float(42.5).AsInt(); ok {
		t.Error("Float(42.5).AsInt() should fail")
	}
	if v, ok := Int(3).AsFloat(); !ok || v != 3.0 {
		t.Errorf("Int(3).AsFloat() = %v, %v", v, ok)
	}
	if _, ok := String("3").AsInt(); ok {
		t.Error("String should not coerce to int")
	}
}

func TestBytesAreCopied(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 99
	got, _ := v.AsBytes()
	if got[0] != 1 {
		t.Fatal("Bytes did not copy its input")
	}
	got[1] = 99
	got2, _ := v.AsBytes()
	if got2[1] != 2 {
		t.Fatal("AsBytes did not copy its output")
	}
}

func TestStringsAreCopied(t *testing.T) {
	src := []string{"a", "b"}
	v := Strings(src)
	src[0] = "mutated"
	got, _ := v.AsStrings()
	if got[0] != "a" {
		t.Fatal("Strings did not copy its input")
	}
}

func TestTruthy(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Bool(true), true},
		{Bool(false), false},
		{Int(0), false},
		{Int(1), true},
		{Float(0), false},
		{Float(0.1), true},
		{String(""), false},
		{String("x"), true},
		{Bytes(nil), false},
		{Bytes([]byte{0}), true},
		{Strings(nil), false},
		{Strings([]string{"a"}), true},
		{Time(time.Unix(1, 0)), true},
	}
	for _, tt := range tests {
		if got := tt.v.Truthy(); got != tt.want {
			t.Errorf("%v.Truthy() = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Int(5).Equal(Float(5)) {
		t.Error("Int(5) should equal Float(5)")
	}
	if Int(5).Equal(Float(5.5)) {
		t.Error("Int(5) should not equal Float(5.5)")
	}
	if !Bytes([]byte{1, 2}).Equal(Bytes([]byte{1, 2})) {
		t.Error("equal bytes should be Equal")
	}
	if Bytes([]byte{1}).Equal(Bytes([]byte{2})) {
		t.Error("different bytes should not be Equal")
	}
	if !Strings([]string{"a"}).Equal(Strings([]string{"a"})) {
		t.Error("equal string lists should be Equal")
	}
	if Strings([]string{"a"}).Equal(Strings([]string{"a", "b"})) {
		t.Error("different length lists should not be Equal")
	}
	if String("1").Equal(Int(1)) {
		t.Error("string should not equal int")
	}
	if !Invalid().Equal(Invalid()) {
		t.Error("invalid should equal invalid")
	}
}

func TestCompare(t *testing.T) {
	cmp := func(a, b Value) int {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil {
			t.Fatalf("Compare(%v, %v): %v", a, b, err)
		}
		return c
	}
	if cmp(Int(1), Int(2)) != -1 || cmp(Int(2), Int(1)) != 1 || cmp(Int(2), Int(2)) != 0 {
		t.Error("int comparison wrong")
	}
	if cmp(Int(1), Float(1.5)) != -1 {
		t.Error("mixed numeric comparison wrong")
	}
	if cmp(String("a"), String("b")) != -1 {
		t.Error("string comparison wrong")
	}
	if cmp(Bool(false), Bool(true)) != -1 {
		t.Error("bool comparison wrong")
	}
	early, late := Time(time.Unix(1, 0)), Time(time.Unix(2, 0))
	if cmp(early, late) != -1 || cmp(late, early) != 1 || cmp(early, early) != 0 {
		t.Error("time comparison wrong")
	}
	if cmp(Bytes([]byte{1}), Bytes([]byte{2})) != -1 {
		t.Error("bytes comparison wrong")
	}
	if _, err := String("a").Compare(Int(1)); err == nil {
		t.Error("mixed-kind comparison should error")
	}
	if _, err := Strings(nil).Compare(Strings(nil)); err == nil {
		t.Error("strings comparison should error (no order)")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	vals := []Value{
		Invalid(),
		Bool(true),
		Bool(false),
		Int(0),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(3.14159),
		Float(math.Inf(1)),
		String(""),
		String("hello world"),
		Bytes(nil),
		Bytes([]byte{0, 1, 2, 255}),
		Time(time.Unix(1017619200, 12345)),
		Strings(nil),
		Strings([]string{"", "a", "long string with spaces"}),
	}
	for _, v := range vals {
		enc := v.AppendBinary(nil)
		got, n, err := DecodeBinary(enc)
		if err != nil {
			t.Errorf("decode %v: %v", v, err)
			continue
		}
		if n != len(enc) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(enc))
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestBinaryDecodeConcatenated(t *testing.T) {
	var enc []byte
	enc = Int(7).AppendBinary(enc)
	enc = String("x").AppendBinary(enc)
	v1, n1, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v1.AsInt(); i != 7 {
		t.Fatalf("first value = %v", v1)
	}
	v2, _, err := DecodeBinary(enc[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v2.AsString(); s != "x" {
		t.Fatalf("second value = %v", v2)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(KindBool)},
		{byte(KindFloat), 1, 2},
		{byte(KindString), 5, 'a'},
		{byte(KindBytes), 200},
		{byte(KindStrings), 3, 10, 'x'},
		{250},
	}
	for _, b := range bad {
		if _, _, err := DecodeBinary(b); err == nil {
			t.Errorf("DecodeBinary(%v) should fail", b)
		}
	}
}

func TestMapRoundTrip(t *testing.T) {
	m := Map{
		"load":  Float(0.25),
		"name":  String("node-1"),
		"subs":  Bytes([]byte{0xff, 0x00}),
		"alive": Bool(true),
		"reps":  Strings([]string{"a:1", "b:2"}),
	}
	enc := m.AppendBinary(nil)
	got, n, err := DecodeMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch: %v vs %v", got, m)
	}
}

func TestMapEncodingDeterministic(t *testing.T) {
	m := Map{"b": Int(2), "a": Int(1), "c": Int(3)}
	e1 := m.AppendBinary(nil)
	e2 := m.Clone().AppendBinary(nil)
	if string(e1) != string(e2) {
		t.Fatal("map encoding not deterministic")
	}
}

func TestMapClone(t *testing.T) {
	m := Map{"a": Int(1)}
	cp := m.Clone()
	cp["a"] = Int(2)
	if v, _ := m["a"].AsInt(); v != 1 {
		t.Fatal("Clone aliases the original map")
	}
}

func TestMapEqual(t *testing.T) {
	a := Map{"x": Int(1)}
	b := Map{"x": Float(1)}
	if !a.Equal(b) {
		t.Error("numerically equal maps should be Equal")
	}
	c := Map{"x": Int(1), "y": Int(2)}
	if a.Equal(c) {
		t.Error("different-size maps should not be Equal")
	}
	d := Map{"z": Int(1)}
	if a.Equal(d) {
		t.Error("different-key maps should not be Equal")
	}
}

func TestMapDecodeErrors(t *testing.T) {
	m := Map{"key": Int(1)}
	enc := m.AppendBinary(nil)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeMap(enc[:cut]); err == nil {
			t.Errorf("truncated map at %d should fail to decode", cut)
		}
	}
}

// Property: every int value round-trips through the binary codec.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		got, n, err := DecodeBinary(v.AppendBinary(nil))
		if err != nil || n == 0 {
			return false
		}
		gi, ok := got.AsInt()
		return ok && gi == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every string value round-trips through the binary codec.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		got, _, err := DecodeBinary(String(s).AppendBinary(nil))
		if err != nil {
			return false
		}
		gs, ok := got.AsString()
		return ok && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every byte payload round-trips through the binary codec.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		got, _, err := DecodeBinary(Bytes(b).AppendBinary(nil))
		if err != nil {
			return false
		}
		gb, ok := got.AsBytes()
		if !ok || len(gb) != len(b) {
			return false
		}
		for i := range b {
			if gb[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric for ints.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Int(a).Compare(Int(b))
		y, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary maps of string->int round-trip.
func TestQuickMapRoundTrip(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		m := make(Map)
		for i, k := range keys {
			if i < len(vals) {
				m[k] = Int(vals[i])
			}
		}
		got, _, err := DecodeMap(m.AppendBinary(nil))
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryMarshalerRoundTrip(t *testing.T) {
	v := String("hello")
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Value
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: %v != %v", got, v)
	}
	if err := got.UnmarshalBinary(append(data, 0xFF)); err == nil {
		t.Fatal("trailing bytes should be rejected")
	}
}

func TestRawBytes(t *testing.T) {
	v := Bytes([]byte{1, 2, 3})
	raw, ok := v.RawBytes()
	if !ok || len(raw) != 3 {
		t.Fatalf("RawBytes = %v, %v", raw, ok)
	}
	if _, ok := Int(1).RawBytes(); ok {
		t.Fatal("RawBytes on int should fail")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Invalid(), "<invalid>"},
		{Bool(true), "true"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{String("x"), `"x"`},
		{Bytes([]byte{1, 2}), "bytes[2]"},
		{Strings([]string{"a", "b"}), "[a,b]"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.v.Kind(), got, tt.want)
		}
	}
	ts := Time(time.Date(2002, 4, 1, 0, 0, 0, 0, time.UTC))
	if ts.String() == "" {
		t.Error("time String empty")
	}
}
