package wire

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

func sampleMulticastMessage() *Message {
	return &Message{
		Kind: KindMulticast,
		From: "publisher:9000",
		Multicast: &Multicast{
			TargetZone: "/usa/ny",
			Hops:       2,
			Deliver:    true,
			Envelope: ItemEnvelope{
				Publisher: "reuters",
				ItemID:    "item-42",
				Revision:  1,
				Subjects:  []string{"tech/linux"},
				Urgency:   3,
				Published: time.Unix(1017619200, 0).UTC(),
				Payload:   []byte("<nitf>frame round-trip</nitf>"),
			},
		},
	}
}

func TestFrameRoundTripBothCodecs(t *testing.T) {
	for _, gob := range []bool{false, true} {
		SetGobFallback(gob)
		t.Cleanup(func() { SetGobFallback(false) })

		m := sampleMulticastMessage()
		f, err := NewFrame(m, "hub:1")
		if err != nil {
			t.Fatalf("gob=%v: NewFrame: %v", gob, err)
		}
		if f.IsZero() {
			t.Fatalf("gob=%v: frame is zero", gob)
		}
		if f.Len() != FramePrefixLen+f.PayloadLen() {
			t.Fatalf("gob=%v: Len %d != prefix %d + payload %d",
				gob, f.Len(), FramePrefixLen, f.PayloadLen())
		}
		size := binary.BigEndian.Uint32(f.Bytes()[:FramePrefixLen])
		if int(size) != f.PayloadLen() {
			t.Fatalf("gob=%v: prefix says %d bytes, payload is %d", gob, size, f.PayloadLen())
		}

		got, err := Decode(f.Payload())
		if err != nil {
			t.Fatalf("gob=%v: Decode: %v", gob, err)
		}
		if got.From != "hub:1" {
			t.Errorf("gob=%v: From = %q, want the stamped sender %q", gob, got.From, "hub:1")
		}
		if got.Multicast == nil || got.Multicast.Envelope.Key() != m.Multicast.Envelope.Key() {
			t.Errorf("gob=%v: envelope did not round-trip", gob)
		}
		if !bytes.Equal(got.Multicast.Envelope.Payload, m.Multicast.Envelope.Payload) {
			t.Errorf("gob=%v: payload did not round-trip", gob)
		}

		// The frame payload must equal what the peer-facing Encode path
		// would produce for the stamped sender, so readers cannot tell
		// the shared-frame and per-peer-encode paths apart.
		mm := *m
		mm.From = "hub:1"
		want, err := Encode(&mm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Payload(), want) {
			t.Errorf("gob=%v: frame payload differs from Encode output", gob)
		}
	}
}

// TestFrameStampsWithoutMutatingSource is the regression test for the
// transport data race this frame type fixed: TCP.Send used to write
// msg.From before encoding, racing when one message fanned out to many
// peers. NewFrame must stamp the sender into the encoded bytes only.
func TestFrameStampsWithoutMutatingSource(t *testing.T) {
	for _, gob := range []bool{false, true} {
		SetGobFallback(gob)
		t.Cleanup(func() { SetGobFallback(false) })

		m := sampleMulticastMessage()
		m.From = "original-sender"
		f, err := NewFrame(m, "hub:1")
		if err != nil {
			t.Fatalf("gob=%v: NewFrame: %v", gob, err)
		}
		if m.From != "original-sender" {
			t.Fatalf("gob=%v: NewFrame mutated msg.From to %q", gob, m.From)
		}
		got, err := Decode(f.Payload())
		if err != nil {
			t.Fatal(err)
		}
		if got.From != "hub:1" {
			t.Errorf("gob=%v: decoded From = %q, want %q", gob, got.From, "hub:1")
		}
	}
}

// TestFrameConcurrentEncodeSameMessage fans one shared message out to
// many concurrent NewFrame calls; run with -race it proves the encoders
// never write to the source message.
func TestFrameConcurrentEncodeSameMessage(t *testing.T) {
	for _, gob := range []bool{false, true} {
		SetGobFallback(gob)
		t.Cleanup(func() { SetGobFallback(false) })

		m := sampleMulticastMessage()
		want, err := NewFrame(m, "hub:1")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, err := NewFrame(m, "hub:1")
				if err != nil {
					t.Errorf("gob=%v: NewFrame: %v", gob, err)
					return
				}
				if !bytes.Equal(f.Bytes(), want.Bytes()) {
					t.Errorf("gob=%v: concurrent NewFrame produced different bytes", gob)
				}
			}()
		}
		wg.Wait()
	}
}

func TestFrameRejectsInvalidMessage(t *testing.T) {
	if _, err := NewFrame(&Message{Kind: KindMulticast}, "hub:1"); err == nil {
		t.Fatal("NewFrame accepted a multicast message with no payload")
	}
}
