package multicast

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"newswire/internal/transport"
	"newswire/internal/wire"
)

// Strategy selects the order in which a forwarding component drains its
// per-destination queues (§9: "a set of forwarding queues, one for each of
// the representatives at a child zone. The best strategy to fill queues is
// still under research. We are experimenting with weighted round-robin
// strategies, as well as some more aggressive techniques"). Ablation A1
// compares these strategies.
type Strategy int

// Queue drain strategies.
const (
	// FIFO drains messages strictly in global arrival order.
	FIFO Strategy = iota + 1
	// WeightedRoundRobin cycles across destination queues, taking a
	// burst proportional to each destination's weight.
	WeightedRoundRobin
	// UrgencyFirst drains the most urgent item first (the "more
	// aggressive" end of the paper's spectrum): urgency 1 beats 8, ties
	// break by arrival order.
	UrgencyFirst
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case WeightedRoundRobin:
		return "wrr"
	case UrgencyFirst:
		return "urgency"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

type queued struct {
	to      string
	msg     *wire.Message
	urgency int
	seq     int64
}

// ForwardQueue is a bounded forwarding component: Enqueue accepts
// messages, Drain transmits them according to the strategy. It models the
// limited egress capacity of a forwarding node so experiments can observe
// queueing behaviour under load.
type ForwardQueue struct {
	mu       sync.Mutex
	strategy Strategy
	tr       transport.Transport
	perDest  map[string][]*queued
	order    []string // destination round-robin order
	rrIndex  int
	credit   int // remaining WRR burst for the current destination
	weights  map[string]int
	capacity int
	seq      int64
	size     int
	dropped  int64
	sent     int64
}

// NewForwardQueue creates a queue with the given drain strategy and total
// capacity (messages across all destinations; overflow drops the newest —
// the protection "from flooding by publishers", §8).
func NewForwardQueue(tr transport.Transport, strategy Strategy, capacity int) (*ForwardQueue, error) {
	switch strategy {
	case FIFO, WeightedRoundRobin, UrgencyFirst:
	default:
		return nil, fmt.Errorf("multicast: unknown strategy %d", strategy)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("multicast: queue capacity must be positive")
	}
	return &ForwardQueue{
		strategy: strategy,
		tr:       tr,
		perDest:  make(map[string][]*queued),
		weights:  make(map[string]int),
		capacity: capacity,
	}, nil
}

// SetWeight assigns a WRR weight to a destination (default 1).
func (q *ForwardQueue) SetWeight(dest string, w int) {
	if w < 1 {
		w = 1
	}
	q.mu.Lock()
	q.weights[dest] = w
	q.mu.Unlock()
}

// Sender returns a multicast.Sender that enqueues instead of transmitting
// immediately, for wiring into Router Config.
func (q *ForwardQueue) Sender() Sender {
	return func(to string, msg *wire.Message) error {
		return q.Enqueue(to, msg)
	}
}

// Enqueue adds a message for a destination; if the queue is full the
// message is dropped and counted.
func (q *ForwardQueue) Enqueue(to string, msg *wire.Message) error {
	urgency := urgencyOf(msg)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size >= q.capacity {
		q.dropped++
		return nil
	}
	q.seq++
	item := &queued{to: to, msg: msg, urgency: urgency, seq: q.seq}
	if _, known := q.perDest[to]; !known {
		q.order = append(q.order, to)
	}
	items := append(q.perDest[to], item)
	if q.strategy == UrgencyFirst {
		// Keep each destination queue sorted by (urgency, arrival) so an
		// urgent item overtakes queued routine traffic to the same
		// destination, not just traffic to other destinations.
		i := len(items) - 1
		for i > 0 && (items[i-1].urgency > item.urgency) {
			items[i] = items[i-1]
			i--
		}
		items[i] = item
	}
	q.perDest[to] = items
	q.size++
	return nil
}

// urgencyOf extracts the editorial urgency from a multicast message.
func urgencyOf(msg *wire.Message) int {
	if msg.Multicast == nil {
		return 8
	}
	u := msg.Multicast.Envelope.Urgency
	if u < 1 || u > 8 {
		return 8
	}
	return u
}

// Len returns the number of queued messages.
func (q *ForwardQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Counters returns (sent, dropped) totals.
func (q *ForwardQueue) Counters() (sent, dropped int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sent, q.dropped
}

// Drain transmits up to n queued messages according to the strategy and
// returns how many were sent.
func (q *ForwardQueue) Drain(n int) int {
	sent := 0
	for sent < n {
		item := q.next()
		if item == nil {
			break
		}
		_ = q.tr.Send(item.to, item.msg)
		sent++
		q.mu.Lock()
		q.sent++
		q.mu.Unlock()
	}
	return sent
}

// next pops the next message per the strategy, or nil when empty.
func (q *ForwardQueue) next() *queued {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return nil
	}
	switch q.strategy {
	case FIFO:
		return q.popFIFOLocked()
	case UrgencyFirst:
		return q.popUrgencyLocked()
	default:
		return q.popWRRLocked()
	}
}

func (q *ForwardQueue) popFIFOLocked() *queued {
	var best *queued
	var bestDest string
	for dest, items := range q.perDest {
		if len(items) == 0 {
			continue
		}
		if best == nil || items[0].seq < best.seq {
			best = items[0]
			bestDest = dest
		}
	}
	if best != nil {
		q.removeHeadLocked(bestDest)
	}
	return best
}

func (q *ForwardQueue) popUrgencyLocked() *queued {
	var best *queued
	var bestDest string
	for dest, items := range q.perDest {
		if len(items) == 0 {
			continue
		}
		head := items[0]
		if best == nil || head.urgency < best.urgency ||
			(head.urgency == best.urgency && head.seq < best.seq) {
			best = head
			bestDest = dest
		}
	}
	if best != nil {
		q.removeHeadLocked(bestDest)
	}
	return best
}

// popWRRLocked implements classic weighted round-robin: the current
// destination may send up to weight consecutive messages (its credit)
// before the rotation advances.
func (q *ForwardQueue) popWRRLocked() *queued {
	if len(q.order) == 0 {
		return nil
	}
	for tries := 0; tries < 2*len(q.order)+2; tries++ {
		dest := q.order[q.rrIndex%len(q.order)]
		items := q.perDest[dest]
		if q.credit > 0 && len(items) > 0 {
			q.credit--
			head := items[0]
			q.removeHeadLocked(dest)
			return head
		}
		// Advance the rotation and grant the next destination its burst.
		q.rrIndex = (q.rrIndex + 1) % len(q.order)
		w := q.weights[q.order[q.rrIndex]]
		if w < 1 {
			w = 1
		}
		q.credit = w
	}
	return nil
}

func (q *ForwardQueue) removeHeadLocked(dest string) {
	items := q.perDest[dest]
	copy(items, items[1:])
	items[len(items)-1] = nil
	q.perDest[dest] = items[:len(items)-1]
	q.size--
}

// pendingForward is one unacknowledged reliable forward in the retransmit
// queue: everything needed to resend it, plus the routing context (the
// parent table zone and child row name) needed to fail over to an
// alternate representative when the current destination stays silent.
type pendingForward struct {
	seq     uint64
	addr    string         // current destination
	zone    string         // table consulted for the forward (failover re-reads it)
	rowName string         // row within zone the destination came from
	msg     wire.Multicast // the forward, resent verbatim (AckSeq = seq)
	attempt int            // transmissions so far (1 = the initial send)
	tried   map[string]bool

	// fan, when non-nil, marks a shared-frame fan-out: one encoded frame,
	// one sequence number, many recipients. Keys are the recipient
	// addresses still unacknowledged; values are the row names their
	// addresses came from, so a retry can re-consult the table. The entry
	// resolves when every recipient has acked; a deadline hands each
	// silent recipient to the per-destination retransmit path. addr and
	// tried are unused while fan is non-nil.
	fan map[string]string
}

// retransmitQueue tracks unacknowledged reliable forwards by sequence
// number. It is a passive table: the Router registers entries, schedules
// deadline callbacks, and either an ack (ack) or a deadline (take) removes
// each entry exactly once — whichever arrives first wins, which keeps
// retransmits and acks race-free under concurrent transports.
type retransmitQueue struct {
	mu      sync.Mutex
	limit   int
	seq     uint64
	pending map[uint64]*pendingForward
}

func newRetransmitQueue(limit int) *retransmitQueue {
	return &retransmitQueue{limit: limit, pending: make(map[uint64]*pendingForward)}
}

// register assigns a sequence number to p and inserts it, unless the table
// is full (the forward then degrades to fire-and-forget).
func (q *retransmitQueue) register(p *pendingForward) (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) >= q.limit {
		return 0, false
	}
	q.seq++
	p.seq = q.seq
	p.msg.AckSeq = p.seq
	q.pending[p.seq] = p
	return p.seq, true
}

// ack resolves seq if it is still pending and the ack's key matches the
// registered forward (a stale or misdirected ack must not clear someone
// else's entry). For a fan-out entry the ack retires only the sender's
// slot; the entry itself stays pending until every recipient has acked.
// It returns the matched entry, or nil.
func (q *retransmitQueue) ack(seq uint64, key, from string) *pendingForward {
	q.mu.Lock()
	defer q.mu.Unlock()
	p, ok := q.pending[seq]
	if !ok || p.msg.Envelope.Key() != key {
		return nil
	}
	if p.fan != nil {
		if _, waiting := p.fan[from]; !waiting {
			return nil // duplicate or misdirected ack
		}
		delete(p.fan, from)
		if len(p.fan) > 0 {
			return p
		}
	}
	delete(q.pending, seq)
	return p
}

// take removes and returns the entry for seq so the caller can retransmit
// it (re-registering under the same seq via reinsert), or nil if an ack
// already resolved it.
func (q *retransmitQueue) take(seq uint64) *pendingForward {
	q.mu.Lock()
	defer q.mu.Unlock()
	p, ok := q.pending[seq]
	if !ok {
		return nil
	}
	delete(q.pending, seq)
	return p
}

// reinsert puts a taken entry back under its existing seq, for the next
// attempt's deadline. Acks arriving for any earlier attempt still resolve
// it — the seq is stable across retries.
func (q *retransmitQueue) reinsert(p *pendingForward) {
	q.mu.Lock()
	q.pending[p.seq] = p
	q.mu.Unlock()
}

// scramble drops a fraction of the pending forwards (chaos injection).
// Entries are visited in ascending sequence order so identically seeded
// runs drop identically; a dropped entry's deadline callback finds nothing
// to take and becomes a no-op.
func (q *retransmitQueue) scramble(rng *rand.Rand, frac float64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	seqs := make([]uint64, 0, len(q.pending))
	for seq := range q.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	dropped := 0
	for _, seq := range seqs {
		if rng.Float64() < frac {
			delete(q.pending, seq)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of in-flight reliable forwards.
func (q *retransmitQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}
