#!/usr/bin/env bash
# obs_smoke.sh — live observability smoke test (CI obs-smoke job).
#
# Boots a 3-process newswired mini-cluster on loopback, publishes one
# item through newswire-pub, then drives newswire-loadgen -collect as an
# external observability client against the nodes' HTTP endpoints. The
# collector fails the script unless:
#
#   1. every node serves a converged /cluster-health.json rollup (>= 3
#      members visible from each node's own replicated table), and
#   2. the published item's spans, fetched from the nodes' /trace.json
#      endpoints and joined by trace ID, cover at least two distinct
#      processes (a real cross-process hop-by-hop trace), with
#      timestamps rebased through the transports' measured clock
#      offsets.
#
# Artifacts (node logs, collector output) land in artifacts/obs-smoke/.
set -euo pipefail

cd "$(dirname "$0")/.."
ART=artifacts/obs-smoke
mkdir -p "$ART" bin

go build -o bin/newswired ./cmd/newswired
go build -o bin/newswire-pub ./cmd/newswire-pub
go build -o bin/newswire-loadgen ./cmd/newswire-loadgen

P1=19411 P2=19412 P3=19413
H1=19421 H2=19422 H3=19423
PIDS=()

cleanup() {
  status=$?
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  if [ $status -ne 0 ]; then
    echo "=== obs-smoke FAILED (exit $status); node logs follow ==="
    tail -n 40 "$ART"/node*.log 2>/dev/null || true
  fi
  exit $status
}
trap cleanup EXIT

# A short gossip interval keeps convergence inside CI patience; health
# digests every 2 ticks exercises the telemetry cadence flag.
COMMON=(-interval 500ms -subscribe tech/linux -log-json -health-every 2)
bin/newswired -listen 127.0.0.1:$P1 -http 127.0.0.1:$H1 -zone /usa/ny \
  "${COMMON[@]}" >"$ART/node1.log" 2>&1 &
PIDS+=($!)
bin/newswired -listen 127.0.0.1:$P2 -http 127.0.0.1:$H2 -zone /usa/ny \
  -peers 127.0.0.1:$P1 "${COMMON[@]}" >"$ART/node2.log" 2>&1 &
PIDS+=($!)
bin/newswired -listen 127.0.0.1:$P3 -http 127.0.0.1:$H3 -zone /usa/sf \
  -peers 127.0.0.1:$P1 "${COMMON[@]}" >"$ART/node3.log" 2>&1 &
PIDS+=($!)

for port in $H1 $H2 $H3; do
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$port/status.json" >/dev/null 2>&1; then
      break
    fi
    sleep 0.2
  done
done
echo "obs-smoke: 3 nodes up (gossip :$P1-:$P3, http :$H1-:$H3)"

# Publish one item through a transient bootstrap node; -settle gives the
# cluster gossip rounds to propagate subscriptions before the publish and
# to route the multicast after it.
PUB_OUT=$(bin/newswire-pub -peers 127.0.0.1:$P1 -zone /usa/ny \
  -publisher reuters -subject tech/linux -id obs-smoke-1 \
  -headline "observability smoke item" -settle 6s)
echo "$PUB_OUT" | tee "$ART/pub.log"
KEY=$(echo "$PUB_OUT" | sed -n 's/^published \([^:]*\):.*/\1/p' | head -n 1)
if [ -z "$KEY" ]; then
  echo "obs-smoke: could not parse published key from newswire-pub output" >&2
  exit 1
fi

# The collector: health convergence on every node, cross-process trace
# join for the published key, offset-corrected slowest-path report.
bin/newswire-loadgen -collect \
  -nodes "127.0.0.1:$H1,127.0.0.1:$H2,127.0.0.1:$H3" \
  -expect-nodes 3 -collect-timeout 60s -key "$KEY" \
  2>&1 | tee "$ART/collect.log"

echo "obs-smoke: OK"
