package query

import (
	"strings"
	"time"

	"newswire/internal/value"
)

// expr is one node of the parsed predicate. Every node renders itself
// canonically (append), evaluates exactly against a metadata row (match),
// and contributes a sound routing cover (cover, signature.go).
type expr interface {
	append(sb *strings.Builder)
	match(row value.Map) bool
	cover() Cover
}

// boolLit is a TRUE/FALSE literal predicate.
type boolLit bool

func (b boolLit) append(sb *strings.Builder) {
	if b {
		sb.WriteString("TRUE")
	} else {
		sb.WriteString("FALSE")
	}
}

func (b boolLit) match(value.Map) bool { return bool(b) }

// binExpr is AND (or=false) or OR (or=true).
type binExpr struct {
	or   bool
	l, r expr
}

func (e *binExpr) append(sb *strings.Builder) {
	sb.WriteByte('(')
	e.l.append(sb)
	if e.or {
		sb.WriteString(" OR ")
	} else {
		sb.WriteString(" AND ")
	}
	e.r.append(sb)
	sb.WriteByte(')')
}

func (e *binExpr) match(row value.Map) bool {
	if e.or {
		return e.l.match(row) || e.r.match(row)
	}
	return e.l.match(row) && e.r.match(row)
}

// notExpr is logical negation.
type notExpr struct{ x expr }

func (e *notExpr) append(sb *strings.Builder) {
	sb.WriteString("(NOT ")
	e.x.append(sb)
	sb.WriteByte(')')
}

func (e *notExpr) match(row value.Map) bool { return !e.x.match(row) }

// cmpExpr is field op literal, op one of = != < <= > >=.
type cmpExpr struct {
	f   fieldInfo
	op  string
	lit literal
}

func (e *cmpExpr) append(sb *strings.Builder) {
	sb.WriteString(e.f.name)
	sb.WriteByte(' ')
	sb.WriteString(e.op)
	sb.WriteByte(' ')
	e.lit.append(sb)
}

func (e *cmpExpr) match(row value.Map) bool {
	switch e.f.typ {
	case ftStrings:
		elems, ok := row[e.f.name].AsStrings()
		if !ok {
			return false
		}
		// Existential: = is "some element equals", != its negation.
		for _, s := range elems {
			if s == e.lit.s {
				return e.op == "="
			}
		}
		return e.op == "!="
	case ftString:
		s, ok := row[e.f.name].AsString()
		if !ok {
			return false
		}
		if e.op == "=" {
			return s == e.lit.s
		}
		return s != e.lit.s
	case ftInt:
		n, ok := row[e.f.name].AsInt()
		if !ok {
			return false
		}
		return cmpOrdered(e.op, compareInt(n, e.lit.i))
	case ftTime:
		t, ok := row[e.f.name].AsTime()
		if !ok {
			return false
		}
		return cmpOrdered(e.op, compareTime(t, e.lit.t))
	}
	return false
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareTime(a, b time.Time) int {
	switch {
	case a.Before(b):
		return -1
	case a.After(b):
		return 1
	default:
		return 0
	}
}

func cmpOrdered(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// inExpr is field [NOT] IN (lits).
type inExpr struct {
	f    fieldInfo
	lits []literal
	neg  bool
}

func (e *inExpr) append(sb *strings.Builder) {
	sb.WriteString(e.f.name)
	if e.neg {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, lit := range e.lits {
		if i > 0 {
			sb.WriteString(", ")
		}
		lit.append(sb)
	}
	sb.WriteByte(')')
}

func (e *inExpr) match(row value.Map) bool {
	hit := false
	switch e.f.typ {
	case ftStrings:
		elems, ok := row[e.f.name].AsStrings()
		if !ok {
			return false
		}
	scan:
		for _, s := range elems {
			for _, lit := range e.lits {
				if s == lit.s {
					hit = true
					break scan
				}
			}
		}
	case ftString:
		s, ok := row[e.f.name].AsString()
		if !ok {
			return false
		}
		for _, lit := range e.lits {
			if s == lit.s {
				hit = true
				break
			}
		}
	case ftInt:
		n, ok := row[e.f.name].AsInt()
		if !ok {
			return false
		}
		for _, lit := range e.lits {
			if n == lit.i {
				hit = true
				break
			}
		}
	case ftTime:
		t, ok := row[e.f.name].AsTime()
		if !ok {
			return false
		}
		for _, lit := range e.lits {
			if t.Equal(lit.t) {
				hit = true
				break
			}
		}
	}
	return hit != e.neg
}

// likeExpr is field [NOT] LIKE 'pattern' with SQL % and _ wildcards.
type likeExpr struct {
	f       fieldInfo
	pattern string
	neg     bool
}

func (e *likeExpr) append(sb *strings.Builder) {
	sb.WriteString(e.f.name)
	if e.neg {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" LIKE ")
	quoteString(sb, e.pattern)
}

func (e *likeExpr) match(row value.Map) bool {
	hit := false
	if e.f.typ == ftStrings {
		elems, ok := row[e.f.name].AsStrings()
		if !ok {
			return false
		}
		for _, s := range elems {
			if likeMatch(e.pattern, s) {
				hit = true
				break
			}
		}
	} else {
		s, ok := row[e.f.name].AsString()
		if !ok {
			return false
		}
		hit = likeMatch(e.pattern, s)
	}
	return hit != e.neg
}

// likeMatch implements SQL LIKE: % matches any run (including empty), _
// matches exactly one byte, everything else matches itself. Iterative
// backtracking over the last %, the classic wildcard algorithm — linear
// in practice, worst-case O(len(p)·len(s)).
func likeMatch(pattern, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star, mark = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// betweenExpr is field [NOT] BETWEEN lo AND hi (inclusive both ends).
type betweenExpr struct {
	f      fieldInfo
	lo, hi literal
	neg    bool
}

func (e *betweenExpr) append(sb *strings.Builder) {
	sb.WriteString(e.f.name)
	if e.neg {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" BETWEEN ")
	e.lo.append(sb)
	sb.WriteString(" AND ")
	e.hi.append(sb)
}

func (e *betweenExpr) match(row value.Map) bool {
	hit := false
	if e.f.typ == ftInt {
		n, ok := row[e.f.name].AsInt()
		if !ok {
			return false
		}
		hit = n >= e.lo.i && n <= e.hi.i
	} else { // ftTime
		t, ok := row[e.f.name].AsTime()
		if !ok {
			return false
		}
		hit = !t.Before(e.lo.t) && !t.After(e.hi.t)
	}
	return hit != e.neg
}

// Match evaluates the predicate exactly against an item-metadata row
// (pubsub.ItemMetadataRow's shape). A missing or mistyped field makes the
// atom reading it false, negated forms included.
func (p *Predicate) Match(row value.Map) bool { return p.expr.match(row) }
