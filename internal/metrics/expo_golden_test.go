package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestWriteToGolden freezes the Prometheus 0.0.4 exposition format
// byte-for-byte: family ordering, TYPE lines, label rendering and
// escaping, histogram-as-summary quantiles, and integral-vs-float value
// formatting. Scrapers parse this text; any change here is a contract
// change and must be deliberate (regenerate with `go test -run
// TestWriteToGolden -update`).
func TestWriteToGolden(t *testing.T) {
	reg := NewRegistry()

	reg.Counter("newswire_plain_total").Add(42)
	reg.CounterWith("newswire_labeled_total", L("peer", "ny-1"), L("zone", "/usa/ny")).Add(7)
	reg.CounterWith("newswire_labeled_total", L("peer", "sf-1"), L("zone", "/usa/sf")).Add(9)
	// Label values with characters the format requires escaping.
	reg.CounterWith("newswire_escaped_total", L("key", `quote " slash \ newline`+"\n")).Inc()
	reg.Gauge("newswire_queue_depth").Set(12)
	reg.Gauge("newswire_fill_ratio").Set(0.375)

	h := reg.Histogram("newswire_latency_seconds")
	for _, v := range []float64{0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	n, err := reg.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	golden := filepath.Join("testdata", "expo.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s (regenerate with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
