package wire

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"newswire/internal/value"
)

// SharedRow is one immutable MIB row shared by reference. An agent that
// merges a gossiped row installs a pointer to the sender's SharedRow
// instead of deep-copying the attributes, so an identical foreign row
// replicated across a hundred thousand agents costs one allocation, not
// one per replica.
//
// The invariant that makes this safe: rows are immutable once shared.
// Nobody mutates a SharedRow's fields after it becomes reachable by a
// second goroutine; writers build a fresh SharedRow (cloning the Attrs
// map if they change it) and swap the pointer. The derived caches below
// are the only mutable state, and they are idempotent: every computation
// yields the same bytes, so racing initializers are harmless.
type SharedRow struct {
	// Name identifies the row within its table: a leaf node name or a
	// child zone name. (The zone is the table key, not row state.)
	Name string
	// Attrs is the row's attribute map. Read-only once the row is built.
	Attrs value.Map
	// Issued is when the row owner last wrote the row.
	Issued time.Time
	// Owner is the address of the issuing agent or aggregating
	// representative.
	Owner string
	// Signer and Sig authenticate the row (empty when signing is off).
	Signer string
	Sig    []byte

	// cache holds the lazily computed derived values: the canonical
	// attribute encoding (tie-breaks, aggregation input order), its
	// FNV-64a hash (gossip digests), and the attributes' wire-codec size
	// (byte accounting). atomic.Pointer because the parallel simulation
	// executor digests the same shared row from several goroutines; a
	// losing CAS just recomputes identical bytes.
	cache atomic.Pointer[rowCache]
}

type rowCache struct {
	enc       []byte
	hash      uint64
	wireAttrs int32
}

// encScratchPool recycles the staging buffers ensure encodes into before
// packing the result into the row arena (slab.go). Without it every first
// digest of a row would allocate a transient exact-size buffer on top of
// the slab copy.
var encScratchPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// ensure returns the row's cache, computing it on first use. The
// canonical encoding is packed into the shared row arena: rows are the
// dominant live population of a large simulation, and slab-backing their
// encodings keeps the GC scanning slabs, not rows.
func (r *SharedRow) ensure() *rowCache {
	if c := r.cache.Load(); c != nil {
		return c
	}
	scratch := encScratchPool.Get().(*[]byte)
	tmp := r.Attrs.AppendBinary((*scratch)[:0])
	c := &rowCache{
		enc:       rowArena.Copy(tmp),
		hash:      fnv64a(tmp),
		wireAttrs: int32(attrsWireSize(r.Attrs)),
	}
	if cap(tmp) <= arenaMaxCopy {
		*scratch = tmp[:0]
	}
	encScratchPool.Put(scratch)
	if !r.cache.CompareAndSwap(nil, c) {
		return r.cache.Load()
	}
	return c
}

// Encoding returns the row's canonical attribute encoding (sorted-key
// value.Map encoding). The result is shared; callers must not mutate it.
func (r *SharedRow) Encoding() []byte { return r.ensure().enc }

// AttrsHash returns the FNV-64a hash of the canonical encoding, used in
// gossip digests.
func (r *SharedRow) AttrsHash() uint64 { return r.ensure().hash }

// WireAttrsSize returns the attributes' size under the binary wire codec
// (which packs sparse byte arrays, so it is usually smaller than the
// canonical encoding).
func (r *SharedRow) WireAttrsSize() int { return int(r.ensure().wireAttrs) }

// EncLess orders two rows by their canonical encodings — the
// deterministic tie-break every replica agrees on.
func (r *SharedRow) EncLess(o *SharedRow) bool {
	return bytes.Compare(r.Encoding(), o.Encoding()) < 0
}

// AdoptCache carries o's computed caches over to r. Valid only when r's
// Attrs hold exactly the same content as o's (timestamp-only re-issues of
// an unchanged row: the steady-state heartbeat path).
func (r *SharedRow) AdoptCache(o *SharedRow) {
	if c := o.cache.Load(); c != nil {
		r.cache.CompareAndSwap(nil, c)
	}
}

// Update renders the row as a RowUpdate for the given zone, carrying the
// shared pointer so receivers on the in-memory transport can install it
// without copying.
func (r *SharedRow) Update(zone string) RowUpdate {
	return RowUpdate{
		Zone:   zone,
		Name:   r.Name,
		Attrs:  r.Attrs,
		Issued: r.Issued,
		Owner:  r.Owner,
		Signer: r.Signer,
		Sig:    r.Sig,
		shared: r,
	}
}

// Shared returns the SharedRow this update was rendered from, or nil for
// updates built field-by-field (decoded messages, tests).
func (u *RowUpdate) Shared() *SharedRow { return u.shared }

// AsShared returns a SharedRow holding this update's content: the carried
// pointer when present, otherwise a freshly built row that takes
// ownership of u.Attrs (decode paths hand the map over; it is not
// aliased elsewhere).
func (u *RowUpdate) AsShared() *SharedRow {
	if u.shared != nil {
		return u.shared
	}
	return &SharedRow{
		Name:   u.Name,
		Attrs:  u.Attrs,
		Issued: u.Issued,
		Owner:  u.Owner,
		Signer: u.Signer,
		Sig:    u.Sig,
	}
}

// fnv64a is the 64-bit FNV-1a hash, inlined to keep digest construction
// allocation-free.
func fnv64a(b []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
