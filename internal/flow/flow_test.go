package flow

import (
	"testing"
	"time"

	"newswire/internal/vtime"
)

func TestNewTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(nil, 1, 1); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewTokenBucket(vtime.Real{}, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(vtime.Real{}, 1, -1); err == nil {
		t.Error("negative burst accepted")
	}
}

func TestTokenBucketStartsFull(t *testing.T) {
	clock := vtime.NewVirtual()
	b, err := NewTokenBucket(clock, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 5 {
		t.Fatalf("Available = %v, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if !b.Allow(1) {
			t.Fatalf("burst allowance exhausted early at %d", i)
		}
	}
	if b.Allow(1) {
		t.Fatal("over-burst admitted")
	}
}

func TestTokenBucketRefills(t *testing.T) {
	clock := vtime.NewVirtual()
	b, _ := NewTokenBucket(clock, 2, 4) // 2 tokens/sec
	for b.Allow(1) {
	}
	clock.Advance(time.Second)
	if !b.Allow(2) {
		t.Fatal("refill did not credit 2 tokens after 1s")
	}
	if b.Allow(1) {
		t.Fatal("refill credited too much")
	}
	// Refill caps at burst.
	clock.Advance(time.Hour)
	if got := b.Available(); got != 4 {
		t.Fatalf("Available after long idle = %v, want burst 4", got)
	}
}

func TestTokenBucketNonPositiveCost(t *testing.T) {
	clock := vtime.NewVirtual()
	b, _ := NewTokenBucket(clock, 1, 1)
	if !b.Allow(0) || !b.Allow(-3) {
		t.Fatal("non-positive cost should always be admitted")
	}
	if got := b.Available(); got != 1 {
		t.Fatalf("non-positive cost consumed tokens: %v", got)
	}
}

func TestTokenBucketFractionalCost(t *testing.T) {
	clock := vtime.NewVirtual()
	b, _ := NewTokenBucket(clock, 1, 1)
	if !b.Allow(0.5) || !b.Allow(0.5) {
		t.Fatal("fractional costs rejected")
	}
	if b.Allow(0.1) {
		t.Fatal("empty bucket admitted")
	}
}

func TestLimiterPerKeyIsolation(t *testing.T) {
	clock := vtime.NewVirtual()
	l, err := NewLimiter(clock, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Publisher "flood" drains its own bucket.
	if !l.Allow("flood", 2) {
		t.Fatal("initial burst rejected")
	}
	if l.Allow("flood", 1) {
		t.Fatal("over-budget admitted")
	}
	// Publisher "calm" is unaffected.
	if !l.Allow("calm", 1) {
		t.Fatal("independent key throttled by another's flood")
	}
	if l.Denied("flood") != 1 {
		t.Fatalf("Denied(flood) = %d", l.Denied("flood"))
	}
	if l.Denied("calm") != 0 {
		t.Fatalf("Denied(calm) = %d", l.Denied("calm"))
	}
	if l.Keys() != 2 {
		t.Fatalf("Keys = %d", l.Keys())
	}
}

func TestLimiterValidation(t *testing.T) {
	if _, err := NewLimiter(nil, 1, 1); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewLimiter(vtime.Real{}, -1, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestLimiterRefill(t *testing.T) {
	clock := vtime.NewVirtual()
	l, _ := NewLimiter(clock, 10, 10)
	for i := 0; i < 10; i++ {
		l.Allow("p", 1)
	}
	if l.Allow("p", 1) {
		t.Fatal("drained key admitted")
	}
	clock.Advance(time.Second)
	if !l.Allow("p", 10) {
		t.Fatal("refill did not restore budget")
	}
}
