// Package sim is the discrete-event simulation substrate that stands in
// for the paper's Internet-scale deployment (see DESIGN.md §2). It provides
// a deterministic event engine driven by virtual time and a network model
// with per-link latency, loss, crash-stop failures and partitions.
//
// Protocol agents are passive state machines; the engine calls their
// handlers and tick functions in a single goroutine, so runs are exactly
// reproducible from a seed — every experiment table in EXPERIMENTS.md can
// be regenerated bit-for-bit.
package sim

import (
	"math/rand"
	"time"

	"newswire/internal/vtime"
)

// Engine is a deterministic discrete-event scheduler over virtual time.
// Events are kept in a hierarchical timer wheel (see wheel.go) ordered by
// (time, insertion sequence), exactly as the original binary heap ordered
// them.
type Engine struct {
	clock *vtime.Virtual
	rng   *rand.Rand
	wheel timerWheel
	seq   uint64
}

// NewEngine returns an engine whose clock starts at vtime.Epoch and whose
// randomness derives entirely from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		clock: vtime.NewVirtual(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Clock returns the engine's virtual clock, for handing to protocol
// components that need a vtime.Clock.
func (e *Engine) Clock() *vtime.Virtual { return e.clock }

// Rand returns the engine's deterministic random source. Only simulator-
// driven code may use it; sharing it keeps the whole run reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// After schedules fn to run d from now. Non-positive delays run at the
// current time (but still through the queue, preserving ordering).
func (e *Engine) After(d time.Duration, fn func()) {
	e.AfterOwned(noOwner, d, fn)
}

// At schedules fn at the absolute virtual time t. Times in the past are
// clamped to now.
func (e *Engine) At(t time.Time, fn func()) {
	e.AtOwned(noOwner, t, fn)
}

// noOwner marks events that are not tied to one simulated node; the
// parallel executor runs them serially, in order, on its own goroutine.
const noOwner = -1

// AfterOwned schedules fn like After and tags the event as owned by the
// executor-registered node `owner`: the event touches only that node's
// state, so parallel windows may run it concurrently with other owners'
// events. Pass noOwner (or use After) for events without that guarantee.
func (e *Engine) AfterOwned(owner int, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.AtOwned(owner, e.clock.Now().Add(d), fn)
}

// AtOwned schedules fn like At with an owner tag (see AfterOwned).
func (e *Engine) AtOwned(owner int, t time.Time, fn func()) {
	e.schedule(owner, t, fn)
}

// schedule clamps t, assigns the next sequence number and stores the
// event, returning it for callers that keep a cancellation handle.
func (e *Engine) schedule(owner int, t time.Time, fn func()) *event {
	now := e.clock.Now()
	if t.Before(now) {
		t = now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, owner: owner, fn: fn}
	e.wheel.Push(ev)
	return ev
}

// push stores an already-constructed event whose sequence number was
// assigned by the caller (the parallel executor's commit phase, which
// replicates serial sequence assignment exactly).
func (e *Engine) push(ev *event) { e.wheel.Push(ev) }

// nextSeq assigns and returns the next event sequence number; only the
// executor's commit pre-pass uses it, paired with push.
func (e *Engine) nextSeq() uint64 { e.seq++; return e.seq }

// peek returns the earliest pending event without running it, or nil.
func (e *Engine) peek() *event { return e.wheel.Peek() }

// pop removes and returns the earliest pending event, or nil.
func (e *Engine) pop() *event { return e.wheel.Pop() }

// Ticker is a recurring scheduled callback. Stop cancels future firings.
type Ticker struct {
	eng     *Engine
	pending *event
	stopped bool
}

// Stop cancels the ticker, including the already-scheduled next firing:
// its closure is released immediately (O(1), no queue search), and the
// queue drops the cancelled shell lazily when its slot drains.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.eng.wheel.cancel(t.pending)
		t.pending = nil
	}
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned Ticker is stopped. A jitter fraction j in [0,1)
// spreads firings by ±j·interval/2 so simulated nodes don't tick in
// lockstep (real gossip deployments never do).
func (e *Engine) Every(interval time.Duration, jitter float64, fn func()) *Ticker {
	t := &Ticker{eng: e}
	var schedule func()
	schedule = func() {
		d := interval
		if jitter > 0 {
			half := time.Duration(float64(interval) * jitter / 2)
			d += time.Duration(e.rng.Int63n(int64(2*half+1))) - half
		}
		if d < 0 {
			d = 0
		}
		t.pending = e.schedule(noOwner, e.clock.Now().Add(d), func() {
			if t.stopped {
				return
			}
			t.pending = nil
			fn()
			if !t.stopped {
				schedule()
			}
		})
	}
	schedule()
	return t
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	ev := e.pop()
	if ev == nil {
		return false
	}
	e.clock.SetNow(ev.at)
	fn := ev.fn
	ev.fn = nil // release the closure the moment it has fired
	fn()
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is after t; the clock ends at exactly t (or later if an event at t
// scheduled follow-ups that also ran). It returns the number of events run.
func (e *Engine) RunUntil(t time.Time) int {
	n := 0
	for {
		next := e.peek()
		if next == nil || next.at.After(t) {
			break
		}
		e.Step()
		n++
	}
	e.clock.SetNow(t)
	return n
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) int {
	return e.RunUntil(e.clock.Now().Add(d))
}

// RunUntilIdle drains the queue completely, up to a safety cap of maxEvents
// (0 means no cap). It returns the number of events run.
func (e *Engine) RunUntilIdle(maxEvents int) int {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Pending returns the number of queued (non-cancelled) events.
func (e *Engine) Pending() int { return e.wheel.Len() }

// EngineStats is a snapshot of the event queue's lifetime counters,
// exposed on /status.json for live memory diagnostics.
type EngineStats struct {
	Pending   int    `json:"pending"`   // live events queued now
	HighWater int    `json:"highWater"` // most live events ever queued
	Fired     uint64 `json:"fired"`     // events executed
	Cancelled uint64 `json:"cancelled"` // cancellations requested (Ticker.Stop)
}

// Stats returns the engine's queue counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Pending:   e.wheel.Len(),
		HighWater: e.wheel.highWater,
		Fired:     e.wheel.fired,
		Cancelled: e.wheel.stopped,
	}
}

type event struct {
	at    time.Time
	seq   uint64
	owner int // executor owner id, or noOwner
	fn    func()
}
