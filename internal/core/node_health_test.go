package core

import (
	"strings"
	"testing"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/metrics"
	"newswire/internal/news"
)

// TestClusterHealthAggregation runs a simulated cluster with health
// publication on and asserts any node can answer cluster-wide health
// questions from its own root table: total node count by SUM, a merged
// delivery-latency sketch by sketch-merge, and a worst-node election by
// MAX — the local-read property the self-monitoring plane promises.
func TestClusterHealthAggregation(t *testing.T) {
	const n = 16
	cluster, err := NewCluster(ClusterConfig{
		N: n, Seed: 5,
		Customize: func(i int, cfg *Config) {
			cfg.HealthEvery = 2
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for _, node := range cluster.Nodes {
		if err := node.Subscribe("tech/linux"); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}
	cluster.RunRounds(6)
	it := &news.Item{
		Publisher: "reuters", ID: "health-probe", Headline: "h",
		Body: "b", Subjects: []string{"tech/linux"},
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
		t.Fatalf("publish: %v", err)
	}
	cluster.RunFor(10 * time.Second)
	// Health digests publish every 2 ticks and then need rounds to
	// aggregate up and replicate back down.
	cluster.RunRounds(12)

	// Read the LAST node's root table: the publisher's telemetry must
	// have reached it through aggregation alone.
	reader := cluster.Nodes[n-1]
	rows, ok := reader.Agent().Table(astrolabe.RootZone)
	if !ok {
		t.Fatal("reader has no root table")
	}
	var totalNodes int64
	var sketchCount uint64
	worst := ""
	for _, r := range rows {
		if v, ok := r.Attrs[astrolabe.HealthSumPrefix+"nodes"].AsInt(); ok {
			totalNodes += v
		}
		if raw, ok := r.Attrs[astrolabe.HealthSketchPrefix+"dlvlat"].AsBytes(); ok {
			sk, err := metrics.DecodeSketch(raw)
			if err != nil {
				t.Fatalf("root sketch undecodable: %v", err)
			}
			sketchCount += sk.Count()
			if q := sk.Quantile(0.99); q <= 0 {
				t.Errorf("aggregated p99 = %v, want > 0", q)
			}
		}
		if s, ok := r.Attrs[astrolabe.HealthMaxPrefix+"worst"].AsString(); ok && s > worst {
			worst = s
		}
	}
	if totalNodes != n {
		t.Errorf("root health node count = %d, want %d", totalNodes, n)
	}
	// Every node but the publisher observed one delivery latency; allow
	// the tail to still be in flight but require broad coverage.
	if sketchCount < n/2 {
		t.Errorf("aggregated sketch count = %d, want >= %d", sketchCount, n/2)
	}
	if !strings.Contains(worst, "|/") {
		t.Errorf("worst-node election value %q does not name a zone path", worst)
	}
}

// TestHealthPublishQuiesces asserts the change-detection in publishHealth:
// once a node's telemetry stops changing, its health attributes stop
// re-dirtying its row (the refresh stamp only moves when the digest does).
func TestHealthPublishQuiesces(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N: 4, Seed: 9,
		Customize: func(i int, cfg *Config) {
			cfg.HealthEvery = 1
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cluster.RunRounds(8)
	node := cluster.Nodes[0]
	row, ok := node.Agent().Row(node.ZonePath(), node.Name())
	if !ok {
		t.Fatal("no own row")
	}
	stamp1, ok := row.Attrs[astrolabe.HealthMinPrefix+"refresh"].AsTime()
	if !ok {
		t.Fatal("no health refresh stamp")
	}
	// Nothing happens in these rounds, so telemetry cannot change.
	cluster.RunRounds(6)
	row, _ = node.Agent().Row(node.ZonePath(), node.Name())
	stamp2, _ := row.Attrs[astrolabe.HealthMinPrefix+"refresh"].AsTime()
	if !stamp2.Equal(stamp1) {
		t.Errorf("idle node re-published health: refresh %v -> %v", stamp1, stamp2)
	}
}
