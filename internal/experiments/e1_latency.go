package experiments

import (
	"fmt"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/core"
	"newswire/internal/metrics"
	"newswire/internal/news"
	"newswire/internal/wire"
)

// RunE1 measures publish-to-deliver latency across system sizes — the
// abstract's "deliver news updates to hundreds of thousands of subscribers
// within tens of seconds of the moment of publishing".
func RunE1(opt Options) *Table {
	t := &Table{
		ID:    "E1",
		Title: "delivery latency vs. system size",
		Claim: "hundreds of thousands of subscribers within tens of seconds (§Abstract)",
		Columns: []string{"nodes", "zones", "levels", "p50", "p99", "max",
			"delivered"},
	}
	if opt.Nodes > 0 {
		// Single exact-size row with virtual quiescent leaves: the
		// memory-architecture path that makes 10^6 nodes tractable.
		row, wu := runE1Virtual(opt.Nodes, opt.Seed, opt.Workers)
		t.AddRow(row...)
		if wu != nil {
			t.Wire = append(t.Wire, *wu)
		}
		t.Nodes = opt.Nodes
		t.Notes = append(t.Notes,
			"simulated WAN links 20-180ms, 1% loss; latency is virtual time from publish to app delivery",
			"virtual quiescent leaves: 4 real members per leaf zone; delivery counts exact, latency quantiles sampled at real members")
		return t
	}
	sizes := []int{64, 512, 4096}
	if opt.Quick {
		sizes = []int{64, 512}
	}
	if opt.Big {
		sizes = append(sizes, 32768, 131072)
	}
	for _, n := range sizes {
		row, rep, wu := runE1Size(n, opt.Seed, opt.Workers, opt.Trace)
		t.AddRow(row...)
		if rep != nil {
			t.Traces = append(t.Traces, rep)
		}
		if wu != nil {
			t.Wire = append(t.Wire, *wu)
		}
		if n > t.Nodes {
			t.Nodes = n
		}
	}
	t.Notes = append(t.Notes,
		"simulated WAN links 20-180ms, 1% loss; latency is virtual time from publish to app delivery")
	return t
}

// runE1Virtual measures one E1 row with core.ClusterConfig.VirtualLeaves:
// quiescent members are packed template rows plus delivery bitsets, so
// heap stays O(real agents + zones) while the delivered column still
// counts every one of the n members exactly.
func runE1Virtual(n int, seed int64, workers int) ([]string, *WireUsage) {
	branching := 64
	if n < 256 {
		branching = 16
	}
	lat := &metrics.Histogram{}
	var publishAt time.Time
	cluster, err := core.NewCluster(core.ClusterConfig{
		N:               n,
		Branching:       branching,
		Seed:            seed,
		Workers:         workers,
		VirtualLeaves:   true,
		VirtualSubjects: []string{"tech/linux"},
		Customize: func(i int, cfg *core.Config) {
			cfg.RepCount = 2
			nodeClock := cfg.Clock
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) {
				lat.Observe(nodeClock.Now().Sub(publishAt).Seconds())
			}
		},
	})
	if err != nil {
		return []string{fmt.Sprint(n), "error", err.Error(), "", "", "", ""}, nil
	}
	warmRounds := 8 + 2*treeLevels(n, branching)
	cluster.RunRounds(warmRounds)

	publishAt = cluster.Eng.Now()
	it := &news.Item{
		Publisher: "reuters", ID: "breaking", Headline: "breaking news",
		Body: "body", Subjects: []string{"tech/linux"}, Urgency: 1,
		Published: publishAt,
	}
	if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
		return []string{fmt.Sprint(n), "error", err.Error(), "", "", "", ""}, nil
	}
	cluster.RunFor(60 * time.Second)

	// Exact delivery count: real members observed through the latency
	// histogram, virtual members through the per-zone bitsets.
	delivered := lat.Count() + int(cluster.VirtualDelivered())

	sent, _ := cluster.Net.BytesTotals()
	rounds := warmRounds + 30
	wu := &WireUsage{
		Label:         fmt.Sprintf("%d nodes (virtual)", n),
		Nodes:         n,
		Rounds:        rounds,
		BytesOnWire:   sent,
		BytesPerRound: float64(sent) / float64(rounds),
	}
	zones := (n + branching - 1) / branching
	return []string{
		fmt.Sprint(n),
		fmt.Sprint(zones),
		fmt.Sprint(treeLevels(n, branching)),
		fmtMS(lat.Quantile(0.5)),
		fmtMS(lat.Quantile(0.99)),
		fmtMS(lat.Max()),
		fmtPct(float64(delivered) / float64(n)),
	}, wu
}

func runE1Size(n int, seed int64, workers int, traced bool) ([]string, *TraceReport, *WireUsage) {
	branching := 64
	if n < 256 {
		branching = 16
	}
	lat := &metrics.Histogram{}
	var publishAt time.Time
	cluster, err := core.NewCluster(core.ClusterConfig{
		N:         n,
		Branching: branching,
		Seed:      seed,
		Workers:   workers,
		Trace:     traced,
		Customize: func(i int, cfg *core.Config) {
			// k=2 redundant representatives, as the system description
			// prescribes for robust delivery over lossy links (§9-10).
			cfg.RepCount = 2
			// Read delivery time through the node's own clock: under the
			// parallel executor the engine clock lags inside a compute
			// window, while cfg.Clock reports the delivery event's time —
			// identical to what the serial engine clock would have shown.
			nodeClock := cfg.Clock
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) {
				lat.Observe(nodeClock.Now().Sub(publishAt).Seconds())
			}
		},
	})
	if err != nil {
		return []string{fmt.Sprint(n), "error", err.Error(), "", "", "", ""}, nil, nil
	}
	for _, node := range cluster.Nodes {
		_ = node.Subscribe("tech/linux")
	}
	// Let subscription summaries aggregate to the root.
	warmRounds := 8 + 2*treeLevels(n, branching)
	cluster.RunRounds(warmRounds)

	publishAt = cluster.Eng.Now()
	it := &news.Item{
		Publisher: "reuters", ID: "breaking", Headline: "breaking news",
		Body: "body", Subjects: []string{"tech/linux"}, Urgency: 1,
		Published: publishAt,
	}
	if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
		return []string{fmt.Sprint(n), "error", err.Error(), "", "", "", ""}, nil, nil
	}
	cluster.RunFor(60 * time.Second)

	delivered := lat.Count()
	p50 := lat.Quantile(0.5)
	p99 := lat.Quantile(0.99)
	max := lat.Max()

	zones := make(map[string]bool)
	for _, node := range cluster.Nodes {
		zones[node.ZonePath()] = true
	}
	var rep *TraceReport
	if traced {
		rep = BuildTraceReport(fmt.Sprintf("E1 %d nodes", n), cluster.TraceSpans(), 3)
	}
	// Wire-byte usage per gossip round: warmup plus the 30 rounds (2s
	// interval) inside the 60s delivery window.
	sent, _ := cluster.Net.BytesTotals()
	rounds := warmRounds + 30
	wu := &WireUsage{
		Label:         fmt.Sprintf("%d nodes", n),
		Nodes:         n,
		Rounds:        rounds,
		BytesOnWire:   sent,
		BytesPerRound: float64(sent) / float64(rounds),
	}
	return []string{
		fmt.Sprint(n),
		fmt.Sprint(len(zones)),
		fmt.Sprint(treeLevels(n, branching)),
		fmtMS(p50),
		fmtMS(p99),
		fmtMS(max),
		fmtPct(float64(delivered) / float64(n)),
	}, rep, wu
}

// treeLevels returns the depth of the balanced tree the cluster builder
// produces for n nodes with the given branching.
func treeLevels(n, b int) int {
	return astrolabe.ZoneDepth(core.ZonePathFor(0, n, b))
}
