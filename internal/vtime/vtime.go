// Package vtime provides a clock abstraction so protocol code can run
// against either the wall clock (live deployments) or a manually advanced
// virtual clock (deterministic simulation).
//
// All NewsWire protocol components take a Clock rather than calling
// time.Now directly; the discrete-event simulator advances a Virtual clock
// as it drains its event queue, which lets experiments measure
// "tens of seconds" of protocol time in milliseconds of wall time.
package vtime

import (
	"sync"
	"time"
)

// Clock supplies the current time to protocol components.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Virtual is a manually advanced Clock. The zero value is not ready for
// use; construct one with NewVirtual. Virtual is safe for concurrent use,
// although the simulator that owns it is single-threaded.
type Virtual struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// Epoch is the instant a fresh Virtual clock starts at. The specific date
// is arbitrary but fixed so simulation transcripts are reproducible.
var Epoch = time.Date(2002, time.April, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock positioned at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: Epoch}
}

// NewVirtualAt returns a virtual clock positioned at start.
func NewVirtualAt(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the clock's current position.
func (v *Virtual) Now() time.Time {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Advance moves the clock forward by d. Advancing by a negative duration is
// ignored: simulated time never runs backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// SetNow moves the clock to t if t is not before the current position.
// Attempts to move backwards are ignored.
func (v *Virtual) SetNow(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}
