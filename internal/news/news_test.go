package news

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleItem() *Item {
	return &Item{
		Publisher: "reuters",
		ID:        "item-42",
		Revision:  1,
		Headline:  "Markets rally on peace hopes",
		Byline:    "By A. Reporter",
		Abstract:  "Stocks rose sharply.",
		Body:      "Full text of the article with <angle> brackets & ampersands.",
		Subjects:  []string{"business/markets", "world/europe"},
		Urgency:   4,
		Geography: "europe",
		Published: time.Date(2002, 4, 1, 9, 30, 0, 0, time.UTC),
	}
}

func TestKeys(t *testing.T) {
	it := sampleItem()
	if it.Key() != "reuters/item-42#1" {
		t.Errorf("Key() = %q", it.Key())
	}
	if it.SeriesKey() != "reuters/item-42" {
		t.Errorf("SeriesKey() = %q", it.SeriesKey())
	}
	other := *it
	other.Revision = 2
	if other.Key() == it.Key() {
		t.Error("revisions must have distinct keys")
	}
	if other.SeriesKey() != it.SeriesKey() {
		t.Error("revisions must share a series key")
	}
}

func TestValidate(t *testing.T) {
	if err := sampleItem().Validate(); err != nil {
		t.Fatalf("sample item invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Item)
	}{
		{"missing publisher", func(it *Item) { it.Publisher = "" }},
		{"publisher with slash", func(it *Item) { it.Publisher = "a/b" }},
		{"publisher with hash", func(it *Item) { it.Publisher = "a#b" }},
		{"missing id", func(it *Item) { it.ID = "" }},
		{"id with space", func(it *Item) { it.ID = "a b" }},
		{"negative revision", func(it *Item) { it.Revision = -1 }},
		{"urgency too high", func(it *Item) { it.Urgency = 9 }},
		{"no subjects", func(it *Item) { it.Subjects = nil }},
		{"empty subject", func(it *Item) { it.Subjects = []string{""} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			it := sampleItem()
			tt.mutate(it)
			if err := it.Validate(); err == nil {
				t.Errorf("%s: Validate() = nil, want error", tt.name)
			}
		})
	}
}

func TestNITFRoundTrip(t *testing.T) {
	it := sampleItem()
	data, err := MarshalNITF(it)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<nitf") {
		t.Fatalf("output does not look like NITF: %s", data[:60])
	}
	got, err := UnmarshalNITF(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Publisher != it.Publisher || got.ID != it.ID || got.Revision != it.Revision {
		t.Errorf("identity lost: %+v", got)
	}
	if got.Headline != it.Headline || got.Byline != it.Byline ||
		got.Abstract != it.Abstract || got.Body != it.Body {
		t.Errorf("content lost: %+v", got)
	}
	if len(got.Subjects) != 2 || got.Subjects[0] != "business/markets" {
		t.Errorf("subjects lost: %v", got.Subjects)
	}
	if got.Urgency != 4 || got.Geography != "europe" {
		t.Errorf("metadata lost: urgency=%d geo=%q", got.Urgency, got.Geography)
	}
	if !got.Published.Equal(it.Published) {
		t.Errorf("published = %v, want %v", got.Published, it.Published)
	}
}

func TestNITFEscaping(t *testing.T) {
	it := sampleItem()
	it.Headline = `<script>"alert" & 'stuff'</script>`
	it.Body = "a < b && c > d"
	data, err := MarshalNITF(it)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalNITF(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Headline != it.Headline || got.Body != it.Body {
		t.Fatalf("escaping broke content: %q / %q", got.Headline, got.Body)
	}
}

func TestMarshalInvalidItem(t *testing.T) {
	it := sampleItem()
	it.Publisher = ""
	if _, err := MarshalNITF(it); err == nil {
		t.Fatal("marshal of invalid item should fail")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalNITF([]byte("not xml")); err == nil {
		t.Error("garbage should fail")
	}
	// Well-formed XML but invalid item (no subjects).
	bad := `<?xml version="1.0"?><nitf version="x"><head><docdata><doc-id id-string="i"/><urgency ed-urg="4"/><date.issue norm=""/><du-key version="0"/><key-list></key-list></docdata><pubdata name="p"/></head><body><body.head><hedline><hl1>h</hl1></hedline></body.head><body.content>c</body.content></body></nitf>`
	if _, err := UnmarshalNITF([]byte(bad)); err == nil {
		t.Error("item without subjects should fail validation")
	}
	// Bad date.
	badDate := strings.Replace(bad, `norm=""`, `norm="yesterday"`, 1)
	badDate = strings.Replace(badDate, "<key-list></key-list>", `<key-list><keyword key="s"/></key-list>`, 1)
	if _, err := UnmarshalNITF([]byte(badDate)); err == nil {
		t.Error("bad date should fail")
	}
}

func TestSize(t *testing.T) {
	it := sampleItem()
	small := it.Size()
	it.Body = strings.Repeat("x", 10000)
	if it.Size() <= small+9000 {
		t.Fatalf("Size() did not grow with body: %d vs %d", it.Size(), small)
	}
}

func TestSubjectsByPrefix(t *testing.T) {
	techs := SubjectsByPrefix("tech")
	if len(techs) == 0 {
		t.Fatal("no tech subjects")
	}
	for _, s := range techs {
		if !strings.HasPrefix(s, "tech/") {
			t.Errorf("subject %q not under tech/", s)
		}
	}
	if got := SubjectsByPrefix("nonexistent"); got != nil {
		t.Errorf("unknown prefix returned %v", got)
	}
}

func TestMatchesAny(t *testing.T) {
	it := sampleItem()
	if !it.MatchesAny([]string{"world/europe"}) {
		t.Error("exact subject should match")
	}
	if !it.MatchesAny([]string{"nope", "business/markets"}) {
		t.Error("any-of semantics broken")
	}
	if it.MatchesAny([]string{"tech/linux"}) {
		t.Error("absent subject matched")
	}
	if it.MatchesAny(nil) {
		t.Error("empty subscription matched")
	}
}

// Property: any item built from printable-ish content round-trips through
// NITF XML.
func TestQuickNITFRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		// XML cannot carry most control characters; the transport
		// payload is produced by publishers, which normalize text.
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r == '\t' || r == '\n' || r >= 0x20 && r != 0xFFFD {
				out = append(out, r)
			}
		}
		return string(out)
	}
	f := func(headline, body, subject string, urgency uint8, rev uint16) bool {
		it := &Item{
			Publisher: "quick",
			ID:        "id",
			Revision:  int(rev),
			Headline:  sanitize(headline),
			Body:      sanitize(body),
			Subjects:  []string{"s-" + sanitize(strings.ReplaceAll(subject, " ", "_"))},
			Urgency:   int(urgency % 9),
			Published: time.Unix(1017619200, 0).UTC(),
		}
		if it.Subjects[0] == "s-" {
			it.Subjects[0] = "s-x"
		}
		data, err := MarshalNITF(it)
		if err != nil {
			return false
		}
		got, err := UnmarshalNITF(data)
		if err != nil {
			return false
		}
		return got.Headline == it.Headline && got.Body == it.Body &&
			got.Revision == it.Revision && got.Urgency == it.Urgency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnmarshalNITF never panics on arbitrary byte input.
func TestQuickUnmarshalRobustness(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = UnmarshalNITF(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
