// Quickstart: a 32-node simulated NewsWire deployment in one process.
//
// It builds the cluster, subscribes a handful of nodes to a subject,
// lets the subscription Bloom filters aggregate up the zone hierarchy,
// publishes one item, and shows exactly who received it and how fast.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"newswire"
	"newswire/internal/news"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== NewsWire quickstart: 32 simulated nodes ==")

	type delivery struct {
		node    int
		latency time.Duration
	}
	var deliveries []delivery
	var publishedAt time.Time

	var cluster *newswire.Cluster
	c, err := newswire.NewCluster(newswire.ClusterConfig{
		N:         32,
		Branching: 8,
		Seed:      2002,
		Customize: func(i int, cfg *newswire.Config) {
			node := i
			cfg.OnItem = func(it *newswire.Item, env *newswire.ItemEnvelope) {
				deliveries = append(deliveries, delivery{
					node:    node,
					latency: cluster.Eng.Now().Sub(publishedAt),
				})
			}
		},
	})
	if err != nil {
		return err
	}
	cluster = c

	// Nodes 0-15 follow Linux news; the rest follow soccer.
	for i, node := range cluster.Nodes {
		subject := "tech/linux"
		if i >= 16 {
			subject = "sports/soccer"
		}
		if err := node.Subscribe(subject); err != nil {
			return err
		}
	}
	fmt.Println("16 nodes subscribed to tech/linux, 16 to sports/soccer")

	// Let the subscription summaries gossip up to the root.
	fmt.Print("gossiping subscription state")
	cluster.RunRounds(10)
	fmt.Println(" ... done (20s of virtual time)")

	// Publish one Linux story from node 5.
	publishedAt = cluster.Eng.Now()
	item := &news.Item{
		Publisher: "slashdot",
		ID:        "kernel-2.6",
		Headline:  "Linux 2.6 kernel released",
		Abstract:  "After years of development, 2.6 ships.",
		Body:      "Full story text here.",
		Subjects:  []string{"tech/linux"},
		Urgency:   3,
		Published: publishedAt,
	}
	if err := cluster.Nodes[5].PublishItem(item, "", ""); err != nil {
		return err
	}
	fmt.Printf("node 5 published %s\n", item.Key())

	cluster.RunFor(10 * time.Second)

	fmt.Printf("\ndelivered to %d nodes:\n", len(deliveries))
	var worst time.Duration
	for _, d := range deliveries {
		if d.latency > worst {
			worst = d.latency
		}
	}
	for _, d := range deliveries[:min(5, len(deliveries))] {
		fmt.Printf("  node %-2d after %v\n", d.node, d.latency.Round(time.Millisecond))
	}
	if len(deliveries) > 5 {
		fmt.Printf("  ... and %d more\n", len(deliveries)-5)
	}
	fmt.Printf("worst-case latency: %v (virtual time)\n", worst.Round(time.Millisecond))

	// Nobody outside the subscription got it.
	missed := 0
	for i := 16; i < 32; i++ {
		if cluster.Nodes[i].Delivered() != 0 {
			missed++
		}
	}
	fmt.Printf("soccer subscribers who received the Linux item: %d (want 0)\n", missed)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
