package sim

import (
	"sync"
	"testing"
	"time"

	"newswire/internal/wire"
)

func TestOwnedClockFollowsBaseUntilSet(t *testing.T) {
	eng := NewEngine(1)
	oc := &OwnedClock{base: eng.Clock()}
	if !oc.Now().Equal(eng.Now()) {
		t.Fatalf("idle owned clock = %v, engine = %v", oc.Now(), eng.Now())
	}
	at := eng.Now().Add(5 * time.Second)
	oc.set(at)
	if !oc.Now().Equal(at) {
		t.Fatalf("active owned clock = %v, want %v", oc.Now(), at)
	}
	oc.clear()
	if !oc.Now().Equal(eng.Now()) {
		t.Fatalf("cleared owned clock = %v, engine = %v", oc.Now(), eng.Now())
	}
}

// TestExecutorStopsWindowAtUnownedEvent pins the conservative rule: an
// unowned event must run at its global position, never inside a window.
func TestExecutorStopsWindowAtUnownedEvent(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LinkModel{LatencyMin: 20 * time.Millisecond, LatencyMax: 20 * time.Millisecond})
	x := NewExecutor(net, 4)
	for i := 0; i < 2; i++ {
		ep := net.Attach("n"+string(rune('0'+i)), func(*wire.Message) {})
		x.Register(ep)
	}

	var mu sync.Mutex
	var order []string
	record := func(tag string) func() {
		return func() { mu.Lock(); order = append(order, tag); mu.Unlock() }
	}
	base := eng.Now()
	// Two owned events bracketing an unowned one inside the same
	// 20ms lookahead window.
	eng.AtOwned(0, base.Add(1*time.Millisecond), record("a"))
	eng.At(base.Add(2*time.Millisecond), record("mid"))
	eng.AtOwned(1, base.Add(3*time.Millisecond), record("b"))

	if n := x.RunFor(time.Second); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "mid" || order[2] != "b" {
		t.Fatalf("execution order %v, want [a mid b]", order)
	}
	if !eng.Now().Equal(base.Add(time.Second)) {
		t.Fatalf("clock = %v, want %v", eng.Now(), base.Add(time.Second))
	}
}

// TestExecutorZeroLookaheadFallsBackToSerial covers a link model with no
// exploitable lookahead.
func TestExecutorZeroLookaheadFallsBackToSerial(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LinkModel{})
	x := NewExecutor(net, 4)
	ep := net.Attach("n0", func(*wire.Message) {})
	x.Register(ep)

	ran := 0
	eng.AtOwned(0, eng.Now().Add(time.Millisecond), func() { ran++ })
	eng.AtOwned(0, eng.Now().Add(2*time.Millisecond), func() { ran++ })
	if n := x.RunFor(time.Second); n != 2 || ran != 2 {
		t.Fatalf("ran %d/%d events, want 2/2", n, ran)
	}
}

// TestExecutorCommitPanicsOnSubLookaheadTimer verifies the guard on the
// executor's one documented restriction.
func TestExecutorCommitPanicsOnSubLookaheadTimer(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LinkModel{LatencyMin: 20 * time.Millisecond, LatencyMax: 20 * time.Millisecond})
	x := NewExecutor(net, 2)
	eps := make([]*Endpoint, 2)
	afters := make([]func(time.Duration, func()), 2)
	for i := range eps {
		eps[i] = net.Attach("n"+string(rune('0'+i)), func(*wire.Message) {})
		x.Register(eps[i])
		afters[i] = x.AfterFunc(eps[i])
	}

	base := eng.Now()
	// Owner 0's event registers a 1ms timer; owner 1 has an event 10ms
	// later in the same window, so the timer would fire between two
	// already-executed events.
	eng.AtOwned(0, base.Add(1*time.Millisecond), func() {
		afters[0](time.Millisecond, func() {})
	})
	eng.AtOwned(1, base.Add(11*time.Millisecond), func() {})

	defer func() {
		if recover() == nil {
			t.Fatal("expected commit to panic on a sub-lookahead timer")
		}
	}()
	x.RunFor(time.Second)
}

// TestExecutorRunOwnersCommitsInOwnerOrder checks the tick-phase
// primitive: sends buffered during a parallel fan-out must hit the
// network in ascending owner order, like the serial loop.
func TestExecutorRunOwnersCommitsInOwnerOrder(t *testing.T) {
	eng := NewEngine(7)
	net := NewNetwork(eng, DefaultWAN)
	x := NewExecutor(net, 4)
	const n = 8
	eps := make([]*Endpoint, n)
	for i := range eps {
		eps[i] = net.Attach("n"+string(rune('0'+i)), func(*wire.Message) {})
		x.Register(eps[i])
	}

	x.RunOwners(func(owner int) {
		msg := &wire.Message{Kind: wire.KindGossip, Gossip: &wire.Gossip{FromZone: "/z"}}
		if err := eps[owner].Send("n0", msg); err != nil {
			t.Errorf("owner %d send: %v", owner, err)
		}
	})
	sent, _, _ := net.Totals()
	if sent != n {
		t.Fatalf("sent %d messages, want %d", sent, n)
	}

	// Determinism: the same fan-out on a fresh engine with the same seed
	// must leave the engine RNG in the same state (commit order fixed),
	// observable via the next latency sample.
	draw := func(seed int64) int64 {
		e := NewEngine(seed)
		nw := NewNetwork(e, DefaultWAN)
		ex := NewExecutor(nw, 3)
		es := make([]*Endpoint, n)
		for i := range es {
			es[i] = nw.Attach("m"+string(rune('0'+i)), func(*wire.Message) {})
			ex.Register(es[i])
		}
		ex.RunOwners(func(owner int) {
			msg := &wire.Message{Kind: wire.KindGossip, Gossip: &wire.Gossip{FromZone: "/z"}}
			_ = es[owner].Send("m0", msg)
		})
		return e.Rand().Int63()
	}
	if a, b := draw(42), draw(42); a != b {
		t.Fatalf("engine RNG diverged across identical RunOwners fan-outs: %d vs %d", a, b)
	}
}
