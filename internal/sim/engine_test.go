package sim

import (
	"testing"
	"time"

	"newswire/internal/vtime"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	if n := e.RunUntilIdle(0); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.RunUntilIdle(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of insertion order: %v", order)
		}
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(1)
	var at time.Time
	e.After(5*time.Second, func() { at = e.Now() })
	e.RunUntilIdle(0)
	want := vtime.Epoch.Add(5 * time.Second)
	if !at.Equal(want) {
		t.Fatalf("event ran at %v, want %v", at, want)
	}
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(1*time.Second, func() { ran++ })
	e.After(10*time.Second, func() { ran++ })
	n := e.RunFor(5 * time.Second)
	if n != 1 || ran != 1 {
		t.Fatalf("RunFor ran %d events (%d callbacks), want 1", n, ran)
	}
	if !e.Now().Equal(vtime.Epoch.Add(5 * time.Second)) {
		t.Fatalf("clock = %v, want epoch+5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine(1)
	hits := 0
	e.After(time.Second, func() {
		hits++
		e.After(time.Second, func() { hits++ })
	})
	e.RunFor(3 * time.Second)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(-time.Hour, func() { ran = true })
	e.RunUntilIdle(0)
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now().Before(vtime.Epoch) {
		t.Fatal("clock went backwards")
	}
}

func TestEngineAtPastClamped(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(time.Minute)
	ran := false
	e.At(vtime.Epoch, func() { ran = true })
	e.RunUntilIdle(0)
	if !ran {
		t.Fatal("past event never ran")
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	ticker := e.Every(time.Second, 0, func() { count++ })
	e.RunFor(5500 * time.Millisecond)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	ticker.Stop()
	e.RunFor(10 * time.Second)
	if count != 5 {
		t.Fatalf("ticker fired after Stop: %d", count)
	}
}

func TestEngineEveryWithJitterStaysRoughlyPeriodic(t *testing.T) {
	e := NewEngine(42)
	count := 0
	e.Every(time.Second, 0.2, func() { count++ })
	e.RunFor(60 * time.Second)
	if count < 50 || count > 70 {
		t.Fatalf("jittered ticks over 60s = %d, want ~60", count)
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(7)
		var fired []time.Duration
		e.Every(time.Second, 0.5, func() {
			fired = append(fired, e.Now().Sub(vtime.Epoch))
		})
		e.RunFor(10 * time.Second)
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineRunUntilIdleCap(t *testing.T) {
	e := NewEngine(1)
	// Self-perpetuating event chain.
	var boom func()
	boom = func() { e.After(time.Millisecond, boom) }
	e.After(0, boom)
	n := e.RunUntilIdle(100)
	if n != 100 {
		t.Fatalf("cap not respected: ran %d", n)
	}
}
