package newswire_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"newswire"
)

// webUICluster builds a tiny cluster with one delivered item and returns
// the UI over node 1.
func webUICluster(t *testing.T) (*newswire.Cluster, *newswire.WebUI) {
	t.Helper()
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N: 4, Branching: 4, Seed: 404,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cluster.Nodes {
		if err := n.Subscribe("tech/linux"); err != nil {
			t.Fatal(err)
		}
	}
	cluster.RunRounds(6)
	item := &newswire.Item{
		Publisher: "slashdot", ID: "ui-item",
		Headline: "WebUI test story", Body: "body",
		Subjects:  []string{"tech/linux"},
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(item, "", ""); err != nil {
		t.Fatal(err)
	}
	cluster.RunFor(5 * time.Second)
	ui := newswire.NewWebUI(cluster.Nodes[1])
	ui.SetEngineStatsFunc(cluster.Eng.Stats)
	return cluster, ui
}

func TestWebUIStatusJSON(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Name       string   `json:"name"`
		Zone       string   `json:"zone"`
		Subjects   []string `json:"subjects"`
		Delivered  int64    `json:"delivered"`
		Publishers []string `json:"publishers"`
		Gossip     struct {
			GossipsSent     int64 `json:"GossipsSent"`
			GossipBytesSent int64 `json:"GossipBytesSent"`
		} `json:"gossip"`
		Multicast struct {
			Delivered  int64 `json:"Delivered"`
			Duplicates int64 `json:"Duplicates"`
		} `json:"multicast"`
		Cache struct {
			Puts int64 `json:"Puts"`
		} `json:"cache"`
		Engine *struct {
			Pending   int    `json:"pending"`
			HighWater int    `json:"highWater"`
			Fired     uint64 `json:"fired"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Name != "node-1" {
		t.Errorf("name = %q", status.Name)
	}
	if status.Delivered != 1 {
		t.Errorf("delivered = %d", status.Delivered)
	}
	if len(status.Subjects) != 1 || status.Subjects[0] != "tech/linux" {
		t.Errorf("subjects = %v", status.Subjects)
	}
	if status.Gossip.GossipsSent == 0 || status.Gossip.GossipBytesSent == 0 {
		t.Errorf("gossip counters missing: %+v", status.Gossip)
	}
	if status.Multicast.Delivered != 1 {
		t.Errorf("multicast delivered = %d", status.Multicast.Delivered)
	}
	if status.Cache.Puts == 0 {
		t.Errorf("cache counters missing: %+v", status.Cache)
	}
	if status.Engine == nil {
		t.Fatal("engine section missing from status.json")
	}
	if status.Engine.Fired == 0 || status.Engine.HighWater == 0 {
		t.Errorf("engine counters missing: %+v", *status.Engine)
	}
}

func TestWebUIMetricsEndpoint(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE astrolabe_gossips_sent counter",
		"# TYPE multicast_delivered counter",
		"multicast_delivered 1",
		"# TYPE newswire_delivery_latency_seconds summary",
		"newswire_delivery_latency_seconds_count 1",
		"multicast_retries_sent",
		"multicast_failovers_total",
		"multicast_delivery_failures",
		"cache_puts",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Two scrapes must not double count (SyncTo mirror semantics).
	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf2 := new(strings.Builder)
	if _, err := io.Copy(buf2, resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "multicast_delivered 1") {
		t.Errorf("second scrape drifted:\n%s", buf2.String())
	}
}

func TestWebUITraceJSONWithoutRing(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Recorded int64             `json:"recorded"`
		Spans    []json.RawMessage `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Recorded != 0 || len(doc.Spans) != 0 {
		t.Errorf("ring-less trace.json = recorded %d, %d spans; want empty", doc.Recorded, len(doc.Spans))
	}
}

func TestWebUIItemsJSON(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/items.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []struct {
		Key      string `json:"key"`
		Headline string `json:"headline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != "slashdot/ui-item#0" {
		t.Fatalf("items = %+v", items)
	}
	if items[0].Headline != "WebUI test story" {
		t.Fatalf("headline = %q", items[0].Headline)
	}
}

func TestWebUIZonesJSON(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/zones.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var zones []struct {
		Zone string `json:"zone"`
		Row  string `json:"row"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&zones); err != nil {
		t.Fatal(err)
	}
	if len(zones) < 4 {
		t.Fatalf("zones = %+v", zones)
	}
}

// TestWebUILiveTraceAndMetrics drives a real two-node TCP pair and checks
// the observability endpoints against it: the subscriber's /trace.json
// must show the delivery spans its default ring recorded, and /metrics
// must expose the delivery-latency summary in Prometheus text format.
func TestWebUILiveTraceAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test")
	}
	start := func(name string, peers []string) *newswire.LiveNode {
		t.Helper()
		ln, err := newswire.StartLive(newswire.LiveConfig{
			Node: newswire.Config{
				Name:           name,
				ZonePath:       "/live",
				GossipInterval: 200 * time.Millisecond,
			},
			Peers: peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		return ln
	}
	sub := start("sub", nil)
	if err := sub.Node().Subscribe("tech/linux"); err != nil {
		t.Fatal(err)
	}
	pub := start("pub", []string{sub.Addr()})

	deadline := time.Now().Add(10 * time.Second)
	for {
		rows, _ := pub.Node().Agent().Table("/live")
		if len(rows) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never converged: %d rows", len(rows))
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(time.Second) // subscription summaries aggregate

	item := &newswire.Item{
		Publisher: "slashdot", ID: "live-trace",
		Headline: "traced over real sockets", Body: "body",
		Subjects:  []string{"tech/linux"},
		Published: time.Now(),
	}
	if err := pub.Node().PublishItem(item, "", ""); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for sub.Node().Delivered() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("item never delivered to the subscriber")
		}
		time.Sleep(50 * time.Millisecond)
	}

	srv := httptest.NewServer(sub.WebUI().Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Recorded int64 `json:"recorded"`
		Spans    []struct {
			Kind string `json:"kind"`
			Key  string `json:"key"`
			Node string `json:"node"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Recorded == 0 || len(doc.Spans) == 0 {
		t.Fatalf("live trace ring empty: recorded %d, %d spans", doc.Recorded, len(doc.Spans))
	}
	foundDeliver := false
	for _, s := range doc.Spans {
		if s.Kind == "deliver" && s.Key == "slashdot/live-trace#0" {
			foundDeliver = true
		}
	}
	if !foundDeliver {
		t.Errorf("no deliver span for the published item in %d spans", len(doc.Spans))
	}

	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp2.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"newswire_delivery_latency_seconds_count 1",
		"multicast_delivered 1",
		"# TYPE astrolabe_gossips_sent counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("live /metrics missing %q", want)
		}
	}
}

func TestWebUIIndexHTML(t *testing.T) {
	_, ui := webUICluster(t)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"NewsWire node node-1", "tech/linux", "WebUI test story", "slashdot"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Unknown paths 404.
	resp2, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

// TestWebUIEndpointConsistency cross-checks the three observability
// surfaces over one node: /status.json counters, the /metrics exposition
// mirrored from the same counters, and the gossip-aggregated
// /cluster-health.json rollup must all describe the same cluster state.
func TestWebUIEndpointConsistency(t *testing.T) {
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N: 4, Branching: 4, Seed: 404,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.HealthEvery = 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cluster.Nodes {
		if err := n.Subscribe("tech/linux"); err != nil {
			t.Fatal(err)
		}
	}
	cluster.RunRounds(6)
	item := &newswire.Item{
		Publisher: "slashdot", ID: "consistency-item",
		Headline: "endpoint consistency story", Body: "body",
		Subjects:  []string{"tech/linux"},
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(item, "", ""); err != nil {
		t.Fatal(err)
	}
	cluster.RunFor(5 * time.Second)
	// Let every node fold the delivery into its next health digest
	// (HealthEvery=2) and gossip the digests back up.
	cluster.RunRounds(10)

	ui := newswire.NewWebUI(cluster.Nodes[1])
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	var status struct {
		Delivered int64 `json:"delivered"`
		Multicast struct {
			Delivered int64 `json:"Delivered"`
		} `json:"multicast"`
		Routing struct {
			Forwards           int64 `json:"forwards"`
			ExactMatches       int64 `json:"exactMatches"`
			FalsePositiveDrops int64 `json:"falsePositiveDrops"`
			SubgroupTests      int64 `json:"subgroupTests"`
			SubgroupFilters    int64 `json:"subgroupFilters"`
		} `json:"routing"`
		Cache struct {
			Puts int64 `json:"Puts"`
		} `json:"cache"`
	}
	getJSON("/status.json", &status)

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Unlabeled sample lines ("name value") from the exposition.
	samples := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, value, ok := strings.Cut(line, " "); ok && !strings.Contains(name, "{") {
			samples[name] = value
		}
	}
	wantSample := func(name string, want int64) {
		t.Helper()
		if got := samples[name]; got != fmt.Sprint(want) {
			t.Errorf("/metrics %s = %q, /status.json says %d", name, got, want)
		}
	}
	wantSample("multicast_delivered", status.Multicast.Delivered)
	wantSample("newswire_delivered_items", status.Delivered)
	wantSample("cache_puts", status.Cache.Puts)
	wantSample("pubsub_forwards", status.Routing.Forwards)
	wantSample("pubsub_exact_matches", status.Routing.ExactMatches)
	wantSample("pubsub_false_positive_drops", status.Routing.FalsePositiveDrops)
	wantSample("pubsub_subgroup_tests", status.Routing.SubgroupTests)
	wantSample("pubsub_subgroup_filters", status.Routing.SubgroupFilters)
	if status.Delivered != 1 || status.Multicast.Delivered != 1 {
		t.Errorf("delivered = %d, multicast delivered = %d, want 1/1",
			status.Delivered, status.Multicast.Delivered)
	}
	// The node delivered its one subscribed item: the leaf exact check must
	// have recorded at least that one accept.
	if status.Routing.ExactMatches < 1 {
		t.Errorf("routing exactMatches = %d, want >= 1", status.Routing.ExactMatches)
	}

	var health struct {
		Node    string `json:"node"`
		Cluster struct {
			Nodes        int64  `json:"nodes"`
			LatencyCount uint64 `json:"latencyCount"`
		} `json:"cluster"`
		Zones map[string]struct {
			Nodes int64 `json:"nodes"`
		} `json:"zones"`
	}
	getJSON("/cluster-health.json", &health)
	if health.Node != "node-1" {
		t.Errorf("cluster-health node = %q", health.Node)
	}
	if health.Cluster.Nodes != 4 {
		t.Errorf("health rollup sees %d nodes, want all 4", health.Cluster.Nodes)
	}
	// Every node delivered the one item, and the merged latency sketch
	// must account for all four deliveries — not just this node's.
	if health.Cluster.LatencyCount != 4 {
		t.Errorf("merged latency count = %d, want 4 (one delivery per node)",
			health.Cluster.LatencyCount)
	}
	var zoneNodes int64
	for _, z := range health.Zones {
		zoneNodes += z.Nodes
	}
	if zoneNodes != health.Cluster.Nodes {
		t.Errorf("zone rollups cover %d nodes, cluster rollup %d", zoneNodes, health.Cluster.Nodes)
	}
}

// TestWebUIPredicateStatus surfaces predicate subscriptions and subgroup
// telemetry through the web UI.
func TestWebUIPredicateStatus(t *testing.T) {
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N: 4, Branching: 4, Seed: 404,
		Customize: func(i int, cfg *newswire.Config) {
			cfg.Mode = newswire.ModePredicate
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := cluster.Nodes[1].SubscribeQuery("urgency >= 6 and subjects = 'tech/linux'")
	if err != nil {
		t.Fatal(err)
	}
	cluster.RunRounds(6)

	ui := newswire.NewWebUI(cluster.Nodes[1])
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Queries []string `json:"queries"`
		Routing struct {
			SubgroupFilters int `json:"subgroupFilters"`
		} `json:"routing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Queries) != 1 || status.Queries[0] != canon {
		t.Errorf("status queries = %v, want [%s]", status.Queries, canon)
	}
	if status.Routing.SubgroupFilters == 0 {
		t.Error("no subgroup filters visible in zone tables")
	}

	page, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(page.Body)
	page.Body.Close()
	if !strings.Contains(string(body), "urgency") {
		t.Error("index page does not list the predicate subscription")
	}
}
