package query

import (
	"sort"
	"strconv"

	"newswire/internal/bloom"
	"newswire/internal/news"
)

// Routing dimensions. A compiled signature covers three dimensions of an
// item — its subjects, its publisher, and its urgency — each hashed into
// the shared Bloom bit space under a namespaced key. A dimension the
// predicate does not constrain sets its wildcard key instead, so the
// forwarding test ("some subject key present OR the subject wildcard,
// AND the publisher key OR its wildcard, AND the urgency key OR its
// wildcard") stays a pure conjunction over independently-sound covers.

// Wildcard keys, one per dimension. "*" cannot start a subject,
// publisher, or urgency key, so wildcards never collide with real values
// at the key level (Bloom collisions remain possible and are sound:
// they only widen the cover).
const (
	WildSubject   = "*s"
	WildPublisher = "*p"
	WildUrgency   = "*u"
)

// SubjectKey is the Bloom key of one subject value.
func SubjectKey(subject string) string { return "s:" + subject }

// PublisherKey is the Bloom key of one publisher value.
func PublisherKey(publisher string) string { return "p:" + publisher }

// UrgencyKey is the Bloom key of one urgency value.
func UrgencyKey(urgency int) string { return "u:" + strconv.Itoa(urgency) }

// strCover is a string dimension's cover: Top (unconstrained) or a
// finite set of values that can satisfy the predicate.
type strCover struct {
	top  bool
	vals []string // sorted, unique; empty non-top = dimension unsatisfiable
}

func topStr() strCover           { return strCover{top: true} }
func oneStr(v string) strCover   { return strCover{vals: []string{v}} }
func setStr(v []string) strCover { return strCover{vals: sortUnique(v)} }

func sortUnique(v []string) []string {
	out := append([]string(nil), v...)
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[n-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// union is the OR rule: any value either side admits.
func (a strCover) union(b strCover) strCover {
	if a.top || b.top {
		return topStr()
	}
	return setStr(append(append([]string(nil), a.vals...), b.vals...))
}

// intersect is the AND rule for single-valued dimensions (publisher):
// the row's one value must satisfy both sides, so it lies in both covers.
func (a strCover) intersect(b strCover) strCover {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	var out []string
	i, j := 0, 0
	for i < len(a.vals) && j < len(b.vals) {
		switch {
		case a.vals[i] == b.vals[j]:
			out = append(out, a.vals[i])
			i++
			j++
		case a.vals[i] < b.vals[j]:
			i++
		default:
			j++
		}
	}
	return strCover{vals: out}
}

// tighter is the AND rule for the multi-valued subjects dimension.
// Intersection would be unsound there: subjects = 'a' AND subjects = 'b'
// is satisfied by an item carrying both, yet {a} ∩ {b} = ∅ would never
// forward it. Each side's cover alone is sound (its own constraint holds
// under the conjunction, so its witness subject is in its cover), so
// take whichever non-top side is smaller.
func (a strCover) tighter(b strCover) strCover {
	switch {
	case a.top:
		return b
	case b.top:
		return a
	case len(b.vals) < len(a.vals):
		return b
	default:
		return a
	}
}

// urgMask is the urgency dimension's cover as a bitmask over the finite
// domain 0..news.UrgencyMax. The domain being finite means every urgency
// atom — negations and ranges included — has an exact mask.
type urgMask uint16

const urgAll = urgMask(1<<(news.UrgencyMax+1)) - 1

func urgRange(lo, hi int64) urgMask {
	if lo < 0 {
		lo = 0
	}
	if hi > news.UrgencyMax {
		hi = news.UrgencyMax
	}
	var m urgMask
	for u := lo; u <= hi; u++ {
		m |= 1 << uint(u)
	}
	return m
}

// Cover is a predicate's per-dimension routing cover. Invariant (the
// soundness property the property test enforces): if the predicate
// matches an item, then some item subject is in Subs (or Subs is top),
// the item's publisher is in Pubs (or top), and the item's urgency bit
// is in Urg.
type Cover struct {
	Subs strCover
	Pubs strCover
	Urg  urgMask
}

func topCover() Cover { return Cover{Subs: topStr(), Pubs: topStr(), Urg: urgAll} }

func (b boolLit) cover() Cover {
	if b {
		return topCover()
	}
	// FALSE matches nothing; an all-empty cover never forwards, which is
	// vacuously sound.
	return Cover{}
}

func (e *binExpr) cover() Cover {
	l, r := e.l.cover(), e.r.cover()
	if e.or {
		return Cover{
			Subs: l.Subs.union(r.Subs),
			Pubs: l.Pubs.union(r.Pubs),
			Urg:  l.Urg | r.Urg,
		}
	}
	return Cover{
		Subs: l.Subs.tighter(r.Subs),
		Pubs: l.Pubs.intersect(r.Pubs),
		Urg:  l.Urg & r.Urg,
	}
}

// cover of NOT widens to top: the complement of a finite cover is not
// finitely coverable for string dimensions, and conservative widening
// keeps the signature sound. Urgency-only negations written at the atom
// level (urgency != 3, urgency NOT IN, NOT BETWEEN) keep exact masks —
// they are compiled by their atoms, not through here.
func (e *notExpr) cover() Cover { return topCover() }

func (e *cmpExpr) cover() Cover {
	c := topCover()
	switch e.f.name {
	case "subjects":
		if e.op == "=" {
			c.Subs = oneStr(e.lit.s)
		}
	case "publisher":
		if e.op == "=" {
			c.Pubs = oneStr(e.lit.s)
		}
	case "urgency":
		u := e.lit.i
		switch e.op {
		case "=":
			c.Urg = urgRange(u, u)
		case "!=":
			c.Urg = urgAll &^ urgRange(u, u)
		case "<":
			c.Urg = urgRange(0, u-1)
		case "<=":
			c.Urg = urgRange(0, u)
		case ">":
			c.Urg = urgRange(u+1, news.UrgencyMax)
		case ">=":
			c.Urg = urgRange(u, news.UrgencyMax)
		}
	}
	return c
}

func (e *inExpr) cover() Cover {
	c := topCover()
	switch e.f.name {
	case "subjects", "publisher":
		if e.neg {
			return c
		}
		vals := make([]string, len(e.lits))
		for i, lit := range e.lits {
			vals[i] = lit.s
		}
		if e.f.name == "subjects" {
			c.Subs = setStr(vals)
		} else {
			c.Pubs = setStr(vals)
		}
	case "urgency":
		var m urgMask
		for _, lit := range e.lits {
			m |= urgRange(lit.i, lit.i)
		}
		if e.neg {
			m = urgAll &^ m
		}
		c.Urg = m
	}
	return c
}

func (e *likeExpr) cover() Cover {
	c := topCover()
	if e.neg || hasWildcard(e.pattern) {
		return c
	}
	// A wildcard-free pattern is an equality test.
	switch e.f.name {
	case "subjects":
		c.Subs = oneStr(e.pattern)
	case "publisher":
		c.Pubs = oneStr(e.pattern)
	}
	return c
}

func hasWildcard(pattern string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '%' || pattern[i] == '_' {
			return true
		}
	}
	return false
}

func (e *betweenExpr) cover() Cover {
	c := topCover()
	if e.f.name == "urgency" {
		m := urgRange(e.lo.i, e.hi.i)
		if e.neg {
			m = urgAll &^ m
		}
		c.Urg = m
	}
	return c
}

// Signature is the compiled coarse routing form of a predicate: the
// values (or wildcards) whose Bloom keys the leaf row advertises.
type Signature struct {
	// AnySubject set means the subject dimension is unconstrained;
	// otherwise Subjects lists every subject value that can satisfy the
	// predicate (sorted, possibly empty = never forwards).
	AnySubject bool
	Subjects   []string
	// AnyPublisher/Publishers: same for the publisher dimension.
	AnyPublisher bool
	Publishers   []string
	// AnyUrgency/Urgencies: same for the urgency dimension (values within
	// 0..news.UrgencyMax).
	AnyUrgency bool
	Urgencies  []int
}

// Compile lowers the predicate to its routing signature. The signature
// is sound — it admits every item the exact evaluator can match — and
// conservative: ranges over urgency enumerate the finite domain exactly,
// while negations and wildcard patterns over string dimensions widen to
// the dimension wildcard.
func (p *Predicate) Compile() Signature {
	c := p.expr.cover()
	sig := Signature{
		AnySubject:   c.Subs.top,
		AnyPublisher: c.Pubs.top,
	}
	if !c.Subs.top {
		sig.Subjects = append([]string(nil), c.Subs.vals...)
	}
	if !c.Pubs.top {
		sig.Publishers = append([]string(nil), c.Pubs.vals...)
	}
	if c.Urg == urgAll {
		sig.AnyUrgency = true
	} else {
		for u := 0; u <= news.UrgencyMax; u++ {
			if c.Urg&(1<<uint(u)) != 0 {
				sig.Urgencies = append(sig.Urgencies, u)
			}
		}
	}
	return sig
}

// SubjectsSignature is the signature of a plain subject-set subscription
// (Subscribe without a predicate): those subjects, any publisher, any
// urgency.
func SubjectsSignature(subjects []string) Signature {
	return Signature{
		Subjects:     sortUnique(subjects),
		AnyPublisher: true,
		AnyUrgency:   true,
	}
}

// Fill adds the signature's keys to a Bloom filter: each dimension
// contributes its value keys, or its wildcard key when unconstrained.
func (s Signature) Fill(f *bloom.Filter) {
	if s.AnySubject {
		f.Add(WildSubject)
	}
	for _, subj := range s.Subjects {
		f.Add(SubjectKey(subj))
	}
	if s.AnyPublisher {
		f.Add(WildPublisher)
	}
	for _, pub := range s.Publishers {
		f.Add(PublisherKey(pub))
	}
	if s.AnyUrgency {
		f.Add(WildUrgency)
	}
	for _, u := range s.Urgencies {
		f.Add(UrgencyKey(u))
	}
}
