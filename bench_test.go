// Benchmarks: one Benchmark<ID>... target per experiment in DESIGN.md's
// index (E1–E8, A1–A4) — each regenerates its table at quick scale — plus
// micro-benchmarks of the hot paths (gossip merge, aggregation, Bloom
// tests, routing, caching).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Full-size tables come from cmd/newswire-bench.
package newswire_test

import (
	"fmt"
	"testing"
	"time"

	"newswire"
	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/cache"
	"newswire/internal/experiments"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/sqlagg"
	"newswire/internal/value"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// benchOpts returns distinct-seed quick options per iteration so repeated
// runs exercise different deterministic universes.
func benchOpts(i int) experiments.Options {
	return experiments.Options{Quick: true, Seed: int64(i + 1)}
}

func BenchmarkE1DeliveryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE1(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE2PullRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE2(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE3BloomAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE3(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE4PublisherLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE4(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE5Overload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE5(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE6Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE6(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE7(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE8FilterScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunE8(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkA1QueueStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunA1(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkA2RepElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunA2(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkA3ZoneScoping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunA3(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkA4GossipParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunA4(benchOpts(i)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkBloomAddTest(b *testing.B) {
	f := bloom.New(bloom.DefaultBits, bloom.DefaultHashes)
	subjects := news.StandardSubjects
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := subjects[i%len(subjects)]
		f.Add(s)
		if !f.Test(s) {
			b.Fatal("false negative")
		}
	}
}

func BenchmarkBloomMerge(b *testing.B) {
	x := bloom.New(bloom.DefaultBits, bloom.DefaultHashes)
	y := bloom.New(bloom.DefaultBits, bloom.DefaultHashes)
	for _, s := range news.StandardSubjects {
		y.Add(s)
	}
	snapshot := y.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.MergeBytes(snapshot); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregationEval(b *testing.B) {
	prog := sqlagg.MustParse(`SELECT
		SUM(COALESCE(nmembers, 1)) AS nmembers,
		REPS(3, load, COALESCE(reps, addr)) AS reps,
		MINV(load, addr) AS addr,
		MIN(load) AS load,
		BIT_OR(subs) AS subs`)
	rows := make([]value.Map, 64)
	blob := make([]byte, 128)
	for i := range rows {
		rows[i] = value.Map{
			"addr": value.String(fmt.Sprintf("n%d", i)),
			"load": value.Float(float64(i) / 64),
			"subs": value.Bytes(blob),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Eval(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueMapCodec(b *testing.B) {
	m := value.Map{
		"addr": value.String("node-1:9000"),
		"load": value.Float(0.25),
		"subs": value.Bytes(make([]byte, 128)),
		"reps": value.Strings([]string{"a:1", "b:2", "c:3"}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := m.AppendBinary(nil)
		if _, _, err := value.DecodeMap(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardFilterBloom(b *testing.B) {
	geo := pubsub.DefaultGeometry
	filter := pubsub.ForwardFilter(pubsub.ModeBloom, geo, nil)
	f := bloom.New(geo.Bits, geo.Hashes)
	f.Add("tech/linux")
	row := astrolabe.Row{
		Name:  "child",
		Attrs: value.Map{astrolabe.AttrSubs: value.Bytes(f.Bytes())},
	}
	it := &news.Item{
		Publisher: "p", ID: "i", Headline: "h", Body: "b",
		Subjects: []string{"tech/linux"}, Published: time.Unix(0, 0),
	}
	env, err := pubsub.EncodeItem(it, pubsub.ModeBloom, geo, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !filter("/", row, &env) {
			b.Fatal("filter rejected subscribed item")
		}
	}
}

func BenchmarkCachePut(b *testing.B) {
	c, err := cache.New(cache.Config{Clock: vtime.NewVirtual(), MaxItems: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(wire.ItemEnvelope{
			Publisher: "p", ItemID: fmt.Sprintf("i%d", i),
			Subjects: []string{"tech/linux"},
		})
	}
}

func BenchmarkNITFRoundTrip(b *testing.B) {
	it := &news.Item{
		Publisher: "reuters", ID: "item", Headline: "headline",
		Abstract: "abstract", Body: "body text of moderate length for the benchmark",
		Subjects: []string{"world/asia"}, Urgency: 4,
		Published: time.Unix(1017619200, 0).UTC(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := news.MarshalNITF(it)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := news.UnmarshalNITF(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGossipRound measures one full gossip round of a 64-node
// cluster (ticks plus message drain) in the simulator, comparing the
// full-state anti-entropy fallback against digest-based delta gossip on
// the paper's 64-row leaf-zone shape. The bytes/round metric is the
// steady-state network traffic the whole cluster generates per round.
func BenchmarkGossipRound(b *testing.B) {
	run := func(b *testing.B, fullState, traced bool, healthEvery int) {
		cluster, err := newswire.NewCluster(newswire.ClusterConfig{
			N: 64, Branching: 64, Seed: 1, Trace: traced,
			Customize: func(i int, cfg *newswire.Config) {
				cfg.DisableDeltaGossip = fullState
				cfg.HealthEvery = healthEvery
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range cluster.Nodes {
			if err := n.Subscribe("tech/linux"); err != nil {
				b.Fatal(err)
			}
		}
		cluster.RunRounds(5)
		startBytes, _ := cluster.Net.BytesTotals()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cluster.RunRounds(1)
		}
		b.StopTimer()
		endBytes, _ := cluster.Net.BytesTotals()
		b.ReportMetric(float64(endBytes-startBytes)/float64(b.N), "bytes/round")
	}
	b.Run("full", func(b *testing.B) { run(b, true, false, 0) })
	b.Run("delta", func(b *testing.B) { run(b, false, false, 0) })
	// The traced arm attaches the span collector; gossip traffic emits no
	// spans, so any delta against the arm above is pure recorder overhead.
	b.Run("delta-traced", func(b *testing.B) { run(b, false, true, 0) })
	// The health arms fold sys$health$* telemetry digests into the MIB
	// every 2 ticks; their deltas over the arms above are the gossip-borne
	// cost of the self-monitoring plane (E12 gates them at <= 5%).
	b.Run("delta-health", func(b *testing.B) { run(b, false, false, 2) })
	b.Run("delta-health-traced", func(b *testing.B) { run(b, false, true, 2) })
}

// TestGossipRoundTraceOverheadGuard is the CI gate on the disabled-tracing
// hot path: a steady-state gossip round with a nil recorder must stay near
// the pre-observability baseline, and attaching a recorder must not change
// the gossip path's allocations at all — gossip emits no spans. Note the
// ceiling is calibrated to testing.AllocsPerRun, which reads well above
// the amortized -benchmem number for the same workload (~8.5k/round here
// vs the benchmark's ~3.6k delta allocs/op: shared-row caches warmed in
// early rounds amortize across a long benchmark but not across 3 runs).
func TestGossipRoundTraceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	measure := func(traced bool) float64 {
		cluster, err := newswire.NewCluster(newswire.ClusterConfig{
			N: 64, Branching: 64, Seed: 1, Trace: traced,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range cluster.Nodes {
			if err := n.Subscribe("tech/linux"); err != nil {
				t.Fatal(err)
			}
		}
		cluster.RunRounds(5)
		return testing.AllocsPerRun(3, func() { cluster.RunRounds(1) })
	}
	nilRec := measure(false)
	attached := measure(true)
	t.Logf("allocs/round: recorder nil %.0f, attached %.0f", nilRec, attached)
	const ceiling = 9500 // ~8.5k measured via AllocsPerRun + ~10% headroom
	if nilRec > ceiling {
		t.Errorf("nil-recorder gossip round allocates %.0f/op, above the %d baseline ceiling", nilRec, ceiling)
	}
	if attached > ceiling {
		t.Errorf("attached-recorder gossip round allocates %.0f/op, above the %d ceiling", attached, ceiling)
	}
	// The benchmark's delta vs delta-traced arms are alloc-identical; allow
	// only trivial jitter between the two harness runs here.
	if attached-nilRec > 500 {
		t.Errorf("attaching a recorder added %.0f allocs/round to the gossip path, want ~0", attached-nilRec)
	}
}

// BenchmarkGossipRound4096 measures one gossip round of a 4096-node
// cluster (the largest standard E1 point) under the serial engine and
// under the deterministic parallel executor with GOMAXPROCS workers.
// Both arms produce bit-identical simulations; the parallel arm's gain
// scales with available cores (a single-core host shows parity). Run
// with -benchmem: the alloc reduction between arms and across revisions
// is part of what this benchmark guards.
func BenchmarkGossipRound4096(b *testing.B) {
	run := func(b *testing.B, workers int) {
		cluster, err := newswire.NewCluster(newswire.ClusterConfig{
			N: 4096, Branching: 64, Seed: 1, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range cluster.Nodes {
			if err := n.Subscribe("tech/linux"); err != nil {
				b.Fatal(err)
			}
		}
		cluster.RunRounds(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cluster.RunRounds(1)
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 0) })
	b.Run("parallel", func(b *testing.B) { run(b, -1) })
}

// BenchmarkPublishDelivery measures one end-to-end publish through a
// warmed 64-node cluster.
func BenchmarkPublishDelivery(b *testing.B) {
	cluster, err := newswire.NewCluster(newswire.ClusterConfig{
		N: 64, Branching: 16, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range cluster.Nodes {
		if err := n.Subscribe("tech/linux"); err != nil {
			b.Fatal(err)
		}
	}
	cluster.RunRounds(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := &news.Item{
			Publisher: "bench", ID: fmt.Sprintf("b%d", i),
			Headline: "x", Body: "y",
			Subjects:  []string{"tech/linux"},
			Published: cluster.Eng.Now(),
		}
		if err := cluster.Nodes[0].PublishItem(it, "", ""); err != nil {
			b.Fatal(err)
		}
		cluster.RunFor(2 * time.Second)
	}
}
