package main

import (
	"strings"
	"testing"
)

func TestRunListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-run", "E99"}); err != nil &&
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	// A1 is the cheapest experiment (milliseconds); run it for real.
	if err := run([]string{"-run", "A1", "-quick", "-seed", "2"}); err != nil {
		t.Fatalf("quick A1 run failed: %v", err)
	}
}
