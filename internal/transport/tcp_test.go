package transport

import (
	"sync"
	"testing"
	"time"

	"newswire/internal/value"
	"newswire/internal/wire"
)

func gossipMsg(zone string) *wire.Message {
	return &wire.Message{Kind: wire.KindGossip, Gossip: &wire.Gossip{FromZone: zone}}
}

// collector gathers delivered messages for assertions.
type collector struct {
	mu   sync.Mutex
	msgs []*wire.Message
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 64)}
}

func (c *collector) handle(m *wire.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) waitFor(t *testing.T, n int) []*wire.Message {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := make([]*wire.Message, len(c.msgs))
			copy(out, c.msgs)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages", n)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	col := newCollector()
	b, err := ListenTCP("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Send(b.Addr(), gossipMsg("/usa")); err != nil {
		t.Fatal(err)
	}
	msgs := col.waitFor(t, 1)
	if msgs[0].Gossip.FromZone != "/usa" {
		t.Fatalf("payload = %+v", msgs[0].Gossip)
	}
	if msgs[0].From != a.Addr() {
		t.Fatalf("From = %q, want %q", msgs[0].From, a.Addr())
	}
}

func TestTCPMultipleMessagesOneConnection(t *testing.T) {
	col := newCollector()
	b, err := ListenTCP("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), gossipMsg("/z")); err != nil {
			t.Fatal(err)
		}
	}
	msgs := col.waitFor(t, n)
	if len(msgs) < n {
		t.Fatalf("got %d messages, want %d", len(msgs), n)
	}
}

func TestTCPBidirectional(t *testing.T) {
	colA, colB := newCollector(), newCollector()
	a, err := ListenTCP("127.0.0.1:0", colA.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", colB.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), gossipMsg("/a-to-b")); err != nil {
		t.Fatal(err)
	}
	colB.waitFor(t, 1)
	if err := b.Send(a.Addr(), gossipMsg("/b-to-a")); err != nil {
		t.Fatal(err)
	}
	msgs := colA.waitFor(t, 1)
	if msgs[0].Gossip.FromZone != "/b-to-a" {
		t.Fatalf("wrong direction: %+v", msgs[0].Gossip)
	}
}

func TestTCPSendInvalidMessage(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("127.0.0.1:1", &wire.Message{Kind: wire.KindGossip}); err == nil {
		t.Fatal("invalid message should be rejected before dialing")
	}
}

func TestTCPSendToDeadPeerFails(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// A port that is almost certainly closed.
	if err := a.Send("127.0.0.1:1", gossipMsg("/x")); err == nil {
		t.Fatal("send to dead peer should fail")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), gossipMsg("/x")); err == nil {
		t.Fatal("send on closed transport should fail")
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	col := newCollector()
	b, err := ListenTCP("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()

	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Send(bAddr, gossipMsg("/one")); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1)

	// Restart b on the same address.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := ListenTCP(bAddr, col.handle)
	if err != nil {
		t.Skipf("could not rebind %s immediately: %v", bAddr, err)
	}
	defer b2.Close()

	// First send may hit the stale connection; Send retries internally.
	// The kernel may accept a write on a half-dead socket, so allow one
	// more attempt.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(bAddr, gossipMsg("/two")); err == nil {
			col.mu.Lock()
			n := len(col.msgs)
			col.mu.Unlock()
			if n >= 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("never delivered after peer restart")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	col := newCollector()
	b, err := ListenTCP("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	payload := make([]byte, 1<<20) // 1 MiB item
	for i := range payload {
		payload[i] = byte(i)
	}
	msg := &wire.Message{
		Kind: wire.KindMulticast,
		Multicast: &wire.Multicast{
			TargetZone: "/",
			Envelope:   wire.ItemEnvelope{Publisher: "p", ItemID: "big", Payload: payload},
		},
	}
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	msgs := col.waitFor(t, 1)
	if len(msgs[0].Multicast.Envelope.Payload) != len(payload) {
		t.Fatalf("payload truncated: %d bytes", len(msgs[0].Multicast.Envelope.Payload))
	}
}

func TestTCPRejectsOversizedMessage(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	huge := &wire.Message{
		Kind: wire.KindMulticast,
		Multicast: &wire.Multicast{
			TargetZone: "/",
			Envelope:   wire.ItemEnvelope{Publisher: "p", ItemID: "x", Payload: make([]byte, 17<<20)},
		},
	}
	if err := a.Send(b.Addr(), huge); err == nil {
		t.Fatal("17 MiB message accepted past the frame limit")
	}
}

func TestTCPCloseWhilePeerHoldsConnection(t *testing.T) {
	// Regression for the shutdown deadlock: Close must terminate read
	// goroutines on inbound connections whose peers are still up.
	col := newCollector()
	b, err := ListenTCP("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Send(b.Addr(), gossipMsg("/x")); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1)

	// b has an inbound connection from a, which stays open. Close must
	// not hang.
	done := make(chan struct{})
	go func() {
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on an open inbound connection")
	}
}

// TestTCPAckRoundTrip drives a reliable-forwarding exchange over real
// TCP: a multicast with AckSeq set goes a -> b, and b acks by dialing
// the From address the transport stamped on the inbound message.
func TestTCPAckRoundTrip(t *testing.T) {
	ackCol := newCollector()
	a, err := ListenTCP("127.0.0.1:0", ackCol.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var b Transport
	b, err = ListenTCP("127.0.0.1:0", func(m *wire.Message) {
		if m.Kind != wire.KindMulticast || m.Multicast.AckSeq == 0 {
			return
		}
		// Echo seq/key/zone back to the sender, as the router does.
		_ = b.Send(m.From, &wire.Message{
			Kind: wire.KindMulticastAck,
			MulticastAck: &wire.MulticastAck{
				Seq:        m.Multicast.AckSeq,
				Key:        m.Multicast.Envelope.Key(),
				TargetZone: m.Multicast.TargetZone,
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	env := wire.ItemEnvelope{Publisher: "reuters", ItemID: "ack-rt"}
	if err := a.Send(b.Addr(), &wire.Message{
		Kind: wire.KindMulticast,
		Multicast: &wire.Multicast{
			TargetZone: "/usa",
			AckSeq:     42,
			Envelope:   env,
		},
	}); err != nil {
		t.Fatal(err)
	}

	msgs := ackCol.waitFor(t, 1)
	ack := msgs[0]
	if ack.Kind != wire.KindMulticastAck || ack.MulticastAck == nil {
		t.Fatalf("got %v, want a multicast-ack", ack.Kind)
	}
	if ack.MulticastAck.Seq != 42 {
		t.Errorf("ack seq = %d, want 42", ack.MulticastAck.Seq)
	}
	if ack.MulticastAck.Key != env.Key() {
		t.Errorf("ack key = %q, want %q", ack.MulticastAck.Key, env.Key())
	}
	if ack.MulticastAck.TargetZone != "/usa" {
		t.Errorf("ack zone = %q, want /usa", ack.MulticastAck.TargetZone)
	}
	if ack.From != b.Addr() {
		t.Errorf("ack From = %q, want %q", ack.From, b.Addr())
	}
}

// allKindMessages builds one valid message of every wire kind.
func allKindMessages() []*wire.Message {
	issued := time.Unix(1017619200, 0).UTC()
	return []*wire.Message{
		{Kind: wire.KindGossip, Gossip: &wire.Gossip{
			FromZone: "/usa/ny",
			Rows: []wire.RowUpdate{{
				Zone: "/usa/ny", Name: "node-1",
				Attrs:  value.Map{"load": value.Float(0.3), "subs": value.Bytes(make([]byte, 128))},
				Issued: issued, Owner: "node-1:9000",
			}},
		}},
		{Kind: wire.KindGossipReply, GossipReply: &wire.GossipReply{
			FromZone: "/usa/ny",
			Rows: []wire.RowUpdate{{
				Zone: "/", Name: "usa",
				Attrs:  value.Map{"nmembers": value.Int(12)},
				Issued: issued, Owner: "node-2:9000",
			}},
		}},
		{Kind: wire.KindGossipDigest, GossipDigest: &wire.GossipDigest{
			FromZone: "/usa/ny",
			Digests: []wire.RowDigest{
				{Zone: "/usa/ny", Name: "node-1", Issued: issued, Hash: 0xdeadbeef},
			},
		}},
		{Kind: wire.KindGossipDelta, GossipDelta: &wire.GossipDelta{
			FromZone: "/usa/ny",
			Rows: []wire.RowUpdate{{
				Zone: "/usa/ny", Name: "node-3",
				Attrs:  value.Map{"load": value.Float(0.1)},
				Issued: issued, Owner: "node-3:9000",
			}},
			Want: []wire.RowRef{{Zone: "/", Name: "asia"}},
		}},
		{Kind: wire.KindMulticast, Multicast: &wire.Multicast{
			TargetZone: "/asia", Hops: 2, Deliver: true, AckSeq: 7,
			Envelope: wire.ItemEnvelope{
				Publisher: "reuters", ItemID: "item-42", Revision: 1,
				Subjects: []string{"world/asia"}, SubjectBits: []uint32{17, 403},
				ScopeZone: "/asia", Predicate: "premium", Published: issued,
				Payload: []byte("<nitf/>"), Signer: "reuters", Sig: []byte{9, 9},
			},
		}},
		{Kind: wire.KindMulticastAck, MulticastAck: &wire.MulticastAck{
			Seq: 7, Key: "reuters/item-42#1", TargetZone: "/asia",
		}},
		{Kind: wire.KindStateRequest, StateRequest: &wire.StateRequest{
			Since: issued, Subjects: []string{"tech/linux"}, MaxItems: 64,
		}},
		{Kind: wire.KindStateReply, StateReply: &wire.StateReply{
			Envelopes: []wire.ItemEnvelope{{
				Publisher: "ap", ItemID: "it-1", Subjects: []string{"tech"},
				Published: issued, Payload: []byte("body"),
			}},
			Truncated: true,
		}},
	}
}

// TestTCPAllKindsBothCodecs pushes one message of every kind through a
// real TCP connection under the binary codec and again under the gob
// fallback, checking the payloads survive either wire format. The
// receiver auto-detects the codec per frame, so a mixed cluster keeps
// interoperating during the transition release.
func TestTCPAllKindsBothCodecs(t *testing.T) {
	for _, gobWire := range []bool{false, true} {
		name := "binary"
		if gobWire {
			name = "gob-fallback"
		}
		t.Run(name, func(t *testing.T) {
			wire.SetGobFallback(gobWire)
			defer wire.SetGobFallback(false)

			col := newCollector()
			b, err := ListenTCP("127.0.0.1:0", col.handle)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			a, err := ListenTCP("127.0.0.1:0", func(*wire.Message) {})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()

			sent := allKindMessages()
			for _, m := range sent {
				if err := a.Send(b.Addr(), m); err != nil {
					t.Fatalf("send %v: %v", m.Kind, err)
				}
			}
			got := col.waitFor(t, len(sent))
			for i, m := range got {
				if m.Kind != sent[i].Kind {
					t.Fatalf("message %d arrived as %v, want %v", i, m.Kind, sent[i].Kind)
				}
			}
			// Spot-check deep payload fields survived the round trip.
			if rows := got[0].Gossip.Rows; len(rows) != 1 ||
				!rows[0].Attrs.Equal(sent[0].Gossip.Rows[0].Attrs) {
				t.Fatalf("gossip row attrs corrupted: %+v", rows)
			}
			if d := got[2].GossipDigest.Digests[0]; d.Hash != 0xdeadbeef {
				t.Fatalf("digest hash = %x", d.Hash)
			}
			if w := got[3].GossipDelta.Want; len(w) != 1 || w[0].Name != "asia" {
				t.Fatalf("delta want corrupted: %+v", w)
			}
			env := got[4].Multicast.Envelope
			if env.Key() != "reuters/item-42#1" || string(env.Payload) != "<nitf/>" {
				t.Fatalf("multicast envelope corrupted: %+v", env)
			}
			if got[5].MulticastAck.Seq != 7 {
				t.Fatalf("ack seq = %d", got[5].MulticastAck.Seq)
			}
			if got[6].StateRequest.MaxItems != 64 {
				t.Fatalf("state request corrupted: %+v", got[6].StateRequest)
			}
			sr := got[7].StateReply
			if !sr.Truncated || len(sr.Envelopes) != 1 || sr.Envelopes[0].ItemID != "it-1" {
				t.Fatalf("state reply corrupted: %+v", sr)
			}
		})
	}
}
