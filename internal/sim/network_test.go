package sim

import (
	"testing"
	"time"

	"newswire/internal/wire"
)

func gossipMsg() *wire.Message {
	return &wire.Message{Kind: wire.KindGossip, Gossip: &wire.Gossip{FromZone: "/"}}
}

func newTestNet(t *testing.T, link LinkModel) (*Engine, *Network) {
	t.Helper()
	e := NewEngine(99)
	return e, NewNetwork(e, link)
}

func TestNetworkDeliversWithinLatencyBounds(t *testing.T) {
	link := LinkModel{LatencyMin: 10 * time.Millisecond, LatencyMax: 50 * time.Millisecond}
	e, n := newTestNet(t, link)

	var deliveredAt time.Time
	n.Attach("b", func(m *wire.Message) { deliveredAt = e.Now() })
	a := n.Attach("a", func(*wire.Message) {})

	start := e.Now()
	if err := a.Send("b", gossipMsg()); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle(0)
	d := deliveredAt.Sub(start)
	if d < link.LatencyMin || d > link.LatencyMax {
		t.Fatalf("delivery latency %v outside [%v, %v]", d, link.LatencyMin, link.LatencyMax)
	}
}

func TestNetworkSetsFrom(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	var got string
	n.Attach("b", func(m *wire.Message) { got = m.From })
	a := n.Attach("a", nil)
	if err := a.Send("b", gossipMsg()); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle(0)
	if got != "a" {
		t.Fatalf("From = %q, want a", got)
	}
}

func TestNetworkRejectsInvalidMessage(t *testing.T) {
	_, n := newTestNet(t, LinkModel{})
	a := n.Attach("a", nil)
	if err := a.Send("b", &wire.Message{Kind: wire.KindGossip}); err == nil {
		t.Fatal("invalid message should be rejected")
	}
}

func TestNetworkSendToUnknownDrops(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	a := n.Attach("a", nil)
	if err := a.Send("ghost", gossipMsg()); err != nil {
		t.Fatalf("send to unknown should not error locally: %v", err)
	}
	e.RunUntilIdle(0)
	sent, delivered, dropped := n.Totals()
	if sent != 1 || delivered != 0 || dropped != 1 {
		t.Fatalf("totals = %d/%d/%d, want 1/0/1", sent, delivered, dropped)
	}
}

func TestNetworkLoss(t *testing.T) {
	e, n := newTestNet(t, LinkModel{LossRate: 0.5})
	received := 0
	n.Attach("b", func(*wire.Message) { received++ })
	a := n.Attach("a", nil)
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send("b", gossipMsg()); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle(0)
	if received < total/3 || received > 2*total/3 {
		t.Fatalf("received %d of %d with 50%% loss", received, total)
	}
}

func TestNetworkCrashStopsDelivery(t *testing.T) {
	e, n := newTestNet(t, LinkModel{LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond})
	received := 0
	n.Attach("b", func(*wire.Message) { received++ })
	a := n.Attach("a", nil)

	n.Crash("b")
	if !n.Crashed("b") {
		t.Fatal("Crashed not reported")
	}
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if received != 0 {
		t.Fatal("crashed node received a message")
	}

	n.Restore("b")
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if received != 1 {
		t.Fatalf("restored node received %d messages, want 1", received)
	}
}

func TestNetworkCrashDropsInFlight(t *testing.T) {
	e, n := newTestNet(t, LinkModel{LatencyMin: 100 * time.Millisecond, LatencyMax: 100 * time.Millisecond})
	received := 0
	n.Attach("b", func(*wire.Message) { received++ })
	a := n.Attach("a", nil)

	a.Send("b", gossipMsg())
	// Crash b while the message is in flight.
	e.After(10*time.Millisecond, func() { n.Crash("b") })
	e.RunUntilIdle(0)
	if received != 0 {
		t.Fatal("in-flight message delivered to crashed node")
	}
}

func TestNetworkCrashedSenderDrops(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	received := 0
	n.Attach("b", func(*wire.Message) { received++ })
	a := n.Attach("a", nil)
	n.Crash("a")
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if received != 0 {
		t.Fatal("crashed sender's message was delivered")
	}
}

func TestNetworkBlockUnblock(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	received := 0
	n.Attach("b", func(*wire.Message) { received++ })
	a := n.Attach("a", nil)

	n.Block("a", "b")
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if received != 0 {
		t.Fatal("blocked link delivered")
	}
	n.Unblock("a", "b")
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if received != 1 {
		t.Fatalf("unblocked link delivered %d, want 1", received)
	}
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	got := map[string]int{}
	for _, addr := range []string{"a1", "a2", "b1"} {
		addr := addr
		n.Attach(addr, func(*wire.Message) { got[addr]++ })
	}
	a1 := n.Attach("a1", func(*wire.Message) { got["a1"]++ })

	n.Partition([]string{"a1", "a2"}, []string{"b1"})
	a1.Send("b1", gossipMsg())
	a1.Send("a2", gossipMsg())
	e.RunUntilIdle(0)
	if got["b1"] != 0 {
		t.Fatal("partitioned link delivered")
	}
	if got["a2"] != 1 {
		t.Fatal("intra-partition link should work")
	}

	n.Heal([]string{"a1", "a2"}, []string{"b1"})
	a1.Send("b1", gossipMsg())
	e.RunUntilIdle(0)
	if got["b1"] != 1 {
		t.Fatal("healed link did not deliver")
	}
}

func TestNetworkStats(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	n.Attach("b", func(*wire.Message) {})
	a := n.Attach("a", nil)
	a.Send("b", gossipMsg())
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)

	as, bs := n.Stats("a"), n.Stats("b")
	if as.MsgsSent != 2 || as.BytesSent <= 0 {
		t.Fatalf("sender stats = %+v", as)
	}
	if bs.MsgsReceived != 2 || bs.BytesReceived != as.BytesSent {
		t.Fatalf("receiver stats = %+v (sender sent %d bytes)", bs, as.BytesSent)
	}
	if unknown := n.Stats("nope"); unknown != (EndpointStats{}) {
		t.Fatalf("unknown endpoint stats = %+v", unknown)
	}
}

func TestEndpointClose(t *testing.T) {
	_, n := newTestNet(t, LinkModel{})
	a := n.Attach("a", nil)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", gossipMsg()); err == nil {
		t.Fatal("send on closed endpoint should fail")
	}
}

func TestNetworkReattachReplacesEndpoint(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	firstGot, secondGot := 0, 0
	n.Attach("b", func(*wire.Message) { firstGot++ })
	n.Attach("b", func(*wire.Message) { secondGot++ }) // restart
	a := n.Attach("a", nil)
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if firstGot != 0 || secondGot != 1 {
		t.Fatalf("delivery went to old endpoint: first=%d second=%d", firstGot, secondGot)
	}
}

func TestCrashAfterDropsMessagesInFlight(t *testing.T) {
	link := LinkModel{LatencyMin: 20 * time.Millisecond, LatencyMax: 20 * time.Millisecond}
	e, n := newTestNet(t, link)
	got := 0
	n.Attach("b", func(*wire.Message) { got++ })
	a := n.Attach("a", nil)

	// b crashes 10ms from now; a message sent now (20ms latency) must be
	// lost even though b was alive at transmission time.
	n.CrashAfter("b", 10*time.Millisecond)
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if got != 0 {
		t.Fatalf("message delivered to a node that crashed mid-flight (got=%d)", got)
	}
	if !n.Crashed("b") {
		t.Fatal("CrashAfter never crashed b")
	}
}

func TestPartitionOneWay(t *testing.T) {
	e, n := newTestNet(t, LinkModel{})
	aGot, bGot := 0, 0
	a := n.Attach("a", func(*wire.Message) { aGot++ })
	b := n.Attach("b", func(*wire.Message) { bGot++ })

	n.PartitionOneWay([]string{"a"}, []string{"b"})
	a.Send("b", gossipMsg()) // blocked direction
	b.Send("a", gossipMsg()) // open direction
	e.RunUntilIdle(0)
	if bGot != 0 {
		t.Fatalf("a->b delivered through one-way partition (bGot=%d)", bGot)
	}
	if aGot != 1 {
		t.Fatalf("b->a should be unaffected (aGot=%d)", aGot)
	}

	n.HealOneWay([]string{"a"}, []string{"b"})
	a.Send("b", gossipMsg())
	e.RunUntilIdle(0)
	if bGot != 1 {
		t.Fatalf("a->b still blocked after HealOneWay (bGot=%d)", bGot)
	}
}

func TestSetLinkLossOverride(t *testing.T) {
	// Model default is lossless; force 100% loss on one direction only.
	e, n := newTestNet(t, LinkModel{})
	aGot, bGot := 0, 0
	a := n.Attach("a", func(*wire.Message) { aGot++ })
	b := n.Attach("b", func(*wire.Message) { bGot++ })

	n.SetLinkLoss("a", "b", 1.0)
	for i := 0; i < 10; i++ {
		a.Send("b", gossipMsg())
		b.Send("a", gossipMsg())
	}
	e.RunUntilIdle(0)
	if bGot != 0 {
		t.Fatalf("a->b should lose everything at rate 1.0 (bGot=%d)", bGot)
	}
	if aGot != 10 {
		t.Fatalf("b->a should be lossless (aGot=%d)", aGot)
	}

	// Override can also make a lossy model reliable.
	e2, n2 := newTestNet(t, LinkModel{LossRate: 1.0})
	got := 0
	n2.Attach("d", func(*wire.Message) { got++ })
	c := n2.Attach("c", nil)
	n2.SetLinkLoss("c", "d", 0)
	c.Send("d", gossipMsg())
	n2.ClearLinkLoss("c", "d")
	c.Send("d", gossipMsg())
	e2.RunUntilIdle(0)
	if got != 1 {
		t.Fatalf("loss override/clear sequence delivered %d, want 1", got)
	}
}
