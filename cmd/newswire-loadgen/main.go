// Command newswire-loadgen measures the live transport's fan-out
// throughput over real loopback sockets (experiment E11): one hub
// publishes news frames to thousands of subscriber connections and the
// tool reports sustained messages/sec, bytes/sec, delivery latency
// percentiles and drops, for the asynchronous writer path and the legacy
// synchronous ablation.
//
// Usage:
//
//	newswire-loadgen -subs 10000                 # full E11 point, both arms
//	newswire-loadgen -subs 2000 -step 2s         # CI smoke size
//	newswire-loadgen -sync-transport             # ablation arm only
//	newswire-loadgen -json artifacts/            # write BENCH_E11.json
//
// The subscriber sockets live in a child process (the binary re-executes
// itself with -sink), so hub and subscribers each stay within the
// per-process descriptor limit and the hub's send path is measured
// without 10k inbound readers in the same runtime. Every subscriber
// address is a distinct loopback IP (127.0.x.y), giving the hub one real
// connection per subscriber like distinct remote peers would.
//
// The sink cheaply validates framing on every frame and fully decodes
// every -decode-every'th one (checksum + delivery latency); a separate
// moderate-rate verification phase decodes every frame under both wire
// codecs, which is where the zero-corruption figure comes from.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"newswire/internal/metrics"
	"newswire/internal/transport"
	"newswire/internal/wire"
)

const maxFrame = 16 << 20

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswire-loadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	subs        int
	payload     int
	pubRates    []int
	step        time.Duration
	queue       int
	decodeEvery int
	verifyItems int
	jsonDir     string
	syncOnly    bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswire-loadgen", flag.ContinueOnError)
	var (
		subs        = fs.Int("subs", 10000, "subscriber connections")
		payload     = fs.Int("payload", 512, "news item payload bytes (min 16)")
		rates       = fs.String("pub-rates", "2,5,10,20,40,80", "comma-separated publish rates (items/sec), one step each")
		step        = fs.Duration("step", 3*time.Second, "duration of each rate step")
		queue       = fs.Int("queue", 0, "per-peer send queue length (0 = transport default)")
		decodeEvery = fs.Int("decode-every", 16, "sink fully decodes every Nth frame (latency+checksum); framing is checked on all")
		verifyItems = fs.Int("verify-items", 256, "items per codec in the full-decode verification phase (0 = skip)")
		jsonDir     = fs.String("json", "", "directory to write BENCH_E11.json into")
		syncOnly    = fs.Bool("sync-transport", false, "measure only the legacy synchronous-writes arm (ablation)")
		sink        = fs.Bool("sink", false, "internal: run as the subscriber sink child process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sink {
		return sinkMain(*decodeEvery)
	}
	if *subs < 1 || *payload < 16 {
		return fmt.Errorf("need -subs >= 1 and -payload >= 16")
	}
	var pubRates []int
	for _, s := range strings.Split(*rates, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || r < 1 {
			return fmt.Errorf("bad -pub-rates entry %q", s)
		}
		pubRates = append(pubRates, r)
	}
	return loadgen(options{
		subs: *subs, payload: *payload, pubRates: pubRates, step: *step,
		queue: *queue, decodeEvery: *decodeEvery, verifyItems: *verifyItems,
		jsonDir: *jsonDir, syncOnly: *syncOnly,
	})
}

// raiseFDLimit lifts the soft descriptor limit to the hard one; tens of
// thousands of sockets per process need it on default configurations.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// --- result schema (BENCH_E11.json) ---

type stepResult struct {
	TargetItemsPerSec int     `json:"target_items_per_sec"`
	PublishedItems    int64   `json:"published_items"`
	OfferedFrames     int64   `json:"offered_frames"`
	DeliveredFrames   int64   `json:"delivered_frames"`
	MsgsPerSec        float64 `json:"msgs_per_sec"`
	BytesPerSec       float64 `json:"bytes_per_sec"`
	P50Ms             float64 `json:"p50_ms"`
	P99Ms             float64 `json:"p99_ms"`
	Drops             int64   `json:"drops"`
	Corrupt           int64   `json:"corrupt"`
}

type armResult struct {
	Label      string       `json:"label"`
	SyncWrites bool         `json:"sync_writes"`
	Steps      []stepResult `json:"steps"`
	// Sustained figures come from the best step: what the path delivered
	// to subscribers, not what the publisher offered.
	SustainedMsgsPerSec  float64 `json:"sustained_msgs_per_sec"`
	SustainedBytesPerSec float64 `json:"sustained_bytes_per_sec"`
	// Clean percentiles come from the highest step that delivered >= 95%
	// of its offered frames with zero drops — latency before the queues
	// saturate, which is what a subscriber actually experiences.
	CleanP50Ms   float64 `json:"clean_p50_ms"`
	CleanP99Ms   float64 `json:"clean_p99_ms"`
	TotalDrops   int64   `json:"total_drops"`
	TotalCorrupt int64   `json:"total_corrupt"`
	// Hub-side syscall accounting: frames per writev under the heaviest
	// step (async arm only; the sync arm always writes one frame per two
	// syscalls).
	MeanFramesPerFlush float64 `json:"mean_frames_per_flush,omitempty"`
}

type verifyResult struct {
	Codec   string `json:"codec"`
	Frames  int64  `json:"frames"`
	Decoded int64  `json:"decoded"`
	Corrupt int64  `json:"corrupt"`
}

type report struct {
	ID                   string         `json:"id"`
	Title                string         `json:"title"`
	Subs                 int            `json:"subs"`
	PayloadBytes         int            `json:"payload_bytes"`
	QueueLen             int            `json:"queue_len"`
	StepSeconds          float64        `json:"step_seconds"`
	PubRates             []int          `json:"pub_rates"`
	DecodeEvery          int            `json:"decode_every"`
	Arms                 []armResult    `json:"arms"`
	SpeedupAsyncOverSync float64        `json:"speedup_async_over_sync,omitempty"`
	Verify               []verifyResult `json:"verify,omitempty"`
	GOMAXPROCS           int            `json:"gomaxprocs"`
	NumCPU               int            `json:"num_cpu"`
	WallSeconds          float64        `json:"wall_seconds"`
}

// --- parent: hub + orchestration ---

func loadgen(o options) error {
	raiseFDLimit()
	start := time.Now()

	sink, err := startSink(o.decodeEvery)
	if err != nil {
		return err
	}
	defer sink.close()

	addrs := subscriberAddrs(o.subs, sink.port)

	rep := report{
		ID:    "E11",
		Title: "Live transport fan-out throughput (loopback)",
		Subs:  o.subs, PayloadBytes: o.payload, QueueLen: o.queue,
		StepSeconds: o.step.Seconds(), PubRates: o.pubRates, DecodeEvery: o.decodeEvery,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}

	arms := []struct {
		label string
		sync  bool
	}{{"async", false}, {"sync", true}}
	if o.syncOnly {
		arms = arms[1:]
	}
	for _, arm := range arms {
		fmt.Printf("== arm %s: %d subscribers, %dB payload ==\n", arm.label, o.subs, o.payload)
		res, err := runArm(o, sink, addrs, arm.label, arm.sync)
		if err != nil {
			return fmt.Errorf("arm %s: %w", arm.label, err)
		}
		rep.Arms = append(rep.Arms, res)
	}
	var asyncSust, syncSust float64
	for _, a := range rep.Arms {
		if a.SyncWrites {
			syncSust = a.SustainedMsgsPerSec
		} else {
			asyncSust = a.SustainedMsgsPerSec
		}
	}
	if asyncSust > 0 && syncSust > 0 {
		rep.SpeedupAsyncOverSync = asyncSust / syncSust
		fmt.Printf("speedup async/sync: %.2fx (%.0f vs %.0f msgs/sec)\n",
			rep.SpeedupAsyncOverSync, asyncSust, syncSust)
	}

	if o.verifyItems > 0 {
		for _, codec := range []struct {
			name string
			gob  bool
		}{{"binary", false}, {"gob", true}} {
			vr, err := runVerify(o, sink, addrs, codec.name, codec.gob)
			if err != nil {
				return fmt.Errorf("verify %s: %w", codec.name, err)
			}
			fmt.Printf("verify %-6s: %d frames, %d decoded, %d corrupt\n",
				vr.Codec, vr.Frames, vr.Decoded, vr.Corrupt)
			rep.Verify = append(rep.Verify, vr)
		}
	}

	rep.WallSeconds = time.Since(start).Seconds()
	if o.jsonDir != "" {
		if err := os.MkdirAll(o.jsonDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(o.jsonDir, "BENCH_E11.json")
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// subscriberAddrs spreads n subscribers across distinct loopback IPs so
// the hub keeps one connection per subscriber (every 127.x.y.z routes to
// the local host).
func subscriberAddrs(n, port int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.%d.%d:%d", 1+i/250, 1+i%250, port)
	}
	return addrs
}

func runArm(o options, sink *sinkProc, addrs []string, label string, syncWrites bool) (armResult, error) {
	res := armResult{Label: label, SyncWrites: syncWrites}
	tr, err := transport.ListenTCPWith("127.0.0.1:0", func(*wire.Message) {}, transport.TCPOptions{
		SyncWrites: syncWrites,
		QueueLen:   o.queue,
	})
	if err != nil {
		return res, err
	}
	defer tr.Close()

	// Warm-up: one frame to every subscriber establishes all connections
	// before any step is timed.
	warm := buildItem(0, o.payload)
	wf, err := tr.NewFrame(warm)
	if err != nil {
		return res, err
	}
	for _, addr := range addrs {
		if err := tr.SendFrame(addr, wf); err != nil {
			return res, fmt.Errorf("warm-up dial %s: %w", addr, err)
		}
	}
	if err := sink.waitConns(len(addrs), 60*time.Second); err != nil {
		return res, err
	}

	seq := int64(1)
	var bestFlushMean float64
	for _, rate := range o.pubRates {
		preSnap, err := sink.snap()
		if err != nil {
			return res, err
		}
		preStats := tr.TransportStats()
		preFlushes, preFlushFrames := tr.FlushBatchSizes().Count(), tr.FlushBatchSizes().Sum()

		interval := time.Second / time.Duration(rate)
		stepStart := time.Now()
		next := stepStart
		var published int64
		for time.Since(stepStart) < o.step {
			msg := buildItem(seq, o.payload)
			seq++
			published++
			if syncWrites {
				for _, addr := range addrs {
					_ = tr.Send(addr, msg)
				}
			} else {
				f, err := tr.NewFrame(msg)
				if err != nil {
					return res, err
				}
				for _, addr := range addrs {
					_ = tr.SendFrame(addr, f)
				}
			}
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else {
				next = time.Now() // behind schedule: don't accumulate debt
			}
		}
		// Let in-flight queues drain before measuring the step.
		time.Sleep(300 * time.Millisecond)
		wall := time.Since(stepStart).Seconds()

		postSnap, err := sink.snap()
		if err != nil {
			return res, err
		}
		postStats := tr.TransportStats()
		st := stepResult{
			TargetItemsPerSec: rate,
			PublishedItems:    published,
			OfferedFrames:     published * int64(len(addrs)),
			DeliveredFrames:   postSnap.Frames - preSnap.Frames,
			P50Ms:             postSnap.P50Ms,
			P99Ms:             postSnap.P99Ms,
			Drops: (postStats.QueueFullDrops + postStats.ConnDrops) -
				(preStats.QueueFullDrops + preStats.ConnDrops),
			Corrupt: postSnap.Corrupt - preSnap.Corrupt,
		}
		st.MsgsPerSec = float64(st.DeliveredFrames) / wall
		st.BytesPerSec = float64(postSnap.Bytes-preSnap.Bytes) / wall
		res.Steps = append(res.Steps, st)
		res.TotalDrops += st.Drops
		res.TotalCorrupt += st.Corrupt
		fmt.Printf("  rate %4d items/s: %9.0f msgs/s  %7.2f MB/s  p50 %6.1fms  p99 %6.1fms  drops %d\n",
			rate, st.MsgsPerSec, st.BytesPerSec/1e6, st.P50Ms, st.P99Ms, st.Drops)

		if st.MsgsPerSec > res.SustainedMsgsPerSec {
			res.SustainedMsgsPerSec = st.MsgsPerSec
			res.SustainedBytesPerSec = st.BytesPerSec
			if flushes := tr.FlushBatchSizes().Count() - preFlushes; flushes > 0 {
				bestFlushMean = (tr.FlushBatchSizes().Sum() - preFlushFrames) / float64(flushes)
			}
		}
		// A step is "clean" when the path kept up with the step's target
		// load without dropping. Compare against the target, not against
		// what the publisher managed to offer: under saturation the
		// publisher itself slows down (it shares the machine), which would
		// otherwise make an overloaded step look clean.
		targetOffered := float64(rate) * o.step.Seconds() * float64(len(addrs))
		if st.Drops == 0 && float64(st.DeliveredFrames) >= 0.95*targetOffered {
			res.CleanP50Ms, res.CleanP99Ms = st.P50Ms, st.P99Ms
		}
	}
	if !syncWrites {
		res.MeanFramesPerFlush = bestFlushMean
	}
	if res.CleanP50Ms == 0 && res.CleanP99Ms == 0 && len(res.Steps) > 0 {
		res.CleanP50Ms, res.CleanP99Ms = res.Steps[0].P50Ms, res.Steps[0].P99Ms
	}
	if err := tr.Close(); err != nil {
		return res, err
	}
	// Wait for the sink to see every connection go away, so arms don't
	// bleed into each other.
	return res, sink.waitConns(0, 30*time.Second)
}

// runVerify publishes a moderate full-decode workload under one codec to
// a subset of subscribers: every frame is decoded and checksummed, which
// is where the zero-corruption claim is measured.
func runVerify(o options, sink *sinkProc, addrs []string, codec string, gob bool) (verifyResult, error) {
	res := verifyResult{Codec: codec}
	wire.SetGobFallback(gob)
	defer wire.SetGobFallback(false)
	if err := sink.mode("full"); err != nil {
		return res, err
	}
	defer sink.mode("sampled")

	if len(addrs) > 64 {
		addrs = addrs[:64]
	}
	tr, err := transport.ListenTCPWith("127.0.0.1:0", func(*wire.Message) {}, transport.TCPOptions{QueueLen: o.queue})
	if err != nil {
		return res, err
	}
	defer tr.Close()

	pre, err := sink.snap()
	if err != nil {
		return res, err
	}
	for i := 0; i < o.verifyItems; i++ {
		msg := buildItem(int64(1_000_000+i), o.payload)
		f, err := tr.NewFrame(msg)
		if err != nil {
			return res, err
		}
		for _, addr := range addrs {
			if err := tr.SendFrame(addr, f); err != nil {
				return res, err
			}
		}
		time.Sleep(2 * time.Millisecond) // moderate rate: no queue overflow
	}
	want := int64(o.verifyItems) * int64(len(addrs))
	deadline := time.Now().Add(30 * time.Second)
	var post sinkSnap
	for {
		if post, err = sink.snap(); err != nil {
			return res, err
		}
		if post.Frames-pre.Frames >= want || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	res.Frames = post.Frames - pre.Frames
	res.Decoded = post.Decoded - pre.Decoded
	res.Corrupt = post.Corrupt - pre.Corrupt
	if err := tr.Close(); err != nil {
		return res, err
	}
	return res, sink.waitConns(0, 30*time.Second)
}

// buildItem makes one publishable news item: the payload's first 8 bytes
// are the FNV-64a checksum of the rest, so the sink can detect any frame
// corruption end to end.
func buildItem(seq int64, payload int) *wire.Message {
	body := make([]byte, payload)
	for i := 8; i < len(body); i++ {
		body[i] = byte(int64(i)*31 + seq)
	}
	h := fnv.New64a()
	h.Write(body[8:])
	binary.BigEndian.PutUint64(body[:8], h.Sum64())
	return &wire.Message{Kind: wire.KindMulticast, Multicast: &wire.Multicast{
		TargetZone: "/bench",
		Deliver:    true,
		Envelope: wire.ItemEnvelope{
			Publisher: "loadgen",
			ItemID:    fmt.Sprintf("item-%d", seq),
			Revision:  1,
			Subjects:  []string{"bench"},
			Published: time.Now(),
			Payload:   body,
		},
	}}
}

// --- parent <-> sink protocol ---

type sinkSnap struct {
	Frames  int64   `json:"frames"`
	Bytes   int64   `json:"bytes"`
	Decoded int64   `json:"decoded"`
	Corrupt int64   `json:"corrupt"`
	Conns   int64   `json:"conns"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

type sinkProc struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  *bufio.Scanner
	port int
}

// startSink re-executes this binary as the subscriber sink and waits for
// its PORT announcement. The NEWSWIRE_LOADGEN_SINK environment marker
// lets the test binary's TestMain dispatch into the sink too.
func startSink(decodeEvery int) (*sinkProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-sink", "-decode-every", strconv.Itoa(decodeEvery))
	cmd.Env = append(os.Environ(), "NEWSWIRE_LOADGEN_SINK=1")
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s := &sinkProc{cmd: cmd, in: in, out: bufio.NewScanner(outPipe)}
	if !s.out.Scan() {
		s.close()
		return nil, fmt.Errorf("sink exited before announcing its port")
	}
	line := s.out.Text()
	if _, err := fmt.Sscanf(line, "PORT %d", &s.port); err != nil {
		s.close()
		return nil, fmt.Errorf("unexpected sink greeting %q", line)
	}
	return s, nil
}

func (s *sinkProc) snap() (sinkSnap, error) {
	var snap sinkSnap
	if _, err := fmt.Fprintln(s.in, "SNAP"); err != nil {
		return snap, err
	}
	if !s.out.Scan() {
		return snap, fmt.Errorf("sink died mid-run")
	}
	return snap, json.Unmarshal(s.out.Bytes(), &snap)
}

func (s *sinkProc) mode(m string) error {
	if _, err := fmt.Fprintln(s.in, "MODE "+m); err != nil {
		return err
	}
	if !s.out.Scan() || s.out.Text() != "OK" {
		return fmt.Errorf("sink rejected MODE %s", m)
	}
	return nil
}

func (s *sinkProc) waitConns(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		snap, err := s.snap()
		if err != nil {
			return err
		}
		if snap.Conns == int64(want) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sink has %d connections, want %d", snap.Conns, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (s *sinkProc) close() {
	fmt.Fprintln(s.in, "QUIT")
	s.in.Close()
	done := make(chan struct{})
	go func() { s.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		s.cmd.Process.Kill()
		<-done
	}
}

// --- sink child process ---

type sinkState struct {
	frames, bytes, decoded, corrupt, conns atomic.Int64
	fullDecode                             atomic.Bool
	decodeEvery                            int64
	lat                                    metrics.Histogram
}

func sinkMain(decodeEvery int) error {
	raiseFDLimit()
	if decodeEvery < 1 {
		decodeEvery = 1
	}
	s := &sinkState{decodeEvery: int64(decodeEvery)}
	s.lat.SetReservoir(8192)

	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go s.readConn(c)
		}
	}()

	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "PORT %d\n", ln.Addr().(*net.TCPAddr).Port)
	out.Flush()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		switch line := sc.Text(); {
		case line == "SNAP":
			snap := sinkSnap{
				Frames:  s.frames.Load(),
				Bytes:   s.bytes.Load(),
				Decoded: s.decoded.Load(),
				Corrupt: s.corrupt.Load(),
				Conns:   s.conns.Load(),
			}
			if s.lat.Count() > 0 {
				snap.P50Ms = s.lat.Quantile(0.50) * 1000
				snap.P99Ms = s.lat.Quantile(0.99) * 1000
			}
			s.lat.Reset() // percentiles are per snapshot interval
			b, err := json.Marshal(&snap)
			if err != nil {
				return err
			}
			out.Write(b)
			out.WriteByte('\n')
			out.Flush()
		case line == "MODE full" || line == "MODE sampled":
			s.fullDecode.Store(line == "MODE full")
			fmt.Fprintln(out, "OK")
			out.Flush()
		case line == "QUIT":
			return nil
		}
	}
	return sc.Err()
}

func (s *sinkState) readConn(c net.Conn) {
	s.conns.Add(1)
	defer s.conns.Add(-1)
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [wire.FramePrefixLen]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size == 0 || size > maxFrame {
			s.corrupt.Add(1)
			return
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		b := buf[:size]
		if _, err := io.ReadFull(br, b); err != nil {
			return
		}
		n := s.frames.Add(1)
		s.bytes.Add(int64(size) + wire.FramePrefixLen)
		if s.fullDecode.Load() || n%s.decodeEvery == 0 {
			s.verify(b)
		}
	}
}

// verify fully decodes one frame: codec round-trip, payload checksum,
// and wall-clock delivery latency from the publisher's timestamp (same
// host, same clock).
func (s *sinkState) verify(b []byte) {
	msg, err := wire.Decode(b)
	if err != nil || msg.Kind != wire.KindMulticast || msg.Multicast == nil {
		s.corrupt.Add(1)
		return
	}
	env := &msg.Multicast.Envelope
	if len(env.Payload) < 16 {
		s.corrupt.Add(1)
		return
	}
	h := fnv.New64a()
	h.Write(env.Payload[8:])
	if binary.BigEndian.Uint64(env.Payload[:8]) != h.Sum64() {
		s.corrupt.Add(1)
		return
	}
	s.decoded.Add(1)
	if !env.Published.IsZero() {
		s.lat.Observe(time.Since(env.Published).Seconds())
	}
}
