// Command newswired runs one live NewsWire node over TCP: it joins a
// cluster through seed peers, subscribes to subjects, and prints every
// delivered news item — the downloadable participant application of
// paper §8.
//
// Start a first node:
//
//	newswired -listen 127.0.0.1:9001 -zone /usa/ny -subscribe tech/linux
//
// Join more nodes to it:
//
//	newswired -listen 127.0.0.1:9002 -zone /usa/ny -peers 127.0.0.1:9001 \
//	    -subscribe tech/linux,tech/security
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"newswire"
	"newswire/internal/news"
	"newswire/internal/transport"
	"newswire/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswired:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswired", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		zone      = fs.String("zone", "/default", "leaf zone path, e.g. /usa/ny")
		name      = fs.String("name", "", "node name (default derived from address)")
		peers     = fs.String("peers", "", "comma-separated seed peer addresses")
		subscribe = fs.String("subscribe", "", "comma-separated subscription subjects")
		predicate = fs.String("predicate", "", "SQL selection predicate over item metadata")
		interval  = fs.Duration("interval", 2*time.Second, "gossip interval")
		httpAddr  = fs.String("http", "", "serve the status web interface on this address (e.g. 127.0.0.1:8080)")
		gobWire   = fs.Bool("gob-wire", false, "encode outbound frames with the legacy gob codec (transition aid; inbound frames are auto-detected either way)")
		syncWr    = fs.Bool("sync-transport", false, "use the legacy synchronous transport writes (ablation; one mutex serializes all peers)")
		queueLen  = fs.Int("send-queue", 0, "per-peer outbound queue length in frames (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wire.SetGobFallback(*gobWire)

	cfg := newswire.LiveConfig{
		ListenAddr: *listen,
		Transport: transport.TCPOptions{
			SyncWrites: *syncWr,
			QueueLen:   *queueLen,
		},
		Node: newswire.Config{
			Name:           *name,
			ZonePath:       *zone,
			GossipInterval: *interval,
			OnItem: func(it *news.Item, env *wire.ItemEnvelope) {
				fmt.Printf("[%s] %s (rev %d, %s) %s\n",
					it.Published.Format("15:04:05"), it.Key(), it.Revision,
					strings.Join(it.Subjects, ","), it.Headline)
			},
		},
	}
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
	}

	ln, err := newswire.StartLive(cfg)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("newswired listening on %s, zone %s\n", ln.Addr(), *zone)

	if *subscribe != "" {
		subjects := strings.Split(*subscribe, ",")
		if err := ln.Node().Subscribe(subjects...); err != nil {
			return err
		}
		fmt.Printf("subscribed to %s\n", *subscribe)
	}
	if *predicate != "" {
		if err := ln.Node().SetPredicate(*predicate); err != nil {
			return err
		}
		fmt.Printf("predicate installed: %s\n", *predicate)
	}

	if *httpAddr != "" {
		ui := ln.WebUI()
		srv := &http.Server{Addr: *httpAddr, Handler: ui.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "newswired: web interface:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("web interface on http://%s/ (status.json, items.json, zones.json, trace.json, metrics)\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
