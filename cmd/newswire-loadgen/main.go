// Command newswire-loadgen measures the live transport's fan-out
// throughput over real loopback sockets (experiment E11): one hub
// publishes news frames to thousands of subscriber connections and the
// tool reports sustained messages/sec, bytes/sec, delivery latency
// percentiles and drops, for the asynchronous writer path and the legacy
// synchronous ablation.
//
// Usage:
//
//	newswire-loadgen -subs 10000                 # full E11 point, both arms
//	newswire-loadgen -subs 2000 -step 2s         # CI smoke size
//	newswire-loadgen -sync-transport             # ablation arm only
//	newswire-loadgen -json artifacts/            # write BENCH_E11.json
//
// The subscriber sockets live in a child process (the binary re-executes
// itself with -sink), so hub and subscribers each stay within the
// per-process descriptor limit and the hub's send path is measured
// without 10k inbound readers in the same runtime. Every subscriber
// address is a distinct loopback IP (127.0.x.y), giving the hub one real
// connection per subscriber like distinct remote peers would.
//
// The sink cheaply validates framing on every frame and fully decodes
// every -decode-every'th one (checksum + delivery latency); a separate
// moderate-rate verification phase decodes every frame under both wire
// codecs, which is where the zero-corruption figure comes from.
//
// Latency percentiles are clock-offset corrected: before each arm the
// sink runs the transport's NTP-style ping/pong handshake against the
// hub and adds the estimated offset to every delivery-latency sample, so
// the reported p50/p99 survive publisher/subscriber clock skew (the two
// processes share a host here, so the correction is near zero — the
// mechanism is what E11 exercises).
//
// A second mode, -collect, turns the tool into the cluster observability
// client: it polls /cluster-health.json on a set of live newswired nodes
// until the gossip-aggregated health rollup converges, then joins the
// nodes' /trace.json spans by trace ID into cross-process delivery
// traces and reports the slowest paths with clock-offset-corrected
// timestamps (from /status.json's clockOffsets).
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"newswire/internal/metrics"
	"newswire/internal/transport"
	"newswire/internal/wire"
)

const maxFrame = 16 << 20

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswire-loadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	subs        int
	payload     int
	pubRates    []int
	step        time.Duration
	queue       int
	decodeEvery int
	verifyItems int
	jsonDir     string
	syncOnly    bool
	log         *slog.Logger
}

// newLogger builds the process logger: text for humans, JSON for log
// shippers, leveled by -log-level.
func newLogger(jsonOut bool, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswire-loadgen", flag.ContinueOnError)
	var (
		subs        = fs.Int("subs", 10000, "subscriber connections")
		payload     = fs.Int("payload", 512, "news item payload bytes (min 16)")
		rates       = fs.String("pub-rates", "2,5,10,20,40,80", "comma-separated publish rates (items/sec), one step each")
		step        = fs.Duration("step", 3*time.Second, "duration of each rate step")
		queue       = fs.Int("queue", 0, "per-peer send queue length (0 = transport default)")
		decodeEvery = fs.Int("decode-every", 16, "sink fully decodes every Nth frame (latency+checksum); framing is checked on all")
		verifyItems = fs.Int("verify-items", 256, "items per codec in the full-decode verification phase (0 = skip)")
		jsonDir     = fs.String("json", "", "directory to write BENCH_E11.json into")
		syncOnly    = fs.Bool("sync-transport", false, "measure only the legacy synchronous-writes arm (ablation)")
		sink        = fs.Bool("sink", false, "internal: run as the subscriber sink child process")
		logJSON     = fs.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")

		collect   = fs.Bool("collect", false, "observability-client mode: poll live nodes' health and join their traces instead of generating load")
		nodes     = fs.String("nodes", "", "collect: comma-separated base URLs of newswired -http endpoints")
		expect    = fs.Int("expect-nodes", 0, "collect: health digests the rollup must reach (0 = number of -nodes)")
		colWait   = fs.Duration("collect-timeout", 60*time.Second, "collect: how long to wait for health convergence and a joined trace")
		traceKey  = fs.String("key", "", "collect: item envelope key to trace (default: the trace spanning the most processes)")
		slowPaths = fs.Int("top", 3, "collect: slowest delivery paths to report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sink {
		return sinkMain(*decodeEvery)
	}
	logger, err := newLogger(*logJSON, *logLevel)
	if err != nil {
		return err
	}
	if *collect {
		return collectMain(collectOptions{
			nodes: strings.Split(*nodes, ","), expect: *expect,
			timeout: *colWait, key: *traceKey, top: *slowPaths,
			log: logger,
		})
	}
	if *subs < 1 || *payload < 16 {
		return fmt.Errorf("need -subs >= 1 and -payload >= 16")
	}
	var pubRates []int
	for _, s := range strings.Split(*rates, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || r < 1 {
			return fmt.Errorf("bad -pub-rates entry %q", s)
		}
		pubRates = append(pubRates, r)
	}
	return loadgen(options{
		subs: *subs, payload: *payload, pubRates: pubRates, step: *step,
		queue: *queue, decodeEvery: *decodeEvery, verifyItems: *verifyItems,
		jsonDir: *jsonDir, syncOnly: *syncOnly, log: logger,
	})
}

// raiseFDLimit lifts the soft descriptor limit to the hard one; tens of
// thousands of sockets per process need it on default configurations.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// --- result schema (BENCH_E11.json) ---

type stepResult struct {
	TargetItemsPerSec int     `json:"target_items_per_sec"`
	PublishedItems    int64   `json:"published_items"`
	OfferedFrames     int64   `json:"offered_frames"`
	DeliveredFrames   int64   `json:"delivered_frames"`
	MsgsPerSec        float64 `json:"msgs_per_sec"`
	BytesPerSec       float64 `json:"bytes_per_sec"`
	P50Ms             float64 `json:"p50_ms"`
	P99Ms             float64 `json:"p99_ms"`
	Drops             int64   `json:"drops"`
	Corrupt           int64   `json:"corrupt"`
}

type armResult struct {
	Label      string       `json:"label"`
	SyncWrites bool         `json:"sync_writes"`
	Steps      []stepResult `json:"steps"`
	// Sustained figures come from the best step: what the path delivered
	// to subscribers, not what the publisher offered.
	SustainedMsgsPerSec  float64 `json:"sustained_msgs_per_sec"`
	SustainedBytesPerSec float64 `json:"sustained_bytes_per_sec"`
	// Clean percentiles come from the highest step that delivered >= 95%
	// of its offered frames with zero drops — latency before the queues
	// saturate, which is what a subscriber actually experiences. They are
	// clock-offset corrected: the sink adds ClockOffset (its measured
	// hub-minus-sink skew) to every sample before the quantile, so the
	// figures survive publisher/subscriber clock drift.
	CleanP50Ms   float64 `json:"clean_p50_ms"`
	CleanP99Ms   float64 `json:"clean_p99_ms"`
	TotalDrops   int64   `json:"total_drops"`
	TotalCorrupt int64   `json:"total_corrupt"`
	// ClockOffsetMs is the sink's NTP-style offset estimate against the
	// hub (positive = hub clock ahead) and ClockRTTMs the handshake round
	// trip it was taken from (best of several probes).
	ClockOffsetMs float64 `json:"clock_offset_ms"`
	ClockRTTMs    float64 `json:"clock_rtt_ms"`
	// Hub-side syscall accounting: frames per writev under the heaviest
	// step (async arm only; the sync arm always writes one frame per two
	// syscalls).
	MeanFramesPerFlush float64 `json:"mean_frames_per_flush,omitempty"`
}

type verifyResult struct {
	Codec   string `json:"codec"`
	Frames  int64  `json:"frames"`
	Decoded int64  `json:"decoded"`
	Corrupt int64  `json:"corrupt"`
}

type report struct {
	ID                   string         `json:"id"`
	Title                string         `json:"title"`
	Subs                 int            `json:"subs"`
	PayloadBytes         int            `json:"payload_bytes"`
	QueueLen             int            `json:"queue_len"`
	StepSeconds          float64        `json:"step_seconds"`
	PubRates             []int          `json:"pub_rates"`
	DecodeEvery          int            `json:"decode_every"`
	Arms                 []armResult    `json:"arms"`
	SpeedupAsyncOverSync float64        `json:"speedup_async_over_sync,omitempty"`
	Verify               []verifyResult `json:"verify,omitempty"`
	GOMAXPROCS           int            `json:"gomaxprocs"`
	NumCPU               int            `json:"num_cpu"`
	WallSeconds          float64        `json:"wall_seconds"`
}

// --- parent: hub + orchestration ---

func loadgen(o options) error {
	if o.log == nil {
		o.log = slog.Default()
	}
	raiseFDLimit()
	start := time.Now()

	sink, err := startSink(o.decodeEvery)
	if err != nil {
		return err
	}
	defer sink.close()

	addrs := subscriberAddrs(o.subs, sink.port)

	rep := report{
		ID:    "E11",
		Title: "Live transport fan-out throughput (loopback)",
		Subs:  o.subs, PayloadBytes: o.payload, QueueLen: o.queue,
		StepSeconds: o.step.Seconds(), PubRates: o.pubRates, DecodeEvery: o.decodeEvery,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}

	arms := []struct {
		label string
		sync  bool
	}{{"async", false}, {"sync", true}}
	if o.syncOnly {
		arms = arms[1:]
	}
	for _, arm := range arms {
		o.log.Info("arm start", "arm", arm.label, "subs", o.subs, "payload_bytes", o.payload)
		res, err := runArm(o, sink, addrs, arm.label, arm.sync)
		if err != nil {
			return fmt.Errorf("arm %s: %w", arm.label, err)
		}
		rep.Arms = append(rep.Arms, res)
	}
	var asyncSust, syncSust float64
	for _, a := range rep.Arms {
		if a.SyncWrites {
			syncSust = a.SustainedMsgsPerSec
		} else {
			asyncSust = a.SustainedMsgsPerSec
		}
	}
	if asyncSust > 0 && syncSust > 0 {
		rep.SpeedupAsyncOverSync = asyncSust / syncSust
		o.log.Info("speedup async over sync",
			"speedup", fmt.Sprintf("%.2fx", rep.SpeedupAsyncOverSync),
			"async_msgs_per_sec", int64(asyncSust), "sync_msgs_per_sec", int64(syncSust))
	}

	if o.verifyItems > 0 {
		for _, codec := range []struct {
			name string
			gob  bool
		}{{"binary", false}, {"gob", true}} {
			vr, err := runVerify(o, sink, addrs, codec.name, codec.gob)
			if err != nil {
				return fmt.Errorf("verify %s: %w", codec.name, err)
			}
			o.log.Info("verify", "codec", vr.Codec,
				"frames", vr.Frames, "decoded", vr.Decoded, "corrupt", vr.Corrupt)
			rep.Verify = append(rep.Verify, vr)
		}
	}

	rep.WallSeconds = time.Since(start).Seconds()
	if o.jsonDir != "" {
		if err := os.MkdirAll(o.jsonDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(o.jsonDir, "BENCH_E11.json")
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		o.log.Info("report written", "path", path)
	}
	return nil
}

// subscriberAddrs spreads n subscribers across distinct loopback IPs so
// the hub keeps one connection per subscriber (every 127.x.y.z routes to
// the local host).
func subscriberAddrs(n, port int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.%d.%d:%d", 1+i/250, 1+i%250, port)
	}
	return addrs
}

func runArm(o options, sink *sinkProc, addrs []string, label string, syncWrites bool) (armResult, error) {
	res := armResult{Label: label, SyncWrites: syncWrites}
	tr, err := transport.ListenTCPWith("127.0.0.1:0", func(*wire.Message) {}, transport.TCPOptions{
		SyncWrites: syncWrites,
		QueueLen:   o.queue,
		// The periodic re-probe must not fire mid-step: its frames would
		// pollute the delivered-frame accounting. Dial-time probes land in
		// the warm-up window; the sink runs its own handshake below.
		ClockSyncInterval: time.Hour,
	})
	if err != nil {
		return res, err
	}
	defer tr.Close()

	// Warm-up: one frame to every subscriber establishes all connections
	// before any step is timed.
	warm := buildItem(0, o.payload)
	wf, err := tr.NewFrame(warm)
	if err != nil {
		return res, err
	}
	for _, addr := range addrs {
		if err := tr.SendFrame(addr, wf); err != nil {
			return res, fmt.Errorf("warm-up dial %s: %w", addr, err)
		}
	}
	if err := sink.waitConns(len(addrs), 60*time.Second); err != nil {
		return res, err
	}
	// Clock-offset handshake before anything is timed: the sink probes the
	// hub and corrects every latency sample it takes this arm.
	if off, rtt, err := sink.clockSync(tr.Addr()); err != nil {
		o.log.Warn("clock sync failed; latencies uncorrected", "arm", label, "err", err)
	} else {
		res.ClockOffsetMs = float64(off) / 1e6
		res.ClockRTTMs = float64(rtt) / 1e6
		o.log.Info("clock offset estimated", "arm", label,
			"offset_ms", res.ClockOffsetMs, "rtt_ms", res.ClockRTTMs)
	}

	seq := int64(1)
	var bestFlushMean float64
	for _, rate := range o.pubRates {
		preSnap, err := sink.snap()
		if err != nil {
			return res, err
		}
		preStats := tr.TransportStats()
		preFlushes, preFlushFrames := tr.FlushBatchSizes().Count(), tr.FlushBatchSizes().Sum()

		interval := time.Second / time.Duration(rate)
		stepStart := time.Now()
		next := stepStart
		var published int64
		for time.Since(stepStart) < o.step {
			msg := buildItem(seq, o.payload)
			seq++
			published++
			if syncWrites {
				for _, addr := range addrs {
					_ = tr.Send(addr, msg)
				}
			} else {
				f, err := tr.NewFrame(msg)
				if err != nil {
					return res, err
				}
				for _, addr := range addrs {
					_ = tr.SendFrame(addr, f)
				}
			}
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else {
				next = time.Now() // behind schedule: don't accumulate debt
			}
		}
		// Let in-flight queues drain before measuring the step.
		time.Sleep(300 * time.Millisecond)
		wall := time.Since(stepStart).Seconds()

		postSnap, err := sink.snap()
		if err != nil {
			return res, err
		}
		postStats := tr.TransportStats()
		st := stepResult{
			TargetItemsPerSec: rate,
			PublishedItems:    published,
			OfferedFrames:     published * int64(len(addrs)),
			DeliveredFrames:   postSnap.Frames - preSnap.Frames,
			P50Ms:             postSnap.P50Ms,
			P99Ms:             postSnap.P99Ms,
			Drops: (postStats.QueueFullDrops + postStats.ConnDrops) -
				(preStats.QueueFullDrops + preStats.ConnDrops),
			Corrupt: postSnap.Corrupt - preSnap.Corrupt,
		}
		st.MsgsPerSec = float64(st.DeliveredFrames) / wall
		st.BytesPerSec = float64(postSnap.Bytes-preSnap.Bytes) / wall
		res.Steps = append(res.Steps, st)
		res.TotalDrops += st.Drops
		res.TotalCorrupt += st.Corrupt
		o.log.Info("step", "rate_items_per_sec", rate,
			"msgs_per_sec", int64(st.MsgsPerSec),
			"mb_per_sec", fmt.Sprintf("%.2f", st.BytesPerSec/1e6),
			"p50_ms", fmt.Sprintf("%.1f", st.P50Ms),
			"p99_ms", fmt.Sprintf("%.1f", st.P99Ms),
			"drops", st.Drops)

		if st.MsgsPerSec > res.SustainedMsgsPerSec {
			res.SustainedMsgsPerSec = st.MsgsPerSec
			res.SustainedBytesPerSec = st.BytesPerSec
			if flushes := tr.FlushBatchSizes().Count() - preFlushes; flushes > 0 {
				bestFlushMean = (tr.FlushBatchSizes().Sum() - preFlushFrames) / float64(flushes)
			}
		}
		// A step is "clean" when the path kept up with the step's target
		// load without dropping. Compare against the target, not against
		// what the publisher managed to offer: under saturation the
		// publisher itself slows down (it shares the machine), which would
		// otherwise make an overloaded step look clean.
		targetOffered := float64(rate) * o.step.Seconds() * float64(len(addrs))
		if st.Drops == 0 && float64(st.DeliveredFrames) >= 0.95*targetOffered {
			res.CleanP50Ms, res.CleanP99Ms = st.P50Ms, st.P99Ms
		}
	}
	if !syncWrites {
		res.MeanFramesPerFlush = bestFlushMean
	}
	if res.CleanP50Ms == 0 && res.CleanP99Ms == 0 && len(res.Steps) > 0 {
		res.CleanP50Ms, res.CleanP99Ms = res.Steps[0].P50Ms, res.Steps[0].P99Ms
	}
	if err := tr.Close(); err != nil {
		return res, err
	}
	// Wait for the sink to see every connection go away, so arms don't
	// bleed into each other.
	return res, sink.waitConns(0, 30*time.Second)
}

// runVerify publishes a moderate full-decode workload under one codec to
// a subset of subscribers: every frame is decoded and checksummed, which
// is where the zero-corruption claim is measured.
func runVerify(o options, sink *sinkProc, addrs []string, codec string, gob bool) (verifyResult, error) {
	res := verifyResult{Codec: codec}
	wire.SetGobFallback(gob)
	defer wire.SetGobFallback(false)
	if err := sink.mode("full"); err != nil {
		return res, err
	}
	defer sink.mode("sampled")

	if len(addrs) > 64 {
		addrs = addrs[:64]
	}
	tr, err := transport.ListenTCPWith("127.0.0.1:0", func(*wire.Message) {}, transport.TCPOptions{
		QueueLen:          o.queue,
		ClockSyncInterval: time.Hour, // keep re-probes out of the frame counts
	})
	if err != nil {
		return res, err
	}
	defer tr.Close()

	pre, err := sink.snap()
	if err != nil {
		return res, err
	}
	for i := 0; i < o.verifyItems; i++ {
		msg := buildItem(int64(1_000_000+i), o.payload)
		f, err := tr.NewFrame(msg)
		if err != nil {
			return res, err
		}
		for _, addr := range addrs {
			if err := tr.SendFrame(addr, f); err != nil {
				return res, err
			}
		}
		time.Sleep(2 * time.Millisecond) // moderate rate: no queue overflow
	}
	want := int64(o.verifyItems) * int64(len(addrs))
	deadline := time.Now().Add(30 * time.Second)
	var post sinkSnap
	for {
		if post, err = sink.snap(); err != nil {
			return res, err
		}
		if post.Frames-pre.Frames >= want || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	res.Frames = post.Frames - pre.Frames
	res.Decoded = post.Decoded - pre.Decoded
	res.Corrupt = post.Corrupt - pre.Corrupt
	if err := tr.Close(); err != nil {
		return res, err
	}
	return res, sink.waitConns(0, 30*time.Second)
}

// buildItem makes one publishable news item: the payload's first 8 bytes
// are the FNV-64a checksum of the rest, so the sink can detect any frame
// corruption end to end.
func buildItem(seq int64, payload int) *wire.Message {
	body := make([]byte, payload)
	for i := 8; i < len(body); i++ {
		body[i] = byte(int64(i)*31 + seq)
	}
	h := fnv.New64a()
	h.Write(body[8:])
	binary.BigEndian.PutUint64(body[:8], h.Sum64())
	return &wire.Message{Kind: wire.KindMulticast, Multicast: &wire.Multicast{
		TargetZone: "/bench",
		Deliver:    true,
		Envelope: wire.ItemEnvelope{
			Publisher: "loadgen",
			ItemID:    fmt.Sprintf("item-%d", seq),
			Revision:  1,
			Subjects:  []string{"bench"},
			Published: time.Now(),
			Payload:   body,
		},
	}}
}

// --- parent <-> sink protocol ---

type sinkSnap struct {
	Frames  int64   `json:"frames"`
	Bytes   int64   `json:"bytes"`
	Decoded int64   `json:"decoded"`
	Corrupt int64   `json:"corrupt"`
	Conns   int64   `json:"conns"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

type sinkProc struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  *bufio.Scanner
	port int
}

// startSink re-executes this binary as the subscriber sink and waits for
// its PORT announcement. The NEWSWIRE_LOADGEN_SINK environment marker
// lets the test binary's TestMain dispatch into the sink too.
func startSink(decodeEvery int) (*sinkProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-sink", "-decode-every", strconv.Itoa(decodeEvery))
	cmd.Env = append(os.Environ(), "NEWSWIRE_LOADGEN_SINK=1")
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s := &sinkProc{cmd: cmd, in: in, out: bufio.NewScanner(outPipe)}
	if !s.out.Scan() {
		s.close()
		return nil, fmt.Errorf("sink exited before announcing its port")
	}
	line := s.out.Text()
	if _, err := fmt.Sscanf(line, "PORT %d", &s.port); err != nil {
		s.close()
		return nil, fmt.Errorf("unexpected sink greeting %q", line)
	}
	return s, nil
}

func (s *sinkProc) snap() (sinkSnap, error) {
	var snap sinkSnap
	if _, err := fmt.Fprintln(s.in, "SNAP"); err != nil {
		return snap, err
	}
	if !s.out.Scan() {
		return snap, fmt.Errorf("sink died mid-run")
	}
	return snap, json.Unmarshal(s.out.Bytes(), &snap)
}

func (s *sinkProc) mode(m string) error {
	if _, err := fmt.Fprintln(s.in, "MODE "+m); err != nil {
		return err
	}
	if !s.out.Scan() || s.out.Text() != "OK" {
		return fmt.Errorf("sink rejected MODE %s", m)
	}
	return nil
}

// clockSync asks the sink to run the clock-offset handshake against the
// hub at addr; it returns the estimated offset (hub minus sink, in
// nanoseconds) and the round trip of the winning probe.
func (s *sinkProc) clockSync(addr string) (offsetNs, rttNs int64, err error) {
	if _, err = fmt.Fprintln(s.in, "CLOCK "+addr); err != nil {
		return 0, 0, err
	}
	if !s.out.Scan() {
		return 0, 0, fmt.Errorf("sink died mid-handshake")
	}
	line := s.out.Text()
	if _, err = fmt.Sscanf(line, "CLOCK %d %d", &offsetNs, &rttNs); err != nil {
		return 0, 0, fmt.Errorf("clock handshake failed: %q", line)
	}
	return offsetNs, rttNs, nil
}

func (s *sinkProc) waitConns(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		snap, err := s.snap()
		if err != nil {
			return err
		}
		if snap.Conns == int64(want) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sink has %d connections, want %d", snap.Conns, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (s *sinkProc) close() {
	fmt.Fprintln(s.in, "QUIT")
	s.in.Close()
	done := make(chan struct{})
	go func() { s.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		s.cmd.Process.Kill()
		<-done
	}
}

// --- sink child process ---

type sinkState struct {
	frames, bytes, decoded, corrupt, conns atomic.Int64
	fullDecode                             atomic.Bool
	decodeEvery                            int64
	lat                                    metrics.Histogram

	// Clock-offset handshake state: offsetNs (hub clock minus sink clock)
	// is added to every latency sample; clockBest holds the lowest-RTT
	// probe of the current CLOCK round.
	offsetNs   atomic.Int64
	listenAddr string
	clockMu    struct {
		sync.Mutex
		offset, rtt time.Duration
		samples     int
	}
}

// handleClockPong folds one pong into the current handshake round,
// keeping the sample with the lowest round trip (the NTP rule: less time
// in flight, less room for asymmetry error).
func (s *sinkState) handleClockPong(cs *wire.ClockSync) {
	if cs == nil || cs.T1 == 0 || cs.T2 == 0 {
		return
	}
	t1, t2, t3 := time.Unix(0, cs.T1), time.Unix(0, cs.T2), time.Now()
	rtt := t3.Sub(t1)
	if rtt <= 0 || rtt > 5*time.Second {
		return
	}
	offset := t2.Sub(t1) - rtt/2
	s.clockMu.Lock()
	if s.clockMu.samples == 0 || rtt < s.clockMu.rtt {
		s.clockMu.offset, s.clockMu.rtt = offset, rtt
	}
	s.clockMu.samples++
	s.clockMu.Unlock()
}

// clockHandshake probes the hub with a burst of clock pings (stamped with
// this sink's listener as the reply address) and waits for the pongs the
// hub sends back, returning the lowest-RTT offset estimate.
func (s *sinkState) clockHandshake(hub string) (offsetNs, rttNs int64, err error) {
	s.clockMu.Lock()
	s.clockMu.offset, s.clockMu.rtt, s.clockMu.samples = 0, 0, 0
	s.clockMu.Unlock()

	c, err := net.DialTimeout("tcp", hub, 5*time.Second)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	const probes = 5
	for i := 0; i < probes; i++ {
		f, err := wire.NewFrame(&wire.Message{
			Kind:      wire.KindClockPing,
			ClockSync: &wire.ClockSync{Seq: uint64(i + 1), T1: time.Now().UnixNano()},
		}, s.listenAddr)
		if err != nil {
			return 0, 0, err
		}
		if _, err := c.Write(f.Bytes()); err != nil {
			return 0, 0, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		s.clockMu.Lock()
		off, rtt, n := s.clockMu.offset, s.clockMu.rtt, s.clockMu.samples
		s.clockMu.Unlock()
		if n >= probes || (n > 0 && time.Now().After(deadline)) {
			return off.Nanoseconds(), rtt.Nanoseconds(), nil
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("no pong from %s within deadline", hub)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sinkMain(decodeEvery int) error {
	raiseFDLimit()
	if decodeEvery < 1 {
		decodeEvery = 1
	}
	s := &sinkState{decodeEvery: int64(decodeEvery)}
	s.lat.SetReservoir(8192)

	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return err
	}
	defer ln.Close()
	s.listenAddr = fmt.Sprintf("127.0.0.1:%d", ln.Addr().(*net.TCPAddr).Port)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go s.readConn(c)
		}
	}()

	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "PORT %d\n", ln.Addr().(*net.TCPAddr).Port)
	out.Flush()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		switch line := sc.Text(); {
		case line == "SNAP":
			snap := sinkSnap{
				Frames:  s.frames.Load(),
				Bytes:   s.bytes.Load(),
				Decoded: s.decoded.Load(),
				Corrupt: s.corrupt.Load(),
				Conns:   s.conns.Load(),
			}
			if s.lat.Count() > 0 {
				snap.P50Ms = s.lat.Quantile(0.50) * 1000
				snap.P99Ms = s.lat.Quantile(0.99) * 1000
			}
			s.lat.Reset() // percentiles are per snapshot interval
			b, err := json.Marshal(&snap)
			if err != nil {
				return err
			}
			out.Write(b)
			out.WriteByte('\n')
			out.Flush()
		case line == "MODE full" || line == "MODE sampled":
			s.fullDecode.Store(line == "MODE full")
			fmt.Fprintln(out, "OK")
			out.Flush()
		case strings.HasPrefix(line, "CLOCK "):
			off, rtt, err := s.clockHandshake(strings.TrimPrefix(line, "CLOCK "))
			if err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				s.offsetNs.Store(off)
				fmt.Fprintf(out, "CLOCK %d %d\n", off, rtt)
			}
			out.Flush()
		case line == "QUIT":
			return nil
		}
	}
	return sc.Err()
}

func (s *sinkState) readConn(c net.Conn) {
	s.conns.Add(1)
	defer s.conns.Add(-1)
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [wire.FramePrefixLen]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size == 0 || size > maxFrame {
			s.corrupt.Add(1)
			return
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		b := buf[:size]
		if _, err := io.ReadFull(br, b); err != nil {
			return
		}
		// Transport-internal clock-sync frames ride the same sockets; keep
		// them out of the delivery accounting. (The sniff covers the binary
		// codec; gob-fallback clock frames are caught in verify instead.)
		if k, ok := wire.SniffKind(b); ok && (k == wire.KindClockPing || k == wire.KindClockPong) {
			if k == wire.KindClockPong {
				if msg, err := wire.Decode(b); err == nil {
					s.handleClockPong(msg.ClockSync)
				}
			}
			continue
		}
		n := s.frames.Add(1)
		s.bytes.Add(int64(size) + wire.FramePrefixLen)
		if s.fullDecode.Load() || n%s.decodeEvery == 0 {
			s.verify(b)
		}
	}
}

// verify fully decodes one frame: codec round-trip, payload checksum,
// and delivery latency from the publisher's timestamp, corrected by the
// handshake-estimated clock offset (near zero on one host; the mechanism
// is what matters for skewed deployments).
func (s *sinkState) verify(b []byte) {
	msg, err := wire.Decode(b)
	if err != nil {
		s.corrupt.Add(1)
		return
	}
	switch msg.Kind {
	case wire.KindClockPing, wire.KindClockPong:
		// A gob-encoded clock frame slipped past the binary-codec sniff:
		// uncount it rather than calling it corruption.
		if msg.Kind == wire.KindClockPong {
			s.handleClockPong(msg.ClockSync)
		}
		s.frames.Add(-1)
		return
	}
	if msg.Kind != wire.KindMulticast || msg.Multicast == nil {
		s.corrupt.Add(1)
		return
	}
	env := &msg.Multicast.Envelope
	if len(env.Payload) < 16 {
		s.corrupt.Add(1)
		return
	}
	h := fnv.New64a()
	h.Write(env.Payload[8:])
	if binary.BigEndian.Uint64(env.Payload[:8]) != h.Sum64() {
		s.corrupt.Add(1)
		return
	}
	s.decoded.Add(1)
	if !env.Published.IsZero() {
		// Published is the hub's clock; adding the measured hub-minus-sink
		// offset moves the sample onto the hub's timeline.
		s.lat.Observe(time.Since(env.Published).Seconds() + float64(s.offsetNs.Load())/1e9)
	}
}
