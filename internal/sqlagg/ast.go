package sqlagg

import (
	"strings"

	"newswire/internal/value"
)

// Expr is a node in the expression tree.
type Expr interface {
	// String renders the expression in (normalized) source form.
	String() string
	exprNode()
}

// ColumnRef references an attribute of the child-table row being evaluated.
type ColumnRef struct {
	Name string
}

func (c *ColumnRef) exprNode()      {}
func (c *ColumnRef) String() string { return c.Name }

// Literal is a constant value (number, string, or boolean).
type Literal struct {
	Val value.Value
}

func (l *Literal) exprNode() {}
func (l *Literal) String() string {
	if s, ok := l.Val.AsString(); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return l.Val.String()
}

// Unary is a prefix operator application: "-x" or "NOT x".
type Unary struct {
	Op string // "-" or "NOT"
	X  Expr
}

func (u *Unary) exprNode() {}
func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + u.X.String()
	}
	return u.Op + u.X.String()
}

// Binary is an infix operator application.
type Binary struct {
	Op   string // arithmetic, comparison, AND, OR
	L, R Expr
}

func (b *Binary) exprNode() {}
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Call is a function application. Star marks COUNT(*).
type Call struct {
	Name string // upper-cased
	Args []Expr
	Star bool
}

func (c *Call) exprNode() {}
func (c *Call) String() string {
	if c.Star {
		return c.Name + "(*)"
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// SelectItem is one output attribute of a program.
type SelectItem struct {
	Expr Expr
	Name string // output attribute name
}

// Program is a parsed aggregation program.
type Program struct {
	Items []SelectItem
	Where Expr // nil when absent
	src   string
}

// Source returns the original program text.
func (p *Program) Source() string { return p.src }

// OutputNames returns the output attribute names in select-list order.
func (p *Program) OutputNames() []string {
	names := make([]string, len(p.Items))
	for i, it := range p.Items {
		names[i] = it.Name
	}
	return names
}

// String renders the program in normalized form.
func (p *Program) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range p.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		sb.WriteString(" AS ")
		sb.WriteString(it.Name)
	}
	if p.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(p.Where.String())
	}
	return sb.String()
}

// containsAggregate reports whether any Call to an aggregate function
// appears in the expression.
func containsAggregate(e Expr) bool {
	switch n := e.(type) {
	case *ColumnRef, *Literal:
		return false
	case *Unary:
		return containsAggregate(n.X)
	case *Binary:
		return containsAggregate(n.L) || containsAggregate(n.R)
	case *Call:
		if _, ok := aggregates[n.Name]; ok {
			return true
		}
		for _, a := range n.Args {
			if containsAggregate(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
