// Package wire defines the messages NewsWire nodes exchange: Astrolabe
// gossip exchanges, application-level multicast forwards (which carry news
// items), and cache state-transfer requests used for end-to-end recovery
// and joining nodes (paper §9).
//
// The same Message structs travel over both transports. The in-memory
// simulated transport passes them by value — payload fields must therefore
// be treated as immutable once sent. The TCP transport serializes them with
// the compact binary codec in codec.go; SetGobFallback restores the legacy
// encoding/gob framing for one release, and Decode auto-detects either
// format, so mixed clusters interoperate during the transition.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"newswire/internal/value"
)

// Kind discriminates message payloads.
type Kind uint8

// Message kinds.
const (
	KindInvalid      Kind = iota
	KindGossip            // push-pull anti-entropy exchange, request leg
	KindGossipReply       // push-pull anti-entropy exchange, reply leg
	KindMulticast         // SendToZone forward carrying a news item
	KindStateRequest      // cache state transfer: give me recent items
	KindStateReply        // cache state transfer: here they are
	KindGossipDigest      // delta anti-entropy: initiator's row digest
	KindGossipDelta       // delta anti-entropy: missing/stale rows + wants
	KindMulticastAck      // per-forward delivery acknowledgment
	KindClockPing         // clock-offset probe (transport-level, not routed)
	KindClockPong         // clock-offset reply echoing the probe
)

// String returns the kind name for logs.
func (k Kind) String() string {
	switch k {
	case KindGossip:
		return "gossip"
	case KindGossipReply:
		return "gossip-reply"
	case KindMulticast:
		return "multicast"
	case KindStateRequest:
		return "state-request"
	case KindStateReply:
		return "state-reply"
	case KindGossipDigest:
		return "gossip-digest"
	case KindGossipDelta:
		return "gossip-delta"
	case KindMulticastAck:
		return "multicast-ack"
	case KindClockPing:
		return "clock-ping"
	case KindClockPong:
		return "clock-pong"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// RowUpdate is one gossiped MIB row: the attributes a zone member (or an
// aggregated child zone) exports, stamped with the owner's issue time.
// Receivers keep whichever copy of a row has the later issue time — the
// epidemic freshness rule that makes Astrolabe eventually consistent.
type RowUpdate struct {
	// Zone is the path of the table this row lives in, e.g. "/usa/ny".
	Zone string
	// Name identifies the row within the table: a leaf node name or a
	// child zone name.
	Name string
	// Attrs is the row's attribute map.
	Attrs value.Map
	// Issued is when the row owner last wrote the row.
	Issued time.Time
	// Owner is the address of the agent that issued the row (for leaf
	// rows) or the representative that computed it (aggregate rows).
	Owner string
	// Signer and Sig authenticate the row (empty when signing is off).
	Signer string
	Sig    []byte

	// shared is the immutable SharedRow this update was rendered from,
	// when it was (see SharedRow.Update). It lets receivers on the
	// in-memory transport install the sender's row by reference instead
	// of copying. Unexported on purpose: it never travels over a real
	// wire (gob and the binary codec both skip it), and decoded messages
	// leave it nil.
	shared *SharedRow
}

// SignedPayload renders the row fields covered by the owner's signature:
// everything except the signature fields themselves.
func (r *RowUpdate) SignedPayload() []byte {
	var buf bytes.Buffer
	buf.WriteString(r.Zone)
	buf.WriteByte(0)
	buf.WriteString(r.Name)
	buf.WriteByte(0)
	buf.Write(r.Attrs.AppendBinary(nil))
	fmt.Fprintf(&buf, "%d", r.Issued.UnixNano())
	buf.WriteByte(0)
	buf.WriteString(r.Owner)
	return buf.Bytes()
}

// Gossip is the request leg of a push-pull anti-entropy exchange: the
// sender pushes every row it holds for the tables the two agents share.
type Gossip struct {
	// FromZone is the sender's leaf zone path, which tells the receiver
	// which ancestor tables the two agents share.
	FromZone string
	Rows     []RowUpdate
}

// GossipReply is the reply leg, pushing the receiver's rows back.
type GossipReply struct {
	FromZone string
	Rows     []RowUpdate
}

// RowDigest summarizes one stored row for delta anti-entropy: enough for
// a peer to decide per row which side is fresher without seeing the
// attributes. Hash is an FNV-64a hash of the row's canonical attribute
// encoding; it detects same-timestamp divergence so the encoded
// tie-break can run on the full rows.
type RowDigest struct {
	Zone   string
	Name   string
	Issued time.Time
	Hash   uint64
}

// RowRef names one row the sender wants the full update for.
type RowRef struct {
	Zone string
	Name string
}

// GossipDigest is the request leg of a delta anti-entropy exchange: the
// initiator describes every row it holds for the shared tables, so the
// partner can reply with only the rows the initiator is missing or
// stale on.
type GossipDigest struct {
	// FromZone is the initiator's leaf zone path, which tells the
	// receiver which ancestor tables the two agents share.
	FromZone string
	Digests  []RowDigest
}

// GossipDelta is the transfer leg of a delta exchange. The digest
// receiver replies with the rows the initiator needs plus Want — refs of
// rows the initiator advertised fresher copies of; the initiator answers
// those with a second GossipDelta carrying empty Want, which ends the
// exchange.
type GossipDelta struct {
	FromZone string
	Rows     []RowUpdate
	Want     []RowRef
	// Stamps re-issue rows whose attributes the receiver already holds:
	// the digest proved both sides store the same attribute bytes (equal
	// Hash) and only the issue time lags. The receiver re-stamps its
	// stored copy at the newer Issued instead of receiving the full row
	// again, which removes heartbeat-only row refreshes — the dominant
	// steady-state gossip traffic — from the wire. Only unsigned rows may
	// travel as stamps: re-stamping a signed row locally would fabricate
	// a row state the owner never signed.
	Stamps []RowDigest
}

// ItemEnvelope wraps a published news item as it travels through the
// multicast tree. The envelope carries everything a forwarder needs to
// route without parsing the payload: the Bloom bit positions of the item's
// subjects (§6), the exact subjects for the leaf's final match, an optional
// publisher predicate over child-zone attributes (§8), and the publisher's
// signature (§8).
type ItemEnvelope struct {
	Publisher string
	ItemID    string
	Revision  int
	// Subjects are the exact subscription subjects this item matches.
	Subjects []string
	// SubjectBits are the Bloom positions of the subjects, precomputed by
	// the publisher.
	SubjectBits []uint32
	// ScopeZone restricts dissemination to a subtree ("" means root).
	ScopeZone string
	// Predicate optionally gates forwarding on child-zone attributes.
	Predicate string
	// Urgency mirrors the item's NITF editorial urgency (1 flash .. 8
	// routine) so forwarding components can prioritize without parsing
	// the payload (§9's queue-filling strategies).
	Urgency int
	// Published is the publisher's timestamp.
	Published time.Time
	// Payload is the encoded news item (NITF-like XML).
	Payload []byte
	// Signer and Sig authenticate the envelope.
	Signer string
	Sig    []byte
}

// Key returns the deduplication key for the envelope: publisher, item and
// revision ("News items are uniquely identified by the publisher as part of
// the news item meta-data; this can be used to remove duplicates", §9).
func (e *ItemEnvelope) Key() string {
	return fmt.Sprintf("%s/%s#%d", e.Publisher, e.ItemID, e.Revision)
}

// SignedPayload renders the envelope fields covered by the publisher
// signature.
func (e *ItemEnvelope) SignedPayload() []byte {
	var buf bytes.Buffer
	buf.WriteString(e.Publisher)
	buf.WriteByte(0)
	buf.WriteString(e.ItemID)
	buf.WriteByte(0)
	fmt.Fprintf(&buf, "%d", e.Revision)
	buf.WriteByte(0)
	for _, s := range e.Subjects {
		buf.WriteString(s)
		buf.WriteByte(0)
	}
	buf.WriteString(e.ScopeZone)
	buf.WriteByte(0)
	buf.WriteString(e.Predicate)
	buf.WriteByte(0)
	fmt.Fprintf(&buf, "%d", e.Published.UnixNano())
	buf.WriteByte(0)
	buf.Write(e.Payload)
	return buf.Bytes()
}

// Multicast is a SendToZone forward: deliver the envelope to every
// subscribed leaf under TargetZone.
type Multicast struct {
	// TargetZone is the zone whose subtree this hop is responsible for.
	TargetZone string
	// Hops counts forwarding hops so far, for loop protection and metrics.
	Hops int
	// Deliver marks a final-delivery copy: the receiver delivers the item
	// to its application and does not fan out further. Leaf-zone
	// representatives use it when distributing to their zone's members.
	Deliver bool
	// AckSeq, when non-zero, asks the receiver to confirm this forward
	// with a MulticastAck echoing the value. The sender retransmits
	// unacknowledged forwards; receivers must treat re-sent copies as
	// idempotent (the duplicate-suppression log already does).
	AckSeq uint64
	// TraceID joins this forward's trace spans across process boundaries:
	// every hop of one published item carries the same ID (derived
	// deterministically from the envelope key), so collectors reading
	// /trace.json from several nodes can reassemble the full
	// publish→forward→deliver path. Always stamped — whether tracing is
	// on changes nothing on the wire, keeping traced and untraced runs
	// byte-identical.
	TraceID  uint64
	Envelope ItemEnvelope
}

// MulticastAck confirms receipt of one acked Multicast forward. Key and
// TargetZone echo the forward so the sender can sanity-check that the ack
// matches the retransmit-table entry before clearing it.
type MulticastAck struct {
	// Seq echoes the forward's AckSeq.
	Seq uint64
	// Key echoes the envelope's dedup key.
	Key string
	// TargetZone echoes the forward's target zone.
	TargetZone string
}

// ClockSync carries the NTP-style clock-offset handshake the TCP
// transport runs over established connections (DESIGN.md §12). The
// initiator sends a KindClockPing with T1 = its wall clock at transmit;
// the peer answers KindClockPong echoing T1 and adding T2 = its own wall
// clock at receipt. The initiator then estimates the peer's clock offset
// as T2 − (T1+T3)/2 with T3 its receive time, which is exact when the
// path is symmetric. Both kinds are intercepted inside the transport and
// never reach the node's message handler.
type ClockSync struct {
	// Seq matches a pong to its ping (stale replies are dropped).
	Seq uint64
	// T1 is the initiator's transmit time, Unix nanoseconds.
	T1 int64
	// T2 is the responder's receive/transmit time, Unix nanoseconds
	// (zero in pings).
	T2 int64
}

// StateRequest asks a peer's cache for items published since a time, used
// by joining nodes and for end-to-end recovery after forwarder failures.
type StateRequest struct {
	Since    time.Time
	MaxItems int
	// Subjects restricts the transfer to items matching the requester's
	// subscriptions (empty means all cached items).
	Subjects []string
}

// StateReply returns the requested cache contents.
type StateReply struct {
	Envelopes []ItemEnvelope
	// Truncated reports that MaxItems cut the transfer short.
	Truncated bool
}

// Message is the transport-level envelope.
type Message struct {
	Kind Kind
	// From is the sender's transport address, so receivers can reply.
	From string

	Gossip       *Gossip
	GossipReply  *GossipReply
	GossipDigest *GossipDigest
	GossipDelta  *GossipDelta
	Multicast    *Multicast
	MulticastAck *MulticastAck
	StateRequest *StateRequest
	StateReply   *StateReply
	ClockSync    *ClockSync
}

// Validate checks that the message has exactly the payload its kind
// promises. Transports call it on receipt so protocol code can trust the
// payload pointer.
func (m *Message) Validate() error {
	var want bool
	switch m.Kind {
	case KindGossip:
		want = m.Gossip != nil
	case KindGossipReply:
		want = m.GossipReply != nil
	case KindMulticast:
		want = m.Multicast != nil
	case KindStateRequest:
		want = m.StateRequest != nil
	case KindStateReply:
		want = m.StateReply != nil
	case KindGossipDigest:
		want = m.GossipDigest != nil
	case KindGossipDelta:
		want = m.GossipDelta != nil
	case KindMulticastAck:
		want = m.MulticastAck != nil
	case KindClockPing, KindClockPong:
		want = m.ClockSync != nil
	default:
		return fmt.Errorf("wire: unknown message kind %d", m.Kind)
	}
	if !want {
		return fmt.Errorf("wire: %s message missing payload", m.Kind)
	}
	return nil
}

// encBufPool recycles the scratch buffers Encode serializes into, and
// readerPool the bytes.Reader Decode drains from. Gossip messages at the
// paper's 64-row table size encode to tens of KB; without pooling every
// Encode re-grows a fresh buffer through several doublings, which is pure
// garbage on the TCP hot path.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

var readerPool = sync.Pool{
	New: func() any { return new(bytes.Reader) },
}

// maxPooledBuf caps the size of buffers returned to the pool so one huge
// state transfer does not pin its worth of memory forever.
const maxPooledBuf = 1 << 20

// gobFallback, when set, makes Encode emit the legacy encoding/gob
// framing instead of the binary codec. Kept for one release so a cluster
// can be upgraded node by node: Decode always accepts both formats.
var gobFallback atomic.Bool

// SetGobFallback switches Encode between the binary codec (default) and
// the legacy gob framing.
func SetGobFallback(on bool) { gobFallback.Store(on) }

// GobFallback reports whether the legacy gob encoder is active.
func GobFallback() bool { return gobFallback.Load() }

// Encode serializes the message for the TCP transport. The returned slice
// is freshly allocated and owned by the caller; scratch buffers behind it
// are pooled.
func Encode(m *Message) ([]byte, error) {
	if gobFallback.Load() {
		return encodeGob(m, m.From, 0)
	}
	return encodeBinary(m, m.From, 0)
}

// encodeGob serializes m under the legacy gob framing with the sender
// address stamped as from. Gob has no way to substitute a single field
// mid-stream, so a differing from encodes a stack-local shallow copy — the
// shared Message is never written to. prefix unwritten bytes are reserved
// up front, mirroring encodeBinary.
func encodeGob(m *Message, from string, prefix int) ([]byte, error) {
	if m.From != from {
		mm := *m
		mm.From = from
		m = &mm
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(m); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	out := make([]byte, prefix+buf.Len())
	copy(out[prefix:], buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encBufPool.Put(buf)
	}
	return out, nil
}

// Decode deserializes a message produced by Encode and validates it. The
// codec is detected from the first byte: binary frames start with the
// magic byte, which no gob stream begins with.
func Decode(data []byte) (*Message, error) {
	if len(data) > 0 && data[0] == codecMagic {
		return decodeBinary(data)
	}
	return decodeGob(data)
}

func decodeGob(data []byte) (*Message, error) {
	r := readerPool.Get().(*bytes.Reader)
	r.Reset(data)
	var m Message
	err := gob.NewDecoder(r).Decode(&m)
	r.Reset(nil) // drop the reference to data before pooling
	readerPool.Put(r)
	if err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	internAttrs(&m)
	return &m, nil
}

// internAttrs re-keys every decoded row's attribute map through the
// value intern table: gob gives each message private copies of the same
// few attribute names, and merged rows would otherwise retain those
// copies for as long as they sit in a table.
func internAttrs(m *Message) {
	var rows []RowUpdate
	switch {
	case m.Gossip != nil:
		rows = m.Gossip.Rows
	case m.GossipReply != nil:
		rows = m.GossipReply.Rows
	case m.GossipDelta != nil:
		rows = m.GossipDelta.Rows
	}
	for i := range rows {
		rows[i].Attrs.InternKeys()
	}
}

// GossipTableOverhead approximates the interned string table a row-bearing
// gossip frame carries up front (a handful of zone paths and attribute
// names, each shipped once). A constant keeps byte accounting cheap and
// deterministic; the true table is within a few dozen bytes of it for
// realistic gossip exchanges.
const GossipTableOverhead = 48

// DigestTableOverhead is the same approximation for digest-only frames,
// whose tables hold just the zone paths — no attribute names.
const DigestTableOverhead = 8

// EstimateSize returns the on-the-wire size of the message under the
// binary codec without serializing it. It is exact except for the gossip
// kinds' interned string table, charged as GossipTableOverhead (or
// DigestTableOverhead for digest frames),
// and zone names inside rows/digests/refs, which ride in that table. The
// simulated network uses it for the byte-load counters behind experiments
// E4 and E8; the gossip agent mirrors the same model in GossipBytesSent.
func (m *Message) EstimateSize() int {
	n := 2 + sizeStr(m.From) // magic, kind, sender
	switch {
	case m.Gossip != nil:
		n += GossipTableOverhead + 1 + uvarintLen(uint64(len(m.Gossip.Rows))) +
			rowsSize(m.Gossip.Rows)
	case m.GossipReply != nil:
		n += GossipTableOverhead + 1 + uvarintLen(uint64(len(m.GossipReply.Rows))) +
			rowsSize(m.GossipReply.Rows)
	case m.GossipDigest != nil:
		n += DigestTableOverhead + 1 + uvarintLen(uint64(len(m.GossipDigest.Digests))) +
			DigestsSize(m.GossipDigest.Digests)
	case m.GossipDelta != nil:
		g := m.GossipDelta
		n += GossipTableOverhead + 1 +
			uvarintLen(uint64(len(g.Rows))) + rowsSize(g.Rows) +
			uvarintLen(uint64(len(g.Want))) + RefsSize(g.Want) +
			StampsSize(g.Stamps)
	case m.Multicast != nil:
		mc := m.Multicast
		n += sizeStr(mc.TargetZone) + varintLen(int64(mc.Hops)) + 1 +
			uvarintLen(mc.AckSeq) + uvarintLen(mc.TraceID) +
			envelopeSize(&mc.Envelope)
	case m.MulticastAck != nil:
		a := m.MulticastAck
		n += uvarintLen(a.Seq) + sizeStr(a.Key) + sizeStr(a.TargetZone)
	case m.StateRequest != nil:
		r := m.StateRequest
		n += sizeTime(r.Since) + varintLen(int64(r.MaxItems)) +
			uvarintLen(uint64(len(r.Subjects)))
		for _, s := range r.Subjects {
			n += sizeStr(s)
		}
	case m.StateReply != nil:
		n += uvarintLen(uint64(len(m.StateReply.Envelopes))) + 1
		for i := range m.StateReply.Envelopes {
			n += envelopeSize(&m.StateReply.Envelopes[i])
		}
	case m.ClockSync != nil:
		c := m.ClockSync
		n += uvarintLen(c.Seq) + varintLen(c.T1) + varintLen(c.T2)
	}
	return n
}

// rowsSize sums RowSize over rows, reading the attribute payload size
// from the shared row's cache when the update carries one (the gossip
// send path always does) and computing it alloc-free otherwise.
func rowsSize(rows []RowUpdate) int {
	n := 0
	for i := range rows {
		r := &rows[i]
		aw := 0
		if r.shared != nil {
			aw = r.shared.WireAttrsSize()
		} else {
			aw = attrsWireSize(r.Attrs)
		}
		n += RowSize(r, aw)
	}
	return n
}

// RowSize returns one RowUpdate's wire size given its attribute payload
// size (SharedRow.WireAttrsSize for cached rows), so callers can account
// bytes without re-encoding. The zone string is charged one byte — its
// table reference — because the string itself rides in the message's
// interned table.
func RowSize(r *RowUpdate, attrsLen int) int {
	return 1 + sizeStr(r.Name) + sizeTime(r.Issued) + sizeStr(r.Owner) +
		sizeStr(r.Signer) + sizeBytes(r.Sig) + attrsLen
}

// DigestsSize returns the wire size of a digest list: per entry a
// zone-table reference, the name string, the issue time and the 8-byte
// hash.
func DigestsSize(digests []RowDigest) int {
	n := 0
	for i := range digests {
		n += 1 + sizeStr(digests[i].Name) + sizeTime(digests[i].Issued) + 8
	}
	return n
}

// StampSize returns the wire size of one re-issue stamp: identical in
// shape to a digest entry (zone-table reference, name, issue time, 8-byte
// hash).
func StampSize(s *RowDigest) int {
	return 1 + sizeStr(s.Name) + sizeTime(s.Issued) + 8
}

// StampsSize returns the wire size of a delta's stamp section. The
// section is only present when non-empty (the codec omits it entirely
// otherwise, keeping stamp-free deltas byte-identical to the previous
// format), so an empty list costs zero.
func StampsSize(stamps []RowDigest) int {
	if len(stamps) == 0 {
		return 0
	}
	return uvarintLen(uint64(len(stamps))) + DigestsSize(stamps)
}

// RefSize returns the wire size of one row ref (zone-table reference plus
// name string).
func RefSize(r *RowRef) int { return 1 + sizeStr(r.Name) }

// RefsSize returns the wire size of a row-ref list.
func RefsSize(refs []RowRef) int {
	n := 0
	for i := range refs {
		n += RefSize(&refs[i])
	}
	return n
}

func envelopeSize(e *ItemEnvelope) int {
	n := sizeStr(e.Publisher) + sizeStr(e.ItemID) + varintLen(int64(e.Revision)) +
		uvarintLen(uint64(len(e.Subjects)))
	for _, s := range e.Subjects {
		n += sizeStr(s)
	}
	n += uvarintLen(uint64(len(e.SubjectBits)))
	for _, b := range e.SubjectBits {
		n += uvarintLen(uint64(b))
	}
	n += sizeStr(e.ScopeZone) + sizeStr(e.Predicate) + varintLen(int64(e.Urgency)) +
		sizeTime(e.Published) + sizeBytes(e.Payload) + sizeStr(e.Signer) +
		sizeBytes(e.Sig)
	return n
}
