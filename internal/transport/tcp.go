package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"newswire/internal/metrics"
	"newswire/internal/wire"
)

// maxFrame bounds a single message frame; anything larger is treated as a
// protocol violation and the connection is dropped.
const maxFrame = 16 << 20

// dialTimeout bounds outbound connection establishment.
const dialTimeout = 5 * time.Second

const (
	// defaultQueueLen bounds each peer's outbound queue in frames. Full
	// queue = drop + counter, per the fire-and-forget policy.
	defaultQueueLen = 1024
	// defaultWriteTimeout bounds one flush so a peer that stops reading
	// cannot pin its writer goroutine forever.
	defaultWriteTimeout = 5 * time.Second
	// maxFlushBatch caps the frames drained per writev, bounding both the
	// batch copy and the bytes put behind one write deadline.
	maxFlushBatch = 256
)

// errClosed is returned by sends on a closed transport.
var errClosed = errors.New("transport: closed")

// ioSync restores the happens-before edge the race detector expects
// across a socket. syscall.Write releases and syscall.Read acquires a
// global sync point, so "peer received my message" orders the sender's
// prior writes before the handler — but the writev path (net.Buffers)
// skips that annotation in the runtime. The writer releases ioSync (Add)
// before each vectored flush and readLoop acquires it (Load) before
// dispatching a frame, re-creating the same edge. Two atomic ops per
// batch/frame; semantics are unchanged without -race.
var ioSync atomic.Int64

// TCPOptions tunes the TCP transport's data path.
type TCPOptions struct {
	// SyncWrites restores the legacy synchronous write path — one global
	// mutex serializing every write to every peer, two unbuffered
	// conn.Write calls per frame. Kept as the E11 ablation arm
	// (-sync-transport); the default asynchronous path is strictly
	// better.
	SyncWrites bool
	// QueueLen bounds each peer's outbound queue in frames; <= 0 means
	// defaultQueueLen.
	QueueLen int
	// WriteTimeout bounds one flush to a peer; <= 0 means
	// defaultWriteTimeout.
	WriteTimeout time.Duration
	// ClockSyncInterval is the period between clock-offset probes to
	// each connected peer (the first fires at dial); <= 0 selects 30s.
	ClockSyncInterval time.Duration
}

// TCP is a Transport over real sockets, for live multi-process clusters
// (cmd/newswired). Frames are 4-byte big-endian length prefixes followed
// by an encoded wire.Message. Each peer gets a bounded outbound queue
// drained by a dedicated writer goroutine that flushes whatever is queued
// in one writev (net.Buffers) — a slow or dead peer can never stall
// sends to anyone else, and syscalls per frame amortize toward zero under
// load. Connections are cached per peer and re-dialed on failure.
type TCP struct {
	ln      net.Listener
	handler Handler
	opts    TCPOptions
	addr    string // cached ln.Addr().String(); stamped into every frame

	mu      sync.Mutex
	peers   map[string]*peer    // async mode: writer per peer
	conns   map[string]net.Conn // sync mode: bare cached connections
	inbound map[net.Conn]bool
	closed  bool

	wg   sync.WaitGroup
	stop chan struct{}

	st        tcpStats
	flushHist *metrics.Histogram

	clockMu      sync.Mutex
	clockOffsets map[string]ClockOffset
}

var (
	_ Transport     = (*TCP)(nil)
	_ FrameSender   = (*TCP)(nil)
	_ MetricsFiller = (*TCP)(nil)
)

// ListenTCP starts an endpoint listening on addr (e.g. "127.0.0.1:0") and
// dispatching inbound messages to h, with default options.
func ListenTCP(addr string, h Handler) (*TCP, error) {
	return ListenTCPWith(addr, h, TCPOptions{})
}

// ListenTCPWith is ListenTCP with explicit options.
func ListenTCPWith(addr string, h Handler, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = defaultQueueLen
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = defaultWriteTimeout
	}
	t := &TCP{
		ln:        ln,
		handler:   h,
		opts:      opts,
		addr:      ln.Addr().String(),
		peers:     make(map[string]*peer),
		conns:     make(map[string]net.Conn),
		inbound:   make(map[net.Conn]bool),
		stop:      make(chan struct{}),
		flushHist: &metrics.Histogram{},
	}
	t.flushHist.SetReservoir(4096)
	t.wg.Add(2)
	go t.acceptLoop()
	go t.clockLoop()
	return t, nil
}

// Addr returns the listener's concrete address (with the resolved port).
func (t *TCP) Addr() string { return t.addr }

// Send implements Transport: encode msg and enqueue it for delivery. It
// is a thin wrapper over NewFrame + SendFrame, so fan-out callers can
// hold the frame and skip the per-recipient encode.
func (t *TCP) Send(to string, msg *wire.Message) error {
	f, err := t.NewFrame(msg)
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return t.SendFrame(to, f)
}

// NewFrame implements FrameSender: encode msg once, with this endpoint's
// address stamped as the sender. msg is only read — stamping From into
// the frame instead of mutating msg is what lets one message fan out to N
// peers concurrently without a data race.
func (t *TCP) NewFrame(msg *wire.Message) (wire.Frame, error) {
	return wire.NewFrame(msg, t.addr)
}

// SendFrame implements FrameSender. In the default asynchronous mode it
// enqueues the frame on the peer's writer (dialing synchronously if the
// peer is new, so an unreachable address still surfaces as an error) and
// never blocks on the socket: a full queue drops the frame and counts it.
func (t *TCP) SendFrame(to string, f wire.Frame) error {
	if f.PayloadLen() > maxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit", f.PayloadLen())
	}
	if t.opts.SyncWrites {
		return t.sendSync(to, f)
	}
	for attempt := 0; ; attempt++ {
		p, err := t.peer(to)
		if err != nil {
			return err
		}
		switch p.enqueue(f) {
		case enqueueOK:
			return nil
		case enqueueFull:
			// Fire-and-forget backpressure: drop, count, never block the
			// caller. The protocols above tolerate loss.
			t.st.queueFullDrops.Add(1)
			return nil
		case enqueueClosed:
			// The peer tore down between lookup and enqueue; retry once
			// on a fresh connection.
			if attempt == 0 {
				continue
			}
			t.st.connDrops.Add(1)
			return nil
		}
	}
}

// peer returns the live peer for to, dialing and starting its writer if
// none exists. Dialing happens outside the transport lock so connection
// establishment never stalls sends to connected peers.
func (t *TCP) peer(to string) (*peer, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errClosed
	}
	if p, ok := t.peers[to]; ok {
		t.mu.Unlock()
		return p, nil
	}
	t.mu.Unlock()

	t.st.dials.Add(1)
	c, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		t.st.dialErrors.Add(1)
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, errClosed
	}
	if existing, ok := t.peers[to]; ok {
		// Lost the race; use the existing peer.
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	p := newPeer(t, to, c)
	t.peers[to] = p
	t.wg.Add(1)
	t.mu.Unlock()
	go p.writeLoop()
	// First clock probe at connection establishment, so offsets are
	// usable within one round trip of meeting a peer. Enqueued directly —
	// going through Send here would re-enter peer().
	if ping, err := t.NewFrame(&wire.Message{
		Kind:      wire.KindClockPing,
		ClockSync: &wire.ClockSync{Seq: clockSeq.Add(1), T1: time.Now().UnixNano()},
	}); err == nil {
		p.enqueue(ping)
	}
	return p, nil
}

func (t *TCP) removePeer(p *peer) {
	t.mu.Lock()
	if t.peers[p.addr] == p {
		delete(t.peers, p.addr)
	}
	t.mu.Unlock()
}

// TransportStats returns a snapshot of the data-path counters.
func (t *TCP) TransportStats() Stats { return t.st.snapshot() }

// FlushBatchSizes exposes the writev batch-size histogram (frames per
// flush).
func (t *TCP) FlushBatchSizes() *metrics.Histogram { return t.flushHist }

// FillMetrics mirrors the transport's counters into reg under
// transport_* names. Counters are synced, not added, so repeated calls
// never double count.
func (t *TCP) FillMetrics(reg *metrics.Registry) {
	s := t.st.snapshot()
	reg.Counter("transport_frames_sent").SyncTo(s.FramesSent)
	reg.Counter("transport_bytes_sent").SyncTo(s.BytesSent)
	reg.Counter("transport_frames_received").SyncTo(s.FramesReceived)
	reg.Counter("transport_bytes_received").SyncTo(s.BytesReceived)
	reg.Counter("transport_dials").SyncTo(s.Dials)
	reg.Counter("transport_dial_errors").SyncTo(s.DialErrors)
	reg.Counter("transport_stale_retries").SyncTo(s.StaleRetries)
	reg.Counter("transport_queue_full_drops").SyncTo(s.QueueFullDrops)
	reg.Counter("transport_conn_drops").SyncTo(s.ConnDrops)
	reg.Counter("transport_flush_batches").SyncTo(s.FlushBatches)
	reg.Gauge("transport_queue_high_water").Set(float64(s.QueueHighWater))
	reg.RegisterHistogram("transport_flush_batch_frames", t.flushHist)
	for addr, e := range t.ClockOffsets() {
		reg.GaugeWith("transport_clock_offset_seconds", metrics.L("peer", addr)).
			Set(e.Offset.Seconds())
	}
}

// Close stops the listener, shuts down every peer writer, closes all
// connections and waits for the goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	peers := make([]*peer, 0, len(t.peers))
	for to, p := range t.peers {
		peers = append(peers, p)
		delete(t.peers, to)
	}
	for to, c := range t.conns {
		c.Close()
		delete(t.conns, to)
	}
	// Inbound connections must be closed too, or their read goroutines
	// would block in ReadFull until the remote side goes away and
	// wg.Wait below would hang.
	for c := range t.inbound {
		c.Close()
		delete(t.inbound, c)
	}
	t.mu.Unlock()

	for _, p := range peers {
		t.st.connDrops.Add(int64(p.shutdown()))
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// --- per-peer writer (default asynchronous mode) ---

type enqueueResult uint8

const (
	enqueueOK enqueueResult = iota
	enqueueFull
	enqueueClosed
)

// peer is one outbound neighbor: a bounded frame queue drained by a
// dedicated writer goroutine. Queued frames are shared references
// (wire.Frame), so fan-out of one message to many peers queues the same
// bytes N times, not N copies.
type peer struct {
	t    *TCP
	addr string

	mu     sync.Mutex
	cond   sync.Cond
	queue  []wire.Frame
	head   int // index of the first undrained frame in queue
	conn   net.Conn
	closed bool

	// batch and bufs are writer-goroutine scratch, reused across flushes.
	batch []wire.Frame
	bufs  net.Buffers
}

func newPeer(t *TCP, addr string, conn net.Conn) *peer {
	p := &peer{t: t, addr: addr, conn: conn}
	p.cond.L = &p.mu
	return p
}

// enqueue appends f to the outbound queue, never blocking: a full queue
// or a closed peer reports back for the caller to count the drop.
func (p *peer) enqueue(f wire.Frame) enqueueResult {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return enqueueClosed
	}
	depth := len(p.queue) - p.head
	if depth >= p.t.opts.QueueLen {
		p.mu.Unlock()
		return enqueueFull
	}
	p.queue = append(p.queue, f)
	p.mu.Unlock()
	p.cond.Signal()
	p.t.st.observeQueueDepth(depth + 1)
	return enqueueOK
}

// writeLoop drains the queue: wait for frames, take up to maxFlushBatch,
// flush them in one writev, repeat. There is no idle buffering — every
// drained batch goes straight to the socket, so the last frame of a burst
// is flushed as promptly as the first.
func (p *peer) writeLoop() {
	defer p.t.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == p.head && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		n := len(p.queue) - p.head
		if n > maxFlushBatch {
			n = maxFlushBatch
		}
		p.batch = append(p.batch[:0], p.queue[p.head:p.head+n]...)
		p.head += n
		if p.head == len(p.queue) {
			// Fully drained: reset so the backing array is reused.
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.mu.Unlock()

		if !p.flush() {
			// Connection is gone for good. Remove the peer first so the
			// next Send dials fresh, then count everything undelivered.
			p.t.st.connDrops.Add(int64(len(p.batch)))
			p.t.removePeer(p)
			p.t.st.connDrops.Add(int64(p.shutdown()))
			return
		}
	}
}

// flush writes the current batch in one writev, redialing once on failure
// (the cached connection may be stale: the peer restarted, or an earlier
// deadline expired mid-frame and poisoned the stream). A frame
// half-written before the failure is truncated on the old connection —
// the receiver drops the torn frame with the conn — and resent whole on
// the new one.
func (p *peer) flush() bool {
	if p.writeBatch() == nil {
		return true
	}
	p.t.st.staleRetries.Add(1)
	p.t.st.dials.Add(1)
	c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
	if err != nil {
		p.t.st.dialErrors.Add(1)
		return false
	}
	if !p.swapConn(c) {
		return false
	}
	return p.writeBatch() == nil
}

func (p *peer) writeBatch() error {
	p.mu.Lock()
	conn := p.conn
	closed := p.closed
	p.mu.Unlock()
	if closed || conn == nil {
		return errClosed
	}
	p.bufs = p.bufs[:0]
	total := 0
	for _, f := range p.batch {
		b := f.Bytes()
		p.bufs = append(p.bufs, b)
		total += len(b)
	}
	// A peer that stops reading must not pin this writer forever: bound
	// the flush.
	_ = conn.SetWriteDeadline(time.Now().Add(p.t.opts.WriteTimeout))
	ioSync.Add(1) // release: see ioSync
	// WriteTo consumes p.bufs; p.batch keeps the frames intact for the
	// stale retry.
	bufs := p.bufs
	if _, err := bufs.WriteTo(conn); err != nil {
		return err
	}
	p.t.st.framesSent.Add(int64(len(p.batch)))
	p.t.st.bytesSent.Add(int64(total))
	p.t.st.flushBatches.Add(1)
	p.t.flushHist.Observe(float64(len(p.batch)))
	return nil
}

// swapConn installs a freshly dialed connection, closing the old one. It
// refuses (and closes c) if the peer was shut down meanwhile.
func (p *peer) swapConn(c net.Conn) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return false
	}
	old := p.conn
	p.conn = c
	p.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return true
}

// shutdown marks the peer closed, closes its connection, wakes the writer
// and returns the number of frames still queued (now dropped).
// Idempotent.
func (p *peer) shutdown() int {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0
	}
	p.closed = true
	n := len(p.queue) - p.head
	p.queue, p.head = nil, 0
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	return n
}

// --- legacy synchronous mode (TCPOptions.SyncWrites) ---

// sendSync writes one frame on a cached connection to the peer, dialing
// on demand and retrying once on a stale connection — the original
// prototype data path, preserved as the E11 ablation baseline.
func (t *TCP) sendSync(to string, f wire.Frame) error {
	if err := t.writeFrameSync(to, f); err != nil {
		// The cached connection may have gone stale; dial fresh and retry
		// once.
		t.st.staleRetries.Add(1)
		t.dropConn(to)
		return t.writeFrameSync(to, f)
	}
	return nil
}

func (t *TCP) writeFrameSync(to string, f wire.Frame) error {
	conn, err := t.connSync(to)
	if err != nil {
		return err
	}
	b := f.Bytes()
	t.mu.Lock()
	defer t.mu.Unlock()
	// A peer that stops reading must not wedge every sender behind the
	// mutex: bound the write.
	_ = conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if _, err := conn.Write(b[:wire.FramePrefixLen]); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	if _, err := conn.Write(b[wire.FramePrefixLen:]); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	t.st.framesSent.Add(1)
	t.st.bytesSent.Add(int64(len(b)))
	return nil
}

func (t *TCP) connSync(to string) (net.Conn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	t.st.dials.Add(1)
	c, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		t.st.dialErrors.Add(1)
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, errClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the race; use the existing connection.
		c.Close()
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) dropConn(to string) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		c.Close()
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

// --- inbound path (both modes) ---

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [wire.FramePrefixLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > maxFrame {
			return
		}
		// Pooled receive buffer: Decode copies everything out, so the
		// buffer is recyclable the moment it returns.
		data := GetBuf(int(size))
		if _, err := io.ReadFull(conn, data); err != nil {
			PutBuf(data)
			return
		}
		msg, err := wire.Decode(data)
		PutBuf(data)
		if err != nil {
			// Malformed frame: drop the connection, not the process.
			return
		}
		t.st.framesReceived.Add(1)
		t.st.bytesReceived.Add(int64(size) + wire.FramePrefixLen)
		// Clock-sync frames are transport-internal: answer or absorb them
		// here, never surfacing them to the node's handler.
		switch msg.Kind {
		case wire.KindClockPing:
			t.handleClockPing(msg.From, msg.ClockSync)
			continue
		case wire.KindClockPong:
			t.handleClockPong(msg.From, msg.ClockSync, time.Now())
			continue
		}
		_ = ioSync.Load() // acquire: see ioSync
		t.handler(msg)
	}
}
