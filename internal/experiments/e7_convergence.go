package experiments

import (
	"fmt"

	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/core"
	"newswire/internal/pubsub"
)

// RunE7 measures how long a new leaf subscription takes to reach the root
// zone everywhere — the §3/§6 claim that "eventually (within tens of
// seconds) the root zone will have all the information on whether there
// are leaf nodes in the system that have subscribed".
func RunE7(opt Options) *Table {
	sizes := []int{64, 512, 4096}
	if opt.Quick {
		sizes = []int{64, 512}
	}
	if opt.Big {
		sizes = append(sizes, 32768)
	}
	t := &Table{
		ID:    "E7",
		Title: "gossip rounds until a new subscription reaches the root everywhere",
		Claim: "within tens of seconds the root zone has all the information (§6)",
		Columns: []string{"nodes", "mode", "levels", "rounds", "virtual time",
			"rounds(all nodes)", "KB/node/round"},
	}
	for _, n := range sizes {
		t.AddRow(runE7Size(n, opt.Seed, false)...)
		t.AddRow(runE7Size(n, opt.Seed, true)...)
	}
	t.Notes = append(t.Notes,
		"gossip interval 2s; 'rounds' = first round the publisher-side root row shows the bit;",
		"'rounds(all nodes)' = every node's root table shows it (full dissemination);",
		"mode 'delta' = digest-based anti-entropy (default), 'full' = full-state fallback;",
		"KB/node/round = network bytes during the measured rounds / nodes / rounds")
	return t
}

func runE7Size(n int, seed int64, fullState bool) []string {
	mode := "delta"
	if fullState {
		mode = "full"
	}
	// Branching 16 gives the 4096-node point a depth-2 tree, so the
	// standard table shows multi-level convergence; the huge -big points
	// use the paper's 64-row tables.
	branching := 64
	if n <= 4096 {
		branching = 16
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: branching, Seed: seed + int64(n),
		Customize: func(i int, cfg *core.Config) {
			cfg.DisableDeltaGossip = fullState
		},
	})
	if err != nil {
		return []string{fmt.Sprint(n), mode, "error", err.Error(), "", "", ""}
	}
	// Warm up so aggregation/representative state is steady.
	cluster.RunRounds(8)

	// Flip one subscription on an arbitrary non-first node and watch the
	// bit climb.
	subject := "culture/books"
	positions := bloom.PositionsFor(subject,
		pubsub.DefaultGeometry.Bits, pubsub.DefaultGeometry.Hashes)
	flipper := cluster.Nodes[n/2]
	_ = flipper.Subscribe(subject)
	start := cluster.Eng.Now()
	bytesStart, _ := cluster.Net.BytesTotals()

	rootHasBit := func(node *core.Node) bool {
		rows, ok := node.Agent().Table(astrolabe.RootZone)
		if !ok {
			return false
		}
		for _, r := range rows {
			subs, ok := r.Attrs[astrolabe.AttrSubs].RawBytes()
			if !ok {
				continue
			}
			f, err := bloom.FromBytes(subs, pubsub.DefaultGeometry.Bits,
				pubsub.DefaultGeometry.Hashes)
			if err != nil {
				continue
			}
			if f.TestPositions(positions) {
				return true
			}
		}
		return false
	}

	firstRound, allRound, roundsRun := 0, 0, 0
	const maxRounds = 200
	for round := 1; round <= maxRounds; round++ {
		cluster.RunRounds(1)
		roundsRun = round
		if firstRound == 0 && rootHasBit(flipper) {
			firstRound = round
		}
		if firstRound != 0 {
			all := true
			for _, node := range cluster.Nodes {
				if !rootHasBit(node) {
					all = false
					break
				}
			}
			if all {
				allRound = round
				break
			}
		}
	}
	elapsed := cluster.Eng.Now().Sub(start)
	bytesEnd, _ := cluster.Net.BytesTotals()
	kbPerNodeRound := float64(bytesEnd-bytesStart) / 1024 /
		float64(n) / float64(roundsRun)
	first := "never"
	if firstRound > 0 {
		first = fmt.Sprint(firstRound)
	}
	all := "never"
	if allRound > 0 {
		all = fmt.Sprint(allRound)
	}
	return []string{
		fmt.Sprint(n),
		mode,
		fmt.Sprint(treeLevels(n, branching)),
		first,
		elapsed.String(),
		all,
		fmt.Sprintf("%.2f", kbPerNodeRound),
	}
}

// convergenceRounds runs the cluster round by round until every node's
// root table reflects the given subject in some zone's aggregated Bloom
// filter, returning the round count (0 if maxRounds elapsed first).
func convergenceRounds(cluster *core.Cluster, subject string, maxRounds int) int {
	positions := bloom.PositionsFor(subject,
		pubsub.DefaultGeometry.Bits, pubsub.DefaultGeometry.Hashes)
	hasBit := func(node *core.Node) bool {
		rows, ok := node.Agent().Table(astrolabe.RootZone)
		if !ok {
			return false
		}
		for _, r := range rows {
			subs, ok := r.Attrs[astrolabe.AttrSubs].RawBytes()
			if !ok {
				continue
			}
			f, err := bloom.FromBytes(subs, pubsub.DefaultGeometry.Bits,
				pubsub.DefaultGeometry.Hashes)
			if err != nil {
				continue
			}
			if f.TestPositions(positions) {
				return true
			}
		}
		return false
	}
	for round := 1; round <= maxRounds; round++ {
		cluster.RunRounds(1)
		all := true
		for _, node := range cluster.Nodes {
			if !hasBit(node) {
				all = false
				break
			}
		}
		if all {
			return round
		}
	}
	return 0
}
